package genas

import (
	"genas/internal/routing"
)

// Network is a distributed broker overlay in the style of Siena: brokers
// form an acyclic topology, profiles propagate toward potential publishers,
// and events cross a link only when somebody in that direction wants them.
type Network struct {
	nw *routing.Network
}

// NetworkStats is the overlay-wide counter snapshot.
type NetworkStats = routing.Stats

// NewNetwork creates a distributed broker overlay over the schema. With
// covering enabled, profiles covered by already-propagated profiles are not
// re-propagated (Siena-style optimization).
func NewNetwork(sch *Schema, covering bool) *Network {
	return &Network{nw: routing.NewNetwork(sch, routing.Options{Covering: covering})}
}

// AddNode adds a broker to the overlay.
func (n *Network) AddNode(name string) error {
	_, err := n.nw.AddNode(name)
	return err
}

// Connect links two brokers. The topology must stay acyclic.
func (n *Network) Connect(a, b string) error { return n.nw.Connect(a, b) }

// Subscribe registers a profile at the named broker; the profile propagates
// through the overlay so matching events published anywhere reach it.
func (n *Network) Subscribe(node string, p *Profile) (*Subscription, error) {
	sub, err := n.nw.Subscribe(node, p)
	if err != nil {
		return nil, err
	}
	id := p.ID
	return newSubscription(sub, func() error { return n.nw.Unsubscribe(node, id) }, nil), nil
}

// Unsubscribe removes a profile from the named broker and withdraws its
// routes.
func (n *Network) Unsubscribe(node, id string) error {
	return n.nw.Unsubscribe(node, ProfileID(id))
}

// Publish posts an event at the named broker and returns the number of
// matched profiles across the whole overlay.
func (n *Network) Publish(node string, ev Event) (int, error) {
	return n.nw.Publish(node, ev)
}

// Stats returns overlay-wide counters.
func (n *Network) Stats() NetworkStats { return n.nw.Stats() }

// Close shuts every broker in the overlay down.
func (n *Network) Close() { n.nw.Close() }
