package genas

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"genas/internal/federation"
	"genas/internal/hook"
	"genas/internal/wire"
)

// startFedDaemon boots an in-process genasd twin (service + wire server +
// federation overlay) for the public DialNetwork tests. The daemon side is
// driven through a wire client, exactly as a real deployment would.
func startFedDaemon(t *testing.T, node string, sch *Schema) (addr string) {
	t.Helper()
	svc, err := NewService(sch)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	fed, err := federation.New(hook.BrokerOf(svc), federation.Options{Node: node, Covering: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	srv := wire.NewServer(hook.BrokerOf(svc), nil)
	srv.SetOverlay(fed)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(ctx, ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}

// TestDialNetwork: a process joins a daemon federation through the public
// surface — local subscriptions receive events published at the daemon, and
// local publishes reach the daemon's subscribers; non-matching events never
// cross the wire.
func TestDialNetwork(t *testing.T) {
	const rpcTimeout = 5 * time.Second
	sch := monitoringSchema(t)
	addr := startFedDaemon(t, "daemon", sch)
	remote, err := wire.Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = remote.Close() })

	f, err := DialNetwork(sch, "leaf", []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Schema() != sch {
		t.Error("Schema() mismatch")
	}

	// Remote → local: subscribe here, publish at the daemon. The route
	// announcement is processed asynchronously by the daemon, so publish
	// until the notification arrives.
	sub, err := f.Subscribe("hot", "profile(temperature >= 35)", SubBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := remote.Publish(map[string]float64{"temperature": 41, "humidity": 10, "radiation": 3}, rpcTimeout); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		n, err := sub.Next(ctx)
		cancel()
		if err == nil {
			if n.Profile != "hot" || n.Event.At(0) != 41 {
				t.Fatalf("notification = %+v", n)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no notification from the remote daemon")
		}
	}

	// Local → remote: subscribe at the daemon (through the wire, so the
	// overlay announces the route to us), publish here.
	if err := remote.Subscribe("wet", "profile(humidity >= 90)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := f.Publish(map[string]float64{"temperature": 0, "humidity": 95, "radiation": 3}); err != nil {
			t.Fatal(err)
		}
		var notified bool
		select {
		case n := <-remote.Notifications():
			if n.Profile != "wet" {
				t.Fatalf("notification = %+v", n)
			}
			notified = true
		case <-time.After(100 * time.Millisecond):
		}
		if notified {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon subscriber never notified by the leaf's publish")
		}
	}

	// A non-matching publish is rejected at the link.
	before := f.Stats()
	if _, err := f.Publish(map[string]float64{"temperature": 0, "humidity": 0, "radiation": 3}); err != nil {
		t.Fatal(err)
	}
	after := f.Stats()
	if after.Filtered <= before.Filtered {
		t.Errorf("filtered did not grow: %+v -> %+v", before, after)
	}
	if after.Node != "leaf" || after.Peers != 1 {
		t.Errorf("stats = %+v", after)
	}
	if after.Local.Published == 0 {
		t.Errorf("local stats missing: %+v", after)
	}

	// Unsubscribe withdraws the route.
	if err := f.Unsubscribe("hot"); err != nil {
		t.Fatal(err)
	}
	if err := f.Unsubscribe("hot"); err == nil {
		t.Error("double unsubscribe must fail")
	}
}

// TestDialNetworkErrors: bad peers and bad options fail fast, and a
// peer-less federation still works as a plain local service.
func TestDialNetworkErrors(t *testing.T) {
	sch := monitoringSchema(t)
	if _, err := DialNetwork(sch, "", nil); err == nil {
		t.Error("missing node name must fail")
	}
	if _, err := DialNetwork(sch, "leaf", []string{"127.0.0.1:1"}); err == nil {
		t.Error("unreachable peer must fail")
	}
	if _, err := DialNetwork(sch, "leaf", nil, WithSearch("bogus")); err == nil {
		t.Error("bad option must fail")
	}
	f, err := DialNetwork(sch, "solo", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := f.svc.ParseProfile("p", "profile(temperature >= 35)")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := f.SubscribeProfile(p, SubPriority(2))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Profile().Priority != 2 {
		t.Errorf("priority = %g", sub.Profile().Priority)
	}
	n, err := f.Publish(map[string]float64{"temperature": 40, "humidity": 10, "radiation": 3})
	if err != nil || n != 1 {
		t.Errorf("publish = %d, %v", n, err)
	}
	if st := f.Stats(); st.Peers != 0 || st.Local.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Publish(map[string]float64{"temperature": 400}); err == nil {
		t.Error("bad event must fail")
	}
}
