// Brokernet: a distributed broker overlay in the style of Siena (paper §2).
// Five brokers form a tree; subscriptions propagate through the overlay with
// covering-based pruning, and published events are rejected as early as
// possible — a broker forwards an event over a link only when somebody in
// that direction wants it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"genas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sch := genas.MustSchema(
		genas.Attr("region", genas.MustIntegerDomain(0, 9)),
		genas.Attr("magnitude", genas.MustNumericDomain(0, 10)),
	)

	//        frankfurt
	//        /        \
	//   berlin        paris
	//   /    \
	// hamburg munich
	nw := genas.NewNetwork(sch, true)
	defer nw.Close()
	for _, n := range []string{"frankfurt", "berlin", "paris", "hamburg", "munich"} {
		if err := nw.AddNode(n); err != nil {
			return err
		}
	}
	for _, l := range [][2]string{
		{"frankfurt", "berlin"}, {"frankfurt", "paris"},
		{"berlin", "hamburg"}, {"berlin", "munich"},
	} {
		if err := nw.Connect(l[0], l[1]); err != nil {
			return err
		}
	}

	// Typed profiles, no parsing: the builder compiles to the same predicate
	// form the profile language produces.
	subscribe := func(node string, b *genas.ProfileBuilder) (*genas.Subscription, error) {
		p, err := b.Build(sch)
		if err != nil {
			return nil, err
		}
		return nw.Subscribe(node, p)
	}

	// Hamburg wants every strong quake; Munich only region 3; Paris has a
	// broad profile that covers Munich's (covering prunes the narrow route
	// on shared links).
	hamburg, err := subscribe("hamburg",
		genas.NewProfile("strong").Where("magnitude", genas.GE(6)))
	if err != nil {
		return err
	}
	munich, err := subscribe("munich",
		genas.NewProfile("region3").Where("region", genas.Eq(3)).Where("magnitude", genas.GE(4)))
	if err != nil {
		return err
	}
	paris, err := subscribe("paris",
		genas.NewProfile("broad").Where("magnitude", genas.GE(4)))
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(11))
	const events = 5000
	totalMatches := 0
	eb := genas.NewEvent(sch)
	for i := 0; i < events; i++ {
		ev, err := eb.
			Set("region", float64(rng.Intn(10))).
			Set("magnitude", rng.Float64()*10).
			Event()
		if err != nil {
			return err
		}
		eb.Reset()
		m, err := nw.Publish("frankfurt", ev)
		if err != nil {
			return err
		}
		totalMatches += m
	}

	drain := func(name string, sub *genas.Subscription) int {
		n := 0
		for {
			select {
			case <-sub.C():
				n++
			default:
				fmt.Printf("  %-8s received %d notifications (%d dropped by its full buffer)\n",
					name, n, sub.Dropped())
				return n
			}
		}
	}
	fmt.Printf("published %d events at frankfurt, %d profile matches\n", events, totalMatches)
	drain("hamburg", hamburg)
	drain("munich", munich)
	drain("paris", paris)

	st := nw.Stats()
	fmt.Printf("overlay: %d brokers, %d link crossings, %d crossings avoided by early rejection\n",
		st.Nodes, st.Messages, st.Filtered)
	fmt.Println("covering pruned munich's narrow route wherever paris' broad profile already flows")
	return nil
}
