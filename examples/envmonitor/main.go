// Envmonitor: the paper's motivating scenario — environmental monitoring
// with catastrophe-warning profiles. Sensor readings are roughly uniform,
// but users care about a small extreme range of high importance. The
// distribution-aware filter rejects harmless readings after a single
// comparison once it has learned the event distribution (attribute
// reordering by Measure A2 + value reordering by Measure V1).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"genas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sch := genas.MustSchema(
		genas.Attr("temperature", genas.MustNumericDomain(-30, 50)),
		genas.Attr("humidity", genas.MustNumericDomain(0, 100)),
		genas.Attr("radiation", genas.MustNumericDomain(1, 100)),
	)
	svc, err := genas.NewService(sch,
		genas.WithAdaptivePolicy(500, 0.08, true), // learn P_e, reorder attributes too
	)
	if err != nil {
		return err
	}
	defer svc.Close()

	// Catastrophe warnings: tiny extreme regions of each domain.
	warnings := map[string]string{
		"heat-wave":       "profile(temperature >= 45)",
		"deep-frost":      "profile(temperature <= -25)",
		"flood-humidity":  "profile(humidity >= 98)",
		"uv-alert":        "profile(radiation >= 90)",
		"combined-stress": "profile(temperature >= 40; humidity >= 95)",
	}
	var subs []*genas.Subscription
	for id, expr := range warnings {
		sub, err := svc.Subscribe(id, expr)
		if err != nil {
			return err
		}
		subs = append(subs, sub)
	}

	// Simulated sensor field: benign readings with rare extremes.
	rng := rand.New(rand.NewSource(42))
	const readings = 20000
	alarms := 0
	for i := 0; i < readings; i++ {
		temp := -10 + rng.Float64()*40 // mostly -10..30 °C
		if rng.Float64() < 0.003 {
			temp = 45 + rng.Float64()*5 // rare heat spike
		}
		m, err := svc.Publish(map[string]float64{
			"temperature": temp,
			"humidity":    rng.Float64() * 90,
			"radiation":   1 + rng.Float64()*80,
		})
		if err != nil {
			return err
		}
		alarms += m
	}

	// Drain outstanding notifications (each subscription has its own buffer).
	delivered := 0
	for _, sub := range subs {
	drain:
		for {
			select {
			case <-sub.C():
				delivered++
			default:
				break drain
			}
		}
	}

	st := svc.Stats()
	ops, err := svc.ExpectedOpsPerEvent()
	if err != nil {
		return err
	}
	fmt.Printf("sensor readings:        %d\n", readings)
	fmt.Printf("alarm matches:          %d (delivered %d, dropped %d)\n", alarms, delivered, st.Dropped)
	fmt.Printf("adaptive restructures:  %d\n", svc.Restructures())
	fmt.Printf("measured mean ops/event: %.3f\n", st.MeanOps)
	fmt.Printf("analytic  mean ops/event: %.3f (Eq. 2 under the learned distribution)\n", ops)
	fmt.Println("benign readings are rejected after ~1 comparison: the zero-subdomain")
	fmt.Println("attributes sit at the top of the tree and their gap regions rank first.")
	return nil
}
