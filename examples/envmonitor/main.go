// Envmonitor: the paper's motivating scenario — environmental monitoring
// with catastrophe-warning profiles. Sensor readings are roughly uniform,
// but users care about a small extreme range of high importance. The
// distribution-aware filter rejects harmless readings after a single
// comparison once it has learned the event distribution (attribute
// reordering by Measure A2 + value reordering by Measure V1).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"genas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sch := genas.MustSchema(
		genas.Attr("temperature", genas.MustNumericDomain(-30, 50)),
		genas.Attr("humidity", genas.MustNumericDomain(0, 100)),
		genas.Attr("radiation", genas.MustNumericDomain(1, 100)),
	)
	svc, err := genas.NewService(sch,
		genas.WithAdaptivePolicy(500, 0.08, true), // learn P_e, reorder attributes too
	)
	if err != nil {
		return err
	}
	defer svc.Close()

	// Catastrophe warnings: tiny extreme regions of each domain, as typed
	// profiles. Handler delivery counts notifications without a drain loop;
	// DropOldest keeps the freshest alarms when a handler lags.
	warnings := []*genas.ProfileBuilder{
		genas.NewProfile("heat-wave").Where("temperature", genas.GE(45)).Priority(2),
		genas.NewProfile("deep-frost").Where("temperature", genas.LE(-25)),
		genas.NewProfile("flood-humidity").Where("humidity", genas.GE(98)),
		genas.NewProfile("uv-alert").Where("radiation", genas.GE(90)),
		genas.NewProfile("combined-stress").Where("temperature", genas.GE(40)).Where("humidity", genas.GE(95)),
	}
	var deliveredCount atomic.Int64
	var subs []*genas.Subscription
	for _, b := range warnings {
		sub, err := b.Subscribe(svc,
			genas.SubBuffer(256),
			genas.SubDropOldest(),
			genas.SubHandler(func(genas.Notification) { deliveredCount.Add(1) }),
		)
		if err != nil {
			return err
		}
		subs = append(subs, sub)
	}

	// Simulated sensor field: benign readings with rare extremes. The event
	// builder reuses one positional buffer — no allocation per reading.
	rng := rand.New(rand.NewSource(42))
	const readings = 20000
	alarms := 0
	eb := svc.NewEvent()
	for i := 0; i < readings; i++ {
		temp := -10 + rng.Float64()*40 // mostly -10..30 °C
		if rng.Float64() < 0.003 {
			temp = 45 + rng.Float64()*5 // rare heat spike
		}
		m, err := eb.
			Set("temperature", temp).
			Set("humidity", rng.Float64()*90).
			Set("radiation", 1+rng.Float64()*80).
			Publish()
		if err != nil {
			return err
		}
		alarms += m
	}

	// Let the handler goroutines drain their buffers, then unsubscribe (the
	// channels close, ending the handlers).
	deadline := time.Now().Add(2 * time.Second)
	for {
		var pending uint64
		for _, sub := range subs {
			// DropOldest evictions count as delivered-then-dropped and
			// never reach the handler, so the handler's target is the
			// difference.
			pending += sub.Delivered() - sub.Dropped()
		}
		if deliveredCount.Load() >= int64(pending) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	delivered := int(deliveredCount.Load())

	st := svc.Stats()
	ops, err := svc.ExpectedOpsPerEvent()
	if err != nil {
		return err
	}
	fmt.Printf("sensor readings:        %d\n", readings)
	fmt.Printf("alarm matches:          %d (delivered %d, dropped %d)\n", alarms, delivered, st.Dropped)
	fmt.Printf("adaptive restructures:  %d\n", svc.Restructures())
	fmt.Printf("measured mean ops/event: %.3f\n", st.MeanOps)
	fmt.Printf("analytic  mean ops/event: %.3f (Eq. 2 under the learned distribution)\n", ops)
	fmt.Println("benign readings are rejected after ~1 comparison: the zero-subdomain")
	fmt.Println("attributes sit at the top of the tree and their gap regions rank first.")
	return nil
}
