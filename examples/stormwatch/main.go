// Stormwatch: composite event detection (the paper's announced GENAS
// extension, §5). Primitive profiles watch pressure drops, wind gusts and
// humidity spikes; composite expressions combine them temporally:
//
//	storm-front    = pressure-drop ; wind-gust        (sequence within 10 min)
//	muggy-turn     = humidity-spike & heat            (conjunction within 30 min)
//	gust-cluster   = count(wind-gust, 3)              (3 gusts within 15 min)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"genas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sch := genas.MustSchema(
		genas.Attr("pressure", genas.MustNumericDomain(950, 1050)), // hPa
		genas.Attr("wind", genas.MustNumericDomain(0, 200)),        // km/h
		genas.Attr("humidity", genas.MustNumericDomain(0, 100)),    // %
		genas.Attr("temperature", genas.MustNumericDomain(-30, 50)),
	)
	svc, err := genas.NewService(sch)
	if err != nil {
		return err
	}
	defer svc.Close()

	stormFront, err := genas.Seq(genas.Prim("pressure-drop"), genas.Prim("wind-gust"), 10*time.Minute)
	if err != nil {
		return err
	}
	muggy, err := genas.AndWithin(genas.Prim("humidity-spike"), genas.Prim("heat"), 30*time.Minute)
	if err != nil {
		return err
	}
	gustCluster, err := genas.Count(genas.Prim("wind-gust"), 3, 15*time.Minute)
	if err != nil {
		return err
	}

	mon, err := svc.MonitorComposite(
		map[string]string{
			"pressure-drop":  "profile(pressure <= 980)",
			"wind-gust":      "profile(wind >= 90)",
			"humidity-spike": "profile(humidity >= 95)",
			"heat":           "profile(temperature >= 32)",
		},
		map[string]genas.CompositeExpr{
			"storm-front":  stormFront,
			"muggy-turn":   muggy,
			"gust-cluster": gustCluster,
		},
		128,
	)
	if err != nil {
		return err
	}
	defer mon.Stop()

	// Replay a synthetic day of weather-station readings at one-minute
	// resolution, with a storm front scripted in the afternoon.
	rng := rand.New(rand.NewSource(3))
	start := time.Date(2026, 6, 10, 0, 0, 0, 0, time.UTC)
	eb := svc.NewEvent() // one reusable positional buffer for the whole day
	for minute := 0; minute < 24*60; minute++ {
		at := start.Add(time.Duration(minute) * time.Minute)
		pressure := 1010 + rng.Float64()*10
		wind := 20 + rng.Float64()*30
		humidity := 50 + rng.Float64()*30
		temp := 18 + rng.Float64()*10

		// Scripted storm front 14:00–14:30: pressure dives, then gusts.
		if minute >= 14*60 && minute < 14*60+5 {
			pressure = 975 - rng.Float64()*5
		}
		if minute >= 14*60+4 && minute < 14*60+30 && rng.Float64() < 0.4 {
			wind = 95 + rng.Float64()*40
		}
		// A muggy evening: heat + humidity spike around 18:00.
		if minute >= 18*60 && minute < 18*60+20 {
			temp = 33 + rng.Float64()*3
			humidity = 96 + rng.Float64()*4
		}

		// Timestamped readings through the event builder: Values fills the
		// positional buffer, At stamps the occurrence time the composite
		// windows are evaluated against.
		if _, err := eb.Values(pressure, wind, humidity, temp).At(at).Publish(); err != nil {
			return err
		}
	}

	counts := map[string]int{}
	first := map[string]time.Time{}
	for {
		select {
		case d := <-mon.C():
			if counts[d.Name] == 0 {
				first[d.Name] = d.End
			}
			counts[d.Name]++
		case <-time.After(200 * time.Millisecond):
			fmt.Println("composite detections over the synthetic day:")
			for _, name := range []string{"storm-front", "muggy-turn", "gust-cluster"} {
				if counts[name] == 0 {
					fmt.Printf("  %-12s none\n", name)
					continue
				}
				fmt.Printf("  %-12s %4d (first at %s)\n", name, counts[name], first[name].Format("15:04"))
			}
			return nil
		}
	}
}
