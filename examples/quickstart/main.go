// Quickstart: define a schema, subscribe profiles in the profile language,
// publish events, and receive notifications — the minimal GENAS workflow.
package main

import (
	"fmt"
	"log"

	"genas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The toy environmental monitoring system of the paper's Example 1:
	// temperature in [−30,50] °C, humidity in [0,100] %, UV-A radiation in
	// [1,100] mW/m².
	sch := genas.MustSchema(
		genas.Attr("temperature", genas.MustNumericDomain(-30, 50)),
		genas.Attr("humidity", genas.MustNumericDomain(0, 100)),
		genas.Attr("radiation", genas.MustNumericDomain(1, 100)),
	)
	svc, err := genas.NewService(sch)
	if err != nil {
		return err
	}
	defer svc.Close()

	// The paper's five profiles P1–P5, through both v1 front-ends: the typed
	// builder and the profile language compile to identical profiles.
	builders := []*genas.ProfileBuilder{
		genas.NewProfile("P1").Where("temperature", genas.GE(35)).Where("humidity", genas.GE(90)),
		genas.NewProfile("P3").Where("temperature", genas.GE(30)).Where("humidity", genas.GE(90)).
			Where("radiation", genas.Between(35, 50)),
		genas.NewProfile("P4").Where("temperature", genas.Between(-30, -20)).
			Where("humidity", genas.LE(5)).Where("radiation", genas.Between(40, 100)),
	}
	expressions := map[string]string{
		"P2": "profile(temperature >= 30; humidity >= 90)",
		"P5": "profile(temperature >= 30; humidity >= 80)",
	}
	subs := make(map[string]*genas.Subscription, 5)
	for _, b := range builders {
		sub, err := b.Subscribe(svc)
		if err != nil {
			return fmt.Errorf("subscribe builder profile: %w", err)
		}
		subs[sub.ID()] = sub
	}
	for id, expr := range expressions {
		sub, err := svc.Subscribe(id, expr)
		if err != nil {
			return fmt.Errorf("subscribe %s: %w", id, err)
		}
		subs[id] = sub
	}

	// The event of the paper's Equation (1): it must match P2 and P5.
	// PublishValues is the zero-allocation path (values in schema order).
	matched, err := svc.PublishValues(30, 90, 2)
	if err != nil {
		return err
	}
	fmt.Printf("event(temperature=30; humidity=90; radiation=2) matched %d profiles\n", matched)
	for id, sub := range subs {
		select {
		case n := <-sub.C():
			fmt.Printf("  %s notified: %s\n", id, n.Event.Render(sch))
		default:
		}
	}

	// Quenching: tell a sensor it may stop reporting harmless cold values.
	quenched, err := svc.Quenched("temperature", -19, 29)
	if err != nil {
		return err
	}
	fmt.Printf("temperature range [-19,29] quenched: %v (no profile cares)\n", quenched)

	st := svc.Stats()
	fmt.Printf("broker: %d subscriptions, %d published, %d delivered, mean %.2f ops/event\n",
		st.Subscriptions, st.Published, st.Delivered, st.MeanOps)
	return nil
}
