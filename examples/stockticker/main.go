// Stockticker: the paper's introduction motivates distribution-based
// filtering with stock tickers, where "users are mainly interested in a
// small range of values for certain shares; the event data display high
// concentrations at selected values". This example compares the static
// natural-order filter against the adaptive distribution-aware filter on a
// concentrated quote stream, then shifts the market regime and shows the
// filter restructuring itself.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"genas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const (
	symbols   = 40 // categorical share symbols
	quotes    = 30000
	profiles  = 300
	priceLow  = 0.0
	priceHigh = 500.0
)

func run() error {
	labels := make([]string, symbols)
	for i := range labels {
		labels[i] = fmt.Sprintf("SYM%02d", i)
	}
	symDom, err := genas.NewCategoricalDomain(labels...)
	if err != nil {
		return err
	}
	sch := genas.MustSchema(
		genas.Attr("symbol", symDom),
		genas.Attr("price", genas.MustNumericDomain(priceLow, priceHigh)),
		genas.Attr("volume", genas.MustNumericDomain(0, 1e6)),
	)

	static, err := genas.NewService(sch)
	if err != nil {
		return err
	}
	defer static.Close()
	adaptive, err := genas.NewService(sch, genas.WithAdaptivePolicy(1000, 0.05, true))
	if err != nil {
		return err
	}
	defer adaptive.Close()

	// Users watch narrow price bands on a handful of hot symbols: typed
	// profiles with categorical labels, no expression formatting.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < profiles; i++ {
		sym := rng.Intn(6) // interest concentrates on six shares
		center := 90 + rng.Float64()*40
		b := genas.NewProfile(fmt.Sprintf("watch%03d", i)).
			Where("symbol", genas.Is(labels[sym])).
			Where("price", genas.Between(math.Round(center-2), math.Round(center+2)))
		if _, err := b.Subscribe(static); err != nil {
			return err
		}
		if _, err := b.Subscribe(adaptive); err != nil {
			return err
		}
	}

	publish := func(svc *genas.Service, regimeHot bool) error {
		for i := 0; i < quotes; i++ {
			sym := rng.Intn(symbols)
			price := priceLow + rng.Float64()*priceHigh
			if regimeHot && rng.Float64() < 0.8 {
				sym = rng.Intn(6)             // hot symbols dominate the tape
				price = 90 + rng.Float64()*40 // prices hover in the watched band
			}
			// The positional zero-allocation path: values in schema order.
			_, err := svc.PublishValues(float64(sym), price, rng.Float64()*1e6)
			if err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Println("phase 1: concentrated market (80% of quotes on 6 hot symbols)")
	if err := publish(static, true); err != nil {
		return err
	}
	if err := publish(adaptive, true); err != nil {
		return err
	}
	report(static, adaptive)

	fmt.Println("\nphase 2: regime shift (uniform tape) — the adaptive filter restructures")
	if err := publish(static, false); err != nil {
		return err
	}
	if err := publish(adaptive, false); err != nil {
		return err
	}
	report(static, adaptive)
	fmt.Printf("\nadaptive restructures total: %d\n", adaptive.Restructures())
	return nil
}

func report(static, adaptive *genas.Service) {
	ss, as := static.Stats(), adaptive.Stats()
	fmt.Printf("  static   (natural order): mean %.2f ops/quote\n", ss.MeanOps)
	fmt.Printf("  adaptive (V1 + A2):       mean %.2f ops/quote\n", as.MeanOps)
	if as.MeanOps > 0 {
		fmt.Printf("  speedup: %.2fx fewer comparisons per quote\n", ss.MeanOps/as.MeanOps)
	}
}
