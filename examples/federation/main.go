// Federation: three brokers in a chain A—B—C, peered over TCP with the wire
// protocol's peer frames — the process-level twin of the brokernet example.
// A profile subscribed at daemon C propagates hop by hop to daemon A, and an
// event published at A crosses a wire only when the link's routing filter
// matches: the middle hop's filtered counter proves events are rejected as
// early as possible (paper §5).
//
// The three daemons here run in-process to keep the example self-contained;
// each trio of broker + wire server + federation overlay is exactly what one
// genasd process runs. The equivalent deployment is:
//
//	genasd -addr :7452 -schema '…' -node A
//	genasd -addr :7453 -schema '…' -node B -peer localhost:7452
//	genasd -addr :7454 -schema '…' -node C -peer localhost:7453
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"genas"
	"genas/internal/federation"
	"genas/internal/hook"
	"genas/internal/wire"
)

const rpcTimeout = 5 * time.Second

// daemon is one genasd twin: a broker serving the wire protocol with a
// federation overlay attached.
type daemon struct {
	fed  *federation.Fed
	addr string
	stop func()
}

func startDaemon(sch *genas.Schema, node string, peers ...string) (*daemon, error) {
	svc, err := genas.NewService(sch)
	if err != nil {
		return nil, err
	}
	brk := hook.BrokerOf(svc)
	fed, err := federation.New(brk, federation.Options{Node: node, Covering: true})
	if err != nil {
		svc.Close()
		return nil, err
	}
	srv := wire.NewServer(brk, nil)
	srv.SetOverlay(fed)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fed.Close()
		svc.Close()
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = srv.Serve(ctx, ln)
	}()
	d := &daemon{fed: fed, addr: ln.Addr().String()}
	d.stop = func() {
		fed.Close()
		cancel()
		srv.Close()
		<-serveDone
		svc.Close()
	}
	for _, p := range peers {
		if err := fed.Dial(p); err != nil {
			d.stop()
			return nil, err
		}
	}
	return d, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sch := genas.MustSchema(
		genas.Attr("temperature", genas.MustNumericDomain(-30, 50)),
		genas.Attr("humidity", genas.MustNumericDomain(0, 100)),
	)

	// The chain A—B—C: each daemon dials its upstream neighbor.
	a, err := startDaemon(sch, "A")
	if err != nil {
		return err
	}
	defer a.stop()
	b, err := startDaemon(sch, "B", a.addr)
	if err != nil {
		return err
	}
	defer b.stop()
	c, err := startDaemon(sch, "C", b.addr)
	if err != nil {
		return err
	}
	defer c.stop()

	// A subscriber at the far end of the chain...
	subC, err := wire.Dial(c.addr, rpcTimeout)
	if err != nil {
		return err
	}
	defer func() { _ = subC.Close() }()
	if err := subC.Subscribe("hot", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
		return err
	}
	// ...and a local watcher at the middle hop.
	subB, err := wire.Dial(b.addr, rpcTimeout)
	if err != nil {
		return err
	}
	defer func() { _ = subB.Close() }()
	if err := subB.Subscribe("humid", "profile(humidity >= 80)", 0, rpcTimeout); err != nil {
		return err
	}

	pub, err := wire.Dial(a.addr, rpcTimeout)
	if err != nil {
		return err
	}
	defer func() { _ = pub.Close() }()

	// The hot route has to propagate C→B→A before a publish at A is
	// forwarded; publish until the notification crosses both wire hops.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := pub.Publish(map[string]float64{"temperature": 41, "humidity": 10}, rpcTimeout); err != nil {
			return err
		}
		var done bool
		select {
		case n := <-subC.Notifications():
			fmt.Printf("C notified: %s matched temperature=%g two wire hops from the publisher\n",
				n.Profile, n.Event["temperature"])
			done = true
		case <-time.After(100 * time.Millisecond):
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("subscription at C never matched the publish at A")
		}
	}

	// This event interests only B's local watcher: it crosses A→B, then B's
	// link filter toward C rejects it — early rejection at the middle hop.
	if _, err := pub.Publish(map[string]float64{"temperature": 5, "humidity": 90}, rpcTimeout); err != nil {
		return err
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if _, _, _, filtered := b.fed.Stats(); filtered >= 1 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("B never early-rejected the humid event")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case n := <-subB.Notifications():
		fmt.Printf("B notified locally: %s matched humidity=%g\n", n.Profile, n.Event["humidity"])
	case <-time.After(5 * time.Second):
		return fmt.Errorf("B's local watcher starved")
	}

	// And an event nobody wants anywhere dies at A's own link.
	if _, err := pub.Publish(map[string]float64{"temperature": -20, "humidity": 10}, rpcTimeout); err != nil {
		return err
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if _, _, _, filtered := a.fed.Stats(); filtered >= 1 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("A never early-rejected the cold event")
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, _, fwdA, filtA := a.fed.Stats()
	_, _, fwdB, filtB := b.fed.Stats()
	fmt.Printf("A: %d events crossed its wire, %d rejected before crossing\n", fwdA, filtA)
	fmt.Printf("B (middle hop): %d forwarded on, %d rejected at the link to C\n", fwdB, filtB)
	fmt.Println("the middle hop's filtered counter proves early rejection: wire crossings happen only where a downstream profile matches")
	return nil
}
