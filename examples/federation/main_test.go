package main

import "testing"

// TestRun compiles and executes the example end to end, so wire-protocol or
// federation drift breaks CI instead of users following the examples.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
