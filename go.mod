module genas

go 1.24
