package genas

import (
	"errors"
	"testing"

	"genas/internal/sentinel"
)

// TestReexportsMatchSentinels pins the facade contract: every public
// genas.Err* value errors.Is-matches its internal/sentinel counterpart, so
// wrapping at any internal layer stays matchable through the facade.
func TestReexportsMatchSentinels(t *testing.T) {
	cases := []struct {
		name     string
		public   error
		internal error
	}{
		{"ErrUnknownAttribute", ErrUnknownAttribute, sentinel.ErrUnknownAttribute},
		{"ErrOutOfDomain", ErrOutOfDomain, sentinel.ErrOutOfDomain},
		{"ErrDuplicateID", ErrDuplicateID, sentinel.ErrDuplicateID},
		{"ErrUnknownID", ErrUnknownID, sentinel.ErrUnknownID},
		{"ErrClosed", ErrClosed, sentinel.ErrClosed},
		{"ErrBadBuffer", ErrBadBuffer, sentinel.ErrBadBuffer},
		{"ErrArity", ErrArity, sentinel.ErrArity},
		{"ErrBadSchema", ErrBadSchema, sentinel.ErrBadSchema},
		{"ErrBadProfile", ErrBadProfile, sentinel.ErrBadProfile},
	}
	for _, tc := range cases {
		if !errors.Is(tc.public, tc.internal) {
			t.Errorf("errors.Is(genas.%s, sentinel.%s) = false", tc.name, tc.name)
		}
		if !errors.Is(tc.internal, tc.public) {
			t.Errorf("errors.Is(sentinel.%s, genas.%s) = false", tc.name, tc.name)
		}
	}
}

// TestErrorPathsAreMatchable drives real failure paths end to end and
// asserts the returned errors match the public sentinels. ErrArity is the
// PR 6 case: before the senterr sweep, a wrong-arity Publish returned an
// error nothing public could errors.Is-match.
func TestErrorPathsAreMatchable(t *testing.T) {
	sch := MustSchema(
		Attr("temperature", MustNumericDomain(-30, 50)),
		Attr("humidity", MustNumericDomain(0, 100)),
	)
	svc, err := NewService(sch)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	t.Run("ErrArity/PublishValues", func(t *testing.T) {
		if _, err := svc.PublishValues(20); !errors.Is(err, ErrArity) {
			t.Errorf("PublishValues(1 of 2 values) = %v, want errors.Is ErrArity", err)
		}
	})
	t.Run("ErrArity/builder", func(t *testing.T) {
		if _, err := svc.NewEvent().Set("temperature", 20).Publish(); !errors.Is(err, ErrArity) {
			t.Errorf("builder publish with missing attribute = %v, want errors.Is ErrArity", err)
		}
	})
	t.Run("ErrBadSchema/empty", func(t *testing.T) {
		if _, err := NewSchema(); !errors.Is(err, ErrBadSchema) {
			t.Errorf("NewSchema() = %v, want errors.Is ErrBadSchema", err)
		}
	})
	t.Run("ErrBadSchema/domain", func(t *testing.T) {
		if _, err := NewNumericDomain(5, 5); !errors.Is(err, ErrBadSchema) {
			t.Errorf("NewNumericDomain(5, 5) = %v, want errors.Is ErrBadSchema", err)
		}
	})
	t.Run("ErrBadProfile/empty", func(t *testing.T) {
		if _, err := NewProfile("p").Build(sch); !errors.Is(err, ErrBadProfile) {
			t.Errorf("empty profile Build = %v, want errors.Is ErrBadProfile", err)
		}
	})
	t.Run("ErrUnknownAttribute", func(t *testing.T) {
		if _, err := svc.Publish(map[string]float64{"pressure": 1}); !errors.Is(err, ErrUnknownAttribute) {
			t.Errorf("Publish with unknown attribute = %v, want errors.Is ErrUnknownAttribute", err)
		}
	})
}
