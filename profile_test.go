package genas

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"genas/internal/predicate"
)

// builderSchema mixes numeric, integer and categorical attributes so the
// equivalence property exercises every condition kind.
func builderSchema(t testing.TB) *Schema {
	t.Helper()
	sev, err := NewCategoricalDomain("low", "mid", "high")
	if err != nil {
		t.Fatal(err)
	}
	return MustSchema(
		Attr("temperature", MustNumericDomain(-30, 50)),
		Attr("humidity", MustNumericDomain(0, 100)),
		Attr("count", MustIntegerDomain(0, 9)),
		Attr("severity", sev),
	)
}

// condCase pairs a builder condition with the profile-language spelling that
// must compile to the identical predicate.
type condCase struct {
	cond Cond
	expr string
}

// randCond draws a random condition for the named attribute together with
// its profile-language equivalent.
func randCond(rng *rand.Rand, attr string, labels []string) condCase {
	if labels != nil {
		// Categorical attribute: label equality, label sets, or don't-care.
		switch rng.Intn(3) {
		case 0:
			l := labels[rng.Intn(len(labels))]
			return condCase{Is(l), fmt.Sprintf("%s = %s", attr, l)}
		case 1:
			a, b := labels[rng.Intn(len(labels))], labels[rng.Intn(len(labels))]
			return condCase{OneOf(a, b), fmt.Sprintf("%s in {%s,%s}", attr, a, b)}
		default:
			return condCase{AnyValue(), attr + " = *"}
		}
	}
	v := -40 + rng.Float64()*120
	switch rng.Intn(9) {
	case 0:
		return condCase{Eq(v), fmt.Sprintf("%s = %g", attr, v)}
	case 1:
		return condCase{Ne(v), fmt.Sprintf("%s != %g", attr, v)}
	case 2:
		return condCase{LT(v), fmt.Sprintf("%s < %g", attr, v)}
	case 3:
		return condCase{LE(v), fmt.Sprintf("%s <= %g", attr, v)}
	case 4:
		return condCase{GT(v), fmt.Sprintf("%s > %g", attr, v)}
	case 5:
		return condCase{GE(v), fmt.Sprintf("%s >= %g", attr, v)}
	case 6:
		hi := v + rng.Float64()*30
		return condCase{Between(v, hi), fmt.Sprintf("%s in [%g,%g]", attr, v, hi)}
	case 7:
		a, b, c := v, v+rng.Float64()*10, v-rng.Float64()*10
		return condCase{In(a, b, c), fmt.Sprintf("%s in {%g,%g,%g}", attr, a, b, c)}
	default:
		return condCase{AnyValue(), attr + " = *"}
	}
}

// TestBuilderParserEquivalence is the property test of the tentpole: for
// randomly drawn profiles, the typed builder and the profile-language parser
// produce byte-identical Profile values.
func TestBuilderParserEquivalence(t *testing.T) {
	sch := builderSchema(t)
	labels := map[string][]string{"severity": {"low", "mid", "high"}}
	attrs := []string{"temperature", "humidity", "count", "severity"}
	rng := rand.New(rand.NewSource(99))

	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("p%d", i)
		b := NewProfile(id)
		var parts []string
		// A random non-empty attribute subset, in random order.
		perm := rng.Perm(len(attrs))[:1+rng.Intn(len(attrs))]
		allAny := true
		for _, ai := range perm {
			c := randCond(rng, attrs[ai], labels[attrs[ai]])
			b.Where(attrs[ai], c.cond)
			parts = append(parts, c.expr)
			if !strings.HasSuffix(c.expr, "= *") {
				allAny = false
			}
		}
		if rng.Intn(3) == 0 {
			b.Priority(float64(1 + rng.Intn(5)))
		}
		expr := "profile(" + strings.Join(parts, "; ") + ")"

		want, errParse := predicate.Parse(sch, predicate.ID(id), expr)
		got, errBuild := b.Build(sch)
		if (errParse == nil) != (errBuild == nil) {
			t.Fatalf("%s: parser err %v, builder err %v", expr, errParse, errBuild)
		}
		if errParse != nil {
			if !allAny {
				t.Fatalf("%s: unexpected parse failure: %v", expr, errParse)
			}
			continue // all-don't-care profiles are rejected by both paths
		}
		if b.priority != 0 {
			want.Priority = b.priority
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s:\n builder %+v\n parser  %+v", expr, got, want)
		}
	}
}

// TestBuilderRenderRoundTrip: a builder-built profile rendered to the
// profile language and re-parsed is identical to the original.
func TestBuilderRenderRoundTrip(t *testing.T) {
	sch := builderSchema(t)
	labels := map[string][]string{"severity": {"low", "mid", "high"}}
	attrs := []string{"temperature", "humidity", "count", "severity"}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("r%d", i)
		b := NewProfile(id)
		hasReal := false
		perm := rng.Perm(len(attrs))[:1+rng.Intn(len(attrs))]
		for _, ai := range perm {
			c := randCond(rng, attrs[ai], labels[attrs[ai]])
			b.Where(attrs[ai], c.cond)
			if !strings.HasSuffix(c.expr, "= *") {
				hasReal = true
			}
		}
		if !hasReal {
			continue
		}
		p, err := b.Build(sch)
		if err != nil {
			t.Fatal(err)
		}
		back, err := predicate.Parse(sch, predicate.ID(id), p.Render(sch))
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.Render(sch), err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("round trip:\n built   %+v\n reparsed %+v", p, back)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	sch := builderSchema(t)
	if _, err := NewProfile("e").Build(sch); err == nil {
		t.Error("empty profile must fail")
	}
	if _, err := NewProfile("e").Where("bogus", GE(1)).Build(sch); !errors.Is(err, ErrUnknownAttribute) {
		t.Errorf("unknown attribute: %v", err)
	}
	if _, err := NewProfile("e").Where("temperature", Is("low")).Build(sch); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("label on numeric attribute: %v", err)
	}
	if _, err := NewProfile("e").Where("severity", Is("catastrophic")).Build(sch); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("unknown label: %v", err)
	}
	if _, err := NewProfile("e").Where("severity", OneOf("low", "nope")).Build(sch); !errors.Is(err, ErrOutOfDomain) {
		t.Errorf("unknown label in set: %v", err)
	}
	if _, err := NewProfile("e").Where("temperature", Cond{}).Build(sch); err == nil {
		t.Error("zero Cond must fail")
	}
	if _, err := NewProfile("e").Where("temperature", GE(1)).Where("temperature", LE(2)).Build(sch); err == nil {
		t.Error("duplicate attribute must fail")
	}
	if _, err := NewProfile("e").Where("temperature", Between(5, 1)).Build(sch); err == nil {
		t.Error("inverted range must fail")
	}
	if _, err := NewProfile("e").Where("temperature", In()).Build(sch); err == nil {
		t.Error("empty set must fail")
	}
}

// TestBuilderSubscribe: the one-step builder subscription matches like its
// parsed twin and carries options through.
func TestBuilderSubscribe(t *testing.T) {
	svc, err := NewService(builderSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sub, err := NewProfile("hot").
		Where("temperature", GE(35)).
		Where("severity", OneOf("mid", "high")).
		Priority(3).
		Subscribe(svc, SubBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Profile().Weight() != 3 {
		t.Errorf("weight = %g", sub.Profile().Weight())
	}
	matched, err := svc.PublishValues(40, 50, 1, 2) // severity=high
	if err != nil || matched != 1 {
		t.Fatalf("matched=%d err=%v", matched, err)
	}
	n, err := sub.Next(t.Context())
	if err != nil || n.Profile != "hot" {
		t.Fatalf("next = %+v, %v", n, err)
	}
	if matched, err := svc.PublishValues(40, 50, 1, 0); err != nil || matched != 0 {
		t.Fatalf("severity=low must not match: %d, %v", matched, err)
	}
}
