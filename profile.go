package genas

import (
	"fmt"

	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/sentinel"
)

// Cond is one attribute condition of a typed profile. Construct conditions
// with the package-level constructors (GE, Between, In, Is, …) and attach
// them with ProfileBuilder.Where. A Cond compiles to exactly the predicate
// the profile-language parser would produce for the equivalent expression,
// so builder-built and parser-built profiles are interchangeable.
type Cond struct {
	apply func(attr int, dom schema.Domain) (predicate.Predicate, error)
}

func scalarCond(op predicate.Op, v float64) Cond {
	return Cond{apply: func(attr int, _ schema.Domain) (predicate.Predicate, error) {
		return predicate.NewComparison(attr, op, v)
	}}
}

// Eq matches values equal to v.
func Eq(v float64) Cond { return scalarCond(predicate.OpEq, v) }

// Ne matches values different from v.
func Ne(v float64) Cond { return scalarCond(predicate.OpNe, v) }

// LT matches values below v.
func LT(v float64) Cond { return scalarCond(predicate.OpLt, v) }

// LE matches values at most v.
func LE(v float64) Cond { return scalarCond(predicate.OpLe, v) }

// GT matches values above v.
func GT(v float64) Cond { return scalarCond(predicate.OpGt, v) }

// GE matches values at least v.
func GE(v float64) Cond { return scalarCond(predicate.OpGe, v) }

// Between matches values in the inclusive range [lo, hi].
func Between(lo, hi float64) Cond {
	return Cond{apply: func(attr int, _ schema.Domain) (predicate.Predicate, error) {
		return predicate.NewRange(attr, lo, hi)
	}}
}

// In matches values contained in the given set.
func In(vs ...float64) Cond {
	return Cond{apply: func(attr int, _ schema.Domain) (predicate.Predicate, error) {
		return predicate.NewIn(attr, vs...)
	}}
}

// Is matches a categorical attribute equal to the given label.
func Is(label string) Cond {
	return Cond{apply: func(attr int, dom schema.Domain) (predicate.Predicate, error) {
		c, err := labelCode(dom, label)
		if err != nil {
			return predicate.Predicate{}, err
		}
		return predicate.NewComparison(attr, predicate.OpEq, c)
	}}
}

// OneOf matches a categorical attribute equal to any of the given labels.
func OneOf(labels ...string) Cond {
	return Cond{apply: func(attr int, dom schema.Domain) (predicate.Predicate, error) {
		vs := make([]float64, len(labels))
		for i, l := range labels {
			c, err := labelCode(dom, l)
			if err != nil {
				return predicate.Predicate{}, err
			}
			vs[i] = c
		}
		return predicate.NewIn(attr, vs...)
	}}
}

// AnyValue is the explicit don't-care condition ("attr = *" in the profile
// language). Attributes without a condition are don't-care implicitly; the
// explicit form exists so rendered profiles round-trip.
func AnyValue() Cond {
	return Cond{apply: func(attr int, _ schema.Domain) (predicate.Predicate, error) {
		return predicate.NewAny(attr), nil
	}}
}

func labelCode(dom schema.Domain, label string) (float64, error) {
	if dom.Kind() != schema.KindCategorical {
		return 0, fmt.Errorf("genas: label %q on non-categorical domain %s: %w",
			label, dom, sentinel.ErrOutOfDomain)
	}
	c, ok := dom.Code(label)
	if !ok {
		return 0, fmt.Errorf("genas: unknown label %q for domain %s: %w",
			label, dom, sentinel.ErrOutOfDomain)
	}
	return float64(c), nil
}

// ProfileBuilder assembles a conjunctive profile programmatically — the typed
// front-end to the same predicate form the profile-language parser produces:
//
//	p, err := genas.NewProfile("heat-alarm").
//		Where("temperature", genas.GE(35)).
//		Where("humidity", genas.Between(80, 100)).
//		Priority(2).
//		Build(sch)
//
// is identical to parsing
// "profile(temperature >= 35; humidity in [80,100])" with priority 2.
type ProfileBuilder struct {
	id       string
	priority float64
	wheres   []builderWhere
}

type builderWhere struct {
	attr string
	cond Cond
}

// NewProfile starts a profile with the given subscription id.
func NewProfile(id string) *ProfileBuilder {
	return &ProfileBuilder{id: id}
}

// Where adds one attribute condition. At most one condition per attribute;
// express conjunctions within an attribute as Between or In.
func (b *ProfileBuilder) Where(attr string, c Cond) *ProfileBuilder {
	b.wheres = append(b.wheres, builderWhere{attr: attr, cond: c})
	return b
}

// Priority sets the user-centric priority weight (higher is more important;
// zero keeps the default weight 1).
func (b *ProfileBuilder) Priority(w float64) *ProfileBuilder {
	b.priority = w
	return b
}

// Build compiles the profile against the schema.
func (b *ProfileBuilder) Build(sch *Schema) (*Profile, error) {
	if len(b.wheres) == 0 {
		return nil, fmt.Errorf("genas: profile %s: %w", b.id, predicate.ErrEmptyProfile)
	}
	preds := make([]predicate.Predicate, 0, len(b.wheres))
	for _, w := range b.wheres {
		if w.cond.apply == nil {
			return nil, fmt.Errorf("genas: profile %s: empty condition on %s: %w",
				b.id, w.attr, predicate.ErrBadPredicate)
		}
		i, err := sch.Index(w.attr)
		if err != nil {
			return nil, err
		}
		pr, err := w.cond.apply(i, sch.At(i).Domain)
		if err != nil {
			return nil, fmt.Errorf("genas: profile %s, attribute %s: %w", b.id, w.attr, err)
		}
		preds = append(preds, pr)
	}
	p, err := predicate.New(sch, predicate.ID(b.id), preds...)
	if err != nil {
		return nil, err
	}
	p.Priority = b.priority
	return p, nil
}

// Subscribe builds the profile against the service schema and registers it in
// one step.
func (b *ProfileBuilder) Subscribe(s *Service, opts ...SubOption) (*Subscription, error) {
	p, err := b.Build(s.Schema())
	if err != nil {
		return nil, err
	}
	return s.SubscribeProfile(p, opts...)
}
