package genas

import (
	"testing"
	"time"
)

func TestMonitorComposite(t *testing.T) {
	sch := MustSchema(
		Attr("temperature", MustNumericDomain(-30, 50)),
		Attr("humidity", MustNumericDomain(0, 100)),
	)
	svc, err := NewService(sch)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	heatThenHumid, err := Seq(Prim("heat"), Prim("humid"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := svc.MonitorComposite(
		map[string]string{
			"heat":  "profile(temperature >= 40)",
			"humid": "profile(humidity >= 90)",
		},
		map[string]CompositeExpr{"storm-risk": heatThenHumid},
		16,
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()

	publish := func(temp, hum float64, at time.Time) {
		ev, err := svc.ParseEvent("event(temperature=0; humidity=0)")
		if err != nil {
			t.Fatal(err)
		}
		ev.Vals[0], ev.Vals[1] = temp, hum
		ev.Time = at
		if _, err := svc.PublishEvent(ev); err != nil {
			t.Fatal(err)
		}
	}

	base := time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)
	publish(45, 10, base)                     // heat
	publish(20, 95, base.Add(10*time.Second)) // humid → completes the sequence
	select {
	case d := <-mon.C():
		if d.Name != "storm-risk" {
			t.Errorf("detection = %+v", d)
		}
		if !d.Start.Equal(base) || !d.End.Equal(base.Add(10*time.Second)) {
			t.Errorf("span = %v..%v", d.Start, d.End)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no composite detection")
	}

	// Humid before heat must not fire (timestamps beyond the first heat's
	// window, so no stale pairing either — the operators are
	// non-consuming: every heat pairs with every humid inside the window).
	publish(20, 95, base.Add(5*time.Minute))
	publish(45, 10, base.Add(5*time.Minute+time.Second))
	select {
	case d := <-mon.C():
		t.Fatalf("unexpected detection %+v", d)
	case <-time.After(100 * time.Millisecond):
	}

	// Stop tears the primitive subscriptions down and closes the stream.
	mon.Stop()
	if _, open := readEventually(mon.C()); open {
		t.Error("detection channel must close after Stop")
	}
	if st := svc.Stats(); st.Subscriptions != 0 {
		t.Errorf("primitive subscriptions leaked: %d", st.Subscriptions)
	}
}

func readEventually(c <-chan CompositeEvent) (CompositeEvent, bool) {
	deadline := time.After(2 * time.Second)
	for {
		select {
		case d, open := <-c:
			if !open {
				return CompositeEvent{}, false
			}
			_ = d
		case <-deadline:
			return CompositeEvent{}, true
		}
	}
}

func TestMonitorCompositeErrors(t *testing.T) {
	sch := MustSchema(Attr("x", MustNumericDomain(0, 1)))
	svc, err := NewService(sch)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.MonitorComposite(nil, nil, 0); err == nil {
		t.Error("empty primitives must fail")
	}
	expr, _ := OrElse(Prim("a"), Prim("b"))
	if _, err := svc.MonitorComposite(
		map[string]string{"a": "profile(!!)"},
		map[string]CompositeExpr{"e": expr}, 0); err == nil {
		t.Error("bad primitive must fail")
	}
	// Failed monitor must not leak subscriptions.
	if st := svc.Stats(); st.Subscriptions != 0 {
		t.Errorf("leaked %d subscriptions", st.Subscriptions)
	}
}
