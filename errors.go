package genas

import "genas/internal/sentinel"

// The v1 error sentinels. Every error the service returns wraps one of these
// where applicable, so callers discriminate with errors.Is against public
// values only — no internal error value is part of the supported surface.
//
//	if _, err := svc.Publish(vals); errors.Is(err, genas.ErrOutOfDomain) { … }
var (
	// ErrUnknownAttribute reports an attribute name (or index) that is not
	// part of the service schema.
	ErrUnknownAttribute = sentinel.ErrUnknownAttribute
	// ErrOutOfDomain reports an event or default value outside its
	// attribute's domain.
	ErrOutOfDomain = sentinel.ErrOutOfDomain
	// ErrDuplicateID reports a subscription id that is already registered.
	ErrDuplicateID = sentinel.ErrDuplicateID
	// ErrUnknownID reports a subscription id that is not registered.
	ErrUnknownID = sentinel.ErrUnknownID
	// ErrClosed reports an operation on a closed service or subscription.
	ErrClosed = sentinel.ErrClosed
	// ErrBadBuffer reports a non-positive notification buffer size.
	ErrBadBuffer = sentinel.ErrBadBuffer
	// ErrArity reports an event whose value count does not match the
	// schema (too few, too many, or unfilled defaults).
	ErrArity = sentinel.ErrArity
	// ErrBadSchema reports an invalid schema or domain construction: no
	// attributes, duplicate names, or a malformed domain.
	ErrBadSchema = sentinel.ErrBadSchema
	// ErrBadProfile reports an invalid profile construction: no
	// predicates, or a malformed predicate.
	ErrBadProfile = sentinel.ErrBadProfile
)
