package selectivity_test

import "math/rand"

// newRand returns a deterministic PRNG for reproducible tests.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
