// Package selectivity implements the paper's distribution-based selectivity
// measures and the expected-response-time model of §3–§4.
//
// Value selectivity reorders the values tested inside each tree node:
//
//	V1: descending event probability P_e(x_i)
//	V2: descending profile probability P_p(x_i)
//	V3: descending combined probability P_e(x_i)·P_p(x_i)
//
// Attribute selectivity reorders the tree levels:
//
//	A1: s(a_j) = d₀(a_j) / d_j
//	A2: s(a_j) = d₀(a_j)·P_e(D₀(a_j)) / d_j
//	A3: the attribute order minimizing the expected operations under the
//	    conditional distributions (exhaustive, O(n!·(2p−1)))
//
// The response time R(a, P_p, P_e) = E(X) + R₀(P_e, x₀) of Eq. 2 is computed
// by Analyze, which walks the shared-state automaton and weights every
// bucket's search cost by its event probability.
package selectivity

import (
	"errors"
	"fmt"
	"sort"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/subrange"
	"genas/internal/tree"
)

// ErrTooManyAttributes guards the factorial A3 search.
var ErrTooManyAttributes = errors.New("selectivity: A3 exhaustive search supports at most 8 attributes")

// --- Value orderings -----------------------------------------------------------

// massOf sums an event/profile distribution over a bucket region.
func massOf(d dist.Dist, region []tree.Interval) float64 {
	total := 0.0
	for _, iv := range region {
		total += d.Mass(iv)
	}
	return total
}

// Natural returns the ascending natural value order.
func Natural() tree.ValueOrder { return tree.NaturalOrder() }

// NaturalDesc returns the descending natural value order.
func NaturalDesc() tree.ValueOrder {
	vo := tree.NaturalOrder()
	vo.Name = "natural-desc"
	vo.Descending = true
	return vo
}

// V1 orders values by event probability (Measure V1). dists is indexed by
// schema attribute.
func V1(dists []dist.Dist, descending bool) tree.ValueOrder {
	return tree.ValueOrder{
		Name:       suffix("event", descending),
		Descending: descending,
		Rank: func(attr int, region []tree.Interval) float64 {
			return massOf(dists[attr], region)
		},
	}
}

// V2 orders values by profile probability (Measure V2).
func V2(pdists []dist.Dist, descending bool) tree.ValueOrder {
	return tree.ValueOrder{
		Name:       suffix("profile", descending),
		Descending: descending,
		Rank: func(attr int, region []tree.Interval) float64 {
			return massOf(pdists[attr], region)
		},
	}
}

// V3 orders values by the product P_e·P_p (Measure V3).
func V3(edists, pdists []dist.Dist, descending bool) tree.ValueOrder {
	return tree.ValueOrder{
		Name:       suffix("event*profile", descending),
		Descending: descending,
		Rank: func(attr int, region []tree.Interval) float64 {
			return massOf(edists[attr], region) * massOf(pdists[attr], region)
		},
	}
}

// V2Empirical orders values by the priority-weighted fraction of profiles
// referencing them, estimating P_p from the profile set itself when no
// profile distribution is given (the adaptive component's default). Profile
// priorities realize the user-centric approach: regions demanded by
// high-priority subscribers are tested first.
func V2Empirical(s *schema.Schema, profiles []*predicate.Profile, descending bool) tree.ValueOrder {
	return tree.ValueOrder{
		Name:       suffix("profile-emp", descending),
		Descending: descending,
		Rank: func(attr int, region []tree.Interval) float64 {
			total, hit := 0.0, 0.0
			for _, p := range profiles {
				w := p.Weight()
				total += w
				if !p.Constrains(attr) {
					hit += w // don't-care references every region
					continue
				}
				if overlapsAny(p.Pred(attr).Intervals(s.At(attr).Domain), region) {
					hit += w
				}
			}
			if total == 0 {
				return 0
			}
			return hit / total
		},
	}
}

func overlapsAny(a []schema.Interval, b []tree.Interval) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Overlaps(y) {
				return true
			}
		}
	}
	return false
}

func suffix(name string, descending bool) string {
	if descending {
		return name
	}
	return name + "-asc"
}

// --- Attribute selectivity ------------------------------------------------------

// AttrStats carries the per-attribute quantities of Measures A1/A2.
type AttrStats struct {
	Attr       int
	DomainSize float64 // d_j
	D0Size     float64 // d₀(a_j), zero when any profile leaves a_j unspecified
	PE0        float64 // P_e(D₀(a_j)), event mass on the zero-subdomain
	A1         float64 // d₀/d
	A2         float64 // d₀·P_e(D₀)/d
}

// AttributeStats computes A1/A2 statistics for every attribute from the full
// profile set. edists may be nil, in which case PE0 and A2 are zero.
func AttributeStats(s *schema.Schema, profiles []*predicate.Profile, edists []dist.Dist) []AttrStats {
	out := make([]AttrStats, s.N())
	for attr := 0; attr < s.N(); attr++ {
		dom := s.At(attr).Domain
		cons := make([]subrange.Constraint, 0, len(profiles))
		for i, p := range profiles {
			if !p.Constrains(attr) {
				cons = append(cons, subrange.Constraint{Profile: i, DontCare: true})
				continue
			}
			cons = append(cons, subrange.Constraint{Profile: i, Intervals: p.Pred(attr).Intervals(dom)})
		}
		dec := subrange.Decompose(dom, cons)
		st := AttrStats{Attr: attr, DomainSize: dec.DomainSize, D0Size: dec.D0Size}
		if dec.DomainSize > 0 {
			st.A1 = dec.D0Size / dec.DomainSize
		}
		if edists != nil && dec.D0Size > 0 {
			for _, g := range dec.Gaps {
				st.PE0 += edists[attr].Mass(g)
			}
			st.A2 = st.A1 * st.PE0
		}
		out[attr] = st
	}
	return out
}

// AttrMeasure selects which attribute selectivity measure drives ordering.
type AttrMeasure int

// Attribute measures.
const (
	MeasureA1 AttrMeasure = iota + 1
	MeasureA2
	MeasureA3
)

// String names the measure.
func (m AttrMeasure) String() string {
	switch m {
	case MeasureA1:
		return "A1"
	case MeasureA2:
		return "A2"
	case MeasureA3:
		return "A3"
	default:
		return fmt.Sprintf("AttrMeasure(%d)", int(m))
	}
}

// OrderAttributes returns the attribute order (most selective first when
// descending=true; the paper's recommended configuration) under Measure A1
// or A2. Ties keep the natural attribute order.
func OrderAttributes(stats []AttrStats, m AttrMeasure, descending bool) []int {
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	score := func(a int) float64 {
		switch m {
		case MeasureA2:
			return stats[a].A2
		default:
			return stats[a].A1
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := score(order[i]), score(order[j])
		if si != sj {
			if descending {
				return si > sj
			}
			return si < sj
		}
		return order[i] < order[j]
	})
	return order
}

// OrderAttributesA3 exhaustively searches all n! attribute orders for the one
// minimizing the analytic expected operations (Measure A3). It returns the
// best order and its expected operations per event.
func OrderAttributesA3(
	s *schema.Schema,
	profiles []*predicate.Profile,
	edists []dist.Dist,
	vo tree.ValueOrder,
	strategy tree.Search,
) ([]int, float64, error) {
	n := s.N()
	if n > 8 {
		return nil, 0, fmt.Errorf("%w: n=%d", ErrTooManyAttributes, n)
	}
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	bestOps := 0.0
	var best []int
	first := true
	var err error
	permute(base, 0, func(order []int) {
		if err != nil {
			return
		}
		tr, buildErr := tree.Build(s, profiles,
			tree.WithAttributeOrder(order), tree.WithSearch(strategy))
		if buildErr != nil {
			err = buildErr
			return
		}
		tr.ApplyValueOrder(vo)
		a := Analyze(tr, edists)
		if first || a.TotalOps < bestOps {
			first = false
			bestOps = a.TotalOps
			best = append(best[:0], order...)
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return best, bestOps, nil
}

// permute enumerates permutations of xs in place (Heap's algorithm would
// also work; simple recursion keeps the order deterministic).
func permute(xs []int, k int, visit func([]int)) {
	if k == len(xs) {
		visit(xs)
		return
	}
	for i := k; i < len(xs); i++ {
		xs[k], xs[i] = xs[i], xs[k]
		permute(xs, k+1, visit)
		xs[k], xs[i] = xs[i], xs[k]
	}
}
