package selectivity_test

import (
	"fmt"
	"math/rand"
	"testing"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/selectivity"
	"genas/internal/tree"
)

func gridSchema(t *testing.T, n, hi int) *schema.Schema {
	t.Helper()
	attrs := make([]schema.Attribute, n)
	for i := range attrs {
		d, err := schema.NewIntegerDomain(0, hi)
		if err != nil {
			t.Fatal(err)
		}
		attrs[i] = schema.Attribute{Name: fmt.Sprintf("a%d", i), Domain: d}
	}
	return schema.MustNew(attrs...)
}

func uniformDists(s *schema.Schema) []dist.Dist {
	ds := make([]dist.Dist, s.N())
	for i := range ds {
		ds[i] = dist.New(dist.UniformShape{}, s.At(i).Domain)
	}
	return ds
}

// randomEqProfiles draws equality/range/don't-care profiles.
func randomEqProfiles(t *testing.T, s *schema.Schema, p int, rng *rand.Rand) []*predicate.Profile {
	t.Helper()
	out := make([]*predicate.Profile, 0, p)
	for i := 0; i < p; i++ {
		var preds []predicate.Predicate
		for attr := 0; attr < s.N(); attr++ {
			hi := int(s.At(attr).Domain.Hi())
			switch rng.Intn(3) {
			case 0:
				continue
			case 1:
				pr, _ := predicate.NewComparison(attr, predicate.OpEq, float64(rng.Intn(hi+1)))
				preds = append(preds, pr)
			default:
				lo := rng.Intn(hi)
				pr, _ := predicate.NewRange(attr, float64(lo), float64(lo+rng.Intn(hi-lo+1)))
				preds = append(preds, pr)
			}
		}
		prof, err := predicate.New(s, predicate.ID(fmt.Sprintf("p%d", i)), preds...)
		if err != nil {
			continue
		}
		out = append(out, prof)
	}
	if len(out) == 0 {
		pr, _ := predicate.NewComparison(0, predicate.OpEq, 1)
		prof, _ := predicate.New(s, "p0", pr)
		out = append(out, prof)
	}
	return out
}

// TestAnalyzeMatchesEmpirical: the analytic expectation agrees with the
// empirical mean over sampled events for every strategy and random
// workloads — the property that makes TV4 a valid substitute for posting
// millions of events (§4.2 "The result is similar to posting the events with
// the given distribution").
func TestAnalyzeMatchesEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		s := gridSchema(t, 1+rng.Intn(3), 15)
		profiles := randomEqProfiles(t, s, 3+rng.Intn(20), rng)
		eds := make([]dist.Dist, s.N())
		for i := range eds {
			switch trial % 3 {
			case 0:
				eds[i] = dist.New(dist.UniformShape{}, s.At(i).Domain)
			case 1:
				eds[i] = dist.New(dist.Gauss(), s.At(i).Domain)
			default:
				eds[i] = dist.New(dist.PeakLow(0.9), s.At(i).Domain)
			}
		}
		for _, strategy := range []tree.Search{tree.SearchLinear, tree.SearchBinary, tree.SearchLinearNoStop, tree.SearchInterpolation, tree.SearchHash} {
			tr, err := tree.Build(s, profiles, tree.WithSearch(strategy))
			if err != nil {
				t.Fatal(err)
			}
			tr.ApplyValueOrder(selectivity.V1(eds, true))
			want := selectivity.Analyze(tr, eds).TotalOps

			const n = 40000
			total := 0
			vals := make([]float64, s.N())
			for i := 0; i < n; i++ {
				for a := range vals {
					vals[a] = eds[a].Sample(rng)
				}
				_, ops := tr.Match(vals)
				total += ops
			}
			got := float64(total) / n
			if !schema.AlmostEqual(got, want, 0.05) {
				t.Fatalf("trial %d %v: empirical %.3f vs analytic %.3f", trial, strategy, got, want)
			}
		}
	}
}

// TestAnalyzeProbabilities: MatchProb ∈ [0,1], ExpMatches ≥ MatchProb, and
// per-profile probabilities sum to ExpMatches.
func TestAnalyzeProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := gridSchema(t, 2, 12)
	profiles := randomEqProfiles(t, s, 15, rng)
	tr, err := tree.Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	eds := uniformDists(s)
	a := selectivity.Analyze(tr, eds)
	if a.MatchProb < 0 || a.MatchProb > 1+1e-9 {
		t.Errorf("MatchProb = %g", a.MatchProb)
	}
	if a.ExpMatches < a.MatchProb-1e-9 {
		t.Errorf("ExpMatches %g < MatchProb %g", a.ExpMatches, a.MatchProb)
	}
	sum := 0.0
	for _, pc := range a.PerProfile {
		sum += pc.MatchProb
	}
	if !schema.AlmostEqual(sum, a.ExpMatches, 1e-9) {
		t.Errorf("Σ per-profile prob %g != ExpMatches %g", sum, a.ExpMatches)
	}
	if a.TotalOps != a.MatchOps+a.R0Ops {
		t.Error("TotalOps decomposition broken")
	}
	for l := 0; l < s.N(); l++ {
		if !schema.AlmostEqual(a.PerLevelOps[l], a.PerLevelMatch[l]+a.PerLevelR0[l], 1e-9) {
			t.Errorf("level %d decomposition broken", l)
		}
	}
}

// TestV1ReducesExpectedOps: on peaked event distributions the V1 ordering
// must not be worse than natural order (it is optimal for single-level
// linear scans by the rearrangement inequality).
func TestV1ReducesExpectedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	s := gridSchema(t, 1, 50)
	profiles := randomEqProfiles(t, s, 30, rng)
	eds := []dist.Dist{dist.New(dist.PeakHigh(0.9), s.At(0).Domain)}

	tr, err := tree.Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	natural := selectivity.Analyze(tr, eds).MatchOps
	tr.ApplyValueOrder(selectivity.V1(eds, true))
	ordered := selectivity.Analyze(tr, eds).MatchOps
	if ordered > natural+1e-9 {
		t.Errorf("V1 %.3f worse than natural %.3f on matched events", ordered, natural)
	}
}

// TestA3FindsOptimum: the exhaustive A3 search returns an order at least as
// good as both the natural and the A1 orders.
func TestA3FindsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	s := gridSchema(t, 3, 10)
	profiles := randomEqProfiles(t, s, 12, rng)
	eds := make([]dist.Dist, s.N())
	for i := range eds {
		eds[i] = dist.New(dist.RelocatedGauss(0.1), s.At(i).Domain)
	}
	vo := selectivity.V1(eds, true)

	best, bestOps, err := selectivity.OrderAttributesA3(s, profiles, eds, vo, tree.SearchLinear)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 3 {
		t.Fatalf("A3 order = %v", best)
	}
	check := func(order []int) float64 {
		tr, err := tree.Build(s, profiles, tree.WithAttributeOrder(order))
		if err != nil {
			t.Fatal(err)
		}
		tr.ApplyValueOrder(vo)
		return selectivity.Analyze(tr, eds).TotalOps
	}
	natOps := check([]int{0, 1, 2})
	st := selectivity.AttributeStats(s, profiles, eds)
	a1Ops := check(selectivity.OrderAttributes(st, selectivity.MeasureA1, true))
	if bestOps > natOps+1e-9 || bestOps > a1Ops+1e-9 {
		t.Errorf("A3 ops %.3f worse than natural %.3f or A1 %.3f", bestOps, natOps, a1Ops)
	}
	if got := check(best); !schema.AlmostEqual(got, bestOps, 1e-9) {
		t.Errorf("A3 reported %.3f but rebuild gives %.3f", bestOps, got)
	}
}

// TestA3RejectsWideSchemas: the factorial search is guarded.
func TestA3RejectsWideSchemas(t *testing.T) {
	s := gridSchema(t, 9, 3)
	rng := rand.New(rand.NewSource(1))
	profiles := randomEqProfiles(t, s, 3, rng)
	_, _, err := selectivity.OrderAttributesA3(s, profiles, uniformDists(s), selectivity.Natural(), tree.SearchLinear)
	if err == nil {
		t.Fatal("9-attribute A3 must be rejected")
	}
}

// TestOrderAttributesStable: ties preserve natural order.
func TestOrderAttributesStable(t *testing.T) {
	stats := []selectivity.AttrStats{
		{Attr: 0, A1: 0.5}, {Attr: 1, A1: 0.5}, {Attr: 2, A1: 0.9},
	}
	order := selectivity.OrderAttributes(stats, selectivity.MeasureA1, true)
	if order[0] != 2 || order[1] != 0 || order[2] != 1 {
		t.Errorf("order = %v, want [2 0 1]", order)
	}
	asc := selectivity.OrderAttributes(stats, selectivity.MeasureA1, false)
	if asc[0] != 0 || asc[1] != 1 || asc[2] != 2 {
		t.Errorf("asc order = %v, want [0 1 2]", asc)
	}
}

// TestV2EmpiricalPriorities: higher-priority profiles pull their regions
// forward in the defined order.
func TestV2EmpiricalPriorities(t *testing.T) {
	s := gridSchema(t, 1, 9)
	lo := predicate.MustParse(s, "lo", "profile(a0 = 2)")
	hi := predicate.MustParse(s, "hi", "profile(a0 = 7)")
	hi.Priority = 10
	profiles := []*predicate.Profile{lo, hi}

	tr, err := tree.Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	tr.ApplyValueOrder(selectivity.V2Empirical(s, profiles, true))
	root := tr.Root()
	scan := root.ScanOrder()
	edges := root.Edges()
	if len(scan) != 2 {
		t.Fatalf("edges = %d", len(scan))
	}
	if edges[scan[0]].Iv.Lo != 7 {
		t.Errorf("high-priority region must be scanned first, got %v", edges[scan[0]].Iv)
	}
}

// TestMeanProfileOpsAndNotification metrics behave sanely.
func TestDerivedMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := gridSchema(t, 2, 10)
	profiles := randomEqProfiles(t, s, 10, rng)
	tr, err := tree.Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	a := selectivity.Analyze(tr, uniformDists(s))
	if a.ExpMatches > 0 && a.OpsPerNotification() <= 0 {
		t.Error("OpsPerNotification must be positive when matches exist")
	}
	if a.MeanProfileOps() < 0 {
		t.Error("MeanProfileOps negative")
	}
	empty := selectivity.Analysis{}
	if empty.OpsPerNotification() != 0 || empty.MeanProfileOps() != 0 {
		t.Error("empty analysis metrics must be 0")
	}
}
