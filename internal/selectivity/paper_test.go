package selectivity_test

import (
	"math"
	"testing"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/selectivity"
	"genas/internal/tree"
)

func almost(t *testing.T, name string, got, want, eps float64) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Errorf("%s = %.4f, want %.4f (±%g)", name, got, want, eps)
	}
}

// stepOver builds a distribution assigning exact masses to regions of a
// numeric domain. cuts are domain coordinates (ascending, spanning the
// domain); weights[i] is the mass of [cuts[i], cuts[i+1]].
func stepOver(t *testing.T, dom schema.Domain, cuts []float64, weights []float64) dist.Dist {
	t.Helper()
	unit := make([]float64, len(cuts))
	lo, hi := dom.Lo(), dom.Hi()
	for i, c := range cuts {
		unit[i] = (c - lo) / (hi - lo)
	}
	sh, err := dist.NewStepAt("test", unit, weights)
	if err != nil {
		t.Fatal(err)
	}
	return dist.New(sh, dom)
}

// example2Setup builds the single-attribute temperature tree of Example 2:
// subranges x1=[−30,−20], x2=[30,35), x3=[35,50] and zero-subdomain
// x0=(−20,30), with P_e = (2%, 1%, 80%) and P_e(x0)=17%.
func example2Setup(t *testing.T) (*tree.Tree, []dist.Dist) {
	t.Helper()
	temp, err := schema.NewNumericDomain(-30, 50)
	if err != nil {
		t.Fatal(err)
	}
	s := schema.MustNew(schema.Attribute{Name: "temperature", Domain: temp})
	profiles := []*predicate.Profile{
		predicate.MustParse(s, "PA", "profile(temperature in [-30,-20])"),
		predicate.MustParse(s, "PB", "profile(temperature >= 30)"),
		predicate.MustParse(s, "PC", "profile(temperature >= 35)"),
	}
	tr, err := tree.Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Root().Edges()) != 3 {
		t.Fatalf("want 3 subranges, got %d:\n%s", len(tr.Root().Edges()), tr.Dump())
	}
	pe := stepOver(t, temp,
		[]float64{-30, -20, 30, 35, 50},
		[]float64{0.02, 0.17, 0.01, 0.80})
	return tr, []dist.Dist{pe}
}

// TestPaperExample2 reproduces every number of Example 2.
//
// Event-ordered (Measure V1): E(X) = 0.02·2 + 0.01·3 + 0.8·1 = 0.87 and the
// non-match region x0 ranks second in the defined order, so r0 = 2 and
// R = 0.87 + 2·0.17 = 1.21.
//
// Binary search: E(X) = 0.01·1 + 0.02·2 + 0.8·2 = 1.65, r0 = log2(2p−1) = 2,
// R = 1.65 + 0.34 = 1.99.
func TestPaperExample2(t *testing.T) {
	tr, pe := example2Setup(t)

	tr.ApplyValueOrder(selectivity.V1(pe, true))
	a := selectivity.Analyze(tr, pe)
	almost(t, "V1 E(X)", a.MatchOps, 0.87, 1e-9)
	almost(t, "V1 R0", a.R0Ops, 0.34, 1e-9)
	almost(t, "V1 R", a.TotalOps, 1.21, 1e-9)

	tr.SetStrategy(tree.SearchBinary)
	b := selectivity.Analyze(tr, pe)
	almost(t, "binary E(X)", b.MatchOps, 1.65, 1e-9)
	almost(t, "binary R0", b.R0Ops, 0.34, 1e-9)
	almost(t, "binary R", b.TotalOps, 1.99, 1e-9)
}

// TestPaperExample2Empirical verifies that posting sampled events through the
// real matcher converges to the analytic expectation (the consistency the
// paper's "statistics objects" simulation relies on, §4.2).
func TestPaperExample2Empirical(t *testing.T) {
	tr, pe := example2Setup(t)
	tr.ApplyValueOrder(selectivity.V1(pe, true))

	rng := newRand(42)
	const nEvents = 200000
	total := 0
	for i := 0; i < nEvents; i++ {
		v := pe[0].Sample(rng)
		_, ops := tr.Match([]float64{v})
		total += ops
	}
	avg := float64(total) / nEvents
	almost(t, "empirical avg ops", avg, 1.21, 0.01)
}

// example3Setup builds the full three-attribute tree with the event
// distributions of Examples 2–4 (independence assumed, as in the paper).
func example3Setup(t *testing.T) (*schema.Schema, []*predicate.Profile, []dist.Dist) {
	t.Helper()
	temp, _ := schema.NewNumericDomain(-30, 50)
	hum, _ := schema.NewNumericDomain(0, 100)
	rad, _ := schema.NewNumericDomain(1, 100)
	s := schema.MustNew(
		schema.Attribute{Name: "temperature", Domain: temp},
		schema.Attribute{Name: "humidity", Domain: hum},
		schema.Attribute{Name: "radiation", Domain: rad},
	)
	profiles := []*predicate.Profile{
		predicate.MustParse(s, "P1", "profile(temperature >= 35; humidity >= 90)"),
		predicate.MustParse(s, "P2", "profile(temperature >= 30; humidity >= 90)"),
		predicate.MustParse(s, "P3", "profile(temperature >= 30; humidity >= 90; radiation in [35,50])"),
		predicate.MustParse(s, "P4", "profile(temperature in [-30,-20]; humidity <= 5; radiation in [40,100])"),
		predicate.MustParse(s, "P5", "profile(temperature >= 30; humidity >= 80)"),
	}
	// P_e(X1) as in Example 2; P_e(X2), P_e(X3) as given in Example 3, with
	// bucket masses assigned to the tree subranges they align with: humidity
	// [0,5]→5%, (5,80)→60%, [80,90)→25%, [90,100]→10%; radiation
	// [1,35)→90%, [35,40)→5%, [40,50]→2%, (50,100]→3%.
	pe := []dist.Dist{
		stepOver(t, temp, []float64{-30, -20, 30, 35, 50}, []float64{0.02, 0.17, 0.01, 0.80}),
		stepOver(t, hum, []float64{0, 5, 80, 90, 100}, []float64{0.05, 0.60, 0.25, 0.10}),
		stepOver(t, rad, []float64{1, 35, 40, 50, 100}, []float64{0.90, 0.05, 0.02, 0.03}),
	}
	return s, profiles, pe
}

// TestPaperExample3Selectivities checks the Measure A1 values of Example 3:
// s(a1) = 50/80 = 0.625, s(a2) = 75/100 = 0.75, s(a3) = 0 (radiation is
// unspecified in P1, P2, P5, so its zero-subdomain is empty).
func TestPaperExample3Selectivities(t *testing.T) {
	s, profiles, pe := example3Setup(t)
	stats := selectivity.AttributeStats(s, profiles, pe)

	almost(t, "d0(a1)", stats[0].D0Size, 50, 1e-9)
	almost(t, "d(a1)", stats[0].DomainSize, 80, 1e-9)
	almost(t, "A1(a1)", stats[0].A1, 0.625, 1e-9)

	almost(t, "d0(a2)", stats[1].D0Size, 75, 1e-9)
	almost(t, "A1(a2)", stats[1].A1, 0.75, 1e-9)

	almost(t, "d0(a3)", stats[2].D0Size, 0, 1e-9)
	almost(t, "A1(a3)", stats[2].A1, 0, 1e-9)

	// P_e(D0): a1 → 17%, a2 → 60%, a3 → 0.
	almost(t, "PE0(a1)", stats[0].PE0, 0.17, 1e-9)
	almost(t, "PE0(a2)", stats[1].PE0, 0.60, 1e-9)
	almost(t, "PE0(a3)", stats[2].PE0, 0, 1e-9)

	// Both A1 and A2 order the attributes a2 > a1 > a3 ("Reordering based on
	// Measure A2 … leads to the same result").
	for _, m := range []selectivity.AttrMeasure{selectivity.MeasureA1, selectivity.MeasureA2} {
		order := selectivity.OrderAttributes(stats, m, true)
		if order[0] != 1 || order[1] != 0 || order[2] != 2 {
			t.Errorf("%v order = %v, want [1 0 2]", m, order)
		}
	}
}

// TestPaperExample3Reordering reproduces the headline of Example 3: attribute
// reordering by Measure A1 cuts the expected operations per matched event
// dramatically. The paper reports 3.371 → 1.91; under the operation-counting
// convention calibrated on Example 2 our model yields 3.16 → 1.57 (the
// paper's per-level addends 0.568 and 0.702 are not internally consistent
// with its own Examples 2 and 4 — see EXPERIMENTS.md). The first addends
// match the paper exactly: E(X1)=2.44 for the natural tree and E(X2)=0.85
// for the reordered tree, as does E(X1|X2)=0.364.
func TestPaperExample3Reordering(t *testing.T) {
	s, profiles, pe := example3Setup(t)

	natural, err := tree.Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	an := selectivity.Analyze(natural, pe)
	almost(t, "natural E(X1)", an.PerLevelOpsMatched(0), 2.44, 1e-9)

	stats := selectivity.AttributeStats(s, profiles, pe)
	order := selectivity.OrderAttributes(stats, selectivity.MeasureA1, true)
	reordered, err := tree.Build(s, profiles, tree.WithAttributeOrder(order))
	if err != nil {
		t.Fatal(err)
	}
	ar := selectivity.Analyze(reordered, pe)
	almost(t, "reordered E(X2)", ar.PerLevelOpsMatched(0), 0.85, 1e-9)
	almost(t, "reordered E(X1|X2)", ar.PerLevelOpsMatched(1), 0.3645, 1e-4)

	if ar.MatchOps >= an.MatchOps {
		t.Errorf("A1 reordering must reduce matched-path operations: natural %.3f, reordered %.3f",
			an.MatchOps, ar.MatchOps)
	}
	// The improvement factor is in the paper's ballpark (paper: 1.76×).
	ratio := an.MatchOps / ar.MatchOps
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("improvement ratio %.2f outside [1.5, 2.5]", ratio)
	}
}

// TestPaperExample4 applies both reorderings (V1 values + A2 attributes) and
// checks the combined tree beats the A1/natural-value tree of Example 3, and
// that linear search on the reordered tree beats binary search there (paper:
// 1.08 vs 1.616).
func TestPaperExample4(t *testing.T) {
	s, profiles, pe := example3Setup(t)
	stats := selectivity.AttributeStats(s, profiles, pe)
	order := selectivity.OrderAttributes(stats, selectivity.MeasureA2, true)

	combined, err := tree.Build(s, profiles, tree.WithAttributeOrder(order))
	if err != nil {
		t.Fatal(err)
	}
	combined.ApplyValueOrder(selectivity.V1(pe, true))
	av := selectivity.Analyze(combined, pe)

	naturalValues, err := tree.Build(s, profiles, tree.WithAttributeOrder(order))
	if err != nil {
		t.Fatal(err)
	}
	anat := selectivity.Analyze(naturalValues, pe)

	if av.MatchOps >= anat.MatchOps {
		t.Errorf("V1 ordering must improve on natural values: V1 %.3f, natural %.3f",
			av.MatchOps, anat.MatchOps)
	}

	combined.SetStrategy(tree.SearchBinary)
	abin := selectivity.Analyze(combined, pe)
	if av.MatchOps >= abin.MatchOps {
		t.Errorf("on this distribution V1 linear must beat binary: V1 %.3f, binary %.3f",
			av.MatchOps, abin.MatchOps)
	}
}
