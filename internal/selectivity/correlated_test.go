package selectivity_test

import (
	"math/rand"
	"testing"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/selectivity"
	"genas/internal/tree"
)

// TestAnalyzeUnderCorrelation quantifies the error of the independence
// assumption the paper's tests make ("For ease of computation we assume
// independent attributes", Example 3). Events are drawn from a two-regime
// correlated joint; the analytic model sees only the marginals. The test
// documents that (a) the analytic value matches an independent stream with
// the same marginals exactly, and (b) the correlated stream deviates but
// stays within a factor of two — the model degrades gracefully rather than
// collapsing.
func TestAnalyzeUnderCorrelation(t *testing.T) {
	d1, _ := schema.NewIntegerDomain(0, 49)
	d2, _ := schema.NewIntegerDomain(0, 49)
	s := schema.MustNew(
		schema.Attribute{Name: "a", Domain: d1},
		schema.Attribute{Name: "b", Domain: d2},
	)

	// Profiles watch the (high, high) corner.
	rng := rand.New(rand.NewSource(15))
	var profiles []*predicate.Profile
	for i := 0; i < 25; i++ {
		p1, _ := predicate.NewRange(0, float64(30+rng.Intn(15)), float64(45+rng.Intn(5)))
		p2, _ := predicate.NewRange(1, float64(30+rng.Intn(15)), float64(45+rng.Intn(5)))
		prof, err := predicate.New(s, predicate.ID(string(rune('a'+i))), p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, prof)
	}

	lo := []dist.Dist{dist.New(dist.PeakLow(0.95), d1), dist.New(dist.PeakLow(0.95), d2)}
	hi := []dist.Dist{dist.New(dist.PeakHigh(0.95), d1), dist.New(dist.PeakHigh(0.95), d2)}
	joint, err := dist.NewCorrelated([]float64{1, 1}, [][]dist.Dist{lo, hi})
	if err != nil {
		t.Fatal(err)
	}
	marginals := []dist.Dist{joint.Marginal(0), joint.Marginal(1)}

	tr, err := tree.Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	tr.ApplyValueOrder(selectivity.V1(marginals, true))
	analytic := selectivity.Analyze(tr, marginals).TotalOps

	run := func(sample func(*rand.Rand) []float64) float64 {
		const n = 60000
		total := 0
		for i := 0; i < n; i++ {
			_, ops := tr.Match(sample(rng))
			total += ops
		}
		return float64(total) / n
	}

	independent := run(func(r *rand.Rand) []float64 {
		return []float64{marginals[0].Sample(r), marginals[1].Sample(r)}
	})
	correlated := run(joint.SampleEvent)

	// (a) independence: the model is exact.
	if !schema.AlmostEqual(independent, analytic, 0.05) {
		t.Errorf("independent stream %.3f vs analytic %.3f", independent, analytic)
	}
	// (b) correlation: bounded degradation, and a real deviation must exist
	// (otherwise the test would not be exercising anything).
	ratio := correlated / analytic
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("correlated stream %.3f vs analytic %.3f (ratio %.2f) outside [0.5, 2]",
			correlated, analytic, ratio)
	}
	if schema.AlmostEqual(correlated, independent, 0.01) {
		t.Logf("note: correlation did not shift the mean (%.3f vs %.3f)", correlated, independent)
	}
}
