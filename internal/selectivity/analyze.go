package selectivity

import (
	"genas/internal/dist"
	"genas/internal/tree"
)

// Analysis is the analytic expected-cost breakdown of a configured tree under
// per-attribute event distributions (independent attributes, as the paper's
// tests assume). All quantities are expectations per posted event.
//
// TotalOps = MatchOps + R0Ops realizes Eq. 2 summed over attributes:
// R = Σ_j E(X_j | X_{j−1}…) + Σ_j R₀(P_e^j, x₀^j).
type Analysis struct {
	// MatchOps is Σ_j E(X_j | …): operations spent traversing edges.
	MatchOps float64
	// R0Ops is Σ_j R₀: operations spent identifying non-matching events.
	R0Ops float64
	// TotalOps is the expected operations per event.
	TotalOps float64
	// MatchProb is the probability that an event reaches a leaf (matches at
	// least one profile).
	MatchProb float64
	// ExpMatches is the expected number of matched profiles per event.
	ExpMatches float64
	// PerLevelOps[l] is the expected operations spent at tree level l,
	// split into the matched-path part E(X_l | …) and the non-match part
	// R₀ (Example 3 reports the matched addends: 2.44 + 0.568 + 0.363).
	PerLevelOps   []float64
	PerLevelMatch []float64
	PerLevelR0    []float64
	// PerProfile is indexed by dense profile index.
	PerProfile []ProfileCost
}

// ProfileCost is the per-profile view behind Fig. 5(b): the expected
// operations performed until the profile's leaf is reached, conditioned on
// the event matching the profile.
type ProfileCost struct {
	// MatchProb is the probability an event matches the profile.
	MatchProb float64
	// CondOps is E[operations | event matches the profile].
	CondOps float64
}

// OpsPerNotification returns TotalOps / ExpMatches: the Fig. 5(c) metric
// "average operations per event and profile". It is +Inf when no profile can
// match.
func (a Analysis) OpsPerNotification() float64 {
	if a.ExpMatches == 0 {
		return 0
	}
	return a.TotalOps / a.ExpMatches
}

// MeanProfileOps returns the unweighted mean of CondOps over profiles with
// non-zero match probability: the Fig. 5(b) metric "average operations per
// profile".
func (a Analysis) MeanProfileOps() float64 {
	sum, n := 0.0, 0
	for _, pc := range a.PerProfile {
		if pc.MatchProb > 0 {
			sum += pc.CondOps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PerLevelOpsMatched returns the matched-path expectation E(X_l | …) at tree
// level l — the addends Example 3 reports.
func (a Analysis) PerLevelOpsMatched(l int) float64 { return a.PerLevelMatch[l] }

// nodeAcc accumulates path weight and weighted cumulative operations for one
// shared automaton state.
type nodeAcc struct {
	w float64 // Σ over paths of reach probability
	c float64 // Σ over paths of probability·(ops spent so far)
}

// Analyze computes the expected filter cost of the tree under the event
// distributions (indexed by schema attribute). The cost model is exactly the
// one the empirical matcher executes — both call Node.CostOf — so analytic
// and simulated results agree by construction (see the equivalence property
// test).
func Analyze(t *tree.Tree, edists []dist.Dist) Analysis {
	res := Analysis{
		PerLevelOps:   make([]float64, t.Schema().N()),
		PerLevelMatch: make([]float64, t.Schema().N()),
		PerLevelR0:    make([]float64, t.Schema().N()),
		PerProfile:    make([]ProfileCost, len(t.Profiles())),
	}
	acc := map[*tree.Node]*nodeAcc{t.Root(): {w: 1}}
	strategy := t.Strategy()

	profProb := make([]float64, len(t.Profiles()))
	profOps := make([]float64, len(t.Profiles()))

	for _, level := range t.Levels() {
		for _, n := range level {
			a, ok := acc[n]
			if !ok || a.w == 0 {
				continue
			}
			ed := edists[n.Attr]
			for bi, b := range n.Buckets() {
				p := ed.Mass(b.Iv)
				if p == 0 {
					continue
				}
				_, ops := n.CostOf(bi, strategy)
				cost := float64(ops)
				res.PerLevelOps[n.Level] += a.w * p * cost
				if b.Edge < 0 {
					res.R0Ops += a.w * p * cost
					res.PerLevelR0[n.Level] += a.w * p * cost
					continue
				}
				res.MatchOps += a.w * p * cost
				res.PerLevelMatch[n.Level] += a.w * p * cost
				edge := n.Edges()[b.Edge]
				if edge.Child != nil {
					ch, ok := acc[edge.Child]
					if !ok {
						ch = &nodeAcc{}
						acc[edge.Child] = ch
					}
					ch.w += a.w * p
					ch.c += a.c*p + a.w*p*cost
					continue
				}
				// Leaf edge: notification point for every matched profile.
				res.MatchProb += a.w * p
				res.ExpMatches += a.w * p * float64(len(edge.Leaf()))
				pathOps := a.c*p + a.w*p*cost
				for _, pi := range edge.Leaf() {
					profProb[pi] += a.w * p
					profOps[pi] += pathOps
				}
			}
		}
	}

	res.TotalOps = res.MatchOps + res.R0Ops
	for i := range profProb {
		if profProb[i] > 0 {
			res.PerProfile[i] = ProfileCost{
				MatchProb: profProb[i],
				CondOps:   profOps[i] / profProb[i],
			}
		}
	}
	return res
}
