package routing

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"genas/internal/broker"
	"genas/internal/event"
	"genas/internal/predicate"
)

// errPoisoned is returned by the failing link filter below.
var errPoisoned = errors.New("poisoned link engine")

// poisonedFilter is a link engine whose Match always fails.
type poisonedFilter struct{}

func (poisonedFilter) ProfileCount() int { return 1 }
func (poisonedFilter) Match([]float64) ([]predicate.ID, int, error) {
	return nil, 0, errPoisoned
}

// poisonLink swaps the named link's filter engine for one that always errors.
func poisonLink(t *testing.T, nw *Network, node, via string) {
	t.Helper()
	n, err := nw.Node(node)
	if err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[via]
	if !ok {
		t.Fatalf("no link %s-%s", node, via)
	}
	l.engine = poisonedFilter{}
}

// TestDeliverSurvivesPoisonedLink: when one link's engine errors, the event
// still reaches every healthy link (regression: deliver used to abort the
// remaining fan-out and silently starve peers later in the hops slice).
func TestDeliverSurvivesPoisonedLink(t *testing.T) {
	s := testSchema(t)
	// Star around B: A publishes, B fans out to C, D, E. One of B's three
	// outbound links is poisoned per sub-test, and the subscribers behind the
	// two healthy links must still be notified regardless of iteration order.
	for _, poisoned := range []string{"C", "D", "E"} {
		t.Run("poison-B-"+poisoned, func(t *testing.T) {
			nw := NewNetwork(s, Options{})
			t.Cleanup(nw.Close)
			for _, n := range []string{"A", "B", "C", "D", "E"} {
				if _, err := nw.AddNode(n); err != nil {
					t.Fatal(err)
				}
			}
			for _, spoke := range []string{"A", "C", "D", "E"} {
				if err := nw.Connect("B", spoke); err != nil {
					t.Fatal(err)
				}
			}
			subs := make(map[string]*broker.Subscription)
			for _, node := range []string{"C", "D", "E"} {
				p := predicate.MustParse(s, predicate.ID("at"+node), "profile(price >= 500)")
				sub, err := nw.Subscribe(node, p)
				if err != nil {
					t.Fatal(err)
				}
				subs[node] = sub
			}
			poisonLink(t, nw, "B", poisoned)

			total, err := nw.Publish("A", event.MustNew(s, 700, 10))
			if !errors.Is(err, errPoisoned) {
				t.Fatalf("err = %v, want the poisoned link surfaced", err)
			}
			if total != 2 {
				t.Errorf("matched = %d, want 2 (both healthy links delivered)", total)
			}
			for node, sub := range subs {
				want := node != poisoned
				select {
				case <-sub.C():
					if !want {
						t.Errorf("%s notified across a poisoned link", node)
					}
				case <-time.After(200 * time.Millisecond):
					if want {
						t.Errorf("%s starved: healthy link skipped after the poisoned one errored", node)
					}
				}
			}
		})
	}
}

// TestCoveringWithdrawRearmsRoutes: unsubscribing the covering (broad)
// profile must re-arm the previously covered narrow route on every affected
// link (the rebuildLink path), so events matching only the narrow profile
// keep flowing end to end.
func TestCoveringWithdrawRearmsRoutes(t *testing.T) {
	s := testSchema(t)
	nw := lineNetwork(t, true)
	if _, err := nw.Subscribe("D", predicate.MustParse(s, "broad", "profile(price >= 100)")); err != nil {
		t.Fatal(err)
	}
	narrow, err := nw.Subscribe("D", predicate.MustParse(s, "narrow", "profile(price >= 500)"))
	if err != nil {
		t.Fatal(err)
	}
	// While broad lives, every link from A to D carries one uncovered route.
	for _, hop := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}} {
		n, _ := nw.Node(hop[0])
		if rc := n.RouteCount(hop[1]); rc != 1 {
			t.Errorf("%s-%s routes = %d, want 1 (narrow covered by broad)", hop[0], hop[1], rc)
		}
	}
	if err := nw.Unsubscribe("D", "broad"); err != nil {
		t.Fatal(err)
	}
	// The narrow route must be re-armed on every affected link, not just the
	// first hop.
	for _, hop := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}} {
		n, _ := nw.Node(hop[0])
		if rc := n.RouteCount(hop[1]); rc != 1 {
			t.Errorf("after withdraw, %s-%s routes = %d, want 1 (narrow re-armed)", hop[0], hop[1], rc)
		}
	}
	if _, err := nw.Publish("A", event.MustNew(s, 700, 10)); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-narrow.C():
		if n.Profile != "narrow" {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(time.Second):
		t.Fatal("narrow starved after its covering profile was withdrawn")
	}
	if st := nw.Stats(); st.Messages != 3 {
		t.Errorf("messages = %d, want 3 (A-B-C-D)", st.Messages)
	}
}

// TestCoveringEquivalentTiebreakWithdraw: with two equivalent profiles the
// smaller id survives in the link engines (the p.ID < id tiebreak).
// Withdrawing that surviving smaller-id profile must promote the larger-id
// equivalent on every link, and delivery must keep working end to end.
func TestCoveringEquivalentTiebreakWithdraw(t *testing.T) {
	s := testSchema(t)
	nw := lineNetwork(t, true)
	if _, err := nw.Subscribe("D", predicate.MustParse(s, "e1", "profile(price >= 500)")); err != nil {
		t.Fatal(err)
	}
	e2, err := nw.Subscribe("D", predicate.MustParse(s, "e2", "profile(price >= 500)"))
	if err != nil {
		t.Fatal(err)
	}
	// Withdraw the surviving smaller id: e2 must be promoted on every link.
	if err := nw.Unsubscribe("D", "e1"); err != nil {
		t.Fatal(err)
	}
	for _, hop := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}} {
		n, _ := nw.Node(hop[0])
		if rc := n.RouteCount(hop[1]); rc != 1 {
			t.Errorf("%s-%s routes = %d, want 1 (e2 promoted)", hop[0], hop[1], rc)
		}
	}
	matched, err := nw.Publish("A", event.MustNew(s, 700, 10))
	if err != nil {
		t.Fatal(err)
	}
	if matched != 1 {
		t.Errorf("matched = %d, want 1", matched)
	}
	select {
	case <-e2.C():
	case <-time.After(time.Second):
		t.Fatal("e2 starved after the equivalent smaller-id profile was withdrawn")
	}
}

// TestRoutingRaceStress runs concurrent publishes at every node while
// subscriptions churn across the overlay, then checks the stable subscribers
// against a sequential oracle: a profile registered before the first publish
// receives exactly the events it matches, no losses, no duplicates (the
// broker-level adaptive stress pattern lifted to the overlay). Run under
// -race; the schedule noise is the point.
func TestRoutingRaceStress(t *testing.T) {
	const (
		publishers   = 4
		churners     = 4
		eventsPerPub = 150
		totalEvents  = publishers * eventsPerPub
		stableSubs   = 8
		churnPerG    = 30
	)
	s := testSchema(t)
	nodes := []string{"A", "B", "C", "D"}
	for _, covering := range []bool{false, true} {
		t.Run(fmt.Sprintf("covering=%v", covering), func(t *testing.T) {
			// Buffers sized so a stable subscriber can never drop: a drop
			// would be indistinguishable from a lost forward.
			nw := NewNetwork(s, Options{
				Covering: covering,
				Broker:   broker.Options{DefaultBuffer: totalEvents},
			})
			t.Cleanup(nw.Close)
			for _, n := range nodes {
				if _, err := nw.AddNode(n); err != nil {
					t.Fatal(err)
				}
			}
			for _, l := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}} {
				if err := nw.Connect(l[0], l[1]); err != nil {
					t.Fatal(err)
				}
			}

			type stable struct {
				p    *predicate.Profile
				sub  *broker.Subscription
				node string
			}
			stables := make([]stable, stableSubs)
			for i := range stables {
				expr := fmt.Sprintf("profile(price >= %d)", i*120)
				p := predicate.MustParse(s, predicate.ID(fmt.Sprintf("stable%d", i)), expr)
				node := nodes[i%len(nodes)]
				sub, err := nw.Subscribe(node, p)
				if err != nil {
					t.Fatal(err)
				}
				stables[i] = stable{p: p, sub: sub, node: node}
			}

			var wg sync.WaitGroup
			published := make([][]event.Event, publishers)
			for g := 0; g < publishers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + g)))
					origin := nodes[g%len(nodes)]
					evs := make([]event.Event, 0, eventsPerPub)
					for i := 0; i < eventsPerPub; i++ {
						ev := event.MustNew(s, float64(rng.Intn(1001)), float64(rng.Intn(101)))
						if _, err := nw.Publish(origin, ev); err != nil {
							panic(err)
						}
						evs = append(evs, ev)
					}
					published[g] = evs
				}()
			}
			for g := 0; g < churners; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(200 + g)))
					for i := 0; i < churnPerG; i++ {
						id := predicate.ID(fmt.Sprintf("churn%d-%d", g, i))
						expr := fmt.Sprintf("profile(volume >= %d)", rng.Intn(100))
						node := nodes[rng.Intn(len(nodes))]
						if _, err := nw.Subscribe(node, predicate.MustParse(s, id, expr)); err != nil {
							panic(err)
						}
						if err := nw.Unsubscribe(node, id); err != nil {
							panic(err)
						}
					}
				}()
			}
			wg.Wait()

			// Sequential oracle: overlay delivery is synchronous with
			// Publish, so once every publisher returned, each stable buffer
			// holds its complete notification set.
			for i, st := range stables {
				if d := st.sub.Dropped(); d != 0 {
					t.Fatalf("stable%d dropped %d notifications: its buffer was sized to hold everything", i, d)
				}
				want := 0
				for _, evs := range published {
					for _, ev := range evs {
						if st.p.Matches(ev.Vals) {
							want++
						}
					}
				}
				got := len(st.sub.C())
				if got != want {
					t.Errorf("stable%d@%s: received %d notifications, oracle says %d", i, st.node, got, want)
				}
				seen := make(map[uint64]bool, got)
				for len(st.sub.C()) > 0 {
					n := <-st.sub.C()
					if !st.p.Matches(n.Event.Vals) {
						t.Fatalf("stable%d: notified for non-matching event %v", i, n.Event.Vals)
					}
					key := n.Event.Seq
					if seen[key] {
						t.Fatalf("stable%d: duplicate notification for seq %d", i, key)
					}
					seen[key] = true
				}
			}
			if st := nw.Stats(); st.Messages == 0 {
				t.Error("stress run forwarded nothing across links")
			}
		})
	}
}
