package routing

import (
	"fmt"
	"math/rand"
	"testing"

	"genas/internal/agg"
	"genas/internal/core"
	"genas/internal/predicate"
	"genas/internal/schema"
)

// randomProfileExpr builds one random profile expression over (price, volume)
// with integer endpoints, mixing don't-care, point, one-sided and interval
// constraints per attribute. At least one attribute is always constrained.
func randomProfileExpr(rng *rand.Rand) string {
	mk := func(attr string, max int) string {
		lo := rng.Intn(max + 1)
		hi := lo + rng.Intn(max/4+1)
		if hi > max {
			hi = max
		}
		switch rng.Intn(5) {
		case 0:
			return ""
		case 1:
			return fmt.Sprintf("%s = %d", attr, lo)
		case 2:
			return fmt.Sprintf("%s >= %d", attr, lo)
		case 3:
			return fmt.Sprintf("%s <= %d", attr, hi)
		default:
			return fmt.Sprintf("%s in [%d,%d]", attr, lo, hi)
		}
	}
	cp, cv := mk("price", 1000), mk("volume", 100)
	switch {
	case cp == "" && cv == "":
		return fmt.Sprintf("profile(price >= %d)", rng.Intn(1000))
	case cp == "":
		return fmt.Sprintf("profile(%s)", cv)
	case cv == "":
		return fmt.Sprintf("profile(%s)", cp)
	default:
		return fmt.Sprintf("profile(%s; %s)", cp, cv)
	}
}

// pairProbes builds a probe grid tailored to two profiles: domain edges plus
// every interval endpoint of either profile and its ±1 neighbors, crossed
// over both attributes. Direct evaluation over this grid refutes bogus
// containment claims: every region boundary either profile can express lies
// on the grid.
func pairProbes(s *schema.Schema, p, q *predicate.Profile) [][]float64 {
	axes := make([][]float64, 2)
	for attr := 0; attr < 2; attr++ {
		dom := s.Attributes()[attr].Domain
		set := map[float64]bool{dom.Lo(): true, dom.Hi(): true}
		for _, prof := range []*predicate.Profile{p, q} {
			if !prof.Constrains(attr) {
				continue
			}
			for _, iv := range prof.Pred(attr).Intervals(dom) {
				for _, v := range []float64{iv.Lo - 1, iv.Lo, iv.Lo + 1, iv.Hi - 1, iv.Hi, iv.Hi + 1} {
					if v >= dom.Lo() && v <= dom.Hi() {
						set[v] = true
					}
				}
			}
		}
		axis := make([]float64, 0, len(set))
		for v := range set {
			axis = append(axis, v)
		}
		axes[attr] = axis
	}
	probes := make([][]float64, 0, len(axes[0])*len(axes[1]))
	for _, x := range axes[0] {
		for _, y := range axes[1] {
			probes = append(probes, []float64{x, y})
		}
	}
	return probes
}

// TestPosetAgreesWithCoveringOracle drives 1000 random profile pairs through
// a fresh covering poset and checks its order relation against two
// independent oracles:
//
//  1. the quadratic pairwise oracle — predicate.Covers / CoveredByOther, the
//     exact rule the per-install rescan used before the poset replaced it;
//  2. probe-grid direct evaluation — whenever either side claims containment,
//     every grid event matching the covered profile must match the coverer.
func TestPosetAgreesWithCoveringOracle(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 1000; trial++ {
		p := predicate.MustParse(s, "p", randomProfileExpr(rng))
		q := predicate.MustParse(s, "q", randomProfileExpr(rng))

		po := agg.NewPoset(s)
		po.Add(p)
		po.Add(q)

		qCoversP := predicate.Covers(s, q, p)
		pCoversQ := predicate.Covers(s, p, q)
		want := agg.Incomparable
		switch {
		case qCoversP && pCoversQ:
			want = agg.Equal
		case pCoversQ:
			want = agg.Covers
		case qCoversP:
			want = agg.CoveredBy
		}
		got := po.RelationOf("p", "q")
		if got != want {
			t.Fatalf("trial %d: %s vs %s: poset says %v, pairwise Covers says %v",
				trial, p.Render(s), q.Render(s), got, want)
		}

		// The rescan-era pruning rule, pair by pair: p is dropped exactly
		// when q covers it (ties keep the smaller id, and "p" < "q").
		routes := map[predicate.ID]*predicate.Profile{"p": p, "q": q}
		if oracle := CoveredByOther(s, p, routes); oracle != (qCoversP && !pCoversQ) {
			t.Fatalf("trial %d: CoveredByOther(p) = %v, Covers oracle %v", trial, oracle, qCoversP && !pCoversQ)
		}
		// q is dropped whenever p covers it: on equivalence the smaller id
		// ("p") wins the tiebreak.
		if oracle := CoveredByOther(s, q, routes); oracle != pCoversQ {
			t.Fatalf("trial %d: CoveredByOther(q) = %v disagrees with Covers", trial, oracle)
		}

		// Containment claims must survive direct evaluation over the grid.
		if got == agg.Equal || got == agg.CoveredBy || got == agg.Covers {
			wide, narrow := p, q
			if got == agg.CoveredBy {
				wide, narrow = q, p
			}
			for _, probe := range pairProbes(s, p, q) {
				if narrow.Matches(probe) && !wide.Matches(probe) {
					t.Fatalf("trial %d: poset claims %s ⊇ %s but event %v matches only the narrow side",
						trial, wide.Render(s), narrow.Render(s), probe)
				}
				if got == agg.Equal && wide.Matches(probe) != narrow.Matches(probe) {
					t.Fatalf("trial %d: poset claims equivalence but event %v splits %s / %s",
						trial, probe, p.Render(s), q.Render(s))
				}
			}
		}
	}
}

// benchProfiles builds n distinct random route profiles.
func benchProfiles(b *testing.B, s *schema.Schema, n int) []*predicate.Profile {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	ps := make([]*predicate.Profile, n)
	for i := range ps {
		ps[i] = predicate.MustParse(s, predicate.ID(fmt.Sprintf("r%d", i)), randomProfileExpr(rng))
	}
	return ps
}

// BenchmarkRouteInstall measures the cost of installing one more route on a
// link already carrying n routes, covering enabled.
//
//   - poset: the current path — one incremental AddProfile into the link's
//     aggregated engine; the covering poset places the new route against the
//     root antichain.
//   - rescan: the pre-poset path — rebuild the link engine from scratch,
//     running the O(n) CoveredByOther scan for every route: O(n²) covering
//     checks per install.
//
// Run with -benchtime=1x for the large rescan sizes; a single rescan at 10⁴
// routes performs 10⁸ covering checks.
func BenchmarkRouteInstall(b *testing.B) {
	price, _ := schema.NewNumericDomain(0, 1000)
	vol, _ := schema.NewNumericDomain(0, 100)
	s := schema.MustNew(
		schema.Attribute{Name: "price", Domain: price},
		schema.Attribute{Name: "volume", Domain: vol},
	)
	for _, n := range []int{100, 1000, 10000} {
		profiles := benchProfiles(b, s, n)
		extra := predicate.MustParse(s, "extra", "profile(price in [500,501]; volume = 7)")

		b.Run(fmt.Sprintf("poset/routes=%d", n), func(b *testing.B) {
			eng := core.NewEngine(s, core.Config{Aggregate: true})
			for _, p := range profiles {
				if err := eng.AddProfile(p); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.AddProfile(extra); err != nil {
					b.Fatal(err)
				}
				if err := eng.RemoveProfile(extra.ID); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("rescan/routes=%d", n), func(b *testing.B) {
			routes := make(map[predicate.ID]*predicate.Profile, n+1)
			for _, p := range profiles {
				routes[p.ID] = p
			}
			routes[extra.ID] = extra
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The old rebuildLink body, verbatim in shape.
				eng := core.NewEngine(s, core.Config{})
				for _, p := range routes {
					if CoveredByOther(s, p, routes) {
						continue
					}
					if err := eng.AddProfile(p); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
