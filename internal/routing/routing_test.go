package routing

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"genas/internal/broker"
	"genas/internal/event"
	"genas/internal/predicate"
	"genas/internal/schema"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	price, _ := schema.NewNumericDomain(0, 1000)
	vol, _ := schema.NewNumericDomain(0, 100)
	return schema.MustNew(
		schema.Attribute{Name: "price", Domain: price},
		schema.Attribute{Name: "volume", Domain: vol},
	)
}

// lineNetwork builds A—B—C—D.
func lineNetwork(t *testing.T, covering bool) *Network {
	t.Helper()
	nw := NewNetwork(testSchema(t), Options{Covering: covering})
	for _, n := range []string{"A", "B", "C", "D"} {
		if _, err := nw.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}} {
		if err := nw.Connect(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(nw.Close)
	return nw
}

func TestTopologyErrors(t *testing.T) {
	nw := lineNetwork(t, false)
	if _, err := nw.AddNode("A"); !errors.Is(err, ErrDuplicate) {
		t.Error("duplicate node must fail")
	}
	if err := nw.Connect("A", "A"); !errors.Is(err, ErrSelfLink) {
		t.Error("self link must fail")
	}
	if err := nw.Connect("A", "B"); !errors.Is(err, ErrAlreadyLinked) {
		t.Error("duplicate link must fail")
	}
	if err := nw.Connect("A", "D"); !errors.Is(err, ErrCycle) {
		t.Error("cycle must be rejected")
	}
	if err := nw.Connect("A", "Z"); !errors.Is(err, ErrUnknownNode) {
		t.Error("unknown node must fail")
	}
	if _, err := nw.Node("Z"); !errors.Is(err, ErrUnknownNode) {
		t.Error("unknown lookup must fail")
	}
}

// TestCrossNetworkDelivery: a subscription at D receives events published at
// A, three hops away.
func TestCrossNetworkDelivery(t *testing.T) {
	nw := lineNetwork(t, false)
	s := testSchema(t)
	sub, err := nw.Subscribe("D", predicate.MustParse(s, "exp", "profile(price >= 500)"))
	if err != nil {
		t.Fatal(err)
	}
	matched, err := nw.Publish("A", event.MustNew(s, 700, 10))
	if err != nil {
		t.Fatal(err)
	}
	if matched != 1 {
		t.Fatalf("matched = %d", matched)
	}
	select {
	case n := <-sub.C():
		if n.Profile != "exp" {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(time.Second):
		t.Fatal("no notification across the overlay")
	}
	st := nw.Stats()
	if st.Messages != 3 {
		t.Errorf("messages = %d, want 3 (A→B→C→D)", st.Messages)
	}
}

// TestEarlyRejection: events nobody wants never cross a link.
func TestEarlyRejection(t *testing.T) {
	nw := lineNetwork(t, false)
	s := testSchema(t)
	if _, err := nw.Subscribe("D", predicate.MustParse(s, "exp", "profile(price >= 500)")); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Publish("A", event.MustNew(s, 100, 10)); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.Messages != 0 {
		t.Errorf("uninteresting event crossed %d links", st.Messages)
	}
	if st.Filtered == 0 {
		t.Error("early rejection not recorded")
	}
}

// TestLocalDeliveryDoesNotFlood: an event matching only a local profile at
// the publishing node crosses no links.
func TestLocalDeliveryDoesNotFlood(t *testing.T) {
	nw := lineNetwork(t, false)
	s := testSchema(t)
	sub, err := nw.Subscribe("A", predicate.MustParse(s, "local", "profile(price <= 100)"))
	if err != nil {
		t.Fatal(err)
	}
	matched, err := nw.Publish("A", event.MustNew(s, 50, 10))
	if err != nil {
		t.Fatal(err)
	}
	if matched != 1 {
		t.Fatalf("matched = %d", matched)
	}
	select {
	case <-sub.C():
	case <-time.After(time.Second):
		t.Fatal("local notification missing")
	}
	if st := nw.Stats(); st.Messages != 0 {
		t.Errorf("local event crossed %d links", st.Messages)
	}
}

// TestUnsubscribeWithdrawsRoutes: after unsubscribing, events stop flowing.
func TestUnsubscribeWithdrawsRoutes(t *testing.T) {
	nw := lineNetwork(t, false)
	s := testSchema(t)
	if _, err := nw.Subscribe("D", predicate.MustParse(s, "exp", "profile(price >= 500)")); err != nil {
		t.Fatal(err)
	}
	if err := nw.Unsubscribe("D", "exp"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Publish("A", event.MustNew(s, 700, 10)); err != nil {
		t.Fatal(err)
	}
	if st := nw.Stats(); st.Messages != 0 {
		t.Errorf("withdrawn route still forwarded %d messages", st.Messages)
	}
	// A's link toward B holds no routes anymore.
	a, _ := nw.Node("A")
	if rc := a.RouteCount("B"); rc != 0 {
		t.Errorf("A→B routes = %d", rc)
	}
}

// TestCoveringPrunesRoutes: with covering on, a broad profile absorbs a
// narrow one in the routing tables while delivery stays identical.
func TestCoveringPrunesRoutes(t *testing.T) {
	s := testSchema(t)
	for _, covering := range []bool{false, true} {
		nw := lineNetwork(t, covering)
		broad, err := nw.Subscribe("D", predicate.MustParse(s, "broad", "profile(price >= 100)"))
		if err != nil {
			t.Fatal(err)
		}
		narrow, err := nw.Subscribe("D", predicate.MustParse(s, "narrow", "profile(price >= 500)"))
		if err != nil {
			t.Fatal(err)
		}
		a, _ := nw.Node("A")
		want := 2
		if covering {
			want = 1 // narrow is covered by broad
		}
		if rc := a.RouteCount("B"); rc != want {
			t.Errorf("covering=%v: A→B routes = %d, want %d", covering, rc, want)
		}
		// Delivery is identical either way.
		if _, err := nw.Publish("A", event.MustNew(s, 700, 10)); err != nil {
			t.Fatal(err)
		}
		for _, c := range []struct {
			sub  *broker.Subscription
			name string
		}{{broad, "broad"}, {narrow, "narrow"}} {
			select {
			case n := <-c.sub.C():
				if n.Profile != predicate.ID(c.name) {
					t.Errorf("covering=%v: wrong notification %+v", covering, n)
				}
			case <-time.After(time.Second):
				t.Fatalf("covering=%v: %s missed its notification", covering, c.name)
			}
		}
		nw.Close()
	}
}

// TestCoveringEquivalentProfiles: two equivalent profiles keep exactly one
// route, and removing the survivor re-promotes the other.
func TestCoveringEquivalentProfiles(t *testing.T) {
	s := testSchema(t)
	nw := lineNetwork(t, true)
	if _, err := nw.Subscribe("D", predicate.MustParse(s, "e1", "profile(price >= 500)")); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Subscribe("D", predicate.MustParse(s, "e2", "profile(price >= 500)")); err != nil {
		t.Fatal(err)
	}
	a, _ := nw.Node("A")
	if rc := a.RouteCount("B"); rc != 1 {
		t.Errorf("equivalent profiles keep %d routes, want 1", rc)
	}
	if err := nw.Unsubscribe("D", "e1"); err != nil {
		t.Fatal(err)
	}
	if rc := a.RouteCount("B"); rc != 1 {
		t.Errorf("after removing e1, routes = %d, want 1 (e2 promoted)", rc)
	}
	if err := nw.Unsubscribe("D", "e2"); err != nil {
		t.Fatal(err)
	}
	if rc := a.RouteCount("B"); rc != 0 {
		t.Errorf("after removing both, routes = %d", rc)
	}
}

// TestStarTopologyFanout: a hub forwards only toward interested spokes.
func TestStarTopologyFanout(t *testing.T) {
	s := testSchema(t)
	nw := NewNetwork(s, Options{})
	t.Cleanup(nw.Close)
	if _, err := nw.AddNode("hub"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("spoke%d", i)
		if _, err := nw.AddNode(name); err != nil {
			t.Fatal(err)
		}
		if err := nw.Connect("hub", name); err != nil {
			t.Fatal(err)
		}
	}
	// Only spoke3 is interested in expensive events.
	if _, err := nw.Subscribe("spoke3", predicate.MustParse(s, "exp", "profile(price >= 500)")); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Publish("spoke0", event.MustNew(s, 700, 1)); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.Messages != 2 {
		t.Errorf("messages = %d, want 2 (spoke0→hub→spoke3)", st.Messages)
	}
}

// TestRandomizedOverlayAgreesWithFlatBroker: overlay delivery matches a
// single flat broker on random workloads — distribution does not change
// semantics.
func TestRandomizedOverlayAgreesWithFlatBroker(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(77))
	nw := lineNetwork(t, true)

	nodes := []string{"A", "B", "C", "D"}
	type reg struct {
		node string
		p    *predicate.Profile
	}
	var regs []reg
	for i := 0; i < 30; i++ {
		lo := float64(rng.Intn(900))
		expr := fmt.Sprintf("profile(price in [%g,%g])", lo, lo+float64(rng.Intn(100)))
		p := predicate.MustParse(s, predicate.ID(fmt.Sprintf("r%d", i)), expr)
		node := nodes[rng.Intn(len(nodes))]
		if _, err := nw.Subscribe(node, p); err != nil {
			t.Fatal(err)
		}
		regs = append(regs, reg{node, p})
	}
	for trial := 0; trial < 200; trial++ {
		ev := event.MustNew(s, float64(rng.Intn(1001)), float64(rng.Intn(101)))
		origin := nodes[rng.Intn(len(nodes))]
		got, err := nw.Publish(origin, ev)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, r := range regs {
			if r.p.Matches(ev.Vals) {
				want++
			}
		}
		if got != want {
			t.Fatalf("event %v from %s: overlay matched %d, flat %d", ev.Vals, origin, got, want)
		}
	}
}
