// Package routing implements a distributed broker overlay in the style of
// Siena (paper §2): brokers form an acyclic topology, profiles propagate
// through the network toward potential publishers, and events are rejected
// as early as possible — a broker forwards an event over a link only when a
// profile propagated from that direction matches it. Every broker runs the
// distribution-based filter engine both for its local subscribers and for
// its per-link routing filters, so the paper's tree optimizations apply at
// every hop ("Our approach can be used to reduce workload in resource
// critical environments … unnecessary event information is rejected as
// early as possible", §5).
package routing

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"genas/internal/broker"
	"genas/internal/core"
	"genas/internal/event"
	"genas/internal/predicate"
	"genas/internal/schema"
)

// Errors returned by the overlay.
var (
	ErrUnknownNode   = errors.New("routing: unknown node")
	ErrDuplicate     = errors.New("routing: duplicate node name")
	ErrCycle         = errors.New("routing: link would create a cycle")
	ErrSelfLink      = errors.New("routing: cannot link a node to itself")
	ErrAlreadyLinked = errors.New("routing: nodes already linked")
)

// Options configure a Network.
type Options struct {
	// Covering enables covering-based propagation pruning: link engines run
	// in aggregated mode, so each route install is one incremental covering-
	// poset insertion instead of an O(n²) rescan of the whole route set, and
	// only uncovered (root) routes are indexed for forwarding decisions.
	Covering bool
	// Engine configures every filter engine in the overlay (local and
	// per-link).
	Engine core.Config
	// Broker configures the per-node local broker.
	Broker broker.Options
}

// Network is a set of brokers plus their acyclic link topology.
type Network struct {
	mu     sync.RWMutex
	schema *schema.Schema
	opts   Options
	nodes  map[string]*Node
	// parent is a union-find structure guarding acyclicity.
	parent map[string]string

	messages atomic.Uint64 // inter-broker event forwards
	filtered atomic.Uint64 // events stopped by early rejection at some link
}

// NewNetwork creates an empty overlay over one schema.
func NewNetwork(s *schema.Schema, opts Options) *Network {
	if opts.Broker.Engine.ValueMeasure == 0 {
		opts.Broker.Engine = opts.Engine
	}
	return &Network{
		schema: s,
		opts:   opts,
		nodes:  make(map[string]*Node),
		parent: make(map[string]string),
	}
}

// Node is one broker in the overlay.
type Node struct {
	name  string
	nw    *Network
	local *broker.Broker

	mu    sync.RWMutex
	links map[string]*link
}

// linkFilter is the matching surface deliver needs from a link's filter
// engine. Production links always hold a *core.Engine; tests substitute
// failing filters to pin deliver's behavior when one link errors.
type linkFilter interface {
	ProfileCount() int
	Match(vals []float64) ([]predicate.ID, int, error)
}

// link is the routing state toward one neighbor: the profiles subscribed in
// that direction and the filter deciding forwards.
type link struct {
	peer *Node
	// routes maps profile id to the propagated profile.
	routes map[predicate.ID]*predicate.Profile
	// filter is the concrete engine route churn mutates incrementally. With
	// covering enabled it runs in aggregated mode: the canonical poset prunes
	// covered routes structurally, replacing the per-install rescan.
	filter *core.Engine
	// engine is the match surface deliver reads. It normally aliases filter;
	// tests substitute failing filters to pin deliver's error behavior.
	engine linkFilter
}

// newLink builds the routing state toward peer. Covering links aggregate:
// the engine's poset maintains the uncovered route set incrementally.
func (nw *Network) newLink(peer *Node) *link {
	cfg := nw.opts.Engine
	cfg.Aggregate = nw.opts.Covering
	eng := core.NewEngine(nw.schema, cfg)
	return &link{peer: peer, routes: make(map[predicate.ID]*predicate.Profile), filter: eng, engine: eng}
}

// AddNode creates a broker node.
func (nw *Network) AddNode(name string) (*Node, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, dup := nw.nodes[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	b, err := broker.New(nw.schema, nw.opts.Broker)
	if err != nil {
		return nil, err
	}
	n := &Node{name: name, nw: nw, local: b, links: make(map[string]*link)}
	nw.nodes[name] = n
	nw.parent[name] = name
	return n, nil
}

// Node returns a node by name.
func (nw *Network) Node(name string) (*Node, error) {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	n, ok := nw.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	return n, nil
}

// find is union-find root lookup with path compression.
func (nw *Network) find(x string) string {
	for nw.parent[x] != x {
		nw.parent[x] = nw.parent[nw.parent[x]]
		x = nw.parent[x]
	}
	return x
}

// Connect links two nodes bidirectionally. The topology must stay acyclic.
func (nw *Network) Connect(a, b string) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if a == b {
		return ErrSelfLink
	}
	na, ok := nw.nodes[a]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, a)
	}
	nb, ok := nw.nodes[b]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, b)
	}
	na.mu.Lock()
	_, linked := na.links[b]
	na.mu.Unlock()
	if linked {
		return fmt.Errorf("%w: %s-%s", ErrAlreadyLinked, a, b)
	}
	if nw.find(a) == nw.find(b) {
		return fmt.Errorf("%w: %s-%s", ErrCycle, a, b)
	}
	nw.parent[nw.find(a)] = nw.find(b)

	na.mu.Lock()
	na.links[b] = nw.newLink(nb)
	na.mu.Unlock()
	nb.mu.Lock()
	nb.links[a] = nw.newLink(na)
	nb.mu.Unlock()
	return nil
}

// Subscribe registers the profile at the named node and propagates it
// through the overlay.
func (nw *Network) Subscribe(node string, p *predicate.Profile) (*broker.Subscription, error) {
	n, err := nw.Node(node)
	if err != nil {
		return nil, err
	}
	sub, err := n.local.Subscribe(p)
	if err != nil {
		return nil, err
	}
	n.propagate(p, "")
	return sub, nil
}

// Unsubscribe removes the profile from the named node and withdraws its
// propagation everywhere.
func (nw *Network) Unsubscribe(node string, id predicate.ID) error {
	n, err := nw.Node(node)
	if err != nil {
		return err
	}
	if err := n.local.Unsubscribe(id); err != nil {
		return err
	}
	n.withdraw(id, "")
	return nil
}

// propagate installs p on every neighbor's link back toward this node, then
// recurses outward. from is the neighbor name the propagation arrived from
// ("" at the subscription origin).
func (n *Node) propagate(p *predicate.Profile, from string) {
	n.mu.RLock()
	peers := make([]*Node, 0, len(n.links))
	for name, l := range n.links {
		if name == from {
			continue
		}
		peers = append(peers, l.peer)
	}
	n.mu.RUnlock()
	for _, peer := range peers {
		peer.installRoute(n.name, p)
		peer.propagate(p, n.name)
	}
}

// installRoute records that profiles in direction `via` include p. The link
// engine is mutated incrementally: one AddProfile, which under covering is a
// single poset insertion — the engine's aggregation layer demotes newly
// covered routes itself, so no rescan of the existing route set happens here.
func (n *Node) installRoute(via string, p *predicate.Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[via]
	if !ok {
		return
	}
	if _, exists := l.routes[p.ID]; exists {
		// Re-install under the same id: replace, never duplicate.
		_ = l.filter.RemoveProfile(p.ID)
	}
	l.routes[p.ID] = p
	// Cannot fail: the id is not registered (checked above).
	_ = l.filter.AddProfile(p)
}

// withdraw removes the route for id in every direction away from `from`.
func (n *Node) withdraw(id predicate.ID, from string) {
	n.mu.RLock()
	peers := make([]*Node, 0, len(n.links))
	for name, l := range n.links {
		if name == from {
			continue
		}
		peers = append(peers, l.peer)
	}
	n.mu.RUnlock()
	for _, peer := range peers {
		peer.removeRoute(n.name, id)
		peer.withdraw(id, n.name)
	}
}

// removeRoute withdraws id from the link toward `via`. Under covering the
// engine's poset re-arms previously covered routes itself (kids of an
// emptied node re-link upward or promote to roots), so withdrawal is one
// incremental RemoveProfile, not a rebuild.
func (n *Node) removeRoute(via string, id predicate.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[via]
	if !ok {
		return
	}
	if _, exists := l.routes[id]; !exists {
		return
	}
	delete(l.routes, id)
	// Cannot fail: the id was registered (checked above).
	_ = l.filter.RemoveProfile(id)
}

// CoveredByOther reports whether some other route strictly covers p. Ties
// (mutual covering, i.e. equivalent profiles) keep the lexicographically
// smallest id to avoid dropping both.
//
// Route pruning itself no longer calls this — the link engines' covering
// poset maintains the uncovered set incrementally. It survives as the
// quadratic reference oracle: property tests check the poset's covering
// order against it pair by pair.
func CoveredByOther(s *schema.Schema, p *predicate.Profile, routes map[predicate.ID]*predicate.Profile) bool {
	for id, q := range routes {
		if id == p.ID {
			continue
		}
		if !predicate.Covers(s, q, p) {
			continue
		}
		if predicate.Covers(s, p, q) && p.ID < id {
			continue // equivalent profiles: the smaller id survives
		}
		return true
	}
	return false
}

// Publish posts the event at the named node. It returns the total number of
// local matches across all brokers the event reached.
func (nw *Network) Publish(node string, ev event.Event) (int, error) {
	n, err := nw.Node(node)
	if err != nil {
		return 0, err
	}
	return n.deliver(ev, "")
}

// deliver matches locally, then forwards over links whose routing filter
// accepts the event. A failing link never aborts the fan-out: every healthy
// link still receives the event and the errors are joined, so the returned
// match total always covers every reachable broker.
func (n *Node) deliver(ev event.Event, from string) (int, error) {
	matched, err := n.local.Publish(ev)
	if err != nil {
		return 0, err
	}
	total := matched

	n.mu.RLock()
	type hop struct {
		peer   *Node
		engine linkFilter
	}
	hops := make([]hop, 0, len(n.links))
	for name, l := range n.links {
		if name == from {
			continue
		}
		hops = append(hops, hop{peer: l.peer, engine: l.engine})
	}
	n.mu.RUnlock()

	var errs []error
	for _, h := range hops {
		if h.engine.ProfileCount() == 0 {
			n.nw.filtered.Add(1)
			continue
		}
		ids, _, err := h.engine.Match(ev.Vals)
		if err != nil {
			errs = append(errs, fmt.Errorf("link %s-%s: %w", n.name, h.peer.name, err))
			continue
		}
		if len(ids) == 0 {
			// Early rejection: nobody beyond this link wants the event.
			n.nw.filtered.Add(1)
			continue
		}
		n.nw.messages.Add(1)
		sub, err := h.peer.deliver(ev, n.name)
		total += sub
		if err != nil {
			errs = append(errs, err)
		}
	}
	return total, errors.Join(errs...)
}

// Broker exposes a node's local broker.
func (n *Node) Broker() *broker.Broker { return n.local }

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// RouteCount returns the number of uncovered routes installed toward `via`.
// With covering enabled that is the link poset's root count: covered routes
// stay registered (so withdrawal of their coverer re-arms them) but are not
// counted, matching the pruned route table of the rescan era.
func (n *Node) RouteCount(via string) int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l, ok := n.links[via]
	if !ok {
		return 0
	}
	if st := l.filter.AggStats(); st.Enabled {
		return st.Roots
	}
	return l.engine.ProfileCount()
}

// Stats summarizes overlay traffic.
type Stats struct {
	Nodes    int
	Messages uint64 // events forwarded across links
	Filtered uint64 // link crossings avoided by early rejection
}

// Stats returns overlay-wide counters.
func (nw *Network) Stats() Stats {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return Stats{
		Nodes:    len(nw.nodes),
		Messages: nw.messages.Load(),
		Filtered: nw.filtered.Load(),
	}
}

// Close shuts every broker down. The node set is snapshotted under the
// lock and the brokers closed outside it: Broker.Close waits out in-flight
// deliveries, and holding nw.mu across that wait would wedge every
// Publish/Node/Stats call behind one slow Block-policy subscriber
// (genasvet: locksafe).
func (nw *Network) Close() {
	nw.mu.Lock()
	nodes := make([]*Node, 0, len(nw.nodes))
	for _, n := range nw.nodes {
		nodes = append(nodes, n)
	}
	nw.mu.Unlock()
	for _, n := range nodes {
		n.local.Close()
	}
}
