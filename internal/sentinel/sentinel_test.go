package sentinel

import (
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// all lists every sentinel; new sentinels must be added here (the length
// check below fails otherwise), which keeps the table tests honest.
var all = map[string]error{
	"ErrUnknownAttribute": ErrUnknownAttribute,
	"ErrOutOfDomain":      ErrOutOfDomain,
	"ErrDuplicateID":      ErrDuplicateID,
	"ErrUnknownID":        ErrUnknownID,
	"ErrClosed":           ErrClosed,
	"ErrBadBuffer":        ErrBadBuffer,
	"ErrArity":            ErrArity,
	"ErrBadSchema":        ErrBadSchema,
	"ErrBadProfile":       ErrBadProfile,
}

// TestAllIsComplete parses sentinel.go and verifies every declared Err*
// variable appears in the table above.
func TestAllIsComplete(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sentinel.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	declared := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			for _, name := range spec.(*ast.ValueSpec).Names {
				if strings.HasPrefix(name.Name, "Err") {
					declared++
					if _, ok := all[name.Name]; !ok {
						t.Errorf("sentinel %s is not in the test table; add it", name.Name)
					}
				}
			}
		}
	}
	if declared != len(all) {
		t.Errorf("sentinel.go declares %d Err* variables, test table has %d", declared, len(all))
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	for aName, a := range all {
		for bName, b := range all {
			if aName != bName && errors.Is(a, b) {
				t.Errorf("errors.Is(%s, %s) = true; sentinels must be distinct", aName, bName)
			}
		}
	}
}

func TestSentinelMessages(t *testing.T) {
	seen := make(map[string]string, len(all))
	for name, err := range all {
		msg := err.Error()
		if !strings.HasPrefix(msg, "genas: ") {
			t.Errorf("%s = %q; sentinel messages carry the genas: prefix", name, msg)
		}
		if prev, dup := seen[msg]; dup {
			t.Errorf("%s and %s share the message %q", name, prev, msg)
		}
		seen[msg] = name
	}
}

func TestSentinelsSelfMatch(t *testing.T) {
	for name, err := range all {
		if !errors.Is(err, err) {
			t.Errorf("errors.Is(%s, %s) = false", name, name)
		}
	}
}
