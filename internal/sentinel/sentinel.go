// Package sentinel holds the canonical error values of the public genas v1
// surface. It is a leaf package so that both the public facade and the
// internal machinery (broker, schema, event) can wrap the same values:
// errors.Is(err, genas.ErrBadBuffer) then holds no matter which layer an
// error originated in, and no internal error value ever needs to leak
// through the facade.
package sentinel

import "errors"

// Canonical v1 sentinels. Package genas re-exports these values under the
// same names (minus the package qualifier); internal packages wrap them into
// their own, more specific error values.
var (
	// ErrUnknownAttribute reports an attribute name or index that is not part
	// of the service schema.
	ErrUnknownAttribute = errors.New("genas: unknown attribute")
	// ErrOutOfDomain reports an event or predicate value outside its
	// attribute's domain.
	ErrOutOfDomain = errors.New("genas: value outside attribute domain")
	// ErrDuplicateID reports a subscription id that is already registered.
	ErrDuplicateID = errors.New("genas: duplicate subscription id")
	// ErrUnknownID reports a subscription id that is not registered.
	ErrUnknownID = errors.New("genas: unknown subscription id")
	// ErrClosed reports an operation on a closed service, broker or
	// subscription.
	ErrClosed = errors.New("genas: closed")
	// ErrBadBuffer reports a non-positive notification buffer size.
	ErrBadBuffer = errors.New("genas: buffer size must be positive")
	// ErrArity reports an event whose value count does not match the
	// schema.
	ErrArity = errors.New("genas: value count does not match schema")
	// ErrBadSchema reports an invalid schema or domain construction: no
	// attributes, duplicate names, or malformed domains.
	ErrBadSchema = errors.New("genas: invalid schema")
	// ErrBadProfile reports an invalid profile construction: no
	// predicates, or a malformed predicate.
	ErrBadProfile = errors.New("genas: invalid profile")
)
