// Package predicate models profile predicates over schema attributes.
//
// A profile is a set of predicates defined as (attribute, value) pairs
// operating on the same attribute set as the events; not all attributes have
// to be specified (paper §3). Every comparison operator canonicalizes to a
// union of intervals clipped to the attribute domain, so the subrange
// decomposition and the profile tree only ever see intervals.
package predicate

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"genas/internal/schema"
	"genas/internal/sentinel"
)

// Op enumerates the comparison operators supported by the generic service.
// The paper's prototype supports equality and don't-care; the tree of Fig. 1
// additionally requires range and order tests, and §2 mentions inequality and
// set containment, so the full operator set is implemented.
type Op int

// Operators. OpAny is the don't-care value "*".
const (
	OpEq Op = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpRange
	OpIn
	OpAny
)

// String returns the operator spelling used by the profile language.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpRange:
		return "in"
	case OpIn:
		return "in-set"
	case OpAny:
		return "*"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Errors reported by predicate construction. Both wrap the public
// ErrBadProfile sentinel so profile-construction failures stay
// errors.Is-matchable through the genas facade (genasvet: senterr).
var (
	ErrBadPredicate = fmt.Errorf("predicate: invalid predicate: %w", sentinel.ErrBadProfile)
	ErrEmptyProfile = fmt.Errorf("predicate: profile has no predicates: %w", sentinel.ErrBadProfile)
)

// Predicate is one attribute constraint inside a profile.
type Predicate struct {
	Attr int // schema attribute index
	Op   Op
	// Value is the comparison operand for scalar operators.
	Value float64
	// Hi is the inclusive upper operand for OpRange ([Value, Hi]).
	Hi float64
	// Set holds operands for OpIn (categorical codes or numeric points).
	Set []float64
}

// NewComparison builds a scalar comparison predicate.
func NewComparison(attr int, op Op, v float64) (Predicate, error) {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if math.IsNaN(v) {
			return Predicate{}, fmt.Errorf("%w: NaN operand", ErrBadPredicate)
		}
		return Predicate{Attr: attr, Op: op, Value: v}, nil
	default:
		return Predicate{}, fmt.Errorf("%w: %s is not a scalar comparison", ErrBadPredicate, op)
	}
}

// NewRange builds the range predicate attr ∈ [lo, hi].
func NewRange(attr int, lo, hi float64) (Predicate, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return Predicate{}, fmt.Errorf("%w: bad range [%v,%v]", ErrBadPredicate, lo, hi)
	}
	return Predicate{Attr: attr, Op: OpRange, Value: lo, Hi: hi}, nil
}

// NewIn builds the set containment predicate attr ∈ {vs…}.
func NewIn(attr int, vs ...float64) (Predicate, error) {
	if len(vs) == 0 {
		return Predicate{}, fmt.Errorf("%w: empty set", ErrBadPredicate)
	}
	set := make([]float64, len(vs))
	copy(set, vs)
	sort.Float64s(set)
	return Predicate{Attr: attr, Op: OpIn, Set: set}, nil
}

// NewAny builds the don't-care predicate for attr.
func NewAny(attr int) Predicate { return Predicate{Attr: attr, Op: OpAny} }

// Intervals canonicalizes the predicate into a union of disjoint intervals
// clipped to the attribute domain dom. OpAny returns the whole domain.
func (p Predicate) Intervals(dom schema.Domain) []schema.Interval {
	clip := dom.Interval()
	var raw []schema.Interval
	switch p.Op {
	case OpEq:
		raw = []schema.Interval{schema.Point(p.Value)}
	case OpNe:
		raw = []schema.Interval{
			{Lo: clip.Lo, Hi: p.Value, HiOpen: true},
			{Lo: p.Value, Hi: clip.Hi, LoOpen: true},
		}
	case OpLt:
		raw = []schema.Interval{{Lo: clip.Lo, Hi: p.Value, HiOpen: true}}
	case OpLe:
		raw = []schema.Interval{{Lo: clip.Lo, Hi: p.Value}}
	case OpGt:
		raw = []schema.Interval{{Lo: p.Value, Hi: clip.Hi, LoOpen: true}}
	case OpGe:
		raw = []schema.Interval{{Lo: p.Value, Hi: clip.Hi}}
	case OpRange:
		raw = []schema.Interval{{Lo: p.Value, Hi: p.Hi}}
	case OpIn:
		raw = make([]schema.Interval, 0, len(p.Set))
		for _, v := range p.Set {
			raw = append(raw, schema.Point(v))
		}
	case OpAny:
		raw = []schema.Interval{clip}
	}
	out := raw[:0]
	for _, iv := range raw {
		c := iv.Intersect(clip)
		if !c.Empty() {
			out = append(out, c)
		}
	}
	return out
}

// Matches reports whether value x satisfies the predicate.
func (p Predicate) Matches(x float64) bool {
	switch p.Op {
	case OpEq:
		return x == p.Value
	case OpNe:
		return x != p.Value
	case OpLt:
		return x < p.Value
	case OpLe:
		return x <= p.Value
	case OpGt:
		return x > p.Value
	case OpGe:
		return x >= p.Value
	case OpRange:
		return x >= p.Value && x <= p.Hi
	case OpIn:
		i := sort.SearchFloat64s(p.Set, x)
		return i < len(p.Set) && p.Set[i] == x
	case OpAny:
		return true
	default:
		return false
	}
}

// String renders the predicate in profile-language syntax (attribute index
// form; Profile.Render substitutes names).
func (p Predicate) String() string {
	switch p.Op {
	case OpRange:
		return fmt.Sprintf("a%d in [%g,%g]", p.Attr, p.Value, p.Hi)
	case OpIn:
		parts := make([]string, len(p.Set))
		for i, v := range p.Set {
			parts[i] = fmt.Sprintf("%g", v)
		}
		return fmt.Sprintf("a%d in {%s}", p.Attr, strings.Join(parts, ","))
	case OpAny:
		return fmt.Sprintf("a%d = *", p.Attr)
	default:
		return fmt.Sprintf("a%d %s %g", p.Attr, p.Op, p.Value)
	}
}

// ID identifies a profile within a service instance.
type ID string

// Profile is a conjunctive subscription: a set of predicates, at most one per
// attribute. Attributes without a predicate are don't-care.
type Profile struct {
	ID ID
	// Preds is indexed by attribute position; entries with Op==0 or OpAny
	// are don't-care.
	Preds []Predicate
	// Priority weights user-centric optimization (paper §4.3: "faster
	// notifications for profiles with high priority"). Higher is more
	// important. Zero is the default weight 1.
	Priority float64
}

// New assembles a profile over schema s from the given predicates. Multiple
// predicates on the same attribute are rejected (conjunction within one
// attribute should be expressed as a range).
func New(s *schema.Schema, id ID, preds ...Predicate) (*Profile, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrEmptyProfile, id)
	}
	p := &Profile{ID: id, Preds: make([]Predicate, s.N())}
	specified := 0
	for _, pr := range preds {
		if pr.Attr < 0 || pr.Attr >= s.N() {
			return nil, fmt.Errorf("%w: attribute index %d out of range", ErrBadPredicate, pr.Attr)
		}
		if p.Preds[pr.Attr].Op != 0 {
			return nil, fmt.Errorf("%w: duplicate predicate on attribute %d", ErrBadPredicate, pr.Attr)
		}
		p.Preds[pr.Attr] = pr
		if pr.Op != OpAny {
			specified++
		}
	}
	if specified == 0 {
		return nil, fmt.Errorf("%w: all predicates are don't-care", ErrEmptyProfile)
	}
	return p, nil
}

// Pred returns the predicate on attribute i, or a don't-care if unspecified.
func (p *Profile) Pred(i int) Predicate {
	if i < 0 || i >= len(p.Preds) || p.Preds[i].Op == 0 {
		return Predicate{Attr: i, Op: OpAny}
	}
	return p.Preds[i]
}

// Constrains reports whether the profile specifies attribute i.
func (p *Profile) Constrains(i int) bool {
	return i >= 0 && i < len(p.Preds) && p.Preds[i].Op != 0 && p.Preds[i].Op != OpAny
}

// Weight returns the priority weight (1 when unset).
func (p *Profile) Weight() float64 {
	if p.Priority <= 0 {
		return 1
	}
	return p.Priority
}

// Matches reports whether the event values vals (indexed by attribute)
// satisfy every predicate of the profile.
func (p *Profile) Matches(vals []float64) bool {
	for i := range p.Preds {
		if p.Preds[i].Op == 0 || p.Preds[i].Op == OpAny {
			continue
		}
		if i >= len(vals) || !p.Preds[i].Matches(vals[i]) {
			return false
		}
	}
	return true
}

// Render prints the profile in the profile language with attribute names
// taken from the schema.
func (p *Profile) Render(s *schema.Schema) string {
	var b strings.Builder
	b.WriteString("profile(")
	first := true
	for i := range p.Preds {
		pr := p.Preds[i]
		if pr.Op == 0 {
			continue
		}
		if !first {
			b.WriteString("; ")
		}
		first = false
		name := s.At(i).Name
		switch pr.Op {
		case OpRange:
			fmt.Fprintf(&b, "%s in [%g,%g]", name, pr.Value, pr.Hi)
		case OpIn:
			parts := make([]string, len(pr.Set))
			for j, v := range pr.Set {
				parts[j] = fmt.Sprintf("%g", v)
			}
			fmt.Fprintf(&b, "%s in {%s}", name, strings.Join(parts, ","))
		case OpAny:
			fmt.Fprintf(&b, "%s = *", name)
		default:
			fmt.Fprintf(&b, "%s %s %g", name, pr.Op, pr.Value)
		}
	}
	b.WriteString(")")
	return b.String()
}
