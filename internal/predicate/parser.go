package predicate

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"genas/internal/schema"
)

// The profile language mirrors the paper's notation:
//
//	profile(temperature <= 35; humidity = 90; radiation = *)
//	profile(temperature in [-30,-20]; radiation in [40,100])
//	profile(severity in {low, high})
//
// Predicates are separated by ';'. Values are numbers or categorical labels.
// '*' is the don't-care value. Range brackets are inclusive on both ends.

// ErrSyntax reports a malformed profile expression.
var ErrSyntax = errors.New("predicate: syntax error")

// Parse parses one profile-language expression against schema s.
func Parse(s *schema.Schema, id ID, text string) (*Profile, error) {
	body := strings.TrimSpace(text)
	if strings.HasPrefix(body, "profile(") {
		if !strings.HasSuffix(body, ")") {
			return nil, fmt.Errorf("%w: missing closing parenthesis in %q", ErrSyntax, text)
		}
		body = body[len("profile(") : len(body)-1]
	}
	if strings.TrimSpace(body) == "" {
		return nil, fmt.Errorf("%w: empty profile body", ErrSyntax)
	}
	parts := splitTop(body, ';')
	preds := make([]Predicate, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pr, err := parsePredicate(s, part)
		if err != nil {
			return nil, err
		}
		preds = append(preds, pr)
	}
	return New(s, id, preds...)
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(s *schema.Schema, id ID, text string) *Profile {
	p, err := Parse(s, id, text)
	if err != nil {
		panic(err)
	}
	return p
}

// splitTop splits on sep outside of bracket pairs.
func splitTop(s string, sep rune) []string {
	var parts []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[', '{', '(':
			depth++
		case ']', '}', ')':
			depth--
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + len(string(sep))
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parsePredicate(s *schema.Schema, text string) (Predicate, error) {
	// Tokenize: NAME OP OPERAND.
	i := 0
	for i < len(text) && (unicode.IsLetter(rune(text[i])) || unicode.IsDigit(rune(text[i])) || text[i] == '_' || text[i] == '-') {
		i++
	}
	name := strings.TrimSpace(text[:i])
	rest := strings.TrimSpace(text[i:])
	if name == "" {
		return Predicate{}, fmt.Errorf("%w: missing attribute name in %q", ErrSyntax, text)
	}
	attr, err := s.Index(name)
	if err != nil {
		return Predicate{}, err
	}
	dom := s.At(attr).Domain

	opText := ""
	for _, cand := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if strings.HasPrefix(rest, cand) {
			opText = cand
			break
		}
	}
	if opText == "" {
		if strings.HasPrefix(rest, "in ") || strings.HasPrefix(rest, "in[") || strings.HasPrefix(rest, "in{") {
			opText = "in"
		} else {
			return Predicate{}, fmt.Errorf("%w: missing operator in %q", ErrSyntax, text)
		}
	}
	operand := strings.TrimSpace(rest[len(opText):])
	if operand == "" {
		return Predicate{}, fmt.Errorf("%w: missing operand in %q", ErrSyntax, text)
	}

	if opText == "=" && operand == "*" {
		return NewAny(attr), nil
	}

	switch opText {
	case "in":
		switch {
		case strings.HasPrefix(operand, "[") && strings.HasSuffix(operand, "]"):
			inner := operand[1 : len(operand)-1]
			lohi := splitTop(inner, ',')
			if len(lohi) != 2 {
				return Predicate{}, fmt.Errorf("%w: range needs two bounds in %q", ErrSyntax, text)
			}
			lo, err := parseValue(dom, strings.TrimSpace(lohi[0]))
			if err != nil {
				return Predicate{}, err
			}
			hi, err := parseValue(dom, strings.TrimSpace(lohi[1]))
			if err != nil {
				return Predicate{}, err
			}
			return NewRange(attr, lo, hi)
		case strings.HasPrefix(operand, "{") && strings.HasSuffix(operand, "}"):
			inner := operand[1 : len(operand)-1]
			var vs []float64
			for _, tok := range splitTop(inner, ',') {
				v, err := parseValue(dom, strings.TrimSpace(tok))
				if err != nil {
					return Predicate{}, err
				}
				vs = append(vs, v)
			}
			return NewIn(attr, vs...)
		default:
			return Predicate{}, fmt.Errorf("%w: 'in' needs [lo,hi] or {v,…} in %q", ErrSyntax, text)
		}
	default:
		v, err := parseValue(dom, operand)
		if err != nil {
			return Predicate{}, err
		}
		var op Op
		switch opText {
		case "=":
			op = OpEq
		case "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		}
		return NewComparison(attr, op, v)
	}
}

// parseValue parses a numeric literal or a categorical label for dom.
func parseValue(dom schema.Domain, tok string) (float64, error) {
	if dom.Kind() == schema.KindCategorical {
		if c, ok := dom.Code(tok); ok {
			return float64(c), nil
		}
		// Fall through: numeric code literal is also accepted.
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad value %q", ErrSyntax, tok)
	}
	return v, nil
}
