package predicate

import (
	"genas/internal/schema"
)

// Covers reports whether profile p covers profile q: every event matching q
// also matches p. Covering drives profile propagation in the distributed
// broker overlay (Siena-style, paper §2): a broker need not propagate q
// toward a neighbor that already asked for a covering p.
//
// p covers q iff for every attribute the value set accepted by q is a subset
// of the set accepted by p. A don't-care in p accepts everything; a
// don't-care in q is only covered by a don't-care in p.
func Covers(s *schema.Schema, p, q *Profile) bool {
	for attr := 0; attr < s.N(); attr++ {
		pc, qc := p.Constrains(attr), q.Constrains(attr)
		if !pc {
			continue // p accepts every value of this attribute
		}
		if !qc {
			return false // q accepts everything, p does not
		}
		dom := s.At(attr).Domain
		if !intervalsSubset(q.Pred(attr).Intervals(dom), p.Pred(attr).Intervals(dom)) {
			return false
		}
	}
	return true
}

// intervalsSubset reports whether the union of qs is contained in the union
// of ps. Both inputs are disjoint and sorted (canonical predicate form).
// Because the ps are disjoint, an interval of qs must fit inside a single
// interval of ps.
func intervalsSubset(qs, ps []schema.Interval) bool {
	for _, q := range qs {
		contained := false
		for _, p := range ps {
			if containsInterval(p, q) {
				contained = true
				break
			}
		}
		if !contained {
			return false
		}
	}
	return true
}

// containsInterval reports whether p ⊇ q.
func containsInterval(p, q schema.Interval) bool {
	if q.Empty() {
		return true
	}
	loOK := p.Lo < q.Lo || (p.Lo == q.Lo && (!p.LoOpen || q.LoOpen))
	hiOK := p.Hi > q.Hi || (p.Hi == q.Hi && (!p.HiOpen || q.HiOpen))
	return loOK && hiOK
}
