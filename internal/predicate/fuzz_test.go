package predicate

import (
	"testing"

	"genas/internal/schema"
)

// fuzzSchema mirrors the paper's running example: numeric, integer and
// categorical attributes so every parser path is reachable.
func fuzzSchema() *schema.Schema {
	temp, _ := schema.NewNumericDomain(-30, 50)
	hum, _ := schema.NewIntegerDomain(0, 100)
	sev, _ := schema.NewCategoricalDomain("low", "mid", "high")
	return schema.MustNew(
		schema.Attribute{Name: "temperature", Domain: temp},
		schema.Attribute{Name: "humidity", Domain: hum},
		schema.Attribute{Name: "severity", Domain: sev},
	)
}

// FuzzParseProfile asserts the profile-language parser never panics: every
// input either parses or returns an error. A successfully parsed profile
// must render back into a parseable expression (the language round-trips).
func FuzzParseProfile(f *testing.F) {
	// Seeds from the paper's notation (§3, §4.2) plus edge shapes.
	for _, seed := range []string{
		"profile(temperature <= 35; humidity = 90; severity = *)",
		"profile(temperature in [-30,-20]; humidity in [40,100])",
		"profile(severity in {low, high})",
		"profile(temperature >= 35)",
		"profile(humidity != 50)",
		"temperature < 0",
		"profile(temperature = *)",
		"profile()",
		"profile(temperature in [5,1])",
		"profile(humidity in {})",
		"profile(temperature >= )",
		"profile(bogus = 1)",
		"profile(temperature in [1,2,3])",
		"profile(severity = panic)",
		"profile(temperature <= 1e308; humidity = 3)",
		"profile(temperature <= -1e999)",
		"profile(temperature <= NaN)",
		"profile(temperature in [NaN,NaN])",
		"profile(temperature <= 35",
		";;;",
		"profile(temperature<=35;temperature>=10)",
	} {
		f.Add(seed)
	}
	s := fuzzSchema()
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(s, "fuzz", text)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatalf("Parse(%q) returned nil profile and nil error", text)
		}
		rendered := p.Render(s)
		if _, err := Parse(s, "fuzz2", rendered); err != nil {
			t.Fatalf("round trip failed: Parse(%q) ok, but rendering %q does not re-parse: %v",
				text, rendered, err)
		}
	})
}
