package predicate

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"genas/internal/schema"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	num, _ := schema.NewNumericDomain(0, 100)
	grid, _ := schema.NewIntegerDomain(0, 9)
	cat, _ := schema.NewCategoricalDomain("red", "green", "blue")
	return schema.MustNew(
		schema.Attribute{Name: "level", Domain: num},
		schema.Attribute{Name: "floor", Domain: grid},
		schema.Attribute{Name: "color", Domain: cat},
	)
}

func TestPredicateMatches(t *testing.T) {
	cases := []struct {
		p    Predicate
		x    float64
		want bool
	}{
		{Predicate{Op: OpEq, Value: 5}, 5, true},
		{Predicate{Op: OpEq, Value: 5}, 5.1, false},
		{Predicate{Op: OpNe, Value: 5}, 5, false},
		{Predicate{Op: OpNe, Value: 5}, 6, true},
		{Predicate{Op: OpLt, Value: 5}, 4.999, true},
		{Predicate{Op: OpLt, Value: 5}, 5, false},
		{Predicate{Op: OpLe, Value: 5}, 5, true},
		{Predicate{Op: OpGt, Value: 5}, 5, false},
		{Predicate{Op: OpGe, Value: 5}, 5, true},
		{Predicate{Op: OpRange, Value: 3, Hi: 7}, 3, true},
		{Predicate{Op: OpRange, Value: 3, Hi: 7}, 7, true},
		{Predicate{Op: OpRange, Value: 3, Hi: 7}, 7.01, false},
		{Predicate{Op: OpIn, Set: []float64{1, 3, 5}}, 3, true},
		{Predicate{Op: OpIn, Set: []float64{1, 3, 5}}, 4, false},
		{Predicate{Op: OpAny}, 123, true},
	}
	for _, c := range cases {
		if got := c.p.Matches(c.x); got != c.want {
			t.Errorf("%v.Matches(%g) = %v, want %v", c.p, c.x, got, c.want)
		}
	}
}

// TestIntervalsAgreeWithMatches: the canonical interval form accepts exactly
// the same values as direct predicate evaluation — the invariant the whole
// tree construction rests on.
func TestIntervalsAgreeWithMatches(t *testing.T) {
	dom, _ := schema.NewNumericDomain(0, 100)
	rng := rand.New(rand.NewSource(7))
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpRange, OpIn, OpAny}
	for trial := 0; trial < 500; trial++ {
		op := ops[rng.Intn(len(ops))]
		p := Predicate{Attr: 0, Op: op, Value: float64(rng.Intn(101))}
		switch op {
		case OpRange:
			p.Hi = p.Value + float64(rng.Intn(30))
		case OpIn:
			for k := 0; k < 1+rng.Intn(4); k++ {
				p.Set = append(p.Set, float64(rng.Intn(101)))
			}
			pp, err := NewIn(0, p.Set...)
			if err != nil {
				t.Fatal(err)
			}
			p = pp
		}
		ivs := p.Intervals(dom)
		for probe := 0; probe < 50; probe++ {
			x := rng.Float64() * 100
			inIv := false
			for _, iv := range ivs {
				if iv.Contains(x) {
					inIv = true
					break
				}
			}
			if inIv != p.Matches(x) {
				t.Fatalf("%v at %g: intervals=%v matches=%v (ivs=%v)", p, x, inIv, p.Matches(x), ivs)
			}
		}
	}
}

func TestIntervalsClipToDomain(t *testing.T) {
	dom, _ := schema.NewNumericDomain(10, 20)
	p := Predicate{Op: OpLe, Value: 5} // entirely below the domain
	if ivs := p.Intervals(dom); len(ivs) != 0 {
		t.Errorf("out-of-domain predicate yields %v, want none", ivs)
	}
	p = Predicate{Op: OpGe, Value: 0}
	ivs := p.Intervals(dom)
	if len(ivs) != 1 || ivs[0].Lo != 10 || ivs[0].Hi != 20 {
		t.Errorf("clipped = %v", ivs)
	}
}

func TestProfileConstruction(t *testing.T) {
	s := testSchema(t)
	pr, _ := NewComparison(0, OpGe, 35)
	p, err := New(s, "p1", pr)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Constrains(0) || p.Constrains(1) || p.Constrains(2) {
		t.Error("constraint flags wrong")
	}
	if !p.Matches([]float64{40, 3, 0}) || p.Matches([]float64{30, 3, 0}) {
		t.Error("profile matching wrong")
	}

	if _, err := New(s, "p2"); !errors.Is(err, ErrEmptyProfile) {
		t.Error("empty profile must error")
	}
	if _, err := New(s, "p3", NewAny(0), NewAny(1)); !errors.Is(err, ErrEmptyProfile) {
		t.Error("all-don't-care profile must error")
	}
	if _, err := New(s, "p4", pr, pr); !errors.Is(err, ErrBadPredicate) {
		t.Error("duplicate attribute must error")
	}
	bad, _ := NewComparison(7, OpEq, 1)
	if _, err := New(s, "p5", bad); !errors.Is(err, ErrBadPredicate) {
		t.Error("out-of-range attribute must error")
	}
}

func TestProfileWeight(t *testing.T) {
	s := testSchema(t)
	pr, _ := NewComparison(0, OpGe, 35)
	p, _ := New(s, "p", pr)
	if p.Weight() != 1 {
		t.Errorf("default weight = %g, want 1", p.Weight())
	}
	p.Priority = 4
	if p.Weight() != 4 {
		t.Errorf("weight = %g, want 4", p.Weight())
	}
}

func TestParseProfileLanguage(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		text  string
		match []float64
		miss  []float64
	}{
		{"profile(level >= 35)", []float64{40, 0, 0}, []float64{30, 0, 0}},
		{"profile(level in [10,20]; floor = 3)", []float64{15, 3, 0}, []float64{15, 4, 0}},
		{"profile(color = blue)", []float64{0, 0, 2}, []float64{0, 0, 1}},
		{"profile(color in {red, blue})", []float64{0, 0, 0}, []float64{0, 0, 1}},
		{"profile(level != 50)", []float64{49, 0, 0}, []float64{50, 0, 0}},
		{"profile(level < 10; floor = *)", []float64{5, 9, 0}, []float64{15, 9, 0}},
		{"level <= 35; floor >= 2", []float64{35, 2, 0}, []float64{36, 2, 0}},
	}
	for _, c := range cases {
		p, err := Parse(s, "t", c.text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.text, err)
		}
		if !p.Matches(c.match) {
			t.Errorf("%q must match %v", c.text, c.match)
		}
		if p.Matches(c.miss) {
			t.Errorf("%q must not match %v", c.text, c.miss)
		}
	}
}

func TestParseErrors(t *testing.T) {
	s := testSchema(t)
	for _, bad := range []string{
		"", "profile()", "profile(level)", "profile(level >= )",
		"profile(nosuch = 5)", "profile(level in [1])", "profile(level in 5)",
		"profile(color = mauve)", "profile(level >= 35", "profile(level ~ 5)",
	} {
		if _, err := Parse(s, "x", bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	s := testSchema(t)
	for _, text := range []string{
		"profile(level >= 35; floor = 3)",
		"profile(level in [10,20])",
		"profile(color = blue)",
	} {
		p := MustParse(s, "r", text)
		rendered := p.Render(s)
		q, err := Parse(s, "r2", rendered)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 200; i++ {
			vals := []float64{rng.Float64() * 100, float64(rng.Intn(10)), float64(rng.Intn(3))}
			if p.Matches(vals) != q.Matches(vals) {
				t.Fatalf("round-trip changed semantics of %q at %v", text, vals)
			}
		}
	}
}

func TestCovering(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		p, q string
		want bool
	}{
		{"profile(level >= 30)", "profile(level >= 35)", true},
		{"profile(level >= 35)", "profile(level >= 30)", false},
		{"profile(level >= 30)", "profile(level >= 35; floor = 3)", true},
		{"profile(level >= 30; floor = 3)", "profile(level >= 35)", false},
		{"profile(level in [10,50])", "profile(level in [20,30])", true},
		{"profile(level in [20,30])", "profile(level in [10,50])", false},
		{"profile(level in [10,50])", "profile(level in [40,60])", false},
		{"profile(floor = 3)", "profile(floor = 3)", true},
		{"profile(color in {red, blue})", "profile(color = red)", true},
		{"profile(color = red)", "profile(color in {red, blue})", false},
	}
	for _, c := range cases {
		p := MustParse(s, "p", c.p)
		q := MustParse(s, "q", c.q)
		if got := Covers(s, p, q); got != c.want {
			t.Errorf("Covers(%s, %s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

// TestCoveringSoundness: if p covers q, every event matching q matches p.
func TestCoveringSoundness(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(11))
	randProfile := func(id ID) *Profile {
		var preds []Predicate
		for attr := 0; attr < s.N(); attr++ {
			switch rng.Intn(4) {
			case 0:
				continue // don't care
			case 1:
				pr, _ := NewComparison(attr, OpGe, float64(rng.Intn(50)))
				preds = append(preds, pr)
			case 2:
				lo := float64(rng.Intn(50))
				pr, _ := NewRange(attr, lo, lo+float64(rng.Intn(40)))
				preds = append(preds, pr)
			default:
				pr, _ := NewComparison(attr, OpLe, float64(rng.Intn(90)))
				preds = append(preds, pr)
			}
		}
		p, err := New(s, id, preds...)
		if err != nil {
			pr, _ := NewComparison(0, OpGe, 10)
			p, _ = New(s, id, pr)
		}
		return p
	}
	covered := 0
	for trial := 0; trial < 400; trial++ {
		p := randProfile("p")
		q := randProfile("q")
		if !Covers(s, p, q) {
			continue
		}
		covered++
		for i := 0; i < 100; i++ {
			vals := []float64{rng.Float64() * 100, float64(rng.Intn(10)), float64(rng.Intn(3))}
			if q.Matches(vals) && !p.Matches(vals) {
				t.Fatalf("covering unsound: p=%s q=%s at %v", p.Render(s), q.Render(s), vals)
			}
		}
	}
	if covered == 0 {
		t.Error("no covering pairs generated; test is vacuous")
	}
}

// TestQuickProfileMatchTotal: Matches never panics on arbitrary values.
func TestQuickProfileMatchTotal(t *testing.T) {
	s := testSchema(t)
	p := MustParse(s, "p", "profile(level in [10,20]; floor >= 3)")
	f := func(a, b, c float64) bool {
		_ = p.Matches([]float64{a, b, c})
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
