// Package composite implements composite event detection over the stream of
// primitive-profile notifications — the extension the paper announces for
// GENAS ("We will extend the filter to handle composite events", §5).
// Profiles "may consist of queries regarding primitive events, their time
// and order of occurrence, and of composite events, which are formed by
// temporal combinations of events" (§1).
//
// Supported operators: sequence (A then B within a window), conjunction
// (A and B in any order within a window), disjunction (A or B), and counting
// (N occurrences of A within a window). Operators nest arbitrarily.
package composite

import (
	"errors"
	"fmt"
	"time"

	"genas/internal/predicate"
)

// Errors returned by expression construction.
var (
	ErrBadExpr   = errors.New("composite: invalid expression")
	ErrBadWindow = errors.New("composite: window must be positive")
)

// maxPartials bounds per-operator completion buffers so that a pathological
// stream cannot grow memory without limit; the oldest partials are evicted
// first (they would expire soonest anyway).
const maxPartials = 1024

// Completion is one (sub)expression match: the time span it covers.
type Completion struct {
	Start, End time.Time
}

// Expr is a composite event expression.
type Expr interface {
	// compile builds the stateful evaluator node.
	compile() node
	// String renders the expression.
	String() string
}

// node is the stateful evaluator of one expression.
type node interface {
	// feed consumes one primitive occurrence and returns the completions of
	// this subtree triggered by it.
	feed(id predicate.ID, t time.Time) []Completion
}

// --- Primitive ------------------------------------------------------------------

type primitive struct{ id predicate.ID }

// Prim matches every notification of the given profile.
func Prim(id predicate.ID) Expr { return primitive{id: id} }

func (p primitive) compile() node  { return &primNode{id: p.id} }
func (p primitive) String() string { return string(p.id) }

type primNode struct{ id predicate.ID }

func (n *primNode) feed(id predicate.ID, t time.Time) []Completion {
	if id != n.id {
		return nil
	}
	return []Completion{{Start: t, End: t}}
}

// --- Sequence -------------------------------------------------------------------

type seqExpr struct {
	l, r Expr
	w    time.Duration
}

// Seq matches l followed by r, with r ending within window of l's end.
func Seq(l, r Expr, window time.Duration) (Expr, error) {
	if l == nil || r == nil {
		return nil, ErrBadExpr
	}
	if window <= 0 {
		return nil, ErrBadWindow
	}
	return seqExpr{l: l, r: r, w: window}, nil
}

func (e seqExpr) compile() node {
	return &seqNode{l: e.l.compile(), r: e.r.compile(), w: e.w}
}

func (e seqExpr) String() string {
	return fmt.Sprintf("(%s ; %s)[%s]", e.l, e.r, e.w)
}

type seqNode struct {
	l, r node
	w    time.Duration
	// pending holds left completions awaiting a right completion.
	pending []Completion
}

func (n *seqNode) feed(id predicate.ID, t time.Time) []Completion {
	// Feed both children first: the same primitive may advance both sides.
	left := n.l.feed(id, t)
	right := n.r.feed(id, t)

	var out []Completion
	for _, r := range right {
		for _, l := range n.pending {
			if l.End.Before(r.Start) && r.End.Sub(l.End) <= n.w {
				out = append(out, Completion{Start: l.Start, End: r.End})
			}
		}
	}
	// Register new left completions after matching: sequence is strict
	// (left must precede right), so a simultaneous left never pairs with
	// the right completion of the same primitive.
	n.pending = append(n.pending, left...)
	n.prune(t)
	return out
}

func (n *seqNode) prune(now time.Time) {
	kept := n.pending[:0]
	for _, c := range n.pending {
		if now.Sub(c.End) <= n.w {
			kept = append(kept, c)
		}
	}
	n.pending = kept
	if len(n.pending) > maxPartials {
		n.pending = append(n.pending[:0], n.pending[len(n.pending)-maxPartials:]...)
	}
}

// --- Conjunction ----------------------------------------------------------------

type andExpr struct {
	l, r Expr
	w    time.Duration
}

// And matches l and r in any order, both ending within window of each other.
func And(l, r Expr, window time.Duration) (Expr, error) {
	if l == nil || r == nil {
		return nil, ErrBadExpr
	}
	if window <= 0 {
		return nil, ErrBadWindow
	}
	return andExpr{l: l, r: r, w: window}, nil
}

func (e andExpr) compile() node {
	return &andNode{l: e.l.compile(), r: e.r.compile(), w: e.w}
}

func (e andExpr) String() string {
	return fmt.Sprintf("(%s & %s)[%s]", e.l, e.r, e.w)
}

type andNode struct {
	l, r node
	w    time.Duration
	lBuf []Completion
	rBuf []Completion
}

func (n *andNode) feed(id predicate.ID, t time.Time) []Completion {
	// Expire stale halves before pairing: a buffered completion older than
	// the window cannot legally join anything arriving now.
	n.lBuf = pruneBuf(n.lBuf, t, n.w)
	n.rBuf = pruneBuf(n.rBuf, t, n.w)
	left := n.l.feed(id, t)
	right := n.r.feed(id, t)

	var out []Completion
	for _, l := range left {
		for _, r := range n.rBuf {
			out = append(out, span(l, r))
		}
	}
	for _, r := range right {
		for _, l := range n.lBuf {
			out = append(out, span(l, r))
		}
	}
	// Simultaneous completions of both sides also pair with each other.
	for _, l := range left {
		for _, r := range right {
			out = append(out, span(l, r))
		}
	}
	n.lBuf = append(n.lBuf, left...)
	n.rBuf = append(n.rBuf, right...)
	n.lBuf = pruneBuf(n.lBuf, t, n.w)
	n.rBuf = pruneBuf(n.rBuf, t, n.w)
	return out
}

func span(a, b Completion) Completion {
	s, e := a.Start, a.End
	if b.Start.Before(s) {
		s = b.Start
	}
	if b.End.After(e) {
		e = b.End
	}
	return Completion{Start: s, End: e}
}

func pruneBuf(buf []Completion, now time.Time, w time.Duration) []Completion {
	kept := buf[:0]
	for _, c := range buf {
		if now.Sub(c.End) <= w {
			kept = append(kept, c)
		}
	}
	if len(kept) > maxPartials {
		kept = append(kept[:0], kept[len(kept)-maxPartials:]...)
	}
	return kept
}

// --- Disjunction ----------------------------------------------------------------

type orExpr struct{ l, r Expr }

// Or matches either operand.
func Or(l, r Expr) (Expr, error) {
	if l == nil || r == nil {
		return nil, ErrBadExpr
	}
	return orExpr{l: l, r: r}, nil
}

func (e orExpr) compile() node  { return &orNode{l: e.l.compile(), r: e.r.compile()} }
func (e orExpr) String() string { return fmt.Sprintf("(%s | %s)", e.l, e.r) }

type orNode struct{ l, r node }

func (n *orNode) feed(id predicate.ID, t time.Time) []Completion {
	out := n.l.feed(id, t)
	return append(out, n.r.feed(id, t)...)
}

// --- Counting -------------------------------------------------------------------

type countExpr struct {
	e Expr
	n int
	w time.Duration
}

// Count matches n completions of e within a sliding window.
func Count(e Expr, n int, window time.Duration) (Expr, error) {
	if e == nil || n < 2 {
		return nil, fmt.Errorf("%w: count needs n ≥ 2", ErrBadExpr)
	}
	if window <= 0 {
		return nil, ErrBadWindow
	}
	return countExpr{e: e, n: n, w: window}, nil
}

func (e countExpr) compile() node {
	return &countNode{inner: e.e.compile(), n: e.n, w: e.w}
}

func (e countExpr) String() string {
	return fmt.Sprintf("count(%s, %d)[%s]", e.e, e.n, e.w)
}

type countNode struct {
	inner node
	n     int
	w     time.Duration
	buf   []Completion
}

func (n *countNode) feed(id predicate.ID, t time.Time) []Completion {
	inner := n.inner.feed(id, t)
	var out []Completion
	for _, c := range inner {
		n.buf = append(n.buf, c)
		n.buf = pruneBuf(n.buf, c.End, n.w)
		if len(n.buf) >= n.n {
			window := n.buf[len(n.buf)-n.n:]
			out = append(out, Completion{Start: window[0].Start, End: c.End})
		}
	}
	return out
}

// --- Detector -------------------------------------------------------------------

// Detection is one fired composite event.
type Detection struct {
	Name       string
	Start, End time.Time
}

// Detector evaluates a set of named composite expressions over a single
// notification stream. It is not safe for concurrent use; feed it from one
// goroutine (e.g. the consumer of a subscription channel).
type Detector struct {
	names []string
	roots []node
}

// NewDetector compiles the named expressions.
func NewDetector(exprs map[string]Expr) (*Detector, error) {
	if len(exprs) == 0 {
		return nil, fmt.Errorf("%w: no expressions", ErrBadExpr)
	}
	d := &Detector{}
	// Deterministic evaluation order.
	for _, name := range sortedKeys(exprs) {
		e := exprs[name]
		if e == nil {
			return nil, fmt.Errorf("%w: nil expression %q", ErrBadExpr, name)
		}
		d.names = append(d.names, name)
		d.roots = append(d.roots, e.compile())
	}
	return d, nil
}

func sortedKeys(m map[string]Expr) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Feed consumes one primitive notification and returns the composite events
// it completed.
func (d *Detector) Feed(id predicate.ID, t time.Time) []Detection {
	var out []Detection
	for i, root := range d.roots {
		for _, c := range root.feed(id, t) {
			out = append(out, Detection{Name: d.names[i], Start: c.Start, End: c.End})
		}
	}
	return out
}
