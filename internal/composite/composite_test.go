package composite

import (
	"math/rand"
	"testing"
	"time"

	"genas/internal/predicate"
)

var t0 = time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)

func at(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }

func mustSeq(t *testing.T, l, r Expr, w time.Duration) Expr {
	t.Helper()
	e, err := Seq(l, r, w)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustAnd(t *testing.T, l, r Expr, w time.Duration) Expr {
	t.Helper()
	e, err := And(l, r, w)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustOr(t *testing.T, l, r Expr) Expr {
	t.Helper()
	e, err := Or(l, r)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func detector(t *testing.T, name string, e Expr) *Detector {
	t.Helper()
	d, err := NewDetector(map[string]Expr{name: e})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSequence(t *testing.T) {
	d := detector(t, "AB", mustSeq(t, Prim("A"), Prim("B"), time.Second))

	if got := d.Feed("B", at(0)); len(got) != 0 {
		t.Errorf("B alone fired %v", got)
	}
	if got := d.Feed("A", at(10)); len(got) != 0 {
		t.Errorf("A alone fired %v", got)
	}
	got := d.Feed("B", at(500))
	if len(got) != 1 || got[0].Name != "AB" {
		t.Fatalf("A;B = %v", got)
	}
	if got[0].Start != at(10) || got[0].End != at(500) {
		t.Errorf("span = %v..%v", got[0].Start, got[0].End)
	}
	// Window expiry: a B far in the future does not pair with the stale A.
	if got := d.Feed("B", at(5000)); len(got) != 0 {
		t.Errorf("expired A still fired %v", got)
	}
}

func TestSequenceOrderMatters(t *testing.T) {
	d := detector(t, "AB", mustSeq(t, Prim("A"), Prim("B"), time.Second))
	d.Feed("B", at(0))
	if got := d.Feed("A", at(100)); len(got) != 0 {
		t.Errorf("B before A fired %v", got)
	}
}

func TestConjunctionAnyOrder(t *testing.T) {
	d := detector(t, "A&B", mustAnd(t, Prim("A"), Prim("B"), time.Second))
	d.Feed("B", at(0))
	got := d.Feed("A", at(400))
	if len(got) != 1 {
		t.Fatalf("B,A = %v", got)
	}
	if got[0].Start != at(0) || got[0].End != at(400) {
		t.Errorf("span = %+v", got[0])
	}
	// Expired halves do not pair.
	d2 := detector(t, "A&B", mustAnd(t, Prim("A"), Prim("B"), 100*time.Millisecond))
	d2.Feed("A", at(0))
	if got := d2.Feed("B", at(500)); len(got) != 0 {
		t.Errorf("expired conjunction fired %v", got)
	}
}

func TestDisjunction(t *testing.T) {
	d := detector(t, "A|B", mustOr(t, Prim("A"), Prim("B")))
	if got := d.Feed("A", at(0)); len(got) != 1 {
		t.Errorf("A = %v", got)
	}
	if got := d.Feed("B", at(1)); len(got) != 1 {
		t.Errorf("B = %v", got)
	}
	if got := d.Feed("C", at(2)); len(got) != 0 {
		t.Errorf("C = %v", got)
	}
}

func TestCount(t *testing.T) {
	e, err := Count(Prim("A"), 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d := detector(t, "3A", e)
	d.Feed("A", at(0))
	d.Feed("A", at(100))
	got := d.Feed("A", at(200))
	if len(got) != 1 {
		t.Fatalf("third A = %v", got)
	}
	if got[0].Start != at(0) || got[0].End != at(200) {
		t.Errorf("span = %+v", got[0])
	}
	// Sliding window: a fourth A still sees three within the window.
	if got := d.Feed("A", at(300)); len(got) != 1 {
		t.Errorf("fourth A = %v", got)
	}
	// After a long quiet period the window restarts.
	if got := d.Feed("A", at(5000)); len(got) != 0 {
		t.Errorf("lone A after gap = %v", got)
	}
}

func TestNestedExpressions(t *testing.T) {
	// (A ; (B | C)) within 1s
	inner := mustOr(t, Prim("B"), Prim("C"))
	d := detector(t, "nested", mustSeq(t, Prim("A"), inner, time.Second))
	d.Feed("A", at(0))
	if got := d.Feed("C", at(100)); len(got) != 1 {
		t.Errorf("A;C = %v", got)
	}
	d.Feed("A", at(2000))
	if got := d.Feed("B", at(2100)); len(got) != 1 {
		t.Errorf("A;B = %v", got)
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := Seq(nil, Prim("A"), time.Second); err == nil {
		t.Error("nil operand must fail")
	}
	if _, err := Seq(Prim("A"), Prim("B"), 0); err == nil {
		t.Error("zero window must fail")
	}
	if _, err := And(Prim("A"), nil, time.Second); err == nil {
		t.Error("nil operand must fail")
	}
	if _, err := Or(nil, nil); err == nil {
		t.Error("nil operands must fail")
	}
	if _, err := Count(Prim("A"), 1, time.Second); err == nil {
		t.Error("count < 2 must fail")
	}
	if _, err := Count(Prim("A"), 3, 0); err == nil {
		t.Error("zero window must fail")
	}
	if _, err := NewDetector(nil); err == nil {
		t.Error("empty detector must fail")
	}
	if _, err := NewDetector(map[string]Expr{"x": nil}); err == nil {
		t.Error("nil expression must fail")
	}
}

func TestMultipleExpressionsDeterministicOrder(t *testing.T) {
	seq := mustSeq(t, Prim("A"), Prim("B"), time.Second)
	or := mustOr(t, Prim("A"), Prim("B"))
	d, err := NewDetector(map[string]Expr{"zz": or, "aa": seq})
	if err != nil {
		t.Fatal(err)
	}
	d.Feed("A", at(0))
	got := d.Feed("B", at(10))
	if len(got) != 2 {
		t.Fatalf("detections = %v", got)
	}
	if got[0].Name != "aa" || got[1].Name != "zz" {
		t.Errorf("order = %v", got)
	}
}

// TestSequenceAgainstBruteForce: the incremental detector agrees with a
// quadratic window scan on random streams.
func TestSequenceAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	window := 300 * time.Millisecond
	d := detector(t, "AB", mustSeq(t, Prim("A"), Prim("B"), window))

	type occ struct {
		id predicate.ID
		t  time.Time
	}
	var history []occ
	ids := []predicate.ID{"A", "B", "C"}
	now := 0
	total := 0
	for i := 0; i < 2000; i++ {
		now += rng.Intn(50)
		o := occ{ids[rng.Intn(len(ids))], at(now)}
		history = append(history, o)
		got := len(d.Feed(o.id, o.t))
		total += got

		// Brute force: count A-completions pairing with THIS event as B.
		want := 0
		if o.id == "B" {
			for _, h := range history[:len(history)-1] {
				if h.id == "A" && h.t.Before(o.t) && o.t.Sub(h.t) <= window {
					want++
				}
			}
		}
		if got != want {
			t.Fatalf("event %d (%s@%v): detector %d, brute force %d", i, o.id, o.t, got, want)
		}
	}
	if total == 0 {
		t.Error("no detections in 2000 events; test is vacuous")
	}
}

func TestExprStrings(t *testing.T) {
	e, _ := Count(mustOr(t, Prim("A"), Prim("B")), 3, time.Second)
	s := e.String()
	if s == "" {
		t.Error("empty expression string")
	}
	seq := mustSeq(t, Prim("X"), Prim("Y"), time.Second)
	if seq.String() != "(X ; Y)[1s]" {
		t.Errorf("seq string = %q", seq.String())
	}
}
