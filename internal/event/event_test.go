package event

import (
	"errors"
	"strings"
	"testing"

	"genas/internal/schema"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	temp, _ := schema.NewNumericDomain(-30, 50)
	hum, _ := schema.NewNumericDomain(0, 100)
	state, _ := schema.NewCategoricalDomain("ok", "alarm")
	return schema.MustNew(
		schema.Attribute{Name: "temperature", Domain: temp},
		schema.Attribute{Name: "humidity", Domain: hum},
		schema.Attribute{Name: "state", Domain: state},
	)
}

func TestNewValidates(t *testing.T) {
	s := testSchema(t)
	if _, err := New(s, 30, 90); !errors.Is(err, ErrArity) {
		t.Error("wrong arity must error")
	}
	if _, err := New(s, 60, 90, 0); !errors.Is(err, schema.ErrValueOutOfDomain) {
		t.Error("out-of-domain must error")
	}
	ev, err := New(s, 30, 90, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.At(0) != 30 || ev.At(2) != 1 {
		t.Error("values wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := testSchema(t)
	ev := MustNew(s, 30, 90, 0)
	cp := ev.Clone()
	cp.Vals[0] = -5
	if ev.Vals[0] != 30 {
		t.Error("clone aliases original")
	}
}

func TestRenderAndParseRoundTrip(t *testing.T) {
	s := testSchema(t)
	ev := MustNew(s, 30, 90, 1)
	text := ev.Render(s)
	if !strings.Contains(text, "temperature=30") || !strings.Contains(text, "state=alarm") {
		t.Errorf("render = %q", text)
	}
	back, err := Parse(s, text)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ev.Vals {
		if back.Vals[i] != ev.Vals[i] {
			t.Errorf("attr %d: %g != %g", i, back.Vals[i], ev.Vals[i])
		}
	}
}

func TestParsePaperNotation(t *testing.T) {
	s := testSchema(t)
	ev, err := Parse(s, "event(temperature=30; humidity = 90; state=ok)")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Vals[0] != 30 || ev.Vals[1] != 90 || ev.Vals[2] != 0 {
		t.Errorf("parsed %v", ev.Vals)
	}
	// Attribute order in the text must not matter.
	ev2, err := Parse(s, "humidity=90; state=ok; temperature=30")
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Vals[0] != 30 {
		t.Error("order independence broken")
	}
}

func TestParseErrors(t *testing.T) {
	s := testSchema(t)
	for _, bad := range []string{
		"event(temperature=30",                                // unbalanced
		"event(temperature=30; humidity=90)",                  // missing state
		"event(temperature=30; temperature=30; humidity=90)",  // duplicate
		"event(temperature=hot; humidity=90; state=ok)",       // bad number
		"event(temperature=30; humidity=90; state=exploding)", // bad label
		"event(nosuch=1; humidity=90; state=ok)",              // unknown attr
		"event(temperature 30; humidity=90; state=ok)",        // missing '='
	} {
		if _, err := Parse(s, bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}
