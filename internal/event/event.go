// Package event models primitive events: occurrences of state transitions
// described as collections of (attribute, value) pairs (paper §3).
package event

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"genas/internal/schema"
	"genas/internal/sentinel"
)

// Errors reported by event construction and parsing. ErrArity wraps the
// public sentinel so arity mismatches stay errors.Is-matchable through the
// genas facade (genasvet: senterr).
var (
	ErrArity  = fmt.Errorf("event: %w", sentinel.ErrArity)
	ErrSyntax = errors.New("event: syntax error")
)

// Event is a primitive event. Values are indexed by schema attribute
// position; categorical attributes carry their integer codes.
type Event struct {
	// Vals holds one value per schema attribute.
	Vals []float64
	// Time is the occurrence time of the state transition.
	Time time.Time
	// Seq is a service-assigned sequence number (0 until published).
	Seq uint64
}

// New validates vals against s and returns the event.
func New(s *schema.Schema, vals ...float64) (Event, error) {
	if len(vals) != s.N() {
		return Event{}, fmt.Errorf("%w: got %d values for %d attributes", ErrArity, len(vals), s.N())
	}
	for i, v := range vals {
		if err := s.Validate(i, v); err != nil {
			return Event{}, err
		}
	}
	e := Event{Vals: make([]float64, len(vals))}
	copy(e.Vals, vals)
	return e, nil
}

// FromMap builds a schema-validated event from attribute name → value.
// Every schema attribute must be present: silently zero-filling an omitted
// attribute would fabricate data. The service facade and the wire server
// share this one validation path.
func FromMap(s *schema.Schema, values map[string]float64) (Event, error) {
	return FromMapWith(s, values, nil)
}

// Defaults is an explicit, opt-in fill-in for omitted event attributes: each
// configured attribute gets the given value when a publisher leaves it out.
// Attributes without a default remain mandatory. Construct once per service;
// safe for concurrent use (read-only after construction).
type Defaults struct {
	vals []float64
	has  []bool
}

// NewDefaults validates the per-attribute defaults against the schema.
func NewDefaults(s *schema.Schema, byName map[string]float64) (*Defaults, error) {
	d := &Defaults{vals: make([]float64, s.N()), has: make([]bool, s.N())}
	for name, v := range byName {
		i, err := s.Index(name)
		if err != nil {
			return nil, err
		}
		if err := s.Validate(i, v); err != nil {
			return nil, fmt.Errorf("default for %s: %w", name, err)
		}
		d.vals[i] = v
		d.has[i] = true
	}
	return d, nil
}

// Fill writes the default value of every attribute that is unseen yet has a
// default, marking it seen, and reports how many attributes remain unseen.
// A nil receiver fills nothing.
func (d *Defaults) Fill(vals []float64, seen []bool) (missing int) {
	for i := range seen {
		if !seen[i] && d != nil && d.has[i] {
			vals[i] = d.vals[i]
			seen[i] = true
		}
		if !seen[i] {
			missing++
		}
	}
	return missing
}

// FromMapWith is FromMap with optional defaults for omitted attributes
// (nil d means every attribute is mandatory).
func FromMapWith(s *schema.Schema, values map[string]float64, d *Defaults) (Event, error) {
	vals := make([]float64, s.N())
	seen := make([]bool, s.N())
	for name, v := range values {
		i, err := s.Index(name)
		if err != nil {
			return Event{}, err
		}
		vals[i] = v
		seen[i] = true
	}
	if missing := d.Fill(vals, seen); missing > 0 {
		return Event{}, fmt.Errorf("%w: event specifies %d of %d attributes", ErrArity, s.N()-missing, s.N())
	}
	return New(s, vals...)
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(s *schema.Schema, vals ...float64) Event {
	e, err := New(s, vals...)
	if err != nil {
		panic(err)
	}
	return e
}

// At returns the value of attribute i.
func (e Event) At(i int) float64 { return e.Vals[i] }

// Clone returns a deep copy of the event.
func (e Event) Clone() Event {
	c := e
	c.Vals = make([]float64, len(e.Vals))
	copy(c.Vals, e.Vals)
	return c
}

// Render prints the event in the paper's notation with attribute names.
func (e Event) Render(s *schema.Schema) string {
	var b strings.Builder
	b.WriteString("event(")
	for i, v := range e.Vals {
		if i > 0 {
			b.WriteString("; ")
		}
		a := s.At(i)
		if a.Domain.Kind() == schema.KindCategorical {
			if l, ok := a.Domain.Label(int(v)); ok {
				fmt.Fprintf(&b, "%s=%s", a.Name, l)
				continue
			}
		}
		fmt.Fprintf(&b, "%s=%g", a.Name, v)
	}
	b.WriteString(")")
	return b.String()
}

// Parse reads the paper's event notation: "event(temperature=30; humidity=90;
// radiation=2)". Attributes may appear in any order; all must be present.
func Parse(s *schema.Schema, text string) (Event, error) {
	body := strings.TrimSpace(text)
	if strings.HasPrefix(body, "event(") {
		if !strings.HasSuffix(body, ")") {
			return Event{}, fmt.Errorf("%w: missing closing parenthesis in %q", ErrSyntax, text)
		}
		body = body[len("event(") : len(body)-1]
	}
	vals := make([]float64, s.N())
	seen := make([]bool, s.N())
	for _, part := range strings.Split(body, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return Event{}, fmt.Errorf("%w: missing '=' in %q", ErrSyntax, part)
		}
		name := strings.TrimSpace(part[:eq])
		valTok := strings.TrimSpace(part[eq+1:])
		i, err := s.Index(name)
		if err != nil {
			return Event{}, err
		}
		if seen[i] {
			return Event{}, fmt.Errorf("%w: duplicate attribute %q", ErrSyntax, name)
		}
		dom := s.At(i).Domain
		var v float64
		if dom.Kind() == schema.KindCategorical {
			if c, ok := dom.Code(valTok); ok {
				v = float64(c)
			} else if f, err := strconv.ParseFloat(valTok, 64); err == nil {
				v = f
			} else {
				return Event{}, fmt.Errorf("%w: unknown label %q for %s", ErrSyntax, valTok, name)
			}
		} else {
			f, err := strconv.ParseFloat(valTok, 64)
			if err != nil {
				return Event{}, fmt.Errorf("%w: bad number %q for %s", ErrSyntax, valTok, name)
			}
			v = f
		}
		vals[i] = v
		seen[i] = true
	}
	for i, ok := range seen {
		if !ok {
			return Event{}, fmt.Errorf("%w: attribute %q missing", ErrSyntax, s.At(i).Name)
		}
	}
	return New(s, vals...)
}
