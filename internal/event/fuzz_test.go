package event

import (
	"testing"

	"genas/internal/schema"
)

// FuzzParseEvent asserts the event-notation parser never panics: every input
// either parses into a schema-valid event or returns an error, and a parsed
// event renders back into a parseable notation.
func FuzzParseEvent(f *testing.F) {
	// Seeds from the paper's notation (§3) plus edge shapes.
	for _, seed := range []string{
		"event(temperature=30; humidity=90; severity=low)",
		"event(humidity=90; temperature=-30; severity=2)",
		"temperature=0; humidity=0; severity=high",
		"event(temperature=30; humidity=90)",
		"event(temperature=30; temperature=30; humidity=1; severity=low)",
		"event(temperature=1e999; humidity=0; severity=low)",
		"event(temperature=NaN; humidity=0; severity=low)",
		"event(temperature=30; humidity=0.5; severity=low)",
		"event(bogus=1)",
		"event(temperature=30; humidity=90; severity=low",
		"event()",
		"; ; ;",
		"=",
	} {
		f.Add(seed)
	}
	temp, _ := schema.NewNumericDomain(-30, 50)
	hum, _ := schema.NewIntegerDomain(0, 100)
	sev, _ := schema.NewCategoricalDomain("low", "mid", "high")
	s := schema.MustNew(
		schema.Attribute{Name: "temperature", Domain: temp},
		schema.Attribute{Name: "humidity", Domain: hum},
		schema.Attribute{Name: "severity", Domain: sev},
	)
	f.Fuzz(func(t *testing.T, text string) {
		ev, err := Parse(s, text)
		if err != nil {
			return
		}
		for i, v := range ev.Vals {
			if err := s.Validate(i, v); err != nil {
				t.Fatalf("Parse(%q) accepted schema-invalid value %v for attribute %d: %v", text, v, i, err)
			}
		}
		rendered := ev.Render(s)
		if _, err := Parse(s, rendered); err != nil {
			t.Fatalf("round trip failed: Parse(%q) ok, but rendering %q does not re-parse: %v",
				text, rendered, err)
		}
	})
}
