// Package schema defines attribute schemas for events and profiles.
//
// An event notification service instance operates over a firm set A of
// attributes a_j with values belonging to given domains D_j (paper §3).
// Domains are numeric intervals (continuous or integer-gridded) or
// categorical value sets. Categorical values are encoded as integer codes so
// that all downstream machinery (subrange decomposition, profile trees,
// distributions) operates uniformly over one-dimensional numeric space.
package schema

import (
	"fmt"
	"math"
	"strings"

	"genas/internal/sentinel"
)

// Kind discriminates domain families.
type Kind int

// Domain kinds. Enums start at one so the zero value is invalid and cannot be
// mistaken for a real kind.
const (
	KindNumeric Kind = iota + 1
	KindInteger
	KindCategorical
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNumeric:
		return "numeric"
	case KindInteger:
		return "integer"
	case KindCategorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Errors reported by schema construction and validation. The lookup and
// domain errors wrap the canonical public sentinels, so errors.Is against
// the re-exported genas values succeeds wherever these surface.
var (
	ErrEmptySchema      = fmt.Errorf("schema: no attributes: %w", sentinel.ErrBadSchema)
	ErrDuplicateAttr    = fmt.Errorf("schema: duplicate attribute name: %w", sentinel.ErrBadSchema)
	ErrUnknownAttribute = fmt.Errorf("schema: %w", sentinel.ErrUnknownAttribute)
	ErrBadDomain        = fmt.Errorf("schema: invalid domain: %w", sentinel.ErrBadSchema)
	ErrValueOutOfDomain = fmt.Errorf("schema: %w", sentinel.ErrOutOfDomain)
)

// Domain describes the value set D_j of one attribute.
//
// For numeric domains Size is the interval length hi−lo (the measure used by
// the paper: the temperature domain [−30,50] has size 80). For integer and
// categorical domains Size is the number of distinct values.
type Domain struct {
	kind Kind
	lo   float64
	hi   float64
	// cats maps categorical labels to codes; codes maps back.
	cats  map[string]int
	codes []string
}

// NewNumericDomain returns the continuous interval domain [lo, hi].
func NewNumericDomain(lo, hi float64) (Domain, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return Domain{}, fmt.Errorf("%w: bounds must be finite, got [%v,%v]", ErrBadDomain, lo, hi)
	}
	if lo >= hi {
		return Domain{}, fmt.Errorf("%w: lo %v must be < hi %v", ErrBadDomain, lo, hi)
	}
	return Domain{kind: KindNumeric, lo: lo, hi: hi}, nil
}

// NewIntegerDomain returns the integer-gridded domain {lo, lo+1, …, hi}.
func NewIntegerDomain(lo, hi int) (Domain, error) {
	if lo >= hi {
		return Domain{}, fmt.Errorf("%w: lo %d must be < hi %d", ErrBadDomain, lo, hi)
	}
	return Domain{kind: KindInteger, lo: float64(lo), hi: float64(hi)}, nil
}

// NewCategoricalDomain returns a domain over the given labels. Labels are
// encoded as codes 0..len−1 in the given order.
func NewCategoricalDomain(labels ...string) (Domain, error) {
	if len(labels) < 2 {
		return Domain{}, fmt.Errorf("%w: need at least 2 labels, got %d", ErrBadDomain, len(labels))
	}
	cats := make(map[string]int, len(labels))
	codes := make([]string, len(labels))
	for i, l := range labels {
		if l == "" {
			return Domain{}, fmt.Errorf("%w: empty label at index %d", ErrBadDomain, i)
		}
		if _, dup := cats[l]; dup {
			return Domain{}, fmt.Errorf("%w: duplicate label %q", ErrBadDomain, l)
		}
		cats[l] = i
		codes[i] = l
	}
	return Domain{kind: KindCategorical, lo: 0, hi: float64(len(labels) - 1), cats: cats, codes: codes}, nil
}

// Kind reports the domain family.
func (d Domain) Kind() Kind { return d.kind }

// Lo returns the numeric lower bound (0 for categorical).
func (d Domain) Lo() float64 { return d.lo }

// Hi returns the numeric upper bound (len−1 for categorical).
func (d Domain) Hi() float64 { return d.hi }

// Size returns the domain size d_j: interval length for numeric domains,
// value count for integer and categorical domains.
func (d Domain) Size() float64 {
	switch d.kind {
	case KindNumeric:
		return d.hi - d.lo
	case KindInteger, KindCategorical:
		return d.hi - d.lo + 1
	default:
		return 0
	}
}

// Contains reports whether x lies inside the domain. For integer domains x
// must be integral; for categorical domains x must be a valid code.
func (d Domain) Contains(x float64) bool {
	if x < d.lo || x > d.hi {
		return false
	}
	switch d.kind {
	case KindInteger, KindCategorical:
		return x == math.Trunc(x)
	default:
		return true
	}
}

// Code returns the integer code of a categorical label.
func (d Domain) Code(label string) (int, bool) {
	c, ok := d.cats[label]
	return c, ok
}

// Label returns the categorical label of a code.
func (d Domain) Label(code int) (string, bool) {
	if code < 0 || code >= len(d.codes) {
		return "", false
	}
	return d.codes[code], true
}

// Labels returns a copy of the categorical labels in code order (nil for
// non-categorical domains).
func (d Domain) Labels() []string {
	if d.codes == nil {
		return nil
	}
	out := make([]string, len(d.codes))
	copy(out, d.codes)
	return out
}

// Interval returns the domain extent as a closed interval.
func (d Domain) Interval() Interval { return Closed(d.lo, d.hi) }

// String renders the domain for diagnostics.
func (d Domain) String() string {
	switch d.kind {
	case KindCategorical:
		return "{" + strings.Join(d.codes, ",") + "}"
	case KindInteger:
		return fmt.Sprintf("int[%g,%g]", d.lo, d.hi)
	default:
		return fmt.Sprintf("[%g,%g]", d.lo, d.hi)
	}
}

// Attribute is a named, typed event/profile attribute.
type Attribute struct {
	Name   string
	Domain Domain
}

// Schema is the ordered attribute set of one service instance. The order of
// attributes is the "natural" attribute order a_1 … a_n referenced throughout
// the paper; tree construction may apply a different order on top.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// New builds a schema from the given attributes.
func New(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, ErrEmptySchema
	}
	s := &Schema{
		attrs: make([]Attribute, len(attrs)),
		index: make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("%w: attribute %d has empty name", ErrBadDomain, i)
		}
		if a.Domain.kind == 0 {
			return nil, fmt.Errorf("%w: attribute %q has unset domain", ErrBadDomain, a.Name)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateAttr, a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustNew is New that panics on error, for tests and static configuration.
func MustNew(attrs ...Attribute) *Schema {
	s, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the number of attributes n.
func (s *Schema) N() int { return len(s.attrs) }

// At returns the i-th attribute.
func (s *Schema) At(i int) Attribute { return s.attrs[i] }

// Attributes returns a copy of the attribute list.
func (s *Schema) Attributes() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownAttribute, name)
	}
	return i, nil
}

// Validate checks that x is a legal value for attribute i.
func (s *Schema) Validate(i int, x float64) error {
	if i < 0 || i >= len(s.attrs) {
		return fmt.Errorf("%w: index %d", ErrUnknownAttribute, i)
	}
	if !s.attrs[i].Domain.Contains(x) {
		return fmt.Errorf("%w: %v not in %s %s", ErrValueOutOfDomain, x, s.attrs[i].Name, s.attrs[i].Domain)
	}
	return nil
}

// String renders the schema for diagnostics.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("schema(")
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(a.Name)
		b.WriteString(":")
		b.WriteString(a.Domain.String())
	}
	b.WriteString(")")
	return b.String()
}
