package schema

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds a schema from a compact textual specification, used by
// the daemon and tools to define the generic service's attributes at
// runtime:
//
//	temperature=numeric[-30,50]; humidity=numeric[0,100]; floor=int[0,12]; state=cat{ok,warn,alarm}
//
// Attributes are separated by ';'.
func ParseSpec(spec string) (*Schema, error) {
	var attrs []Attribute
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("%w: missing '=' in %q", ErrBadDomain, part)
		}
		name := strings.TrimSpace(part[:eq])
		dspec := strings.TrimSpace(part[eq+1:])
		dom, err := parseDomainSpec(dspec)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %w", name, err)
		}
		attrs = append(attrs, Attribute{Name: name, Domain: dom})
	}
	return New(attrs...)
}

func parseDomainSpec(spec string) (Domain, error) {
	switch {
	case strings.HasPrefix(spec, "numeric[") && strings.HasSuffix(spec, "]"):
		lo, hi, err := parseBounds(spec[len("numeric[") : len(spec)-1])
		if err != nil {
			return Domain{}, err
		}
		return NewNumericDomain(lo, hi)
	case strings.HasPrefix(spec, "int[") && strings.HasSuffix(spec, "]"):
		lo, hi, err := parseBounds(spec[len("int[") : len(spec)-1])
		if err != nil {
			return Domain{}, err
		}
		return NewIntegerDomain(int(lo), int(hi))
	case strings.HasPrefix(spec, "cat{") && strings.HasSuffix(spec, "}"):
		labels := strings.Split(spec[len("cat{"):len(spec)-1], ",")
		for i := range labels {
			labels[i] = strings.TrimSpace(labels[i])
		}
		return NewCategoricalDomain(labels...)
	default:
		return Domain{}, fmt.Errorf("%w: unrecognized domain spec %q", ErrBadDomain, spec)
	}
}

func parseBounds(body string) (float64, float64, error) {
	parts := strings.Split(body, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("%w: want lo,hi in %q", ErrBadDomain, body)
	}
	lo, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: bad lower bound %q", ErrBadDomain, parts[0])
	}
	hi, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: bad upper bound %q", ErrBadDomain, parts[1])
	}
	return lo, hi, nil
}
