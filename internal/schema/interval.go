package schema

import (
	"fmt"
	"math"
	"sort"
)

// Interval is a possibly half-open interval over one attribute's numeric
// axis. Intervals are the canonical form of every predicate: equality tests
// become point intervals, order comparisons become half-lines clipped to the
// domain, and set membership becomes a union of point intervals (paper §3:
// "inequality tests can be translated to range tests").
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// Closed returns the closed interval [lo, hi].
func Closed(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi} }

// Point returns the degenerate interval [x, x].
func Point(x float64) Interval { return Interval{Lo: x, Hi: x} }

// CO returns the half-open interval [lo, hi).
func CO(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi, HiOpen: true} }

// OC returns the half-open interval (lo, hi].
func OC(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi, LoOpen: true} }

// Open returns the open interval (lo, hi).
func Open(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi, LoOpen: true, HiOpen: true} }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool {
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi {
		return iv.LoOpen || iv.HiOpen
	}
	return false
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool {
	if x < iv.Lo || x > iv.Hi {
		return false
	}
	if x == iv.Lo && iv.LoOpen {
		return false
	}
	if x == iv.Hi && iv.HiOpen {
		return false
	}
	return true
}

// Length returns the measure hi−lo (0 for points).
func (iv Interval) Length() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	r := iv
	if o.Lo > r.Lo || (o.Lo == r.Lo && o.LoOpen) {
		r.Lo, r.LoOpen = o.Lo, o.LoOpen
	}
	if o.Hi < r.Hi || (o.Hi == r.Hi && o.HiOpen) {
		r.Hi, r.HiOpen = o.Hi, o.HiOpen
	}
	return r
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(o Interval) bool { return !iv.Intersect(o).Empty() }

// Before reports whether the interval lies entirely below x.
func (iv Interval) Before(x float64) bool {
	return iv.Hi < x || (iv.Hi == x && iv.HiOpen)
}

// After reports whether the interval lies entirely above x.
func (iv Interval) After(x float64) bool {
	return iv.Lo > x || (iv.Lo == x && iv.LoOpen)
}

// String renders the interval in mathematical notation.
func (iv Interval) String() string {
	lb, rb := "[", "]"
	if iv.LoOpen {
		lb = "("
	}
	if iv.HiOpen {
		rb = ")"
	}
	if iv.Lo == iv.Hi && !iv.LoOpen && !iv.HiOpen {
		return fmt.Sprintf("{%g}", iv.Lo)
	}
	return fmt.Sprintf("%s%g,%g%s", lb, iv.Lo, iv.Hi, rb)
}

// boundary is an interval endpoint used for sweep-line decomposition.
type boundary struct {
	x float64
	// open marks a boundary that excludes x itself: a lower bound that is
	// LoOpen, or an upper bound that is HiOpen "closes just below" x.
	// We normalize both bound flavors into cut positions.
	openBelow bool
}

// Cuts returns the sorted distinct cut positions induced by the intervals
// inside the clipping interval clip. A cut at (x, openBelow) splits the axis
// between points < x (or ≤ x when openBelow is false) and the rest. The
// returned cuts always include the clip bounds.
func Cuts(clip Interval, ivs []Interval) []float64 {
	set := map[float64]struct{}{clip.Lo: {}, clip.Hi: {}}
	for _, iv := range ivs {
		c := iv.Intersect(clip)
		if c.Empty() {
			continue
		}
		set[c.Lo] = struct{}{}
		set[c.Hi] = struct{}{}
	}
	out := make([]float64, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Float64s(out)
	return out
}

// Union computes the total measure of the union of intervals clipped to clip.
// Point intervals contribute the atom weight if atom > 0 (integer-grid
// domains where a point has measure 1), otherwise 0.
func Union(clip Interval, ivs []Interval, atom float64) float64 {
	type seg struct{ lo, hi float64 }
	segs := make([]seg, 0, len(ivs))
	for _, iv := range ivs {
		c := iv.Intersect(clip)
		if c.Empty() {
			continue
		}
		lo, hi := c.Lo, c.Hi
		if lo == hi {
			// Point: widen by the atom so it contributes measure.
			hi = lo + atom
		} else if atom > 0 {
			// On an integer grid a closed interval [a,b] holds b−a+1 values.
			if !c.HiOpen {
				hi += atom
			}
			if c.LoOpen {
				lo += atom
			}
		}
		if hi > lo {
			segs = append(segs, seg{lo, hi})
		}
	}
	if len(segs) == 0 {
		return 0
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].lo < segs[j].lo })
	total := 0.0
	curLo, curHi := segs[0].lo, segs[0].hi
	for _, s := range segs[1:] {
		if s.lo > curHi {
			total += curHi - curLo
			curLo, curHi = s.lo, s.hi
			continue
		}
		if s.hi > curHi {
			curHi = s.hi
		}
	}
	total += curHi - curLo
	return total
}

// AlmostEqual reports whether a and b differ by at most eps in absolute or
// relative terms. Used by tests and the analytic engine to compare expected
// operation counts.
func AlmostEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	return d <= eps*math.Max(math.Abs(a), math.Abs(b))
}
