package schema

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNumericDomain(t *testing.T) {
	d, err := NewNumericDomain(-30, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind() != KindNumeric {
		t.Errorf("kind = %v", d.Kind())
	}
	if d.Size() != 80 {
		t.Errorf("Size() = %g, want 80 (the paper's d1 for [-30,50])", d.Size())
	}
	for _, c := range []struct {
		x    float64
		want bool
	}{{-30, true}, {50, true}, {0.5, true}, {-30.01, false}, {50.01, false}} {
		if got := d.Contains(c.x); got != c.want {
			t.Errorf("Contains(%g) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNumericDomainErrors(t *testing.T) {
	cases := [][2]float64{{5, 5}, {7, 3}, {math.NaN(), 1}, {0, math.Inf(1)}}
	for _, c := range cases {
		if _, err := NewNumericDomain(c[0], c[1]); !errors.Is(err, ErrBadDomain) {
			t.Errorf("NewNumericDomain(%g,%g) error = %v, want ErrBadDomain", c[0], c[1], err)
		}
	}
}

func TestIntegerDomain(t *testing.T) {
	d, err := NewIntegerDomain(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 100 {
		t.Errorf("Size() = %g, want 100 atoms", d.Size())
	}
	if !d.Contains(42) || d.Contains(42.5) || d.Contains(100) {
		t.Error("integer containment wrong")
	}
}

func TestCategoricalDomain(t *testing.T) {
	d, err := NewCategoricalDomain("ok", "warn", "alarm")
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 {
		t.Errorf("Size() = %g, want 3", d.Size())
	}
	c, ok := d.Code("warn")
	if !ok || c != 1 {
		t.Errorf("Code(warn) = %d,%v", c, ok)
	}
	l, ok := d.Label(2)
	if !ok || l != "alarm" {
		t.Errorf("Label(2) = %q,%v", l, ok)
	}
	if _, ok := d.Label(3); ok {
		t.Error("Label(3) should fail")
	}
	if _, err := NewCategoricalDomain("a"); !errors.Is(err, ErrBadDomain) {
		t.Error("single label must be rejected")
	}
	if _, err := NewCategoricalDomain("a", "a"); !errors.Is(err, ErrBadDomain) {
		t.Error("duplicate label must be rejected")
	}
}

func TestSchemaIndexAndValidate(t *testing.T) {
	d1, _ := NewNumericDomain(0, 1)
	d2, _ := NewIntegerDomain(0, 9)
	s, err := New(Attribute{Name: "x", Domain: d1}, Attribute{Name: "y", Domain: d2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 2 {
		t.Fatalf("N() = %d", s.N())
	}
	i, err := s.Index("y")
	if err != nil || i != 1 {
		t.Errorf("Index(y) = %d, %v", i, err)
	}
	if _, err := s.Index("z"); !errors.Is(err, ErrUnknownAttribute) {
		t.Error("unknown attribute must error")
	}
	if err := s.Validate(1, 3.5); !errors.Is(err, ErrValueOutOfDomain) {
		t.Error("non-integer for integer domain must error")
	}
	if err := s.Validate(0, 0.5); err != nil {
		t.Errorf("Validate(0, 0.5) = %v", err)
	}
}

func TestSchemaConstructionErrors(t *testing.T) {
	d, _ := NewNumericDomain(0, 1)
	if _, err := New(); !errors.Is(err, ErrEmptySchema) {
		t.Error("empty schema must error")
	}
	if _, err := New(Attribute{Name: "a", Domain: d}, Attribute{Name: "a", Domain: d}); !errors.Is(err, ErrDuplicateAttr) {
		t.Error("duplicate attribute must error")
	}
	if _, err := New(Attribute{Name: "", Domain: d}); err == nil {
		t.Error("empty name must error")
	}
	if _, err := New(Attribute{Name: "a"}); err == nil {
		t.Error("unset domain must error")
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := CO(10, 20)
	if !iv.Contains(10) || iv.Contains(20) || !iv.Contains(19.999) {
		t.Error("half-open containment wrong")
	}
	if Point(5).Length() != 0 {
		t.Error("point length must be 0")
	}
	if Open(3, 3).Empty() != true || Closed(3, 3).Empty() {
		t.Error("emptiness wrong")
	}
	if got := Closed(1, 2).Intersect(Closed(3, 4)); !got.Empty() {
		t.Errorf("disjoint intersect = %v", got)
	}
	got := CO(0, 10).Intersect(OC(5, 15))
	want := Interval{Lo: 5, LoOpen: true, Hi: 10, HiOpen: true}
	if got != want {
		t.Errorf("intersect = %v, want %v", got, want)
	}
}

func TestIntervalBeforeAfter(t *testing.T) {
	if !CO(0, 5).Before(5) {
		t.Error("[0,5) must be before 5")
	}
	if Closed(0, 5).Before(5) {
		t.Error("[0,5] must not be before 5")
	}
	if !OC(5, 9).After(5) {
		t.Error("(5,9] must be after 5")
	}
	if Closed(5, 9).After(5) {
		t.Error("[5,9] must not be after 5")
	}
}

// TestIntervalIntersectProperty: intersection is commutative and contained
// in both operands.
func TestIntervalIntersectProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 float64, o1, o2, o3, o4 bool) bool {
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		a := Interval{Lo: a1, Hi: a2, LoOpen: o1, HiOpen: o2}
		b := Interval{Lo: b1, Hi: b2, LoOpen: o3, HiOpen: o4}
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if ab != ba {
			return false
		}
		if ab.Empty() {
			return true
		}
		mid := ab.Lo + (ab.Hi-ab.Lo)/2
		if ab.Contains(mid) && (!a.Contains(mid) || !b.Contains(mid)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnionMeasure(t *testing.T) {
	clip := Closed(0, 100)
	got := Union(clip, []Interval{Closed(0, 10), Closed(5, 20), Closed(50, 60)}, 0)
	if got != 30 {
		t.Errorf("Union = %g, want 30", got)
	}
	// Integer grid: [0,10] holds 11 atoms, [50,60] holds 11.
	got = Union(clip, []Interval{Closed(0, 10), Closed(50, 60)}, 1)
	if got != 22 {
		t.Errorf("Union grid = %g, want 22", got)
	}
	if Union(clip, nil, 0) != 0 {
		t.Error("empty union must be 0")
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("temperature=numeric[-30,50]; floor=int[0,12]; state=cat{ok,warn,alarm}")
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if s.At(0).Domain.Kind() != KindNumeric || s.At(1).Domain.Kind() != KindInteger || s.At(2).Domain.Kind() != KindCategorical {
		t.Error("kinds wrong")
	}
	if s.At(0).Domain.Size() != 80 {
		t.Errorf("temperature size = %g", s.At(0).Domain.Size())
	}
	for _, bad := range []string{
		"", "x", "x=float[0,1]", "x=numeric[0]", "x=numeric[a,b]", "x=cat{a}",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) must fail", bad)
		}
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("tiny absolute difference must pass")
	}
	if !AlmostEqual(1e9, 1e9*(1+1e-10), 1e-9) {
		t.Error("tiny relative difference must pass")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Error("1 vs 2 must fail")
	}
}

func TestCuts(t *testing.T) {
	clip := Closed(0, 100)
	cuts := Cuts(clip, []Interval{Closed(10, 30), CO(20, 50), Point(70)})
	want := []float64{0, 10, 20, 30, 50, 70, 100}
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v, want %v", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
	// Intervals outside the clip contribute nothing.
	cuts = Cuts(clip, []Interval{Closed(200, 300)})
	if len(cuts) != 2 || cuts[0] != 0 || cuts[1] != 100 {
		t.Errorf("cuts = %v", cuts)
	}
	// Empty input: clip bounds only.
	if got := Cuts(clip, nil); len(got) != 2 {
		t.Errorf("cuts = %v", got)
	}
}
