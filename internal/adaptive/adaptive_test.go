package adaptive

import (
	"fmt"
	"math/rand"
	"testing"

	"genas/internal/core"
	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
)

func testEngine(t *testing.T, profileCount int, seed int64) (*core.Engine, *schema.Schema) {
	t.Helper()
	d, _ := schema.NewIntegerDomain(0, 99)
	s := schema.MustNew(schema.Attribute{Name: "v", Domain: d})
	e := core.NewEngine(s, core.Config{})
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < profileCount; i++ {
		expr := fmt.Sprintf("profile(v = %d)", rng.Intn(100))
		if err := e.AddProfile(predicate.MustParse(s, predicate.ID(fmt.Sprintf("p%d", i)), expr)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Rebuild(); err != nil {
		t.Fatal(err)
	}
	return e, s
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.Goal != EventCentric || p.Window != 1024 || p.Threshold != 0.1 || p.Bins != 64 {
		t.Errorf("defaults = %+v", p)
	}
	if p.MinHistory != 1024 {
		t.Errorf("MinHistory = %d", p.MinHistory)
	}
}

// TestDriftTriggersRestructure: a strongly drifted stream triggers exactly
// the restructures the thresholds allow, and the restructured tree is
// cheaper for the new distribution.
func TestDriftTriggersRestructure(t *testing.T) {
	e, s := testEngine(t, 50, 7)
	a, err := New(e, Policy{Window: 200, Threshold: 0.15, Bins: 20})
	if err != nil {
		t.Fatal(err)
	}

	before, err := e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	_ = before

	// Feed a heavily peaked stream: mass near value 90.
	src := dist.New(dist.PeakHigh(0.95), s.At(0).Domain)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a.Observe([]float64{src.Sample(rng)})
	}
	if a.Restructures() == 0 {
		t.Fatal("peaked stream must trigger a restructure")
	}
	if a.Seen() != 1000 {
		t.Errorf("seen = %d", a.Seen())
	}

	// After adaptation the engine runs the V1 order for the peak: analytic
	// cost under the TRUE peak distribution must beat the natural order.
	adapted, err := e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	nat := core.NewEngine(s, core.Config{})
	for _, p := range e.Profiles() {
		if err := nat.AddProfile(p); err != nil {
			t.Fatal(err)
		}
	}
	nat.SetEventDists(e.Config().EventDists)
	natural, err := nat.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if adapted.TotalOps >= natural.TotalOps {
		t.Errorf("adapted %.3f must beat natural %.3f under the drifted distribution",
			adapted.TotalOps, natural.TotalOps)
	}
}

// TestNoRestructureWithoutDrift: a uniform stream matching the prior stays
// put.
func TestNoRestructureWithoutDrift(t *testing.T) {
	e, s := testEngine(t, 30, 11)
	a, err := New(e, Policy{Window: 100, Threshold: 0.2, Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	src := dist.New(dist.UniformShape{}, s.At(0).Domain)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a.Observe([]float64{src.Sample(rng)})
	}
	if a.Restructures() != 0 {
		t.Errorf("uniform stream triggered %d restructures", a.Restructures())
	}
	if a.Checks() == 0 {
		t.Error("drift checks must have run")
	}
}

// TestForceAdapt always restructures.
func TestForceAdapt(t *testing.T) {
	e, s := testEngine(t, 10, 13)
	a, err := New(e, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	src := dist.New(dist.Gauss(), s.At(0).Domain)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a.Observe([]float64{src.Sample(rng)})
	}
	if err := a.ForceAdapt(); err != nil {
		t.Fatal(err)
	}
	if a.Restructures() != 1 {
		t.Errorf("restructures = %d", a.Restructures())
	}
}

// TestUserCentricGoal sets the combined measure.
func TestUserCentricGoal(t *testing.T) {
	e, _ := testEngine(t, 10, 17)
	a, err := New(e, Policy{Goal: UserCentric})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ForceAdapt(); err != nil {
		t.Fatal(err)
	}
	if got := e.Config().ValueMeasure; got != core.ValueCombined {
		t.Errorf("measure = %v, want ValueCombined", got)
	}
}

// TestReorderAttributesGoal rebuilds with A2.
func TestReorderAttributesGoal(t *testing.T) {
	d1, _ := schema.NewIntegerDomain(0, 99)
	d2, _ := schema.NewIntegerDomain(0, 99)
	s := schema.MustNew(
		schema.Attribute{Name: "a", Domain: d1},
		schema.Attribute{Name: "b", Domain: d2},
	)
	e := core.NewEngine(s, core.Config{})
	if err := e.AddProfile(predicate.MustParse(s, "p", "profile(a in [10,20]; b >= 50)")); err != nil {
		t.Fatal(err)
	}
	a, err := New(e, Policy{ReorderAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ForceAdapt(); err != nil {
		t.Fatal(err)
	}
	if got := e.Config().AttrOrdering; got != core.AttrA2 {
		t.Errorf("ordering = %v, want AttrA2", got)
	}
	// Matching still works after the rebuild.
	ids, _, err := e.Match([]float64{15, 60})
	if err != nil || len(ids) != 1 {
		t.Errorf("match after rebuild: %v, %v", ids, err)
	}
}

// TestHistoryReflectsStream: History returns distributions close to the fed
// stream.
func TestHistoryReflectsStream(t *testing.T) {
	e, s := testEngine(t, 5, 19)
	a, err := New(e, Policy{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	src := dist.New(dist.PeakLow(0.9), s.At(0).Domain)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 5000; i++ {
		a.Observe([]float64{src.Sample(rng)})
	}
	h := a.History()[0]
	if tv := dist.TotalVariation(h.Shape(), dist.PeakLow(0.9), 10); tv > 0.1 {
		t.Errorf("history TV from source = %g", tv)
	}
}

func TestGoalStrings(t *testing.T) {
	if EventCentric.String() != "event-centric" || UserCentric.String() != "user-centric" {
		t.Error("goal names wrong")
	}
}

// TestHysteresisAfterAdaptation: once the tree is restructured for a stable
// peaked stream, continued traffic from the same distribution triggers no
// further restructures — the threshold provides the stability the paper
// demands of the fragile event-order measure.
func TestHysteresisAfterAdaptation(t *testing.T) {
	e, s := testEngine(t, 40, 23)
	a, err := New(e, Policy{Window: 200, Threshold: 0.12, Bins: 16})
	if err != nil {
		t.Fatal(err)
	}
	src := dist.New(dist.PeakHigh(0.9), s.At(0).Domain)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		a.Observe([]float64{src.Sample(rng)})
	}
	after := a.Restructures()
	if after == 0 {
		t.Fatal("initial drift must restructure")
	}
	for i := 0; i < 4000; i++ {
		a.Observe([]float64{src.Sample(rng)})
	}
	if got := a.Restructures(); got > after+1 {
		t.Errorf("stable stream caused %d further restructures", got-after)
	}
}
