// Package adaptive implements the adaptive filter component of §1/§5: the
// filter "can either work based on predefined distributions for the observed
// events, or it has to maintain a history of events in order to determine
// the event distribution". The Adaptor maintains per-attribute histograms of
// the observed events, detects distribution drift against the distribution
// the tree was last optimized for, and restructures the profile tree
// (cheaply by value reordering, optionally fully by attribute reordering).
//
// Two optimization goals are supported, mirroring the paper's event-centric
// and user-centric approaches: event-centric minimizes average operations
// per event (Measure V1 value order), user-centric favors high-priority
// profiles (Measure V3, which "supports user groups with similar interest").
package adaptive

import (
	"fmt"
	"sync"

	"genas/internal/core"
	"genas/internal/dist"
	"genas/internal/schema"
)

// Goal selects the optimization target.
type Goal int

// Optimization goals.
const (
	// EventCentric minimizes average operations per event (V1 + A2).
	EventCentric Goal = iota + 1
	// UserCentric favors high-priority profiles (V3 + A2).
	UserCentric
)

// String names the goal.
func (g Goal) String() string {
	switch g {
	case EventCentric:
		return "event-centric"
	case UserCentric:
		return "user-centric"
	default:
		return fmt.Sprintf("Goal(%d)", int(g))
	}
}

// Policy tunes the adaptation loop.
type Policy struct {
	// Goal selects the measures applied on restructure (default
	// EventCentric).
	Goal Goal
	// Window is the number of observed events between drift checks
	// (default 1024).
	Window int
	// Threshold is the total-variation distance that triggers a
	// restructure (default 0.1). The paper warns the event-based measure
	// "is a fragile measure, not robust to changes in the distributions";
	// the threshold provides the stability hysteresis.
	Threshold float64
	// Bins is the per-attribute histogram resolution (default 64).
	Bins int
	// ReorderAttributes additionally recomputes the attribute order
	// (Measure A2) on restructure: a full rebuild instead of the cheap
	// value reordering.
	ReorderAttributes bool
	// MinHistory is the minimum number of observed events before the first
	// restructure (default Window).
	MinHistory uint64
}

func (p Policy) withDefaults() Policy {
	if p.Goal == 0 {
		p.Goal = EventCentric
	}
	if p.Window <= 0 {
		p.Window = 1024
	}
	if p.Threshold <= 0 {
		p.Threshold = 0.1
	}
	if p.Bins <= 0 {
		p.Bins = 64
	}
	if p.MinHistory == 0 {
		p.MinHistory = uint64(p.Window)
	}
	return p
}

// Engine is the filter surface the adaptor drives: both the single-tree
// core.Engine and the sharded core.Sharded satisfy it. On a sharded engine
// the drift snapshot is taken once over the aggregated event history and the
// restructure fans out per shard, each shard locking independently — the
// adaptation never stops the world.
type Engine interface {
	Schema() *schema.Schema
	Config() core.Config
	SetConfig(cfg core.Config)
	Rebuild() error
	Reorder() error
}

// Adaptor couples a filter engine with event-history histograms.
type Adaptor struct {
	mu      sync.Mutex
	engine  Engine
	policy  Policy
	hists   []*dist.Histogram
	applied []dist.Shape // shapes the engine currently runs with
	seen    uint64
	sinceCk int

	// restructMu serializes the engine-mutation phase of a restructure
	// (SetConfig + Rebuild/Reorder). It is separate from mu so that the
	// per-event Observe bookkeeping never blocks behind a running rebuild;
	// without it, two overlapping drift windows could interleave their
	// SetConfig fan-outs and leave a sharded engine's shards rebuilt under
	// different distribution snapshots.
	restructMu sync.Mutex

	restructures int
	checks       int
}

// New creates an adaptor for the engine. The engine's configuration is
// switched to the goal's measures on the first restructure.
func New(engine Engine, policy Policy) (*Adaptor, error) {
	p := policy.withDefaults()
	s := engine.Schema()
	hists := make([]*dist.Histogram, s.N())
	applied := make([]dist.Shape, s.N())
	for i := 0; i < s.N(); i++ {
		h, err := dist.NewHistogram(s.At(i).Domain, p.Bins)
		if err != nil {
			return nil, err
		}
		hists[i] = h
		applied[i] = dist.UniformShape{} // prior before any history
	}
	return &Adaptor{engine: engine, policy: p, hists: hists, applied: applied}, nil
}

// Observe feeds one event into the history and runs the periodic drift
// check. It returns true when a restructure was triggered.
func (a *Adaptor) Observe(vals []float64) bool {
	for i, h := range a.hists {
		h.Observe(vals[i])
	}
	return a.bump(1)
}

// ObserveBatch feeds a whole batch into the history and runs at most one
// drift check, amortizing the adaptor bookkeeping over the batch (the
// batched publish path's entry point).
func (a *Adaptor) ObserveBatch(events [][]float64) bool {
	for _, vals := range events {
		for i, h := range a.hists {
			h.Observe(vals[i])
		}
	}
	return a.bump(len(events))
}

// bump advances the event counters by n and runs the drift check when a
// window boundary was crossed.
func (a *Adaptor) bump(n int) bool {
	if n <= 0 {
		return false
	}
	a.mu.Lock()
	a.seen += uint64(n)
	a.sinceCk += n
	due := a.sinceCk >= a.policy.Window && a.seen >= a.policy.MinHistory
	if due {
		a.sinceCk = 0
	}
	a.mu.Unlock()
	if !due {
		return false
	}
	return a.maybeAdapt(false)
}

// ForceAdapt restructures unconditionally with the current history.
func (a *Adaptor) ForceAdapt() error {
	if ok := a.maybeAdapt(true); !ok {
		return fmt.Errorf("adaptive: forced restructure failed")
	}
	return nil
}

// maybeAdapt compares live histograms against the applied distributions and
// restructures when drifted (or when forced).
func (a *Adaptor) maybeAdapt(force bool) bool {
	a.restructMu.Lock()
	defer a.restructMu.Unlock()
	a.mu.Lock()
	a.checks++
	drift := 0.0
	snaps := make([]dist.Shape, len(a.hists))
	for i, h := range a.hists {
		snaps[i] = h.Snapshot()
		if d := dist.TotalVariation(snaps[i], a.applied[i], a.policy.Bins); d > drift {
			drift = d
		}
	}
	if !force && drift < a.policy.Threshold {
		a.mu.Unlock()
		return false
	}
	s := a.engine.Schema()
	ds := make([]dist.Dist, len(snaps))
	for i := range snaps {
		ds[i] = dist.New(snaps[i], s.At(i).Domain)
	}
	goal := a.policy.Goal
	rebuildAttrs := a.policy.ReorderAttributes
	a.mu.Unlock()

	cfg := a.engine.Config()
	switch goal {
	case UserCentric:
		cfg.ValueMeasure = core.ValueCombined
	default:
		cfg.ValueMeasure = core.ValueEvent
	}
	if rebuildAttrs {
		cfg.AttrOrdering = core.AttrA2
	}
	cfg.EventDists = ds
	a.engine.SetConfig(cfg)
	// SetConfig is the commitment point: the engine is now dirty and adopts
	// the new distributions on its next rebuild — eagerly below, or lazily
	// on the next match if the eager pass fails — so the drift baseline
	// must track this snapshot either way.
	a.mu.Lock()
	a.applied = snaps
	a.restructures++
	a.mu.Unlock()
	var err error
	if rebuildAttrs {
		err = a.engine.Rebuild()
	} else {
		err = a.engine.Reorder()
	}
	return err == nil
}

// Restructures returns how many restructures have been applied.
func (a *Adaptor) Restructures() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.restructures
}

// Checks returns how many drift checks have run.
func (a *Adaptor) Checks() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.checks
}

// Seen returns the number of observed events.
func (a *Adaptor) Seen() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seen
}

// History returns the live per-attribute empirical distributions.
func (a *Adaptor) History() []dist.Dist {
	s := a.engine.Schema()
	out := make([]dist.Dist, len(a.hists))
	for i, h := range a.hists {
		out[i] = dist.New(h.Snapshot(), s.At(i).Domain)
	}
	return out
}
