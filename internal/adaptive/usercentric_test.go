package adaptive

import (
	"fmt"
	"math/rand"
	"testing"

	"genas/internal/core"
	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
)

// TestUserCentricFavorsPriorityProfiles verifies the paper's user-centric
// claim end to end: under the user-centric goal (Measure V3 with profile
// priorities), the high-priority profile's expected notification cost drops
// relative to the event-centric configuration, even though the average cost
// per event may rise ("algorithms based on V2 and V3 lead to inferior
// average response time according to the events, but to faster
// notifications for profiles with high priority", §4.3).
func TestUserCentricFavorsPriorityProfiles(t *testing.T) {
	d, _ := schema.NewIntegerDomain(0, 99)
	s := schema.MustNew(schema.Attribute{Name: "v", Domain: d})

	// The VIP watches value 90; the crowd watches scattered values. Events
	// concentrate where the crowd watches, so event-centric ordering puts
	// the VIP's region late in the scan.
	build := func(goal Goal) (*core.Engine, predicate.ID) {
		e := core.NewEngine(s, core.Config{})
		vip := predicate.MustParse(s, "vip", "profile(v = 90)")
		vip.Priority = 50
		if err := e.AddProfile(vip); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		for i := 0; i < 60; i++ {
			expr := fmt.Sprintf("profile(v = %d)", rng.Intn(50))
			p := predicate.MustParse(s, predicate.ID(fmt.Sprintf("c%d", i)), expr)
			if err := e.AddProfile(p); err != nil {
				t.Fatal(err)
			}
		}
		a, err := New(e, Policy{Goal: goal, Bins: 20})
		if err != nil {
			t.Fatal(err)
		}
		// History: events concentrate on the crowd's region [0,50).
		src := dist.New(dist.PeakLow(0.9), d)
		for i := 0; i < 3000; i++ {
			a.Observe([]float64{src.Sample(rng)})
		}
		if err := a.ForceAdapt(); err != nil {
			t.Fatal(err)
		}
		return e, "vip"
	}

	vipCost := func(goal Goal) float64 {
		e, _ := build(goal)
		analysis, err := e.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		// Dense index of the vip profile in the engine's corpus.
		tr := e.Tree()
		for pi, p := range tr.Profiles() {
			if p.ID == "vip" {
				pc := analysis.PerProfile[pi]
				if pc.MatchProb == 0 {
					t.Fatal("vip profile unreachable")
				}
				return pc.CondOps
			}
		}
		t.Fatal("vip profile missing")
		return 0
	}

	eventCentric := vipCost(EventCentric)
	userCentric := vipCost(UserCentric)
	if userCentric >= eventCentric {
		t.Errorf("user-centric vip cost %.3f must beat event-centric %.3f",
			userCentric, eventCentric)
	}
}
