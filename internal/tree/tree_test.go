package tree

import (
	"fmt"
	"math/rand"
	"testing"

	"genas/internal/predicate"
	"genas/internal/schema"
)

func gridSchema(t *testing.T, n, hi int) *schema.Schema {
	t.Helper()
	attrs := make([]schema.Attribute, n)
	for i := range attrs {
		d, err := schema.NewIntegerDomain(0, hi)
		if err != nil {
			t.Fatal(err)
		}
		attrs[i] = schema.Attribute{Name: fmt.Sprintf("a%d", i), Domain: d}
	}
	return schema.MustNew(attrs...)
}

func eqProfiles(t *testing.T, s *schema.Schema, values ...[]int) []*predicate.Profile {
	t.Helper()
	out := make([]*predicate.Profile, len(values))
	for i, vals := range values {
		var preds []predicate.Predicate
		for attr, v := range vals {
			if v < 0 {
				continue // don't-care
			}
			pr, err := predicate.NewComparison(attr, predicate.OpEq, float64(v))
			if err != nil {
				t.Fatal(err)
			}
			preds = append(preds, pr)
		}
		p, err := predicate.New(s, predicate.ID(fmt.Sprintf("p%d", i)), preds...)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

func TestBuildErrors(t *testing.T) {
	s := gridSchema(t, 2, 9)
	if _, err := Build(s, nil); err != ErrNoProfiles {
		t.Errorf("empty build error = %v", err)
	}
	p := eqProfiles(t, s, []int{1, 2})
	if _, err := Build(s, p, WithAttributeOrder([]int{0, 0})); err == nil {
		t.Error("non-permutation order must fail")
	}
	if _, err := Build(s, p, WithAttributeOrder([]int{0})); err == nil {
		t.Error("short order must fail")
	}
	if _, err := Build(s, p, WithAttributeOrder([]int{0, 2})); err == nil {
		t.Error("out-of-range order must fail")
	}
}

// TestStateSharing: profiles identical on later attributes share subtrees.
func TestStateSharing(t *testing.T) {
	s := gridSchema(t, 3, 9)
	// Four profiles with distinct first values but identical continuation:
	// after level 0 they collapse pairwise to the same alive sets? They
	// differ in identity, so sharing happens where alive sets coincide:
	// build profiles whose level-1 alive sets repeat via don't-care.
	profiles := eqProfiles(t, s,
		[]int{0, 5, -1},
		[]int{1, 5, -1},
		[]int{2, 5, -1},
		[]int{3, 5, -1},
	)
	tr, err := Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.SharedHits != 0 {
		// Each root edge holds a distinct singleton alive set; no sharing
		// expected here.
		t.Logf("shared hits: %d", st.SharedHits)
	}
	// Now profiles that genuinely merge: same alive set via multiple paths
	// is impossible with equality roots; instead verify the automaton size
	// stays linear for don't-care-heavy corpora.
	wide := eqProfiles(t, s,
		[]int{-1, 5, -1},
		[]int{-1, 6, -1},
		[]int{-1, -1, 7},
	)
	tr2, err := Build(s, wide)
	if err != nil {
		t.Fatal(err)
	}
	st2 := tr2.Stats()
	if st2.Nodes > 16 {
		t.Errorf("don't-care corpus built %d nodes, expected small shared automaton", st2.Nodes)
	}
	if st2.Height != 3 || st2.ProfileCount != 3 {
		t.Errorf("stats = %+v", st2)
	}
}

// TestSharedSubtreePointerEquality: two root edges whose alive sets coincide
// at the next level point at the same node.
func TestSharedSubtreePointerEquality(t *testing.T) {
	s := gridSchema(t, 2, 9)
	// One profile with don't-care on attribute 0: alive below every root
	// edge region, producing identical child states.
	profiles := eqProfiles(t, s, []int{-1, 4})
	tr, err := Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	edges := root.Edges()
	if len(edges) != 1 || edges[0].Kind != EdgeStar {
		t.Fatalf("expected single star edge, got %d edges", len(edges))
	}
	if len(tr.Levels()[1]) != 1 {
		t.Errorf("level 1 has %d unique nodes, want 1", len(tr.Levels()[1]))
	}
}

// TestScanPositionsIncreasing: after any reordering, scanning follows
// strictly increasing defined-order positions (Example 5's invariant).
func TestScanPositionsIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := gridSchema(t, 2, 30)
	var values [][]int
	for i := 0; i < 40; i++ {
		values = append(values, []int{rng.Intn(31), rng.Intn(31)})
	}
	profiles := eqProfiles(t, s, values...)
	tr, err := Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	orders := []ValueOrder{
		NaturalOrder(),
		{Name: "rand", Descending: true, Rank: func(_ int, r []Interval) float64 {
			return float64(int64(r[0].Lo*31) % 17)
		}},
	}
	for _, vo := range orders {
		tr.ApplyValueOrder(vo)
		for _, level := range tr.Levels() {
			for _, n := range level {
				if !n.scanPositionsIncreasing() {
					t.Fatalf("order %s: scan positions not increasing", vo.Name)
				}
				// Every edge appears exactly once in scan order.
				seen := make(map[int]bool)
				for _, ei := range n.ScanOrder() {
					if seen[ei] {
						t.Fatal("edge repeated in scan order")
					}
					seen[ei] = true
				}
				if len(seen) != len(n.Edges()) {
					t.Fatalf("scan order covers %d of %d edges", len(seen), len(n.Edges()))
				}
			}
		}
	}
}

// TestCostOfConsistentWithMatch: for every bucket, CostOf equals the ops the
// real matcher spends on a value from that bucket — the bridge between the
// analytic model and the implementation.
func TestCostOfConsistentWithMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := gridSchema(t, 1, 50)
	var values [][]int
	for i := 0; i < 25; i++ {
		values = append(values, []int{rng.Intn(51)})
	}
	// A couple of don't-care riders force a complement edge.
	profiles := eqProfiles(t, s, values...)
	rangePr, _ := predicate.NewRange(0, 10, 20)
	rp, _ := predicate.New(s, "range", rangePr)
	profiles = append(profiles, rp)

	for _, strategy := range []Search{SearchLinear, SearchLinearNoStop, SearchBinary, SearchInterpolation, SearchHash} {
		tr, err := Build(s, profiles, WithSearch(strategy))
		if err != nil {
			t.Fatal(err)
		}
		tr.ApplyValueOrder(ValueOrder{
			Name:       "pseudo",
			Descending: true,
			Rank:       func(_ int, r []Interval) float64 { return float64(int64(r[0].Lo*13) % 7) },
		})
		root := tr.Root()
		for bi, b := range root.Buckets() {
			probe := b.Iv.Lo // integer-aligned closed buckets start on an atom
			if b.Iv.LoOpen {
				continue // gap pieces on continuous domains; none on grids
			}
			edge, want := root.CostOf(bi, strategy)
			matched, got := tr.Match([]float64{probe})
			if got != want {
				t.Fatalf("%v bucket %d (%s): Match ops %d != CostOf %d",
					strategy, bi, b.Iv, got, want)
			}
			if (edge >= 0) != (matched != nil) {
				// edge >= 0 at the leaf level means a match set exists.
				t.Fatalf("%v bucket %d: edge=%d but matched=%v", strategy, bi, edge, matched)
			}
		}
	}
}

// TestOutOfDomainEventsRejectFree: values outside the domain cost nothing
// and match nothing.
func TestOutOfDomainEventsRejectFree(t *testing.T) {
	s := gridSchema(t, 1, 9)
	profiles := eqProfiles(t, s, []int{5})
	tr, err := Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	matched, ops := tr.Match([]float64{42})
	if matched != nil || ops != 0 {
		t.Errorf("out-of-domain: matched=%v ops=%d", matched, ops)
	}
}

// TestDumpContainsStructure: the Fig. 1 renderer mentions every profile.
func TestDumpContainsStructure(t *testing.T) {
	s := gridSchema(t, 2, 9)
	profiles := eqProfiles(t, s, []int{1, 2}, []int{3, -1})
	tr, err := Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	dump := tr.Dump()
	for _, want := range []string{"a0", "a1", "p0", "p1"} {
		if !contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestMatchPathLevels: per-level ops sum to the total.
func TestMatchPathLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := gridSchema(t, 3, 20)
	var values [][]int
	for i := 0; i < 30; i++ {
		values = append(values, []int{rng.Intn(21), rng.Intn(21), rng.Intn(21)})
	}
	profiles := eqProfiles(t, s, values...)
	tr, err := Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		vals := []float64{float64(rng.Intn(21)), float64(rng.Intn(21)), float64(rng.Intn(21))}
		_, total, perLevel := tr.MatchPath(vals)
		sum := 0
		for _, o := range perLevel {
			sum += o
		}
		if sum != total {
			t.Fatalf("per-level %v sums to %d, total %d", perLevel, sum, total)
		}
		if len(perLevel) > s.N() {
			t.Fatalf("more levels than attributes: %v", perLevel)
		}
	}
}
