package tree

import (
	"math"
	"sort"

	"genas/internal/schema"
)

// Interval aliases schema.Interval so bucket regions read naturally in the
// exported ordering and analytics APIs.
type Interval = schema.Interval

// RankFunc scores one bucket region of an attribute for value reordering.
// The region of a complement edge is the union of several intervals; all
// other buckets are single intervals. Higher scores sort earlier when the
// order is descending.
//
// The selectivity package supplies rank functions for the paper's measures:
// natural order, V1 (event probability P_e), V2 (profile probability P_p)
// and V3 (P_e·P_p).
type RankFunc func(attr int, region []Interval) float64

// ValueOrder describes one of the paper's value orderings: a scoring
// function plus a direction ("The prototype supports the following value
// orders (either descending or ascending)", §4.2).
type ValueOrder struct {
	Name string
	Rank RankFunc
	// Descending scans high scores first (the usual choice for the
	// probability measures V1–V3).
	Descending bool
}

// NaturalOrder returns the ascending natural order implied by the domain.
func NaturalOrder() ValueOrder {
	return ValueOrder{
		Name: "natural",
		Rank: func(_ int, region []Interval) float64 { return regionLo(region) },
	}
}

// regionLo returns the smallest lower bound of a region.
func regionLo(region []Interval) float64 {
	lo := math.Inf(1)
	for _, iv := range region {
		if iv.Lo < lo {
			lo = iv.Lo
		}
	}
	return lo
}

// applyNaturalOrder initializes every node with the natural ascending order.
func (t *Tree) applyNaturalOrder() {
	t.ApplyValueOrder(NaturalOrder())
}

// ApplyValueOrder recomputes every node's defined order: the lookup-table
// positions over all buckets (including D₀ gaps, which non-matching events
// would occupy — Example 2 ranks the zero-subdomain region x₀ alongside the
// stored values) and the edge scan order. Structure is untouched; this is
// the cheap half of restructuring (the expensive half, attribute reordering,
// requires Build with a different order).
func (t *Tree) ApplyValueOrder(vo ValueOrder) {
	for _, level := range t.ensureMeta().levels {
		for _, n := range level {
			n.applyOrder(vo)
		}
	}
}

// applyOrder ranks the node's buckets and rebuilds scan/orderPos.
//
//genas:builder
func (n *Node) applyOrder(vo ValueOrder) {
	type scored struct {
		score float64
		// natural tiebreak position
		nat int
		// region indices: which buckets form the entry. Subrange and gap
		// buckets are singletons; all complement pieces form one entry.
		buckets []int
		edge    int
	}
	entries := make([]scored, 0, len(n.buckets))
	var complementPieces []int
	complementEdge := -1
	for bi, b := range n.buckets {
		if b.edge >= 0 && n.edges[b.edge].Kind != EdgeSubrange {
			complementPieces = append(complementPieces, bi)
			complementEdge = b.edge
			continue
		}
		entries = append(entries, scored{nat: bi, buckets: []int{bi}, edge: b.edge})
	}
	if complementEdge >= 0 {
		entries = append(entries, scored{nat: len(n.buckets), buckets: complementPieces, edge: complementEdge})
	}

	for i := range entries {
		region := make([]Interval, len(entries[i].buckets))
		for j, bi := range entries[i].buckets {
			region[j] = n.buckets[bi].iv
		}
		entries[i].score = vo.Rank(n.Attr, region)
	}

	sort.SliceStable(entries, func(i, j int) bool {
		si, sj := entries[i].score, entries[j].score
		if si != sj {
			if vo.Descending {
				return si > sj
			}
			return si < sj
		}
		// "The order of values with equal selectivity is arbitrary (such as
		// the natural order of the values)."
		return entries[i].nat < entries[j].nat
	})

	n.orderPos = make([]int, len(n.edges))
	n.scan = n.scan[:0]
	for pos, e := range entries {
		for _, bi := range e.buckets {
			n.buckets[bi].orderPos = pos + 1
		}
		if e.edge >= 0 {
			n.orderPos[e.edge] = pos + 1
			n.scan = append(n.scan, e.edge)
		}
	}
}

// ScanOrder returns the edge indices in scan order (copy).
func (n *Node) ScanOrder() []int { return append([]int(nil), n.scan...) }

// OrderPositions returns the defined-order position of every edge (copy).
func (n *Node) OrderPositions() []int { return append([]int(nil), n.orderPos...) }
