package tree

import (
	"sort"
)

// Operation counting convention (calibrated against the paper's Examples 2–5,
// see EXPERIMENTS.md):
//
//   - examining one edge during the ordered linear scan costs 1 operation,
//     whatever its kind (subrange, complement "(*)", or don't-care "*");
//   - the scan stops early by the lookup-table rule of Example 5: once an
//     edge with a defined-order position greater than the searched value's
//     position has been examined, the value cannot be in the node;
//   - each binary-search probe costs 1 operation; taking the complement or
//     star edge after the probes costs 1 more (the edge must still be
//     tested), matching the linear convention where those edges occupy a
//     scan slot.
//
// Locating the searched value's bucket (the "lookup table" consultation) is
// bookkeeping and costs nothing, as in the paper's prototype.

// bucketOf returns the index of the bucket containing v (every domain value
// is in exactly one bucket). Returns −1 for values outside the domain.
func (n *Node) bucketOf(v float64) int {
	lo, hi := 0, len(n.buckets)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		b := n.buckets[mid].iv
		switch {
		case b.Contains(v):
			return mid
		case b.Before(v):
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return -1
}

// step runs the node's search for value v and returns the chosen edge index
// (−1 for a non-match) and the operations spent.
func (n *Node) step(v float64, strategy Search) (edge, ops int) {
	bi := n.bucketOf(v)
	if bi < 0 {
		// Outside the domain: reject without touching the structure.
		return -1, 0
	}
	target := n.buckets[bi]
	return n.dispatch(target, strategy)
}

// dispatch routes one located bucket through the configured strategy.
func (n *Node) dispatch(target bucket, strategy Search) (int, int) {
	switch strategy {
	case SearchBinary:
		return n.stepBinary(target)
	case SearchInterpolation:
		return n.stepInterpolation(target)
	case SearchHash:
		return n.stepHash(target)
	case SearchLinearNoStop:
		return n.stepLinear(target, false)
	default:
		return n.stepLinear(target, true)
	}
}

// stepLinear scans edges in defined order. The early-termination rule
// compares defined-order positions via the lookup table (Example 5).
func (n *Node) stepLinear(target bucket, earlyStop bool) (int, int) {
	ops := 0
	for _, ei := range n.scan {
		ops++
		if ei == target.edge {
			return ei, ops
		}
		if earlyStop && n.orderPos[ei] > target.orderPos {
			// The examined edge already lies past the searched value in the
			// defined order: the node cannot contain it.
			return -1, ops
		}
	}
	return -1, ops
}

// stepBinary performs binary search over the naturally ordered subrange
// edges; a miss falls through to the complement/star edge when present.
func (n *Node) stepBinary(target bucket) (int, int) {
	ops := 0
	lo, hi := 0, n.nSubrange-1
	for lo <= hi {
		mid := (lo + hi) / 2
		ops++
		e := &n.edges[mid]
		switch {
		case target.edge == mid:
			return mid, ops
		case edgeBelowTarget(e, target):
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	// Not among the subranges: take the trailing complement/star edge if one
	// exists (one more operation to test it).
	return n.missTail(target, ops)
}

// missTail resolves a failed subrange search: the trailing complement or
// star edge, if any, is tested for one more operation.
func (n *Node) missTail(target bucket, ops int) (int, int) {
	if n.nSubrange < len(n.edges) {
		ops++
		ei := len(n.edges) - 1
		if target.edge == ei {
			return ei, ops
		}
		return -1, ops
	}
	return -1, ops
}

// edgeBelowTarget reports whether subrange edge e lies entirely below the
// target bucket on the natural axis.
func edgeBelowTarget(e *Edge, target bucket) bool {
	return e.Iv.Hi < target.iv.Lo ||
		(e.Iv.Hi == target.iv.Lo && (e.Iv.HiOpen || target.iv.LoOpen))
}

// stepInterpolation performs interpolation search over the naturally
// ordered subrange edges, probing by linear position estimate on the edge
// lower bounds (the classic sub-logarithmic strategy for near-uniform
// layouts; paper §5 outlook).
func (n *Node) stepInterpolation(target bucket) (int, int) {
	ops := 0
	lo, hi := 0, n.nSubrange-1
	key := target.iv.Lo
	for lo <= hi {
		var mid int
		loKey, hiKey := n.edges[lo].Iv.Lo, n.edges[hi].Iv.Lo
		if hiKey <= loKey || key <= loKey {
			mid = lo
		} else if key >= hiKey {
			mid = hi
		} else {
			mid = lo + int(float64(hi-lo)*(key-loKey)/(hiKey-loKey))
			if mid < lo {
				mid = lo
			}
			if mid > hi {
				mid = hi
			}
		}
		ops++
		e := &n.edges[mid]
		switch {
		case target.edge == mid:
			return mid, ops
		case edgeBelowTarget(e, target):
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return n.missTail(target, ops)
}

// stepHash models an idealized hash lookup. On discrete domains a per-value
// table resolves any bucket — subrange edge, complement piece or gap — in a
// single probe. Continuous domains cannot hash raw values; the strategy
// degrades to binary search there.
func (n *Node) stepHash(target bucket) (int, int) {
	if !n.discrete {
		return n.stepBinary(target)
	}
	if target.edge >= 0 {
		return target.edge, 1
	}
	return -1, 1
}

// Match filters one event (values indexed by schema attribute) through the
// automaton. It returns the dense indices of all matched profiles and the
// number of comparison operations spent. The returned slice may alias tree
// internals and must not be mutated. Profiles parked in node extra sets by
// incremental inserts are collected along the path; they match even when the
// walk later dead-ends in a D₀ gap (they are don't-care below their node).
func (t *Tree) Match(vals []float64) (matched []int, ops int) {
	n := t.root
	var acc []int // lazily allocated: only trees with incremental inserts carry extras
	for {
		if len(n.extra) > 0 {
			acc = append(acc, n.extra...)
		}
		v := vals[n.Attr]
		ei, stepOps := n.step(v, t.strategy)
		ops += stepOps
		if ei < 0 {
			return acc, ops
		}
		e := &n.edges[ei]
		if e.Child == nil {
			if acc == nil {
				return e.Profiles, ops
			}
			return append(acc, e.Profiles...), ops
		}
		n = e.Child
	}
}

// MatchPath is Match but additionally reports the per-level operations,
// which the per-profile accounting of Fig. 5(b) needs.
func (t *Tree) MatchPath(vals []float64) (matched []int, ops int, perLevel []int) {
	perLevel = make([]int, 0, t.schema.N())
	n := t.root
	var acc []int
	for {
		if len(n.extra) > 0 {
			acc = append(acc, n.extra...)
		}
		v := vals[n.Attr]
		ei, stepOps := n.step(v, t.strategy)
		ops += stepOps
		perLevel = append(perLevel, stepOps)
		if ei < 0 {
			return acc, ops, perLevel
		}
		e := &n.edges[ei]
		if e.Child == nil {
			if acc == nil {
				return e.Profiles, ops, perLevel
			}
			return append(acc, e.Profiles...), ops, perLevel
		}
		n = e.Child
	}
}

// Bucket is the read-only view of one domain piece at a node, used by the
// analytic evaluator (selectivity package) so that analytic and empirical
// operation counts share one cost model.
type Bucket struct {
	Iv   Interval
	Edge int // index into Node.Edges(), or −1 for a D₀ gap
}

// Buckets returns the node's natural-order domain partition.
func (n *Node) Buckets() []Bucket {
	out := make([]Bucket, len(n.buckets))
	for i, b := range n.buckets {
		out[i] = Bucket{Iv: b.iv, Edge: b.edge}
	}
	return out
}

// CostOf returns the operations the given strategy spends on an event whose
// value falls into bucket bi, without walking the tree. It shares the
// search implementations with step, so analytic and empirical costs agree
// by construction.
func (n *Node) CostOf(bi int, strategy Search) (edge, ops int) {
	return n.dispatch(n.buckets[bi], strategy)
}

// sortBucketsByPos re-sorts nothing but validates that scan positions are
// strictly increasing along the scan order; used by tests.
func (n *Node) scanPositionsIncreasing() bool {
	return sort.SliceIsSorted(n.scan, func(i, j int) bool {
		return n.orderPos[n.scan[i]] < n.orderPos[n.scan[j]]
	})
}
