// Package tree implements the profile tree: the deterministic finite state
// automaton built from a profile set that the paper's filtering is based on
// (§3, following Gough & Smith [8] and Aguilera et al. [1]).
//
// The tree has height n (one level per attribute). Each level corresponds to
// one attribute after attribute reordering; edges at a node carry the
// disjoint subranges referenced by the profiles still alive on that path.
// Profiles that do not constrain the level's attribute ride along every edge
// and additionally along the complement edge "(*)" covering the unreferenced
// remainder of the domain; if no alive profile constrains the attribute the
// node has the single don't-care edge "*". For an observed event there is a
// single path to follow (edges are disjoint), ending in a leaf that lists the
// matched profiles.
//
// Equivalent states are shared: two paths whose alive profile sets coincide
// at the same level point to the same node, which keeps the automaton
// polynomial in practice even for tens of thousands of profiles.
package tree

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/subrange"
)

// Search selects the within-node search strategy (paper §4.2 implements two:
// following the edges in the defined order, and binary search on the natural
// order).
type Search int

// Search strategies. SearchLinear uses the lookup-table early-termination
// rule of Example 5; SearchLinearNoStop scans every edge (ablation);
// SearchBinary performs binary search over the naturally ordered subranges.
// SearchInterpolation and SearchHash realize the further strategies the
// paper's outlook proposes ("binary-, interpolation-, or hash-based search
// within attribute-values", §5): interpolation search probes by linear
// position estimate; hash search models an idealized per-value lookup table
// on discrete domains (one operation per node) and degrades to binary
// search on continuous domains, where hashing values is not applicable.
const (
	SearchLinear Search = iota + 1
	SearchLinearNoStop
	SearchBinary
	SearchInterpolation
	SearchHash
)

// String names the strategy in experiment tables.
func (s Search) String() string {
	switch s {
	case SearchLinear:
		return "linear"
	case SearchLinearNoStop:
		return "linear-nostop"
	case SearchBinary:
		return "binary"
	case SearchInterpolation:
		return "interpolation"
	case SearchHash:
		return "hash"
	default:
		return "Search(" + strconv.Itoa(int(s)) + ")"
	}
}

// Errors returned by tree construction.
var (
	ErrNoProfiles = errors.New("tree: no profiles")
	ErrBadOrder   = errors.New("tree: attribute order is not a permutation")
)

// EdgeKind discriminates edge flavors.
type EdgeKind int

// Edge kinds. A subrange edge tests one interval; the complement edge "(*)"
// covers every unreferenced region for don't-care profiles; the star edge "*"
// is the sole edge of a node whose alive profiles all leave the attribute
// unspecified.
const (
	EdgeSubrange EdgeKind = iota + 1
	EdgeComplement
	EdgeStar
)

// Edge is one labeled transition of the automaton.
//
// Frozen: once the tree is published through the engine's epoch pointer,
// match goroutines read edges lock-free; every mutation must happen in a
// //genas:builder construction site before publication (snapfreeze
// enforces this).
//
//genas:frozen
type Edge struct {
	Kind EdgeKind
	// Iv is the subrange of a EdgeSubrange edge (unused for the others).
	Iv schema.Interval
	// Profiles are the dense indices of profiles continuing through the
	// edge (constraining profiles plus riders for subrange edges). On a leaf
	// edge (Child == nil) this doubles as the match set — a separate Leaf
	// field would hold the identical slice while widening every edge the
	// churn path has to copy by a quarter.
	Profiles []int
	// Child is the next level's node; nil at the leaf level, where Profiles
	// is the match set.
	Child *Node
}

// Leaf returns the match set of a leaf-level edge.
func (e *Edge) Leaf() []int { return e.Profiles }

// bucket is one piece of the domain partition at a node, in natural order.
// Buckets cover the entire domain: subrange edges, complement pieces (mapped
// to the complement edge) and D₀ gaps (edge == -1). Frozen after
// publication, like the nodes that hold them.
//
//genas:frozen
type bucket struct {
	iv   schema.Interval
	edge int // index into Node.edges, or -1 for a D₀ gap
	// orderPos is the bucket's 1-based position in the defined order; the
	// lookup table of §4.2 ("the table contains a position for each
	// element").
	orderPos int
}

// Node is one automaton state.
//
// Frozen: published snapshots are read lock-free under the epoch/RCU
// scheme; the incremental transforms clone instead of mutating. Writes are
// restricted to //genas:builder functions.
//
//genas:frozen
type Node struct {
	// Level is the 0-based tree level; Attr the schema attribute tested.
	Level int
	Attr  int
	edges []Edge
	// buckets is the natural-order partition of the whole domain.
	buckets []bucket
	// scan lists edge indices in defined (scan) order.
	scan []int
	// orderPos[i] is the defined-order position of edges[i].
	orderPos []int
	// nSubrange counts the leading subrange edges (edges[:nSubrange] are in
	// natural ascending order; a complement or star edge follows, if any).
	nSubrange int
	// extra lists profiles matched by every event reaching this node
	// (incremental inserts place a profile here when all levels from this
	// one down are don't-care for it, instead of rewriting every leaf of
	// the subtree). Build never sets it; a coalescing rebuild folds the
	// indices back into the leaf sets.
	extra []int
	// discrete marks integer/categorical attribute domains, where hash
	// search can index individual values.
	discrete bool
	// key is the memoization key (level + alive profile set).
	key string
}

// Edges exposes the node's edges (shared slice; callers must not mutate).
func (n *Node) Edges() []Edge { return n.edges }

// graphMeta holds the per-level node lists and size statistics of one node
// graph. It hangs off the Tree behind a pointer so that trees sharing a
// graph (WithoutProfile tombstone successors) share the meta, and so that
// incremental successors (WithProfile) can defer the full-graph walk until
// Levels or Stats is actually consulted — the churn path never pays it.
type graphMeta struct {
	once   sync.Once
	levels [][]*Node // unique (shared) nodes per level
	nodes  int
	edges  int
	shared int // extra references to shared nodes (memoization hits)
}

// fill computes the meta by walking the node graph (lazy counterpart of the
// builder's incremental bookkeeping).
func (m *graphMeta) fill(root *Node, height int) {
	m.levels = make([][]*Node, height)
	m.nodes, m.edges, m.shared = 0, 0, 0
	seen := make(map[*Node]bool, 64)
	stack := make([]*Node, 0, 64)
	stack = append(stack, root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			m.shared++
			continue
		}
		seen[n] = true
		m.nodes++
		m.edges += len(n.edges)
		m.levels[n.Level] = append(m.levels[n.Level], n)
		for i := range n.edges {
			if c := n.edges[i].Child; c != nil {
				stack = append(stack, c)
			}
		}
	}
}

// Tree is the profile tree plus its search configuration.
type Tree struct {
	schema    *schema.Schema
	profiles  []*predicate.Profile
	attrOrder []int // attrOrder[level] = schema attribute index
	root      *Node
	strategy  Search
	// cons holds canonical constraints per attribute and profile. Build
	// fills it and keeps it: the incremental transforms (WithProfile)
	// consult it for every profile riding through a split bucket.
	cons [][]subrange.Constraint
	// dead marks tombstoned profile indices: WithoutProfile does not touch
	// the node graph, it only records the index here, and match translation
	// skips dead indices. A coalescing rebuild clears the tombstones.
	dead      []bool
	deadCount int

	meta *graphMeta
}

// ensureMeta returns the graph meta, computing it on first use. Safe under
// concurrent readers of a published tree (sync.Once).
func (t *Tree) ensureMeta() *graphMeta {
	m := t.meta
	m.once.Do(func() { m.fill(t.root, t.schema.N()) })
	return m
}

// Option configures tree construction.
type Option func(*config)

type config struct {
	attrOrder []int
	strategy  Search
}

// WithAttributeOrder builds the tree with the given attribute order:
// order[level] is the schema attribute tested at that level.
func WithAttributeOrder(order []int) Option {
	return func(c *config) { c.attrOrder = append([]int(nil), order...) }
}

// WithSearch selects the within-node search strategy (default SearchLinear).
func WithSearch(s Search) Option {
	return func(c *config) { c.strategy = s }
}

// Build constructs the profile tree for the given profiles.
func Build(s *schema.Schema, profiles []*predicate.Profile, opts ...Option) (*Tree, error) {
	if len(profiles) == 0 {
		return nil, ErrNoProfiles
	}
	cfg := config{strategy: SearchLinear}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.attrOrder == nil {
		cfg.attrOrder = make([]int, s.N())
		for i := range cfg.attrOrder {
			cfg.attrOrder[i] = i
		}
	}
	if !isPermutation(cfg.attrOrder, s.N()) {
		return nil, fmt.Errorf("%w: %v", ErrBadOrder, cfg.attrOrder)
	}

	t := &Tree{
		schema:    s,
		profiles:  profiles,
		attrOrder: cfg.attrOrder,
		strategy:  cfg.strategy,
		meta:      &graphMeta{levels: make([][]*Node, s.N())},
	}

	// Canonical intervals are cached per (profile, attribute): the builder
	// consults them at every node of the shared automaton.
	t.cons = make([][]subrange.Constraint, s.N())
	for attr := 0; attr < s.N(); attr++ {
		dom := s.At(attr).Domain
		t.cons[attr] = make([]subrange.Constraint, len(profiles))
		for pi, p := range profiles {
			if !p.Constrains(attr) {
				t.cons[attr][pi] = subrange.Constraint{Profile: pi, DontCare: true}
				continue
			}
			t.cons[attr][pi] = subrange.Constraint{
				Profile:   pi,
				Intervals: p.Pred(attr).Intervals(dom),
			}
		}
	}

	all := make([]int, len(profiles))
	for i := range profiles {
		all[i] = i
	}
	memo := make(map[string]*Node)
	t.root = t.build(all, 0, memo)
	// The builder tracked the meta incrementally; consume the lazy fill.
	t.meta.once.Do(func() {})
	t.applyNaturalOrder()
	return t, nil
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, a := range order {
		if a < 0 || a >= n || seen[a] {
			return false
		}
		seen[a] = true
	}
	return true
}

// build returns the (possibly shared) node for the alive profile set at the
// given level.
//
//genas:builder
func (t *Tree) build(alive []int, level int, memo map[string]*Node) *Node {
	key := strconv.Itoa(level) + "|" + subrange.Key(alive)
	if n, ok := memo[key]; ok {
		t.meta.shared++
		return n
	}

	attr := t.attrOrder[level]
	dom := t.schema.At(attr).Domain
	dec := subrange.DecomposeIndexed(dom, t.cons[attr], alive)

	n := &Node{
		Level:    level,
		Attr:     attr,
		key:      key,
		discrete: dom.Kind() != schema.KindNumeric,
	}
	last := level == t.schema.N()-1

	// Subrange edges in natural order; don't-care profiles ride along.
	for _, sr := range dec.Subranges {
		profs := unionSorted(sr.Profiles, dec.Star)
		e := Edge{Kind: EdgeSubrange, Iv: sr.Iv, Profiles: profs}
		t.descend(&e, profs, level, last, memo)
		n.edges = append(n.edges, e)
	}
	n.nSubrange = len(n.edges)

	switch {
	case len(dec.Subranges) == 0 && len(dec.Star) > 0:
		// Pure don't-care node: single star edge over the whole domain.
		e := Edge{Kind: EdgeStar, Iv: dom.Interval(), Profiles: dec.Star}
		t.descend(&e, dec.Star, level, last, memo)
		n.edges = append(n.edges, e)
		n.buckets = []bucket{{iv: dom.Interval(), edge: len(n.edges) - 1}}
	case len(dec.Star) > 0 && len(dec.Gaps) > 0:
		// Complement edge (*) for the riders across every gap piece.
		e := Edge{Kind: EdgeComplement, Profiles: dec.Star}
		t.descend(&e, dec.Star, level, last, memo)
		n.edges = append(n.edges, e)
		n.buckets = mergeBuckets(dec, len(n.edges)-1)
	default:
		// Gaps (if any) are D₀: non-match regions.
		n.buckets = mergeBuckets(dec, -1)
	}

	t.meta.nodes++
	t.meta.edges += len(n.edges)
	t.meta.levels[level] = append(t.meta.levels[level], n)
	memo[key] = n
	return n
}

// descend fills the edge target: a child node, or nothing at the leaf level
// (a leaf edge's Profiles already is its match set).
//
//genas:builder
func (t *Tree) descend(e *Edge, alive []int, level int, last bool, memo map[string]*Node) {
	if last {
		return
	}
	e.Child = t.build(alive, level+1, memo)
}

// mergeBuckets builds the natural-order domain partition from the
// decomposition. complementEdge is the edge index for gap pieces (−1 = D₀).
//
//genas:builder
func mergeBuckets(dec subrange.Decomposition, complementEdge int) []bucket {
	type piece struct {
		iv   schema.Interval
		edge int
	}
	pieces := make([]piece, 0, len(dec.Subranges)+len(dec.Gaps))
	for i, sr := range dec.Subranges {
		pieces = append(pieces, piece{iv: sr.Iv, edge: i})
	}
	for _, g := range dec.Gaps {
		pieces = append(pieces, piece{iv: g, edge: complementEdge})
	}
	sort.Slice(pieces, func(i, j int) bool {
		if pieces[i].iv.Lo != pieces[j].iv.Lo {
			return pieces[i].iv.Lo < pieces[j].iv.Lo
		}
		// A point interval sorts before the open interval starting there.
		return pieces[i].iv.Hi < pieces[j].iv.Hi
	})
	out := make([]bucket, len(pieces))
	for i, p := range pieces {
		out[i] = bucket{iv: p.iv, edge: p.edge}
	}
	return out
}

// unionSorted merges two sorted int slices without duplicates.
func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Schema returns the tree's schema.
func (t *Tree) Schema() *schema.Schema { return t.schema }

// Profiles returns the dense-indexed profile slice (shared; do not mutate).
// Trees produced by WithoutProfile keep removed profiles in place as
// tombstones — check Dead before translating a matched index.
func (t *Tree) Profiles() []*predicate.Profile { return t.profiles }

// Dead reports whether dense index pi is tombstoned (removed via
// WithoutProfile without a rebuild). Matched indices for dead profiles must
// be skipped during translation.
func (t *Tree) Dead(pi int) bool { return pi < len(t.dead) && t.dead[pi] }

// HasDead reports whether any tombstones exist, so the hot translation loop
// can skip the per-index check in the common tombstone-free case.
func (t *Tree) HasDead() bool { return t.deadCount > 0 }

// LiveCount returns the number of non-tombstoned profiles.
func (t *Tree) LiveCount() int { return len(t.profiles) - t.deadCount }

// AttrOrder returns a copy of the attribute order.
func (t *Tree) AttrOrder() []int { return append([]int(nil), t.attrOrder...) }

// Strategy returns the within-node search strategy.
func (t *Tree) Strategy() Search { return t.strategy }

// SetStrategy switches the search strategy (safe between matches).
func (t *Tree) SetStrategy(s Search) { t.strategy = s }

// Levels returns the unique nodes per level (shared slices; do not mutate).
// On incremental successor trees the lists are computed lazily on first use.
func (t *Tree) Levels() [][]*Node { return t.ensureMeta().levels }

// Stats summarizes the automaton size.
type Stats struct {
	Nodes, Edges, SharedHits int
	Height                   int
	ProfileCount             int
}

// Stats returns automaton size statistics.
func (t *Tree) Stats() Stats {
	m := t.ensureMeta()
	return Stats{
		Nodes:        m.nodes,
		Edges:        m.edges,
		SharedHits:   m.shared,
		Height:       t.schema.N(),
		ProfileCount: len(t.profiles),
	}
}

// Dump renders the tree in a Fig. 1-like indented form for debugging and the
// paper-example tests.
func (t *Tree) Dump() string {
	var b strings.Builder
	seen := make(map[*Node]bool)
	t.dumpNode(&b, t.root, 0, seen)
	return b.String()
}

func (t *Tree) dumpNode(b *strings.Builder, n *Node, depth int, seen map[*Node]bool) {
	indent := strings.Repeat("  ", depth)
	name := t.schema.At(n.Attr).Name
	if seen[n] {
		fmt.Fprintf(b, "%s%s <shared>\n", indent, name)
		return
	}
	seen[n] = true
	fmt.Fprintf(b, "%s%s\n", indent, name)
	for _, ei := range n.scan {
		e := &n.edges[ei]
		label := e.Iv.String()
		switch e.Kind {
		case EdgeComplement:
			label = "(*)"
		case EdgeStar:
			label = "*"
		}
		if e.Child != nil {
			fmt.Fprintf(b, "%s  %s ->\n", indent, label)
			t.dumpNode(b, e.Child, depth+2, seen)
			continue
		}
		ids := make([]string, len(e.Leaf()))
		for i, pi := range e.Leaf() {
			ids[i] = string(t.profiles[pi].ID)
		}
		fmt.Fprintf(b, "%s  %s -> {%s}\n", indent, label, strings.Join(ids, ","))
	}
}
