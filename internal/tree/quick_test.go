package tree

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"genas/internal/predicate"
	"genas/internal/schema"
)

// corpus is a quick.Generator producing random profile corpora over a fixed
// two-attribute integer schema together with probe values. Using a custom
// generator keeps the search space inside the domain where matching is
// meaningful.
type corpus struct {
	ranges [][4]int // attr0 lo/hi, attr1 lo/hi per profile (−1 lo = don't care)
	probes [][2]int
}

const quickDomainHi = 30

// Generate implements quick.Generator.
func (corpus) Generate(r *rand.Rand, size int) reflect.Value {
	if size < 1 {
		size = 1
	}
	c := corpus{}
	n := 1 + r.Intn(size%20+5)
	for i := 0; i < n; i++ {
		var e [4]int
		for a := 0; a < 2; a++ {
			if r.Intn(4) == 0 {
				e[2*a] = -1 // don't care
				continue
			}
			lo := r.Intn(quickDomainHi)
			e[2*a] = lo
			e[2*a+1] = lo + r.Intn(quickDomainHi-lo+1)
		}
		if e[0] == -1 && e[2] == -1 {
			e[0], e[1] = 3, 7 // keep the profile satisfiable and non-empty
		}
		c.ranges = append(c.ranges, e)
	}
	for i := 0; i < 40; i++ {
		c.probes = append(c.probes, [2]int{r.Intn(quickDomainHi + 1), r.Intn(quickDomainHi + 1)})
	}
	return reflect.ValueOf(c)
}

var _ quick.Generator = corpus{}

// TestQuickTreeEquivalence: for arbitrary generated corpora, the automaton
// agrees with direct predicate evaluation under every search strategy.
func TestQuickTreeEquivalence(t *testing.T) {
	d, err := schema.NewIntegerDomain(0, quickDomainHi)
	if err != nil {
		t.Fatal(err)
	}
	s := schema.MustNew(
		schema.Attribute{Name: "x", Domain: d},
		schema.Attribute{Name: "y", Domain: d},
	)
	check := func(c corpus) bool {
		profiles := make([]*predicate.Profile, 0, len(c.ranges))
		for i, e := range c.ranges {
			var preds []predicate.Predicate
			if e[0] >= 0 {
				pr, err := predicate.NewRange(0, float64(e[0]), float64(e[1]))
				if err != nil {
					return false
				}
				preds = append(preds, pr)
			}
			if e[2] >= 0 {
				pr, err := predicate.NewRange(1, float64(e[2]), float64(e[3]))
				if err != nil {
					return false
				}
				preds = append(preds, pr)
			}
			p, err := predicate.New(s, predicate.ID(fmt.Sprintf("q%d", i)), preds...)
			if err != nil {
				return false
			}
			profiles = append(profiles, p)
		}
		for _, strategy := range []Search{SearchLinear, SearchBinary, SearchInterpolation, SearchHash} {
			tr, err := Build(s, profiles, WithSearch(strategy))
			if err != nil {
				return false
			}
			for _, probe := range c.probes {
				vals := []float64{float64(probe[0]), float64(probe[1])}
				matched, ops := tr.Match(vals)
				if ops < 0 {
					return false
				}
				got := make(map[int]bool, len(matched))
				for _, pi := range matched {
					got[pi] = true
				}
				for pi, p := range profiles {
					if p.Matches(vals) != got[pi] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickOrderPositionsArePermutation: for arbitrary rank functions the
// defined-order positions over a node's buckets form the range 1..k.
func TestQuickOrderPositionsArePermutation(t *testing.T) {
	d, err := schema.NewIntegerDomain(0, quickDomainHi)
	if err != nil {
		t.Fatal(err)
	}
	s := schema.MustNew(schema.Attribute{Name: "x", Domain: d})
	rng := rand.New(rand.NewSource(5))
	var values [][]int
	for i := 0; i < 20; i++ {
		values = append(values, []int{rng.Intn(quickDomainHi + 1)})
	}
	profiles := make([]*predicate.Profile, len(values))
	for i, v := range values {
		pr, err := predicate.NewComparison(0, predicate.OpEq, float64(v[0]))
		if err != nil {
			t.Fatal(err)
		}
		profiles[i], err = predicate.New(s, predicate.ID(fmt.Sprintf("p%d", i)), pr)
		if err != nil {
			t.Fatal(err)
		}
	}
	tr, err := Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}

	check := func(seed int64, desc bool) bool {
		h := rand.New(rand.NewSource(seed))
		salt := h.Float64() * 100
		tr.ApplyValueOrder(ValueOrder{
			Name:       "quick",
			Descending: desc,
			Rank: func(_ int, region []Interval) float64 {
				return math.Mod(region[0].Lo*salt, 13)
			},
		})
		root := tr.Root()
		// Edge positions must be distinct and within 1..#buckets-ish; the
		// scan must visit every edge exactly once in increasing position.
		if !root.scanPositionsIncreasing() {
			return false
		}
		seen := map[int]bool{}
		for _, pos := range root.OrderPositions() {
			if pos < 1 || seen[pos] {
				return false
			}
			seen[pos] = true
		}
		return len(seen) == len(root.Edges())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
