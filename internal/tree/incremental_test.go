package tree

import (
	"fmt"
	"math/rand"
	"testing"

	"genas/internal/predicate"
	"genas/internal/schema"
)

// incrSchema mixes a continuous, an integer and a categorical attribute so
// the incremental transform exercises both the continuous split path and the
// discrete atom-snapping path.
func incrSchema(t *testing.T) *schema.Schema {
	t.Helper()
	num, err := schema.NewNumericDomain(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	in, err := schema.NewIntegerDomain(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := schema.NewCategoricalDomain("a", "b", "c", "d", "e")
	if err != nil {
		t.Fatal(err)
	}
	return schema.MustNew(
		schema.Attribute{Name: "num", Domain: num},
		schema.Attribute{Name: "int", Domain: in},
		schema.Attribute{Name: "cat", Domain: cat},
	)
}

// randomProfile draws a profile with random per-attribute constraints:
// don't-care, range, comparison or point-set, occasionally out-of-domain or
// atom-free so the unsatisfiable fast path is covered too.
func randomProfile(t *testing.T, s *schema.Schema, rng *rand.Rand, id int) *predicate.Profile {
	t.Helper()
	var preds []predicate.Predicate
	for attr := 0; attr < s.N(); attr++ {
		dom := s.At(attr).Domain
		lo, hi := dom.Lo(), dom.Hi()
		switch rng.Intn(5) {
		case 0: // don't-care
		case 1:
			a := lo + rng.Float64()*(hi-lo)
			b := a + rng.Float64()*(hi-a)
			if dom.Kind() != schema.KindNumeric && rng.Intn(2) == 0 {
				a, b = float64(int(a)), float64(int(b))
			}
			pr, err := predicate.NewRange(attr, a, b)
			if err != nil {
				t.Fatal(err)
			}
			preds = append(preds, pr)
		case 2:
			op := []predicate.Op{predicate.OpEq, predicate.OpLt, predicate.OpLe, predicate.OpGt, predicate.OpGe}[rng.Intn(5)]
			v := lo + rng.Float64()*(hi-lo)
			if dom.Kind() != schema.KindNumeric {
				v = float64(int(v))
			}
			pr, err := predicate.NewComparison(attr, op, v)
			if err != nil {
				t.Fatal(err)
			}
			preds = append(preds, pr)
		case 3:
			k := 1 + rng.Intn(3)
			vs := make([]float64, k)
			for i := range vs {
				vs[i] = float64(int(lo) + rng.Intn(int(hi-lo)+1))
			}
			pr, err := predicate.NewIn(attr, vs...)
			if err != nil {
				t.Fatal(err)
			}
			preds = append(preds, pr)
		case 4:
			// Occasionally atom-free on discrete domains (unsatisfiable).
			a := lo + rng.Float64()*(hi-lo-1)
			pr, err := predicate.NewRange(attr, a+0.1, a+0.2)
			if err != nil {
				t.Fatal(err)
			}
			preds = append(preds, pr)
		}
	}
	if len(preds) == 0 {
		pr, err := predicate.NewRange(0, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		preds = append(preds, pr)
	}
	p, err := predicate.New(s, predicate.ID(fmt.Sprintf("p%d", id)), preds...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func randomProbe(s *schema.Schema, rng *rand.Rand) []float64 {
	vals := make([]float64, s.N())
	for attr := 0; attr < s.N(); attr++ {
		dom := s.At(attr).Domain
		v := dom.Lo() + rng.Float64()*(dom.Hi()-dom.Lo())
		if dom.Kind() != schema.KindNumeric || rng.Intn(2) == 0 {
			v = float64(int(v))
		}
		vals[attr] = v
	}
	return vals
}

// liveMatchSet collects the live matched profile IDs of a tree for a probe.
func liveMatchSet(tr *Tree, vals []float64) map[predicate.ID]bool {
	matched, _ := tr.Match(vals)
	out := make(map[predicate.ID]bool, len(matched))
	profs := tr.Profiles()
	for _, pi := range matched {
		if tr.Dead(pi) {
			continue
		}
		out[profs[pi].ID] = true
	}
	return out
}

// TestWithProfileOracle grows a tree one profile at a time via WithProfile
// and checks, after every insertion, that the incremental tree produces
// exactly the match sets of (a) a tree freshly built from the same corpus
// and (b) direct predicate evaluation — across random probes and under both
// a natural and a non-trivial value order.
func TestWithProfileOracle(t *testing.T) {
	s := incrSchema(t)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vo := NaturalOrder()
		if seed%2 == 1 {
			vo = ValueOrder{
				Name:       "widest-first",
				Descending: true,
				Rank: func(_ int, region []Interval) float64 {
					var w float64
					for _, iv := range region {
						w += iv.Hi - iv.Lo
					}
					return w
				},
			}
		}

		var corpus []*predicate.Profile
		var inc *Tree
		for step := 0; step < 18; step++ {
			p := randomProfile(t, s, rng, int(seed)*100+step)
			corpus = append(corpus, p)
			if inc == nil {
				var err error
				inc, err = Build(s, corpus)
				if err != nil {
					t.Fatal(err)
				}
				inc.ApplyValueOrder(vo)
			} else {
				var pi int
				inc, pi = inc.WithProfile(p, vo)
				if pi != len(corpus)-1 {
					t.Fatalf("seed %d step %d: WithProfile index = %d, want %d", seed, step, pi, len(corpus)-1)
				}
			}

			oracle, err := Build(s, corpus)
			if err != nil {
				t.Fatalf("seed %d step %d: oracle build: %v", seed, step, err)
			}
			oracle.ApplyValueOrder(vo)

			for probe := 0; probe < 30; probe++ {
				vals := randomProbe(s, rng)
				got := liveMatchSet(inc, vals)
				want := liveMatchSet(oracle, vals)
				for _, p := range corpus {
					direct := p.Matches(vals)
					if want[p.ID] != direct {
						t.Fatalf("seed %d step %d: oracle disagrees with direct eval for %s at %v", seed, step, p.ID, vals)
					}
					if got[p.ID] != direct {
						t.Fatalf("seed %d step %d: incremental tree: profile %s match=%v direct=%v at %v",
							seed, step, p.ID, got[p.ID], direct, vals)
					}
				}
			}
		}
	}
}

// TestWithoutProfileOracle interleaves insertions and tombstone removals and
// checks the live match sets against direct evaluation of the live corpus.
func TestWithoutProfileOracle(t *testing.T) {
	s := incrSchema(t)
	for seed := int64(20); seed < 26; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vo := NaturalOrder()

		live := make(map[predicate.ID]*predicate.Profile)
		denseOf := make(map[predicate.ID]int)
		var inc *Tree
		next := 0
		for step := 0; step < 40; step++ {
			if inc != nil && len(live) > 0 && rng.Intn(3) == 0 {
				// Remove a random live profile.
				var victim predicate.ID
				k := rng.Intn(len(live))
				for id := range live {
					if k == 0 {
						victim = id
						break
					}
					k--
				}
				inc = inc.WithoutProfile(denseOf[victim])
				delete(live, victim)
				delete(denseOf, victim)
			} else {
				p := randomProfile(t, s, rng, int(seed)*1000+next)
				next++
				if inc == nil {
					var err error
					inc, err = Build(s, []*predicate.Profile{p})
					if err != nil {
						t.Fatal(err)
					}
					denseOf[p.ID] = 0
				} else {
					var pi int
					inc, pi = inc.WithProfile(p, vo)
					denseOf[p.ID] = pi
				}
				live[p.ID] = p
			}
			if inc.LiveCount() != len(live) {
				t.Fatalf("seed %d step %d: LiveCount=%d want %d", seed, step, inc.LiveCount(), len(live))
			}
			for probe := 0; probe < 20; probe++ {
				vals := randomProbe(s, rng)
				got := liveMatchSet(inc, vals)
				n := 0
				for id, p := range live {
					direct := p.Matches(vals)
					if got[id] != direct {
						t.Fatalf("seed %d step %d: profile %s match=%v direct=%v at %v",
							seed, step, id, got[id], direct, vals)
					}
					if direct {
						n++
					}
				}
				if len(got) != n {
					t.Fatalf("seed %d step %d: matched %d live profiles, want %d (ghost match?)", seed, step, len(got), n)
				}
			}
		}
	}
}

// TestReorderedDoesNotMutateOriginal pins the RCU contract: applying a new
// value order via Reordered leaves the original tree's scan order intact.
func TestReorderedDoesNotMutateOriginal(t *testing.T) {
	s := incrSchema(t)
	rng := rand.New(rand.NewSource(7))
	var corpus []*predicate.Profile
	for i := 0; i < 12; i++ {
		corpus = append(corpus, randomProfile(t, s, rng, i))
	}
	tr, err := Build(s, corpus)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Root().ScanOrder()

	re := tr.Reordered(ValueOrder{
		Name:       "reverse",
		Descending: true,
		Rank:       func(_ int, region []Interval) float64 { return region[0].Lo },
	})
	after := tr.Root().ScanOrder()
	if len(before) != len(after) {
		t.Fatalf("original scan order length changed: %v -> %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("original scan order mutated at %d: %v -> %v", i, before, after)
		}
	}
	// The reordered tree still produces identical match sets.
	for probe := 0; probe < 50; probe++ {
		vals := randomProbe(s, rng)
		got := liveMatchSet(re, vals)
		for _, p := range corpus {
			if got[p.ID] != p.Matches(vals) {
				t.Fatalf("reordered tree: profile %s mismatch at %v", p.ID, vals)
			}
		}
	}
	if rs, ts := re.Stats(), tr.Stats(); rs.Nodes != ts.Nodes {
		t.Fatalf("Reordered changed node count: %d != %d", rs.Nodes, ts.Nodes)
	}
}

// TestWithProfileStatsTracked checks sweep keeps Stats and Levels coherent
// on successor trees.
func TestWithProfileStatsTracked(t *testing.T) {
	s := incrSchema(t)
	rng := rand.New(rand.NewSource(11))
	tr, err := Build(s, []*predicate.Profile{randomProfile(t, s, rng, 0)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		tr, _ = tr.WithProfile(randomProfile(t, s, rng, i), NaturalOrder())
	}
	st := tr.Stats()
	if st.ProfileCount != 10 {
		t.Fatalf("ProfileCount=%d want 10", st.ProfileCount)
	}
	n := 0
	for _, level := range tr.Levels() {
		n += len(level)
	}
	if n != st.Nodes {
		t.Fatalf("levels hold %d nodes, Stats says %d", n, st.Nodes)
	}
	if st.Height != s.N() {
		t.Fatalf("Height=%d want %d", st.Height, s.N())
	}
}
