// Incremental maintenance of the profile tree: insert one profile by
// transforming only the automaton states the profile can reach (the
// "corridor"), remove one profile by tombstoning its dense index, and
// re-apply a value order by cloning the node graph so concurrent readers of
// the original tree never observe a half-ordered node.
//
// All three operations are persistent: the receiver tree is never mutated,
// the successor shares every node the change does not touch. That is what
// lets the engine publish trees through an atomic snapshot pointer and keep
// the match path lock-free — a reader traversing the old tree races nothing.
//
// Correctness of the insert transform rests on one observation: the new
// profile only refines the domain partition at each node (its intervals add
// cuts, never remove them), so every new piece either lies inside the new
// profile's region — where the profile joins the edge and the child is
// transformed — or outside it, where the old edge and the old child are
// reused verbatim. Shared states stay shared because the transform is
// memoized by old-node identity: alive' = alive ∪ {np} is a function of the
// old state alone. The successor is generally not the canonical tree Build
// would produce (adjacent pieces with equal profile sets are not re-merged);
// the engine coalesces with a full rebuild once accumulated edits pass its
// threshold. Match sets are identical either way, which the oracle
// equivalence tests pin.

package tree

import (
	"sync"

	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/subrange"
)

// WithProfile returns a successor tree containing p in addition to the
// receiver's profiles, plus p's dense index in the successor. The receiver
// is unchanged and keeps working; untouched subtrees are shared between the
// two. vo is the value order applied to new and re-bucketed nodes (reused
// nodes keep the ordering they had).
//
// Callers must not ApplyValueOrder on either tree afterwards: shared nodes
// would be reordered in place under the other tree's readers. Use Reordered.
func (t *Tree) WithProfile(p *predicate.Profile, vo ValueOrder) (*Tree, int) {
	np := len(t.profiles)
	nt := &Tree{
		schema:    t.schema,
		attrOrder: t.attrOrder,
		strategy:  t.strategy,
	}
	// Extending by append may share the receiver's backing array: the write
	// lands at index np, past every predecessor's length, and predecessors
	// never read beyond their own length. The aliasing is safe as long as
	// successors are derived linearly (always from the newest tree), which
	// the engine's writer mutex guarantees; two siblings derived from one
	// parent would clobber each other's column and are not supported.
	nt.profiles = append(t.profiles, p)
	if t.deadCount > 0 {
		nt.dead = make([]bool, np+1)
		copy(nt.dead, t.dead)
		nt.deadCount = t.deadCount
	}

	// Extend the canonical constraint table with p's column, exactly as
	// Build would have computed it.
	sat := true
	nt.cons = make([][]subrange.Constraint, t.schema.N())
	for attr := 0; attr < t.schema.N(); attr++ {
		dom := t.schema.At(attr).Domain
		var c subrange.Constraint
		if !p.Constrains(attr) {
			c = subrange.Constraint{Profile: np, DontCare: true}
		} else {
			ivs := p.Pred(attr).Intervals(dom)
			c = subrange.Constraint{Profile: np, Intervals: ivs}
			discrete := dom.Kind() != schema.KindNumeric
			ok := false
			for _, iv := range ivs {
				if _, snapped := subrange.Snap(iv, discrete); snapped {
					ok = true
					break
				}
			}
			if !ok {
				sat = false
			}
		}
		// Same linear-derivation aliasing argument as for profiles above.
		nt.cons[attr] = append(t.cons[attr], c)
	}
	if !sat {
		// The profile is unsatisfiable on some attribute: it can never
		// match, so the automaton is unchanged and the whole node graph is
		// shared. The index still exists (it appears in no leaf).
		nt.root = t.root
		nt.meta = t.meta
		return nt, np
	}

	ins := inserterPool.Get().(*inserter)
	ins.reset(nt, np, vo)
	for level := 0; level < t.schema.N(); level++ {
		if !nt.cons[t.attrOrder[level]][np].DontCare {
			ins.lastCons = level
		}
	}
	nt.root = ins.transform(t.root)
	nt.meta = &graphMeta{} // filled lazily on the first Levels/Stats call
	ins.release()
	inserterPool.Put(ins)
	return nt, np
}

// inserterPool recycles the memo map and scratch buffers across inserts:
// steady churn then allocates almost nothing beyond the arena chunks the
// successor tree keeps.
var inserterPool = sync.Pool{New: func() any { return new(inserter) }}

// reset prepares a (possibly recycled) inserter for one WithProfile call.
func (ins *inserter) reset(nt *Tree, np int, vo ValueOrder) {
	n := nt.schema.N()
	ins.t = nt
	ins.np = np
	ins.npSlice = ins.a.unionTail(nil, np)
	ins.vo = vo
	ins.lastCons = -1
	if ins.memo == nil {
		ins.memo = make(map[*Node]*Node, 256)
	} else {
		clear(ins.memo)
	}
	if len(ins.chains) < n {
		ins.chains = make([]*Node, n)
		ins.parts = make([][]part, n)
		ins.srcPos = make([][]int, n)
		ins.edgeBuf = make([][]Edge, n)
		ins.bksBuf = make([][]bucket, n)
	} else {
		ins.chains = ins.chains[:n]
		for i := range ins.chains {
			ins.chains[i] = nil
		}
	}
}

// release drops the references the successor tree now owns (the arena and
// the transform state); scratch buffers keep their capacity for the next
// insert.
func (ins *inserter) release() {
	ins.t = nil
	ins.npSlice = nil
	// Drop the chunk references: the successor tree owns them now.
	ins.a = arena{}
	clear(ins.memo)
}

// WithoutProfile returns a successor tree with dense index pi tombstoned.
// The node graph is shared whole: the dead profile keeps occupying its leaf
// sets and subranges until a coalescing rebuild, and match translation skips
// it via Dead.
func (t *Tree) WithoutProfile(pi int) *Tree {
	nt := *t
	nt.dead = make([]bool, len(t.profiles))
	copy(nt.dead, t.dead)
	if !nt.dead[pi] {
		nt.dead[pi] = true
		nt.deadCount = t.deadCount + 1
	}
	return &nt
}

// Reordered returns a successor tree with vo applied to every node. Unlike
// ApplyValueOrder it does not mutate the receiver: the node graph is cloned
// (structure, buckets and ordering state; profile and leaf slices are
// shared), so readers of the old tree keep a consistent defined order.
func (t *Tree) Reordered(vo ValueOrder) *Tree {
	nt := *t
	memo := make(map[*Node]*Node, 64)
	nt.root = cloneReordered(t.root, vo, memo)
	nt.meta = &graphMeta{} // same graph shape, but fresh nodes: recompute lazily
	return &nt
}

//
//genas:builder
func cloneReordered(old *Node, vo ValueOrder, memo map[*Node]*Node) *Node {
	if n, ok := memo[old]; ok {
		return n
	}
	n := &Node{
		Level:     old.Level,
		Attr:      old.Attr,
		discrete:  old.discrete,
		nSubrange: old.nSubrange,
		key:       old.key,
		extra:     old.extra,
	}
	n.edges = make([]Edge, len(old.edges))
	copy(n.edges, old.edges)
	for i := range n.edges {
		if n.edges[i].Child != nil {
			n.edges[i].Child = cloneReordered(n.edges[i].Child, vo, memo)
		}
	}
	n.buckets = make([]bucket, len(old.buckets))
	copy(n.buckets, old.buckets)
	n.applyOrder(vo)
	memo[old] = n
	return n
}

// arena chunk-allocates the successor objects of one insert. A corridor
// transform creates hundreds of small, identically shaped objects (nodes,
// edge lists, bucket lists, order tables); allocating each individually made
// malloc fixed costs and the resulting GC assist rate the dominant term of
// the churn path. Chunks are pinned by the successor tree exactly as long as
// individually allocated objects would be; the unused tail of the last chunk
// of each kind is the only overhead.
type arena struct {
	nodes   []Node
	edges   []Edge
	buckets []bucket
	ints    []int
}

// Chunk sizes are deliberately small: a corridor fills dozens of chunks
// whatever their size, so the only real overhead is the partially used last
// chunk of each kind — small chunks bound that waste at a few KB while the
// malloc fixed cost stays amortized.
const (
	nodeChunk   = 64
	edgeChunk   = 128
	bucketChunk = 128
	intChunk    = 256
)

func chunkCap(need, d int) int {
	if need > d {
		return need
	}
	return d
}

func (a *arena) node() *Node {
	if len(a.nodes) == cap(a.nodes) {
		a.nodes = make([]Node, 0, nodeChunk)
	}
	a.nodes = a.nodes[:len(a.nodes)+1]
	return &a.nodes[len(a.nodes)-1]
}

// edgeSlice commits a scratch-built edge list to arena storage.
//
//genas:builder
func (a *arena) edgeSlice(src []Edge) []Edge {
	if cap(a.edges)-len(a.edges) < len(src) {
		a.edges = make([]Edge, 0, chunkCap(len(src), edgeChunk))
	}
	base := len(a.edges)
	a.edges = append(a.edges, src...)
	return a.edges[base:len(a.edges):len(a.edges)]
}

// bucketSlice commits a scratch-built bucket list to arena storage.
//
//genas:builder
func (a *arena) bucketSlice(src []bucket) []bucket {
	if cap(a.buckets)-len(a.buckets) < len(src) {
		a.buckets = make([]bucket, 0, chunkCap(len(src), bucketChunk))
	}
	base := len(a.buckets)
	a.buckets = append(a.buckets, src...)
	return a.buckets[base:len(a.buckets):len(a.buckets)]
}

// intSlice commits a scratch-built int list to arena storage.
func (a *arena) intSlice(src []int) []int {
	if cap(a.ints)-len(a.ints) < len(src) {
		a.ints = make([]int, 0, chunkCap(len(src), intChunk))
	}
	base := len(a.ints)
	a.ints = append(a.ints, src...)
	return a.ints[base:len(a.ints):len(a.ints)]
}

// unionTail appends np to a sorted dense-index set in arena storage. np is
// the largest index in the successor corpus by construction, so the union is
// a copy plus one trailing element.
func (a *arena) unionTail(src []int, np int) []int {
	need := len(src) + 1
	if cap(a.ints)-len(a.ints) < need {
		a.ints = make([]int, 0, chunkCap(need, intChunk))
	}
	base := len(a.ints)
	a.ints = append(a.ints, src...)
	a.ints = append(a.ints, np)
	return a.ints[base:len(a.ints):len(a.ints)]
}

// inserter carries one WithProfile transform: the successor tree under
// construction, the new profile's dense index, and the memo tables that keep
// shared states shared.
type inserter struct {
	t  *Tree
	np int
	// npSlice is the one-profile set {np}, shared by every edge and leaf
	// that carries only the new profile.
	npSlice []int
	vo      ValueOrder
	// memo maps old nodes to their transformed counterparts (alive' =
	// alive ∪ {np} is a function of the old state alone, so old-node
	// identity is a sound key).
	memo map[*Node]*Node
	// chains[level] is the single-profile node testing np's constraint at
	// that level, reached where np alone covers a formerly-unreferenced
	// region.
	chains []*Node
	// lastCons is the deepest level whose attribute np constrains: below it
	// np is don't-care everywhere, so transform parks np in the node's
	// extra set and shares the entire subtree instead of rewriting every
	// leaf (−1 when np constrains nothing, i.e. it matches every event).
	lastCons int
	// scratch is the per-bucket split buffer, reused across buckets.
	scratch []splitPiece
	// parts[level] and srcPos[level] are the split-result and source-order
	// buffers of the constrain call active at that level. Recursion makes
	// one shared buffer unsafe (a nested constrain at a deeper level would
	// clobber the caller's), but at most one call is active per level, so
	// indexing by level is.
	parts  [][]part
	srcPos [][]int
	// edgeBuf[level]/bksBuf[level] are the scratch edge and bucket lists of
	// the call active at that level, committed to the arena once complete.
	edgeBuf [][]Edge
	bksBuf  [][]bucket
	// ord, posBuf and scanBuf are deriveOrder's scratch (no recursion
	// inside it, so shared buffers are enough).
	ord     []ordEntry
	posBuf  []int
	scanBuf []int
	compBuf []int
	// a chunk-allocates every object the successor tree retains.
	a arena
}

// part is one fragment of a bucket split against the new profile's
// intervals during constrain: the region, whether it lies inside the
// profile's intervals, the old edge behind it and the source bucket's
// defined-order position.
type part struct {
	iv      schema.Interval
	in      bool
	oldEdge int
	srcPos  int
}

// ordEntry is one defined-order entry during deriveOrder.
type ordEntry struct {
	key  int // inherited source position
	nat  int // natural tiebreak: bucket index, or len(buckets) for the complement group
	edge int
}

// transform returns the successor node for an old node the new profile
// reaches.
//
//genas:builder
func (ins *inserter) transform(old *Node) *Node {
	if n, ok := ins.memo[old]; ok {
		return n
	}
	var n *Node
	if old.Level > ins.lastCons {
		// Every remaining level is don't-care for np: it matches every
		// event that reaches this node. Park it in the extra set and share
		// the whole subtree — the dominant cost of inserting a profile that
		// constrains only early attributes collapses to one node copy.
		n = ins.a.node()
		*n = *old
		n.extra = ins.a.unionTail(old.extra, ins.np)
	} else if c := &ins.t.cons[old.Attr][ins.np]; c.DontCare {
		n = ins.dontCare(old)
	} else {
		n = ins.constrain(old, c.Intervals)
	}
	ins.memo[old] = n
	return n
}

// dontCare transforms a node whose attribute the new profile leaves
// unconstrained: np rides every existing edge, and any formerly-D₀ gap
// becomes np's complement region. When the old node had no D₀ gaps the
// partition and ordering are structurally identical, so buckets, scan order
// and position table are shared with the old node.
//
//genas:builder
func (ins *inserter) dontCare(old *Node) *Node {
	last := old.Level == ins.t.schema.N()-1
	// extra (prior inserts' parked profiles) rides along unchanged: those
	// profiles still match every event reaching the successor node.
	n := ins.a.node()
	*n = Node{Level: old.Level, Attr: old.Attr, discrete: old.discrete, nSubrange: old.nSubrange, extra: old.extra}
	hasGap := false
	for i := range old.buckets {
		if old.buckets[i].edge < 0 {
			hasGap = true
			break
		}
	}
	buf := ins.edgeBuf[old.Level][:0]
	for i := range old.edges {
		oe := &old.edges[i]
		ne := Edge{Kind: oe.Kind, Iv: oe.Iv}
		if last {
			ne.Profiles = ins.a.unionTail(oe.Profiles, ins.np)
		} else {
			// Interior profile sets are inherited analysis metadata (the
			// match path reads only buckets, scan order and leaf sets);
			// sharing them keeps the corridor transform O(cuts), not
			// O(riders).
			ne.Profiles = oe.Profiles
			ne.Child = ins.transform(oe.Child)
		}
		buf = append(buf, ne)
	}
	if !hasGap {
		ins.edgeBuf[old.Level] = buf
		n.edges = ins.a.edgeSlice(buf)
		n.buckets = old.buckets
		n.scan = old.scan
		n.orderPos = old.orderPos
		return n
	}
	ci := len(buf)
	ce := Edge{Kind: EdgeComplement, Profiles: ins.npSlice}
	if !last {
		ce.Child = ins.chain(old.Level + 1)
	}
	buf = append(buf, ce)
	ins.edgeBuf[old.Level] = buf
	n.edges = ins.a.edgeSlice(buf)
	bks := ins.bksBuf[old.Level][:0]
	srcPos := ins.srcPos[old.Level][:0]
	for _, b := range old.buckets {
		srcPos = append(srcPos, b.orderPos)
		if b.edge < 0 {
			b.edge = ci
		}
		bks = append(bks, b)
	}
	ins.bksBuf[old.Level] = bks
	ins.srcPos[old.Level] = srcPos
	n.buckets = ins.a.bucketSlice(bks)
	ins.deriveOrder(n, srcPos)
	return n
}

// constrain transforms a node whose attribute the new profile constrains
// with intervals ivs. Buckets overlapping np's region are split against it:
// pieces inside become subrange edges carrying the old occupants plus np
// (the child transformed), pieces outside keep the old edge, child and
// profile set verbatim. Buckets disjoint from every interval — the common
// case, found by a merged walk over the two sorted sequences — are copied
// wholesale with only the edge index remapped; complement riders collapse
// onto a single reused complement edge. np alone covers pieces cut out of
// formerly-D₀ gaps, continuing into its single-profile chain.
//
//genas:builder
func (ins *inserter) constrain(old *Node, ivs []schema.Interval) *Node {
	last := old.Level == ins.t.schema.N()-1
	n := ins.a.node()
	*n = Node{Level: old.Level, Attr: old.Attr, discrete: old.discrete, extra: old.extra}

	// Phase 1: split the overlapping buckets without recursing
	// (transform/chain reuse ins.scratch, so recursion must wait until the
	// pieces are copied out into this level's parts buffer).
	parts := ins.parts[old.Level][:0]
	ivi := 0
	for bi := range old.buckets {
		b := &old.buckets[bi]
		for ivi < len(ivs) && ivBefore(ivs[ivi], b.iv) {
			ivi++
		}
		if ivi >= len(ivs) || ivBefore(b.iv, ivs[ivi]) {
			// Disjoint from every remaining interval: one out-part, no
			// snapping needed (the bucket is already canonical).
			parts = append(parts, part{iv: b.iv, in: false, oldEdge: b.edge, srcPos: b.orderPos})
			continue
		}
		ins.scratch = splitByIvs(b.iv, ivs[ivi:], old.discrete, ins.scratch[:0])
		for _, pc := range ins.scratch {
			parts = append(parts, part{iv: pc.iv, in: pc.in, oldEdge: b.edge, srcPos: b.orderPos})
		}
	}
	ins.parts[old.Level] = parts

	// Phase 2: assemble edges and buckets in natural order. pending marks
	// bucket entries routed to the complement edge, which is appended after
	// the (naturally ordered) subrange edges.
	const pending = -2
	bks := ins.bksBuf[old.Level][:0]
	srcPos := ins.srcPos[old.Level][:0]
	buf := ins.edgeBuf[old.Level][:0]
	compEdge := -1 // old complement/star edge index behind the pending pieces
	for _, pc := range parts {
		if !pc.in {
			switch {
			case pc.oldEdge >= 0 && old.edges[pc.oldEdge].Kind == EdgeSubrange:
				oe := &old.edges[pc.oldEdge]
				bks = append(bks, bucket{iv: pc.iv, edge: len(buf)})
				buf = append(buf, Edge{
					Kind: EdgeSubrange, Iv: pc.iv,
					Profiles: oe.Profiles, Child: oe.Child,
				})
			case pc.oldEdge >= 0:
				compEdge = pc.oldEdge
				bks = append(bks, bucket{iv: pc.iv, edge: pending})
			default:
				bks = append(bks, bucket{iv: pc.iv, edge: -1})
			}
			srcPos = append(srcPos, pc.srcPos)
			continue
		}
		var ne Edge
		if pc.oldEdge >= 0 {
			oe := &old.edges[pc.oldEdge]
			ne = Edge{Kind: EdgeSubrange, Iv: pc.iv}
			if last {
				ne.Profiles = ins.a.unionTail(oe.Profiles, ins.np)
			} else {
				ne.Profiles = oe.Profiles // inherited metadata; see dontCare
				ne.Child = ins.transform(oe.Child)
			}
		} else {
			ne = Edge{Kind: EdgeSubrange, Iv: pc.iv, Profiles: ins.npSlice}
			if !last {
				ne.Child = ins.chain(old.Level + 1)
			}
		}
		bks = append(bks, bucket{iv: pc.iv, edge: len(buf)})
		srcPos = append(srcPos, pc.srcPos)
		buf = append(buf, ne)
	}
	n.nSubrange = len(buf)
	if compEdge >= 0 {
		oe := &old.edges[compEdge]
		ci := len(buf)
		buf = append(buf, Edge{
			Kind: EdgeComplement, Profiles: oe.Profiles, Child: oe.Child,
		})
		for i := range bks {
			if bks[i].edge == pending {
				bks[i].edge = ci
			}
		}
	}
	ins.edgeBuf[old.Level] = buf
	ins.bksBuf[old.Level] = bks
	ins.srcPos[old.Level] = srcPos
	n.edges = ins.a.edgeSlice(buf)
	n.buckets = ins.a.bucketSlice(bks)
	ins.deriveOrder(n, srcPos)
	return n
}

// ivBefore reports a entirely below b on the natural axis.
func ivBefore(a, b schema.Interval) bool {
	return a.Hi < b.Lo || (a.Hi == b.Lo && (a.HiOpen || b.LoOpen))
}

// deriveOrder rebuilds scan/orderPos of a successor node from the defined
// order of the node it was split from: srcPos[i] is the position of the old
// bucket that n.buckets[i] is a fragment of, and fragments inherit their
// source's rank (natural tiebreak within one source). The relative order of
// surviving regions is exactly the parent's, so the configured value order
// propagates through incremental inserts without re-scoring every corridor
// node (which dominated the churn path). Fresh regions cut out of the new
// profile's intervals sit where their source bucket sat — not where a full
// re-rank would put them; the coalescing rebuild restores the exact order.
//
//genas:builder
func (ins *inserter) deriveOrder(n *Node, srcPos []int) {
	entries := ins.ord[:0]
	compBuckets := ins.compBuf[:0]
	compEdge := -1
	compKey := int(^uint(0) >> 1)
	for bi := range n.buckets {
		b := &n.buckets[bi]
		if b.edge >= 0 && n.edges[b.edge].Kind != EdgeSubrange {
			compBuckets = append(compBuckets, bi)
			compEdge = b.edge
			if srcPos[bi] < compKey {
				compKey = srcPos[bi]
			}
			continue
		}
		entries = append(entries, ordEntry{key: srcPos[bi], nat: bi, edge: b.edge})
	}
	if compEdge >= 0 {
		entries = append(entries, ordEntry{key: compKey, nat: len(n.buckets), edge: compEdge})
	}
	// Insertion sort: entries arrive in natural order, which is nearly
	// sorted by (key, nat) already — under the natural value order exactly
	// sorted — so this beats the generic sort's closure dispatch.
	for i := 1; i < len(entries); i++ {
		e := entries[i]
		j := i - 1
		for j >= 0 && (entries[j].key > e.key || (entries[j].key == e.key && entries[j].nat > e.nat)) {
			entries[j+1] = entries[j]
			j--
		}
		entries[j+1] = e
	}
	pos := ins.posBuf[:0]
	for range n.edges {
		pos = append(pos, 0)
	}
	scan := ins.scanBuf[:0]
	for p, e := range entries {
		if e.nat < len(n.buckets) {
			n.buckets[e.nat].orderPos = p + 1
		} else {
			for _, bi := range compBuckets {
				n.buckets[bi].orderPos = p + 1
			}
		}
		if e.edge >= 0 {
			pos[e.edge] = p + 1
			scan = append(scan, e.edge)
		}
	}
	ins.posBuf = pos
	ins.scanBuf = scan
	ins.compBuf = compBuckets[:0]
	ins.ord = entries[:0]
	n.orderPos = ins.a.intSlice(pos)
	n.scan = ins.a.intSlice(scan)
}

// chain returns the single-profile node testing np's constraint at level,
// shared by every edge through which np alone continues.
//
//genas:builder
func (ins *inserter) chain(level int) *Node {
	if n := ins.chains[level]; n != nil {
		return n
	}
	t := ins.t
	attr := t.attrOrder[level]
	dom := t.schema.At(attr).Domain
	last := level == t.schema.N()-1
	n := &Node{Level: level, Attr: attr, discrete: dom.Kind() != schema.KindNumeric}
	if c := &t.cons[attr][ins.np]; c.DontCare {
		e := Edge{Kind: EdgeStar, Iv: dom.Interval(), Profiles: ins.npSlice}
		if !last {
			e.Child = ins.chain(level + 1)
		}
		n.edges = []Edge{e}
		n.buckets = []bucket{{iv: dom.Interval(), edge: 0}}
	} else {
		pieces := splitByIvs(dom.Interval(), c.Intervals, n.discrete, nil)
		for _, pc := range pieces {
			if !pc.in {
				n.buckets = append(n.buckets, bucket{iv: pc.iv, edge: -1})
				continue
			}
			e := Edge{Kind: EdgeSubrange, Iv: pc.iv, Profiles: ins.npSlice}
			if !last {
				e.Child = ins.chain(level + 1)
			}
			n.buckets = append(n.buckets, bucket{iv: pc.iv, edge: len(n.edges)})
			n.edges = append(n.edges, e)
		}
		n.nSubrange = len(n.edges)
	}
	n.applyOrder(ins.vo)
	ins.chains[level] = n
	return n
}

// splitPiece is one fragment of a bucket split against the new profile's
// intervals: in marks fragments inside the profile's region.
type splitPiece struct {
	iv schema.Interval
	in bool
}

// splitByIvs partitions b into natural-order fragments inside/outside the
// sorted disjoint interval set ivs, appending to out. Fragments are snapped
// to the canonical piece form (closed atom-aligned on discrete domains) and
// empty fragments are dropped; adjacent same-disposition fragments — which
// arise when snapping drops an atom-free splinter — are re-merged so the
// successor partition stays as coarse as a fresh decomposition's.
func splitByIvs(b schema.Interval, ivs []schema.Interval, discrete bool, out []splitPiece) []splitPiece {
	base := len(out)
	push := func(iv schema.Interval, in bool) {
		snapped, ok := subrange.Snap(iv, discrete)
		if !ok {
			return
		}
		if n := len(out); n > base && out[n-1].in == in && piecesTouch(out[n-1].iv, snapped, discrete) {
			out[n-1].iv = schema.Interval{
				Lo: out[n-1].iv.Lo, LoOpen: out[n-1].iv.LoOpen,
				Hi: snapped.Hi, HiOpen: snapped.HiOpen,
			}
			return
		}
		out = append(out, splitPiece{iv: snapped, in: in})
	}
	cur := b
	for _, c := range ivs {
		if cur.Empty() {
			break
		}
		inter := cur.Intersect(c)
		if inter.Empty() {
			continue
		}
		push(schema.Interval{Lo: cur.Lo, LoOpen: cur.LoOpen, Hi: inter.Lo, HiOpen: !inter.LoOpen}, false)
		push(inter, true)
		cur = schema.Interval{Lo: inter.Hi, LoOpen: !inter.HiOpen, Hi: cur.Hi, HiOpen: cur.HiOpen}
	}
	push(cur, false)
	return out
}

// piecesTouch reports whether b directly continues a with no domain value
// between them (the merge rule of the decomposition sweep).
func piecesTouch(a, b schema.Interval, discrete bool) bool {
	if discrete {
		return b.Lo == a.Hi+1 || b.Lo == a.Hi
	}
	return a.Hi == b.Lo && (!a.HiOpen || !b.LoOpen)
}
