package tree_test

import (
	"strings"
	"testing"

	"genas/internal/event"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/tree"
)

// paperSchema is the environmental monitoring system of Example 1:
// temperature in [−30,50] °C, humidity in [0,100] %, radiation in [1,100].
func paperSchema(t *testing.T) *schema.Schema {
	t.Helper()
	temp, err := schema.NewNumericDomain(-30, 50)
	if err != nil {
		t.Fatal(err)
	}
	hum, err := schema.NewNumericDomain(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	rad, err := schema.NewNumericDomain(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	return schema.MustNew(
		schema.Attribute{Name: "temperature", Domain: temp},
		schema.Attribute{Name: "humidity", Domain: hum},
		schema.Attribute{Name: "radiation", Domain: rad},
	)
}

// paperProfiles are P1–P5 of Example 1.
func paperProfiles(t *testing.T, s *schema.Schema) []*predicate.Profile {
	t.Helper()
	return []*predicate.Profile{
		predicate.MustParse(s, "P1", "profile(temperature >= 35; humidity >= 90)"),
		predicate.MustParse(s, "P2", "profile(temperature >= 30; humidity >= 90)"),
		predicate.MustParse(s, "P3", "profile(temperature >= 30; humidity >= 90; radiation in [35,50])"),
		predicate.MustParse(s, "P4", "profile(temperature in [-30,-20]; humidity <= 5; radiation in [40,100])"),
		predicate.MustParse(s, "P5", "profile(temperature >= 30; humidity >= 80)"),
	}
}

// TestPaperExample1 reproduces Fig. 1: the event (temperature=30,
// humidity=90, radiation=2) follows the path [30,35) → [90,100] → (*) and is
// matched by profiles P2 and P5.
func TestPaperExample1(t *testing.T) {
	s := paperSchema(t)
	profiles := paperProfiles(t, s)
	tr, err := tree.Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}

	ev := event.MustNew(s, 30, 90, 2)
	matched, ops := tr.Match(ev.Vals)
	if ops <= 0 {
		t.Errorf("expected positive operation count, got %d", ops)
	}
	got := make([]string, 0, len(matched))
	for _, pi := range matched {
		got = append(got, string(profiles[pi].ID))
	}
	want := []string{"P2", "P5"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("event (30,90,2): matched %v, want %v", got, want)
	}

	// The root must expose exactly the Fig. 1 subranges of temperature:
	// [−30,−20], [30,35), [35,50], with (−20,30) as the zero-subdomain.
	root := tr.Root()
	edges := root.Edges()
	if len(edges) != 3 {
		t.Fatalf("root has %d edges, want 3:\n%s", len(edges), tr.Dump())
	}
	wantIvs := []string{"[-30,-20]", "[30,35)", "[35,50]"}
	for i, e := range edges {
		if e.Kind != tree.EdgeSubrange {
			t.Errorf("root edge %d kind = %v, want subrange", i, e.Kind)
		}
		if e.Iv.String() != wantIvs[i] {
			t.Errorf("root edge %d = %s, want %s", i, e.Iv, wantIvs[i])
		}
	}

	// Leaf profile sets along the Fig. 1 paths.
	checks := []struct {
		vals []float64
		want []string
	}{
		{[]float64{40, 95, 40}, []string{"P1", "P2", "P3", "P5"}},
		{[]float64{40, 95, 20}, []string{"P1", "P2", "P5"}},
		{[]float64{40, 85, 60}, []string{"P5"}},
		{[]float64{32, 95, 40}, []string{"P2", "P3", "P5"}},
		{[]float64{-25, 3, 60}, []string{"P4"}},
		{[]float64{-25, 3, 20}, nil},  // radiation outside [40,100]
		{[]float64{0, 50, 50}, nil},   // temperature in D₀
		{[]float64{40, 50, 50}, nil},  // humidity in D₀
		{[]float64{-25, 50, 50}, nil}, // humidity mismatch for P4
	}
	for _, c := range checks {
		matched, _ := tr.Match(c.vals)
		got := make([]string, 0, len(matched))
		for _, pi := range matched {
			got = append(got, string(profiles[pi].ID))
		}
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("event %v: matched %v, want %v", c.vals, got, c.want)
		}
	}
}

// TestPaperExample1Naive cross-checks the tree against direct predicate
// evaluation on a value grid.
func TestPaperExample1Naive(t *testing.T) {
	s := paperSchema(t)
	profiles := paperProfiles(t, s)
	tr, err := tree.Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	for temp := -30.0; temp <= 50; temp += 5 {
		for hum := 0.0; hum <= 100; hum += 5 {
			for rad := 1.0; rad <= 100; rad += 11 {
				vals := []float64{temp, hum, rad}
				matched, _ := tr.Match(vals)
				inTree := make(map[string]bool, len(matched))
				for _, pi := range matched {
					inTree[string(profiles[pi].ID)] = true
				}
				for _, p := range profiles {
					if p.Matches(vals) != inTree[string(p.ID)] {
						t.Fatalf("event %v: profile %s tree=%v naive=%v",
							vals, p.ID, inTree[string(p.ID)], p.Matches(vals))
					}
				}
			}
		}
	}
}

// TestPaperExample5 reproduces the lookup-table early-termination walkthrough:
// domain {a,b,c,d,e,f}, defined order f,c,a,b,e,d, tree contains all values
// except 'a'; searching 'a' stops after examining f, c, b — three operations.
func TestPaperExample5(t *testing.T) {
	dom, err := schema.NewCategoricalDomain("a", "b", "c", "d", "e", "f")
	if err != nil {
		t.Fatal(err)
	}
	s := schema.MustNew(schema.Attribute{Name: "x", Domain: dom})

	// One equality profile per stored value (all but 'a').
	var profiles []*predicate.Profile
	for _, lbl := range []string{"b", "c", "d", "e", "f"} {
		profiles = append(profiles, predicate.MustParse(s, predicate.ID("p"+lbl), "profile(x = "+lbl+")"))
	}
	tr, err := tree.Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}

	// Defined order f,c,a,b,e,d via explicit ranks (lower rank first).
	rank := map[float64]float64{5: 1, 2: 2, 0: 3, 1: 4, 4: 5, 3: 6} // codes a=0…f=5
	tr.ApplyValueOrder(tree.ValueOrder{
		Name: "example5",
		Rank: func(_ int, region []tree.Interval) float64 { return rank[region[0].Lo] },
	})

	codeA, _ := dom.Code("a")
	matched, ops := tr.Match([]float64{float64(codeA)})
	if matched != nil {
		t.Fatalf("value 'a' must not match, got %v", matched)
	}
	if ops != 3 {
		t.Errorf("searching 'a' took %d operations, want 3 (stop at 'b')", ops)
	}

	// Searching 'd' (last in defined order) examines all five stored values.
	codeD, _ := dom.Code("d")
	matched, ops = tr.Match([]float64{float64(codeD)})
	if len(matched) != 1 {
		t.Fatalf("value 'd' must match exactly its profile, got %v", matched)
	}
	if ops != 5 {
		t.Errorf("searching 'd' took %d operations, want 5", ops)
	}

	// Searching 'f' (first in defined order) costs a single operation.
	codeF, _ := dom.Code("f")
	_, ops = tr.Match([]float64{float64(codeF)})
	if ops != 1 {
		t.Errorf("searching 'f' took %d operations, want 1", ops)
	}
}
