// Package agg implements canonical subscription aggregation: the covering
// poset the engine, the broker, and federation share.
//
// Profiles are decomposed into per-attribute canonical interval unions and
// structurally interned, so identical conjunctions — however they were
// spelled (a range [0,50] and a ≤50 over the domain [0,50] are the same
// constraint) — share one canonical node. Nodes are ordered into a covering
// poset (a Siena-style filter poset): a node hangs beneath another when every
// event it accepts is also accepted above. The match index (the DFSA in
// internal/tree) sees only the poset's roots; concrete subscription ids are
// expanded through the poset at delivery time, descending an edge only when
// the child's predicate still matches the event.
//
// Match cost therefore grows with *distinct* predicate structure, not with
// subscriber count, and per-subscription memory collapses to one SubRef —
// the wall "Towards Scalable Subscription Aggregation and Real Time Event
// Matching in a Large-Scale Content-Based Network" (PAPERS.md) attacks with
// subscription merging.
//
// The poset has no locks of its own: the write side (Add, Remove, Compact,
// Freeze) is guarded by the owning engine's writer mutex, and the read side
// is the frozen Snapshot published through the engine's epoch/RCU snapshot
// pointer.
package agg

import (
	"encoding/binary"
	"math"
	"sort"

	"genas/internal/predicate"
	"genas/internal/schema"
)

// attrCanon is one attribute's canonical constraint: the maximal disjoint
// sorted interval union the predicate accepts, clipped to the domain.
//
// Canonicalization follows the nominal-constraint semantics of
// predicate.Covers exactly: an attribute appears here whenever the profile
// constrains it, even if the accepted union happens to equal the whole
// domain — the pairwise oracle treats such a profile as stricter than a
// don't-care, and the poset must agree with the oracle verdict for verdict.
type attrCanon struct {
	attr int
	ivs  []schema.Interval
}

// canonOf decomposes p into canonical per-attribute constraints, sorted by
// attribute index.
func canonOf(s *schema.Schema, p *predicate.Profile) []attrCanon {
	out := make([]attrCanon, 0, len(p.Preds))
	for attr := 0; attr < s.N(); attr++ {
		if !p.Constrains(attr) {
			continue
		}
		ivs := p.Pred(attr).Intervals(s.At(attr).Domain)
		out = append(out, attrCanon{attr: attr, ivs: mergeIntervals(ivs)})
	}
	return out
}

// mergeIntervals normalizes an interval union: sorted by lower bound and
// with overlapping or compatibly-touching neighbors merged. For predicates
// constructible in the profile language this only deduplicates repeated
// set-membership points — no operator emits two distinct mergeable
// intervals — which keeps the canonical form's containment test in exact
// agreement with predicate.Covers on the raw lists.
func mergeIntervals(ivs []schema.Interval) []schema.Interval {
	if len(ivs) < 2 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return !ivs[i].LoOpen && ivs[j].LoOpen // closed lower bound first
	})
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		a := &out[len(out)-1]
		touches := iv.Lo < a.Hi || (iv.Lo == a.Hi && !(a.HiOpen && iv.LoOpen))
		if !touches {
			out = append(out, iv)
			continue
		}
		if iv.Hi > a.Hi || (iv.Hi == a.Hi && a.HiOpen && !iv.HiOpen) {
			a.Hi, a.HiOpen = iv.Hi, iv.HiOpen
		}
	}
	return out
}

// keyOf encodes the canonical form into the interning key. Two profiles get
// the same key iff they constrain the same attributes with the same accepted
// unions — i.e. iff they cover each other under predicate.Covers.
func keyOf(canon []attrCanon) string {
	var b []byte
	for _, ac := range canon {
		b = binary.BigEndian.AppendUint32(b, uint32(ac.attr))
		b = binary.BigEndian.AppendUint32(b, uint32(len(ac.ivs)))
		for _, iv := range ac.ivs {
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(posZero(iv.Lo)))
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(posZero(iv.Hi)))
			var flags byte
			if iv.LoOpen {
				flags |= 1
			}
			if iv.HiOpen {
				flags |= 2
			}
			b = append(b, flags)
		}
	}
	return string(b)
}

// posZero folds -0 into +0 so the two bit patterns intern identically.
func posZero(x float64) float64 {
	if x == 0 {
		return 0
	}
	return x
}

// maskOf returns the constrained-attribute bitmask over the first 64
// attributes — the cheap covering prefilter: p can only cover q when every
// attribute p constrains is constrained by q too.
func maskOf(canon []attrCanon) uint64 {
	var m uint64
	for _, ac := range canon {
		if ac.attr < 64 {
			m |= 1 << uint(ac.attr)
		}
	}
	return m
}

// coversCanon reports whether p covers q under the oracle's semantics:
// every attribute p constrains must be constrained by q with q's accepted
// union contained in p's. Both inputs are sorted by attribute.
func coversCanon(p, q []attrCanon) bool {
	j := 0
	for i := range p {
		for j < len(q) && q[j].attr < p[i].attr {
			j++
		}
		if j == len(q) || q[j].attr != p[i].attr {
			return false // q doesn't constrain an attribute p does
		}
		if !intervalsSubset(q[j].ivs, p[i].ivs) {
			return false
		}
	}
	return true
}

// intervalsSubset reports whether the union of qs is contained in the union
// of ps (both disjoint and sorted; mirrors predicate's unexported helper —
// because the ps are disjoint, a q-interval must fit inside a single one).
func intervalsSubset(qs, ps []schema.Interval) bool {
	for _, q := range qs {
		contained := false
		for _, p := range ps {
			if containsInterval(p, q) {
				contained = true
				break
			}
		}
		if !contained {
			return false
		}
	}
	return true
}

// containsInterval reports p ⊇ q.
func containsInterval(p, q schema.Interval) bool {
	if q.Empty() {
		return true
	}
	loOK := p.Lo < q.Lo || (p.Lo == q.Lo && (!p.LoOpen || q.LoOpen))
	hiOK := p.Hi > q.Hi || (p.Hi == q.Hi && (!p.HiOpen || q.HiOpen))
	return loOK && hiOK
}
