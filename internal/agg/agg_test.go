package agg

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/tree"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	a, err := schema.NewIntegerDomain(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := schema.NewIntegerDomain(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	return schema.MustNew(
		schema.Attribute{Name: "x", Domain: a},
		schema.Attribute{Name: "y", Domain: b},
	)
}

func parse(t *testing.T, s *schema.Schema, id, expr string) *predicate.Profile {
	t.Helper()
	p, err := predicate.Parse(s, predicate.ID(id), expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return p
}

func mustAdd(t *testing.T, po *Poset, p *predicate.Profile) AddResult {
	t.Helper()
	if po.Has(p.ID) {
		t.Fatalf("duplicate add %s", p.ID)
	}
	return po.Add(p)
}

// expandAll builds a canonical tree over the poset's roots and runs the
// full match+expand pipeline for one event — the same dance the engine
// performs — returning the sorted concrete ids.
func expandAll(t *testing.T, s *schema.Schema, po *Poset, vals []float64) []string {
	t.Helper()
	roots := po.RootList()
	if len(roots) == 0 {
		return nil
	}
	corpus := make([]*predicate.Profile, len(roots))
	t2n := make([]int32, len(roots))
	for i, r := range roots {
		corpus[i] = r.Rep
		t2n[i] = r.Idx
	}
	tr, err := tree.Build(s, corpus)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	matched, _ := tr.Match(vals)
	snap := po.Freeze()
	ids, _ := snap.Expand(vals, matched, t2n, tr, nil)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	sort.Strings(out)
	return out
}

// direct evaluates every registered member profile directly.
func direct(po *Poset, vals []float64) []string {
	var out []string
	for _, p := range po.Profiles() {
		if p.Matches(vals) {
			out = append(out, string(p.ID))
		}
	}
	sort.Strings(out)
	return out
}

func TestInterningSharesOneNode(t *testing.T) {
	s := testSchema(t)
	po := NewPoset(s)
	// Three spellings of the same constraint: x ∈ [0,50] over domain [0,99].
	mustAdd(t, po, parse(t, s, "a", "profile(x in [0,50])"))
	r2 := mustAdd(t, po, parse(t, s, "b", "profile(x <= 50)"))
	r3 := mustAdd(t, po, parse(t, s, "c", "profile(x <= 50; y >= 0)"))
	if r2.New {
		t.Fatalf("x<=50 should intern onto the x in [0,50] node")
	}
	// y >= 0 constrains y nominally (whole domain), so c is a distinct,
	// covered structure — exactly the oracle's verdict.
	if !r3.New {
		t.Fatalf("nominally stricter profile must get its own node")
	}
	if got := po.NodeCount(); got != 2 {
		t.Fatalf("NodeCount = %d, want 2", got)
	}
	if got := po.SubCount(); got != 3 {
		t.Fatalf("SubCount = %d, want 3", got)
	}
	if got := len(po.RootList()); got != 1 {
		t.Fatalf("roots = %d, want 1 (c hangs beneath a/b's node)", got)
	}
	if rel := po.RelationOf("a", "b"); rel != Equal {
		t.Fatalf("RelationOf(a,b) = %v, want equal", rel)
	}
	if rel := po.RelationOf("a", "c"); rel != Covers {
		t.Fatalf("RelationOf(a,c) = %v, want covers", rel)
	}
	if rel := po.RelationOf("c", "a"); rel != CoveredBy {
		t.Fatalf("RelationOf(c,a) = %v, want covered-by", rel)
	}
}

func TestDemotionOnWiderAdd(t *testing.T) {
	s := testSchema(t)
	po := NewPoset(s)
	narrow := mustAdd(t, po, parse(t, s, "n", "profile(x in [10,20])"))
	if narrow.NewRoot == nil {
		t.Fatalf("first structure must enter as a root")
	}
	wide := mustAdd(t, po, parse(t, s, "w", "profile(x in [0,50])"))
	if wide.NewRoot == nil {
		t.Fatalf("wider structure must enter as a root")
	}
	if len(wide.Demoted) != 1 || wide.Demoted[0] != narrow.NodeIdx {
		t.Fatalf("Demoted = %v, want [%d]", wide.Demoted, narrow.NodeIdx)
	}
	if got := len(po.RootList()); got != 1 {
		t.Fatalf("roots = %d, want 1", got)
	}
	// Expansion through the single root still reaches both members.
	if got, want := expandAll(t, s, po, []float64{15, 0}), "n,w"; strings.Join(got, ",") != want {
		t.Fatalf("expand(15) = %v, want %s", got, want)
	}
	if got, want := expandAll(t, s, po, []float64{40, 0}), "w"; strings.Join(got, ",") != want {
		t.Fatalf("expand(40) = %v, want %s", got, want)
	}
}

func TestRemoveInternalCovererRelinksAndPromotes(t *testing.T) {
	s := testSchema(t)
	po := NewPoset(s)
	// Chain: a ⊇ b ⊇ c, plus d incomparable under a.
	mustAdd(t, po, parse(t, s, "a", "profile(x in [0,80])"))
	mustAdd(t, po, parse(t, s, "b", "profile(x in [10,60])"))
	mustAdd(t, po, parse(t, s, "c", "profile(x in [20,40])"))
	mustAdd(t, po, parse(t, s, "d", "profile(x in [70,80])"))
	if got := len(po.RootList()); got != 1 {
		t.Fatalf("roots = %d, want 1", got)
	}
	// Remove the internal coverer b: c must re-link beneath a, no promotion.
	res, ok := po.Remove("b")
	if !ok || !res.Emptied || res.WasRoot || len(res.Promoted) != 0 {
		t.Fatalf("Remove(b) = %+v ok=%v, want emptied non-root, no promotions", res, ok)
	}
	if rel := po.RelationOf("a", "c"); rel != Covers {
		t.Fatalf("after removing b, RelationOf(a,c) = %v, want covers", rel)
	}
	if got, want := expandAll(t, s, po, []float64{30, 0}), "a,c"; strings.Join(got, ",") != want {
		t.Fatalf("expand(30) = %v, want %s", got, want)
	}
	// Remove the root a: both c and d lose their last parent and re-arm.
	res, ok = po.Remove("a")
	if !ok || !res.Emptied || !res.WasRoot {
		t.Fatalf("Remove(a) = %+v ok=%v, want emptied root", res, ok)
	}
	if len(res.Promoted) != 2 {
		t.Fatalf("Promoted = %v, want both c and d", res.Promoted)
	}
	if got := len(po.RootList()); got != 2 {
		t.Fatalf("roots = %d, want 2", got)
	}
	if got, want := expandAll(t, s, po, []float64{30, 0}), "c"; strings.Join(got, ",") != want {
		t.Fatalf("expand(30) = %v, want %s", got, want)
	}
	if got, want := expandAll(t, s, po, []float64{75, 0}), "d"; strings.Join(got, ",") != want {
		t.Fatalf("expand(75) = %v, want %s", got, want)
	}
}

func TestRemoveMemberKeepsNode(t *testing.T) {
	s := testSchema(t)
	po := NewPoset(s)
	mustAdd(t, po, parse(t, s, "a", "profile(x = 5)"))
	mustAdd(t, po, parse(t, s, "b", "profile(x = 5)"))
	res, ok := po.Remove("a")
	if !ok || res.Emptied {
		t.Fatalf("Remove(a) = %+v ok=%v, want member drop without detach", res, ok)
	}
	if got := po.NodeCount(); got != 1 {
		t.Fatalf("NodeCount = %d, want 1", got)
	}
	if got, want := expandAll(t, s, po, []float64{5, 0}), "b"; strings.Join(got, ",") != want {
		t.Fatalf("expand(5) = %v, want %s", got, want)
	}
	if _, ok := po.Remove("a"); ok {
		t.Fatalf("second Remove(a) must report unknown")
	}
}

func TestSnapshotSurvivesLaterChurn(t *testing.T) {
	s := testSchema(t)
	po := NewPoset(s)
	mustAdd(t, po, parse(t, s, "a", "profile(x in [0,50])"))
	mustAdd(t, po, parse(t, s, "b", "profile(x in [10,20])"))
	roots := po.RootList()
	corpus := []*predicate.Profile{roots[0].Rep}
	t2n := []int32{roots[0].Idx}
	tr, err := tree.Build(s, corpus)
	if err != nil {
		t.Fatal(err)
	}
	snap := po.Freeze()
	// Churn after the freeze: a third member on a's node, then b removed
	// entirely, then the whole poset compacted.
	mustAdd(t, po, parse(t, s, "c", "profile(x <= 50)"))
	po.Remove("b")
	po.Compact()
	// The frozen snapshot must still expand exactly its freeze-time state.
	matched, _ := tr.Match([]float64{15, 0})
	ids, _ := snap.Expand([]float64{15, 0}, matched, t2n, tr, nil)
	got := make([]string, len(ids))
	for i, id := range ids {
		got[i] = string(id)
	}
	sort.Strings(got)
	if strings.Join(got, ",") != "a,b" {
		t.Fatalf("frozen expand = %v, want a,b", got)
	}
}

func TestCompactPreservesSemantics(t *testing.T) {
	s := testSchema(t)
	po := NewPoset(s)
	exprs := []string{
		"profile(x in [0,90])",
		"profile(x in [5,60]; y in [0,80])",
		"profile(x in [10,40]; y in [10,50])",
		"profile(x = 20; y = 20)",
		"profile(y in [0,99])",
		"profile(x in [50,90])",
	}
	for i, e := range exprs {
		mustAdd(t, po, parse(t, s, fmt.Sprintf("p%d", i), e))
	}
	// Punch holes, then compact.
	po.Remove("p1")
	po.Remove("p5")
	probes := [][]float64{{20, 20}, {0, 0}, {30, 30}, {55, 90}, {90, 99}}
	var before []string
	for _, pr := range probes {
		before = append(before, strings.Join(expandAll(t, s, po, pr), ","))
	}
	po.Compact()
	if got := len(po.nodes); got != po.NodeCount() {
		t.Fatalf("Compact left holes: len(nodes)=%d live=%d", got, po.NodeCount())
	}
	for i, pr := range probes {
		after := strings.Join(expandAll(t, s, po, pr), ",")
		if after != before[i] {
			t.Fatalf("probe %v: compacted expand %q != pre-compact %q", pr, after, before[i])
		}
		if want := strings.Join(direct(po, pr), ","); after != want {
			t.Fatalf("probe %v: expand %q != direct evaluation %q", pr, after, want)
		}
	}
}

func TestStatsShape(t *testing.T) {
	s := testSchema(t)
	po := NewPoset(s)
	mustAdd(t, po, parse(t, s, "a", "profile(x in [0,80])"))
	mustAdd(t, po, parse(t, s, "b", "profile(x in [10,60])"))
	mustAdd(t, po, parse(t, s, "c", "profile(x in [20,40])"))
	mustAdd(t, po, parse(t, s, "d", "profile(y in [0,50])"))
	st := po.Stats()
	if st.Subscriptions != 4 || st.Nodes != 4 {
		t.Fatalf("Stats = %+v, want 4 subs / 4 nodes", st)
	}
	if st.Roots != 2 {
		t.Fatalf("Roots = %d, want 2 (the chain head and the y-range)", st.Roots)
	}
	if st.MaxDepth != 3 {
		t.Fatalf("MaxDepth = %d, want 3 (a ⊐ b ⊐ c)", st.MaxDepth)
	}
}

// TestDiamondExpansionDedup pins the DAG case: one node reachable from two
// matched roots must be emitted once.
func TestDiamondExpansionDedup(t *testing.T) {
	s := testSchema(t)
	po := NewPoset(s)
	mustAdd(t, po, parse(t, s, "left", "profile(x in [0,50])"))
	mustAdd(t, po, parse(t, s, "right", "profile(y in [0,50])"))
	mustAdd(t, po, parse(t, s, "both", "profile(x in [10,20]; y in [10,20])"))
	if got := len(po.RootList()); got != 2 {
		t.Fatalf("roots = %d, want 2", got)
	}
	if rel := po.RelationOf("left", "both"); rel != Covers {
		t.Fatalf("RelationOf(left,both) = %v, want covers", rel)
	}
	if rel := po.RelationOf("right", "both"); rel != Covers {
		t.Fatalf("RelationOf(right,both) = %v, want covers", rel)
	}
	got := expandAll(t, s, po, []float64{15, 15})
	if strings.Join(got, ",") != "both,left,right" {
		t.Fatalf("expand = %v, want both,left,right exactly once each", got)
	}
}
