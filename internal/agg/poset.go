package agg

import (
	"strconv"

	"genas/internal/predicate"
	"genas/internal/schema"
)

// SubRef is one concrete subscription attached to a canonical node: the
// subscriber's id plus the per-subscription priority applied at expansion
// time. This is all the aggregation layer keeps per subscriber — the
// predicate structure lives once, on the node.
type SubRef struct {
	ID       predicate.ID
	Priority float64
}

// node is one canonical conjunction in the poset.
type node struct {
	idx   int32
	key   string
	mask  uint64
	canon []attrCanon
	// rep is the canonical representative profile the tree indexes (for
	// roots) and the expansion walk evaluates (for inner nodes). Its ID is
	// synthetic; its predicate column is shared with the first member.
	rep *predicate.Profile
	// subs is append-only: frozen snapshots alias the backing array, so
	// removal copies (COW) instead of truncating in place.
	subs    []SubRef
	kids    []*node
	parents []*node
	root    bool

	// Per-operation DFS scratch, guarded by the owner's writer mutex.
	visit   uint32 // pushed on the traversal stack this generation
	evalGen uint32 // coversN is valid this generation
	coversN bool
	pmark   uint32 // chosen as a parent of the node being inserted
}

// NodeRef pairs a node index with its representative profile — the engine's
// handle for indexing a root into the tree.
type NodeRef struct {
	Idx int32
	Rep *predicate.Profile
}

// AddResult describes what an Add changed in terms the engine applies to its
// automaton: at most one new root to index and the roots demoted beneath it.
type AddResult struct {
	// NodeIdx is the canonical node the subscription landed on.
	NodeIdx int32
	// New reports that a new canonical node was created (an interning miss).
	New bool
	// NewRoot is non-nil when the new node entered as a root: the engine
	// must index its representative.
	NewRoot *predicate.Profile
	// Demoted lists previously-indexed roots now covered by the new root;
	// the engine tombstones their tree slots (they remain reachable through
	// the new root's expansion edges).
	Demoted []int32
}

// RemoveResult describes what a Remove changed.
type RemoveResult struct {
	// NodeIdx is the canonical node the subscription left.
	NodeIdx int32
	// Emptied reports the node lost its last member and was detached.
	Emptied bool
	// WasRoot reports the detached node was indexed; the engine tombstones
	// its tree slot.
	WasRoot bool
	// Promoted lists formerly-covered nodes that became roots when their
	// last covering parent detached; the engine indexes their reps.
	Promoted []NodeRef
}

// Stats summarizes the poset shape for observability.
type Stats struct {
	// Subscriptions is the concrete member count across all nodes.
	Subscriptions int
	// Nodes is the live canonical node count (the index's real size driver).
	Nodes int
	// Roots is the number of nodes the tree actually indexes.
	Roots int
	// MaxDepth is the node count of the longest root→leaf covering chain
	// (1 when no node covers another).
	MaxDepth int
}

// Poset is the canonical interning + covering structure. It is not
// goroutine-safe: every method is a write-side operation the owning engine
// serializes on its mutex, except the frozen Snapshot handed to readers.
type Poset struct {
	sch *schema.Schema
	// nodes is append-only between Compact calls; removed nodes leave nil
	// holes so published snapshots' indices stay stable.
	nodes  []*node
	byKey  map[string]*node
	bySub  map[predicate.ID]*node
	subCnt int
	roots  int
	gen    uint32
	seq    int64 // synthetic rep id counter; never reused, survives Compact
}

// NewPoset creates an empty poset over schema s.
func NewPoset(s *schema.Schema) *Poset {
	return &Poset{
		sch:   s,
		byKey: make(map[string]*node),
		bySub: make(map[predicate.ID]*node),
	}
}

// Has reports whether subscription id is registered.
func (po *Poset) Has(id predicate.ID) bool {
	_, ok := po.bySub[id]
	return ok
}

// SubCount returns the concrete subscription count.
func (po *Poset) SubCount() int { return po.subCnt }

// NodeCount returns the live canonical node count.
func (po *Poset) NodeCount() int {
	n := 0
	for _, nd := range po.nodes {
		if nd != nil {
			n++
		}
	}
	return n
}

// RootList returns the current roots in node order — the corpus the engine's
// tree indexes on a full rebuild.
func (po *Poset) RootList() []NodeRef {
	out := make([]NodeRef, 0, po.roots)
	for _, n := range po.nodes {
		if n != nil && n.root {
			out = append(out, NodeRef{Idx: n.idx, Rep: n.rep})
		}
	}
	return out
}

// Profiles synthesizes the concrete member profiles in node order: each
// member borrows its node's canonical predicate column, so listing the
// corpus costs one small struct per subscription, not a deep copy.
func (po *Poset) Profiles() []*predicate.Profile {
	out := make([]*predicate.Profile, 0, po.subCnt)
	for _, n := range po.nodes {
		if n == nil {
			continue
		}
		for _, sr := range n.subs {
			out = append(out, &predicate.Profile{ID: sr.ID, Preds: n.rep.Preds, Priority: sr.Priority})
		}
	}
	return out
}

// Add registers profile p. The caller has already rejected duplicates via
// Has; p's predicate column is aliased, not copied.
func (po *Poset) Add(p *predicate.Profile) AddResult {
	canon := canonOf(po.sch, p)
	key := keyOf(canon)
	if n := po.byKey[key]; n != nil {
		// Interning hit: the structure exists, attach the member. The tree
		// and the poset edges are untouched.
		n.subs = append(n.subs, SubRef{ID: p.ID, Priority: p.Priority})
		po.bySub[p.ID] = n
		po.subCnt++
		return AddResult{NodeIdx: n.idx}
	}
	n := &node{
		key:   key,
		mask:  maskOf(canon),
		canon: canon,
		subs:  []SubRef{{ID: p.ID, Priority: p.Priority}},
	}
	po.seq++
	n.rep = &predicate.Profile{
		ID:    predicate.ID("\x00agg:" + strconv.FormatInt(po.seq, 10)),
		Preds: p.Preds,
	}
	po.bySub[p.ID] = n
	po.subCnt++
	demoted := po.linkNew(n)
	res := AddResult{NodeIdx: n.idx, New: true, Demoted: demoted}
	if n.root {
		res.NewRoot = n.rep
	}
	return res
}

// linkNew appends n to the node table and links it into the poset: parents
// are the minimal existing coverers, kids the maximal existing covered
// nodes. Returns the indices of roots demoted beneath n. Shared by Add and
// Compact.
func (po *Poset) linkNew(n *node) []int32 {
	n.idx = int32(len(po.nodes))
	po.nodes = append(po.nodes, n)
	po.byKey[n.key] = n

	parents := po.findParents(n)
	kids := po.findKids(n, parents)

	for _, pa := range parents {
		pa.kids = append(pa.kids, n)
		n.parents = append(n.parents, pa)
	}
	var demoted []int32
	for _, k := range kids {
		n.kids = append(n.kids, k)
		k.parents = append(k.parents, n)
		if k.root {
			k.root = false
			po.roots--
			demoted = append(demoted, k.idx)
		}
	}
	if len(parents) == 0 {
		n.root = true
		po.roots++
	}
	return demoted
}

// findParents returns the minimal existing coverers of n: DFS from the
// covering roots, descending only into kids that also cover n. Every
// coverer sits on an all-covering chain from a covering root (covering is
// transitive along poset edges), so the descent is complete; a covering
// node none of whose kids cover n is minimal. The result is an antichain.
func (po *Poset) findParents(n *node) []*node {
	po.gen++
	gen := po.gen
	var minimal, stack []*node
	for _, r := range po.nodes {
		if r == nil || !r.root || r == n {
			continue
		}
		r.visit = gen
		r.evalGen = gen
		r.coversN = po.covers(r, n)
		if r.coversN {
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		hasCoveringKid := false
		for _, k := range x.kids {
			if k.evalGen != gen {
				k.evalGen = gen
				k.coversN = po.covers(k, n)
			}
			if !k.coversN {
				continue
			}
			hasCoveringKid = true
			if k.visit != gen {
				k.visit = gen
				stack = append(stack, k)
			}
		}
		if !hasCoveringKid {
			minimal = append(minimal, x)
		}
	}
	return minimal
}

// findKids returns the maximal existing nodes n covers. Full DFS over the
// structure — a covered node can hang beneath nodes incomparable to n — with
// pruning beneath every covered node found (its descendants are covered
// transitively, hence not maximal). Nodes already chosen as parents are
// never collected: a distinct key rules out mutual covering, so this is a
// pure cycle guard.
func (po *Poset) findKids(n *node, parents []*node) []*node {
	po.gen++
	gen := po.gen
	for _, pa := range parents {
		pa.pmark = gen
	}
	var maximal, stack []*node
	for _, r := range po.nodes {
		if r == nil || !r.root || r == n {
			continue
		}
		r.visit = gen
		stack = append(stack, r)
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x.pmark != gen && po.covers(n, x) {
			maximal = append(maximal, x)
			continue
		}
		for _, k := range x.kids {
			if k.visit != gen {
				k.visit = gen
				stack = append(stack, k)
			}
		}
	}
	return maximal
}

// covers reports whether node a covers node b, via the bitmask prefilter
// then the canonical containment test.
func (po *Poset) covers(a, b *node) bool {
	return a.mask&^b.mask == 0 && coversCanon(a.canon, b.canon)
}

// Remove unregisters subscription id. ok is false when id is unknown.
func (po *Poset) Remove(id predicate.ID) (res RemoveResult, ok bool) {
	n := po.bySub[id]
	if n == nil {
		return RemoveResult{}, false
	}
	delete(po.bySub, id)
	po.subCnt--
	res.NodeIdx = n.idx
	// COW: frozen snapshots alias the old backing array.
	subs := make([]SubRef, 0, len(n.subs)-1)
	for _, sr := range n.subs {
		if sr.ID != id {
			subs = append(subs, sr)
		}
	}
	n.subs = subs
	if len(subs) > 0 {
		return res, true
	}

	// Last member gone: detach the node eagerly. Kids re-link to the
	// node's parents; a kid left with no parents is promoted to root, so a
	// covered subscription resurfaces in the index the moment its coverer
	// unsubscribes (federation's re-announce semantics depend on this).
	res.Emptied = true
	for _, pa := range n.parents {
		pa.kids = dropNode(pa.kids, n)
	}
	for _, k := range n.kids {
		k.parents = dropNode(k.parents, n)
		for _, pa := range n.parents {
			if !hasParent(k, pa) {
				pa.kids = append(pa.kids, k)
				k.parents = append(k.parents, pa)
			}
		}
		if len(k.parents) == 0 && !k.root {
			k.root = true
			po.roots++
			res.Promoted = append(res.Promoted, NodeRef{Idx: k.idx, Rep: k.rep})
		}
	}
	if n.root {
		n.root = false
		po.roots--
		res.WasRoot = true
	}
	delete(po.byKey, n.key)
	po.nodes[n.idx] = nil
	n.kids, n.parents = nil, nil
	return res, true
}

// dropNode removes x from s in place (write-side lists are never aliased by
// snapshots — Freeze copies them).
func dropNode(s []*node, x *node) []*node {
	for i, v := range s {
		if v == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// hasParent reports whether pa is already a parent of k.
func hasParent(k *node, pa *node) bool {
	for _, v := range k.parents {
		if v == pa {
			return true
		}
	}
	return false
}

// Compact rebuilds the poset from its live nodes, dropping the nil holes
// churn leaves behind and the redundant transitive edges incremental
// linking tolerates. Members, reps and synthetic ids survive; indices are
// reassigned. The engine calls this from its coalescing rebuild, right
// before re-indexing the roots.
func (po *Poset) Compact() {
	live := make([]*node, 0, len(po.nodes))
	for _, n := range po.nodes {
		if n != nil {
			live = append(live, n)
		}
	}
	po.nodes = po.nodes[:0]
	po.byKey = make(map[string]*node, len(live))
	po.roots = 0
	for _, n := range live {
		n.kids, n.parents = nil, nil
		n.root = false
	}
	for _, n := range live {
		po.linkNew(n)
	}
}

// Relation is the poset order between two subscriptions' canonical nodes.
type Relation int

// Relation values.
const (
	Incomparable Relation = iota
	Equal                 // same canonical node
	Covers                // a's node is a strict ancestor of b's
	CoveredBy             // a's node is a strict descendant of b's
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case Equal:
		return "equal"
	case Covers:
		return "covers"
	case CoveredBy:
		return "covered-by"
	default:
		return "incomparable"
	}
}

// RelationOf reports the poset order between two registered subscriptions.
// Unknown ids are incomparable.
func (po *Poset) RelationOf(a, b predicate.ID) Relation {
	na, nb := po.bySub[a], po.bySub[b]
	if na == nil || nb == nil {
		return Incomparable
	}
	if na == nb {
		return Equal
	}
	if po.reachable(na, nb) {
		return Covers
	}
	if po.reachable(nb, na) {
		return CoveredBy
	}
	return Incomparable
}

// reachable reports whether to can be reached from from along kid edges —
// by the poset invariant, exactly when from's node covers to's strictly.
func (po *Poset) reachable(from, to *node) bool {
	po.gen++
	gen := po.gen
	from.visit = gen
	stack := []*node{from}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, k := range x.kids {
			if k == to {
				return true
			}
			if k.visit != gen {
				k.visit = gen
				stack = append(stack, k)
			}
		}
	}
	return false
}

// Stats computes the observability summary. MaxDepth is the longest
// covering chain, measured in nodes, via memoized longest-path DFS (the
// poset is a DAG).
func (po *Poset) Stats() Stats {
	st := Stats{Subscriptions: po.subCnt, Roots: po.roots}
	depth := make(map[*node]int, len(po.nodes))
	var chain func(n *node) int
	chain = func(n *node) int {
		if d, ok := depth[n]; ok {
			return d
		}
		depth[n] = 1 // cycle guard; the DAG invariant makes this a no-op
		d := 1
		for _, k := range n.kids {
			if kd := chain(k) + 1; kd > d {
				d = kd
			}
		}
		depth[n] = d
		return d
	}
	for _, n := range po.nodes {
		if n == nil {
			continue
		}
		st.Nodes++
		if n.root {
			if d := chain(n); d > st.MaxDepth {
				st.MaxDepth = d
			}
		}
	}
	return st
}
