package agg

import (
	"sync"

	"genas/internal/predicate"
	"genas/internal/tree"
)

// Snapshot is the frozen, publishable image of the poset: index-aligned
// node records the match path walks lock-free. It is published through the
// engine's atomic snapshot pointer next to the tree it expands.
//
//genas:frozen
type Snapshot struct {
	// Nodes is indexed by poset node index; detached nodes leave zero
	// entries (nil Prof), which the expansion never reaches.
	Nodes []SnapNode
	// Subs is the concrete subscription count at freeze time.
	Subs int
}

// SnapNode mirrors one canonical node for expansion.
//
//genas:frozen
type SnapNode struct {
	// Prof is the node's representative profile, evaluated when the
	// expansion considers descending into this node.
	Prof *predicate.Profile
	// Subs aliases the write side's append-only member array: appends land
	// past this snapshot's length and removals copy, so the header is
	// stable.
	Subs []SubRef
	// Kids holds the node indices hanging beneath this node (fresh copy —
	// the write side re-links kid lists in place).
	Kids []int32
}

// Freeze builds the frozen snapshot image of the current poset state.
//
//genas:builder
func (po *Poset) Freeze() *Snapshot {
	s := &Snapshot{Nodes: make([]SnapNode, len(po.nodes)), Subs: po.subCnt}
	for i, n := range po.nodes {
		if n == nil {
			continue
		}
		kids := make([]int32, len(n.kids))
		for j, k := range n.kids {
			kids[j] = k.idx
		}
		s.Nodes[i] = SnapNode{Prof: n.rep, Subs: n.subs, Kids: kids}
	}
	return s
}

// expandScratch is the pooled DFS state for Expand: an explicit stack plus
// generation-stamped visit marks, so per-event expansion allocates nothing
// once the pool is warm.
type expandScratch struct {
	stack []int32
	mark  []uint32
	gen   uint32
}

var scratchPool = sync.Pool{New: func() any { return new(expandScratch) }}

// reset prepares the scratch for a snapshot of n nodes: grows the mark
// array when needed and advances the generation, clearing marks only on
// wraparound. Kept out of the hot function so its allocations stay off the
// steady-state path.
func (sc *expandScratch) reset(n int) {
	if len(sc.mark) < n {
		sc.mark = make([]uint32, n)
		sc.gen = 0
	}
	sc.gen++
	if sc.gen == 0 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.gen = 1
	}
	sc.stack = sc.stack[:0]
}

// Expand translates the tree's matched slots into concrete subscription
// ids, appending to dst. matched holds dense indices into t (the canonical
// tree this snapshot was published with); t2n maps each tree slot to its
// poset node. From every live matched root the walk descends kid edges,
// re-evaluating each child's representative against the event — covering
// guarantees a child that fails can have no matching descendant — and marks
// visited nodes so DAG diamonds and multi-root overlaps emit each
// subscription once. The second result counts the predicate evaluations
// spent descending, which the engine folds into its operation accounting.
//
//genas:hotpath
func (s *Snapshot) Expand(vals []float64, matched []int, t2n []int32, t *tree.Tree, dst []predicate.ID) ([]predicate.ID, int) {
	sc := scratchPool.Get().(*expandScratch)
	sc.reset(len(s.Nodes))
	ops := 0
	dead := t.HasDead()
	for _, pi := range matched {
		if dead && t.Dead(pi) {
			continue
		}
		ni := t2n[pi]
		if sc.mark[ni] == sc.gen {
			continue
		}
		sc.mark[ni] = sc.gen
		sc.stack = append(sc.stack, ni)
	}
	for len(sc.stack) > 0 {
		ni := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		n := &s.Nodes[ni]
		for i := range n.Subs {
			dst = append(dst, n.Subs[i].ID)
		}
		for _, ki := range n.Kids {
			if sc.mark[ki] == sc.gen {
				continue
			}
			sc.mark[ki] = sc.gen
			ops++
			if s.Nodes[ki].Prof.Matches(vals) {
				sc.stack = append(sc.stack, ki)
			}
		}
	}
	scratchPool.Put(sc)
	return dst, ops
}
