package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"genas/internal/broker"
	"genas/internal/event"
	"genas/internal/predicate"
	"genas/internal/schema"
)

// Overlay is the federation integration surface: when installed, the server
// hands peer connections (first frame hello) over to it and mirrors local
// registration and publish activity into it, so profiles propagate to peer
// daemons and events cross a TCP link only when that link's routing filter
// matches.
type Overlay interface {
	// HandlePeer owns a connection whose first frame was a hello. It runs the
	// peer link until the connection drops and must tolerate conn being
	// closed concurrently by Server.Close. rd is the connection's buffered
	// reader (already past the hello line).
	HandlePeer(conn net.Conn, rd *bufio.Reader, hello Request)
	// ProfileAdded announces a locally subscribed profile to the overlay.
	ProfileAdded(p *predicate.Profile)
	// ProfileRemoved withdraws a locally removed profile from the overlay.
	ProfileRemoved(id predicate.ID)
	// EventPublished offers a locally published event for forwarding over
	// matching peer links. The overlay must not retain ev.Vals after
	// returning: the zero-copy v2 publish path hands it a reused scratch
	// slice (encode synchronously, enqueue bytes).
	EventPublished(ev event.Event)
	// Stats reports the overlay node name, live peer link count and the
	// forwarded/early-rejected counters.
	Stats() (node string, peers int, forwarded, filtered uint64)
	// ProtoV2Peers counts live peer links that negotiated protocol v2.
	ProtoV2Peers() int
}

// Server serves the wire protocol over TCP for one broker instance. Every
// connection owns its subscriptions: when the connection drops, its profiles
// are removed from the filter tree.
type Server struct {
	brk      *broker.Broker
	defaults *event.Defaults
	overlay  Overlay
	ln       net.Listener
	log      *log.Logger
	maxProto Proto

	// Wire-level counters (stats frame): bytes and events received on
	// publish/publish_batch frames, and frames observed queued behind the
	// one being served (pipelining depth > 1).
	wireBytes       atomic.Uint64
	wireEvents      atomic.Uint64
	framesPipelined atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a broker. logger may be nil to discard logs.
func NewServer(brk *broker.Broker, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	return &Server{brk: brk, log: logger, maxProto: ProtoV2, conns: make(map[net.Conn]struct{})}
}

// SetDefaults installs opt-in fill-ins for event attributes omitted from
// publish and publish_batch frames (nil restores the strict default: every
// attribute required). Call before Serve.
func (s *Server) SetDefaults(d *event.Defaults) { s.defaults = d }

// SetOverlay federates the server: hello frames are handed to o, and local
// subscribe/unsubscribe/publish activity is mirrored into it. Call before
// Serve.
func (s *Server) SetOverlay(o Overlay) { s.overlay = o }

// SetMaxProto caps the protocol generation the server will negotiate
// (ProtoV1 pins the daemon to JSON lines; ProtoAuto and ProtoV2 allow the
// v2 upgrade). Call before Serve.
func (s *Server) SetMaxProto(p Proto) {
	if p == ProtoV1 {
		s.maxProto = ProtoV1
		return
	}
	s.maxProto = ProtoV2
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Serve accepts connections on ln until the context is canceled or Close is
// called. It blocks; run it from the caller's goroutine of choice.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("wire: server closed")
	}
	s.ln = ln
	// The watcher joins the WaitGroup under s.mu: Close sets closed under the
	// same lock before it calls Wait, so Add can never race that Wait.
	s.wg.Add(1)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer s.wg.Done()
		select {
		case <-ctx.Done():
			_ = ln.Close()
		case <-done:
		}
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			// Release the watcher before joining the WaitGroup it belongs to:
			// without the close, a Close() that was not preceded by a context
			// cancel would leave the watcher parked and this Wait (and the
			// one inside Close) deadlocked.
			close(done)
			if ctx.Err() != nil || s.isClosed() {
				s.wg.Wait()
				return nil
			}
			s.wg.Wait()
			return fmt.Errorf("wire: accept: %w", err)
		}
		if !s.track(conn) {
			// Close ran between Accept and here: the connection would escape
			// the teardown (and its wg.Add would race Close's Wait), so drop
			// it instead of serving it.
			_ = conn.Close()
			continue
		}
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// track registers a connection and joins the handler WaitGroup, refusing
// when the server is already closing (the caller must then drop the conn).
// Registration, the closed check and wg.Add happen under one lock so a
// concurrent Close either sees the connection (and closes it) or prevents it.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// Close stops accepting, disconnects all clients and waits for handler
// goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// connState tracks one connection's subscriptions, negotiated protocol and
// synchronized writer. proto, slots and cid are owned by the request loop
// goroutine: proto/slots are fixed before the first subscription can spawn a
// forwarder, cid before each dispatch.
type connState struct {
	conn  net.Conn
	proto Proto
	slots *slots
	cid   uint32
	subs  map[string]*broker.Subscription
	wg    sync.WaitGroup

	mu   sync.Mutex
	wbuf []byte // reused frame/line build buffer, guarded by mu
}

func (cs *connState) writeLine(v any) error {
	b, err := EncodeLine(v)
	if err != nil {
		return err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	//genas:allow locksafe cs.mu exists to serialize frame writes on the shared conn; nothing else is ever taken under it
	_, err = cs.conn.Write(b)
	return err
}

// writeFrame writes an already-encoded v2 frame.
func (cs *connState) writeFrame(b []byte) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	//genas:allow locksafe cs.mu exists to serialize frame writes on the shared conn; nothing else is ever taken under it
	_, err := cs.conn.Write(b)
	return err
}

// send writes one response on the connection's negotiated protocol. On v2
// it reuses the connection's write buffer and pairs the response with the
// request's correlation id.
func (cs *connState) send(resp Response) error {
	if cs.proto < ProtoV2 {
		return cs.writeLine(resp)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	b, err := appendResponseFrame(cs.wbuf[:0], cs.cid, resp, cs.slots)
	if err != nil {
		return err
	}
	cs.wbuf = b
	//genas:allow locksafe cs.mu exists to serialize frame writes on the shared conn; nothing else is ever taken under it
	_, err = cs.conn.Write(b)
	return err
}

// sendOK acknowledges one v2 publish frame.
func (cs *connState) sendOK(cid uint32, matched int) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.wbuf = appendOKFrame(cs.wbuf[:0], cid, matched)
	//genas:allow locksafe cs.mu exists to serialize frame writes on the shared conn; nothing else is ever taken under it
	_, err := cs.conn.Write(cs.wbuf)
	return err
}

// sendOKBatch acknowledges one v2 publish_batch frame.
func (cs *connState) sendOKBatch(cid uint32, counts []int) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.wbuf = appendOKBatchFrame(cs.wbuf[:0], cid, counts)
	//genas:allow locksafe cs.mu exists to serialize frame writes on the shared conn; nothing else is ever taken under it
	_, err := cs.conn.Write(cs.wbuf)
	return err
}

// sendErr reports one failed v2 request.
func (cs *connState) sendErr(cid uint32, op Op, msg string) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.wbuf = appendErrFrame(cs.wbuf[:0], cid, op, msg)
	//genas:allow locksafe cs.mu exists to serialize frame writes on the shared conn; nothing else is ever taken under it
	_, err := cs.conn.Write(cs.wbuf)
	return err
}

// sendNotify pushes one notification in binary, straight from the broker's
// event vector — no attribute map is built on the v2 path.
func (cs *connState) sendNotify(profile string, seq uint64, vals []float64) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.wbuf = appendNotifyFrame(cs.wbuf[:0], profile, seq, vals)
	//genas:allow locksafe cs.mu exists to serialize frame writes on the shared conn; nothing else is ever taken under it
	_, err := cs.conn.Write(cs.wbuf)
	return err
}

// handle runs one connection's request loop.
func (s *Server) handle(conn net.Conn) {
	defer s.untrack(conn)
	cs := &connState{conn: conn, proto: ProtoV1, subs: make(map[string]*broker.Subscription)}
	defer func() {
		// Tear down this connection's subscriptions, then wait for their
		// forwarder goroutines (closing the subscription closes its channel,
		// which ends the forwarder).
		for id := range cs.subs {
			if s.brk.Unsubscribe(predicate.ID(id)) == nil && s.overlay != nil {
				s.overlay.ProfileRemoved(predicate.ID(id))
			}
		}
		cs.wg.Wait()
		_ = conn.Close()
	}()

	rd := bufio.NewReaderSize(conn, 64*1024)
	for {
		line, err := ReadLine(rd)
		if err != nil {
			if err != io.EOF {
				s.log.Printf("wire: connection %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if len(line) == 0 {
			continue
		}
		req, err := DecodeRequest(line)
		if err != nil {
			_ = cs.writeLine(Response{Type: MsgError, Error: err.Error()})
			continue
		}
		if req.Op == OpHello {
			if req.Node == "" && req.Proto >= int(ProtoV2) {
				// A v2-capable client asking to upgrade (peer hellos always
				// carry a node name). Confirm with the schema so the client
				// can build its slot table, then switch codecs: every byte
				// after this response line is a binary frame.
				if s.maxProto < ProtoV2 {
					_ = cs.writeLine(Response{Type: MsgError, Op: req.Op, Error: "protocol v2 disabled"})
					continue
				}
				if len(cs.subs) != 0 {
					_ = cs.writeLine(Response{Type: MsgError, Op: req.Op, Error: "hello must be the connection's first frame"})
					continue
				}
				if err := cs.writeLine(Response{Type: MsgOK, Op: req.Op, Proto: int(ProtoV2), Attributes: schemaPayload(s.brk.Schema())}); err != nil {
					return
				}
				cs.proto = ProtoV2
				cs.slots = newSlots(attrNames(s.brk.Schema()))
				s.serveV2(cs, rd)
				return
			}
			// A peer daemon, not a client: hand the connection over to the
			// federation layer, which runs the link until it drops.
			if s.overlay == nil {
				_ = cs.writeLine(Response{Type: MsgError, Op: req.Op, Error: "daemon is not federated"})
				continue
			}
			// A connection with live subscriptions has notification
			// forwarders writing to it; handing it to the federation would
			// put two unsynchronized writers on one conn. Hello must precede
			// any subscription.
			if len(cs.subs) != 0 {
				_ = cs.writeLine(Response{Type: MsgError, Op: req.Op, Error: "hello must be the connection's first frame"})
				continue
			}
			if s.maxProto < ProtoV2 && req.Proto >= int(ProtoV2) {
				// A v1-pinned daemon negotiates every peer link down to v1.
				req.Proto = int(ProtoV1)
			}
			// Forwarders of already-removed subscriptions may still be
			// draining; wait them out so no stray write can interleave with
			// the peer frame stream.
			cs.wg.Wait()
			s.overlay.HandlePeer(conn, rd, req)
			return
		}
		if req.Op == OpPublish || req.Op == OpPublishBatch {
			s.wireBytes.Add(uint64(len(line) + 1))
			s.wireEvents.Add(uint64(max(1, len(req.Events))))
			if rd.Buffered() > 0 {
				s.framesPipelined.Add(1)
			}
		}
		if err := s.dispatch(cs, req); err != nil {
			if writeErr := cs.writeLine(Response{Type: MsgError, Op: req.Op, Error: err.Error()}); writeErr != nil {
				return
			}
		}
	}
}

// serveV2 runs the connection after a negotiated upgrade: binary frames in
// both directions, many requests in flight. The read buffer and the event
// scratch vector are reused across frames — the hot publish path decodes
// into scratch, matches, and answers without allocating.
func (s *Server) serveV2(cs *connState, rd *bufio.Reader) {
	sch := s.brk.Schema()
	var (
		buf     []byte
		scratch = make([]float64, 0, sch.N())
		evs     []event.Event
	)
	for {
		typ, payload, err := ReadFrame(rd, &buf)
		if err != nil {
			// Framing is unrecoverable: a truncated, oversized or malformed
			// prefix means the stream position is lost, so the connection
			// closes (the deferred teardown in handle drops subscriptions).
			if err != io.EOF {
				s.log.Printf("wire: v2 connection %s: %v", cs.conn.RemoteAddr(), err)
			}
			return
		}
		if rd.Buffered() > 0 {
			s.framesPipelined.Add(1)
		}
		switch typ {
		case framePublish:
			cid, vals, err := decodePublishFrame(payload, scratch)
			if cap(vals) > cap(scratch) {
				scratch = vals
			}
			if err != nil {
				s.log.Printf("wire: v2 connection %s: %v", cs.conn.RemoteAddr(), err)
				return
			}
			s.wireBytes.Add(uint64(len(payload) + 5))
			s.wireEvents.Add(1)
			matched, err := s.publishVals(sch, vals)
			if err != nil {
				if cs.sendErr(cid, OpPublish, err.Error()) != nil {
					return
				}
				continue
			}
			if cs.sendOK(cid, matched) != nil {
				return
			}

		case framePublishBatch:
			c := cur{b: payload}
			cid := c.u32()
			n := c.u32()
			if c.bad || n == 0 || uint64(n) > uint64(len(c.b)) {
				s.log.Printf("wire: v2 connection %s: %v", cs.conn.RemoteAddr(), fmt.Errorf("%w: bad batch count", ErrBadFrame))
				return
			}
			// Batch events are retained by notifications, so each vector is
			// decoded into its own slice (the v1 path allocates per event
			// too — the batch saving is in framing and response coalescing).
			evs = evs[:0]
			for i := uint32(0); i < n && !c.bad; i++ {
				evs = append(evs, event.Event{Vals: c.vec(make([]float64, 0, sch.N()))})
			}
			if err := c.done(); err != nil {
				s.log.Printf("wire: v2 connection %s: %v", cs.conn.RemoteAddr(), err)
				return
			}
			s.wireBytes.Add(uint64(len(payload) + 5))
			s.wireEvents.Add(uint64(n))
			counts, err := s.publishBatchVals(sch, evs)
			if err != nil {
				if cs.sendErr(cid, OpPublishBatch, err.Error()) != nil {
					return
				}
				continue
			}
			if cs.sendOKBatch(cid, counts) != nil {
				return
			}

		case frameControl:
			cid, req, err := decodeRequestFrame(typ, payload, cs.slots)
			if err != nil {
				s.log.Printf("wire: v2 connection %s: %v", cs.conn.RemoteAddr(), err)
				return
			}
			if req.Op == OpHello {
				if cs.sendErr(cid, req.Op, "connection already upgraded") != nil {
					return
				}
				continue
			}
			cs.cid = cid
			if err := s.dispatch(cs, req); err != nil {
				if cs.sendErr(cid, req.Op, err.Error()) != nil {
					return
				}
			}

		default:
			s.log.Printf("wire: v2 connection %s: %v", cs.conn.RemoteAddr(),
				fmt.Errorf("%w: unknown frame type 0x%02x", ErrBadFrame, typ))
			return
		}
	}
}

// publishVals validates a slot vector against the schema domains (matching
// the v1 JSON path's strictness) and publishes it on the broker's
// zero-allocation value path. vals may be a reused scratch slice: the broker
// copies on match and the overlay encodes synchronously.
func (s *Server) publishVals(sch *schema.Schema, vals []float64) (int, error) {
	if len(vals) != sch.N() {
		return 0, fmt.Errorf("%w: got %d values for %d attributes", event.ErrArity, len(vals), sch.N())
	}
	for i, v := range vals {
		if err := sch.Validate(i, v); err != nil {
			return 0, err
		}
	}
	matched, err := s.brk.PublishValues(vals)
	if err != nil {
		return 0, err
	}
	if s.overlay != nil {
		s.overlay.EventPublished(event.Event{Vals: vals})
	}
	return matched, nil
}

// publishBatchVals validates and publishes a decoded v2 batch.
func (s *Server) publishBatchVals(sch *schema.Schema, evs []event.Event) ([]int, error) {
	for i, ev := range evs {
		if len(ev.Vals) != sch.N() {
			return nil, fmt.Errorf("event %d: %w: got %d values for %d attributes", i, event.ErrArity, len(ev.Vals), sch.N())
		}
		for j, v := range ev.Vals {
			if err := sch.Validate(j, v); err != nil {
				return nil, fmt.Errorf("event %d: %w", i, err)
			}
		}
	}
	counts, err := s.brk.PublishBatch(evs)
	if err != nil {
		return nil, err
	}
	if s.overlay != nil {
		for _, ev := range evs {
			s.overlay.EventPublished(ev)
		}
	}
	return counts, nil
}

// schemaPayload renders the broker schema as wire attribute descriptors (the
// schema response and the v2 hello confirmation share it: slot i on the wire
// is attribute i in this list).
func schemaPayload(sch *schema.Schema) []AttrPayload {
	attrs := make([]AttrPayload, sch.N())
	for i := 0; i < sch.N(); i++ {
		a := sch.At(i)
		attrs[i] = AttrPayload{
			Name:   a.Name,
			Kind:   a.Domain.Kind().String(),
			Lo:     a.Domain.Lo(),
			Hi:     a.Domain.Hi(),
			Labels: a.Domain.Labels(),
		}
	}
	return attrs
}

func attrNames(sch *schema.Schema) []string {
	names := make([]string, sch.N())
	for i := range names {
		names[i] = sch.At(i).Name
	}
	return names
}

// dispatch executes one request; returned errors are reported to the client.
func (s *Server) dispatch(cs *connState, req Request) error {
	sch := s.brk.Schema()
	switch req.Op {
	case OpPing:
		return cs.send(Response{Type: MsgPong, Op: req.Op})

	case OpSchema:
		return cs.send(Response{Type: MsgSchema, Op: req.Op, Attributes: schemaPayload(sch)})

	case OpSubscribe:
		if req.ID == "" {
			return errors.New("subscribe: missing id")
		}
		p, err := predicate.Parse(sch, predicate.ID(req.ID), req.Profile)
		if err != nil {
			return err
		}
		p.Priority = req.Priority
		sub, err := s.brk.Subscribe(p)
		if err != nil {
			return err
		}
		cs.subs[req.ID] = sub
		cs.wg.Add(1)
		go func() {
			defer cs.wg.Done()
			s.forward(cs, sub)
		}()
		if s.overlay != nil {
			s.overlay.ProfileAdded(p)
		}
		return cs.send(Response{Type: MsgOK, Op: req.Op, Profile: req.ID})

	case OpUnsubscribe:
		if _, ok := cs.subs[req.ID]; !ok {
			return fmt.Errorf("unsubscribe: %s not subscribed on this connection", req.ID)
		}
		delete(cs.subs, req.ID)
		if err := s.brk.Unsubscribe(predicate.ID(req.ID)); err != nil {
			return err
		}
		if s.overlay != nil {
			s.overlay.ProfileRemoved(predicate.ID(req.ID))
		}
		return cs.send(Response{Type: MsgOK, Op: req.Op, Profile: req.ID})

	case OpPublish:
		ev, err := event.FromMapWith(sch, req.Event, s.defaults)
		if err != nil {
			return err
		}
		matched, err := s.brk.Publish(ev)
		if err != nil {
			return err
		}
		if s.overlay != nil {
			s.overlay.EventPublished(ev)
		}
		return cs.send(Response{Type: MsgOK, Op: req.Op, Matched: matched})

	case OpPublishBatch:
		if len(req.Events) == 0 {
			return errors.New("publish_batch: no events")
		}
		evs := make([]event.Event, len(req.Events))
		for i, payload := range req.Events {
			ev, err := event.FromMapWith(sch, payload, s.defaults)
			if err != nil {
				return fmt.Errorf("event %d: %w", i, err)
			}
			evs[i] = ev
		}
		counts, err := s.brk.PublishBatch(evs)
		if err != nil {
			return err
		}
		if s.overlay != nil {
			for _, ev := range evs {
				s.overlay.EventPublished(ev)
			}
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return cs.send(Response{Type: MsgOK, Op: req.Op, Matched: total, MatchedEach: counts})

	case OpQuench:
		i, err := sch.Index(req.Attr)
		if err != nil {
			return err
		}
		q := s.brk.Quenched(i, schema.Closed(req.Lo, req.Hi))
		return cs.send(Response{Type: MsgOK, Op: req.Op, Quenched: q})

	case OpProfiles:
		var payload []ProfilePayload
		for _, p := range s.brk.Engine().Profiles() {
			payload = append(payload, ProfilePayload{
				ID:       string(p.ID),
				Expr:     p.Render(sch),
				Priority: p.Priority,
			})
		}
		return cs.send(Response{Type: MsgOK, Op: req.Op, Profiles: payload})

	case OpStats:
		st := s.brk.Stats()
		payload := &StatsPayload{
			Subscriptions: st.Subscriptions,
			Published:     st.Published,
			Delivered:     st.Delivered,
			Dropped:       st.Dropped,
			FilterEvents:  st.FilterEvents,
			FilterOps:     st.FilterOps,
			MeanOps:       st.MeanOps,
		}
		if a := s.brk.Adaptor(); a != nil {
			payload.Restructures = a.Restructures()
		}
		if ag := st.Aggregation; ag.Enabled {
			payload.Aggregated = true
			payload.CanonicalNodes = ag.Nodes
			payload.CanonicalRoots = ag.Roots
			payload.PosetDepth = ag.MaxDepth
			payload.ProfilesPerCanonical = ag.Ratio()
		}
		if s.overlay != nil {
			payload.Node, payload.Peers, payload.Forwarded, payload.Filtered = s.overlay.Stats()
			payload.ProtoV2Peers = s.overlay.ProtoV2Peers()
		}
		if we := s.wireEvents.Load(); we > 0 {
			payload.BytesPerEventWire = float64(s.wireBytes.Load()) / float64(we)
		}
		payload.FramesPipelined = s.framesPipelined.Load()
		return cs.send(Response{Type: MsgStats, Op: req.Op, Stats: payload})

	default:
		return fmt.Errorf("unknown op %q", req.Op)
	}
}

// forward pushes one subscription's notifications to the connection until
// the subscription channel closes. On v2 the event vector goes out in
// binary as-is; v1 builds the attribute-name map the JSON codec needs.
func (s *Server) forward(cs *connState, sub *broker.Subscription) {
	sch := s.brk.Schema()
	for n := range sub.C() {
		if cs.proto >= ProtoV2 {
			if err := cs.sendNotify(string(n.Profile), n.Event.Seq, n.Event.Vals); err != nil {
				return
			}
			continue
		}
		payload := make(map[string]float64, sch.N())
		for i, v := range n.Event.Vals {
			payload[sch.At(i).Name] = v
		}
		resp := Response{
			Type:    MsgNotification,
			Profile: string(n.Profile),
			Event:   payload,
			Seq:     n.Event.Seq,
		}
		if err := cs.writeLine(resp); err != nil {
			return
		}
	}
}
