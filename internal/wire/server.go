package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"genas/internal/broker"
	"genas/internal/event"
	"genas/internal/predicate"
	"genas/internal/schema"
)

// Overlay is the federation integration surface: when installed, the server
// hands peer connections (first frame hello) over to it and mirrors local
// registration and publish activity into it, so profiles propagate to peer
// daemons and events cross a TCP link only when that link's routing filter
// matches.
type Overlay interface {
	// HandlePeer owns a connection whose first frame was a hello. It runs the
	// peer link until the connection drops and must tolerate conn being
	// closed concurrently by Server.Close. rd is the connection's line
	// scanner (already past the hello line).
	HandlePeer(conn net.Conn, rd *bufio.Scanner, hello Request)
	// ProfileAdded announces a locally subscribed profile to the overlay.
	ProfileAdded(p *predicate.Profile)
	// ProfileRemoved withdraws a locally removed profile from the overlay.
	ProfileRemoved(id predicate.ID)
	// EventPublished offers a locally published event for forwarding over
	// matching peer links.
	EventPublished(ev event.Event)
	// Stats reports the overlay node name, live peer link count and the
	// forwarded/early-rejected counters.
	Stats() (node string, peers int, forwarded, filtered uint64)
}

// Server serves the wire protocol over TCP for one broker instance. Every
// connection owns its subscriptions: when the connection drops, its profiles
// are removed from the filter tree.
type Server struct {
	brk      *broker.Broker
	defaults *event.Defaults
	overlay  Overlay
	ln       net.Listener
	log      *log.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a broker. logger may be nil to discard logs.
func NewServer(brk *broker.Broker, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	return &Server{brk: brk, log: logger, conns: make(map[net.Conn]struct{})}
}

// SetDefaults installs opt-in fill-ins for event attributes omitted from
// publish and publish_batch frames (nil restores the strict default: every
// attribute required). Call before Serve.
func (s *Server) SetDefaults(d *event.Defaults) { s.defaults = d }

// SetOverlay federates the server: hello frames are handed to o, and local
// subscribe/unsubscribe/publish activity is mirrored into it. Call before
// Serve.
func (s *Server) SetOverlay(o Overlay) { s.overlay = o }

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Serve accepts connections on ln until the context is canceled or Close is
// called. It blocks; run it from the caller's goroutine of choice.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("wire: server closed")
	}
	s.ln = ln
	// The watcher joins the WaitGroup under s.mu: Close sets closed under the
	// same lock before it calls Wait, so Add can never race that Wait.
	s.wg.Add(1)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer s.wg.Done()
		select {
		case <-ctx.Done():
			_ = ln.Close()
		case <-done:
		}
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			// Release the watcher before joining the WaitGroup it belongs to:
			// without the close, a Close() that was not preceded by a context
			// cancel would leave the watcher parked and this Wait (and the
			// one inside Close) deadlocked.
			close(done)
			if ctx.Err() != nil || s.isClosed() {
				s.wg.Wait()
				return nil
			}
			s.wg.Wait()
			return fmt.Errorf("wire: accept: %w", err)
		}
		if !s.track(conn) {
			// Close ran between Accept and here: the connection would escape
			// the teardown (and its wg.Add would race Close's Wait), so drop
			// it instead of serving it.
			_ = conn.Close()
			continue
		}
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// track registers a connection and joins the handler WaitGroup, refusing
// when the server is already closing (the caller must then drop the conn).
// Registration, the closed check and wg.Add happen under one lock so a
// concurrent Close either sees the connection (and closes it) or prevents it.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// Close stops accepting, disconnects all clients and waits for handler
// goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// connState tracks one connection's subscriptions and synchronized writer.
type connState struct {
	mu   sync.Mutex
	conn net.Conn
	subs map[string]*broker.Subscription
	wg   sync.WaitGroup
}

func (cs *connState) writeLine(v any) error {
	b, err := EncodeLine(v)
	if err != nil {
		return err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	//genas:allow locksafe cs.mu exists to serialize frame writes on the shared conn; nothing else is ever taken under it
	_, err = cs.conn.Write(b)
	return err
}

// handle runs one connection's request loop.
func (s *Server) handle(conn net.Conn) {
	defer s.untrack(conn)
	cs := &connState{conn: conn, subs: make(map[string]*broker.Subscription)}
	defer func() {
		// Tear down this connection's subscriptions, then wait for their
		// forwarder goroutines (closing the subscription closes its channel,
		// which ends the forwarder).
		for id := range cs.subs {
			if s.brk.Unsubscribe(predicate.ID(id)) == nil && s.overlay != nil {
				s.overlay.ProfileRemoved(predicate.ID(id))
			}
		}
		cs.wg.Wait()
		_ = conn.Close()
	}()

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		req, err := DecodeRequest(line)
		if err != nil {
			_ = cs.writeLine(Response{Type: MsgError, Error: err.Error()})
			continue
		}
		if req.Op == OpHello {
			// A peer daemon, not a client: hand the connection over to the
			// federation layer, which runs the link until it drops.
			if s.overlay == nil {
				_ = cs.writeLine(Response{Type: MsgError, Op: req.Op, Error: "daemon is not federated"})
				continue
			}
			// A connection with live subscriptions has notification
			// forwarders writing to it; handing it to the federation would
			// put two unsynchronized writers on one conn. Hello must precede
			// any subscription.
			if len(cs.subs) != 0 {
				_ = cs.writeLine(Response{Type: MsgError, Op: req.Op, Error: "hello must be the connection's first frame"})
				continue
			}
			// Forwarders of already-removed subscriptions may still be
			// draining; wait them out so no stray write can interleave with
			// the peer frame stream.
			cs.wg.Wait()
			s.overlay.HandlePeer(conn, sc, req)
			return
		}
		if err := s.dispatch(cs, req); err != nil {
			if writeErr := cs.writeLine(Response{Type: MsgError, Op: req.Op, Error: err.Error()}); writeErr != nil {
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		s.log.Printf("wire: connection %s: %v", conn.RemoteAddr(), err)
	}
}

// dispatch executes one request; returned errors are reported to the client.
func (s *Server) dispatch(cs *connState, req Request) error {
	sch := s.brk.Schema()
	switch req.Op {
	case OpPing:
		return cs.writeLine(Response{Type: MsgPong, Op: req.Op})

	case OpSchema:
		attrs := make([]AttrPayload, sch.N())
		for i := 0; i < sch.N(); i++ {
			a := sch.At(i)
			attrs[i] = AttrPayload{
				Name:   a.Name,
				Kind:   a.Domain.Kind().String(),
				Lo:     a.Domain.Lo(),
				Hi:     a.Domain.Hi(),
				Labels: a.Domain.Labels(),
			}
		}
		return cs.writeLine(Response{Type: MsgSchema, Op: req.Op, Attributes: attrs})

	case OpSubscribe:
		if req.ID == "" {
			return errors.New("subscribe: missing id")
		}
		p, err := predicate.Parse(sch, predicate.ID(req.ID), req.Profile)
		if err != nil {
			return err
		}
		p.Priority = req.Priority
		sub, err := s.brk.Subscribe(p)
		if err != nil {
			return err
		}
		cs.subs[req.ID] = sub
		cs.wg.Add(1)
		go func() {
			defer cs.wg.Done()
			s.forward(cs, sub)
		}()
		if s.overlay != nil {
			s.overlay.ProfileAdded(p)
		}
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Profile: req.ID})

	case OpUnsubscribe:
		if _, ok := cs.subs[req.ID]; !ok {
			return fmt.Errorf("unsubscribe: %s not subscribed on this connection", req.ID)
		}
		delete(cs.subs, req.ID)
		if err := s.brk.Unsubscribe(predicate.ID(req.ID)); err != nil {
			return err
		}
		if s.overlay != nil {
			s.overlay.ProfileRemoved(predicate.ID(req.ID))
		}
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Profile: req.ID})

	case OpPublish:
		ev, err := event.FromMapWith(sch, req.Event, s.defaults)
		if err != nil {
			return err
		}
		matched, err := s.brk.Publish(ev)
		if err != nil {
			return err
		}
		if s.overlay != nil {
			s.overlay.EventPublished(ev)
		}
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Matched: matched})

	case OpPublishBatch:
		if len(req.Events) == 0 {
			return errors.New("publish_batch: no events")
		}
		evs := make([]event.Event, len(req.Events))
		for i, payload := range req.Events {
			ev, err := event.FromMapWith(sch, payload, s.defaults)
			if err != nil {
				return fmt.Errorf("event %d: %w", i, err)
			}
			evs[i] = ev
		}
		counts, err := s.brk.PublishBatch(evs)
		if err != nil {
			return err
		}
		if s.overlay != nil {
			for _, ev := range evs {
				s.overlay.EventPublished(ev)
			}
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Matched: total, MatchedEach: counts})

	case OpQuench:
		i, err := sch.Index(req.Attr)
		if err != nil {
			return err
		}
		q := s.brk.Quenched(i, schema.Closed(req.Lo, req.Hi))
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Quenched: q})

	case OpProfiles:
		var payload []ProfilePayload
		for _, p := range s.brk.Engine().Profiles() {
			payload = append(payload, ProfilePayload{
				ID:       string(p.ID),
				Expr:     p.Render(sch),
				Priority: p.Priority,
			})
		}
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Profiles: payload})

	case OpStats:
		st := s.brk.Stats()
		payload := &StatsPayload{
			Subscriptions: st.Subscriptions,
			Published:     st.Published,
			Delivered:     st.Delivered,
			Dropped:       st.Dropped,
			FilterEvents:  st.FilterEvents,
			FilterOps:     st.FilterOps,
			MeanOps:       st.MeanOps,
		}
		if a := s.brk.Adaptor(); a != nil {
			payload.Restructures = a.Restructures()
		}
		if ag := st.Aggregation; ag.Enabled {
			payload.Aggregated = true
			payload.CanonicalNodes = ag.Nodes
			payload.CanonicalRoots = ag.Roots
			payload.PosetDepth = ag.MaxDepth
			payload.ProfilesPerCanonical = ag.Ratio()
		}
		if s.overlay != nil {
			payload.Node, payload.Peers, payload.Forwarded, payload.Filtered = s.overlay.Stats()
		}
		return cs.writeLine(Response{Type: MsgStats, Op: req.Op, Stats: payload})

	default:
		return fmt.Errorf("unknown op %q", req.Op)
	}
}

// forward pushes one subscription's notifications to the connection until
// the subscription channel closes.
func (s *Server) forward(cs *connState, sub *broker.Subscription) {
	sch := s.brk.Schema()
	for n := range sub.C() {
		payload := make(map[string]float64, sch.N())
		for i, v := range n.Event.Vals {
			payload[sch.At(i).Name] = v
		}
		resp := Response{
			Type:    MsgNotification,
			Profile: string(n.Profile),
			Event:   payload,
			Seq:     n.Event.Seq,
		}
		if err := cs.writeLine(resp); err != nil {
			return
		}
	}
}
