package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"genas/internal/broker"
	"genas/internal/event"
	"genas/internal/predicate"
	"genas/internal/schema"
)

// Server serves the wire protocol over TCP for one broker instance. Every
// connection owns its subscriptions: when the connection drops, its profiles
// are removed from the filter tree.
type Server struct {
	brk      *broker.Broker
	defaults *event.Defaults
	ln       net.Listener
	log      *log.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a broker. logger may be nil to discard logs.
func NewServer(brk *broker.Broker, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	return &Server{brk: brk, log: logger, conns: make(map[net.Conn]struct{})}
}

// SetDefaults installs opt-in fill-ins for event attributes omitted from
// publish and publish_batch frames (nil restores the strict default: every
// attribute required). Call before Serve.
func (s *Server) SetDefaults(d *event.Defaults) { s.defaults = d }

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Serve accepts connections on ln until the context is canceled or Close is
// called. It blocks; run it from the caller's goroutine of choice.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("wire: server closed")
	}
	s.ln = ln
	s.mu.Unlock()

	done := make(chan struct{})
	defer close(done)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case <-ctx.Done():
			_ = ln.Close()
		case <-done:
		}
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || s.isClosed() {
				s.wg.Wait()
				return nil
			}
			s.wg.Wait()
			return fmt.Errorf("wire: accept: %w", err)
		}
		s.track(conn)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) track(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns[c] = struct{}{}
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// Close stops accepting, disconnects all clients and waits for handler
// goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// connState tracks one connection's subscriptions and synchronized writer.
type connState struct {
	mu   sync.Mutex
	conn net.Conn
	subs map[string]*broker.Subscription
	wg   sync.WaitGroup
}

func (cs *connState) writeLine(v any) error {
	b, err := EncodeLine(v)
	if err != nil {
		return err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	_, err = cs.conn.Write(b)
	return err
}

// handle runs one connection's request loop.
func (s *Server) handle(conn net.Conn) {
	defer s.untrack(conn)
	cs := &connState{conn: conn, subs: make(map[string]*broker.Subscription)}
	defer func() {
		// Tear down this connection's subscriptions, then wait for their
		// forwarder goroutines (closing the subscription closes its channel,
		// which ends the forwarder).
		for id := range cs.subs {
			_ = s.brk.Unsubscribe(predicate.ID(id))
		}
		cs.wg.Wait()
		_ = conn.Close()
	}()

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		req, err := DecodeRequest(line)
		if err != nil {
			_ = cs.writeLine(Response{Type: MsgError, Error: err.Error()})
			continue
		}
		if err := s.dispatch(cs, req); err != nil {
			if writeErr := cs.writeLine(Response{Type: MsgError, Op: req.Op, Error: err.Error()}); writeErr != nil {
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		s.log.Printf("wire: connection %s: %v", conn.RemoteAddr(), err)
	}
}

// dispatch executes one request; returned errors are reported to the client.
func (s *Server) dispatch(cs *connState, req Request) error {
	sch := s.brk.Schema()
	switch req.Op {
	case OpPing:
		return cs.writeLine(Response{Type: MsgPong, Op: req.Op})

	case OpSchema:
		attrs := make([]AttrPayload, sch.N())
		for i := 0; i < sch.N(); i++ {
			a := sch.At(i)
			attrs[i] = AttrPayload{
				Name:   a.Name,
				Kind:   a.Domain.Kind().String(),
				Lo:     a.Domain.Lo(),
				Hi:     a.Domain.Hi(),
				Labels: a.Domain.Labels(),
			}
		}
		return cs.writeLine(Response{Type: MsgSchema, Op: req.Op, Attributes: attrs})

	case OpSubscribe:
		if req.ID == "" {
			return errors.New("subscribe: missing id")
		}
		p, err := predicate.Parse(sch, predicate.ID(req.ID), req.Profile)
		if err != nil {
			return err
		}
		p.Priority = req.Priority
		sub, err := s.brk.Subscribe(p)
		if err != nil {
			return err
		}
		cs.subs[req.ID] = sub
		cs.wg.Add(1)
		go func() {
			defer cs.wg.Done()
			s.forward(cs, sub)
		}()
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Profile: req.ID})

	case OpUnsubscribe:
		if _, ok := cs.subs[req.ID]; !ok {
			return fmt.Errorf("unsubscribe: %s not subscribed on this connection", req.ID)
		}
		delete(cs.subs, req.ID)
		if err := s.brk.Unsubscribe(predicate.ID(req.ID)); err != nil {
			return err
		}
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Profile: req.ID})

	case OpPublish:
		ev, err := event.FromMapWith(sch, req.Event, s.defaults)
		if err != nil {
			return err
		}
		matched, err := s.brk.Publish(ev)
		if err != nil {
			return err
		}
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Matched: matched})

	case OpPublishBatch:
		if len(req.Events) == 0 {
			return errors.New("publish_batch: no events")
		}
		evs := make([]event.Event, len(req.Events))
		for i, payload := range req.Events {
			ev, err := event.FromMapWith(sch, payload, s.defaults)
			if err != nil {
				return fmt.Errorf("event %d: %w", i, err)
			}
			evs[i] = ev
		}
		counts, err := s.brk.PublishBatch(evs)
		if err != nil {
			return err
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Matched: total, MatchedEach: counts})

	case OpQuench:
		i, err := sch.Index(req.Attr)
		if err != nil {
			return err
		}
		q := s.brk.Quenched(i, schema.Closed(req.Lo, req.Hi))
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Quenched: q})

	case OpProfiles:
		var payload []ProfilePayload
		for _, p := range s.brk.Engine().Profiles() {
			payload = append(payload, ProfilePayload{
				ID:       string(p.ID),
				Expr:     p.Render(sch),
				Priority: p.Priority,
			})
		}
		return cs.writeLine(Response{Type: MsgOK, Op: req.Op, Profiles: payload})

	case OpStats:
		st := s.brk.Stats()
		payload := &StatsPayload{
			Subscriptions: st.Subscriptions,
			Published:     st.Published,
			Delivered:     st.Delivered,
			Dropped:       st.Dropped,
			FilterEvents:  st.FilterEvents,
			FilterOps:     st.FilterOps,
			MeanOps:       st.MeanOps,
		}
		if a := s.brk.Adaptor(); a != nil {
			payload.Restructures = a.Restructures()
		}
		return cs.writeLine(Response{Type: MsgStats, Op: req.Op, Stats: payload})

	default:
		return fmt.Errorf("unknown op %q", req.Op)
	}
}

// forward pushes one subscription's notifications to the connection until
// the subscription channel closes.
func (s *Server) forward(cs *connState, sub *broker.Subscription) {
	sch := s.brk.Schema()
	for n := range sub.C() {
		payload := make(map[string]float64, sch.N())
		for i, v := range n.Event.Vals {
			payload[sch.At(i).Name] = v
		}
		resp := Response{
			Type:    MsgNotification,
			Profile: string(n.Profile),
			Event:   payload,
			Seq:     n.Event.Seq,
		}
		if err := cs.writeLine(resp); err != nil {
			return
		}
	}
}
