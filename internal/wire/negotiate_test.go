package wire

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"genas/internal/broker"
	"genas/internal/schema"
)

// startServerProto is startServer with a protocol ceiling: ProtoV1 simulates
// an old daemon that never learned the binary protocol.
func startServerProto(t *testing.T, max Proto) string {
	t.Helper()
	sch, err := schema.ParseSpec("temperature=numeric[-30,50]; humidity=numeric[0,100]")
	if err != nil {
		t.Fatal(err)
	}
	brk, err := broker.New(sch, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(brk, nil)
	srv.SetMaxProto(max)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(ctx, ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		wg.Wait()
		brk.Close()
	})
	return ln.Addr().String()
}

// TestNegotiateV2EndToEnd upgrades a connection to binary frames and drives
// the full surface over it: control operations ride control frames, publishes
// travel as vectors, notifications come back as vectors, and the wire-level
// counters become visible in stats.
func TestNegotiateV2EndToEnd(t *testing.T) {
	addr := startServer(t)

	subC, err := DialWith(addr, DialConfig{Timeout: rpcTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = subC.Close() }()
	if subC.Proto() != ProtoV2 {
		t.Fatalf("negotiated proto = %d, want v2", subC.Proto())
	}
	pubC, err := DialWith(addr, DialConfig{Timeout: rpcTimeout, Proto: ProtoV2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pubC.Close() }()

	// Control-plane operations cross the codec boundary intact.
	if err := subC.Ping(rpcTimeout); err != nil {
		t.Fatal(err)
	}
	if err := subC.Subscribe("hot", "profile(temperature >= 35)", 1.5, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	attrs, err := subC.Schema(rpcTimeout)
	if err != nil || len(attrs) != 2 || attrs[0].Name != "temperature" {
		t.Fatalf("schema over v2 = %+v %v", attrs, err)
	}

	// The binary hot path: schema-order vector in, match count out.
	matched, err := pubC.PublishVals([]float64{41, 10}, rpcTimeout)
	if err != nil || matched != 1 {
		t.Fatalf("PublishVals = %d %v", matched, err)
	}
	// The map-based publish also rides the vector frame on v2.
	matched, err = pubC.Publish(map[string]float64{"temperature": 45, "humidity": 20}, rpcTimeout)
	if err != nil || matched != 1 {
		t.Fatalf("Publish = %d %v", matched, err)
	}

	for i := 0; i < 2; i++ {
		select {
		case n, ok := <-subC.Notifications():
			if !ok {
				t.Fatal("notification channel closed")
			}
			if n.Profile != "hot" || len(n.Vals) != 2 {
				t.Fatalf("v2 notification = %+v", n)
			}
			// EventMap resolves the vector back through the negotiated slots.
			if m := subC.EventMap(n); m["temperature"] < 35 {
				t.Errorf("notification event = %v", m)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("no notification over v2")
		}
	}

	// Semantic errors answer as error frames and leave the connection alive.
	if _, err := pubC.PublishVals([]float64{400, 10}, rpcTimeout); err == nil {
		t.Error("out-of-domain vector must fail")
	}
	if _, err := pubC.PublishVals([]float64{1}, rpcTimeout); err == nil {
		t.Error("wrong-arity vector must fail")
	}
	if err := pubC.Ping(rpcTimeout); err != nil {
		t.Fatalf("connection died after semantic errors: %v", err)
	}

	st, err := pubC.Stats(rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesPerEventWire <= 0 {
		t.Errorf("BytesPerEventWire = %g, want > 0", st.BytesPerEventWire)
	}
	// Two f64 slots plus framing: a v2 publish is a few dozen bytes, far
	// under the ~60-byte JSON rendering.
	if st.BytesPerEventWire > 40 {
		t.Errorf("BytesPerEventWire = %g, want compact binary frames", st.BytesPerEventWire)
	}
}

// TestNegotiateFallbackToV1 pins the downgrade path: an Auto client against a
// v1-pinned server lands on JSON lines with full functionality, and a client
// that requires v2 fails with a useful error instead of degrading silently.
func TestNegotiateFallbackToV1(t *testing.T) {
	addr := startServerProto(t, ProtoV1)

	c, err := DialWith(addr, DialConfig{Timeout: rpcTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.Proto() != ProtoV1 {
		t.Fatalf("proto after fallback = %d, want v1", c.Proto())
	}
	if err := c.Subscribe("hot", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	if matched, err := c.Publish(map[string]float64{"temperature": 41, "humidity": 10}, rpcTimeout); err != nil || matched != 1 {
		t.Fatalf("publish after fallback = %d %v", matched, err)
	}
	// The positional surface degrades to v1 maps transparently.
	if matched, err := c.PublishVals([]float64{42, 10}, rpcTimeout); err != nil || matched != 1 {
		t.Fatalf("PublishVals over v1 = %d %v", matched, err)
	}
	select {
	case n := <-c.Notifications():
		if n.Profile != "hot" || n.Event["temperature"] != 41 {
			t.Fatalf("v1 notification = %+v", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no notification after fallback")
	}

	// A pinned-v2 client must refuse the old server.
	if _, err := DialWith(addr, DialConfig{Timeout: rpcTimeout, Proto: ProtoV2}); err == nil {
		t.Fatal("ProtoV2 against a v1 server must fail")
	} else if !strings.Contains(err.Error(), "v2") {
		t.Errorf("v2-refusal error %q does not name the protocol", err)
	}
}

// TestV1ClientAgainstV2Server pins backward interop: the deprecated
// line-protocol Dial keeps working unchanged against an upgraded daemon.
func TestV1ClientAgainstV2Server(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.Proto() != ProtoV1 {
		t.Fatalf("deprecated Dial negotiated %d, want v1", c.Proto())
	}
	if err := c.Subscribe("hot", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	if matched, err := c.Publish(map[string]float64{"temperature": 41, "humidity": 10}, rpcTimeout); err != nil || matched != 1 {
		t.Fatalf("v1 publish = %d %v", matched, err)
	}
}

// TestPipelinedBatch pushes a large batch through the pipelined v2 publish
// path: per-event counts must align positionally, and the server must observe
// pipelined frames (requests queued behind the one being served).
func TestPipelinedBatch(t *testing.T) {
	addr := startServer(t)
	c, err := DialWith(addr, DialConfig{Timeout: rpcTimeout, PipelineDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Subscribe("hot", "profile(temperature >= 0)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}

	const n = 2000
	batch := make([][]float64, n)
	for i := range batch {
		// Alternate matching (t=10) and non-matching (t=-10) events.
		temp := 10.0
		if i%2 == 1 {
			temp = -10
		}
		batch[i] = []float64{temp, 50}
	}
	counts, err := c.PublishValsBatch(batch, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != n {
		t.Fatalf("got %d counts for %d events", len(counts), n)
	}
	for i, cnt := range counts {
		want := 1 - i%2
		if cnt != want {
			t.Fatalf("counts[%d] = %d, want %d", i, cnt, want)
		}
	}

	st, err := c.Stats(rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st.Published != n {
		t.Errorf("published = %d, want %d", st.Published, n)
	}
	// The window writes many chunked frames back to back over loopback, so
	// the server must have seen at least one frame queued behind another.
	if st.FramesPipelined == 0 {
		t.Error("FramesPipelined = 0 after a windowed batch")
	}
}

// TestHelloAfterUpgrade pins the one v2-specific semantic error: a second
// client hello on an upgraded connection answers with an error frame and the
// connection survives.
func TestHelloAfterUpgrade(t *testing.T) {
	addr := startServer(t)
	c, err := DialWith(addr, DialConfig{Timeout: rpcTimeout})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := c.roundTrip(Request{Op: OpHello, Proto: int(ProtoV2)}, rpcTimeout); err == nil {
		t.Error("hello on an upgraded connection must fail")
	}
	if err := c.Ping(rpcTimeout); err != nil {
		t.Fatalf("connection died after re-hello: %v", err)
	}
}
