// Package wire defines the JSON-line protocol spoken between the GENAS
// daemon (cmd/genasd) and its clients (cmd/genas): one JSON object per line
// over TCP. The protocol carries the generic service's runtime definitions —
// profiles in the profile language, events in the event notation — so "all
// events, attributes, domains, and compare operators can be created and
// specified at runtime" (paper §4.2).
package wire

import (
	"encoding/json"
	"fmt"
)

// Proto selects a wire protocol generation for a connection or peer link.
type Proto int

// Protocol generations. The zero value (ProtoAuto) negotiates: speak v2 when
// both ends support it, fall back to v1 otherwise.
const (
	ProtoAuto Proto = 0
	// ProtoV1 is the JSON-line protocol: one JSON object per line.
	ProtoV1 Proto = 1
	// ProtoV2 is the binary frame protocol (see frame.go): length-prefixed
	// frames, schema-indexed event vectors, correlation-id pipelining.
	ProtoV2 Proto = 2
)

// Op enumerates request operations.
type Op string

// Request operations.
const (
	OpSubscribe   Op = "subscribe"
	OpUnsubscribe Op = "unsubscribe"
	OpPublish     Op = "publish"
	// OpPublishBatch posts several events in one frame; the broker filters
	// them against one corpus snapshot and assigns contiguous sequence
	// numbers in frame order.
	OpPublishBatch Op = "publish_batch"
	OpStats        Op = "stats"
	OpQuench       Op = "quench"
	OpSchema       Op = "schema"
	OpProfiles     Op = "profiles"
	OpPing         Op = "ping"
)

// Peer (daemon-to-daemon) operations. A federated daemon identifies itself
// with a hello frame as the first line of a connection; after the handshake
// the link is a symmetric stream of peer frames in both directions (no
// responses): route_add/route_withdraw propagate profiles toward potential
// publishers, forward carries an event across the link once that link's
// routing filter matched it — so "unnecessary event information is rejected
// as early as possible" (paper §5) at every hop.
const (
	// OpHello opens a peer link: Node carries the sender's overlay node name,
	// Schema its schema rendering (both daemons must agree). The acceptor
	// answers with its own hello frame.
	OpHello Op = "hello"
	// OpRouteAdd announces a profile subscribed in the sender's direction:
	// ID, Profile (profile language) and Priority describe it.
	OpRouteAdd Op = "route_add"
	// OpRouteWithdraw retracts a previously announced route by ID.
	OpRouteWithdraw Op = "route_withdraw"
	// OpForward carries one event across the link (Event payload). It is
	// fire-and-forget: the receiving daemon delivers locally and forwards on
	// over its own matching links.
	OpForward Op = "forward"
)

// Request is one client→server message.
type Request struct {
	Op Op `json:"op"`
	// ID identifies the profile for subscribe/unsubscribe.
	ID string `json:"id,omitempty"`
	// Profile is a profile-language expression for subscribe.
	Profile string `json:"profile,omitempty"`
	// Priority weights the profile for user-centric optimization.
	Priority float64 `json:"priority,omitempty"`
	// Event carries publish payloads as attribute name → value.
	Event map[string]float64 `json:"event,omitempty"`
	// Events carries a publish_batch payload: one event per element, each as
	// attribute name → value.
	Events []map[string]float64 `json:"events,omitempty"`
	// Attr/Lo/Hi describe a quench query region.
	Attr string  `json:"attr,omitempty"`
	Lo   float64 `json:"lo,omitempty"`
	Hi   float64 `json:"hi,omitempty"`
	// Node is the sender's overlay node name (hello frames).
	Node string `json:"node,omitempty"`
	// Schema is the sender's schema rendering, checked for equality during
	// the peer handshake (hello frames).
	Schema string `json:"schema,omitempty"`
	// Proto advertises the sender's maximum supported protocol generation in
	// hello frames. Absent (0) means v1: pre-v2 peers never send it, so the
	// negotiated protocol with them is min(2, 1) = 1 and nothing changes.
	Proto int `json:"proto,omitempty"`
}

// MsgType enumerates server→client message types.
type MsgType string

// Response message types.
const (
	MsgOK           MsgType = "ok"
	MsgError        MsgType = "error"
	MsgNotification MsgType = "notification"
	MsgStats        MsgType = "stats"
	MsgSchema       MsgType = "schema"
	MsgPong         MsgType = "pong"
)

// Response is one server→client message.
type Response struct {
	Type MsgType `json:"type"`
	// Op echoes the request operation for MsgOK/MsgError.
	Op Op `json:"op,omitempty"`
	// Error carries the failure text for MsgError.
	Error string `json:"error,omitempty"`
	// Profile identifies the matched subscription for notifications.
	Profile string `json:"profile,omitempty"`
	// Event is the notification payload (attribute name → value).
	Event map[string]float64 `json:"event,omitempty"`
	// Seq is the broker sequence number of the notified event.
	Seq uint64 `json:"seq,omitempty"`
	// Matched reports how many profiles a published event matched (for a
	// batch: the sum over the frame).
	Matched int `json:"matched,omitempty"`
	// MatchedEach reports per-event match counts for publish_batch,
	// positionally aligned with the request's Events.
	MatchedEach []int `json:"matched_each,omitempty"`
	// Quenched answers quench queries.
	Quenched bool `json:"quenched,omitempty"`
	// Stats carries broker statistics.
	Stats *StatsPayload `json:"stats,omitempty"`
	// Attributes lists the schema for MsgSchema.
	Attributes []AttrPayload `json:"attributes,omitempty"`
	// Profiles lists registered subscriptions for OpProfiles.
	Profiles []ProfilePayload `json:"profiles,omitempty"`
	// Proto confirms the negotiated protocol generation in a hello response
	// (0 when absent, meaning v1).
	Proto int `json:"proto,omitempty"`
	// Vals is the notification payload as a schema-order vector when the
	// notification arrived on a v2 connection. Never on the wire — v2 carries
	// it in binary, v1 uses Event.
	Vals []float64 `json:"-"`
}

// ProfilePayload describes one registered profile on the wire.
type ProfilePayload struct {
	ID       string  `json:"id"`
	Expr     string  `json:"expr"`
	Priority float64 `json:"priority,omitempty"`
}

// StatsPayload mirrors broker.Stats on the wire, plus the federation link
// counters when the daemon is peered.
type StatsPayload struct {
	Subscriptions int     `json:"subscriptions"`
	Published     uint64  `json:"published"`
	Delivered     uint64  `json:"delivered"`
	Dropped       uint64  `json:"dropped"`
	FilterEvents  uint64  `json:"filter_events"`
	FilterOps     uint64  `json:"filter_ops"`
	MeanOps       float64 `json:"mean_ops"`
	Restructures  int     `json:"restructures,omitempty"`
	// Aggregation counters (aggregated daemons only): distinct canonical
	// predicate nodes, uncovered roots the automaton indexes, the longest
	// covering chain, and subscriptions-per-canonical-node.
	Aggregated           bool    `json:"aggregated,omitempty"`
	CanonicalNodes       int     `json:"canonical_nodes,omitempty"`
	CanonicalRoots       int     `json:"canonical_roots,omitempty"`
	PosetDepth           int     `json:"poset_depth,omitempty"`
	ProfilesPerCanonical float64 `json:"profiles_per_canonical,omitempty"`
	// Node names this daemon in the overlay (federated daemons only).
	Node string `json:"fed_node,omitempty"`
	// Peers counts live peer links.
	Peers int `json:"peers,omitempty"`
	// Forwarded counts events sent over peer links; Filtered counts link
	// crossings avoided by early rejection at this daemon's links.
	Forwarded uint64 `json:"forwarded,omitempty"`
	Filtered  uint64 `json:"peer_filtered,omitempty"`
	// ProtoV2Peers counts live peer links that negotiated protocol v2.
	ProtoV2Peers int `json:"proto_v2_peers,omitempty"`
	// BytesPerEventWire is the mean wire bytes per event received on
	// publish/publish_batch frames (both protocols), measured at the server.
	BytesPerEventWire float64 `json:"bytes_per_event_wire,omitempty"`
	// FramesPipelined counts request frames that were already buffered
	// behind the one being served — depth>1 pipelining observed on the wire.
	FramesPipelined uint64 `json:"frames_pipelined,omitempty"`
}

// AttrPayload describes one schema attribute on the wire.
type AttrPayload struct {
	Name string  `json:"name"`
	Kind string  `json:"kind"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	// Labels lists categorical values in code order.
	Labels []string `json:"labels,omitempty"`
}

// EncodeLine marshals a message and appends '\n'.
func EncodeLine(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeRequest parses one request line.
func DecodeRequest(line []byte) (Request, error) {
	var r Request
	if err := json.Unmarshal(line, &r); err != nil {
		return Request{}, fmt.Errorf("wire: bad request: %w", err)
	}
	if r.Op == "" {
		return Request{}, fmt.Errorf("wire: missing op")
	}
	return r, nil
}

// DecodeResponse parses one response line.
func DecodeResponse(line []byte) (Response, error) {
	var r Response
	if err := json.Unmarshal(line, &r); err != nil {
		return Response{}, fmt.Errorf("wire: bad response: %w", err)
	}
	if r.Type == "" {
		return Response{}, fmt.Errorf("wire: missing type")
	}
	return r, nil
}
