// Wire protocol v2: length-prefixed binary frames.
//
// A v2 frame is [u32 length][u8 type][payload], big-endian, where length
// counts the type byte plus the payload and is capped at MaxFrame. Events
// travel as fixed-width vectors of attribute values in schema slot order —
// no attribute names on the wire — so one publish frame is a handful of
// bytes instead of a JSON object, and decoding is a bounds check plus eight
// byte loads per attribute into a reusable scratch slice.
//
// Only the hot paths have binary payloads: publish, publish_batch, their
// acknowledgements, notifications and the three peer frames. Cold control
// operations (subscribe, stats, schema, …) ride inside control frames that
// carry the v1 JSON encoding verbatim, so the two codecs can never drift on
// the long tail of the protocol.
//
// Client request and response frames start with a u32 correlation id: a v2
// connection may have many requests in flight (pipelining), and the id pairs
// each response with its request. Notifications and peer frames carry no id
// — they are not responses.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// MaxFrame caps one v2 frame (and one v1 line): length prefixes beyond it
// are rejected with ErrFrameTooBig before any allocation happens.
const MaxFrame = 1 << 20

// Sentinel errors of the v2 framing layer.
var (
	// ErrFrameTooBig reports a length prefix (or v1 line) over MaxFrame.
	ErrFrameTooBig = errors.New("wire: frame exceeds the size cap")
	// ErrFrameTruncated reports a connection that closed mid-frame: inside
	// the length prefix or before the announced payload arrived.
	ErrFrameTruncated = errors.New("wire: truncated frame")
	// ErrBadFrame reports a structurally invalid frame: zero length, an
	// unknown type byte, or a payload that does not parse.
	ErrBadFrame = errors.New("wire: malformed frame")
)

// Frame type bytes. Client requests are 0x0_, server responses 0x4_, peer
// frames 0x8_. Only the peer frames are exported: internal/federation
// encodes and decodes them directly, everything else stays inside this
// package.
const (
	framePublish      byte = 0x01 // cid, vector
	framePublishBatch byte = 0x02 // cid, u32 count, count vectors
	frameControl      byte = 0x03 // cid, v1 JSON request

	frameOK        byte = 0x41 // cid, u32 matched
	frameOKBatch   byte = 0x42 // cid, u32 count, count u32 matches
	frameErr       byte = 0x43 // cid, str op, str message
	frameNotify    byte = 0x44 // str profile, u64 seq, vector
	frameControlRe byte = 0x45 // cid, v1 JSON response

	// FrameForward carries one event (vector payload) across a peer link.
	FrameForward byte = 0x81
	// FrameRouteAdd announces a route: str id, str profile, f64 priority.
	FrameRouteAdd byte = 0x82
	// FrameRouteWithdraw retracts a route: str id.
	FrameRouteWithdraw byte = 0x83
)

// ReadFrame reads one v2 frame, reusing *buf as the payload buffer (grown as
// needed and retained across calls — the pooled read path). The returned
// payload aliases *buf and is valid until the next call. A clean EOF at a
// frame boundary returns io.EOF; EOF inside a frame returns
// ErrFrameTruncated; an oversized or zero length prefix returns
// ErrFrameTooBig / ErrBadFrame without consuming the payload.
func ReadFrame(rd *bufio.Reader, buf *[]byte) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: connection closed inside the length prefix", ErrFrameTruncated)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes (cap %d)", ErrFrameTooBig, n, MaxFrame)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	*buf = (*buf)[:n]
	if _, err := io.ReadFull(rd, *buf); err != nil {
		return 0, nil, fmt.Errorf("%w: connection closed inside a %d-byte frame", ErrFrameTruncated, n)
	}
	return (*buf)[0], (*buf)[1:], nil
}

// ReadLine reads one v1 JSON line (without its terminator, tolerating CRLF),
// accumulating across the reader's buffer up to MaxFrame. It replaces
// bufio.Scanner so the same *bufio.Reader can switch to binary frames after
// a negotiated upgrade without losing buffered bytes. A final unterminated
// line is returned before io.EOF, matching Scanner semantics.
func ReadLine(rd *bufio.Reader) ([]byte, error) {
	line, err := rd.ReadSlice('\n')
	if err == nil {
		return trimEOL(line), nil
	}
	if err == io.EOF {
		if len(line) > 0 {
			return trimEOL(line), nil
		}
		return nil, io.EOF
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	// The line spans the reader's buffer: accumulate into an owned slice.
	buf := append([]byte(nil), line...)
	for {
		line, err = rd.ReadSlice('\n')
		buf = append(buf, line...)
		switch err {
		case nil, io.EOF:
			if err == io.EOF && len(buf) == 0 {
				return nil, io.EOF
			}
			out := trimEOL(buf)
			if len(out) > MaxFrame {
				return nil, fmt.Errorf("%w: line exceeds %d bytes", ErrFrameTooBig, MaxFrame)
			}
			return out, nil
		case bufio.ErrBufferFull:
			if len(buf) > MaxFrame {
				return nil, fmt.Errorf("%w: line exceeds %d bytes", ErrFrameTooBig, MaxFrame)
			}
			continue
		default:
			return nil, err
		}
	}
}

func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// slots maps attribute names to vector positions — the schema knowledge the
// two ends of a v2 connection share after the hello exchange.
type slots struct {
	names []string
	index map[string]int
}

func newSlots(names []string) *slots {
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	return &slots{names: names, index: idx}
}

// vectorOf converts an attribute map to a slot vector. It fails (second
// return false) unless the map names exactly the schema's attributes — a
// partial event relies on server-side defaults and must travel as JSON.
func (s *slots) vectorOf(m map[string]float64) ([]float64, bool) {
	if len(m) != len(s.names) {
		return nil, false
	}
	vec := make([]float64, len(s.names))
	for name, v := range m {
		i, ok := s.index[name]
		if !ok {
			return nil, false
		}
		vec[i] = v
	}
	return vec, true
}

// mapOf is vectorOf's inverse.
func (s *slots) mapOf(vec []float64) map[string]float64 {
	m := make(map[string]float64, len(vec))
	for i, v := range vec {
		m[s.names[i]] = v
	}
	return m
}

// --- primitive appends -------------------------------------------------

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func appendVec(dst []byte, vals []float64) []byte {
	dst = appendU32(dst, uint32(len(vals)))
	for _, v := range vals {
		dst = appendF64(dst, v)
	}
	return dst
}

// beginFrame reserves the length prefix and writes the type byte; the
// returned mark feeds finishFrame, which backfills the length.
func beginFrame(dst []byte, typ byte) ([]byte, int) {
	mark := len(dst)
	return append(dst, 0, 0, 0, 0, typ), mark
}

func finishFrame(dst []byte, mark int) []byte {
	binary.BigEndian.PutUint32(dst[mark:mark+4], uint32(len(dst)-mark-4))
	return dst
}

// --- cursor decode -----------------------------------------------------

// cur walks a frame payload with a sticky out-of-bounds flag, so decoders
// read field by field and check validity once at the end.
type cur struct {
	b   []byte
	bad bool
}

func (c *cur) take(n int) []byte {
	if c.bad || len(c.b) < n {
		c.bad = true
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *cur) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (c *cur) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (c *cur) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cur) str() string {
	n := c.u32()
	if c.bad || uint64(n) > uint64(len(c.b)) {
		c.bad = true
		return ""
	}
	return string(c.take(int(n)))
}

// vec decodes a vector into dst (appending — pass a reused scratch slice
// truncated to zero length for the pooled decode path).
func (c *cur) vec(dst []float64) []float64 {
	n := c.u32()
	if c.bad || uint64(n)*8 > uint64(len(c.b)) {
		c.bad = true
		return dst
	}
	for i := 0; i < int(n); i++ {
		dst = append(dst, c.f64())
	}
	return dst
}

// done validates that the payload parsed cleanly and completely.
func (c *cur) done() error {
	if c.bad || len(c.b) != 0 {
		return fmt.Errorf("%w: bad payload", ErrBadFrame)
	}
	return nil
}

// --- hot-path frame builders and decoders ------------------------------

func appendPublishFrame(dst []byte, cid uint32, vals []float64) []byte {
	dst, mark := beginFrame(dst, framePublish)
	dst = appendU32(dst, cid)
	dst = appendVec(dst, vals)
	return finishFrame(dst, mark)
}

func decodePublishFrame(payload []byte, scratch []float64) (cid uint32, vals []float64, err error) {
	c := cur{b: payload}
	cid = c.u32()
	vals = c.vec(scratch[:0])
	return cid, vals, c.done()
}

func appendPublishBatchFrame(dst []byte, cid uint32, batch [][]float64) []byte {
	dst, mark := beginFrame(dst, framePublishBatch)
	dst = appendU32(dst, cid)
	dst = appendU32(dst, uint32(len(batch)))
	for _, vals := range batch {
		dst = appendVec(dst, vals)
	}
	return finishFrame(dst, mark)
}

func appendNotifyFrame(dst []byte, profile string, seq uint64, vals []float64) []byte {
	dst, mark := beginFrame(dst, frameNotify)
	dst = appendStr(dst, profile)
	dst = appendU64(dst, seq)
	dst = appendVec(dst, vals)
	return finishFrame(dst, mark)
}

func decodeNotifyFrame(payload []byte) (profile string, seq uint64, vals []float64, err error) {
	c := cur{b: payload}
	profile = c.str()
	seq = c.u64()
	vals = c.vec(nil)
	return profile, seq, vals, c.done()
}

func appendOKFrame(dst []byte, cid uint32, matched int) []byte {
	dst, mark := beginFrame(dst, frameOK)
	dst = appendU32(dst, cid)
	dst = appendU32(dst, uint32(matched))
	return finishFrame(dst, mark)
}

func appendOKBatchFrame(dst []byte, cid uint32, counts []int) []byte {
	dst, mark := beginFrame(dst, frameOKBatch)
	dst = appendU32(dst, cid)
	dst = appendU32(dst, uint32(len(counts)))
	for _, n := range counts {
		dst = appendU32(dst, uint32(n))
	}
	return finishFrame(dst, mark)
}

func appendErrFrame(dst []byte, cid uint32, op Op, msg string) []byte {
	dst, mark := beginFrame(dst, frameErr)
	dst = appendU32(dst, cid)
	dst = appendStr(dst, string(op))
	dst = appendStr(dst, msg)
	return finishFrame(dst, mark)
}

// appendControlFrame wraps a v1 JSON encoding (request or response — typ
// picks frameControl or frameControlRe) in a v2 frame.
func appendControlFrame(dst []byte, typ byte, cid uint32, js []byte) []byte {
	dst, mark := beginFrame(dst, typ)
	dst = appendU32(dst, cid)
	dst = append(dst, js...)
	return finishFrame(dst, mark)
}

// --- peer frames (used by internal/federation) -------------------------

// AppendForwardFrame encodes one event crossing a peer link.
func AppendForwardFrame(dst []byte, vals []float64) []byte {
	dst, mark := beginFrame(dst, FrameForward)
	dst = appendVec(dst, vals)
	return finishFrame(dst, mark)
}

// DecodeForwardFrame decodes a forward payload into scratch (appending
// after truncation to zero, so the caller's slice is reused).
func DecodeForwardFrame(payload []byte, scratch []float64) ([]float64, error) {
	c := cur{b: payload}
	vals := c.vec(scratch[:0])
	return vals, c.done()
}

// AppendRouteAddFrame encodes a route announcement.
func AppendRouteAddFrame(dst []byte, id, profile string, priority float64) []byte {
	dst, mark := beginFrame(dst, FrameRouteAdd)
	dst = appendStr(dst, id)
	dst = appendStr(dst, profile)
	dst = appendF64(dst, priority)
	return finishFrame(dst, mark)
}

// DecodeRouteAddFrame decodes a route announcement payload.
func DecodeRouteAddFrame(payload []byte) (id, profile string, priority float64, err error) {
	c := cur{b: payload}
	id = c.str()
	profile = c.str()
	priority = c.f64()
	return id, profile, priority, c.done()
}

// AppendRouteWithdrawFrame encodes a route withdrawal.
func AppendRouteWithdrawFrame(dst []byte, id string) []byte {
	dst, mark := beginFrame(dst, FrameRouteWithdraw)
	dst = appendStr(dst, id)
	return finishFrame(dst, mark)
}

// DecodeRouteWithdrawFrame decodes a route withdrawal payload.
func DecodeRouteWithdrawFrame(payload []byte) (string, error) {
	c := cur{b: payload}
	id := c.str()
	return id, c.done()
}

// --- generic Request/Response <-> frame conversion ---------------------
//
// The generic converters give every v1 message a v2 encoding (hot shapes
// binary, the rest as control frames) and back. The hot paths above bypass
// them; they exist for the cold client operations and as the codec oracle
// the cross-codec property tests and the fuzz targets pin.

// appendRequestFrame encodes any request as one v2 frame. Events whose maps
// do not cover the schema exactly (server-side defaults) fall back to a
// control frame, preserving v1 semantics bit for bit.
func appendRequestFrame(dst []byte, cid uint32, req Request, sl *slots) ([]byte, error) {
	switch req.Op {
	case OpPublish:
		if vec, ok := sl.vectorOf(req.Event); ok {
			return appendPublishFrame(dst, cid, vec), nil
		}
	case OpPublishBatch:
		batch := make([][]float64, len(req.Events))
		ok := len(req.Events) > 0
		for i, ev := range req.Events {
			if batch[i], ok = sl.vectorOf(ev); !ok {
				break
			}
		}
		if ok {
			return appendPublishBatchFrame(dst, cid, batch), nil
		}
	case OpForward:
		if vec, ok := sl.vectorOf(req.Event); ok {
			return AppendForwardFrame(dst, vec), nil
		}
	case OpRouteAdd:
		return AppendRouteAddFrame(dst, req.ID, req.Profile, req.Priority), nil
	case OpRouteWithdraw:
		return AppendRouteWithdrawFrame(dst, req.ID), nil
	}
	js, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	return appendControlFrame(dst, frameControl, cid, js), nil
}

// decodeRequestFrame is appendRequestFrame's inverse. Peer frames decode
// with cid 0 (they carry none).
func decodeRequestFrame(typ byte, payload []byte, sl *slots) (uint32, Request, error) {
	switch typ {
	case framePublish:
		cid, vals, err := decodePublishFrame(payload, nil)
		if err != nil {
			return 0, Request{}, err
		}
		if len(vals) != len(sl.names) {
			return 0, Request{}, fmt.Errorf("%w: %d values for %d attributes", ErrBadFrame, len(vals), len(sl.names))
		}
		return cid, Request{Op: OpPublish, Event: sl.mapOf(vals)}, nil
	case framePublishBatch:
		c := cur{b: payload}
		cid := c.u32()
		n := c.u32()
		if c.bad || uint64(n) > uint64(len(c.b)) { // each event costs ≥ 4 bytes
			return 0, Request{}, fmt.Errorf("%w: bad batch count", ErrBadFrame)
		}
		events := make([]map[string]float64, 0, n)
		var scratch []float64
		for i := uint32(0); i < n; i++ {
			scratch = c.vec(scratch[:0])
			if c.bad || len(scratch) != len(sl.names) {
				return 0, Request{}, fmt.Errorf("%w: bad batch vector", ErrBadFrame)
			}
			events = append(events, sl.mapOf(scratch))
		}
		if err := c.done(); err != nil {
			return 0, Request{}, err
		}
		return cid, Request{Op: OpPublishBatch, Events: events}, nil
	case frameControl:
		c := cur{b: payload}
		cid := c.u32()
		if c.bad {
			return 0, Request{}, fmt.Errorf("%w: short control frame", ErrBadFrame)
		}
		req, err := DecodeRequest(c.b)
		if err != nil {
			return 0, Request{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		return cid, req, nil
	case FrameForward:
		vals, err := DecodeForwardFrame(payload, nil)
		if err != nil {
			return 0, Request{}, err
		}
		if len(vals) != len(sl.names) {
			return 0, Request{}, fmt.Errorf("%w: %d values for %d attributes", ErrBadFrame, len(vals), len(sl.names))
		}
		return 0, Request{Op: OpForward, Event: sl.mapOf(vals)}, nil
	case FrameRouteAdd:
		id, profile, priority, err := DecodeRouteAddFrame(payload)
		if err != nil {
			return 0, Request{}, err
		}
		return 0, Request{Op: OpRouteAdd, ID: id, Profile: profile, Priority: priority}, nil
	case FrameRouteWithdraw:
		id, err := DecodeRouteWithdrawFrame(payload)
		if err != nil {
			return 0, Request{}, err
		}
		return 0, Request{Op: OpRouteWithdraw, ID: id}, nil
	default:
		return 0, Request{}, fmt.Errorf("%w: unknown request frame type 0x%02x", ErrBadFrame, typ)
	}
}

// appendResponseFrame encodes any response as one v2 frame: publish
// acknowledgements, errors and notifications in binary, the rest as control
// frames.
func appendResponseFrame(dst []byte, cid uint32, resp Response, sl *slots) ([]byte, error) {
	switch {
	case resp.Type == MsgOK && resp.Op == OpPublish && resp.MatchedEach == nil:
		return appendOKFrame(dst, cid, resp.Matched), nil
	case resp.Type == MsgOK && resp.Op == OpPublishBatch && resp.MatchedEach != nil:
		return appendOKBatchFrame(dst, cid, resp.MatchedEach), nil
	case resp.Type == MsgError:
		return appendErrFrame(dst, cid, resp.Op, resp.Error), nil
	case resp.Type == MsgNotification:
		if vec, ok := sl.vectorOf(resp.Event); ok {
			return appendNotifyFrame(dst, resp.Profile, resp.Seq, vec), nil
		}
	}
	js, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	return appendControlFrame(dst, frameControlRe, cid, js), nil
}

// decodeResponseFrame is appendResponseFrame's inverse.
func decodeResponseFrame(typ byte, payload []byte, sl *slots) (uint32, Response, error) {
	switch typ {
	case frameOK:
		c := cur{b: payload}
		cid := c.u32()
		matched := int(c.u32())
		if err := c.done(); err != nil {
			return 0, Response{}, err
		}
		return cid, Response{Type: MsgOK, Op: OpPublish, Matched: matched}, nil
	case frameOKBatch:
		c := cur{b: payload}
		cid := c.u32()
		n := c.u32()
		if c.bad || uint64(n)*4 > uint64(len(c.b)) {
			return 0, Response{}, fmt.Errorf("%w: bad batch count", ErrBadFrame)
		}
		counts := make([]int, n)
		total := 0
		for i := range counts {
			counts[i] = int(c.u32())
			total += counts[i]
		}
		if err := c.done(); err != nil {
			return 0, Response{}, err
		}
		return cid, Response{Type: MsgOK, Op: OpPublishBatch, Matched: total, MatchedEach: counts}, nil
	case frameErr:
		c := cur{b: payload}
		cid := c.u32()
		op := Op(c.str())
		msg := c.str()
		if err := c.done(); err != nil {
			return 0, Response{}, err
		}
		return cid, Response{Type: MsgError, Op: op, Error: msg}, nil
	case frameNotify:
		profile, seq, vals, err := decodeNotifyFrame(payload)
		if err != nil {
			return 0, Response{}, err
		}
		if len(vals) != len(sl.names) {
			return 0, Response{}, fmt.Errorf("%w: %d values for %d attributes", ErrBadFrame, len(vals), len(sl.names))
		}
		return 0, Response{Type: MsgNotification, Profile: profile, Seq: seq, Event: sl.mapOf(vals)}, nil
	case frameControlRe:
		c := cur{b: payload}
		cid := c.u32()
		if c.bad {
			return 0, Response{}, fmt.Errorf("%w: short control frame", ErrBadFrame)
		}
		resp, err := DecodeResponse(c.b)
		if err != nil {
			return 0, Response{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		return cid, resp, nil
	default:
		return 0, Response{}, fmt.Errorf("%w: unknown response frame type 0x%02x", ErrBadFrame, typ)
	}
}
