package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary lines — seeded with every request op
// including the peer frames (hello, route_add, route_withdraw, forward) —
// through the request decoder: it must never panic, and any line it accepts
// must survive an encode/decode round trip unchanged.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"op":"ping"}`,
		`{"op":"subscribe","id":"hot","profile":"profile(temperature >= 35)","priority":2}`,
		`{"op":"unsubscribe","id":"hot"}`,
		`{"op":"publish","event":{"temperature":41,"humidity":10}}`,
		`{"op":"publish_batch","events":[{"temperature":1},{"temperature":2}]}`,
		`{"op":"quench","attr":"temperature","lo":-30,"hi":0}`,
		`{"op":"stats"}`,
		`{"op":"schema"}`,
		`{"op":"profiles"}`,
		// Peer frames.
		`{"op":"hello","node":"A","schema":"schema(temperature:[-30,50])"}`,
		`{"op":"route_add","id":"hot","profile":"profile(temperature >= 35)","priority":1.5}`,
		`{"op":"route_withdraw","id":"hot"}`,
		`{"op":"forward","event":{"temperature":41,"humidity":10}}`,
		// Junk.
		``,
		`{}`,
		`{"op":""}`,
		`not json at all`,
		"{\"op\":\"hello\",\"node\":\"\u0000\"}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		req, err := DecodeRequest(line)
		if err != nil {
			return
		}
		encoded, err := EncodeLine(req)
		if err != nil {
			t.Fatalf("decoded request %+v does not re-encode: %v", req, err)
		}
		again, err := DecodeRequest(bytes.TrimSuffix(encoded, []byte("\n")))
		if err != nil {
			t.Fatalf("re-encoded request %q does not decode: %v", encoded, err)
		}
		// Compare through JSON: the struct contains only plain data.
		a, _ := json.Marshal(req)
		b, _ := json.Marshal(again)
		if !bytes.Equal(a, b) {
			t.Fatalf("round trip changed the request:\n  first  %s\n  second %s", a, b)
		}
	})
}

// FuzzDecodeFrame feeds arbitrary bytes through the v2 framing layer and both
// frame decoders. Seeds are the v2 encodings of the v1 fuzz corpus (the
// cross-codec bridge), plus structural junk. The decoders must never panic,
// and any frame they accept must survive a re-encode/decode round trip with
// identical meaning.
func FuzzDecodeFrame(f *testing.F) {
	sl := newSlots([]string{"temperature", "humidity"})
	v1Corpus := []string{
		`{"op":"ping"}`,
		`{"op":"subscribe","id":"hot","profile":"profile(temperature >= 35)","priority":2}`,
		`{"op":"unsubscribe","id":"hot"}`,
		`{"op":"publish","event":{"temperature":41,"humidity":10}}`,
		`{"op":"publish","event":{"temperature":41}}`,
		`{"op":"publish_batch","events":[{"temperature":1,"humidity":2},{"temperature":3,"humidity":4}]}`,
		`{"op":"quench","attr":"temperature","lo":-30,"hi":0}`,
		`{"op":"stats"}`,
		`{"op":"hello","node":"A","schema":"schema(temperature:[-30,50])","proto":2}`,
		`{"op":"route_add","id":"hot","profile":"profile(temperature >= 35)","priority":1.5}`,
		`{"op":"route_withdraw","id":"hot"}`,
		`{"op":"forward","event":{"temperature":41,"humidity":10}}`,
	}
	for _, line := range v1Corpus {
		req, err := DecodeRequest([]byte(line))
		if err != nil {
			f.Fatalf("bad corpus line %q: %v", line, err)
		}
		enc, err := appendRequestFrame(nil, 9, req, sl)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	// Response-direction seeds and structural junk.
	f.Add(appendOKFrame(nil, 1, 3))
	f.Add(appendOKBatchFrame(nil, 2, []int{0, 1, 2}))
	f.Add(appendErrFrame(nil, 3, OpPublish, "boom"))
	f.Add(appendNotifyFrame(nil, "hot", 7, []float64{41, 10}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 2, 0x01})

	f.Fuzz(func(t *testing.T, raw []byte) {
		var buf []byte
		typ, payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(raw)), &buf)
		if err != nil {
			return
		}
		if cid, req, err := decodeRequestFrame(typ, payload, sl); err == nil {
			enc, err := appendRequestFrame(nil, cid, req, sl)
			if err != nil {
				t.Fatalf("accepted request %+v does not re-encode: %v", req, err)
			}
			typ2, payload2, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc)), &buf)
			if err != nil {
				t.Fatalf("re-encoded request frame does not read: %v", err)
			}
			cid2, again, err := decodeRequestFrame(typ2, payload2, sl)
			if err != nil {
				t.Fatalf("re-encoded request frame does not decode: %v", err)
			}
			a, _ := json.Marshal(req)
			b, _ := json.Marshal(again)
			if !bytes.Equal(a, b) || cid2 != cid {
				t.Fatalf("request round trip drifted (cid %d→%d):\n  first  %s\n  second %s", cid, cid2, a, b)
			}
		}
		if cid, resp, err := decodeResponseFrame(typ, payload, sl); err == nil {
			enc, err := appendResponseFrame(nil, cid, resp, sl)
			if err != nil {
				t.Fatalf("accepted response %+v does not re-encode: %v", resp, err)
			}
			typ2, payload2, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc)), &buf)
			if err != nil {
				t.Fatalf("re-encoded response frame does not read: %v", err)
			}
			cid2, again, err := decodeResponseFrame(typ2, payload2, sl)
			if err != nil {
				t.Fatalf("re-encoded response frame does not decode: %v", err)
			}
			a, _ := json.Marshal(resp)
			b, _ := json.Marshal(again)
			if !bytes.Equal(a, b) || cid2 != cid {
				t.Fatalf("response round trip drifted (cid %d→%d):\n  first  %s\n  second %s", cid, cid2, a, b)
			}
		}
	})
}
