package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary lines — seeded with every request op
// including the peer frames (hello, route_add, route_withdraw, forward) —
// through the request decoder: it must never panic, and any line it accepts
// must survive an encode/decode round trip unchanged.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"op":"ping"}`,
		`{"op":"subscribe","id":"hot","profile":"profile(temperature >= 35)","priority":2}`,
		`{"op":"unsubscribe","id":"hot"}`,
		`{"op":"publish","event":{"temperature":41,"humidity":10}}`,
		`{"op":"publish_batch","events":[{"temperature":1},{"temperature":2}]}`,
		`{"op":"quench","attr":"temperature","lo":-30,"hi":0}`,
		`{"op":"stats"}`,
		`{"op":"schema"}`,
		`{"op":"profiles"}`,
		// Peer frames.
		`{"op":"hello","node":"A","schema":"schema(temperature:[-30,50])"}`,
		`{"op":"route_add","id":"hot","profile":"profile(temperature >= 35)","priority":1.5}`,
		`{"op":"route_withdraw","id":"hot"}`,
		`{"op":"forward","event":{"temperature":41,"humidity":10}}`,
		// Junk.
		``,
		`{}`,
		`{"op":""}`,
		`not json at all`,
		"{\"op\":\"hello\",\"node\":\"\u0000\"}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		req, err := DecodeRequest(line)
		if err != nil {
			return
		}
		encoded, err := EncodeLine(req)
		if err != nil {
			t.Fatalf("decoded request %+v does not re-encode: %v", req, err)
		}
		again, err := DecodeRequest(bytes.TrimSuffix(encoded, []byte("\n")))
		if err != nil {
			t.Fatalf("re-encoded request %q does not decode: %v", encoded, err)
		}
		// Compare through JSON: the struct contains only plain data.
		a, _ := json.Marshal(req)
		b, _ := json.Marshal(again)
		if !bytes.Equal(a, b) {
			t.Fatalf("round trip changed the request:\n  first  %s\n  second %s", a, b)
		}
	})
}
