package wire

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"genas/internal/broker"
	"genas/internal/schema"
)

const rpcTimeout = 5 * time.Second

// startServer spins a daemon on a loopback listener and returns its address.
func startServer(t *testing.T) string {
	t.Helper()
	sch, err := schema.ParseSpec("temperature=numeric[-30,50]; humidity=numeric[0,100]")
	if err != nil {
		t.Fatal(err)
	}
	brk, err := broker.New(sch, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(brk, nil)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(ctx, ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		wg.Wait()
		brk.Close()
	})
	return ln.Addr().String()
}

func TestPingAndSchema(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if err := c.Ping(rpcTimeout); err != nil {
		t.Fatal(err)
	}
	attrs, err := c.Schema(rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 || attrs[0].Name != "temperature" || attrs[0].Lo != -30 {
		t.Errorf("schema = %+v", attrs)
	}
}

func TestSubscribePublishNotify(t *testing.T) {
	addr := startServer(t)
	subC, err := Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = subC.Close() }()
	pubC, err := Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pubC.Close() }()

	if err := subC.Subscribe("hot", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	matched, err := pubC.Publish(map[string]float64{"temperature": 41, "humidity": 10}, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if matched != 1 {
		t.Errorf("matched = %d", matched)
	}
	select {
	case n, ok := <-subC.Notifications():
		if !ok {
			t.Fatal("notification channel closed")
		}
		if n.Profile != "hot" || n.Event["temperature"] != 41 {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no notification")
	}

	// Unsubscribe stops further notifications.
	if err := subC.Unsubscribe("hot", rpcTimeout); err != nil {
		t.Fatal(err)
	}
	if _, err := pubC.Publish(map[string]float64{"temperature": 45, "humidity": 10}, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-subC.Notifications():
		t.Fatalf("unexpected notification %+v", n)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestQuenchAndStats(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if err := c.Subscribe("p", "profile(temperature >= 35)", 2, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	q, err := c.Quench("temperature", -30, 0, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if !q {
		t.Error("cold region must quench")
	}
	q, err = c.Quench("temperature", 30, 50, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if q {
		t.Error("hot region must not quench")
	}
	if _, err := c.Publish(map[string]float64{"temperature": 40, "humidity": 10}, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st.Subscriptions != 1 || st.Published != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServerErrors(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if err := c.Subscribe("", "profile(temperature >= 0)", 0, rpcTimeout); err == nil {
		t.Error("missing id must fail")
	}
	if err := c.Subscribe("x", "profile(bogus >= 0)", 0, rpcTimeout); err == nil {
		t.Error("bad profile must fail")
	}
	if err := c.Unsubscribe("ghost", rpcTimeout); err == nil {
		t.Error("foreign unsubscribe must fail")
	}
	if _, err := c.Publish(map[string]float64{"nosuch": 1}, rpcTimeout); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := c.Publish(map[string]float64{"temperature": 400, "humidity": 1}, rpcTimeout); err == nil {
		t.Error("out-of-domain value must fail")
	}
	if _, err := c.Quench("nosuch", 0, 1, rpcTimeout); err == nil {
		t.Error("unknown quench attribute must fail")
	}
	// The connection survives all errors.
	if err := c.Ping(rpcTimeout); err != nil {
		t.Fatalf("connection died after errors: %v", err)
	}
}

// TestMalformedInput: garbage lines produce error responses (or are
// ignored), never a dead server.
func TestMalformedInput(t *testing.T) {
	addr := startServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	if _, err := raw.Write([]byte("this is not json\n{\"no\":\"op\"}\n\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := raw.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "error") {
		t.Errorf("expected error responses, got %q", buf[:n])
	}
	// The server still accepts a healthy client afterwards.
	c, err := Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(rpcTimeout); err != nil {
		t.Fatal(err)
	}
}

// TestDisconnectCleansSubscriptions: dropping a client removes its profiles
// from the filter.
func TestDisconnectCleansSubscriptions(t *testing.T) {
	addr := startServer(t)
	short, err := Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if err := short.Subscribe("ephemeral", "profile(temperature >= 0)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	_ = short.Close()

	probe, err := Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = probe.Close() }()
	// The disconnect is asynchronous; poll until the subscription is gone.
	deadline := time.Now().Add(3 * time.Second)
	for {
		st, err := probe.Stats(rpcTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if st.Subscriptions == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscription survived disconnect: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := DecodeRequest([]byte("{")); err == nil {
		t.Error("truncated request must fail")
	}
	if _, err := DecodeRequest([]byte("{}")); err == nil {
		t.Error("missing op must fail")
	}
	if _, err := DecodeResponse([]byte("{}")); err == nil {
		t.Error("missing type must fail")
	}
	if _, err := DecodeResponse([]byte(`{"type":"ok"}`)); err != nil {
		t.Error("minimal response must parse")
	}
}

func TestProfilesListing(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if err := c.Subscribe("hot", "profile(temperature >= 35)", 3, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe("wet", "profile(humidity >= 90)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	profiles, err := c.Profiles(rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %+v", profiles)
	}
	byID := map[string]ProfilePayload{}
	for _, p := range profiles {
		byID[p.ID] = p
	}
	if byID["hot"].Priority != 3 {
		t.Errorf("hot priority = %g", byID["hot"].Priority)
	}
	if !strings.Contains(byID["hot"].Expr, "temperature >= 35") {
		t.Errorf("hot expr = %q", byID["hot"].Expr)
	}
	// The rendered expressions are valid profile language: subscribing them
	// again under new ids succeeds.
	for id, p := range byID {
		if err := c.Subscribe(id+"-copy", p.Expr, 0, rpcTimeout); err != nil {
			t.Errorf("re-subscribe %s: %v", id, err)
		}
	}
}
