package wire

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genas/internal/broker"
	"genas/internal/schema"
)

// TestCloseDuringNotificationFlood pins the shutdown contract: while
// notifications stream to subscribers and publishers keep the broker busy,
// Close must tear the server down without a panic, without interleaving a
// notification inside a response frame (every received line decodes as a
// complete frame) and without leaking the Serve goroutine. Run under -race;
// the schedule noise is the point.
func TestCloseDuringNotificationFlood(t *testing.T) {
	sch, err := schema.ParseSpec("temperature=numeric[-30,50]; humidity=numeric[0,100]")
	if err != nil {
		t.Fatal(err)
	}
	brk, err := broker.New(sch, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	srv := NewServer(brk, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), ln) }()

	// The subscriber speaks raw TCP so the test sees exactly the bytes the
	// server wrote: a torn or interleaved frame would fail to decode.
	subConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = subConn.Close() }()
	subLine, err := EncodeLine(Request{Op: OpSubscribe, ID: "all", Profile: "profile(temperature >= -30)"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subConn.Write(subLine); err != nil {
		t.Fatal(err)
	}
	var frames atomic.Uint64
	readerDone := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(subConn)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			if _, err := DecodeResponse(sc.Bytes()); err != nil {
				readerDone <- err
				return
			}
			frames.Add(1)
		}
		readerDone <- sc.Err()
	}()

	// Publishers flood; their request/response pairing intentionally races
	// the notification forwarder on the subscriber connection, and then
	// races Close.
	const publishers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < publishers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(ln.Addr().String(), time.Second)
			if err != nil {
				return
			}
			defer func() { _ = c.Close() }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Publish(map[string]float64{"temperature": 20, "humidity": 50}, time.Second); err != nil {
					return // the server is tearing down
				}
			}
		}()
	}

	// Let the flood build, then tear the server down mid-flight.
	deadline := time.Now().Add(2 * time.Second)
	for frames.Load() < 100 {
		if time.Now().After(deadline) {
			t.Fatalf("flood never built up: %d frames", frames.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
	close(stop)
	wg.Wait()

	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	select {
	case err := <-readerDone:
		// EOF/reset is the expected end; a decode error means a torn frame.
		if err != nil && !errors.Is(err, io.EOF) {
			var ne net.Error
			if !errors.As(err, &ne) && !errors.Is(err, net.ErrClosed) {
				if _, ok := err.(*net.OpError); !ok {
					t.Errorf("subscriber stream corrupted: %v", err)
				}
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber reader never finished")
	}
	if frames.Load() < 100 {
		t.Errorf("only %d well-formed frames observed", frames.Load())
	}
}

// TestCloseWithoutContextCancel pins the deadlock fixed in this change: a
// bare Close (no context cancellation) must stop Serve. Before the fix the
// context watcher goroutine never exited, so Serve and Close deadlocked on
// the handler WaitGroup.
func TestCloseWithoutContextCancel(t *testing.T) {
	sch, err := schema.ParseSpec("x=numeric[0,1]")
	if err != nil {
		t.Fatal(err)
	}
	brk, err := broker.New(sch, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	srv := NewServer(brk, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), ln) }()
	// Make sure the server is actually accepting before closing it.
	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(time.Second); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked without a context cancel")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}
	// Close is idempotent, and a closed server refuses to serve again.
	srv.Close()
	if err := srv.Serve(context.Background(), ln); err == nil {
		t.Error("Serve on a closed server must fail")
	}
}

// upgradeRaw dials a raw TCP connection and performs the v2 hello upgrade by
// hand, returning the connection positioned at the start of the binary
// stream.
func upgradeRaw(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hello, err := EncodeLine(Request{Op: OpHello, Proto: int(ProtoV2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := ReadLine(rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeResponse(line)
	if err != nil || resp.Type != MsgOK || resp.Proto < int(ProtoV2) {
		t.Fatalf("upgrade refused: %+v %v", resp, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	return conn, rd
}

// TestV2GarbageClosesConnection pins the v2 framing error policy: once the
// stream position is lost — garbage length prefixes, truncated frames,
// unknown frame types — the server closes that connection (the only safe
// move) without taking the daemon down, and a later Server.Close must not
// wedge on the aborted connections.
func TestV2GarbageClosesConnection(t *testing.T) {
	sch, err := schema.ParseSpec("temperature=numeric[-30,50]; humidity=numeric[0,100]")
	if err != nil {
		t.Fatal(err)
	}
	brk, err := broker.New(sch, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	srv := NewServer(brk, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), ln) }()
	addr := ln.Addr().String()

	// expectClosed waits for the server to drop the connection.
	expectClosed := func(t *testing.T, conn net.Conn, rd *bufio.Reader) {
		t.Helper()
		_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		var buf []byte
		for {
			if _, _, err := ReadFrame(rd, &buf); err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, ErrFrameTruncated) {
					return // remote close observed
				}
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					t.Fatal("server kept the connection open after garbage")
				}
				return // reset — also a close
			}
		}
	}

	t.Run("oversized length prefix", func(t *testing.T) {
		conn, rd := upgradeRaw(t, addr)
		defer func() { _ = conn.Close() }()
		if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02}); err != nil {
			t.Fatal(err)
		}
		expectClosed(t, conn, rd)
	})

	t.Run("mid-stream garbage", func(t *testing.T) {
		conn, rd := upgradeRaw(t, addr)
		defer func() { _ = conn.Close() }()
		// A plausible small length with an unknown type byte and junk payload.
		if _, err := conn.Write([]byte{0, 0, 0, 5, 0x7F, 'j', 'u', 'n', 'k'}); err != nil {
			t.Fatal(err)
		}
		expectClosed(t, conn, rd)
	})

	t.Run("truncated length prefix", func(t *testing.T) {
		conn, rd := upgradeRaw(t, addr)
		defer func() { _ = conn.Close() }()
		if _, err := conn.Write([]byte{0, 0}); err != nil {
			t.Fatal(err)
		}
		if cw, ok := conn.(*net.TCPConn); ok {
			_ = cw.CloseWrite()
		}
		expectClosed(t, conn, rd)
	})

	t.Run("zero length frame", func(t *testing.T) {
		conn, rd := upgradeRaw(t, addr)
		defer func() { _ = conn.Close() }()
		if _, err := conn.Write([]byte{0, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
		expectClosed(t, conn, rd)
	})

	// The daemon survived every aborted connection: a healthy v2 client still
	// round-trips, and Close does not wedge on the corpses.
	c, err := DialWith(addr, DialConfig{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(time.Second); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged after v2 garbage connections")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

// TestAcceptDuringCloseRace hammers connection acceptance against Close: a
// connection accepted while Close runs must either be served or dropped,
// never leaked past the Close barrier (which would trip the WaitGroup
// add-after-wait race under -race).
func TestAcceptDuringCloseRace(t *testing.T) {
	sch, err := schema.ParseSpec("x=numeric[0,1]")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		brk, err := broker.New(sch, broker.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(brk, nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(context.Background(), ln) }()

		var wg sync.WaitGroup
		stop := make(chan struct{})
		for d := 0; d < 4; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					conn, err := net.Dial("tcp", ln.Addr().String())
					if err != nil {
						return
					}
					_ = conn.Close()
				}
			}()
		}
		time.Sleep(time.Duration(i%5) * time.Millisecond)
		srv.Close()
		close(stop)
		wg.Wait()
		select {
		case <-serveDone:
		case <-time.After(5 * time.Second):
			t.Fatal("Serve did not return after racing Close")
		}
		brk.Close()
	}
}
