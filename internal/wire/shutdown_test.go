package wire

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genas/internal/broker"
	"genas/internal/schema"
)

// TestCloseDuringNotificationFlood pins the shutdown contract: while
// notifications stream to subscribers and publishers keep the broker busy,
// Close must tear the server down without a panic, without interleaving a
// notification inside a response frame (every received line decodes as a
// complete frame) and without leaking the Serve goroutine. Run under -race;
// the schedule noise is the point.
func TestCloseDuringNotificationFlood(t *testing.T) {
	sch, err := schema.ParseSpec("temperature=numeric[-30,50]; humidity=numeric[0,100]")
	if err != nil {
		t.Fatal(err)
	}
	brk, err := broker.New(sch, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	srv := NewServer(brk, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), ln) }()

	// The subscriber speaks raw TCP so the test sees exactly the bytes the
	// server wrote: a torn or interleaved frame would fail to decode.
	subConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = subConn.Close() }()
	subLine, err := EncodeLine(Request{Op: OpSubscribe, ID: "all", Profile: "profile(temperature >= -30)"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subConn.Write(subLine); err != nil {
		t.Fatal(err)
	}
	var frames atomic.Uint64
	readerDone := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(subConn)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			if _, err := DecodeResponse(sc.Bytes()); err != nil {
				readerDone <- err
				return
			}
			frames.Add(1)
		}
		readerDone <- sc.Err()
	}()

	// Publishers flood; their request/response pairing intentionally races
	// the notification forwarder on the subscriber connection, and then
	// races Close.
	const publishers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < publishers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(ln.Addr().String(), time.Second)
			if err != nil {
				return
			}
			defer func() { _ = c.Close() }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Publish(map[string]float64{"temperature": 20, "humidity": 50}, time.Second); err != nil {
					return // the server is tearing down
				}
			}
		}()
	}

	// Let the flood build, then tear the server down mid-flight.
	deadline := time.Now().Add(2 * time.Second)
	for frames.Load() < 100 {
		if time.Now().After(deadline) {
			t.Fatalf("flood never built up: %d frames", frames.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
	close(stop)
	wg.Wait()

	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	select {
	case err := <-readerDone:
		// EOF/reset is the expected end; a decode error means a torn frame.
		if err != nil && !errors.Is(err, io.EOF) {
			var ne net.Error
			if !errors.As(err, &ne) && !errors.Is(err, net.ErrClosed) {
				if _, ok := err.(*net.OpError); !ok {
					t.Errorf("subscriber stream corrupted: %v", err)
				}
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber reader never finished")
	}
	if frames.Load() < 100 {
		t.Errorf("only %d well-formed frames observed", frames.Load())
	}
}

// TestCloseWithoutContextCancel pins the deadlock fixed in this change: a
// bare Close (no context cancellation) must stop Serve. Before the fix the
// context watcher goroutine never exited, so Serve and Close deadlocked on
// the handler WaitGroup.
func TestCloseWithoutContextCancel(t *testing.T) {
	sch, err := schema.ParseSpec("x=numeric[0,1]")
	if err != nil {
		t.Fatal(err)
	}
	brk, err := broker.New(sch, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	srv := NewServer(brk, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), ln) }()
	// Make sure the server is actually accepting before closing it.
	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(time.Second); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked without a context cancel")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}
	// Close is idempotent, and a closed server refuses to serve again.
	srv.Close()
	if err := srv.Serve(context.Background(), ln); err == nil {
		t.Error("Serve on a closed server must fail")
	}
}

// TestAcceptDuringCloseRace hammers connection acceptance against Close: a
// connection accepted while Close runs must either be served or dropped,
// never leaked past the Close barrier (which would trip the WaitGroup
// add-after-wait race under -race).
func TestAcceptDuringCloseRace(t *testing.T) {
	sch, err := schema.ParseSpec("x=numeric[0,1]")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		brk, err := broker.New(sch, broker.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(brk, nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(context.Background(), ln) }()

		var wg sync.WaitGroup
		stop := make(chan struct{})
		for d := 0; d < 4; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					conn, err := net.Dial("tcp", ln.Addr().String())
					if err != nil {
						return
					}
					_ = conn.Close()
				}
			}()
		}
		time.Sleep(time.Duration(i%5) * time.Millisecond)
		srv.Close()
		close(stop)
		wg.Wait()
		select {
		case <-serveDone:
		case <-time.After(5 * time.Second):
			t.Fatal("Serve did not return after racing Close")
		}
		brk.Close()
	}
}
