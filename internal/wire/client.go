package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client speaks the wire protocol. Notifications are demultiplexed from
// request responses: responses arrive on an internal reply queue in request
// order, notifications on Notifications(). Client is safe for concurrent
// use; requests are serialized.
type Client struct {
	conn net.Conn

	reqMu sync.Mutex // serializes request/response pairs

	mu      sync.Mutex
	closed  bool
	replies chan Response
	notifs  chan Response
	readErr error
	done    chan struct{}
}

// Dial connects to a GENAS daemon.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:    conn,
		replies: make(chan Response, 16),
		notifs:  make(chan Response, 256),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop splits the inbound stream into replies and notifications.
func (c *Client) readLoop() {
	defer close(c.done)
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		resp, err := DecodeResponse(sc.Bytes())
		if err != nil {
			continue // tolerate garbage lines
		}
		if resp.Type == MsgNotification {
			select {
			case c.notifs <- resp:
			default: // drop when the consumer lags; mirrors broker policy
			}
			continue
		}
		c.replies <- resp
	}
	c.mu.Lock()
	c.readErr = sc.Err()
	c.mu.Unlock()
	close(c.notifs)
}

// Notifications returns the inbound notification stream. The channel closes
// when the connection drops.
func (c *Client) Notifications() <-chan Response { return c.notifs }

// roundTrip sends one request and waits for its reply.
func (c *Client) roundTrip(req Request, timeout time.Duration) (Response, error) {
	b, err := EncodeLine(req)
	if err != nil {
		return Response{}, err
	}
	return c.roundTripLine(b, timeout)
}

// roundTripLine sends one pre-encoded frame and waits for its reply.
func (c *Client) roundTripLine(b []byte, timeout time.Duration) (Response, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	if timeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	//genas:allow locksafe the protocol has no request ids: reqMu serializes each request/response round trip by design
	if _, err := c.conn.Write(b); err != nil {
		return Response{}, fmt.Errorf("wire: write: %w", err)
	}
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	//genas:allow locksafe the reply wait is the round trip; timeout and done channels bound it
	select {
	case resp, ok := <-c.replies:
		if !ok {
			return Response{}, errors.New("wire: connection closed")
		}
		if resp.Type == MsgError {
			return resp, fmt.Errorf("wire: server: %s", resp.Error)
		}
		return resp, nil
	case <-c.done:
		return Response{}, errors.New("wire: connection closed")
	case <-timer:
		return Response{}, errors.New("wire: request timed out")
	}
}

// Ping round-trips a ping.
func (c *Client) Ping(timeout time.Duration) error {
	_, err := c.roundTrip(Request{Op: OpPing}, timeout)
	return err
}

// Subscribe registers a profile expression under id.
func (c *Client) Subscribe(id, profile string, priority float64, timeout time.Duration) error {
	_, err := c.roundTrip(Request{Op: OpSubscribe, ID: id, Profile: profile, Priority: priority}, timeout)
	return err
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(id string, timeout time.Duration) error {
	_, err := c.roundTrip(Request{Op: OpUnsubscribe, ID: id}, timeout)
	return err
}

// Publish posts an event given as attribute name → value; it returns the
// number of matched profiles.
func (c *Client) Publish(ev map[string]float64, timeout time.Duration) (int, error) {
	resp, err := c.roundTrip(Request{Op: OpPublish, Event: ev}, timeout)
	if err != nil {
		return 0, err
	}
	return resp.Matched, nil
}

// maxBatchFrame is the largest encoded publish_batch frame the client sends
// in one line: the server reads a frame as one line capped at 1 MiB, and an
// oversized line would kill the connection without an error frame. Batches
// that encode larger are split transparently.
const maxBatchFrame = 1<<20 - 64*1024

// PublishBatch posts several events as a batch and returns the per-event
// match counts, positionally aligned with evs. Batches whose encoding
// exceeds the server's frame cap are split into several publish_batch
// frames automatically. On error the counts gathered so far are returned
// alongside it as a lower bound on what was committed: the frame that
// errored may itself have been processed by the server (e.g. a response
// timeout after a successful write), so callers must not treat the count as
// exact when deciding to retry.
func (c *Client) PublishBatch(evs []map[string]float64, timeout time.Duration) ([]int, error) {
	if len(evs) == 0 {
		return nil, nil
	}
	line, err := EncodeLine(Request{Op: OpPublishBatch, Events: evs})
	if err != nil {
		return nil, err
	}
	if len(line) > maxBatchFrame {
		if len(evs) == 1 {
			return nil, fmt.Errorf("wire: event encodes to %d bytes, exceeding the %d-byte frame cap", len(line), maxBatchFrame)
		}
		// Split proportionally to the measured encoding, so each chunk is
		// encoded roughly once more; recursion only handles size skew
		// between events (recursive halving would re-encode every event
		// once per level).
		chunks := len(line)/maxBatchFrame + 1
		if chunks > len(evs) {
			chunks = len(evs)
		}
		per := (len(evs) + chunks - 1) / chunks
		counts := make([]int, 0, len(evs))
		for lo := 0; lo < len(evs); lo += per {
			hi := lo + per
			if hi > len(evs) {
				hi = len(evs)
			}
			part, err := c.PublishBatch(evs[lo:hi], timeout)
			counts = append(counts, part...)
			if err != nil {
				return counts, err
			}
		}
		return counts, nil
	}
	resp, err := c.roundTripLine(line, timeout)
	if err != nil {
		return nil, err
	}
	return resp.MatchedEach, nil
}

// Quench asks whether the region [lo,hi] of attr is unsubscribed.
func (c *Client) Quench(attr string, lo, hi float64, timeout time.Duration) (bool, error) {
	resp, err := c.roundTrip(Request{Op: OpQuench, Attr: attr, Lo: lo, Hi: hi}, timeout)
	if err != nil {
		return false, err
	}
	return resp.Quenched, nil
}

// Stats fetches broker statistics.
func (c *Client) Stats(timeout time.Duration) (*StatsPayload, error) {
	resp, err := c.roundTrip(Request{Op: OpStats}, timeout)
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, errors.New("wire: empty stats")
	}
	return resp.Stats, nil
}

// Profiles fetches the daemon's registered profiles.
func (c *Client) Profiles(timeout time.Duration) ([]ProfilePayload, error) {
	resp, err := c.roundTrip(Request{Op: OpProfiles}, timeout)
	if err != nil {
		return nil, err
	}
	return resp.Profiles, nil
}

// Schema fetches the daemon's attribute schema.
func (c *Client) Schema(timeout time.Duration) ([]AttrPayload, error) {
	resp, err := c.roundTrip(Request{Op: OpSchema}, timeout)
	if err != nil {
		return nil, err
	}
	return resp.Attributes, nil
}

// Close tears the connection down and waits for the reader to exit.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
