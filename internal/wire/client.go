package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Client speaks the wire protocol. Notifications are demultiplexed from
// request responses: responses arrive on an internal reply queue (v1: in
// request order; v2: matched by correlation id), notifications on
// Notifications(). Client is safe for concurrent use. On v1 requests are
// serialized; on v2 they pipeline.
type Client struct {
	conn  net.Conn
	proto Proto
	slots *slots
	depth int

	reqMu sync.Mutex // serializes v1 request/response pairs

	wmu  sync.Mutex // serializes v2 frame writes
	wbuf []byte     // reused v2 frame build buffer, guarded by wmu

	pendMu  sync.Mutex
	nextCid uint32
	pending map[uint32]chan Response

	mu      sync.Mutex
	names   []string // cached v1 schema attribute names (lazy)
	closed  bool
	replies chan Response
	notifs  chan Response
	readErr error
	done    chan struct{}
}

// DialConfig parameterizes DialWith. The zero value dials with no timeout,
// negotiates the protocol (v2 when the server supports it, v1 fallback
// otherwise) and pipelines up to DefaultPipelineDepth frames.
type DialConfig struct {
	// Timeout bounds the TCP dial and the protocol handshake.
	Timeout time.Duration
	// Proto pins the protocol generation: ProtoV1 skips negotiation,
	// ProtoV2 fails instead of falling back, ProtoAuto (zero) negotiates.
	Proto Proto
	// PipelineDepth caps in-flight v2 frames per batched publish
	// (0 = DefaultPipelineDepth, minimum 1).
	PipelineDepth int
}

// DefaultPipelineDepth is the v2 in-flight frame window used when
// DialConfig.PipelineDepth is zero.
const DefaultPipelineDepth = 32

// Dial connects to a GENAS daemon speaking protocol v1.
//
// Deprecated: use DialWith (or genas.Dial on the public surface), which
// negotiates protocol v2 where available. Dial stays v1-pinned so existing
// callers observe no behavior change.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialWith(addr, DialConfig{Timeout: timeout, Proto: ProtoV1})
}

// DialWith connects to a GENAS daemon. Unless cfg pins a protocol it sends
// a hello advertising v2 first: a v2 server confirms with the schema (whose
// attribute order defines the binary slot layout) and the connection
// switches to binary frames; anything else — an error frame from an older
// daemon, a dropped connection — falls back to a plain v1 redial.
func DialWith(addr string, cfg DialConfig) (*Client, error) {
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = DefaultPipelineDepth
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.Timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	if cfg.Proto == ProtoV1 {
		return newClientV1(conn), nil
	}

	rd := bufio.NewReaderSize(conn, 64*1024)
	resp, err := negotiateV2(conn, rd, cfg.Timeout)
	if err != nil {
		_ = conn.Close()
		if cfg.Proto == ProtoV2 {
			return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
		}
		// Auto mode: the server does not speak v2 (old daemon, pinned v1,
		// or a garbled handshake). Redial plain v1 — the handshake may have
		// left the first connection in an unknown state, a fresh one is
		// deterministic.
		conn, err = net.DialTimeout("tcp", addr, cfg.Timeout)
		if err != nil {
			return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
		}
		return newClientV1(conn), nil
	}

	names := make([]string, len(resp.Attributes))
	for i, a := range resp.Attributes {
		names[i] = a.Name
	}
	c := &Client{
		conn:    conn,
		proto:   ProtoV2,
		slots:   newSlots(names),
		depth:   cfg.PipelineDepth,
		pending: make(map[uint32]chan Response),
		notifs:  make(chan Response, 256),
		done:    make(chan struct{}),
	}
	go c.readLoopV2(rd)
	return c, nil
}

func newClientV1(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		proto:   ProtoV1,
		depth:   1,
		replies: make(chan Response, 16),
		notifs:  make(chan Response, 256),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// negotiateV2 runs the upgrade handshake on a fresh connection: one hello
// line out, one response line back. Any outcome other than an ok-hello
// confirming v2 is an error (the caller decides whether to fall back).
func negotiateV2(conn net.Conn, rd *bufio.Reader, timeout time.Duration) (Response, error) {
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
		defer func() { _ = conn.SetDeadline(time.Time{}) }()
	}
	hello, err := EncodeLine(Request{Op: OpHello, Proto: int(ProtoV2)})
	if err != nil {
		return Response{}, err
	}
	if _, err := conn.Write(hello); err != nil {
		return Response{}, fmt.Errorf("hello: %w", err)
	}
	line, err := ReadLine(rd)
	if err != nil {
		return Response{}, fmt.Errorf("hello: %w", err)
	}
	resp, err := DecodeResponse(line)
	if err != nil {
		return Response{}, fmt.Errorf("hello: %w", err)
	}
	if resp.Type != MsgOK || resp.Proto < int(ProtoV2) {
		if resp.Error != "" {
			return Response{}, fmt.Errorf("hello: server declined v2: %s", resp.Error)
		}
		return Response{}, errors.New("hello: server declined v2")
	}
	if len(resp.Attributes) == 0 {
		return Response{}, errors.New("hello: v2 confirmation carries no schema")
	}
	return resp, nil
}

// Proto reports the connection's negotiated protocol generation.
func (c *Client) Proto() Proto { return c.proto }

// readLoop splits the inbound v1 stream into replies and notifications.
func (c *Client) readLoop() {
	defer close(c.done)
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		resp, err := DecodeResponse(sc.Bytes())
		if err != nil {
			continue // tolerate garbage lines
		}
		if resp.Type == MsgNotification {
			select {
			case c.notifs <- resp:
			default: // drop when the consumer lags; mirrors broker policy
			}
			continue
		}
		c.replies <- resp
	}
	c.mu.Lock()
	c.readErr = sc.Err()
	c.mu.Unlock()
	close(c.notifs)
}

// readLoopV2 demultiplexes the inbound binary stream: notifications to
// Notifications() (payload in Response.Vals, schema slot order), responses
// to their correlation id's waiter. The frame buffer is reused across reads.
func (c *Client) readLoopV2(rd *bufio.Reader) {
	defer close(c.done)
	var buf []byte
	for {
		typ, payload, err := ReadFrame(rd, &buf)
		if err != nil {
			if err != io.EOF {
				c.mu.Lock()
				c.readErr = err
				c.mu.Unlock()
			}
			break
		}
		if typ == frameNotify {
			profile, seq, vals, err := decodeNotifyFrame(payload)
			if err != nil {
				c.mu.Lock()
				c.readErr = err
				c.mu.Unlock()
				break
			}
			select {
			case c.notifs <- Response{Type: MsgNotification, Profile: profile, Seq: seq, Vals: vals}:
			default: // drop when the consumer lags; mirrors broker policy
			}
			continue
		}
		cid, resp, err := decodeResponseFrame(typ, payload, c.slots)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			break
		}
		c.pendMu.Lock()
		ch := c.pending[cid]
		delete(c.pending, cid)
		c.pendMu.Unlock()
		if ch != nil {
			ch <- resp // cap 1: never blocks, survives abandoned waiters
		}
	}
	// Fail every in-flight request, then the notification stream.
	c.pendMu.Lock()
	for cid, ch := range c.pending {
		delete(c.pending, cid)
		close(ch)
	}
	c.pendMu.Unlock()
	close(c.notifs)
}

// Notifications returns the inbound notification stream. The channel closes
// when the connection drops. On a v2 connection the payload arrives in
// Response.Vals (schema slot order); EventMap converts when names are
// needed.
func (c *Client) Notifications() <-chan Response { return c.notifs }

// EventMap returns a notification's payload as attribute name → value,
// whichever protocol delivered it.
func (c *Client) EventMap(resp Response) map[string]float64 {
	if resp.Event != nil || c.slots == nil || resp.Vals == nil {
		return resp.Event
	}
	return c.slots.mapOf(resp.Vals)
}

// register allocates a correlation id and its reply channel.
func (c *Client) register() (uint32, chan Response) {
	ch := make(chan Response, 1)
	c.pendMu.Lock()
	c.nextCid++
	cid := c.nextCid
	c.pending[cid] = ch
	c.pendMu.Unlock()
	return cid, ch
}

func (c *Client) deregister(cid uint32) {
	c.pendMu.Lock()
	delete(c.pending, cid)
	c.pendMu.Unlock()
}

// await blocks until cid's response arrives, the connection drops, or the
// timeout fires.
func (c *Client) await(cid uint32, ch chan Response, timeout time.Duration) (Response, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	finish := func(resp Response, ok bool) (Response, error) {
		if !ok {
			return Response{}, errors.New("wire: connection closed")
		}
		if resp.Type == MsgError {
			return resp, fmt.Errorf("wire: server: %s", resp.Error)
		}
		return resp, nil
	}
	select {
	case resp, ok := <-ch:
		return finish(resp, ok)
	case <-c.done:
		// The reader may have parked the response just before exiting.
		select {
		case resp, ok := <-ch:
			return finish(resp, ok)
		default:
		}
		return Response{}, errors.New("wire: connection closed")
	case <-timer:
		c.deregister(cid)
		return Response{}, errors.New("wire: request timed out")
	}
}

// roundTrip sends one request and waits for its reply.
func (c *Client) roundTrip(req Request, timeout time.Duration) (Response, error) {
	if c.proto >= ProtoV2 {
		return c.roundTripV2(req, timeout)
	}
	b, err := EncodeLine(req)
	if err != nil {
		return Response{}, err
	}
	return c.roundTripLine(b, timeout)
}

// roundTripV2 sends one request as a binary frame and waits for the frame
// carrying its correlation id.
func (c *Client) roundTripV2(req Request, timeout time.Duration) (Response, error) {
	cid, ch := c.register()
	c.wmu.Lock()
	b, err := appendRequestFrame(c.wbuf[:0], cid, req, c.slots)
	if err == nil {
		c.wbuf = b
		if len(b) > MaxFrame+4 {
			err = fmt.Errorf("%w: request encodes to %d bytes", ErrFrameTooBig, len(b))
		} else {
			if timeout > 0 {
				_ = c.conn.SetWriteDeadline(time.Now().Add(timeout))
			}
			//genas:allow locksafe wmu exists to serialize frame writes on the shared conn; nothing else is ever taken under it
			_, err = c.conn.Write(b)
			if err != nil {
				err = fmt.Errorf("wire: write: %w", err)
			}
		}
	}
	c.wmu.Unlock()
	if err != nil {
		c.deregister(cid)
		return Response{}, err
	}
	return c.await(cid, ch, timeout)
}

// roundTripLine sends one pre-encoded v1 line and waits for its reply.
func (c *Client) roundTripLine(b []byte, timeout time.Duration) (Response, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	if timeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	//genas:allow locksafe v1 has no request ids: reqMu serializes each request/response round trip by design
	if _, err := c.conn.Write(b); err != nil {
		return Response{}, fmt.Errorf("wire: write: %w", err)
	}
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	//genas:allow locksafe the reply wait is the round trip; timeout and done channels bound it
	select {
	case resp, ok := <-c.replies:
		if !ok {
			return Response{}, errors.New("wire: connection closed")
		}
		if resp.Type == MsgError {
			return resp, fmt.Errorf("wire: server: %s", resp.Error)
		}
		return resp, nil
	case <-c.done:
		return Response{}, errors.New("wire: connection closed")
	case <-timer:
		return Response{}, errors.New("wire: request timed out")
	}
}

// Ping round-trips a ping.
func (c *Client) Ping(timeout time.Duration) error {
	_, err := c.roundTrip(Request{Op: OpPing}, timeout)
	return err
}

// Subscribe registers a profile expression under id.
func (c *Client) Subscribe(id, profile string, priority float64, timeout time.Duration) error {
	_, err := c.roundTrip(Request{Op: OpSubscribe, ID: id, Profile: profile, Priority: priority}, timeout)
	return err
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(id string, timeout time.Duration) error {
	_, err := c.roundTrip(Request{Op: OpUnsubscribe, ID: id}, timeout)
	return err
}

// Publish posts an event given as attribute name → value; it returns the
// number of matched profiles.
func (c *Client) Publish(ev map[string]float64, timeout time.Duration) (int, error) {
	resp, err := c.roundTrip(Request{Op: OpPublish, Event: ev}, timeout)
	if err != nil {
		return 0, err
	}
	return resp.Matched, nil
}

// attrNames resolves the schema attribute order, fetching it once on v1
// (v2 learned it during the handshake).
func (c *Client) attrNames(timeout time.Duration) ([]string, error) {
	if c.slots != nil {
		return c.slots.names, nil
	}
	c.mu.Lock()
	names := c.names
	c.mu.Unlock()
	if names != nil {
		return names, nil
	}
	attrs, err := c.Schema(timeout)
	if err != nil {
		return nil, err
	}
	names = make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = a.Name
	}
	c.mu.Lock()
	c.names = names
	c.mu.Unlock()
	return names, nil
}

// PublishVals posts one event as a schema-order value vector. On v2 this is
// the zero-copy hot path: one small binary frame, vals reusable on return.
// On v1 it degrades to Publish with the attribute-name map the JSON codec
// requires (the schema is fetched once, lazily).
func (c *Client) PublishVals(vals []float64, timeout time.Duration) (int, error) {
	if c.proto < ProtoV2 {
		names, err := c.attrNames(timeout)
		if err != nil {
			return 0, err
		}
		if len(vals) != len(names) {
			return 0, fmt.Errorf("wire: %d values for %d attributes", len(vals), len(names))
		}
		ev := make(map[string]float64, len(names))
		for i, v := range vals {
			ev[names[i]] = v
		}
		return c.Publish(ev, timeout)
	}
	cid, ch := c.register()
	c.wmu.Lock()
	c.wbuf = appendPublishFrame(c.wbuf[:0], cid, vals)
	if timeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	//genas:allow locksafe wmu exists to serialize frame writes on the shared conn; nothing else is ever taken under it
	_, err := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if err != nil {
		c.deregister(cid)
		return 0, fmt.Errorf("wire: write: %w", err)
	}
	resp, err := c.await(cid, ch, timeout)
	if err != nil {
		return 0, err
	}
	return resp.Matched, nil
}

// PublishValsBatch posts a batch of schema-order value vectors and returns
// per-event match counts. On v2 the batch is chunked into frames that
// pipeline up to the connection's depth — later chunks are on the wire
// while earlier acknowledgements are still in flight. On v1 it degrades to
// PublishBatch. Like PublishBatch, on error the counts gathered so far
// accompany it as a lower bound on what was committed.
func (c *Client) PublishValsBatch(batch [][]float64, timeout time.Duration) ([]int, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	if c.proto < ProtoV2 {
		names, err := c.attrNames(timeout)
		if err != nil {
			return nil, err
		}
		evs := make([]map[string]float64, len(batch))
		for i, vals := range batch {
			if len(vals) != len(names) {
				return nil, fmt.Errorf("wire: event %d: %d values for %d attributes", i, len(vals), len(names))
			}
			ev := make(map[string]float64, len(names))
			for j, v := range vals {
				ev[names[j]] = v
			}
			evs[i] = ev
		}
		return c.PublishBatch(evs, timeout)
	}

	// Chunk so the window has depth frames to pipeline, each frame well
	// under the size cap (one event costs 8·N+4 payload bytes).
	per := (len(batch) + c.depth - 1) / c.depth
	if per < 8 {
		per = 8
	}
	if maxPer := (MaxFrame - 16) / (8*len(c.slots.names) + 4); per > maxPer && maxPer > 0 {
		per = maxPer
	}

	type inflight struct {
		cid uint32
		ch  chan Response
		n   int
	}
	var window []inflight
	counts := make([]int, 0, len(batch))
	collect := func() error {
		w := window[0]
		window = window[1:]
		resp, err := c.await(w.cid, w.ch, timeout)
		if err != nil {
			return err
		}
		if len(resp.MatchedEach) != w.n {
			return fmt.Errorf("wire: batch ack counts %d events, sent %d", len(resp.MatchedEach), w.n)
		}
		counts = append(counts, resp.MatchedEach...)
		return nil
	}
	fail := func(err error) ([]int, error) {
		for _, w := range window {
			c.deregister(w.cid)
		}
		return counts, err
	}
	for lo := 0; lo < len(batch); lo += per {
		hi := min(lo+per, len(batch))
		cid, ch := c.register()
		c.wmu.Lock()
		c.wbuf = appendPublishBatchFrame(c.wbuf[:0], cid, batch[lo:hi])
		if timeout > 0 {
			_ = c.conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		//genas:allow locksafe wmu exists to serialize frame writes on the shared conn; nothing else is ever taken under it
		_, err := c.conn.Write(c.wbuf)
		c.wmu.Unlock()
		if err != nil {
			c.deregister(cid)
			return fail(fmt.Errorf("wire: write: %w", err))
		}
		window = append(window, inflight{cid, ch, hi - lo})
		if len(window) >= c.depth {
			if err := collect(); err != nil {
				return fail(err)
			}
		}
	}
	for len(window) > 0 {
		if err := collect(); err != nil {
			return fail(err)
		}
	}
	return counts, nil
}

// maxBatchFrame is the largest encoded publish_batch frame the client sends
// in one line: the server reads a frame as one line capped at 1 MiB, and an
// oversized line would kill the connection without an error frame. Batches
// that encode larger are split transparently.
const maxBatchFrame = 1<<20 - 64*1024

// PublishBatch posts several events as a batch and returns the per-event
// match counts, positionally aligned with evs. Batches whose encoding
// exceeds the server's frame cap are split into several publish_batch
// frames automatically. On error the counts gathered so far are returned
// alongside it as a lower bound on what was committed: the frame that
// errored may itself have been processed by the server (e.g. a response
// timeout after a successful write), so callers must not treat the count as
// exact when deciding to retry.
func (c *Client) PublishBatch(evs []map[string]float64, timeout time.Duration) ([]int, error) {
	if len(evs) == 0 {
		return nil, nil
	}
	line, err := EncodeLine(Request{Op: OpPublishBatch, Events: evs})
	if err != nil {
		return nil, err
	}
	if len(line) > maxBatchFrame {
		if len(evs) == 1 {
			return nil, fmt.Errorf("wire: event encodes to %d bytes, exceeding the %d-byte frame cap", len(line), maxBatchFrame)
		}
		// Split proportionally to the measured encoding, so each chunk is
		// encoded roughly once more; recursion only handles size skew
		// between events (recursive halving would re-encode every event
		// once per level).
		chunks := len(line)/maxBatchFrame + 1
		if chunks > len(evs) {
			chunks = len(evs)
		}
		per := (len(evs) + chunks - 1) / chunks
		counts := make([]int, 0, len(evs))
		for lo := 0; lo < len(evs); lo += per {
			hi := lo + per
			if hi > len(evs) {
				hi = len(evs)
			}
			part, err := c.PublishBatch(evs[lo:hi], timeout)
			counts = append(counts, part...)
			if err != nil {
				return counts, err
			}
		}
		return counts, nil
	}
	// The JSON rendering always dominates the binary one, so a batch that
	// fits a v1 line fits a v2 frame too.
	if c.proto >= ProtoV2 {
		resp, err := c.roundTripV2(Request{Op: OpPublishBatch, Events: evs}, timeout)
		if err != nil {
			return nil, err
		}
		return resp.MatchedEach, nil
	}
	resp, err := c.roundTripLine(line, timeout)
	if err != nil {
		return nil, err
	}
	return resp.MatchedEach, nil
}

// Quench asks whether the region [lo,hi] of attr is unsubscribed.
func (c *Client) Quench(attr string, lo, hi float64, timeout time.Duration) (bool, error) {
	resp, err := c.roundTrip(Request{Op: OpQuench, Attr: attr, Lo: lo, Hi: hi}, timeout)
	if err != nil {
		return false, err
	}
	return resp.Quenched, nil
}

// Stats fetches broker statistics.
func (c *Client) Stats(timeout time.Duration) (*StatsPayload, error) {
	resp, err := c.roundTrip(Request{Op: OpStats}, timeout)
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, errors.New("wire: empty stats")
	}
	return resp.Stats, nil
}

// Profiles fetches the daemon's registered profiles.
func (c *Client) Profiles(timeout time.Duration) ([]ProfilePayload, error) {
	resp, err := c.roundTrip(Request{Op: OpProfiles}, timeout)
	if err != nil {
		return nil, err
	}
	return resp.Profiles, nil
}

// Schema fetches the daemon's attribute schema.
func (c *Client) Schema(timeout time.Duration) ([]AttrPayload, error) {
	resp, err := c.roundTrip(Request{Op: OpSchema}, timeout)
	if err != nil {
		return nil, err
	}
	return resp.Attributes, nil
}

// Close tears the connection down and waits for the reader to exit.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
