package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func frameReader(b []byte) *bufio.Reader { return bufio.NewReader(bytes.NewReader(b)) }

// TestReadFrameEdges pins the framing layer's error contract: clean EOF only
// at a frame boundary, sentinel errors for truncation, zero length and the
// size cap, and payload buffer reuse across calls.
func TestReadFrameEdges(t *testing.T) {
	var buf []byte

	// A well-formed frame round-trips and a second read hits clean EOF.
	enc := appendPublishFrame(nil, 7, []float64{1.5, -2})
	rd := frameReader(enc)
	typ, payload, err := ReadFrame(rd, &buf)
	if err != nil || typ != framePublish {
		t.Fatalf("ReadFrame = %v type 0x%02x", err, typ)
	}
	cid, vals, err := decodePublishFrame(payload, nil)
	if err != nil || cid != 7 || len(vals) != 2 || vals[0] != 1.5 || vals[1] != -2 {
		t.Fatalf("decodePublishFrame = %d %v %v", cid, vals, err)
	}
	if _, _, err := ReadFrame(rd, &buf); err != io.EOF {
		t.Fatalf("EOF at frame boundary = %v, want io.EOF", err)
	}

	// The payload buffer is reused: a second smaller frame must not grow it.
	buf = buf[:0]
	rd = frameReader(appendOKFrame(nil, 1, 3))
	before := cap(buf)
	if before == 0 {
		t.Fatal("first read left no capacity to reuse")
	}
	if _, _, err := ReadFrame(rd, &buf); err != nil {
		t.Fatal(err)
	}
	if cap(buf) != before {
		t.Errorf("payload buffer reallocated: cap %d → %d", before, cap(buf))
	}

	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"truncated length prefix", []byte{0, 0}, ErrFrameTruncated},
		{"truncated payload", append([]byte{0, 0, 0, 10}, 0x01, 1, 2, 3), ErrFrameTruncated},
		{"zero length", []byte{0, 0, 0, 0}, ErrBadFrame},
		{"oversized length", []byte{0xFF, 0xFF, 0xFF, 0xFF}, ErrFrameTooBig},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFrame(frameReader(tc.raw), &buf)
			if !errors.Is(err, tc.want) {
				t.Errorf("ReadFrame(%v) = %v, want %v", tc.raw, err, tc.want)
			}
		})
	}
}

// TestReadLine pins the Scanner-compatible v1 line reader the upgrade path
// depends on: terminator trimming (LF and CRLF), a final unterminated line
// before EOF, lines spanning the reader's internal buffer, and the size cap.
func TestReadLine(t *testing.T) {
	rd := bufio.NewReaderSize(strings.NewReader("alpha\r\nbeta\ngamma"), 16)
	for _, want := range []string{"alpha", "beta", "gamma"} {
		line, err := ReadLine(rd)
		if err != nil || string(line) != want {
			t.Fatalf("ReadLine = %q %v, want %q", line, err, want)
		}
	}
	if _, err := ReadLine(rd); err != io.EOF {
		t.Fatalf("after last line: %v, want io.EOF", err)
	}

	// A line much longer than the reader's buffer accumulates correctly.
	long := strings.Repeat("x", 4096)
	rd = bufio.NewReaderSize(strings.NewReader(long+"\nrest\n"), 16)
	line, err := ReadLine(rd)
	if err != nil || string(line) != long {
		t.Fatalf("long line: len %d err %v", len(line), err)
	}
	if line, err = ReadLine(rd); err != nil || string(line) != "rest" {
		t.Fatalf("line after long line = %q %v", line, err)
	}

	// A line over MaxFrame is rejected with the size sentinel.
	rd = bufio.NewReaderSize(io.MultiReader(
		strings.NewReader(strings.Repeat("y", MaxFrame+2)),
		strings.NewReader("\n"),
	), 16)
	if _, err := ReadLine(rd); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized line = %v, want ErrFrameTooBig", err)
	}
}

// TestHotFrameRoundTrips drives every binary frame shape through its
// append/decode pair.
func TestHotFrameRoundTrips(t *testing.T) {
	read := func(t *testing.T, enc []byte) (byte, []byte) {
		t.Helper()
		var buf []byte
		typ, payload, err := ReadFrame(frameReader(enc), &buf)
		if err != nil {
			t.Fatal(err)
		}
		return typ, payload
	}

	t.Run("notify", func(t *testing.T) {
		vals := []float64{math.Inf(1), -0.0, 42}
		typ, payload := read(t, appendNotifyFrame(nil, "hot", 99, vals))
		if typ != frameNotify {
			t.Fatalf("type 0x%02x", typ)
		}
		profile, seq, got, err := decodeNotifyFrame(payload)
		if err != nil || profile != "hot" || seq != 99 {
			t.Fatalf("decode = %q %d %v", profile, seq, err)
		}
		for i, v := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(v) {
				t.Errorf("val[%d] = %v, want %v", i, got[i], v)
			}
		}
	})

	t.Run("ok-batch", func(t *testing.T) {
		typ, payload := read(t, appendOKBatchFrame(nil, 5, []int{0, 3, 1}))
		sl := newSlots([]string{"a"})
		cid, resp, err := decodeResponseFrame(typ, payload, sl)
		if err != nil || cid != 5 {
			t.Fatal(err)
		}
		if resp.Matched != 4 || len(resp.MatchedEach) != 3 || resp.MatchedEach[1] != 3 {
			t.Errorf("resp = %+v", resp)
		}
	})

	t.Run("err", func(t *testing.T) {
		typ, payload := read(t, appendErrFrame(nil, 8, OpPublish, "out of domain"))
		cid, resp, err := decodeResponseFrame(typ, payload, newSlots(nil))
		if err != nil || cid != 8 || resp.Type != MsgError || resp.Op != OpPublish || resp.Error != "out of domain" {
			t.Errorf("err frame = %d %+v %v", cid, resp, err)
		}
	})

	t.Run("peer", func(t *testing.T) {
		typ, payload := read(t, AppendForwardFrame(nil, []float64{7, 8}))
		if typ != FrameForward {
			t.Fatalf("type 0x%02x", typ)
		}
		vals, err := DecodeForwardFrame(payload, make([]float64, 0, 2))
		if err != nil || len(vals) != 2 || vals[0] != 7 {
			t.Fatalf("forward = %v %v", vals, err)
		}

		typ, payload = read(t, AppendRouteAddFrame(nil, "hot", "profile(t >= 3)", 1.5))
		if typ != FrameRouteAdd {
			t.Fatalf("type 0x%02x", typ)
		}
		id, profile, prio, err := DecodeRouteAddFrame(payload)
		if err != nil || id != "hot" || profile != "profile(t >= 3)" || prio != 1.5 {
			t.Fatalf("route_add = %q %q %g %v", id, profile, prio, err)
		}

		typ, payload = read(t, AppendRouteWithdrawFrame(nil, "hot"))
		if typ != FrameRouteWithdraw {
			t.Fatalf("type 0x%02x", typ)
		}
		if id, err := DecodeRouteWithdrawFrame(payload); err != nil || id != "hot" {
			t.Fatalf("route_withdraw = %q %v", id, err)
		}
	})

	// Malformed payloads fail with ErrBadFrame, never panic.
	t.Run("malformed payloads", func(t *testing.T) {
		sl := newSlots([]string{"a", "b"})
		if _, _, err := decodePublishFrame([]byte{0, 0}, nil); !errors.Is(err, ErrBadFrame) {
			t.Errorf("short publish = %v", err)
		}
		// A vector count that promises more floats than the payload holds.
		bad := appendU32(appendU32(nil, 1), 1000)
		if _, _, err := decodePublishFrame(bad, nil); !errors.Is(err, ErrBadFrame) {
			t.Errorf("overlong vector count = %v", err)
		}
		// A string length pointing past the payload end.
		if _, _, _, err := DecodeRouteAddFrame(appendU32(nil, 1<<30)); !errors.Is(err, ErrBadFrame) {
			t.Errorf("bad string length = %v", err)
		}
		// Trailing garbage after a complete payload.
		trail := append(appendU32(appendU32(nil, 1), 0), 0xAA)
		if _, _, err := decodePublishFrame(trail, nil); !errors.Is(err, ErrBadFrame) {
			t.Errorf("trailing bytes = %v", err)
		}
		// Unknown frame types on both decode surfaces.
		if _, _, err := decodeRequestFrame(0x7F, nil, sl); !errors.Is(err, ErrBadFrame) {
			t.Errorf("unknown request type = %v", err)
		}
		if _, _, err := decodeResponseFrame(0x7F, nil, sl); !errors.Is(err, ErrBadFrame) {
			t.Errorf("unknown response type = %v", err)
		}
	})
}

// crossCodecSlots is the schema both codec directions share in the
// cross-codec property tests.
var crossCodecSlots = newSlots([]string{"temperature", "humidity"})

// TestCrossCodecRequests is the v1↔v2 property test: every v1 request shape —
// hot binary encodings, peer frames and the JSON control fallback — must
// survive appendRequestFrame → ReadFrame → decodeRequestFrame with identical
// meaning (JSON equality) and, on client frames, an intact correlation id.
func TestCrossCodecRequests(t *testing.T) {
	reqs := []Request{
		{Op: OpPing},
		{Op: OpSubscribe, ID: "hot", Profile: "profile(temperature >= 35)", Priority: 2},
		{Op: OpUnsubscribe, ID: "hot"},
		{Op: OpPublish, Event: map[string]float64{"temperature": 41, "humidity": 10}},
		// Partial event: must fall back to a control frame (server defaults).
		{Op: OpPublish, Event: map[string]float64{"temperature": 41}},
		{Op: OpPublishBatch, Events: []map[string]float64{
			{"temperature": 1, "humidity": 2},
			{"temperature": 3, "humidity": 4},
		}},
		// One partial member degrades the whole batch to a control frame.
		{Op: OpPublishBatch, Events: []map[string]float64{
			{"temperature": 1, "humidity": 2},
			{"humidity": 4},
		}},
		{Op: OpQuench, Attr: "temperature", Lo: -30, Hi: 0},
		{Op: OpStats},
		{Op: OpSchema},
		{Op: OpProfiles},
		{Op: OpHello, Node: "A", Schema: "schema(temperature:[-30,50])", Proto: 2},
		{Op: OpForward, Event: map[string]float64{"temperature": 41, "humidity": 10}},
		{Op: OpRouteAdd, ID: "hot", Profile: "profile(temperature >= 35)", Priority: 1.5},
		{Op: OpRouteWithdraw, ID: "hot"},
	}
	peer := map[Op]bool{OpForward: true, OpRouteAdd: true, OpRouteWithdraw: true}
	for _, req := range reqs {
		t.Run(string(req.Op), func(t *testing.T) {
			enc, err := appendRequestFrame(nil, 42, req, crossCodecSlots)
			if err != nil {
				t.Fatal(err)
			}
			var buf []byte
			typ, payload, err := ReadFrame(frameReader(enc), &buf)
			if err != nil {
				t.Fatal(err)
			}
			cid, got, err := decodeRequestFrame(typ, payload, crossCodecSlots)
			if err != nil {
				t.Fatal(err)
			}
			if peer[req.Op] {
				if cid != 0 {
					t.Errorf("peer frame carried cid %d", cid)
				}
			} else if cid != 42 {
				t.Errorf("cid = %d, want 42", cid)
			}
			a, _ := json.Marshal(req)
			b, _ := json.Marshal(got)
			if !bytes.Equal(a, b) {
				t.Errorf("request changed across codecs:\n v1: %s\n v2: %s", a, b)
			}
		})
	}
}

// TestCrossCodecResponses is the response-direction property test.
func TestCrossCodecResponses(t *testing.T) {
	resps := []Response{
		{Type: MsgOK, Op: OpPublish, Matched: 3},
		{Type: MsgOK, Op: OpPublishBatch, Matched: 4, MatchedEach: []int{0, 3, 1}},
		{Type: MsgError, Op: OpSubscribe, Error: "missing id"},
		{Type: MsgNotification, Profile: "hot", Seq: 12,
			Event: map[string]float64{"temperature": 41, "humidity": 10}},
		{Type: MsgPong},
		{Type: MsgOK, Op: OpQuench, Quenched: true},
		{Type: MsgStats, Stats: &StatsPayload{Subscriptions: 2, Published: 9, ProtoV2Peers: 1}},
		{Type: MsgSchema, Attributes: []AttrPayload{{Name: "temperature", Kind: "numeric", Lo: -30, Hi: 50}}},
		{Type: MsgOK, Op: OpProfiles, Profiles: []ProfilePayload{{ID: "hot", Expr: "profile(temperature >= 35)"}}},
		{Type: MsgOK, Op: OpHello, Proto: 2},
	}
	for _, resp := range resps {
		t.Run(string(resp.Type)+"/"+string(resp.Op), func(t *testing.T) {
			enc, err := appendResponseFrame(nil, 7, resp, crossCodecSlots)
			if err != nil {
				t.Fatal(err)
			}
			var buf []byte
			typ, payload, err := ReadFrame(frameReader(enc), &buf)
			if err != nil {
				t.Fatal(err)
			}
			cid, got, err := decodeResponseFrame(typ, payload, crossCodecSlots)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Type != MsgNotification && cid != 7 {
				t.Errorf("cid = %d, want 7", cid)
			}
			a, _ := json.Marshal(resp)
			b, _ := json.Marshal(got)
			if !bytes.Equal(a, b) {
				t.Errorf("response changed across codecs:\n v1: %s\n v2: %s", a, b)
			}
		})
	}
}

// TestSlotsVectorOf pins the strictness of the map→vector conversion: only
// exact schema coverage may take the binary path.
func TestSlotsVectorOf(t *testing.T) {
	sl := newSlots([]string{"a", "b"})
	if vec, ok := sl.vectorOf(map[string]float64{"a": 1, "b": 2}); !ok || vec[0] != 1 || vec[1] != 2 {
		t.Errorf("full map = %v %v", vec, ok)
	}
	if _, ok := sl.vectorOf(map[string]float64{"a": 1}); ok {
		t.Error("partial map must not vectorize")
	}
	if _, ok := sl.vectorOf(map[string]float64{"a": 1, "c": 2}); ok {
		t.Error("unknown attribute must not vectorize")
	}
	if m := sl.mapOf([]float64{1, 2}); m["a"] != 1 || m["b"] != 2 {
		t.Errorf("mapOf = %v", m)
	}
}
