// Package stats implements the statistics subsystem of the prototype
// (paper §4.2): counters for events, attributes, operators and values, a
// running-moments accumulator with the precision-based stopping rule used by
// the test scenarios TV1/TV2 ("event tests until 95% precision for average
// #operations is reached"), and operation accounting for matchers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Counters tallies observations by string key. It backs the paper's
// "statistic objects with counters for events, attributes, operators, and
// values"; for tests the counters can be preloaded to simulate a
// distribution without posting events. Counters is safe for concurrent use.
type Counters struct {
	mu sync.Mutex
	m  map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]uint64)}
}

// Inc adds one to key.
func (c *Counters) Inc(key string) { c.Add(key, 1) }

// Add adds delta to key.
func (c *Counters) Add(key string, delta uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] += delta
}

// Set overwrites key (the "manipulate the counters in order to simulate a
// distribution" hook).
func (c *Counters) Set(key string, v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// Get returns the current count of key.
func (c *Counters) Get(key string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[key]
}

// Total sums all counters.
func (c *Counters) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t uint64
	for _, v := range c.m {
		t += v
	}
	return t
}

// Snapshot returns a sorted copy of the counters.
func (c *Counters) Snapshot() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, len(c.m))
	for k, v := range c.m {
		out = append(out, Entry{Key: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Entry is one counter in a snapshot.
type Entry struct {
	Key   string
	Count uint64
}

// --- Running moments with precision stopping ---------------------------------

// Running accumulates mean and variance online (Welford) and answers the
// stopping question of TV1/TV2: has the confidence interval for the mean
// shrunk below the requested relative precision?
type Running struct {
	n    uint64
	mean float64
	m2   float64
}

// Observe adds a sample.
func (r *Running) Observe(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the sample count.
func (r *Running) N() uint64 { return r.n }

// Merge folds another accumulator into r as if every sample of o had been
// observed by r (Chan et al. parallel moments). The sharded engine keeps one
// accumulator per shard and merges them on Summary.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	r.n = n
}

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// Var returns the sample variance (0 for fewer than two samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// z95 is the 97.5% normal quantile for two-sided 95% intervals.
const z95 = 1.959963984540054

// HalfWidth95 returns the half-width of the 95% normal-approximation
// confidence interval for the mean.
func (r *Running) HalfWidth95() float64 {
	if r.n < 2 {
		return math.Inf(1)
	}
	return z95 * r.Std() / math.Sqrt(float64(r.n))
}

// PreciseEnough reports whether the 95% confidence half-width is at most
// rel·|mean|. This is the paper's "until 95% precision for average
// #operations is reached" rule, read as a 95% CI within rel of the mean.
// A minimum of minN samples guards against spuriously early stops.
func (r *Running) PreciseEnough(rel float64, minN uint64) bool {
	if r.n < minN || r.n < 2 {
		return false
	}
	if r.mean == 0 {
		return r.m2 == 0
	}
	return r.HalfWidth95() <= rel*math.Abs(r.mean)
}

// String renders mean ± half-width (n).
func (r *Running) String() string {
	return fmt.Sprintf("%.4f ±%.4f (n=%d)", r.Mean(), r.HalfWidth95(), r.n)
}

// --- Operation accounting ------------------------------------------------------

// OpAccount aggregates matcher operation counts across matches; it is safe
// for concurrent use and cheap enough for the broker's publish path.
type OpAccount struct {
	mu      sync.Mutex
	events  uint64
	ops     uint64
	matches uint64
	running Running
}

// Record logs one match call: the operations spent and the number of
// profiles matched.
func (a *OpAccount) Record(ops, matched int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events++
	a.ops += uint64(ops)
	a.matches += uint64(matched)
	a.running.Observe(float64(ops))
}

// Summary is a snapshot of the account.
type Summary struct {
	Events       uint64
	Ops          uint64
	Matches      uint64
	MeanOps      float64
	HalfWidth95  float64
	MeanMatches  float64
	OpsPerNotify float64
}

// Summary returns the current aggregate view.
func (a *OpAccount) Summary() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Summary{
		Events:      a.events,
		Ops:         a.ops,
		Matches:     a.matches,
		MeanOps:     a.running.Mean(),
		HalfWidth95: a.running.HalfWidth95(),
	}
	if a.events > 0 {
		s.MeanMatches = float64(a.matches) / float64(a.events)
	}
	if a.matches > 0 {
		s.OpsPerNotify = float64(a.ops) / float64(a.matches)
	}
	return s
}

// Reset clears the account.
func (a *OpAccount) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events, a.ops, a.matches = 0, 0, 0
	a.running = Running{}
}

// MergeSummary aggregates several accounts into one Summary, as if every
// event had been recorded on a single account. The sharded engine stripes
// recording across accounts to keep the publish path uncontended and merges
// here on demand.
func MergeSummary(accs []*OpAccount) Summary {
	var events, ops, matches uint64
	var running Running
	for _, a := range accs {
		a.mu.Lock()
		events += a.events
		ops += a.ops
		matches += a.matches
		running.Merge(a.running)
		a.mu.Unlock()
	}
	s := Summary{
		Events:      events,
		Ops:         ops,
		Matches:     matches,
		MeanOps:     running.Mean(),
		HalfWidth95: running.HalfWidth95(),
	}
	if events > 0 {
		s.MeanMatches = float64(matches) / float64(events)
	}
	if matches > 0 {
		s.OpsPerNotify = float64(ops) / float64(matches)
	}
	return s
}
