package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("events")
	c.Add("events", 4)
	c.Set("values:42", 17)
	if c.Get("events") != 5 {
		t.Errorf("events = %d", c.Get("events"))
	}
	if c.Get("missing") != 0 {
		t.Error("missing key must read 0")
	}
	if c.Total() != 22 {
		t.Errorf("total = %d", c.Total())
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap[0].Key != "events" || snap[1].Key != "values:42" {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc("k")
			}
		}()
	}
	wg.Wait()
	if c.Get("k") != 8000 {
		t.Errorf("k = %d, want 8000", c.Get("k"))
	}
}

func TestRunningMoments(t *testing.T) {
	var r Running
	if r.PreciseEnough(0.05, 1) {
		t.Error("empty accumulator cannot be precise")
	}
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		r.Observe(v)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", r.Mean())
	}
	// Sample variance of the classic dataset: Σ(x−5)² = 32, /7.
	if math.Abs(r.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %g, want %g", r.Var(), 32.0/7)
	}
}

func TestPrecisionStopping(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var r Running
	n := 0
	for !r.PreciseEnough(0.05, 100) {
		r.Observe(10 + rng.NormFloat64())
		n++
		if n > 1_000_000 {
			t.Fatal("stopping rule never triggered")
		}
	}
	if n < 100 {
		t.Errorf("stopped after %d < minN samples", n)
	}
	// With σ=1, μ=10 and rel=0.05 the rule needs roughly (1.96/0.5)² ≈ 16
	// samples, so the minN=100 floor dominates.
	if n > 5000 {
		t.Errorf("stopped only after %d samples", n)
	}
	// Constant observations: precise as soon as minN reached.
	var c Running
	for i := 0; i < 10; i++ {
		c.Observe(3)
	}
	if !c.PreciseEnough(0.01, 10) {
		t.Error("constant stream must be precise")
	}
}

func TestZeroMeanPrecision(t *testing.T) {
	var r Running
	for i := 0; i < 100; i++ {
		r.Observe(0)
	}
	if !r.PreciseEnough(0.05, 10) {
		t.Error("all-zero stream must count as precise")
	}
	r.Observe(1) // perturb: mean ≠ 0, variance > 0
	if r.Mean() == 0 {
		t.Error("mean should move")
	}
}

func TestOpAccount(t *testing.T) {
	var a OpAccount
	a.Record(5, 2)
	a.Record(7, 0)
	a.Record(3, 1)
	s := a.Summary()
	if s.Events != 3 || s.Ops != 15 || s.Matches != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.MeanOps-5) > 1e-12 {
		t.Errorf("mean ops = %g", s.MeanOps)
	}
	if math.Abs(s.MeanMatches-1) > 1e-12 {
		t.Errorf("mean matches = %g", s.MeanMatches)
	}
	if math.Abs(s.OpsPerNotify-5) > 1e-12 {
		t.Errorf("ops/notify = %g", s.OpsPerNotify)
	}
	a.Reset()
	if a.Summary().Events != 0 {
		t.Error("reset failed")
	}
}

func TestOpAccountConcurrent(t *testing.T) {
	var a OpAccount
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a.Record(2, 1)
			}
		}()
	}
	wg.Wait()
	s := a.Summary()
	if s.Events != 2000 || s.Ops != 4000 {
		t.Errorf("summary = %+v", s)
	}
}

// TestRunningMerge: merging striped accumulators reproduces the moments of a
// single accumulator over the union of samples.
func TestRunningMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var whole Running
	parts := make([]Running, 4)
	for i := 0; i < 2000; i++ {
		x := rng.NormFloat64()*3 + 10
		whole.Observe(x)
		parts[i%len(parts)].Observe(x)
	}
	var merged Running
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N() != whole.N() {
		t.Fatalf("N = %d, want %d", merged.N(), whole.N())
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("mean = %v, want %v", merged.Mean(), whole.Mean())
	}
	if math.Abs(merged.Var()-whole.Var()) > 1e-6 {
		t.Errorf("var = %v, want %v", merged.Var(), whole.Var())
	}
	// Merging into or from an empty accumulator is the identity.
	var empty Running
	empty.Merge(whole)
	if empty.Mean() != whole.Mean() || empty.N() != whole.N() {
		t.Error("merge into empty must copy")
	}
	before := whole
	whole.Merge(Running{})
	if whole != before {
		t.Error("merging an empty accumulator must be a no-op")
	}
}

// TestMergeSummary: per-stripe accounts merge into exact totals and a
// consistent confidence interval.
func TestMergeSummary(t *testing.T) {
	accs := []*OpAccount{{}, {}, {}}
	var oracle OpAccount
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 900; i++ {
		ops, matched := rng.Intn(50)+1, rng.Intn(3)
		accs[i%3].Record(ops, matched)
		oracle.Record(ops, matched)
	}
	got, want := MergeSummary(accs), oracle.Summary()
	if got.Events != want.Events || got.Ops != want.Ops || got.Matches != want.Matches {
		t.Fatalf("totals: %+v vs %+v", got, want)
	}
	if math.Abs(got.MeanOps-want.MeanOps) > 1e-9 {
		t.Errorf("mean ops %v vs %v", got.MeanOps, want.MeanOps)
	}
	if math.Abs(got.HalfWidth95-want.HalfWidth95) > 1e-9 {
		t.Errorf("half width %v vs %v", got.HalfWidth95, want.HalfWidth95)
	}
	if math.Abs(got.MeanMatches-want.MeanMatches) > 1e-12 ||
		math.Abs(got.OpsPerNotify-want.OpsPerNotify) > 1e-12 {
		t.Errorf("rates: %+v vs %+v", got, want)
	}
	if s := MergeSummary(nil); s.Events != 0 || s.MeanOps != 0 {
		t.Errorf("empty merge = %+v", s)
	}
}
