// Package codec serializes schemas and profile corpora as versioned JSON:
// the interchange format for exporting a broker's subscription set, warm-
// starting a filter engine, and archiving experiment workloads.
package codec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"genas/internal/predicate"
	"genas/internal/schema"
)

// Version is the current envelope version.
const Version = 1

// Errors returned by decoding.
var (
	ErrVersion = errors.New("codec: unsupported envelope version")
	ErrCorrupt = errors.New("codec: corrupt document")
)

// Envelope is the on-disk document.
type Envelope struct {
	Version  int             `json:"version"`
	Schema   []AttrDoc       `json:"schema"`
	Profiles []ProfileDoc    `json:"profiles"`
	Extra    json.RawMessage `json:"extra,omitempty"`
}

// AttrDoc serializes one schema attribute.
type AttrDoc struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"` // numeric | integer | categorical
	Lo     float64  `json:"lo,omitempty"`
	Hi     float64  `json:"hi,omitempty"`
	Labels []string `json:"labels,omitempty"`
}

// ProfileDoc serializes one profile as its profile-language expression; the
// textual form is the canonical interchange representation (it survives
// schema-compatible refactors of the internal predicate model).
type ProfileDoc struct {
	ID       string  `json:"id"`
	Expr     string  `json:"expr"`
	Priority float64 `json:"priority,omitempty"`
}

// EncodeSchema converts a schema into its document form.
func EncodeSchema(s *schema.Schema) []AttrDoc {
	out := make([]AttrDoc, s.N())
	for i := 0; i < s.N(); i++ {
		a := s.At(i)
		doc := AttrDoc{Name: a.Name, Kind: a.Domain.Kind().String()}
		switch a.Domain.Kind() {
		case schema.KindCategorical:
			doc.Labels = a.Domain.Labels()
		default:
			doc.Lo, doc.Hi = a.Domain.Lo(), a.Domain.Hi()
		}
		out[i] = doc
	}
	return out
}

// DecodeSchema rebuilds a schema from its document form.
func DecodeSchema(docs []AttrDoc) (*schema.Schema, error) {
	attrs := make([]schema.Attribute, 0, len(docs))
	for _, d := range docs {
		var dom schema.Domain
		var err error
		switch d.Kind {
		case "numeric":
			dom, err = schema.NewNumericDomain(d.Lo, d.Hi)
		case "integer":
			dom, err = schema.NewIntegerDomain(int(d.Lo), int(d.Hi))
		case "categorical":
			dom, err = schema.NewCategoricalDomain(d.Labels...)
		default:
			err = fmt.Errorf("%w: unknown domain kind %q", ErrCorrupt, d.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %w", d.Name, err)
		}
		attrs = append(attrs, schema.Attribute{Name: d.Name, Domain: dom})
	}
	return schema.New(attrs...)
}

// EncodeProfiles converts a corpus into document form.
func EncodeProfiles(s *schema.Schema, profiles []*predicate.Profile) []ProfileDoc {
	out := make([]ProfileDoc, len(profiles))
	for i, p := range profiles {
		out[i] = ProfileDoc{ID: string(p.ID), Expr: p.Render(s), Priority: p.Priority}
	}
	return out
}

// DecodeProfiles parses a document corpus against the schema.
func DecodeProfiles(s *schema.Schema, docs []ProfileDoc) ([]*predicate.Profile, error) {
	out := make([]*predicate.Profile, 0, len(docs))
	for _, d := range docs {
		p, err := predicate.Parse(s, predicate.ID(d.ID), d.Expr)
		if err != nil {
			return nil, fmt.Errorf("profile %q: %w", d.ID, err)
		}
		p.Priority = d.Priority
		out = append(out, p)
	}
	return out, nil
}

// Write emits the whole envelope as indented JSON.
func Write(w io.Writer, s *schema.Schema, profiles []*predicate.Profile) error {
	env := Envelope{
		Version:  Version,
		Schema:   EncodeSchema(s),
		Profiles: EncodeProfiles(s, profiles),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false) // keep profile operators like >= readable
	return enc.Encode(env)
}

// Read parses an envelope, returning the schema and the corpus.
func Read(r io.Reader) (*schema.Schema, []*predicate.Profile, error) {
	var env Envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if env.Version != Version {
		return nil, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, env.Version, Version)
	}
	s, err := DecodeSchema(env.Schema)
	if err != nil {
		return nil, nil, err
	}
	profiles, err := DecodeProfiles(s, env.Profiles)
	if err != nil {
		return nil, nil, err
	}
	return s, profiles, nil
}
