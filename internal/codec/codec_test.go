package codec

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"genas/internal/predicate"
	"genas/internal/schema"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	num, _ := schema.NewNumericDomain(-30, 50)
	grid, _ := schema.NewIntegerDomain(0, 12)
	cat, _ := schema.NewCategoricalDomain("ok", "warn", "alarm")
	return schema.MustNew(
		schema.Attribute{Name: "temperature", Domain: num},
		schema.Attribute{Name: "floor", Domain: grid},
		schema.Attribute{Name: "state", Domain: cat},
	)
}

func TestRoundTrip(t *testing.T) {
	s := testSchema(t)
	profiles := []*predicate.Profile{
		predicate.MustParse(s, "p1", "profile(temperature >= 35; state = alarm)"),
		predicate.MustParse(s, "p2", "profile(temperature in [-30,-20]; floor = 3)"),
		predicate.MustParse(s, "p3", "profile(state in {warn, alarm})"),
	}
	profiles[0].Priority = 7

	var buf bytes.Buffer
	if err := Write(&buf, s, profiles); err != nil {
		t.Fatal(err)
	}
	s2, back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.N() != s.N() {
		t.Fatalf("schema arity changed: %d vs %d", s2.N(), s.N())
	}
	for i := 0; i < s.N(); i++ {
		if s2.At(i).Name != s.At(i).Name || s2.At(i).Domain.Kind() != s.At(i).Domain.Kind() {
			t.Errorf("attribute %d changed: %+v vs %+v", i, s2.At(i), s.At(i))
		}
		if s2.At(i).Domain.Size() != s.At(i).Domain.Size() {
			t.Errorf("attribute %d size changed", i)
		}
	}
	if len(back) != len(profiles) {
		t.Fatalf("profile count %d vs %d", len(back), len(profiles))
	}
	if back[0].Priority != 7 {
		t.Errorf("priority lost: %g", back[0].Priority)
	}

	// Semantics must survive the round trip.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		vals := []float64{
			-30 + rng.Float64()*80,
			float64(rng.Intn(13)),
			float64(rng.Intn(3)),
		}
		for i := range profiles {
			if profiles[i].Matches(vals) != back[i].Matches(vals) {
				t.Fatalf("profile %s changed semantics at %v", profiles[i].ID, vals)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, err := Read(strings.NewReader("{")); !errors.Is(err, ErrCorrupt) {
		t.Error("truncated JSON must be corrupt")
	}
	if _, _, err := Read(strings.NewReader(`{"version": 99}`)); !errors.Is(err, ErrVersion) {
		t.Error("future version must be rejected")
	}
	bad := `{"version":1,"schema":[{"name":"x","kind":"fancy"}]}`
	if _, _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("unknown domain kind must fail")
	}
	bad = `{"version":1,"schema":[{"name":"x","kind":"numeric","lo":0,"hi":1}],
	        "profiles":[{"id":"p","expr":"profile(nosuch = 1)"}]}`
	if _, _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("profile against missing attribute must fail")
	}
}

func TestDecodeSchemaErrors(t *testing.T) {
	if _, err := DecodeSchema([]AttrDoc{{Name: "x", Kind: "numeric", Lo: 5, Hi: 5}}); err == nil {
		t.Error("degenerate domain must fail")
	}
	if _, err := DecodeSchema(nil); err == nil {
		t.Error("empty schema must fail")
	}
}
