// Package matchers provides the common Matcher interface plus the two
// baseline filtering algorithms the literature compares tree filtering
// against (paper §2 distinguishes "simple algorithms, clustering, and
// tree-based algorithms"):
//
//   - Naive: evaluate every profile predicate by predicate (the simple
//     algorithm);
//   - Counting: a predicate-index/counting algorithm in the style of Le
//     Subscribe (Fabret et al., Pereira et al.), where each attribute keeps
//     a sorted subrange index and profiles match when their satisfied-
//     predicate counters reach their predicate counts;
//   - Tree: the profile-tree automaton of package tree.
//
// All matchers report operation counts under comparable conventions (one
// comparison or counter update = one operation), so the ablation benchmarks
// can contrast the approaches.
package matchers

import (
	"sort"

	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/subrange"
	"genas/internal/tree"
)

// Matcher filters one event against the profile corpus. Implementations
// return the dense indices of matched profiles (ascending) and the number of
// elementary operations spent. Matchers are safe for concurrent Match calls.
type Matcher interface {
	Match(vals []float64) (matched []int, ops int)
	Name() string
}

// --- Naive --------------------------------------------------------------------

// Naive evaluates every profile independently.
type Naive struct {
	profiles []*predicate.Profile
	n        int
}

// NewNaive builds the naive matcher.
func NewNaive(s *schema.Schema, profiles []*predicate.Profile) *Naive {
	return &Naive{profiles: profiles, n: s.N()}
}

// Match implements Matcher. Each predicate evaluation costs one operation;
// evaluation of a profile stops at its first failing predicate.
func (m *Naive) Match(vals []float64) ([]int, int) {
	var matched []int
	ops := 0
	for pi, p := range m.profiles {
		ok := true
		for attr := 0; attr < m.n; attr++ {
			if !p.Constrains(attr) {
				continue
			}
			ops++
			if !p.Pred(attr).Matches(vals[attr]) {
				ok = false
				break
			}
		}
		if ok {
			matched = append(matched, pi)
		}
	}
	return matched, ops
}

// Name implements Matcher.
func (m *Naive) Name() string { return "naive" }

// --- Counting -----------------------------------------------------------------

// countingIndex is one attribute's sorted bucket index.
type countingIndex struct {
	// buckets partition the domain; bucket i covers ivs[i] and satisfies
	// the predicates of profs[i].
	ivs   []schema.Interval
	profs [][]int
}

// Counting implements the counting algorithm: satisfied predicates bump
// per-profile counters; a profile matches when its counter reaches its
// predicate count.
type Counting struct {
	s       *schema.Schema
	indexes []countingIndex
	// need[p] is the number of constrained attributes of profile p.
	need []int
}

// NewCounting builds the per-attribute predicate indexes.
func NewCounting(s *schema.Schema, profiles []*predicate.Profile) *Counting {
	m := &Counting{s: s, need: make([]int, len(profiles))}
	for pi, p := range profiles {
		for attr := 0; attr < s.N(); attr++ {
			if p.Constrains(attr) {
				m.need[pi]++
			}
		}
	}
	m.indexes = make([]countingIndex, s.N())
	for attr := 0; attr < s.N(); attr++ {
		dom := s.At(attr).Domain
		cons := make([]subrange.Constraint, 0, len(profiles))
		for pi, p := range profiles {
			if !p.Constrains(attr) {
				cons = append(cons, subrange.Constraint{Profile: pi, DontCare: true})
				continue
			}
			cons = append(cons, subrange.Constraint{Profile: pi, Intervals: p.Pred(attr).Intervals(dom)})
		}
		dec := subrange.Decompose(dom, cons)
		idx := countingIndex{}
		for _, sr := range dec.Subranges {
			idx.ivs = append(idx.ivs, sr.Iv)
			idx.profs = append(idx.profs, sr.Profiles)
		}
		// Gaps satisfy no predicate; they are represented implicitly.
		sort.Sort(byLo(idx))
		m.indexes[attr] = idx
	}
	return m
}

type byLo countingIndex

func (b byLo) Len() int { return len(b.ivs) }
func (b byLo) Less(i, j int) bool {
	if b.ivs[i].Lo != b.ivs[j].Lo {
		return b.ivs[i].Lo < b.ivs[j].Lo
	}
	return b.ivs[i].Hi < b.ivs[j].Hi
}
func (b byLo) Swap(i, j int) {
	b.ivs[i], b.ivs[j] = b.ivs[j], b.ivs[i]
	b.profs[i], b.profs[j] = b.profs[j], b.profs[i]
}

// Match implements Matcher. Operations: one per binary-search probe while
// locating the bucket, one per counter increment.
func (m *Counting) Match(vals []float64) ([]int, int) {
	counters := make(map[int]int, 16)
	ops := 0
	for attr, idx := range m.indexes {
		bi, probes := locate(idx.ivs, vals[attr])
		ops += probes
		if bi < 0 {
			continue
		}
		for _, pi := range idx.profs[bi] {
			counters[pi]++
			ops++
		}
	}
	var matched []int
	for pi, c := range counters {
		if c == m.need[pi] {
			matched = append(matched, pi)
		}
	}
	// Profiles with zero constrained attributes (all don't-care) cannot be
	// registered; profile construction rejects them, so no extra pass.
	sort.Ints(matched)
	return matched, ops
}

// locate binary-searches the sorted disjoint intervals for v.
func locate(ivs []schema.Interval, v float64) (int, int) {
	lo, hi := 0, len(ivs)-1
	probes := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		probes++
		switch {
		case ivs[mid].Contains(v):
			return mid, probes
		case ivs[mid].Before(v):
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return -1, probes
}

// Name implements Matcher.
func (m *Counting) Name() string { return "counting" }

// --- Tree adapter ---------------------------------------------------------------

// Tree adapts a profile tree to the Matcher interface.
type Tree struct {
	T *tree.Tree
}

// Match implements Matcher.
func (m Tree) Match(vals []float64) ([]int, int) { return m.T.Match(vals) }

// Name implements Matcher.
func (m Tree) Name() string { return "tree-" + m.T.Strategy().String() }

// Compile-time interface checks.
var (
	_ Matcher = (*Naive)(nil)
	_ Matcher = (*Counting)(nil)
	_ Matcher = Tree{}
)
