package matchers

import (
	"fmt"
	"math/rand"
	"testing"

	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/tree"
)

// randSchema builds a schema with 1–4 attributes of mixed kinds.
func randSchema(rng *rand.Rand) *schema.Schema {
	n := 1 + rng.Intn(4)
	attrs := make([]schema.Attribute, n)
	for i := range attrs {
		var d schema.Domain
		switch rng.Intn(3) {
		case 0:
			d, _ = schema.NewNumericDomain(0, 100)
		case 1:
			d, _ = schema.NewIntegerDomain(0, 20)
		default:
			d, _ = schema.NewCategoricalDomain("a", "b", "c", "d")
		}
		attrs[i] = schema.Attribute{Name: fmt.Sprintf("x%d", i), Domain: d}
	}
	return schema.MustNew(attrs...)
}

// randProfile draws a random profile over s with mixed operators.
func randProfile(s *schema.Schema, id int, rng *rand.Rand) *predicate.Profile {
	var preds []predicate.Predicate
	for attr := 0; attr < s.N(); attr++ {
		dom := s.At(attr).Domain
		span := dom.Hi() - dom.Lo()
		pick := func() float64 {
			v := dom.Lo() + rng.Float64()*span
			if dom.Kind() != schema.KindNumeric {
				v = float64(int(v))
			}
			return v
		}
		switch rng.Intn(7) {
		case 0:
			continue // don't-care
		case 1:
			pr, _ := predicate.NewComparison(attr, predicate.OpEq, pick())
			preds = append(preds, pr)
		case 2:
			pr, _ := predicate.NewComparison(attr, predicate.OpLe, pick())
			preds = append(preds, pr)
		case 3:
			pr, _ := predicate.NewComparison(attr, predicate.OpGe, pick())
			preds = append(preds, pr)
		case 4:
			a, b := pick(), pick()
			if a > b {
				a, b = b, a
			}
			pr, _ := predicate.NewRange(attr, a, b)
			preds = append(preds, pr)
		case 5:
			pr, _ := predicate.NewComparison(attr, predicate.OpNe, pick())
			preds = append(preds, pr)
		default:
			vs := []float64{pick(), pick(), pick()}
			pr, _ := predicate.NewIn(attr, vs...)
			preds = append(preds, pr)
		}
	}
	p, err := predicate.New(s, predicate.ID(fmt.Sprintf("p%d", id)), preds...)
	if err != nil {
		// All attributes fell on don't-care: force one equality.
		pr, _ := predicate.NewComparison(0, predicate.OpEq, pick0(s, rng))
		p, _ = predicate.New(s, predicate.ID(fmt.Sprintf("p%d", id)), pr)
	}
	return p
}

func pick0(s *schema.Schema, rng *rand.Rand) float64 {
	dom := s.At(0).Domain
	v := dom.Lo() + rng.Float64()*(dom.Hi()-dom.Lo())
	if dom.Kind() != schema.KindNumeric {
		v = float64(int(v))
	}
	return v
}

func randEvent(s *schema.Schema, rng *rand.Rand) []float64 {
	vals := make([]float64, s.N())
	for i := range vals {
		dom := s.At(i).Domain
		v := dom.Lo() + rng.Float64()*(dom.Hi()-dom.Lo())
		if dom.Kind() != schema.KindNumeric {
			v = float64(int(v))
		}
		vals[i] = v
	}
	return vals
}

func sameMatch(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMatcherEquivalence: tree (both search strategies), naive and counting
// matchers return identical match sets on random workloads. This is the
// central correctness property of the whole repository.
func TestMatcherEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		s := randSchema(rng)
		p := 1 + rng.Intn(40)
		profiles := make([]*predicate.Profile, p)
		for i := range profiles {
			profiles[i] = randProfile(s, i, rng)
		}

		naive := NewNaive(s, profiles)
		counting := NewCounting(s, profiles)
		trLin, err := tree.Build(s, profiles)
		if err != nil {
			t.Fatal(err)
		}
		trBin, err := tree.Build(s, profiles, tree.WithSearch(tree.SearchBinary))
		if err != nil {
			t.Fatal(err)
		}
		trNoStop, err := tree.Build(s, profiles, tree.WithSearch(tree.SearchLinearNoStop))
		if err != nil {
			t.Fatal(err)
		}
		trInterp, err := tree.Build(s, profiles, tree.WithSearch(tree.SearchInterpolation))
		if err != nil {
			t.Fatal(err)
		}
		trHash, err := tree.Build(s, profiles, tree.WithSearch(tree.SearchHash))
		if err != nil {
			t.Fatal(err)
		}

		all := []Matcher{naive, counting, Tree{trLin}, Tree{trBin}, Tree{trNoStop}, Tree{trInterp}, Tree{trHash}}
		for ev := 0; ev < 120; ev++ {
			vals := randEvent(s, rng)
			want, _ := naive.Match(vals)
			for _, m := range all[1:] {
				got, ops := m.Match(vals)
				if !sameMatch(got, want) {
					t.Fatalf("trial %d: %s disagrees on %v:\n got %v\nwant %v\nschema %s",
						trial, m.Name(), vals, got, want, s)
				}
				if ops < 0 {
					t.Fatalf("%s: negative ops", m.Name())
				}
			}
		}
	}
}

// TestMatcherEquivalenceUnderReordering: applying any value ordering must
// never change the match result.
func TestMatcherEquivalenceUnderReordering(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := randSchema(rng)
	profiles := make([]*predicate.Profile, 25)
	for i := range profiles {
		profiles[i] = randProfile(s, i, rng)
	}
	naive := NewNaive(s, profiles)
	tr, err := tree.Build(s, profiles)
	if err != nil {
		t.Fatal(err)
	}

	orders := []tree.ValueOrder{
		tree.NaturalOrder(),
		{Name: "reverse", Rank: func(_ int, r []tree.Interval) float64 { return -r[0].Lo }},
		{Name: "shuffle", Rank: func(_ int, r []tree.Interval) float64 {
			h := int64(r[0].Lo*7919) % 97
			return float64(h)
		}, Descending: true},
	}
	for _, vo := range orders {
		tr.ApplyValueOrder(vo)
		for ev := 0; ev < 300; ev++ {
			vals := randEvent(s, rng)
			want, _ := naive.Match(vals)
			got, _ := tr.Match(vals)
			if !sameMatch(got, want) {
				t.Fatalf("order %s changed semantics on %v: got %v want %v", vo.Name, vals, got, want)
			}
		}
	}
}

// TestCountingOpsReasonable: counting ops stay near probes+increments.
func TestCountingOpsReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := randSchema(rng)
	profiles := make([]*predicate.Profile, 10)
	for i := range profiles {
		profiles[i] = randProfile(s, i, rng)
	}
	m := NewCounting(s, profiles)
	for i := 0; i < 50; i++ {
		_, ops := m.Match(randEvent(s, rng))
		if ops <= 0 {
			t.Fatal("counting reported zero ops")
		}
		if ops > 100*s.N() {
			t.Fatalf("counting ops %d implausibly large", ops)
		}
	}
}

// TestNaiveOpsShortCircuit: the naive matcher stops a profile's evaluation
// at the first failing predicate.
func TestNaiveOpsShortCircuit(t *testing.T) {
	num, _ := schema.NewNumericDomain(0, 100)
	s := schema.MustNew(
		schema.Attribute{Name: "a", Domain: num},
		schema.Attribute{Name: "b", Domain: num},
	)
	p := predicate.MustParse(s, "p", "profile(a >= 50; b >= 50)")
	m := NewNaive(s, []*predicate.Profile{p})
	_, opsFail := m.Match([]float64{10, 90}) // fails on first predicate
	if opsFail != 1 {
		t.Errorf("short-circuit ops = %d, want 1", opsFail)
	}
	_, opsMatch := m.Match([]float64{90, 90})
	if opsMatch != 2 {
		t.Errorf("full-match ops = %d, want 2", opsMatch)
	}
}
