// Package federation takes the Siena-style overlay of internal/routing over
// the wire: multiple genasd processes form the same acyclic broker topology
// the in-process Network models, speaking the JSON-line protocol's peer
// frames (hello, route_add/route_withdraw, forward) over TCP.
//
// Each daemon keeps one peer link per neighbor. A link records the profiles
// subscribed in that neighbor's direction (its route set) and runs its own
// distribution-based filter engine over the uncovered routes — so an event
// crosses a TCP link only when that link's engine matches it, and
// "unnecessary event information is rejected as early as possible" (paper
// §5) at every hop. Covering pruning is applied per peer link exactly as in
// the in-process overlay.
//
// Link lifecycle: the dialing side owns reconnection — when a link drops,
// its routes are withdrawn from the remaining links, and on reconnect the
// full route set (local profiles plus routes learned from other peers) is
// replayed, so the overlay converges without a global coordinator. The
// accepting side is handed peer connections by the wire server (first frame
// hello) and simply tears the link down when the connection dies.
package federation

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"genas/internal/broker"
	"genas/internal/core"
	"genas/internal/event"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/wire"
)

// Errors reported by the federation layer.
var (
	ErrClosed         = errors.New("federation: closed")
	ErrMissingNode    = errors.New("federation: missing node name")
	ErrSchemaMismatch = errors.New("federation: peer schema does not match")
	ErrSelfPeer       = errors.New("federation: peer announced this daemon's own node name")
)

// Options configure a federated broker node. The per-link filter engines
// inherit the broker's engine configuration, so the paper's tree
// optimizations apply at every hop exactly as in the in-process overlay.
type Options struct {
	// Node is this daemon's name in the overlay (required, unique among
	// neighbors).
	Node string
	// Covering enables covering-based pruning of each link's filter engine
	// (on by default in genasd; equivalent routes keep the smallest id).
	Covering bool
	// DialTimeout bounds one connect+handshake attempt (default 5s).
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write; a link that cannot absorb a frame
	// within it is torn down (default 10s).
	WriteTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff of dialed links
	// (defaults 100ms and 3s).
	RetryMin, RetryMax time.Duration
	// Proto caps the protocol generation negotiated on peer links:
	// wire.ProtoV1 pins every link to JSON lines, wire.ProtoAuto (zero) and
	// wire.ProtoV2 negotiate binary frames per link (hello advertises it,
	// the link speaks min of both ends — so a mixed-version chain keeps
	// forwarding, each hop at the best protocol its ends share).
	Proto wire.Proto
	// Logger receives link lifecycle and protocol diagnostics (nil discards).
	Logger *log.Logger
}

// Fed is one broker's wire-level overlay state: its peer links, their route
// sets and filter engines, and the forward/filter counters. It implements
// wire.Overlay, so a wire.Server mirrors local subscriptions and publishes
// into it.
type Fed struct {
	name      string
	sch       *schema.Schema
	brk       *broker.Broker
	opts      Options
	maxProto  wire.Proto  // cap for per-link protocol negotiation
	engineCfg core.Config // link engines inherit the broker's engine config
	log       *log.Logger

	// mu guards the peer maps and every link's route state. The forward hot
	// path only reads (snapshot + non-blocking enqueue), so it takes the
	// read side and concurrent publishers do not serialize here.
	mu     sync.RWMutex
	peers  map[*peerLink]struct{}
	byName map[string]*peerLink
	closed bool
	done   chan struct{} // closed by Close; wakes supervisor backoffs
	wg     sync.WaitGroup

	forwarded atomic.Uint64 // events sent over a peer link
	filtered  atomic.Uint64 // link crossings avoided by early rejection
}

// peerLink is one TCP link to a neighbor daemon. After the handshake every
// outbound frame goes through out, drained by a single writer goroutine:
// frame order per link is preserved (route adds and withdrawals must not
// reorder) while no caller ever blocks on peer TCP while holding Fed.mu.
type peerLink struct {
	name string
	conn net.Conn
	// proto is the link's negotiated protocol generation, fixed by the
	// hello exchange before the link attaches.
	proto wire.Proto
	// out carries encoded frames to the writer goroutine. Enqueues happen
	// only under Fed.mu (either side — close(out) runs under the write lock,
	// which is what makes the pair race-free); a full queue means the peer
	// cannot keep up and poisons the link.
	out     chan []byte
	outOnce sync.Once
	// routes are the profiles announced by the peer (subscribers in its
	// direction); engine filters events against the uncovered subset.
	// Both are guarded by Fed.mu.
	routes map[predicate.ID]*predicate.Profile
	engine *core.Engine
}

// closeOut closes the outbound queue exactly once (dropLink and Close can
// both reach it).
func (l *peerLink) closeOut() { l.outOnce.Do(func() { close(l.out) }) }

// outQueueDepth bounds the per-link outbound queue: deep enough to absorb a
// full route replay plus a forward burst, small enough that a wedged peer is
// detected by overflow rather than unbounded memory.
const outQueueDepth = 1024

// New creates the federation state for a broker. The returned Fed has no
// links yet: install it on the wire server (accept side) and Dial/DialRetry
// peers (dial side).
func New(brk *broker.Broker, opts Options) (*Fed, error) {
	if opts.Node == "" {
		return nil, ErrMissingNode
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 10 * time.Second
	}
	if opts.RetryMin <= 0 {
		opts.RetryMin = 100 * time.Millisecond
	}
	if opts.RetryMax < opts.RetryMin {
		opts.RetryMax = 3 * time.Second
	}
	logger := opts.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	// Link engines inherit the broker's measure configuration. With Covering
	// they additionally run in aggregated mode: each route add/withdraw is an
	// incremental covering-poset mutation, and only uncovered (root) routes
	// are indexed for forwarding — no per-announcement rescans.
	engineCfg := brk.Engine().Config()
	engineCfg.Aggregate = opts.Covering
	maxProto := wire.ProtoV2
	if opts.Proto == wire.ProtoV1 {
		maxProto = wire.ProtoV1
	}
	return &Fed{
		name:      opts.Node,
		sch:       brk.Schema(),
		brk:       brk,
		opts:      opts,
		maxProto:  maxProto,
		engineCfg: engineCfg,
		log:       logger,
		peers:     make(map[*peerLink]struct{}),
		byName:    make(map[string]*peerLink),
		done:      make(chan struct{}),
	}, nil
}

// Node returns this daemon's overlay name.
func (f *Fed) Node() string { return f.name }

// Dial connects to a peer daemon synchronously: connect, handshake, replay
// routes. On success a background supervisor keeps the link alive
// (reconnect with route replay) until Close. Use DialRetry when the peer may
// not be up yet.
func (f *Fed) Dial(addr string) error {
	l, rd, err := f.connect(addr)
	if err != nil {
		return err
	}
	if err := f.attach(l); err != nil {
		_ = l.conn.Close()
		return err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.wg.Add(1)
	f.mu.Unlock()
	go func() {
		defer f.wg.Done()
		f.runLink(l, rd)
		f.supervise(addr)
	}()
	return nil
}

// DialRetry starts a background supervisor that dials addr with backoff
// until it succeeds, then keeps the link alive until Close. Initial
// unavailability of the peer is not an error: route replay on connect makes
// the overlay converge whenever the peer appears.
func (f *Fed) DialRetry(addr string) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.wg.Add(1)
	f.mu.Unlock()
	go func() {
		defer f.wg.Done()
		f.supervise(addr)
	}()
}

// supervise dials addr with backoff, runs the link until it drops, and
// repeats until the federation closes.
func (f *Fed) supervise(addr string) {
	backoff := f.opts.RetryMin
	for {
		if f.isClosed() {
			return
		}
		l, rd, err := f.connect(addr)
		if err == nil {
			err = f.attach(l)
			if err != nil {
				_ = l.conn.Close()
			}
		}
		if err != nil {
			if f.isClosed() {
				return
			}
			f.log.Printf("federation: dial %s: %v (retrying in %v)", addr, err, backoff)
			select {
			case <-f.done:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > f.opts.RetryMax {
				backoff = f.opts.RetryMax
			}
			continue
		}
		backoff = f.opts.RetryMin
		f.runLink(l, rd)
	}
}

func (f *Fed) isClosed() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.closed
}

// connect dials addr and performs the hello handshake, returning the link
// and its buffered reader (positioned after the hello reply). The hello
// advertises this daemon's protocol cap; the link speaks the minimum of the
// two ends, so a pre-v2 acceptor (whose hello carries no proto) yields a
// plain v1 link.
func (f *Fed) connect(addr string) (*peerLink, *bufio.Reader, error) {
	conn, err := net.DialTimeout("tcp", addr, f.opts.DialTimeout)
	if err != nil {
		return nil, nil, fmt.Errorf("federation: dial %s: %w", addr, err)
	}
	l := f.newLink(conn)
	hello := wire.Request{Op: wire.OpHello, Node: f.name, Schema: f.sch.String()}
	if f.maxProto >= wire.ProtoV2 {
		hello.Proto = int(wire.ProtoV2)
	}
	if err := f.writeFrame(conn, hello); err != nil {
		_ = conn.Close()
		return nil, nil, err
	}
	rd := bufio.NewReaderSize(conn, 64*1024)
	_ = conn.SetReadDeadline(time.Now().Add(f.opts.DialTimeout))
	line, err := wire.ReadLine(rd)
	if err != nil {
		_ = conn.Close()
		if err == io.EOF {
			err = errors.New("connection closed during handshake")
		}
		return nil, nil, fmt.Errorf("federation: handshake with %s: %w", addr, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	line = append([]byte(nil), line...)
	// The acceptor reports handshake failures as an error response frame;
	// responses carry a type field requests never have, so check that first.
	if resp, rerr := wire.DecodeResponse(line); rerr == nil && resp.Type == wire.MsgError {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("federation: peer %s rejected the link: %s", addr, resp.Error)
	}
	reply, err := wire.DecodeRequest(line)
	if err != nil || reply.Op != wire.OpHello {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("federation: handshake with %s: unexpected frame %q", addr, line)
	}
	if err := f.checkHello(reply); err != nil {
		_ = conn.Close()
		return nil, nil, err
	}
	l.name = reply.Node
	l.proto = negotiated(f.maxProto, reply.Proto)
	return l, rd, nil
}

// negotiated resolves a link's protocol: the minimum of our cap and the
// peer's advertised generation (absent = v1).
func negotiated(ours wire.Proto, theirs int) wire.Proto {
	if ours >= wire.ProtoV2 && theirs >= int(wire.ProtoV2) {
		return wire.ProtoV2
	}
	return wire.ProtoV1
}

// checkHello validates the peer's identity and schema.
func (f *Fed) checkHello(h wire.Request) error {
	if h.Node == "" {
		return errors.New("federation: hello missing node name")
	}
	if h.Node == f.name {
		return fmt.Errorf("%w: %s", ErrSelfPeer, h.Node)
	}
	if h.Schema != f.sch.String() {
		return fmt.Errorf("%w: local %s, peer %s", ErrSchemaMismatch, f.sch, h.Schema)
	}
	return nil
}

// HandlePeer implements wire.Overlay: it owns an accepted peer connection
// whose first frame was hello. It replies, attaches the link (replaying
// routes toward the peer) and runs the link until the connection drops.
func (f *Fed) HandlePeer(conn net.Conn, rd *bufio.Reader, hello wire.Request) {
	if err := f.checkHello(hello); err != nil {
		if b, encErr := wire.EncodeLine(wire.Response{Type: wire.MsgError, Op: wire.OpHello, Error: err.Error()}); encErr == nil {
			_, _ = conn.Write(b)
		}
		f.log.Printf("federation: rejected peer %s: %v", conn.RemoteAddr(), err)
		return
	}
	l := f.newLink(conn)
	l.name = hello.Node
	l.proto = negotiated(f.maxProto, hello.Proto)
	reply := wire.Request{Op: wire.OpHello, Node: f.name, Schema: f.sch.String()}
	if l.proto >= wire.ProtoV2 {
		// Confirm the upgrade only to a peer that asked for it; a pre-v2
		// dialer gets the hello it has always gotten.
		reply.Proto = int(l.proto)
	}
	if err := f.writeFrame(conn, reply); err != nil {
		f.log.Printf("federation: hello reply to %s: %v", hello.Node, err)
		return
	}
	if err := f.attach(l); err != nil {
		f.log.Printf("federation: attach %s: %v", hello.Node, err)
		return
	}
	f.runLink(l, rd)
}

// newLink allocates a link's state for a fresh connection.
func (f *Fed) newLink(conn net.Conn) *peerLink {
	return &peerLink{
		conn:   conn,
		out:    make(chan []byte, outQueueDepth),
		routes: make(map[predicate.ID]*predicate.Profile),
		engine: core.NewEngine(f.sch, f.engineCfg),
	}
}

// attach registers a live link, starts its writer and replays the route set
// the peer should know: every locally subscribed profile plus every route
// learned from the other links. An existing link with the same peer name is
// displaced (its reader will tear it down), and its routes are withdrawn
// from the remaining links — the peer's replay re-adds whatever it still
// has, so a subscriber dropped while the link was dark does not leave stale
// routes at third-party brokers.
func (f *Fed) attach(l *peerLink) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if old, ok := f.byName[l.name]; ok {
		// A reconnect raced the old link's teardown: displace it. Closing the
		// conn wakes its reader, whose dropLink is identity-guarded.
		_ = old.conn.Close()
		old.closeOut()
		delete(f.peers, old)
		delete(f.byName, l.name)
		for id := range old.routes {
			for o := range f.peers {
				f.sendRouteWithdraw(o, id)
			}
		}
	}
	f.peers[l] = struct{}{}
	f.byName[l.name] = l

	// Route replay. Local profiles first, then transit routes. The queue is
	// grown to hold the entire replay before the writer starts: a route set
	// larger than the steady-state queue must replay in full rather than
	// overflow, poison the link and flap forever.
	locals := f.brk.Engine().Profiles()
	replay := len(locals)
	for o := range f.peers {
		if o != l {
			replay += len(o.routes)
		}
	}
	if need := replay + outQueueDepth; need > cap(l.out) {
		l.out = make(chan []byte, need)
	}
	f.wg.Add(1)
	go f.writeLoop(l)
	f.log.Printf("federation: %s linked to peer %s (%s)", f.name, l.name, l.conn.RemoteAddr())

	for _, p := range locals {
		f.sendRouteAdd(l, p)
	}
	for o := range f.peers {
		if o == l {
			continue
		}
		for _, p := range o.routes {
			f.sendRouteAdd(l, p)
		}
	}
	return nil
}

// runLink consumes peer frames until the connection drops, then tears the
// link down (withdrawing its routes from the remaining links).
func (f *Fed) runLink(l *peerLink, rd *bufio.Reader) {
	if l.proto >= wire.ProtoV2 {
		f.runLinkV2(l, rd)
		return
	}
	for {
		line, err := wire.ReadLine(rd)
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			f.dropLink(l, err)
			return
		}
		if len(line) == 0 {
			continue
		}
		req, err := wire.DecodeRequest(line)
		if err != nil {
			f.log.Printf("federation: bad frame from %s: %v", l.name, err)
			continue
		}
		f.handleFrame(l, req)
	}
}

// runLinkV2 consumes binary peer frames. The frame buffer and the forward
// scratch vector are reused across frames — an inbound forward is decoded,
// matched locally and re-forwarded without allocating on the miss path.
// Framing errors (truncation, oversized prefix, unknown type) tear the link
// down: once the stream position is lost, every later byte is garbage.
func (f *Fed) runLinkV2(l *peerLink, rd *bufio.Reader) {
	var (
		buf     []byte
		scratch = make([]float64, 0, f.sch.N())
	)
	for {
		typ, payload, err := wire.ReadFrame(rd, &buf)
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			f.dropLink(l, err)
			return
		}
		switch typ {
		case wire.FrameForward:
			vals, err := wire.DecodeForwardFrame(payload, scratch)
			if cap(vals) > cap(scratch) {
				scratch = vals
			}
			if err != nil {
				f.dropLink(l, err)
				return
			}
			f.handleForwardVals(l, vals)
		case wire.FrameRouteAdd:
			id, profile, priority, err := wire.DecodeRouteAddFrame(payload)
			if err != nil {
				f.dropLink(l, err)
				return
			}
			p, err := predicate.Parse(f.sch, predicate.ID(id), profile)
			if err != nil {
				f.log.Printf("federation: route_add %q from %s: %v", id, l.name, err)
				continue
			}
			p.Priority = priority
			f.addRoute(l, p)
		case wire.FrameRouteWithdraw:
			id, err := wire.DecodeRouteWithdrawFrame(payload)
			if err != nil {
				f.dropLink(l, err)
				return
			}
			f.removeRoute(l, predicate.ID(id))
		default:
			f.dropLink(l, fmt.Errorf("%w: unexpected frame type 0x%02x", wire.ErrBadFrame, typ))
			return
		}
	}
}

// handleForwardVals delivers one inbound v2 forward locally (zero-copy: the
// broker copies the vector only on match) and re-forwards it over matching
// links. Domain validation mirrors the v1 path's event.FromMap strictness.
func (f *Fed) handleForwardVals(l *peerLink, vals []float64) {
	if len(vals) != f.sch.N() {
		f.log.Printf("federation: forward from %s: %d values for %d attributes", l.name, len(vals), f.sch.N())
		return
	}
	for i, v := range vals {
		if err := f.sch.Validate(i, v); err != nil {
			f.log.Printf("federation: forward from %s: %v", l.name, err)
			return
		}
	}
	if _, err := f.brk.PublishValues(vals); err != nil && !errors.Is(err, broker.ErrClosed) {
		f.log.Printf("federation: local delivery of forward from %s: %v", l.name, err)
	}
	f.forward(vals, l)
}

// handleFrame processes one peer frame.
func (f *Fed) handleFrame(l *peerLink, req wire.Request) {
	switch req.Op {
	case wire.OpRouteAdd:
		p, err := predicate.Parse(f.sch, predicate.ID(req.ID), req.Profile)
		if err != nil {
			f.log.Printf("federation: route_add %q from %s: %v", req.ID, l.name, err)
			return
		}
		p.Priority = req.Priority
		f.addRoute(l, p)
	case wire.OpRouteWithdraw:
		f.removeRoute(l, predicate.ID(req.ID))
	case wire.OpForward:
		ev, err := event.FromMap(f.sch, req.Event)
		if err != nil {
			f.log.Printf("federation: forward from %s: %v", l.name, err)
			return
		}
		if _, err := f.brk.Publish(ev); err != nil && !errors.Is(err, broker.ErrClosed) {
			f.log.Printf("federation: local delivery of forward from %s: %v", l.name, err)
		}
		f.forward(ev.Vals, l)
	default:
		f.log.Printf("federation: unexpected op %q on peer link %s", req.Op, l.name)
	}
}

// addRoute installs a route announced by l and re-announces it to every
// other link (the topology is acyclic, so propagation terminates). An
// announcement identical to the installed route is dropped — a reconnect
// replay of n unchanged routes must not trigger n engine rebuilds and a
// federation-wide re-broadcast.
func (f *Fed) addRoute(l *peerLink, p *predicate.Profile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.byName[l.name] != l {
		return
	}
	if old, ok := l.routes[p.ID]; ok &&
		old.Priority == p.Priority && old.Render(f.sch) == p.Render(f.sch) {
		return
	}
	f.installRouteLocked(l, p)
	for o := range f.peers {
		if o != l {
			f.sendRouteAdd(o, p)
		}
	}
}

// installRouteLocked updates the link engine for a new or changed route —
// one incremental engine mutation either way. Under covering the engine's
// aggregation poset places the route against the link's root antichain
// itself (demoting routes the newcomer absorbs, riding under a broader
// route when covered), so replaying n routes costs n poset insertions, not
// the rescans of the rebuild era. Caller holds f.mu.
func (f *Fed) installRouteLocked(l *peerLink, p *predicate.Profile) {
	if _, replaced := l.routes[p.ID]; replaced {
		// The id's old predicate sits in the engine: replace, never duplicate.
		if err := l.engine.RemoveProfile(p.ID); err != nil {
			f.log.Printf("federation: link %s route %s: %v", l.name, p.ID, err)
		}
	}
	l.routes[p.ID] = p
	if err := l.engine.AddProfile(p); err != nil {
		f.log.Printf("federation: link %s route %s: %v", l.name, p.ID, err)
	}
}

// removeRoute withdraws a route announced by l and propagates the withdrawal.
func (f *Fed) removeRoute(l *peerLink, id predicate.ID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.byName[l.name] != l {
		return
	}
	if _, ok := l.routes[id]; !ok {
		return
	}
	delete(l.routes, id)
	// One incremental removal; under covering the poset re-arms routes the
	// withdrawn one covered (its kids re-link upward or promote to roots).
	if err := l.engine.RemoveProfile(id); err != nil {
		f.log.Printf("federation: link %s withdraw %s: %v", l.name, id, err)
	}
	for o := range f.peers {
		if o != l {
			f.sendRouteWithdraw(o, id)
		}
	}
}

// dropLink removes a dead link and withdraws its routes from the remaining
// links. Identity-guarded: a link displaced by a reconnect does not tear
// down its successor's routes.
func (f *Fed) dropLink(l *peerLink, cause error) {
	_ = l.conn.Close()
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.peers[l]; !ok {
		return
	}
	delete(f.peers, l)
	if f.byName[l.name] == l {
		delete(f.byName, l.name)
	}
	l.closeOut()
	if cause == nil {
		cause = errors.New("peer disconnected")
	}
	f.log.Printf("federation: link to %s down: %v", l.name, cause)
	for id := range l.routes {
		for o := range f.peers {
			f.sendRouteWithdraw(o, id)
		}
	}
}

// ProfileAdded implements wire.Overlay: announce a local subscription to
// every peer.
func (f *Fed) ProfileAdded(p *predicate.Profile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	for l := range f.peers {
		f.sendRouteAdd(l, p)
	}
}

// ProfileRemoved implements wire.Overlay: withdraw a local subscription from
// every peer.
func (f *Fed) ProfileRemoved(id predicate.ID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	for l := range f.peers {
		f.sendRouteWithdraw(l, id)
	}
}

// EventPublished implements wire.Overlay: offer a locally published event to
// every link whose routing filter matches it. The vector is read only
// during the call (matching plus synchronous encode), never retained — the
// server's zero-copy v2 publish path hands it a reused scratch slice.
func (f *Fed) EventPublished(ev event.Event) { f.forward(ev.Vals, nil) }

// forward sends an event vector over every link (except the one it arrived
// on) whose filter engine matches it; rejected crossings count as filtered.
// Matching runs outside f.mu against an engine snapshot, exactly like the
// in-process overlay's deliver. The whole path takes only the read lock —
// concurrent publishers of a federated broker never serialize on the
// overlay state. Each wire encoding is produced at most once per event
// (one binary frame for the v2 links, one JSON line for the v1 links) and
// fanned out to every matching link of that generation.
func (f *Fed) forward(vals []float64, from *peerLink) {
	f.mu.RLock()
	type hop struct {
		l   *peerLink
		eng *core.Engine
	}
	hops := make([]hop, 0, len(f.peers))
	for l := range f.peers {
		if l != from {
			hops = append(hops, hop{l: l, eng: l.engine})
		}
	}
	f.mu.RUnlock()
	if len(hops) == 0 {
		return
	}

	var targets []*peerLink
	for _, h := range hops {
		if h.eng.ProfileCount() == 0 {
			f.filtered.Add(1)
			continue
		}
		ids, _, err := h.eng.Match(vals)
		if err != nil {
			f.log.Printf("federation: link %s match: %v", h.l.name, err)
			continue
		}
		if len(ids) == 0 {
			// Early rejection: nobody beyond this link wants the event.
			f.filtered.Add(1)
			continue
		}
		targets = append(targets, h.l)
	}
	if len(targets) == 0 {
		return
	}
	// Encode once per protocol generation present among the targets.
	var lineEnc, frameEnc []byte
	for _, l := range targets {
		if l.proto >= wire.ProtoV2 {
			if frameEnc == nil {
				frameEnc = wire.AppendForwardFrame(nil, vals)
			}
			continue
		}
		if lineEnc == nil {
			payload := make(map[string]float64, f.sch.N())
			for i, v := range vals {
				payload[f.sch.At(i).Name] = v
			}
			enc, err := wire.EncodeLine(wire.Request{Op: wire.OpForward, Event: payload})
			if err != nil {
				f.log.Printf("federation: encode forward frame: %v", err)
				return
			}
			lineEnc = enc
		}
	}
	// Enqueue under the read lock: channel sends are concurrency-safe, and
	// closeOut only runs under the write lock, so a link found live here
	// cannot close its queue mid-enqueue. Close empties the peer maps, so
	// the liveness check also covers a concurrent shutdown.
	f.mu.RLock()
	for _, l := range targets {
		if _, live := f.peers[l]; !live {
			continue
		}
		enc := lineEnc
		if l.proto >= wire.ProtoV2 {
			enc = frameEnc
		}
		if f.enqueueBytesLocked(l, enc) {
			f.forwarded.Add(1)
		}
	}
	f.mu.RUnlock()
}

// writeFrame writes one frame directly on a connection — handshake only,
// before the link's writer goroutine exists.
func (f *Fed) writeFrame(conn net.Conn, req wire.Request) error {
	b, err := wire.EncodeLine(req)
	if err != nil {
		return err
	}
	_ = conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
	if _, err := conn.Write(b); err != nil {
		return err
	}
	return nil
}

// writeLoop is the link's single writer: it drains the outbound queue so
// enqueuers (who hold Fed.mu) never block on peer TCP. A write failure
// poisons the connection — the link's reader tears it down — and the loop
// keeps draining so the queue never wedges.
func (f *Fed) writeLoop(l *peerLink) {
	defer f.wg.Done()
	broken := false
	for b := range l.out {
		if broken {
			continue
		}
		_ = l.conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
		if _, err := l.conn.Write(b); err != nil {
			f.log.Printf("federation: write to %s: %v", l.name, err)
			_ = l.conn.Close()
			broken = true
		}
	}
}

// enqueueLocked queues one frame for the link's writer. Caller holds Fed.mu
// (which is what makes the queue-close race-free). A full queue means the
// peer cannot absorb its frames within the write timeout budget: the link is
// poisoned rather than blocking the broker.
func (f *Fed) enqueueLocked(l *peerLink, req wire.Request) bool {
	b, err := wire.EncodeLine(req)
	if err != nil {
		f.log.Printf("federation: encode %s frame: %v", req.Op, err)
		return false
	}
	return f.enqueueBytesLocked(l, b)
}

// enqueueBytesLocked is enqueueLocked for a pre-encoded frame (the forward
// path encodes once for all target links). It reports whether the frame was
// queued.
func (f *Fed) enqueueBytesLocked(l *peerLink, b []byte) bool {
	select {
	case l.out <- b:
		return true
	default:
		f.log.Printf("federation: peer %s cannot keep up (%d frames queued); dropping the link", l.name, len(l.out))
		_ = l.conn.Close()
		return false
	}
}

// sendRouteAdd/sendRouteWithdraw announce route changes on the link's
// negotiated encoding; failures surface through the link's teardown/replay
// cycle. Caller holds Fed.mu.
func (f *Fed) sendRouteAdd(l *peerLink, p *predicate.Profile) {
	if l.proto >= wire.ProtoV2 {
		f.enqueueBytesLocked(l, wire.AppendRouteAddFrame(nil, string(p.ID), p.Render(f.sch), p.Priority))
		return
	}
	f.enqueueLocked(l, wire.Request{Op: wire.OpRouteAdd, ID: string(p.ID), Profile: p.Render(f.sch), Priority: p.Priority})
}

func (f *Fed) sendRouteWithdraw(l *peerLink, id predicate.ID) {
	if l.proto >= wire.ProtoV2 {
		f.enqueueBytesLocked(l, wire.AppendRouteWithdrawFrame(nil, string(id)))
		return
	}
	f.enqueueLocked(l, wire.Request{Op: wire.OpRouteWithdraw, ID: string(id)})
}

// Stats implements wire.Overlay.
func (f *Fed) Stats() (node string, peers int, forwarded, filtered uint64) {
	f.mu.RLock()
	n := len(f.peers)
	f.mu.RUnlock()
	return f.name, n, f.forwarded.Load(), f.filtered.Load()
}

// ProtoV2Peers implements wire.Overlay: the number of live links speaking
// binary frames.
func (f *Fed) ProtoV2Peers() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for l := range f.peers {
		if l.proto >= wire.ProtoV2 {
			n++
		}
	}
	return n
}

// RouteCount returns the number of uncovered routes on the link to the named
// peer (0 when the link is down) — the wire twin of Node.RouteCount. With
// covering that is the link poset's root count: covered routes stay
// registered but uncounted, matching the pruned tables of the rescan era.
func (f *Fed) RouteCount(peer string) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	l, ok := f.byName[peer]
	if !ok {
		return 0
	}
	if st := l.engine.AggStats(); st.Enabled {
		return st.Roots
	}
	return l.engine.ProfileCount()
}

// Peers lists the names of the live peer links.
func (f *Fed) Peers() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	names := make([]string, 0, len(f.peers))
	for name := range f.byName {
		names = append(names, name)
	}
	return names
}

// Close tears every link down and stops the dial supervisors. The local
// broker is not closed; the caller owns it.
func (f *Fed) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	close(f.done)
	for l := range f.peers {
		_ = l.conn.Close()
		l.closeOut()
	}
	// Empty the maps so nothing enqueues to the closed queues: late
	// dropLink/forward callers find no live link and back off.
	f.peers = make(map[*peerLink]struct{})
	f.byName = make(map[string]*peerLink)
	f.mu.Unlock()
	f.wg.Wait()
}
