package federation_test

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"genas/internal/broker"
	"genas/internal/federation"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/wire"
)

const rpcTimeout = 5 * time.Second

// daemon is one in-process genasd twin: broker + wire server + federation
// overlay on a loopback listener.
type daemon struct {
	t    *testing.T
	brk  *broker.Broker
	srv  *wire.Server
	fed  *federation.Fed
	addr string
	stop func()
}

const testSpec = "temperature=numeric[-30,50]; humidity=numeric[0,100]"

// startDaemon boots a federated daemon and dials the given peers
// synchronously (they must already be up).
func startDaemon(t *testing.T, node, spec string, peers ...string) *daemon {
	t.Helper()
	sch, err := schema.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	brk, err := broker.New(sch, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fed, err := federation.New(brk, federation.Options{
		Node:     node,
		Covering: true,
		RetryMin: 20 * time.Millisecond,
		RetryMax: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(brk, nil)
	srv.SetOverlay(fed)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(ctx, ln); err != nil {
			t.Errorf("serve %s: %v", node, err)
		}
	}()
	d := &daemon{t: t, brk: brk, srv: srv, fed: fed, addr: ln.Addr().String()}
	d.stop = func() {
		fed.Close()
		cancel()
		srv.Close()
		wg.Wait()
		brk.Close()
	}
	t.Cleanup(d.stop)
	for _, p := range peers {
		if err := fed.Dial(p); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func dial(t *testing.T, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr, rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	// Generous: the slow path (1500-route replay, O(n²) covering work)
	// shares one core with every other -race test package in CI; a passing
	// wait returns as soon as the condition holds regardless.
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChainDelivery: three daemons in a chain A—B—C. A profile subscribed at
// C matches an event published at A three processes away; a non-matching
// publish is rejected at A's link (never crossing a wire), and an event
// matching only B's local subscriber is early-rejected at B's link to C.
func TestChainDelivery(t *testing.T) {
	a := startDaemon(t, "A", testSpec)
	b := startDaemon(t, "B", testSpec, a.addr)
	c := startDaemon(t, "C", testSpec, b.addr)

	subC := dial(t, c.addr)
	if err := subC.Subscribe("hot", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	// The route must propagate C → B → A.
	waitFor(t, "route at A", func() bool { return a.fed.RouteCount("B") == 1 })
	waitFor(t, "route at B", func() bool { return b.fed.RouteCount("C") == 1 })

	pubA := dial(t, a.addr)
	if _, err := pubA.Publish(map[string]float64{"temperature": 41, "humidity": 10}, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-subC.Notifications():
		if n.Profile != "hot" || n.Event["temperature"] != 41 {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no notification across two wire hops")
	}
	_, _, forwardedA, _ := a.fed.Stats()
	if forwardedA != 1 {
		t.Errorf("A forwarded %d, want 1", forwardedA)
	}

	// A non-matching event is rejected at A's link: it never crosses a wire.
	if _, err := pubA.Publish(map[string]float64{"temperature": -20, "humidity": 10}, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "early rejection at A", func() bool {
		_, _, fwd, filtered := a.fed.Stats()
		return filtered >= 1 && fwd == 1
	})

	// An event matching only B's local subscriber crosses A→B but is
	// early-rejected at B's link to C: filtering happens at the link, not
	// the endpoint.
	subB := dial(t, b.addr)
	if err := subB.Subscribe("humid", "profile(humidity >= 50)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "humid route at A", func() bool { return a.fed.RouteCount("B") == 2 })
	if _, err := pubA.Publish(map[string]float64{"temperature": 20, "humidity": 80}, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "early rejection at B", func() bool {
		_, _, _, filtered := b.fed.Stats()
		return filtered >= 1
	})
	select {
	case n := <-subB.Notifications():
		if n.Profile != "humid" {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("B's local subscriber starved")
	}
	// C must never see the humid event.
	select {
	case n := <-subC.Notifications():
		t.Fatalf("C notified for an event it never subscribed to: %+v", n)
	case <-time.After(100 * time.Millisecond):
	}

	// Wire-level stats carry the federation counters.
	st, err := pubA.Stats(rpcTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "A" || st.Peers != 1 || st.Forwarded < 1 || st.Filtered < 1 {
		t.Errorf("stats payload = %+v", st)
	}
}

// TestCoveringPrunesPeerRoutes: covering pruning applies per peer link — a
// broad profile absorbs a narrow one in every upstream link engine, while
// withdrawal of the broad profile re-arms the narrow route.
func TestCoveringPrunesPeerRoutes(t *testing.T) {
	a := startDaemon(t, "A", testSpec)
	b := startDaemon(t, "B", testSpec, a.addr)

	c := dial(t, b.addr)
	if err := c.Subscribe("narrow", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe("broad", "profile(temperature >= 10)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	// Covering prunes narrow from A's link engine toward B.
	waitFor(t, "covered routes at A", func() bool { return a.fed.RouteCount("B") == 1 })
	// Withdrawing broad re-arms narrow.
	if err := c.Unsubscribe("broad", rpcTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "narrow re-armed at A", func() bool { return a.fed.RouteCount("B") == 1 })
	pub := dial(t, a.addr)
	if _, err := pub.Publish(map[string]float64{"temperature": 40, "humidity": 5}, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-c.Notifications():
		if n.Profile != "narrow" {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("narrow starved after its covering profile was withdrawn")
	}
}

// TestDisconnectWithdrawsRoutes: when a client connection drops, its
// subscriptions are withdrawn from the whole overlay.
func TestDisconnectWithdrawsRoutes(t *testing.T) {
	a := startDaemon(t, "A", testSpec)
	b := startDaemon(t, "B", testSpec, a.addr)

	c := dial(t, b.addr)
	if err := c.Subscribe("hot", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "route at A", func() bool { return a.fed.RouteCount("B") == 1 })
	_ = c.Close()
	waitFor(t, "route withdrawn at A", func() bool { return a.fed.RouteCount("B") == 0 })
}

// TestReconnectReplaysRoutes: when the dialed peer dies and comes back on
// the same address, the link re-forms and the route set is replayed, so
// delivery resumes without re-subscribing.
func TestReconnectReplaysRoutes(t *testing.T) {
	// Daemon A is restartable: we manage its lifecycle by hand.
	sch, err := schema.ParseSpec(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	startA := func(addr string) (string, func()) {
		brk, err := broker.New(sch, broker.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fed, err := federation.New(brk, federation.Options{Node: "A", Covering: true})
		if err != nil {
			t.Fatal(err)
		}
		srv := wire.NewServer(brk, nil)
		srv.SetOverlay(fed)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = srv.Serve(ctx, ln)
		}()
		return ln.Addr().String(), func() {
			fed.Close()
			cancel()
			srv.Close()
			wg.Wait()
			brk.Close()
		}
	}

	addrA, stopA := startA("127.0.0.1:0")
	b := startDaemon(t, "B", testSpec)
	b.fed.DialRetry(addrA)

	c := dial(t, b.addr)
	if err := c.Subscribe("hot", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial link", func() bool { return b.fed.RouteCount("A") == 0 && len(b.fed.Peers()) == 1 })

	// Kill A; B's supervisor must notice and keep retrying.
	stopA()
	waitFor(t, "link down at B", func() bool { return len(b.fed.Peers()) == 0 })

	// Restart A on the same address: the link re-forms and B replays the
	// subscription route, so a publish at A reaches C's subscriber again.
	if _, stop2 := startA(addrA); true {
		defer stop2()
	}
	waitFor(t, "link re-formed", func() bool { return len(b.fed.Peers()) == 1 })

	pub := dial(t, addrA)
	// The replayed route may still be in flight; publish until delivered.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := pub.Publish(map[string]float64{"temperature": 41, "humidity": 10}, rpcTimeout); err != nil {
			t.Fatal(err)
		}
		select {
		case n := <-c.Notifications():
			if n.Profile != "hot" {
				t.Fatalf("notification = %+v", n)
			}
			return
		case <-time.After(100 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("replayed route never delivered after reconnect")
		}
	}
}

// TestHandshakeRejections: schema mismatch, self-peering and non-federated
// daemons all reject the link with a useful error.
func TestHandshakeRejections(t *testing.T) {
	a := startDaemon(t, "A", testSpec)

	// Schema mismatch.
	schB, err := schema.ParseSpec("pressure=numeric[0,2000]")
	if err != nil {
		t.Fatal(err)
	}
	brkB, err := broker.New(schB, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(brkB.Close)
	fedB, err := federation.New(brkB, federation.Options{Node: "B"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fedB.Close)
	if err := fedB.Dial(a.addr); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch dial err = %v", err)
	}

	// Self-peering (same node name).
	brkA2, err := broker.New(a.brk.Schema(), broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(brkA2.Close)
	fedA2, err := federation.New(brkA2, federation.Options{Node: "A"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fedA2.Close)
	if err := fedA2.Dial(a.addr); err == nil || !strings.Contains(err.Error(), "own node name") {
		t.Errorf("self-peer dial err = %v", err)
	}

	// A non-federated daemon rejects hello frames.
	sch, _ := schema.ParseSpec(testSpec)
	brkP, err := broker.New(sch, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(brkP.Close)
	srvP := wire.NewServer(brkP, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { _ = srvP.Serve(ctx, ln) }()
	t.Cleanup(srvP.Close)
	fedC, err := federation.New(brkP, federation.Options{Node: "C"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fedC.Close)
	if err := fedC.Dial(ln.Addr().String()); err == nil || !strings.Contains(err.Error(), "not federated") {
		t.Errorf("non-federated dial err = %v", err)
	}

	// New without a node name fails.
	if _, err := federation.New(brkP, federation.Options{}); err == nil {
		t.Error("missing node name must fail")
	}
}

// TestPeerFrameErrors: a peer link survives malformed frames — bad profile
// expressions, invalid forwarded events, unknown ops and garbage lines are
// logged and skipped, and subsequent valid frames still apply.
func TestPeerFrameErrors(t *testing.T) {
	a := startDaemon(t, "A", testSpec)
	if got := a.fed.Node(); got != "A" {
		t.Errorf("Node() = %q", got)
	}

	conn, err := net.Dial("tcp", a.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	write := func(v any) {
		t.Helper()
		b, err := wire.EncodeLine(v)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	// Manual handshake as peer "Z".
	write(wire.Request{Op: wire.OpHello, Node: "Z", Schema: a.brk.Schema().String()})
	waitFor(t, "link up", func() bool { return len(a.fed.Peers()) == 1 })

	// Garbage of every kind...
	if _, err := conn.Write([]byte("not json\n\n")); err != nil {
		t.Fatal(err)
	}
	write(wire.Request{Op: wire.OpRouteAdd, ID: "bad", Profile: "profile(bogus >= 0)"})
	write(wire.Request{Op: wire.OpForward, Event: map[string]float64{"temperature": 9999}})
	write(wire.Request{Op: wire.OpRouteWithdraw, ID: "never-added"})
	write(wire.Request{Op: wire.OpPing})
	// ...must not kill the link: a valid route still lands.
	write(wire.Request{Op: wire.OpRouteAdd, ID: "ok", Profile: "profile(temperature >= 35)", Priority: 1})
	waitFor(t, "valid route after garbage", func() bool { return a.fed.RouteCount("Z") == 1 })

	// A valid forward still delivers to A's local broker.
	sub := dial(t, a.addr)
	if err := sub.Subscribe("hot", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
		t.Fatal(err)
	}
	write(wire.Request{Op: wire.OpForward, Event: map[string]float64{"temperature": 41, "humidity": 10}})
	select {
	case n := <-sub.Notifications():
		if n.Profile != "hot" {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("forward after garbage frames never delivered")
	}

	// Dropping the peer withdraws its routes.
	_ = conn.Close()
	waitFor(t, "link torn down", func() bool { return len(a.fed.Peers()) == 0 && a.fed.RouteCount("Z") == 0 })
}

// TestDisplacedLinkWithdrawsStaleRoutes: when a peer reconnects before its
// old connection's death is detected, the displaced link's routes must be
// withdrawn from the rest of the overlay — the peer's replay re-adds only
// what it still has, so a subscription dropped while the link was dark does
// not leave stale routes at third-party brokers.
func TestDisplacedLinkWithdrawsStaleRoutes(t *testing.T) {
	a := startDaemon(t, "A", testSpec)
	b := startDaemon(t, "B", testSpec, a.addr)

	connect := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", b.addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = conn.Close() })
		line, err := wire.EncodeLine(wire.Request{Op: wire.OpHello, Node: "Z", Schema: b.brk.Schema().String()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(line); err != nil {
			t.Fatal(err)
		}
		return conn
	}
	old := connect()
	line, err := wire.EncodeLine(wire.Request{Op: wire.OpRouteAdd, ID: "hot", Profile: "profile(temperature >= 35)"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.Write(line); err != nil {
		t.Fatal(err)
	}
	// Z's route propagates through B to A.
	waitFor(t, "route at A", func() bool { return a.fed.RouteCount("B") == 1 })

	// Z reconnects (the old conn still looks alive to B) without the route.
	_ = connect()
	waitFor(t, "stale route withdrawn at A", func() bool { return a.fed.RouteCount("B") == 0 })
	waitFor(t, "stale route withdrawn at B", func() bool { return b.fed.RouteCount("Z") == 0 })
}

// TestCloseDuringTraffic: closing a federated broker while publishes and
// link drops race it must not panic (regression: Close used to leave links
// in the peer maps with closed queues, so a concurrent forward or withdraw
// hit a closed channel).
func TestCloseDuringTraffic(t *testing.T) {
	for i := 0; i < 5; i++ {
		a := startDaemon(t, "A", testSpec)
		b := startDaemon(t, "B", testSpec, a.addr)
		c := startDaemon(t, "C", testSpec, b.addr)

		cli := dial(t, c.addr)
		if err := cli.Subscribe("hot", "profile(temperature >= 35)", 0, rpcTimeout); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "route at A", func() bool { return a.fed.RouteCount("B") == 1 })

		var wg sync.WaitGroup
		stop := make(chan struct{})
		pub := dial(t, a.addr)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := pub.Publish(map[string]float64{"temperature": 41, "humidity": 10}, rpcTimeout); err != nil {
					return
				}
			}
		}()
		time.Sleep(time.Duration(i) * 5 * time.Millisecond)
		// Close B mid-flood: its two links die while A keeps forwarding.
		b.fed.Close()
		close(stop)
		wg.Wait()
	}
}

// TestHelloAfterSubscribeRejected: a connection that already holds
// subscriptions (and therefore concurrent notification writers) cannot turn
// itself into a peer link.
func TestHelloAfterSubscribeRejected(t *testing.T) {
	a := startDaemon(t, "A", testSpec)
	conn, err := net.Dial("tcp", a.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	write := func(v any) {
		t.Helper()
		b, err := wire.EncodeLine(v)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	write(wire.Request{Op: wire.OpSubscribe, ID: "hot", Profile: "profile(temperature >= 35)"})
	write(wire.Request{Op: wire.OpHello, Node: "Z", Schema: a.brk.Schema().String()})
	sc := bufioScanner(conn)
	var sawReject bool
	deadline := time.Now().Add(5 * time.Second)
	_ = conn.SetReadDeadline(deadline)
	for sc.Scan() {
		resp, err := wire.DecodeResponse(sc.Bytes())
		if err != nil {
			continue
		}
		if resp.Type == wire.MsgError && strings.Contains(resp.Error, "first frame") {
			sawReject = true
			break
		}
	}
	if !sawReject {
		t.Fatal("hello after subscribe was not rejected")
	}
	if n := len(a.fed.Peers()); n != 0 {
		t.Errorf("rejected hello still created %d peer links", n)
	}
}

func bufioScanner(conn net.Conn) *bufio.Scanner {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return sc
}

// TestLargeRouteReplay: a route set larger than the steady-state outbound
// queue must replay in full on connect instead of overflowing the queue and
// flapping the link forever.
func TestLargeRouteReplay(t *testing.T) {
	const routes = 1500 // > outQueueDepth
	sch, err := schema.ParseSpec(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	a := startDaemon(t, "A", testSpec)

	// B carries a big local subscription set before it ever dials A
	// (covering off so nothing prunes).
	brkB, err := broker.New(sch, broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(brkB.Close)
	for i := 0; i < routes; i++ {
		// Disjoint humidity slivers: no profile covers another, so every
		// route must survive at A even with covering enabled there.
		lo := float64(i) * 0.06
		p := predicate.MustParse(sch, predicate.ID(fmt.Sprintf("r%d", i)),
			fmt.Sprintf("profile(humidity in [%g,%g])", lo, lo+0.05))
		if _, err := brkB.Subscribe(p); err != nil {
			t.Fatal(err)
		}
	}
	fedB, err := federation.New(brkB, federation.Options{Node: "B", Covering: false})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fedB.Close)
	if err := fedB.Dial(a.addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "full replay at A", func() bool { return a.fed.RouteCount("B") == routes })
	if n := len(fedB.Peers()); n != 1 {
		t.Errorf("link flapped during replay: %d peers", n)
	}
}

// TestMissingNodeRejected: hello frames without a node name are refused.
func TestMissingNodeRejected(t *testing.T) {
	a := startDaemon(t, "A", testSpec)
	conn, err := net.Dial("tcp", a.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	line, err := wire.EncodeLine(wire.Request{Op: wire.OpHello, Schema: a.brk.Schema().String()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(line); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "missing node") {
		t.Errorf("reply = %q, want a missing-node error", buf[:n])
	}
}
