package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/selectivity"
	"genas/internal/stats"
	"genas/internal/tree"
)

// The four test scenarios of §4.3:
//
//	TV1: creation of the profile tree (n attributes), 10,000 profiles from a
//	     given distribution, event tests until 95% precision for the average
//	     #operations is reached;
//	TV2: full (prebuilt) profile tree, event tests until 95% precision;
//	TV3: full profile tree with one attribute only, 4,000 events;
//	TV4: full profile tree with one attribute only, all possible events,
//	     average #operations computed from the event distribution (Eq. 2).

// ScenarioResult reports one scenario run.
type ScenarioResult struct {
	Scenario  string
	Profiles  int
	Events    uint64
	MeanOps   float64
	HalfWidth float64
	BuildTime time.Duration
	// Analytic is the TV4 expectation for the same configuration (0 when
	// not computed).
	Analytic float64
}

// String renders the result row.
func (r ScenarioResult) String() string {
	s := fmt.Sprintf("%-4s p=%-6d events=%-8d mean ops/event=%.3f ±%.3f",
		r.Scenario, r.Profiles, r.Events, r.MeanOps, r.HalfWidth)
	if r.BuildTime > 0 {
		s += fmt.Sprintf(" build=%s", r.BuildTime.Round(time.Microsecond))
	}
	if r.Analytic > 0 {
		s += fmt.Sprintf(" analytic=%.3f", r.Analytic)
	}
	return s
}

// Precision95 is the stopping rule: 95% CI half-width within 5% of the mean.
const precisionRel = 0.05

// minEventsForStop guards the stopping rule against early flukes.
const minEventsForStop = 2000

// maxEventsCap bounds scenario runtime.
const maxEventsCap = 2_000_000

// TV1 builds an n-attribute tree over profileCount profiles drawn from ppName
// and posts events from peName until the precision criterion holds. The
// build time is part of the scenario (tree "creation" is measured).
func TV1(n, profileCount int, peName, ppName string, vo string, seed int64) (ScenarioResult, error) {
	s := SchemaND(n)
	rng := rand.New(rand.NewSource(seed))

	pds := make([]dist.Dist, n)
	eds := make([]dist.Dist, n)
	for i := 0; i < n; i++ {
		var err error
		if pds[i], err = distByName(ppName, s.At(i).Domain); err != nil {
			return ScenarioResult{}, err
		}
		if eds[i], err = distByName(peName, s.At(i).Domain); err != nil {
			return ScenarioResult{}, err
		}
	}

	// Multi-attribute corpora combine an equality predicate per attribute
	// with a don't-care probability, keeping the automaton representative
	// of mixed workloads.
	profiles := genProfilesEqualityND(s, profileCount, pds, 0.3, rng)

	start := time.Now()
	tr, err := tree.Build(s, profiles)
	if err != nil {
		return ScenarioResult{}, err
	}
	if err := applyOrder(tr, vo, eds, pds); err != nil {
		return ScenarioResult{}, err
	}
	buildTime := time.Since(start)

	res, err := runUntilPrecise(tr, eds, rng)
	if err != nil {
		return ScenarioResult{}, err
	}
	res.Scenario = "TV1"
	res.Profiles = len(profiles)
	res.BuildTime = buildTime
	return res, nil
}

// TV2 is TV1 with the tree prebuilt (construction excluded).
func TV2(n, profileCount int, peName, ppName string, vo string, seed int64) (ScenarioResult, error) {
	r, err := TV1(n, profileCount, peName, ppName, vo, seed)
	if err != nil {
		return ScenarioResult{}, err
	}
	r.Scenario = "TV2"
	r.BuildTime = 0
	return r, nil
}

// TV3 posts exactly 4,000 events through a one-attribute tree.
func TV3(profileCount int, peName, ppName string, vo string, seed int64) (ScenarioResult, error) {
	s := Schema1D()
	rng := rand.New(rand.NewSource(seed))
	pe, err := distByName(peName, s.At(0).Domain)
	if err != nil {
		return ScenarioResult{}, err
	}
	pp, err := distByName(ppName, s.At(0).Domain)
	if err != nil {
		return ScenarioResult{}, err
	}
	profiles := GenProfiles1D(s, profileCount, pp, rng)
	tr, err := tree.Build(s, profiles)
	if err != nil {
		return ScenarioResult{}, err
	}
	eds := []dist.Dist{pe}
	if err := applyOrder(tr, vo, eds, []dist.Dist{pp}); err != nil {
		return ScenarioResult{}, err
	}

	var run stats.Running
	vals := make([]float64, 1)
	for i := 0; i < 4000; i++ {
		vals[0] = pe.Sample(rng)
		_, ops := tr.Match(vals)
		run.Observe(float64(ops))
	}
	return ScenarioResult{
		Scenario:  "TV3",
		Profiles:  len(profiles),
		Events:    run.N(),
		MeanOps:   run.Mean(),
		HalfWidth: run.HalfWidth95(),
		Analytic:  selectivity.Analyze(tr, eds).TotalOps,
	}, nil
}

// TV4 computes the analytic expectation (Eq. 2) for a one-attribute tree:
// "all possible events, average #operations computed based on #operations
// and event distribution".
func TV4(profileCount int, peName, ppName string, vo string, seed int64) (ScenarioResult, error) {
	s := Schema1D()
	rng := rand.New(rand.NewSource(seed))
	pe, err := distByName(peName, s.At(0).Domain)
	if err != nil {
		return ScenarioResult{}, err
	}
	pp, err := distByName(ppName, s.At(0).Domain)
	if err != nil {
		return ScenarioResult{}, err
	}
	profiles := GenProfiles1D(s, profileCount, pp, rng)
	tr, err := tree.Build(s, profiles)
	if err != nil {
		return ScenarioResult{}, err
	}
	eds := []dist.Dist{pe}
	if err := applyOrder(tr, vo, eds, []dist.Dist{pp}); err != nil {
		return ScenarioResult{}, err
	}
	a := selectivity.Analyze(tr, eds)
	return ScenarioResult{
		Scenario: "TV4",
		Profiles: len(profiles),
		MeanOps:  a.TotalOps,
		Analytic: a.TotalOps,
	}, nil
}

// applyOrder configures the tree's value order (or binary search).
func applyOrder(tr *tree.Tree, vo string, eds, pds []dist.Dist) error {
	switch vo {
	case "", "natural":
		return nil
	case "binary":
		tr.SetStrategy(tree.SearchBinary)
		return nil
	case "event":
		tr.ApplyValueOrder(selectivity.V1(eds, true))
	case "profile":
		tr.ApplyValueOrder(selectivity.V2(pds, true))
	case "event*profile":
		tr.ApplyValueOrder(selectivity.V3(eds, pds, true))
	default:
		return fmt.Errorf("experiments: unknown value order %q", vo)
	}
	return nil
}

// runUntilPrecise posts sampled events until the 95% CI half-width is within
// 5% of the running mean.
func runUntilPrecise(tr *tree.Tree, eds []dist.Dist, rng *rand.Rand) (ScenarioResult, error) {
	var run stats.Running
	n := len(eds)
	vals := make([]float64, n)
	for {
		for i := 0; i < n; i++ {
			vals[i] = eds[i].Sample(rng)
		}
		_, ops := tr.Match(vals)
		run.Observe(float64(ops))
		if run.PreciseEnough(precisionRel, minEventsForStop) || run.N() >= maxEventsCap {
			break
		}
	}
	return ScenarioResult{
		Events:    run.N(),
		MeanOps:   run.Mean(),
		HalfWidth: run.HalfWidth95(),
		Analytic:  selectivity.Analyze(tr, eds).TotalOps,
	}, nil
}

// genProfilesEqualityND draws profiles with an equality predicate per
// attribute, each attribute independently left don't-care with probability
// dontCare (at least one attribute is always constrained).
func genProfilesEqualityND(s *schema.Schema, count int, pds []dist.Dist, dontCare float64, rng *rand.Rand) []*predicate.Profile {
	profiles := make([]*predicate.Profile, 0, count)
	for i := 0; i < count; i++ {
		preds := make([]predicate.Predicate, 0, s.N())
		constrained := false
		for attr := 0; attr < s.N(); attr++ {
			if rng.Float64() < dontCare && !(attr == s.N()-1 && !constrained) {
				continue
			}
			constrained = true
			pr, err := predicate.NewComparison(attr, predicate.OpEq, pds[attr].Sample(rng))
			if err != nil {
				continue
			}
			preds = append(preds, pr)
		}
		prof, err := predicate.New(s, predicate.ID(fmt.Sprintf("t%05d", i)), preds...)
		if err != nil {
			continue
		}
		profiles = append(profiles, prof)
	}
	return profiles
}
