package experiments

import (
	"fmt"
	"math/rand"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/selectivity"
	"genas/internal/tree"
)

// The paper's outlook announces two further investigations: "the influence
// of don't care-edges and different operators on the performance" (§5).
// These experiments realize both.

// DontCareSweep measures the expected operations per event and the automaton
// size as the fraction of don't-care predicates per attribute grows. More
// don't-care predicates create complement "(*)" edges, shrink D₀ (fewer
// early rejections) and increase state sharing.
func DontCareSweep(seed int64) (Table, error) {
	const (
		nAttrs       = 3
		profileCount = 400
	)
	fractions := []float64{0, 0.2, 0.4, 0.6, 0.8}
	s := SchemaND(nAttrs)
	eds := make([]dist.Dist, nAttrs)
	for i := range eds {
		d, err := distByName("gauss", s.At(i).Domain)
		if err != nil {
			return Table{}, err
		}
		eds[i] = d
	}

	t := Table{
		Title:  "Extension — influence of don't-care edges (paper §5 outlook)",
		Metric: "per don't-care fraction",
	}
	linear := Series{Label: "ops/event (V1 linear)"}
	binary := Series{Label: "ops/event (binary)"}
	nodes := Series{Label: "automaton nodes"}
	matchP := Series{Label: "match probability"}

	rng := rand.New(rand.NewSource(seed))
	for _, frac := range fractions {
		t.Columns = append(t.Columns, fmt.Sprintf("dc=%.0f%%", frac*100))
		profiles := genProfilesEqualityND(s, profileCount, eds, frac, rng)
		tr, err := tree.Build(s, profiles)
		if err != nil {
			return Table{}, err
		}
		tr.ApplyValueOrder(selectivity.V1(eds, true))
		a := selectivity.Analyze(tr, eds)
		linear.Values = append(linear.Values, a.TotalOps)
		tr.SetStrategy(tree.SearchBinary)
		binary.Values = append(binary.Values, selectivity.Analyze(tr, eds).TotalOps)
		nodes.Values = append(nodes.Values, float64(tr.Stats().Nodes))
		matchP.Values = append(matchP.Values, a.MatchProb)
	}
	t.Series = []Series{linear, binary, nodes, matchP}
	return t, nil
}

// operatorMix describes one profile-corpus flavor for OperatorSweep.
type operatorMix struct {
	name string
	gen  func(s *schema.Schema, i int, rng *rand.Rand) *predicate.Profile
}

// OperatorSweep measures how the predicate operator family influences the
// filter: equality tests (many point subranges), narrow ranges, wide
// overlapping ranges, inequalities (two-sided complements) and set
// containment.
func OperatorSweep(seed int64) (Table, error) {
	const profileCount = 300
	s := Schema1D()
	dom := s.At(0).Domain
	hi := int(dom.Hi())
	pe, err := distByName("gauss", dom)
	if err != nil {
		return Table{}, err
	}

	mixes := []operatorMix{
		{"equality", func(s *schema.Schema, i int, rng *rand.Rand) *predicate.Profile {
			pr, _ := predicate.NewComparison(0, predicate.OpEq, float64(rng.Intn(hi+1)))
			p, _ := predicate.New(s, predicate.ID(fmt.Sprintf("p%d", i)), pr)
			return p
		}},
		{"narrow-range", func(s *schema.Schema, i int, rng *rand.Rand) *predicate.Profile {
			lo := rng.Intn(hi - 3)
			pr, _ := predicate.NewRange(0, float64(lo), float64(lo+3))
			p, _ := predicate.New(s, predicate.ID(fmt.Sprintf("p%d", i)), pr)
			return p
		}},
		{"wide-range", func(s *schema.Schema, i int, rng *rand.Rand) *predicate.Profile {
			lo := rng.Intn(hi / 2)
			pr, _ := predicate.NewRange(0, float64(lo), float64(lo+hi/3))
			p, _ := predicate.New(s, predicate.ID(fmt.Sprintf("p%d", i)), pr)
			return p
		}},
		{"inequality", func(s *schema.Schema, i int, rng *rand.Rand) *predicate.Profile {
			pr, _ := predicate.NewComparison(0, predicate.OpNe, float64(rng.Intn(hi+1)))
			p, _ := predicate.New(s, predicate.ID(fmt.Sprintf("p%d", i)), pr)
			return p
		}},
		{"set", func(s *schema.Schema, i int, rng *rand.Rand) *predicate.Profile {
			vs := []float64{float64(rng.Intn(hi + 1)), float64(rng.Intn(hi + 1)), float64(rng.Intn(hi + 1))}
			pr, _ := predicate.NewIn(0, vs...)
			p, _ := predicate.New(s, predicate.ID(fmt.Sprintf("p%d", i)), pr)
			return p
		}},
	}

	t := Table{
		Title:  "Extension — influence of predicate operators (paper §5 outlook)",
		Metric: "per operator family",
	}
	linear := Series{Label: "ops/event (V1 linear)"}
	binary := Series{Label: "ops/event (binary)"}
	edges := Series{Label: "root subrange edges"}
	expM := Series{Label: "expected matches/event"}

	eds := []dist.Dist{pe}
	for _, mix := range mixes {
		t.Columns = append(t.Columns, mix.name)
		rng := rand.New(rand.NewSource(seed))
		profiles := make([]*predicate.Profile, 0, profileCount)
		for i := 0; i < profileCount; i++ {
			if p := mix.gen(s, i, rng); p != nil {
				profiles = append(profiles, p)
			}
		}
		tr, err := tree.Build(s, profiles)
		if err != nil {
			return Table{}, err
		}
		tr.ApplyValueOrder(selectivity.V1(eds, true))
		a := selectivity.Analyze(tr, eds)
		linear.Values = append(linear.Values, a.TotalOps)
		tr.SetStrategy(tree.SearchBinary)
		binary.Values = append(binary.Values, selectivity.Analyze(tr, eds).TotalOps)
		edges.Values = append(edges.Values, float64(len(tr.Root().Edges())))
		expM.Values = append(expM.Values, a.ExpMatches)
	}
	t.Series = []Series{linear, binary, edges, expM}
	return t, nil
}

// SearchSweep contrasts all five node-search strategies analytically on one
// workload grid — the head-to-head the paper's outlook calls for
// ("binary-, interpolation-, or hash-based search within attribute-values").
func SearchSweep(seed int64) (Table, error) {
	combos := []combo{
		{"equal", "equal"}, {"gauss", "equal"}, {"95% low", "equal"},
		{"equal", "95% low"}, {"95% low", "95% low"},
	}
	strategies := []tree.Search{
		tree.SearchLinear, tree.SearchLinearNoStop, tree.SearchBinary,
		tree.SearchInterpolation, tree.SearchHash,
	}
	t := Table{
		Title:  "Extension — node search strategies head-to-head (TV4, V1 order)",
		Metric: "average #operations per event",
	}
	for _, c := range combos {
		t.Columns = append(t.Columns, c.String())
	}
	s := Schema1D()
	for _, strategy := range strategies {
		series := Series{Label: strategy.String()}
		for ci, c := range combos {
			pe, err := distByName(c.pe, s.At(0).Domain)
			if err != nil {
				return Table{}, err
			}
			pp, err := distByName(c.pp, s.At(0).Domain)
			if err != nil {
				return Table{}, err
			}
			rng := rand.New(rand.NewSource(seed + int64(ci)))
			profiles := GenProfiles1D(s, ProfilesPerCell, pp, rng)
			tr, err := tree.Build(s, profiles, tree.WithSearch(strategy))
			if err != nil {
				return Table{}, err
			}
			eds := []dist.Dist{pe}
			tr.ApplyValueOrder(selectivity.V1(eds, true))
			series.Values = append(series.Values, selectivity.Analyze(tr, eds).TotalOps)
		}
		t.Series = append(t.Series, series)
	}
	return t, nil
}
