package experiments

import (
	"fmt"
	"math/rand"

	"genas/internal/dist"
	"genas/internal/selectivity"
	"genas/internal/tree"
)

// ProfilesPerCell is the corpus size used by the value-reordering figures.
// The paper's TV scenarios use up to 10,000 profiles; 2,000 keeps a full
// catalog sweep fast while preserving every qualitative effect (the paper's
// comparisons are between strategies within one cell, not across corpus
// sizes).
const ProfilesPerCell = 2000

// combo is one x-axis cell: the event and profile distribution names.
type combo struct{ pe, pp string }

func (c combo) String() string { return c.pe + "/" + c.pp }

// evalCell computes the analytic TV4 metrics of one (P_e, P_p, ordering)
// cell. It returns the full analysis so callers can select their metric.
func evalCell(c combo, order string, seed int64) (selectivity.Analysis, int, error) {
	s := Schema1D()
	dom := s.At(0).Domain
	pe, err := distByName(c.pe, dom)
	if err != nil {
		return selectivity.Analysis{}, 0, err
	}
	pp, err := distByName(c.pp, dom)
	if err != nil {
		return selectivity.Analysis{}, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	profiles := GenProfiles1D(s, ProfilesPerCell, pp, rng)

	search := tree.SearchLinear
	if order == "binary" {
		search = tree.SearchBinary
	}
	tr, err := tree.Build(s, profiles, tree.WithSearch(search))
	if err != nil {
		return selectivity.Analysis{}, 0, err
	}
	eds := []dist.Dist{pe}
	pds := []dist.Dist{pp}
	switch order {
	case "natural", "binary":
		// keep the natural defined order
	case "natural-desc":
		tr.ApplyValueOrder(selectivity.NaturalDesc())
	case "event":
		tr.ApplyValueOrder(selectivity.V1(eds, true))
	case "event-asc":
		tr.ApplyValueOrder(selectivity.V1(eds, false))
	case "profile":
		tr.ApplyValueOrder(selectivity.V2(pds, true))
	case "profile-asc":
		tr.ApplyValueOrder(selectivity.V2(pds, false))
	case "event*profile":
		tr.ApplyValueOrder(selectivity.V3(eds, pds, true))
	case "event*profile-asc":
		tr.ApplyValueOrder(selectivity.V3(eds, pds, false))
	default:
		return selectivity.Analysis{}, 0, fmt.Errorf("experiments: unknown ordering %q", order)
	}
	return selectivity.Analyze(tr, eds), len(profiles), nil
}

// Fig4a regenerates Fig. 4(a): natural order vs event order (Measure V1) vs
// binary search across seven event/profile distribution combinations,
// scenario TV4 (analytic average operations per event).
func Fig4a(seed int64) (Table, error) {
	combos := []combo{
		{"d37", "equal"}, {"d5", "d41"}, {"d3", "d39"}, {"d39", "d18"},
		{"d40", "d17"}, {"d42", "d1"}, {"d39", "d1"},
	}
	return figureOverCombos(
		"Fig. 4(a) — influence of value-reordering (Measure V1, TV4)",
		"average #operations per event",
		combos,
		[]string{"natural order search", "event order search", "binary search"},
		[]string{"natural", "event", "binary"},
		func(a selectivity.Analysis, _ int) float64 { return a.TotalOps },
		seed,
	)
}

// Fig4b regenerates Fig. 4(b): Measures V1–V3 vs binary search across eight
// combinations, scenario TV4.
func Fig4b(seed int64) (Table, error) {
	combos := []combo{
		{"d14", "gauss"}, {"d2", "gauss"}, {"d4", "gauss"}, {"d16", "d39"},
		{"d9", "gauss"}, {"d39", "gauss"}, {"d4", "d37"}, {"d17", "d34"},
	}
	return figureOverCombos(
		"Fig. 4(b) — Measures V1–V3 vs binary search (TV4)",
		"average #operations per event",
		combos,
		[]string{"profile order search", "event * profile order search", "events order search", "binary search"},
		[]string{"profile", "event*profile", "event", "binary"},
		func(a selectivity.Analysis, _ int) float64 { return a.TotalOps },
		seed,
	)
}

// fig5Combos are the Fig. 5 event/profile distribution pairs: equally
// distributed events, falling events and peaked events against profile
// peaks of varying probability and location.
var fig5Combos = []combo{
	{"equal", "90% high"}, {"equal", "95% high"}, {"equal", "95% low"},
	{"falling", "95% high"}, {"95% high", "95% low"}, {"95% low", "95% low"},
}

var fig5Orders = []string{"profile", "event*profile", "event", "binary"}

var fig5Labels = []string{
	"profile order search", "event * profile order search",
	"events order search", "binary search",
}

// Fig5a regenerates Fig. 5(a): average operations per event.
func Fig5a(seed int64) (Table, error) {
	return figureOverCombos(
		"Fig. 5(a) — value reordering, average filter operations per event (TV4)",
		"average #operations per event",
		fig5Combos, fig5Labels, fig5Orders,
		func(a selectivity.Analysis, _ int) float64 { return a.TotalOps },
		seed,
	)
}

// Fig5b regenerates Fig. 5(b): average operations per profile — the expected
// operations until a profile's notification, averaged over profiles.
func Fig5b(seed int64) (Table, error) {
	return figureOverCombos(
		"Fig. 5(b) — value reordering, average filter operations per profile (TV4)",
		"average #operations per profile notification",
		fig5Combos, fig5Labels, fig5Orders,
		func(a selectivity.Analysis, _ int) float64 { return a.MeanProfileOps() },
		seed,
	)
}

// Fig5c regenerates Fig. 5(c): average operations per event and profile —
// the per-event cost amortized over the registered profiles.
func Fig5c(seed int64) (Table, error) {
	return figureOverCombos(
		"Fig. 5(c) — value reordering, average filter operations per event and profile (TV4)",
		"average #operations per event per 100 profiles",
		fig5Combos, fig5Labels, fig5Orders,
		func(a selectivity.Analysis, p int) float64 {
			if p == 0 {
				return 0
			}
			return a.TotalOps / float64(p) * 100
		},
		seed,
	)
}

// figureOverCombos runs one ordering strategy per series over all combos.
func figureOverCombos(
	title, metric string,
	combos []combo,
	labels, orders []string,
	pick func(selectivity.Analysis, int) float64,
	seed int64,
) (Table, error) {
	t := Table{Title: title, Metric: metric}
	for _, c := range combos {
		t.Columns = append(t.Columns, c.String())
	}
	for si, order := range orders {
		s := Series{Label: labels[si]}
		for ci, c := range combos {
			// One seed per cell: every strategy sees the same profile corpus.
			a, p, err := evalCell(c, order, seed+int64(ci))
			if err != nil {
				return Table{}, err
			}
			s.Values = append(s.Values, pick(a, p))
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// Fig3 renders the distribution catalog: for each named distribution the
// mass across ten equal cells of the normalized domain, an "impression of
// the distribution" as the paper puts it.
func Fig3(names []string) (Table, error) {
	if len(names) == 0 {
		names = []string{
			"d1", "d2", "d3", "d5", "d9", "d14", "d16", "d17", "d18",
			"d34", "d37", "d39", "d40", "d41", "d42",
			"equal", "gauss", "relgauss-low", "relgauss-high", "falling",
			"95% high", "95% low",
		}
	}
	t := Table{
		Title:  "Fig. 3 — exemplary distributions (mass per decile of the normalized domain)",
		Metric: "probability mass per decile",
	}
	for d := 0; d < 10; d++ {
		t.Columns = append(t.Columns, fmt.Sprintf("%d-%d%%", d*10, (d+1)*10))
	}
	for _, name := range names {
		sh, err := dist.ByName(name)
		if err != nil {
			return Table{}, err
		}
		s := Series{Label: name}
		for d := 0; d < 10; d++ {
			s.Values = append(s.Values, dist.MassOn(sh, float64(d)/10, float64(d+1)/10))
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}
