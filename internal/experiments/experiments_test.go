package experiments

import (
	"math"
	"strings"
	"testing"
)

// The tests in this file assert the qualitative claims of §4.3 — the
// definition of a successful reproduction (DESIGN.md §2): who wins, where,
// and by roughly what factor. Absolute values depend on the synthetic
// distribution catalog and are recorded in EXPERIMENTS.md.

const seed = 1

func find(t *testing.T, tab Table, label string) []float64 {
	t.Helper()
	for _, s := range tab.Series {
		if strings.HasPrefix(s.Label, label) {
			return s.Values
		}
	}
	t.Fatalf("series %q not found in %q", label, tab.Title)
	return nil
}

func TestFig4aClaims(t *testing.T) {
	tab, err := Fig4a(seed)
	if err != nil {
		t.Fatal(err)
	}
	natural := find(t, tab, "natural")
	event := find(t, tab, "event")
	binary := find(t, tab, "binary")

	// Claim 1: natural order oscillates strongly across combinations.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range natural {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi/lo < 2 {
		t.Errorf("natural order should oscillate: min %.2f max %.2f", lo, hi)
	}

	// Claim 2: binary search is balanced (small spread).
	blo, bhi := math.Inf(1), math.Inf(-1)
	for _, v := range binary {
		blo = math.Min(blo, v)
		bhi = math.Max(bhi, v)
	}
	if bhi/blo > 2.5 {
		t.Errorf("binary search should be balanced: min %.2f max %.2f", blo, bhi)
	}

	// Claim 3: event order never loses to natural order on average and wins
	// at least one cell outright against binary ("no perfect approach":
	// different strategies win different cells).
	eventWins := false
	for i := range event {
		if event[i] > natural[i]+1e-9 {
			t.Errorf("cell %s: event %.2f worse than natural %.2f", tab.Columns[i], event[i], natural[i])
		}
		if event[i] < binary[i] {
			eventWins = true
		}
	}
	if !eventWins {
		t.Error("event order should beat binary search on at least one peaked combination")
	}
	binaryWins := false
	for i := range event {
		if binary[i] < event[i] {
			binaryWins = true
		}
	}
	if !binaryWins {
		t.Error("binary search should win somewhere too (no perfect approach)")
	}
}

func TestFig4bClaims(t *testing.T) {
	tab, err := Fig4b(seed)
	if err != nil {
		t.Fatal(err)
	}
	profile := find(t, tab, "profile order")
	combined := find(t, tab, "event * profile")
	event := find(t, tab, "events order")

	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	// "The profile-based reordering (V2) … leads to a decreasing average
	// performance with respect to the events"; "the reordering based on
	// Measure V3 follows a middle course".
	if !(avg(event) < avg(combined) && avg(combined) < avg(profile)) {
		t.Errorf("expected event < event*profile < profile on average, got %.2f / %.2f / %.2f",
			avg(event), avg(combined), avg(profile))
	}
}

func TestFig5Claims(t *testing.T) {
	perEvent, err := Fig5a(seed)
	if err != nil {
		t.Fatal(err)
	}
	perProfile, err := Fig5b(seed)
	if err != nil {
		t.Fatal(err)
	}
	perBoth, err := Fig5c(seed)
	if err != nil {
		t.Fatal(err)
	}

	evEvent := find(t, perEvent, "events order")
	evProfile := find(t, perEvent, "profile order")
	prEvent := find(t, perProfile, "events order")
	prProfile := find(t, perProfile, "profile order")

	// "Algorithms based on V2 and V3 lead to inferior average response time
	// according to the events, but to faster notifications for profiles
	// with high priority": per event, V1 ≤ V2 everywhere; per profile, V2
	// must win at least half the cells.
	for i := range evEvent {
		if evEvent[i] > evProfile[i]+1e-9 {
			t.Errorf("per event, V1 %.2f must not lose to V2 %.2f at %s",
				evEvent[i], evProfile[i], perEvent.Columns[i])
		}
	}
	wins := 0
	for i := range prProfile {
		if prProfile[i] < prEvent[i] {
			wins++
		}
	}
	if wins*2 < len(prProfile) {
		t.Errorf("per profile, V2 should win in at least half the cells; won %d/%d", wins, len(prProfile))
	}

	// The per-event-and-profile metric lands in the paper's sub-1 range.
	for _, s := range perBoth.Series {
		for i, v := range s.Values {
			if v <= 0 || v > 60 {
				t.Errorf("5(c) %s at %s = %.3f out of plausible range", s.Label, perBoth.Columns[i], v)
			}
		}
	}
}

func TestFig6Claims(t *testing.T) {
	for _, fig := range []struct {
		name string
		run  func(int64) (Table, error)
	}{{"6a", Fig6a}, {"6b", Fig6b}} {
		tab, err := fig.run(seed)
		if err != nil {
			t.Fatal(err)
		}
		linear := find(t, tab, "event desc")
		binary := find(t, tab, "binary")
		col := func(name string) int {
			for i, c := range tab.Columns {
				if c == name {
					return i
				}
			}
			t.Fatalf("column %q missing", name)
			return -1
		}
		for _, ed := range []string{"equal", "gauss", "relgauss-low"} {
			nat := col(ed + " natur.")
			asc := col(ed + " asc.")
			desc := col(ed + " desc.")
			// Ascending order is the stated worst case; descending the best.
			if !(linear[desc] <= linear[nat]+1e-9 && linear[nat] <= linear[asc]+1e-9) {
				t.Errorf("%s/%s: want desc ≤ natur ≤ asc, got %.2f / %.2f / %.2f",
					fig.name, ed, linear[desc], linear[nat], linear[asc])
			}
			if binary[asc] < binary[desc] {
				t.Errorf("%s/%s: binary should also benefit from desc ordering", fig.name, ed)
			}
		}
		// The relocated Gauss concentrates on the zero-subdomains, so the
		// descending reordering beats binary search there ("the reordering
		// is faster than binary search since a significant part of the
		// events map onto the zero-subdomain").
		rg := col("relgauss-low desc.")
		if linear[rg] >= binary[rg] {
			t.Errorf("%s: relocated Gauss desc: linear %.2f must beat binary %.2f",
				fig.name, linear[rg], binary[rg])
		}
	}

	// TA1 (wide selectivity spread) must show a larger desc-vs-asc gap than
	// TA2 (small spread) for equal events.
	ta1, err := Fig6a(seed)
	if err != nil {
		t.Fatal(err)
	}
	ta2, err := Fig6b(seed)
	if err != nil {
		t.Fatal(err)
	}
	gap := func(tab Table) float64 {
		linear := find(t, tab, "event desc")
		var asc, desc float64
		for i, c := range tab.Columns {
			switch c {
			case "equal asc.":
				asc = linear[i]
			case "equal desc.":
				desc = linear[i]
			}
		}
		return asc / desc
	}
	if gap(ta1) <= gap(ta2) {
		t.Errorf("TA1 spread %.2f should exceed TA2 spread %.2f", gap(ta1), gap(ta2))
	}
}

func TestFig3Catalog(t *testing.T) {
	tab, err := Fig3(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 10 {
		t.Fatalf("columns = %d", len(tab.Columns))
	}
	for _, s := range tab.Series {
		total := 0.0
		for _, v := range s.Values {
			if v < -1e-12 {
				t.Errorf("%s: negative decile mass %g", s.Label, v)
			}
			total += v
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%s: decile masses sum to %g", s.Label, total)
		}
	}
	if _, err := Fig3([]string{"bogus"}); err == nil {
		t.Error("unknown catalog name must fail")
	}
}

func TestScenariosAgree(t *testing.T) {
	// TV3's empirical mean must sit near TV4's analytic value for the same
	// configuration.
	r3, err := TV3(500, "95% low", "equal", "event", seed)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := TV4(500, "95% low", "equal", "event", seed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r3.MeanOps-r4.MeanOps) > 0.35*r4.MeanOps {
		t.Errorf("TV3 %.3f vs TV4 %.3f diverge", r3.MeanOps, r4.MeanOps)
	}
	if r3.Events != 4000 {
		t.Errorf("TV3 posted %d events, want 4000", r3.Events)
	}
}

func TestTV2Precision(t *testing.T) {
	r, err := TV2(2, 300, "gauss", "equal", "natural", seed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events < minEventsForStop {
		t.Errorf("stopped after %d events, below the floor", r.Events)
	}
	if r.HalfWidth > 0.05*r.MeanOps+1e-9 {
		t.Errorf("precision rule violated: ±%.3f vs mean %.3f", r.HalfWidth, r.MeanOps)
	}
	if r.BuildTime != 0 {
		t.Error("TV2 must not report build time")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "T",
		Metric:  "ops",
		Columns: []string{"c1", "c2"},
		Series:  []Series{{Label: "s", Values: []float64{1, 2}}},
	}
	out := tab.Render()
	for _, want := range []string{"T", "ops", "c1", "c2", "1.000", "2.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	best := Table{
		Columns: []string{"a", "b"},
		Series: []Series{
			{Label: "x", Values: []float64{1, 5}},
			{Label: "y", Values: []float64{2, 3}},
		},
	}.Best()
	if best[0] != 0 || best[1] != 1 {
		t.Errorf("Best = %v", best)
	}
}

func TestUnknownNames(t *testing.T) {
	if _, _, err := evalCell(combo{"bogus", "equal"}, "natural", 1); err == nil {
		t.Error("unknown event distribution must fail")
	}
	if _, _, err := evalCell(combo{"equal", "bogus"}, "natural", 1); err == nil {
		t.Error("unknown profile distribution must fail")
	}
	if _, _, err := evalCell(combo{"equal", "equal"}, "sideways", 1); err == nil {
		t.Error("unknown ordering must fail")
	}
	if _, err := TV4(10, "equal", "equal", "sideways", 1); err == nil {
		t.Error("unknown value order must fail")
	}
}
