package experiments

import (
	"math"
	"testing"
)

func TestDontCareSweep(t *testing.T) {
	tab, err := DontCareSweep(seed)
	if err != nil {
		t.Fatal(err)
	}
	linear := find(t, tab, "ops/event (V1 linear)")
	matchP := find(t, tab, "match probability")
	nodes := find(t, tab, "automaton nodes")

	// Don't-care predicates defeat early rejection: the all-constrained
	// corpus (dc=0%) must be the cheapest column, and match probability must
	// grow monotonically with the don't-care fraction.
	for i := 1; i < len(linear); i++ {
		if linear[0] > linear[i] {
			t.Errorf("dc=0%% (%.2f ops) should be cheapest, column %d has %.2f", linear[0], i, linear[i])
		}
		if matchP[i] < matchP[i-1]-1e-9 {
			t.Errorf("match probability must grow with don't-care fraction: %v", matchP)
		}
	}
	// Complement edges add automaton states over the fully-constrained case.
	if nodes[1] <= nodes[0] {
		t.Errorf("don't-care corpora should enlarge the automaton: %v", nodes)
	}
}

func TestOperatorSweep(t *testing.T) {
	tab, err := OperatorSweep(seed)
	if err != nil {
		t.Fatal(err)
	}
	expM := find(t, tab, "expected matches")
	cols := map[string]int{}
	for i, c := range tab.Columns {
		cols[c] = i
	}
	// Inequality profiles accept almost everything; equality profiles are
	// the most selective family.
	if expM[cols["inequality"]] < 50*expM[cols["equality"]] {
		t.Errorf("inequality should match vastly more than equality: %v", expM)
	}
	if expM[cols["wide-range"]] <= expM[cols["narrow-range"]] {
		t.Errorf("wide ranges should match more than narrow ones: %v", expM)
	}
	edges := find(t, tab, "root subrange edges")
	for i, e := range edges {
		if e <= 0 || e > 2*float64(ProfilesPerCell) {
			t.Errorf("column %d: implausible edge count %g", i, e)
		}
	}
}

func TestSearchSweep(t *testing.T) {
	tab, err := SearchSweep(seed)
	if err != nil {
		t.Fatal(err)
	}
	hash := find(t, tab, "hash")
	interp := find(t, tab, "interpolation")
	binary := find(t, tab, "binary")
	nostop := find(t, tab, "linear-nostop")
	linear := find(t, tab, "linear")

	for i := range hash {
		// Idealized hashing answers any discrete-domain lookup in one
		// operation (up to float rounding in the probability weights).
		if math.Abs(hash[i]-1) > 1e-9 {
			t.Errorf("hash ops at %s = %.3f, want 1", tab.Columns[i], hash[i])
		}
		// Early termination never hurts.
		if linear[i] > nostop[i]+1e-9 {
			t.Errorf("early stop made linear worse at %s: %.2f > %.2f",
				tab.Columns[i], linear[i], nostop[i])
		}
	}
	// Interpolation beats binary when profile values are uniformly spread
	// (perfectly linear key layout).
	if interp[0] >= binary[0] {
		t.Errorf("interpolation %.2f should beat binary %.2f on uniform keys", interp[0], binary[0])
	}
	// …and degrades toward binary on skewed layouts while staying sane.
	last := len(interp) - 1
	if interp[last] > 4*binary[last] {
		t.Errorf("interpolation degraded implausibly: %.2f vs binary %.2f", interp[last], binary[last])
	}
}
