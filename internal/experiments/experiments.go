// Package experiments regenerates the paper's evaluation (§4.3): the value
// reordering figures 4(a), 4(b) and 5(a–c), the attribute reordering figures
// 6(a) and 6(b), the distribution catalog of Fig. 3 and the test scenarios
// TV1–TV4. Each figure function returns a Table whose series mirror the bars
// of the original plot; cmd/reproduce prints them and bench_test.go wraps
// them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
)

// Series is one plotted strategy across the x-axis cells.
type Series struct {
	Label  string
	Values []float64
}

// Table is one regenerated figure.
type Table struct {
	Title   string
	Metric  string
	Columns []string
	Series  []Series
}

// Render prints the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "metric: %s\n", t.Metric)

	wLabel := len("strategy")
	for _, s := range t.Series {
		if len(s.Label) > wLabel {
			wLabel = len(s.Label)
		}
	}
	wCol := 8
	for _, c := range t.Columns {
		if len(c) > wCol {
			wCol = len(c)
		}
	}
	fmt.Fprintf(&b, "%-*s", wLabel+2, "strategy")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %*s", wCol, c)
	}
	b.WriteByte('\n')
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%-*s", wLabel+2, s.Label)
		for _, v := range s.Values {
			fmt.Fprintf(&b, " %*.3f", wCol, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row, for
// plotting pipelines.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString("strategy")
	for _, c := range t.Columns {
		b.WriteString(",")
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, s := range t.Series {
		b.WriteString(csvEscape(s.Label))
		for _, v := range s.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Best returns, per column, the index of the winning (minimal) series.
func (t Table) Best() []int {
	if len(t.Series) == 0 {
		return nil
	}
	out := make([]int, len(t.Columns))
	for c := range t.Columns {
		best := 0
		for s := 1; s < len(t.Series); s++ {
			if t.Series[s].Values[c] < t.Series[best].Values[c] {
				best = s
			}
		}
		out[c] = best
	}
	return out
}

// --- Workload generation --------------------------------------------------------

// Domain1D is the single-attribute integer domain used by the value
// reordering scenarios (TV3/TV4 operate on "full profile tree with one
// attribute only").
const domain1DSize = 100

// Schema1D builds the one-attribute integer schema.
func Schema1D() *schema.Schema {
	dom, err := schema.NewIntegerDomain(0, domain1DSize-1)
	if err != nil {
		panic(err) // static bounds cannot fail
	}
	return schema.MustNew(schema.Attribute{Name: "value", Domain: dom})
}

// GenProfiles1D draws p equality profiles over the 1-D schema with values
// sampled from the profile distribution (the paper's prototype "supports
// only equality tests and don't care cases" for its measurements, §4.2).
// Duplicate values collapse into shared subranges, exactly as repeated user
// interests would.
func GenProfiles1D(s *schema.Schema, p int, pd dist.Dist, rng *rand.Rand) []*predicate.Profile {
	profiles := make([]*predicate.Profile, 0, p)
	for i := 0; i < p; i++ {
		v := pd.Sample(rng)
		pr, err := predicate.NewComparison(0, predicate.OpEq, v)
		if err != nil {
			continue // cannot happen for sampled finite values
		}
		prof, err := predicate.New(s, predicate.ID(fmt.Sprintf("p%04d", i)), pr)
		if err != nil {
			continue
		}
		profiles = append(profiles, prof)
	}
	return profiles
}

// SchemaND builds an n-attribute integer schema for the attribute
// reordering experiments.
func SchemaND(n int) *schema.Schema {
	attrs := make([]schema.Attribute, n)
	for i := range attrs {
		dom, err := schema.NewIntegerDomain(0, domain1DSize-1)
		if err != nil {
			panic(err)
		}
		attrs[i] = schema.Attribute{Name: fmt.Sprintf("a%d", i+1), Domain: dom}
	}
	return schema.MustNew(attrs...)
}

// GenProfilesND draws p range profiles over an n-attribute schema. Attribute
// j's predicates are ranges confined to a band covering widths[j] of the
// domain (centered on the domain middle), so the zero-subdomain fraction
// d₀/d of attribute j is ≈ 1−widths[j]: the "peaks of width from 10%–80%"
// of experiment TA1. Centered bands make the Fig. 6 event distributions
// behave as in the paper: centered Gauss events mostly hit profile ranges
// while a relocated Gauss concentrates on the zero-subdomains.
func GenProfilesND(s *schema.Schema, p int, widths []float64, rng *rand.Rand) []*predicate.Profile {
	profiles := make([]*predicate.Profile, 0, p)
	for i := 0; i < p; i++ {
		preds := make([]predicate.Predicate, 0, s.N())
		for attr := 0; attr < s.N(); attr++ {
			dom := s.At(attr).Domain
			span := dom.Hi() - dom.Lo()
			w := widths[attr]
			bandLo := dom.Lo() + (0.5-w/2)*span // band centered mid-domain
			// Individual ranges cover a random sub-interval of the band.
			a := bandLo + rng.Float64()*w*span
			b := bandLo + rng.Float64()*w*span
			if a > b {
				a, b = b, a
			}
			pr, err := predicate.NewRange(attr, float64(int(a)), float64(int(b)))
			if err != nil {
				continue
			}
			preds = append(preds, pr)
		}
		prof, err := predicate.New(s, predicate.ID(fmt.Sprintf("q%04d", i)), preds...)
		if err != nil {
			continue
		}
		profiles = append(profiles, prof)
	}
	return profiles
}

// distByName resolves a catalog name over a domain.
func distByName(name string, dom schema.Domain) (dist.Dist, error) {
	sh, err := dist.ByName(name)
	if err != nil {
		return dist.Dist{}, err
	}
	return dist.New(sh, dom), nil
}
