package experiments

import (
	"fmt"
	"math/rand"

	"genas/internal/dist"
	"genas/internal/selectivity"
	"genas/internal/tree"
)

// Fig. 6 — attribute reordering. "For each experiment, the profile tree
// contains 5 attributes with different selectivities according to Measure A1
// and A2." Experiment TA1 uses profile distributions with peaks of width
// 10%–80% (wide selectivity spread); TA2 uses distributions that only
// lightly vary. Events are equally distributed, Gauss-distributed, or follow
// a relocated Gauss whose mass concentrates on the zero-subdomains.

// TA1Widths gives attribute coverage fractions 10%–80% (A1 ≈ 0.9…0.2).
var TA1Widths = []float64{0.45, 0.10, 0.80, 0.28, 0.62}

// TA2Widths gives lightly varying coverage (A1 ≈ 0.60…0.45).
var TA2Widths = []float64{0.48, 0.40, 0.55, 0.44, 0.52}

// Fig6ProfileCount keeps the five-attribute trees tractable: range profiles
// over five attributes multiply subranges per level.
const Fig6ProfileCount = 60

// fig6EventDists are the three event distributions of the experiment.
var fig6EventDists = []string{"equal", "gauss", "relgauss-low"}

// fig6Orderings are the three tree orderings: the natural attribute order,
// ascending selectivity (the worst case) and descending selectivity
// (Measure A2's recommendation).
var fig6Orderings = []string{"natur.", "asc.", "desc."}

// Fig6 regenerates Fig. 6(a) (wide selectivity differences, TA1) or 6(b)
// (small differences, TA2). Columns are eventDist × ordering, series are
// the two search strategies of the figure: the event-descending linear
// order and binary search.
func Fig6(widths []float64, title string, seed int64) (Table, error) {
	s := SchemaND(len(widths))
	rng := rand.New(rand.NewSource(seed))
	profiles := GenProfilesND(s, Fig6ProfileCount, widths, rng)
	if len(profiles) == 0 {
		return Table{}, fmt.Errorf("experiments: no profiles generated")
	}

	t := Table{Title: title, Metric: "average #operations per event"}
	linear := Series{Label: "event desc order search"}
	binary := Series{Label: "binary search"}

	for _, edName := range fig6EventDists {
		eds := make([]dist.Dist, s.N())
		for i := 0; i < s.N(); i++ {
			d, err := distByName(edName, s.At(i).Domain)
			if err != nil {
				return Table{}, err
			}
			eds[i] = d
		}
		stats := selectivity.AttributeStats(s, profiles, eds)

		for _, ord := range fig6Orderings {
			var order []int
			switch ord {
			case "natur.":
				order = identity(s.N())
			case "asc.":
				order = selectivity.OrderAttributes(stats, selectivity.MeasureA2, false)
			default:
				order = selectivity.OrderAttributes(stats, selectivity.MeasureA2, true)
			}
			t.Columns = append(t.Columns, edName+" "+ord)

			tr, err := tree.Build(s, profiles, tree.WithAttributeOrder(order))
			if err != nil {
				return Table{}, err
			}
			tr.ApplyValueOrder(selectivity.V1(eds, true))
			linear.Values = append(linear.Values, selectivity.Analyze(tr, eds).TotalOps)

			// Binary search ignores the scan order, so the same automaton is
			// reused with the strategy switched.
			tr.SetStrategy(tree.SearchBinary)
			binary.Values = append(binary.Values, selectivity.Analyze(tr, eds).TotalOps)
			tr.SetStrategy(tree.SearchLinear)
		}
	}
	t.Series = []Series{linear, binary}
	return t, nil
}

// Fig6a regenerates Fig. 6(a): wide differences in attribute selectivities.
func Fig6a(seed int64) (Table, error) {
	return Fig6(TA1Widths,
		"Fig. 6(a) — attribute reordering, wide selectivity differences (TA1)", seed)
}

// Fig6b regenerates Fig. 6(b): small differences in attribute selectivities.
func Fig6b(seed int64) (Table, error) {
	return Fig6(TA2Widths,
		"Fig. 6(b) — attribute reordering, small selectivity differences (TA2)", seed)
}

func identity(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}
