package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"genas/internal/predicate"
)

// BatchResult carries one event's match outcome inside a batch.
type BatchResult struct {
	// IDs holds the matched profile ids.
	IDs []predicate.ID
	// Ops is the comparison count spent on the event.
	Ops int
}

// batchChunk is the number of events one worker claims at a time; large
// enough to amortize the claim, small enough to balance skewed match costs.
const batchChunk = 64

// MatchBatch filters many events concurrently against one automaton
// snapshot. All events in the batch see the same profile corpus even if
// subscriptions change mid-flight, and results are positionally aligned
// with the input. workers ≤ 0 selects GOMAXPROCS.
//
// The snapshot is loaded once and traversed lock-free: it is immutable, so
// neither churn nor restructuring mid-batch affects the workers, and no
// writer ever waits on an in-flight batch.
func (e *Engine) MatchBatch(events [][]float64, workers int) ([]BatchResult, error) {
	if len(events) == 0 {
		return nil, nil
	}
	snap := e.snap.Load()
	if !snap.empty && snap.tree == nil {
		var err error
		snap, err = e.lazySnapshot()
		if err != nil {
			return nil, err
		}
	}
	if snap.empty || snap.tree == nil {
		return make([]BatchResult, len(events)), nil
	}
	t := snap.tree

	results := make([]BatchResult, len(events))
	profiles := t.Profiles()
	runBatch(len(events), workers, func(i int) {
		matched, ops := t.Match(events[i])
		if snap.expand != nil {
			ids, expOps := snap.expand.Expand(events[i], matched, snap.t2n, t, nil)
			results[i] = BatchResult{IDs: ids, Ops: ops + expOps}
			return
		}
		ids := make([]predicate.ID, 0, len(matched))
		for _, pi := range matched {
			if t.Dead(pi) {
				continue
			}
			ids = append(ids, profiles[pi].ID)
		}
		results[i] = BatchResult{IDs: ids, Ops: ops}
	})

	for _, r := range results {
		e.account.Record(r.Ops, len(r.IDs))
	}
	return results, nil
}

// runBatch fans fn(i) for i in [0,n) across workers with chunked work
// stealing. workers ≤ 0 selects GOMAXPROCS; a single worker runs inline.
func runBatch(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > (n+batchChunk-1)/batchChunk {
		workers = (n + batchChunk - 1) / batchChunk
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(batchChunk)) - batchChunk
				if lo >= n {
					return
				}
				hi := lo + batchChunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
