package core

import (
	"runtime"
	"sync"
)

// BatchResult carries one event's match outcome inside a batch.
type BatchResult struct {
	// Matched holds dense profile indices into the snapshot used for the
	// batch (ascending).
	Matched []int
	// Ops is the comparison count spent on the event.
	Ops int
}

// MatchBatch filters many events concurrently against one automaton
// snapshot. All events in the batch see the same profile corpus even if
// subscriptions change mid-flight, and results are positionally aligned
// with the input. workers ≤ 0 selects GOMAXPROCS.
//
// The profile tree is immutable after construction and value reordering, so
// concurrent matching needs no locking — the snapshot pattern the single-
// event path uses extends to whole batches at amortized synchronization
// cost.
func (e *Engine) MatchBatch(events [][]float64, workers int) ([]BatchResult, error) {
	if len(events) == 0 {
		return nil, nil
	}
	t, err := e.snapshot()
	if err != nil {
		if err == ErrNoProfiles {
			return make([]BatchResult, len(events)), nil
		}
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(events) {
		workers = len(events)
	}

	results := make([]BatchResult, len(events))
	var next int
	var mu sync.Mutex
	const chunk = 64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := next
				next += chunk
				mu.Unlock()
				if lo >= len(events) {
					return
				}
				hi := lo + chunk
				if hi > len(events) {
					hi = len(events)
				}
				for i := lo; i < hi; i++ {
					matched, ops := t.Match(events[i])
					results[i] = BatchResult{Matched: matched, Ops: ops}
				}
			}
		}()
	}
	wg.Wait()

	for _, r := range results {
		e.account.Record(r.Ops, len(r.Matched))
	}
	return results, nil
}
