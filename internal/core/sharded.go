package core

import (
	"errors"
	"runtime"
	"sync"

	"genas/internal/agg"
	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/selectivity"
	"genas/internal/stats"
	"genas/internal/tree"
)

// Sharded is an N-way partitioned filter: profiles are hashed across N
// independent single-tree engines, each with its own profile tree,
// selectivity state and lock. An event is matched against every shard and
// the per-shard results are merged, so the match set is identical to a
// single-tree engine over the same corpus; what changes is the concurrency
// layout:
//
//   - profile churn (subscribe/unsubscribe) publishes a successor snapshot
//     on one shard, while matching proceeds lock-free on all N;
//   - restructuring (Reorder/Rebuild) swaps one shard's snapshot at a time
//     instead of stopping the world;
//   - operation accounting stripes across per-shard accounts, so parallel
//     publishers do not serialize on a single accounting mutex.
//
// Stats totals are preserved: one published event is one accounted event
// whose operation count is the sum over shards.
type Sharded struct {
	schema   *schema.Schema
	shards   []*Engine
	accounts []*stats.OpAccount
}

// ShardOf returns the shard index of a profile id under an n-way partition
// (FNV-1a, inlined: the broker calls this once per delivered notification,
// so it must not allocate). The broker uses the same function to align its
// delivery state with the engine's partition.
func ShardOf(id predicate.ID, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// ResolveShards normalizes a user-facing shard count: n ≤ 0 selects
// GOMAXPROCS, anything else passes through. Every layer that accepts
// "0 = pick for me" (the genas facade, the genasd flag) resolves through
// this one function; broker.Options keeps 0 as its zero value (single
// tree).
func ResolveShards(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// NewSharded creates an n-way sharded engine over schema s. n ≤ 0 selects
// GOMAXPROCS shards.
func NewSharded(s *schema.Schema, cfg Config, n int) *Sharded {
	n = ResolveShards(n)
	sh := &Sharded{
		schema:   s,
		shards:   make([]*Engine, n),
		accounts: make([]*stats.OpAccount, n),
	}
	for i := range sh.shards {
		sh.shards[i] = NewEngine(s, cfg)
		sh.accounts[i] = &stats.OpAccount{}
	}
	return sh
}

// Schema returns the engine's schema.
func (sh *Sharded) Schema() *schema.Schema { return sh.schema }

// ShardCount returns the number of shards.
func (sh *Sharded) ShardCount() int { return len(sh.shards) }

// Shard exposes one shard engine (diagnostics and tests).
func (sh *Sharded) Shard(i int) *Engine { return sh.shards[i] }

// AddProfile registers a profile on its home shard.
func (sh *Sharded) AddProfile(p *predicate.Profile) error {
	return sh.shards[ShardOf(p.ID, len(sh.shards))].AddProfile(p)
}

// RemoveProfile unregisters a profile from its home shard.
func (sh *Sharded) RemoveProfile(id predicate.ID) error {
	return sh.shards[ShardOf(id, len(sh.shards))].RemoveProfile(id)
}

// ProfileCount returns the number of registered profiles across shards.
func (sh *Sharded) ProfileCount() int {
	n := 0
	for _, e := range sh.shards {
		n += e.ProfileCount()
	}
	return n
}

// Profiles returns a copy of the registered profiles in shard order.
func (sh *Sharded) Profiles() []*predicate.Profile {
	var out []*predicate.Profile
	for _, e := range sh.shards {
		out = append(out, e.Profiles()...)
	}
	return out
}

// stripeHint is a per-P round-robin counter handed out by a sync.Pool: Get
// normally returns the current P's cached object, so concurrent publishers
// advance private counters instead of bouncing one shared cache line, and
// identical events still spread across stripes (a value-derived stripe would
// collapse onto one account for a hot repeated reading).
type stripeHint struct{ n uint64 }

var stripePool = sync.Pool{New: func() any { return new(stripeHint) }}

// record stripes one event's accounting across the per-shard accounts. Any
// spread works — the merge on Account restores exact totals — the only
// requirement is that choosing a stripe stays off shared state on the hot
// path.
func (sh *Sharded) record(ops, matched int) {
	h := stripePool.Get().(*stripeHint)
	h.n++
	idx := h.n % uint64(len(sh.accounts))
	stripePool.Put(h)
	sh.accounts[idx].Record(ops, matched)
}

// Match filters one event against every shard and merges the results in
// shard order. The merged id set equals the single-tree match set; the
// operation count is the sum over shards (each shard pays its own root
// dispatch). Shards are visited sequentially in the caller's goroutine —
// per-shard matches are far cheaper than cross-goroutine handoff, so
// parallelism comes from concurrent publishers (and from MatchBatch, which
// fans events out across workers).
//
//genas:hotpath
func (sh *Sharded) Match(vals []float64) ([]predicate.ID, int, error) {
	ids := make([]predicate.ID, 0, 8)
	ops := 0
	empties := 0
	for _, e := range sh.shards {
		var sops int
		var empty bool
		var err error
		ids, sops, empty, err = e.matchIDs(vals, ids)
		if err != nil {
			return nil, 0, err
		}
		if empty {
			empties++
			continue
		}
		ops += sops
	}
	if empties == len(sh.shards) {
		return nil, 0, nil // an empty filter matches nothing
	}
	sh.record(ops, len(ids))
	return ids, ops, nil
}

// MatchBatch filters many events against one immutable snapshot per shard.
// The snapshots are collected once (resolving lazy rebuilds) and traversed
// lock-free, so all events in the batch see a consistent corpus and neither
// churn nor per-shard restructuring waits for in-flight batches. Events fan
// out across workers; each worker matches its events against all shards and
// merges inline.
func (sh *Sharded) MatchBatch(events [][]float64, workers int) ([]BatchResult, error) {
	if len(events) == 0 {
		return nil, nil
	}
	type shardSnap struct {
		t        *tree.Tree
		profiles []*predicate.Profile
		expand   *agg.Snapshot
		t2n      []int32
	}
	snaps := make([]shardSnap, 0, len(sh.shards))
	for _, e := range sh.shards {
		s := e.snap.Load()
		if !s.empty && s.tree == nil {
			var err error
			s, err = e.lazySnapshot()
			if err != nil {
				return nil, err
			}
		}
		if s.empty || s.tree == nil {
			continue
		}
		snaps = append(snaps, shardSnap{t: s.tree, profiles: s.tree.Profiles(), expand: s.expand, t2n: s.t2n})
	}
	results := make([]BatchResult, len(events))
	if len(snaps) == 0 {
		return results, nil
	}
	runBatch(len(events), workers, func(i int) {
		var ids []predicate.ID
		ops := 0
		for _, sn := range snaps {
			matched, o := sn.t.Match(events[i])
			ops += o
			if sn.expand != nil {
				var expOps int
				ids, expOps = sn.expand.Expand(events[i], matched, sn.t2n, sn.t, ids)
				ops += expOps
				continue
			}
			for _, pi := range matched {
				if sn.t.Dead(pi) {
					continue
				}
				ids = append(ids, sn.profiles[pi].ID)
			}
		}
		results[i] = BatchResult{IDs: ids, Ops: ops}
	})
	for _, r := range results {
		sh.record(r.Ops, len(r.IDs))
	}
	return results, nil
}

// perShard runs f concurrently on every shard and returns the combined
// error. Each shard locks independently, so a rebuild of shard i never
// blocks matching on shard j.
func (sh *Sharded) perShard(f func(e *Engine) error) error {
	errs := make([]error, len(sh.shards))
	var wg sync.WaitGroup
	for i, e := range sh.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = f(e)
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rebuild reconstructs every non-empty shard's automaton concurrently. A
// shard found empty (even one emptied concurrently, after any pre-check
// could run) has nothing to build and does not fail the restructure.
func (sh *Sharded) Rebuild() error {
	return sh.perShard(func(e *Engine) error {
		if err := e.Rebuild(); err != nil && !errors.Is(err, ErrNoProfiles) {
			return err
		}
		return nil
	})
}

// Reorder re-applies the value ordering on every non-empty shard
// concurrently (the cheap half of restructuring). Empty shards are skipped,
// not failed, like in Rebuild.
func (sh *Sharded) Reorder() error {
	return sh.perShard(func(e *Engine) error {
		if err := e.Reorder(); err != nil && !errors.Is(err, ErrNoProfiles) {
			return err
		}
		return nil
	})
}

// Config returns a copy of the current configuration (identical across
// shards).
func (sh *Sharded) Config() Config { return sh.shards[0].Config() }

// SetConfig replaces the measure/search configuration on every shard; the
// change takes effect on the next Rebuild or Reorder.
func (sh *Sharded) SetConfig(cfg Config) {
	for _, e := range sh.shards {
		e.SetConfig(cfg)
	}
}

// SetEventDists replaces P_e on every shard. The adaptive component feeds
// one drift snapshot aggregated over the whole event stream; every shard
// reorders against the same distributions.
func (sh *Sharded) SetEventDists(ds []dist.Dist) {
	for _, e := range sh.shards {
		e.SetEventDists(ds)
	}
}

// AggStats merges the per-shard aggregation summaries: counts add (each
// shard's poset is independent), the depth is the worst shard's.
func (sh *Sharded) AggStats() AggStats {
	var out AggStats
	for _, e := range sh.shards {
		st := e.AggStats()
		if !st.Enabled {
			continue
		}
		out.Enabled = true
		out.Subscriptions += st.Subscriptions
		out.Nodes += st.Nodes
		out.Roots += st.Roots
		if st.MaxDepth > out.MaxDepth {
			out.MaxDepth = st.MaxDepth
		}
	}
	return out
}

// Account returns the merged operation accounting summary: totals are exact
// sums, the confidence interval merges the striped Welford accumulators.
func (sh *Sharded) Account() stats.Summary { return stats.MergeSummary(sh.accounts) }

// ResetAccount clears operation accounting on every stripe.
func (sh *Sharded) ResetAccount() {
	for _, a := range sh.accounts {
		a.Reset()
	}
}

// Analyze merges the analytic cost model across shards. Expected operations
// add (every event visits every shard); the match probability combines as
// 1−Π(1−pᵢ) under the shards' independent corpora; per-profile costs align
// with Profiles() order.
func (sh *Sharded) Analyze() (selectivity.Analysis, error) {
	var out selectivity.Analysis
	nonEmpty := 0
	missProb := 1.0
	for _, e := range sh.shards {
		a, err := e.Analyze()
		if errors.Is(err, ErrNoProfiles) {
			continue // empty shards contribute nothing, as in Rebuild/Reorder
		}
		if err != nil {
			return selectivity.Analysis{}, err
		}
		nonEmpty++
		out.MatchOps += a.MatchOps
		out.R0Ops += a.R0Ops
		out.TotalOps += a.TotalOps
		out.ExpMatches += a.ExpMatches
		missProb *= 1 - a.MatchProb
		out.PerLevelOps = addLevels(out.PerLevelOps, a.PerLevelOps)
		out.PerLevelMatch = addLevels(out.PerLevelMatch, a.PerLevelMatch)
		out.PerLevelR0 = addLevels(out.PerLevelR0, a.PerLevelR0)
		out.PerProfile = append(out.PerProfile, a.PerProfile...)
	}
	if nonEmpty == 0 {
		return selectivity.Analysis{}, ErrNoProfiles
	}
	out.MatchProb = 1 - missProb
	return out, nil
}

// addLevels element-wise adds b into a, growing a as needed.
func addLevels(a, b []float64) []float64 {
	if len(b) > len(a) {
		a = append(a, make([]float64, len(b)-len(a))...)
	}
	for i, v := range b {
		a[i] += v
	}
	return a
}
