// Package core assembles the paper's primary contribution: the
// distribution-dependent tree filter (§4). An Engine owns the profile
// corpus, builds the profile-tree automaton, applies the configured
// selectivity measures — value measures V1–V3 and attribute measures A1–A3 —
// and filters events while accounting operations.
//
// The engine "evaluates first those event-values and attributes that have
// the highest selectivity": attributes with high selectivity move to the top
// levels of the tree and, inside every node, values with the highest
// selectivity are tested first (§4.1).
package core

import (
	"errors"
	"fmt"
	"sync"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/selectivity"
	"genas/internal/stats"
	"genas/internal/tree"
)

// ValueMeasure selects the within-node value ordering.
type ValueMeasure int

// Value orderings: the prototype's four orders, each ascending or
// descending, plus binary search handled via Config.Search ("We tested all
// permutations … with 8 different orderings plus binary search", §4.3).
const (
	ValueNatural ValueMeasure = iota + 1
	ValueNaturalDesc
	ValueEvent // Measure V1, descending P_e
	ValueEventAsc
	ValueProfile // Measure V2, descending P_p
	ValueProfileAsc
	ValueCombined // Measure V3, descending P_e·P_p
	ValueCombinedAsc
)

// String names the measure as used in experiment tables.
func (v ValueMeasure) String() string {
	switch v {
	case ValueNatural:
		return "natural"
	case ValueNaturalDesc:
		return "natural-desc"
	case ValueEvent:
		return "event"
	case ValueEventAsc:
		return "event-asc"
	case ValueProfile:
		return "profile"
	case ValueProfileAsc:
		return "profile-asc"
	case ValueCombined:
		return "event*profile"
	case ValueCombinedAsc:
		return "event*profile-asc"
	default:
		return fmt.Sprintf("ValueMeasure(%d)", int(v))
	}
}

// AttrOrdering selects the attribute (level) ordering.
type AttrOrdering int

// Attribute orderings. AttrNatural keeps schema order; AttrA1/AttrA2/AttrA3
// apply the corresponding selectivity measure descending (most selective at
// the root); the Asc variants are the paper's worst-case controls.
const (
	AttrNatural AttrOrdering = iota + 1
	AttrA1
	AttrA1Asc
	AttrA2
	AttrA2Asc
	AttrA3
)

// String names the ordering.
func (a AttrOrdering) String() string {
	switch a {
	case AttrNatural:
		return "natural"
	case AttrA1:
		return "A1-desc"
	case AttrA1Asc:
		return "A1-asc"
	case AttrA2:
		return "A2-desc"
	case AttrA2Asc:
		return "A2-asc"
	case AttrA3:
		return "A3"
	default:
		return fmt.Sprintf("AttrOrdering(%d)", int(a))
	}
}

// Config parameterizes an Engine.
type Config struct {
	// ValueMeasure selects the node-internal value order (default natural).
	ValueMeasure ValueMeasure
	// AttrOrdering selects the level order (default natural).
	AttrOrdering AttrOrdering
	// Search selects the within-node strategy (default linear with the
	// lookup-table early-termination rule).
	Search tree.Search
	// EventDists is P_e per schema attribute. Nil means uniform; the
	// adaptive component replaces it with live histogram snapshots.
	EventDists []dist.Dist
	// ProfileDists is P_p per schema attribute. Nil means the empirical
	// profile distribution derived from the corpus itself.
	ProfileDists []dist.Dist
}

// Errors returned by the engine.
var (
	ErrDuplicateProfile = errors.New("core: duplicate profile id")
	ErrUnknownProfile   = errors.New("core: unknown profile id")
	ErrNoProfiles       = errors.New("core: no profiles registered")
)

// Engine is the distribution-based filter component. It is safe for
// concurrent use: matches take a read lock; profile changes and rebuilds
// take the write lock.
type Engine struct {
	mu      sync.RWMutex
	schema  *schema.Schema
	cfg     Config
	byID    map[predicate.ID]int
	dense   []*predicate.Profile
	tree    *tree.Tree
	dirty   bool
	account stats.OpAccount
	// runlock/unlock are the bound unlock method values, captured once at
	// construction: returning e.mu.RUnlock directly from acquire would
	// allocate a fresh method-value closure on every match, the single
	// allocation that kept the publish hot path from being allocation-free.
	runlock func()
	unlock  func()
}

// NewEngine creates an engine over schema s.
func NewEngine(s *schema.Schema, cfg Config) *Engine {
	if cfg.ValueMeasure == 0 {
		cfg.ValueMeasure = ValueNatural
	}
	if cfg.AttrOrdering == 0 {
		cfg.AttrOrdering = AttrNatural
	}
	if cfg.Search == 0 {
		cfg.Search = tree.SearchLinear
	}
	e := &Engine{
		schema: s,
		cfg:    cfg,
		byID:   make(map[predicate.ID]int),
	}
	e.runlock = e.mu.RUnlock
	e.unlock = e.mu.Unlock
	return e
}

// Schema returns the engine's schema.
func (e *Engine) Schema() *schema.Schema { return e.schema }

// AddProfile registers a profile; the tree is rebuilt lazily on the next
// match or explicit Rebuild.
func (e *Engine) AddProfile(p *predicate.Profile) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.byID[p.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateProfile, p.ID)
	}
	e.byID[p.ID] = len(e.dense)
	e.dense = append(e.dense, p)
	e.dirty = true
	return nil
}

// RemoveProfile unregisters a profile by id.
func (e *Engine) RemoveProfile(id predicate.ID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	i, ok := e.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProfile, id)
	}
	last := len(e.dense) - 1
	e.dense[i] = e.dense[last]
	e.dense = e.dense[:last]
	delete(e.byID, id)
	if i < last {
		e.byID[e.dense[i].ID] = i
	}
	e.dirty = true
	return nil
}

// ProfileCount returns the number of registered profiles.
func (e *Engine) ProfileCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.dense)
}

// Profiles returns a copy of the registered profiles.
func (e *Engine) Profiles() []*predicate.Profile {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*predicate.Profile, len(e.dense))
	copy(out, e.dense)
	return out
}

// eventDists returns P_e, defaulting to uniform per attribute.
func (e *Engine) eventDists() []dist.Dist {
	if e.cfg.EventDists != nil {
		return e.cfg.EventDists
	}
	ds := make([]dist.Dist, e.schema.N())
	for i := range ds {
		ds[i] = dist.New(dist.UniformShape{}, e.schema.At(i).Domain)
	}
	return ds
}

// valueOrder materializes the configured value measure.
func (e *Engine) valueOrder() tree.ValueOrder {
	ed := e.eventDists()
	pd := e.cfg.ProfileDists
	switch e.cfg.ValueMeasure {
	case ValueNaturalDesc:
		return selectivity.NaturalDesc()
	case ValueEvent:
		return selectivity.V1(ed, true)
	case ValueEventAsc:
		return selectivity.V1(ed, false)
	case ValueProfile:
		if pd == nil {
			return selectivity.V2Empirical(e.schema, e.dense, true)
		}
		return selectivity.V2(pd, true)
	case ValueProfileAsc:
		if pd == nil {
			return selectivity.V2Empirical(e.schema, e.dense, false)
		}
		return selectivity.V2(pd, false)
	case ValueCombined, ValueCombinedAsc:
		desc := e.cfg.ValueMeasure == ValueCombined
		if pd == nil {
			emp := selectivity.V2Empirical(e.schema, e.dense, desc)
			v1 := selectivity.V1(ed, desc)
			return tree.ValueOrder{
				Name:       "event*profile-emp",
				Descending: desc,
				Rank: func(attr int, region []tree.Interval) float64 {
					return v1.Rank(attr, region) * emp.Rank(attr, region)
				},
			}
		}
		return selectivity.V3(ed, pd, desc)
	default:
		return selectivity.Natural()
	}
}

// attrOrder computes the configured attribute order.
func (e *Engine) attrOrder() ([]int, error) {
	switch e.cfg.AttrOrdering {
	case AttrA1, AttrA1Asc:
		st := selectivity.AttributeStats(e.schema, e.dense, nil)
		return selectivity.OrderAttributes(st, selectivity.MeasureA1, e.cfg.AttrOrdering == AttrA1), nil
	case AttrA2, AttrA2Asc:
		st := selectivity.AttributeStats(e.schema, e.dense, e.eventDists())
		return selectivity.OrderAttributes(st, selectivity.MeasureA2, e.cfg.AttrOrdering == AttrA2), nil
	case AttrA3:
		order, _, err := selectivity.OrderAttributesA3(
			e.schema, e.dense, e.eventDists(), e.valueOrder(), e.cfg.Search)
		return order, err
	default:
		order := make([]int, e.schema.N())
		for i := range order {
			order[i] = i
		}
		return order, nil
	}
}

// Rebuild reconstructs the automaton with the current configuration. It is
// the expensive half of restructuring; Reorder is the cheap half.
func (e *Engine) Rebuild() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rebuildLocked()
}

func (e *Engine) rebuildLocked() error {
	if len(e.dense) == 0 {
		return ErrNoProfiles
	}
	order, err := e.attrOrder()
	if err != nil {
		return err
	}
	// The automaton keeps its own copy of the corpus: RemoveProfile mutates
	// e.dense in place, and in-flight matches must keep translating dense
	// indices against the snapshot that produced them.
	corpus := make([]*predicate.Profile, len(e.dense))
	copy(corpus, e.dense)
	t, err := tree.Build(e.schema, corpus,
		tree.WithAttributeOrder(order), tree.WithSearch(e.cfg.Search))
	if err != nil {
		return err
	}
	t.ApplyValueOrder(e.valueOrder())
	e.tree = t
	e.dirty = false
	return nil
}

// Reorder re-applies the value ordering on the existing structure (cheap
// restructuring after a distribution update).
func (e *Engine) Reorder() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tree == nil || e.dirty {
		return e.rebuildLocked()
	}
	e.tree.ApplyValueOrder(e.valueOrder())
	return nil
}

// SetEventDists replaces P_e (the adaptive component's entry point) without
// restructuring; call Reorder or Rebuild to apply it.
func (e *Engine) SetEventDists(ds []dist.Dist) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.EventDists = ds
}

// Config returns a copy of the current configuration.
func (e *Engine) Config() Config {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cfg
}

// SetConfig replaces the measure/search configuration; the change takes
// effect on the next Rebuild or Reorder.
func (e *Engine) SetConfig(cfg Config) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cfg.ValueMeasure == 0 {
		cfg.ValueMeasure = e.cfg.ValueMeasure
	}
	if cfg.AttrOrdering == 0 {
		cfg.AttrOrdering = e.cfg.AttrOrdering
	}
	if cfg.Search == 0 {
		cfg.Search = e.cfg.Search
	}
	e.cfg = cfg
	e.dirty = true
}

// Match filters one event, returning matched profile IDs and the operations
// spent. The tree is rebuilt transparently if profiles changed. IDs are
// resolved against the same automaton snapshot that produced the match, so
// concurrent profile churn cannot skew the translation.
//
//genas:hotpath
func (e *Engine) Match(vals []float64) ([]predicate.ID, int, error) {
	ids, ops, empty, err := e.matchIDs(vals, nil)
	if err != nil || empty {
		return nil, 0, err
	}
	e.account.Record(ops, len(ids))
	return ids, ops, nil
}

// matchIDs is Match without operation accounting, appending matched ids to
// dst: the sharded engine merges per-shard results into one buffer and
// accounts once per event at the top level. empty reports that the engine
// holds no profiles (which matches nothing and does not count as a filtered
// event).
//
//genas:hotpath
func (e *Engine) matchIDs(vals []float64, dst []predicate.ID) (ids []predicate.ID, ops int, empty bool, err error) {
	t, release, err := e.acquire()
	if errors.Is(err, ErrNoProfiles) {
		return dst, 0, true, nil
	}
	if err != nil {
		return dst, 0, false, err
	}
	matched, matchOps := t.Match(vals)
	ids = dst
	if ids == nil {
		ids = make([]predicate.ID, 0, len(matched))
	}
	profiles := t.Profiles()
	for _, pi := range matched {
		ids = append(ids, profiles[pi].ID)
	}
	release()
	return ids, matchOps, false, nil
}

// MatchDense is Match returning dense indices into the tree snapshot (hot
// path; avoids the ID materialization). The indices are only meaningful
// against Tree().Profiles() of the same snapshot.
//
//genas:hotpath
func (e *Engine) MatchDense(vals []float64) ([]int, int, error) {
	t, release, err := e.acquire()
	if errors.Is(err, ErrNoProfiles) {
		return nil, 0, nil // an empty filter matches nothing
	}
	if err != nil {
		return nil, 0, err
	}
	matched, ops := t.Match(vals)
	release()
	e.account.Record(ops, len(matched))
	return matched, ops, nil
}

// acquire returns the current automaton with the engine read lock held,
// rebuilding first when profiles changed since the last build. The caller
// must invoke release when done traversing: Reorder applies value orders to
// the live tree in place, so matches must exclude writers for their whole
// traversal, not only while fetching the root pointer. The release
// functions are the runlock/unlock fields bound once at construction —
// returning a fresh method value here would put one closure allocation on
// every match (the PR 3 regression hotpath now guards against).
//
//genas:hotpath
func (e *Engine) acquire() (*tree.Tree, func(), error) {
	e.mu.RLock()
	if !e.dirty && e.tree != nil {
		return e.tree, e.runlock, nil
	}
	if len(e.dense) == 0 {
		// Decide emptiness under the read lock: an empty engine (e.g. an
		// unpopulated shard) must not escalate to the write lock on every
		// match, or parallel publishers re-serialize on it.
		e.mu.RUnlock()
		return nil, nil, ErrNoProfiles
	}
	e.mu.RUnlock()
	e.mu.Lock()
	if e.dirty || e.tree == nil {
		if err := e.rebuildLocked(); err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
	}
	// Serve the traversal from the freshly built tree while still holding
	// the write lock: dropping it to re-enter the read path could loop
	// forever under sustained profile churn (every re-entry finding the
	// tree re-dirtied and paying another rebuild). Single-event traversals
	// are short, so the write-hold is cheap; long traversals use
	// acquireShared instead.
	return e.tree, e.unlock, nil
}

// acquireShared is acquire for long traversals (whole batches): it prefers
// serving from the read lock — holding the write lock across a large batch
// would stall every concurrent publisher on the shard — and pays a bounded
// number of rebuild/retry rounds under churn before falling back to
// acquire's write-held traversal.
func (e *Engine) acquireShared() (*tree.Tree, func(), error) {
	for try := 0; try < 4; try++ {
		e.mu.RLock()
		if !e.dirty && e.tree != nil {
			return e.tree, e.runlock, nil
		}
		if len(e.dense) == 0 {
			e.mu.RUnlock()
			return nil, nil, ErrNoProfiles
		}
		e.mu.RUnlock()
		e.mu.Lock()
		if e.dirty || e.tree == nil {
			if err := e.rebuildLocked(); err != nil {
				e.mu.Unlock()
				return nil, nil, err
			}
		}
		e.mu.Unlock()
	}
	return e.acquire()
}

// Tree exposes the current automaton (nil until built). The experiments
// harness uses it for analytic evaluation.
func (e *Engine) Tree() *tree.Tree {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tree
}

// Analyze runs the analytic cost model (Eq. 2) under the engine's event
// distributions.
func (e *Engine) Analyze() (selectivity.Analysis, error) {
	t, release, err := e.acquire()
	if err != nil {
		return selectivity.Analysis{}, err
	}
	defer release()
	return selectivity.Analyze(t, e.eventDists()), nil
}

// Account returns the live operation accounting summary.
func (e *Engine) Account() stats.Summary { return e.account.Summary() }

// ResetAccount clears operation accounting.
func (e *Engine) ResetAccount() { e.account.Reset() }
