// Package core assembles the paper's primary contribution: the
// distribution-dependent tree filter (§4). An Engine owns the profile
// corpus, builds the profile-tree automaton, applies the configured
// selectivity measures — value measures V1–V3 and attribute measures A1–A3 —
// and filters events while accounting operations.
//
// The engine "evaluates first those event-values and attributes that have
// the highest selectivity": attributes with high selectivity move to the top
// levels of the tree and, inside every node, values with the highest
// selectivity are tested first (§4.1).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/selectivity"
	"genas/internal/stats"
	"genas/internal/tree"
)

// ValueMeasure selects the within-node value ordering.
type ValueMeasure int

// Value orderings: the prototype's four orders, each ascending or
// descending, plus binary search handled via Config.Search ("We tested all
// permutations … with 8 different orderings plus binary search", §4.3).
const (
	ValueNatural ValueMeasure = iota + 1
	ValueNaturalDesc
	ValueEvent // Measure V1, descending P_e
	ValueEventAsc
	ValueProfile // Measure V2, descending P_p
	ValueProfileAsc
	ValueCombined // Measure V3, descending P_e·P_p
	ValueCombinedAsc
)

// String names the measure as used in experiment tables.
func (v ValueMeasure) String() string {
	switch v {
	case ValueNatural:
		return "natural"
	case ValueNaturalDesc:
		return "natural-desc"
	case ValueEvent:
		return "event"
	case ValueEventAsc:
		return "event-asc"
	case ValueProfile:
		return "profile"
	case ValueProfileAsc:
		return "profile-asc"
	case ValueCombined:
		return "event*profile"
	case ValueCombinedAsc:
		return "event*profile-asc"
	default:
		return fmt.Sprintf("ValueMeasure(%d)", int(v))
	}
}

// AttrOrdering selects the attribute (level) ordering.
type AttrOrdering int

// Attribute orderings. AttrNatural keeps schema order; AttrA1/AttrA2/AttrA3
// apply the corresponding selectivity measure descending (most selective at
// the root); the Asc variants are the paper's worst-case controls.
const (
	AttrNatural AttrOrdering = iota + 1
	AttrA1
	AttrA1Asc
	AttrA2
	AttrA2Asc
	AttrA3
)

// String names the ordering.
func (a AttrOrdering) String() string {
	switch a {
	case AttrNatural:
		return "natural"
	case AttrA1:
		return "A1-desc"
	case AttrA1Asc:
		return "A1-asc"
	case AttrA2:
		return "A2-desc"
	case AttrA2Asc:
		return "A2-asc"
	case AttrA3:
		return "A3"
	default:
		return fmt.Sprintf("AttrOrdering(%d)", int(a))
	}
}

// Config parameterizes an Engine.
type Config struct {
	// ValueMeasure selects the node-internal value order (default natural).
	ValueMeasure ValueMeasure
	// AttrOrdering selects the level order (default natural).
	AttrOrdering AttrOrdering
	// Search selects the within-node strategy (default linear with the
	// lookup-table early-termination rule).
	Search tree.Search
	// EventDists is P_e per schema attribute. Nil means uniform; the
	// adaptive component replaces it with live histogram snapshots.
	EventDists []dist.Dist
	// ProfileDists is P_p per schema attribute. Nil means the empirical
	// profile distribution derived from the corpus itself.
	ProfileDists []dist.Dist
}

// Errors returned by the engine.
var (
	ErrDuplicateProfile = errors.New("core: duplicate profile id")
	ErrUnknownProfile   = errors.New("core: unknown profile id")
	ErrNoProfiles       = errors.New("core: no profiles registered")
)

// snapshot is one immutable published state of the engine's automaton.
// Matches load the snapshot pointer once and traverse it without any lock:
// successor snapshots share untouched nodes with their predecessor, and no
// published tree is ever mutated. Three states exist:
//
//   - empty: no profiles are registered; matching is a lock-free no-op.
//   - stale (tree == nil, empty == false): profiles exist but the automaton
//     must be (re)built — the next reader builds it lazily under e.mu, so
//     bulk registration before the first publish stays cheap.
//   - built (tree != nil): ready to traverse.
type snapshot struct {
	tree  *tree.Tree
	empty bool
}

// Engine is the distribution-based filter component. It is safe for
// concurrent use: matches are lock-free against the current snapshot, while
// profile churn, rebuilds and reconfiguration serialize on an internal
// mutex and publish successor snapshots atomically (RCU-style). Subscribe
// and unsubscribe therefore never contend with the publish hot path.
type Engine struct {
	snap    atomic.Pointer[snapshot]
	mu      sync.Mutex // serializes writers: churn, rebuilds, config
	schema  *schema.Schema
	cfg     Config
	byID    map[predicate.ID]int
	dense   []*predicate.Profile
	account stats.OpAccount

	// treeIdx maps profile id to its dense index inside the published tree
	// (tree indices are append-only between rebuilds, so they drift from
	// e.dense, which swap-removes). Valid only while snap.tree != nil.
	treeIdx map[predicate.ID]int
	// edits counts incremental transforms since the last full rebuild; once
	// it passes coalesceThreshold the next churn op rebuilds, restoring the
	// canonical structure and clearing tombstones.
	edits int
	// vo is the value order applied at the last rebuild, reused by
	// incremental inserts (recomputing empirical measures per insert would
	// rescan the corpus; drift between rebuilds is bounded by coalescing).
	vo tree.ValueOrder
}

// coalesceThreshold returns the edit budget before the next churn operation
// pays a full rebuild: proportional to the corpus so large engines don't
// rebuild constantly, floored so small ones don't rebuild on every edit.
func (e *Engine) coalesceThreshold() int {
	// Four edits per live profile before paying a full rebuild: successor
	// trees fragment slowly (each insert adds at most a few cuts per level)
	// and tombstones only cost a bitmap test at translation, so rebuilding
	// once per corpus-sized batch of edits trades a small match-path drift
	// for keeping the rebuild entirely off the steady churn path.
	if n := 2 * len(e.dense); n > 128 {
		return n
	}
	return 128
}

// NewEngine creates an engine over schema s.
func NewEngine(s *schema.Schema, cfg Config) *Engine {
	if cfg.ValueMeasure == 0 {
		cfg.ValueMeasure = ValueNatural
	}
	if cfg.AttrOrdering == 0 {
		cfg.AttrOrdering = AttrNatural
	}
	if cfg.Search == 0 {
		cfg.Search = tree.SearchLinear
	}
	e := &Engine{
		schema: s,
		cfg:    cfg,
		byID:   make(map[predicate.ID]int),
	}
	e.snap.Store(&snapshot{empty: true})
	return e
}

// Schema returns the engine's schema.
func (e *Engine) Schema() *schema.Schema { return e.schema }

// AddProfile registers a profile. When an automaton is live the profile is
// inserted incrementally (a successor snapshot sharing the untouched node
// graph); otherwise the tree is built lazily on the next match.
func (e *Engine) AddProfile(p *predicate.Profile) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.byID[p.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateProfile, p.ID)
	}
	e.byID[p.ID] = len(e.dense)
	e.dense = append(e.dense, p)
	snap := e.snap.Load()
	switch {
	case snap.empty:
		e.snap.Store(&snapshot{})
	case snap.tree == nil:
		// Already stale; the pending lazy build picks the profile up.
	default:
		e.edits++
		if e.edits >= e.coalesceThreshold() {
			e.coalesceLocked()
			return nil
		}
		nt, ti := snap.tree.WithProfile(p, e.vo)
		e.treeIdx[p.ID] = ti
		e.snap.Store(&snapshot{tree: nt})
	}
	return nil
}

// RemoveProfile unregisters a profile by id. When an automaton is live the
// profile is tombstoned in a successor snapshot (O(1)); tombstones are
// compacted by the next coalescing rebuild.
func (e *Engine) RemoveProfile(id predicate.ID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	i, ok := e.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProfile, id)
	}
	last := len(e.dense) - 1
	e.dense[i] = e.dense[last]
	e.dense = e.dense[:last]
	delete(e.byID, id)
	if i < last {
		e.byID[e.dense[i].ID] = i
	}
	snap := e.snap.Load()
	switch {
	case len(e.dense) == 0:
		e.storeEmptyLocked()
	case snap.empty || snap.tree == nil:
		// Nothing published or already stale; the next build reads e.dense.
	default:
		ti, ok := e.treeIdx[id]
		if !ok {
			// Defensive: unknown tree index, fall back to a lazy rebuild.
			e.snap.Store(&snapshot{})
			return nil
		}
		delete(e.treeIdx, id)
		e.edits++
		if e.edits >= e.coalesceThreshold() {
			e.coalesceLocked()
			return nil
		}
		e.snap.Store(&snapshot{tree: snap.tree.WithoutProfile(ti)})
	}
	return nil
}

// coalesceLocked replaces the incrementally grown automaton with a freshly
// built one (canonical structure, ordering recomputed, tombstones cleared).
// Build errors (e.g. an A3 ordering failure) must not fail the churn
// operation — the corpus update already happened — so on error the engine
// publishes a stale snapshot and the error surfaces on the next match.
func (e *Engine) coalesceLocked() {
	if err := e.rebuildLocked(); err != nil {
		e.snap.Store(&snapshot{})
	}
}

func (e *Engine) storeEmptyLocked() {
	e.snap.Store(&snapshot{empty: true})
	e.treeIdx = nil
	e.edits = 0
}

// ProfileCount returns the number of registered profiles.
func (e *Engine) ProfileCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.dense)
}

// Profiles returns a copy of the registered profiles.
func (e *Engine) Profiles() []*predicate.Profile {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*predicate.Profile, len(e.dense))
	copy(out, e.dense)
	return out
}

// eventDists returns P_e, defaulting to uniform per attribute.
func (e *Engine) eventDists() []dist.Dist {
	if e.cfg.EventDists != nil {
		return e.cfg.EventDists
	}
	ds := make([]dist.Dist, e.schema.N())
	for i := range ds {
		ds[i] = dist.New(dist.UniformShape{}, e.schema.At(i).Domain)
	}
	return ds
}

// valueOrder materializes the configured value measure.
func (e *Engine) valueOrder() tree.ValueOrder {
	ed := e.eventDists()
	pd := e.cfg.ProfileDists
	switch e.cfg.ValueMeasure {
	case ValueNaturalDesc:
		return selectivity.NaturalDesc()
	case ValueEvent:
		return selectivity.V1(ed, true)
	case ValueEventAsc:
		return selectivity.V1(ed, false)
	case ValueProfile:
		if pd == nil {
			return selectivity.V2Empirical(e.schema, e.dense, true)
		}
		return selectivity.V2(pd, true)
	case ValueProfileAsc:
		if pd == nil {
			return selectivity.V2Empirical(e.schema, e.dense, false)
		}
		return selectivity.V2(pd, false)
	case ValueCombined, ValueCombinedAsc:
		desc := e.cfg.ValueMeasure == ValueCombined
		if pd == nil {
			emp := selectivity.V2Empirical(e.schema, e.dense, desc)
			v1 := selectivity.V1(ed, desc)
			return tree.ValueOrder{
				Name:       "event*profile-emp",
				Descending: desc,
				Rank: func(attr int, region []tree.Interval) float64 {
					return v1.Rank(attr, region) * emp.Rank(attr, region)
				},
			}
		}
		return selectivity.V3(ed, pd, desc)
	default:
		return selectivity.Natural()
	}
}

// attrOrder computes the configured attribute order.
func (e *Engine) attrOrder() ([]int, error) {
	switch e.cfg.AttrOrdering {
	case AttrA1, AttrA1Asc:
		st := selectivity.AttributeStats(e.schema, e.dense, nil)
		return selectivity.OrderAttributes(st, selectivity.MeasureA1, e.cfg.AttrOrdering == AttrA1), nil
	case AttrA2, AttrA2Asc:
		st := selectivity.AttributeStats(e.schema, e.dense, e.eventDists())
		return selectivity.OrderAttributes(st, selectivity.MeasureA2, e.cfg.AttrOrdering == AttrA2), nil
	case AttrA3:
		order, _, err := selectivity.OrderAttributesA3(
			e.schema, e.dense, e.eventDists(), e.valueOrder(), e.cfg.Search)
		return order, err
	default:
		order := make([]int, e.schema.N())
		for i := range order {
			order[i] = i
		}
		return order, nil
	}
}

// Rebuild reconstructs the automaton with the current configuration. It is
// the expensive half of restructuring; Reorder is the cheap half.
func (e *Engine) Rebuild() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rebuildLocked()
}

// rebuildLocked builds a fresh automaton from the current corpus and
// publishes it. Callers hold e.mu.
func (e *Engine) rebuildLocked() error {
	if len(e.dense) == 0 {
		e.storeEmptyLocked()
		return ErrNoProfiles
	}
	order, err := e.attrOrder()
	if err != nil {
		return err
	}
	// The automaton keeps its own copy of the corpus: RemoveProfile mutates
	// e.dense in place, and in-flight matches must keep translating dense
	// indices against the snapshot that produced them.
	corpus := make([]*predicate.Profile, len(e.dense))
	copy(corpus, e.dense)
	t, err := tree.Build(e.schema, corpus,
		tree.WithAttributeOrder(order), tree.WithSearch(e.cfg.Search))
	if err != nil {
		return err
	}
	vo := e.valueOrder()
	// The tree is not published yet, so the in-place ordering pass is safe.
	t.ApplyValueOrder(vo)
	e.vo = vo
	e.treeIdx = make(map[predicate.ID]int, len(corpus))
	for i, p := range corpus {
		e.treeIdx[p.ID] = i
	}
	e.edits = 0
	e.snap.Store(&snapshot{tree: t})
	return nil
}

// Reorder re-applies the value ordering on the existing structure (cheap
// restructuring after a distribution update). The reordered automaton is
// published as a successor snapshot; in-flight matches finish on the old
// order.
func (e *Engine) Reorder() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.snap.Load()
	if snap.empty || snap.tree == nil {
		return e.rebuildLocked()
	}
	vo := e.valueOrder()
	e.vo = vo
	e.snap.Store(&snapshot{tree: snap.tree.Reordered(vo)})
	return nil
}

// SetEventDists replaces P_e (the adaptive component's entry point) without
// restructuring; call Reorder or Rebuild to apply it.
func (e *Engine) SetEventDists(ds []dist.Dist) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.EventDists = ds
}

// Config returns a copy of the current configuration.
func (e *Engine) Config() Config {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg
}

// SetConfig replaces the measure/search configuration. The published
// automaton is invalidated; the next match rebuilds with the new settings.
func (e *Engine) SetConfig(cfg Config) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cfg.ValueMeasure == 0 {
		cfg.ValueMeasure = e.cfg.ValueMeasure
	}
	if cfg.AttrOrdering == 0 {
		cfg.AttrOrdering = e.cfg.AttrOrdering
	}
	if cfg.Search == 0 {
		cfg.Search = e.cfg.Search
	}
	e.cfg = cfg
	if snap := e.snap.Load(); !snap.empty {
		e.snap.Store(&snapshot{})
	}
}

// lazyTree resolves a stale snapshot: it (re)builds the automaton under the
// writer mutex, unless a concurrent writer already did. A nil tree with nil
// error means the engine went empty in the meantime.
func (e *Engine) lazyTree() (*tree.Tree, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.snap.Load()
	if snap.empty {
		return nil, nil
	}
	if snap.tree != nil {
		return snap.tree, nil
	}
	if err := e.rebuildLocked(); err != nil {
		return nil, err
	}
	return e.snap.Load().tree, nil
}

// Match filters one event, returning matched profile IDs and the operations
// spent. The traversal is lock-free: it runs against the current immutable
// snapshot, so concurrent profile churn cannot block or skew it. IDs are
// resolved against the same snapshot that produced the match.
//
//genas:hotpath
func (e *Engine) Match(vals []float64) ([]predicate.ID, int, error) {
	ids, ops, empty, err := e.matchIDs(vals, nil)
	if err != nil || empty {
		return nil, 0, err
	}
	e.account.Record(ops, len(ids))
	return ids, ops, nil
}

// matchIDs is Match without operation accounting, appending matched ids to
// dst: the sharded engine merges per-shard results into one buffer and
// accounts once per event at the top level. empty reports that the engine
// holds no profiles (which matches nothing and does not count as a filtered
// event).
//
//genas:hotpath
func (e *Engine) matchIDs(vals []float64, dst []predicate.ID) (ids []predicate.ID, ops int, empty bool, err error) {
	snap := e.snap.Load()
	if snap.empty {
		return dst, 0, true, nil
	}
	t := snap.tree
	if t == nil {
		t, err = e.lazyTree()
		if err != nil {
			return dst, 0, false, err
		}
		if t == nil {
			return dst, 0, true, nil
		}
	}
	matched, matchOps := t.Match(vals)
	ids = dst
	if ids == nil {
		ids = make([]predicate.ID, 0, len(matched))
	}
	profiles := t.Profiles()
	if t.HasDead() {
		for _, pi := range matched {
			if t.Dead(pi) {
				continue
			}
			ids = append(ids, profiles[pi].ID)
		}
	} else {
		for _, pi := range matched {
			ids = append(ids, profiles[pi].ID)
		}
	}
	return ids, matchOps, false, nil
}

// MatchDense is Match returning dense indices into the tree snapshot (hot
// path; avoids the ID materialization). The indices are only meaningful
// against the Profiles() of the snapshot that produced them — under churn,
// Tree() may already point at a successor — so callers needing identity
// should use Match.
//
//genas:hotpath
func (e *Engine) MatchDense(vals []float64) ([]int, int, error) {
	snap := e.snap.Load()
	if snap.empty {
		return nil, 0, nil // an empty filter matches nothing
	}
	t := snap.tree
	if t == nil {
		var err error
		t, err = e.lazyTree()
		if err != nil {
			return nil, 0, err
		}
		if t == nil {
			return nil, 0, nil
		}
	}
	matched, ops := t.Match(vals)
	if t.HasDead() {
		live := make([]int, 0, len(matched))
		for _, pi := range matched {
			if !t.Dead(pi) {
				live = append(live, pi)
			}
		}
		matched = live
	}
	e.account.Record(ops, len(matched))
	return matched, ops, nil
}

// Tree exposes the current automaton (nil until first built). A stale
// snapshot (pending lazy rebuild) is resolved first, so the returned tree
// reflects the current corpus and configuration; it may be superseded by
// the time the caller inspects it.
func (e *Engine) Tree() *tree.Tree {
	snap := e.snap.Load()
	if snap.empty {
		return nil
	}
	if snap.tree != nil {
		return snap.tree
	}
	t, _ := e.lazyTree()
	return t
}

// Analyze runs the analytic cost model (Eq. 2) under the engine's event
// distributions. The model is defined over the live corpus, so a tombstoned
// or stale automaton is coalesced first.
func (e *Engine) Analyze() (selectivity.Analysis, error) {
	e.mu.Lock()
	snap := e.snap.Load()
	if snap.empty {
		e.mu.Unlock()
		return selectivity.Analysis{}, ErrNoProfiles
	}
	if snap.tree == nil || snap.tree.HasDead() || e.edits > 0 {
		if err := e.rebuildLocked(); err != nil {
			e.mu.Unlock()
			return selectivity.Analysis{}, err
		}
		snap = e.snap.Load()
	}
	t := snap.tree
	ed := e.eventDists()
	e.mu.Unlock()
	return selectivity.Analyze(t, ed), nil
}

// Account returns the live operation accounting summary.
func (e *Engine) Account() stats.Summary { return e.account.Summary() }

// ResetAccount clears operation accounting.
func (e *Engine) ResetAccount() { e.account.Reset() }
