// Package core assembles the paper's primary contribution: the
// distribution-dependent tree filter (§4). An Engine owns the profile
// corpus, builds the profile-tree automaton, applies the configured
// selectivity measures — value measures V1–V3 and attribute measures A1–A3 —
// and filters events while accounting operations.
//
// The engine "evaluates first those event-values and attributes that have
// the highest selectivity": attributes with high selectivity move to the top
// levels of the tree and, inside every node, values with the highest
// selectivity are tested first (§4.1).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"genas/internal/agg"
	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/selectivity"
	"genas/internal/stats"
	"genas/internal/tree"
)

// ValueMeasure selects the within-node value ordering.
type ValueMeasure int

// Value orderings: the prototype's four orders, each ascending or
// descending, plus binary search handled via Config.Search ("We tested all
// permutations … with 8 different orderings plus binary search", §4.3).
const (
	ValueNatural ValueMeasure = iota + 1
	ValueNaturalDesc
	ValueEvent // Measure V1, descending P_e
	ValueEventAsc
	ValueProfile // Measure V2, descending P_p
	ValueProfileAsc
	ValueCombined // Measure V3, descending P_e·P_p
	ValueCombinedAsc
)

// String names the measure as used in experiment tables.
func (v ValueMeasure) String() string {
	switch v {
	case ValueNatural:
		return "natural"
	case ValueNaturalDesc:
		return "natural-desc"
	case ValueEvent:
		return "event"
	case ValueEventAsc:
		return "event-asc"
	case ValueProfile:
		return "profile"
	case ValueProfileAsc:
		return "profile-asc"
	case ValueCombined:
		return "event*profile"
	case ValueCombinedAsc:
		return "event*profile-asc"
	default:
		return fmt.Sprintf("ValueMeasure(%d)", int(v))
	}
}

// AttrOrdering selects the attribute (level) ordering.
type AttrOrdering int

// Attribute orderings. AttrNatural keeps schema order; AttrA1/AttrA2/AttrA3
// apply the corresponding selectivity measure descending (most selective at
// the root); the Asc variants are the paper's worst-case controls.
const (
	AttrNatural AttrOrdering = iota + 1
	AttrA1
	AttrA1Asc
	AttrA2
	AttrA2Asc
	AttrA3
)

// String names the ordering.
func (a AttrOrdering) String() string {
	switch a {
	case AttrNatural:
		return "natural"
	case AttrA1:
		return "A1-desc"
	case AttrA1Asc:
		return "A1-asc"
	case AttrA2:
		return "A2-desc"
	case AttrA2Asc:
		return "A2-asc"
	case AttrA3:
		return "A3"
	default:
		return fmt.Sprintf("AttrOrdering(%d)", int(a))
	}
}

// Config parameterizes an Engine.
type Config struct {
	// ValueMeasure selects the node-internal value order (default natural).
	ValueMeasure ValueMeasure
	// AttrOrdering selects the level order (default natural).
	AttrOrdering AttrOrdering
	// Search selects the within-node strategy (default linear with the
	// lookup-table early-termination rule).
	Search tree.Search
	// EventDists is P_e per schema attribute. Nil means uniform; the
	// adaptive component replaces it with live histogram snapshots.
	EventDists []dist.Dist
	// ProfileDists is P_p per schema attribute. Nil means the empirical
	// profile distribution derived from the corpus itself.
	ProfileDists []dist.Dist
	// Aggregate enables canonical subscription aggregation (internal/agg):
	// structurally identical profiles intern onto one canonical node,
	// covered structures hang beneath their coverer in a poset, and the
	// automaton indexes only the poset roots — concrete ids are expanded
	// through the poset per match. Match cost then grows with distinct
	// predicate structure, not subscriber count. Construction-time only:
	// SetConfig cannot toggle it.
	Aggregate bool
}

// Errors returned by the engine.
var (
	ErrDuplicateProfile = errors.New("core: duplicate profile id")
	ErrUnknownProfile   = errors.New("core: unknown profile id")
	ErrNoProfiles       = errors.New("core: no profiles registered")
)

// snapshot is one immutable published state of the engine's automaton.
// Matches load the snapshot pointer once and traverse it without any lock:
// successor snapshots share untouched nodes with their predecessor, and no
// published tree is ever mutated. Three states exist:
//
//   - empty: no profiles are registered; matching is a lock-free no-op.
//   - stale (tree == nil, empty == false): profiles exist but the automaton
//     must be (re)built — the next reader builds it lazily under e.mu, so
//     bulk registration before the first publish stays cheap.
//   - built (tree != nil): ready to traverse.
type snapshot struct {
	tree  *tree.Tree
	empty bool
	// expand and t2n exist only under aggregation: expand is the frozen
	// poset image matched ids are expanded through, and t2n maps each tree
	// slot (dense index) to its poset node. t2n is append-only across
	// successor snapshots — writes land past every predecessor's length —
	// so snapshots share its backing array like the tree shares nodes.
	expand *agg.Snapshot
	t2n    []int32
}

// Engine is the distribution-based filter component. It is safe for
// concurrent use: matches are lock-free against the current snapshot, while
// profile churn, rebuilds and reconfiguration serialize on an internal
// mutex and publish successor snapshots atomically (RCU-style). Subscribe
// and unsubscribe therefore never contend with the publish hot path.
type Engine struct {
	snap    atomic.Pointer[snapshot]
	mu      sync.Mutex // serializes writers: churn, rebuilds, config
	schema  *schema.Schema
	cfg     Config
	byID    map[predicate.ID]int
	dense   []*predicate.Profile
	account stats.OpAccount

	// treeIdx maps profile id to its dense index inside the published tree
	// (tree indices are append-only between rebuilds, so they drift from
	// e.dense, which swap-removes). Valid only while snap.tree != nil.
	treeIdx map[predicate.ID]int
	// edits counts incremental transforms since the last full rebuild; once
	// it passes coalesceThreshold the next churn op rebuilds, restoring the
	// canonical structure and clearing tombstones.
	edits int
	// vo is the value order applied at the last rebuild, reused by
	// incremental inserts (recomputing empirical measures per insert would
	// rescan the corpus; drift between rebuilds is bounded by coalescing).
	vo tree.ValueOrder

	// Aggregation state (cfg.Aggregate): the covering poset replaces
	// byID/dense entirely — per-subscription state collapses to one SubRef
	// inside the poset. t2n is the write side of snapshot.t2n; nodeTree
	// maps a poset node index back to its tree slot for demotions.
	agg      *agg.Poset
	t2n      []int32
	nodeTree map[int32]int
}

// coalesceThreshold returns the edit budget before the next churn operation
// pays a full rebuild: proportional to the corpus so large engines don't
// rebuild constantly, floored so small ones don't rebuild on every edit.
func (e *Engine) coalesceThreshold() int {
	// Four edits per live profile before paying a full rebuild: successor
	// trees fragment slowly (each insert adds at most a few cuts per level)
	// and tombstones only cost a bitmap test at translation, so rebuilding
	// once per corpus-sized batch of edits trades a small match-path drift
	// for keeping the rebuild entirely off the steady churn path. Under
	// aggregation the automaton's size driver is the canonical node count,
	// not the subscriber count, so the budget scales with that instead.
	size := len(e.dense)
	if e.agg != nil {
		size = e.agg.NodeCount()
	}
	if n := 2 * size; n > 128 {
		return n
	}
	return 128
}

// NewEngine creates an engine over schema s.
func NewEngine(s *schema.Schema, cfg Config) *Engine {
	if cfg.ValueMeasure == 0 {
		cfg.ValueMeasure = ValueNatural
	}
	if cfg.AttrOrdering == 0 {
		cfg.AttrOrdering = AttrNatural
	}
	if cfg.Search == 0 {
		cfg.Search = tree.SearchLinear
	}
	e := &Engine{
		schema: s,
		cfg:    cfg,
	}
	if cfg.Aggregate {
		e.agg = agg.NewPoset(s)
	} else {
		e.byID = make(map[predicate.ID]int)
	}
	e.snap.Store(&snapshot{empty: true})
	return e
}

// Schema returns the engine's schema.
func (e *Engine) Schema() *schema.Schema { return e.schema }

// AddProfile registers a profile. When an automaton is live the profile is
// inserted incrementally (a successor snapshot sharing the untouched node
// graph); otherwise the tree is built lazily on the next match.
func (e *Engine) AddProfile(p *predicate.Profile) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.agg != nil {
		return e.addAggLocked(p)
	}
	if _, dup := e.byID[p.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateProfile, p.ID)
	}
	e.byID[p.ID] = len(e.dense)
	e.dense = append(e.dense, p)
	snap := e.snap.Load()
	switch {
	case snap.empty:
		e.snap.Store(&snapshot{})
	case snap.tree == nil:
		// Already stale; the pending lazy build picks the profile up.
	default:
		e.edits++
		if e.edits >= e.coalesceThreshold() {
			e.coalesceLocked()
			return nil
		}
		nt, ti := snap.tree.WithProfile(p, e.vo)
		e.treeIdx[p.ID] = ti
		e.snap.Store(&snapshot{tree: nt})
	}
	return nil
}

// addAggLocked is AddProfile's aggregation path: the subscription joins its
// canonical node in the poset; the automaton changes only when a new
// structure enters as a root (indexed) or demotes existing roots beneath it
// (tombstoned — they stay reachable through the new root's expansion edges).
// Every churn op republishes the frozen expansion image, so in-flight
// matches keep expanding against the state they matched under.
func (e *Engine) addAggLocked(p *predicate.Profile) error {
	if e.agg.Has(p.ID) {
		return fmt.Errorf("%w: %s", ErrDuplicateProfile, p.ID)
	}
	res := e.agg.Add(p)
	snap := e.snap.Load()
	switch {
	case snap.empty:
		e.snap.Store(&snapshot{})
	case snap.tree == nil:
		// Already stale; the pending lazy build picks the node up.
	default:
		e.edits++
		if e.edits >= e.coalesceThreshold() {
			e.coalesceLocked()
			return nil
		}
		t := snap.tree
		for _, d := range res.Demoted {
			ti, ok := e.nodeTree[d]
			if !ok {
				e.snap.Store(&snapshot{}) // defensive: force a lazy rebuild
				return nil
			}
			delete(e.nodeTree, d)
			t = t.WithoutProfile(ti)
		}
		if res.NewRoot != nil {
			var ti int
			t, ti = t.WithProfile(res.NewRoot, e.vo)
			if ti != len(e.t2n) {
				e.snap.Store(&snapshot{}) // defensive: slot table out of step
				return nil
			}
			e.t2n = append(e.t2n, res.NodeIdx)
			e.nodeTree[res.NodeIdx] = ti
		}
		e.snap.Store(&snapshot{tree: t, expand: e.agg.Freeze(), t2n: e.t2n})
	}
	return nil
}

// RemoveProfile unregisters a profile by id. When an automaton is live the
// profile is tombstoned in a successor snapshot (O(1)); tombstones are
// compacted by the next coalescing rebuild.
func (e *Engine) RemoveProfile(id predicate.ID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.agg != nil {
		return e.removeAggLocked(id)
	}
	i, ok := e.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProfile, id)
	}
	last := len(e.dense) - 1
	e.dense[i] = e.dense[last]
	e.dense = e.dense[:last]
	delete(e.byID, id)
	if i < last {
		e.byID[e.dense[i].ID] = i
	}
	snap := e.snap.Load()
	switch {
	case len(e.dense) == 0:
		e.storeEmptyLocked()
	case snap.empty || snap.tree == nil:
		// Nothing published or already stale; the next build reads e.dense.
	default:
		ti, ok := e.treeIdx[id]
		if !ok {
			// Defensive: unknown tree index, fall back to a lazy rebuild.
			e.snap.Store(&snapshot{})
			return nil
		}
		delete(e.treeIdx, id)
		e.edits++
		if e.edits >= e.coalesceThreshold() {
			e.coalesceLocked()
			return nil
		}
		e.snap.Store(&snapshot{tree: snap.tree.WithoutProfile(ti)})
	}
	return nil
}

// removeAggLocked is RemoveProfile's aggregation path. Dropping a member
// usually leaves the automaton untouched (only the expansion image
// refreshes); when a canonical node loses its last member it detaches
// eagerly — its tree slot is tombstoned if it was a root, and formerly
// covered nodes promoted by the detach are indexed, so a covered
// subscription resurfaces the moment its last coverer leaves.
func (e *Engine) removeAggLocked(id predicate.ID) error {
	res, ok := e.agg.Remove(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProfile, id)
	}
	snap := e.snap.Load()
	switch {
	case e.agg.SubCount() == 0:
		e.storeEmptyLocked()
	case snap.empty || snap.tree == nil:
		// Nothing published or already stale; the next build reads the poset.
	default:
		e.edits++
		if e.edits >= e.coalesceThreshold() {
			e.coalesceLocked()
			return nil
		}
		t := snap.tree
		if res.Emptied && res.WasRoot {
			ti, ok := e.nodeTree[res.NodeIdx]
			if !ok {
				e.snap.Store(&snapshot{}) // defensive: force a lazy rebuild
				return nil
			}
			delete(e.nodeTree, res.NodeIdx)
			t = t.WithoutProfile(ti)
		}
		for _, pr := range res.Promoted {
			var ti int
			t, ti = t.WithProfile(pr.Rep, e.vo)
			if ti != len(e.t2n) {
				e.snap.Store(&snapshot{}) // defensive: slot table out of step
				return nil
			}
			e.t2n = append(e.t2n, pr.Idx)
			e.nodeTree[pr.Idx] = ti
		}
		e.snap.Store(&snapshot{tree: t, expand: e.agg.Freeze(), t2n: e.t2n})
	}
	return nil
}

// coalesceLocked replaces the incrementally grown automaton with a freshly
// built one (canonical structure, ordering recomputed, tombstones cleared).
// Build errors (e.g. an A3 ordering failure) must not fail the churn
// operation — the corpus update already happened — so on error the engine
// publishes a stale snapshot and the error surfaces on the next match.
func (e *Engine) coalesceLocked() {
	if err := e.rebuildLocked(); err != nil {
		e.snap.Store(&snapshot{})
	}
}

func (e *Engine) storeEmptyLocked() {
	e.snap.Store(&snapshot{empty: true})
	e.treeIdx = nil
	e.edits = 0
	e.t2n = nil
	e.nodeTree = nil
	if e.agg != nil && e.agg.SubCount() == 0 {
		// Going empty is the natural point to drop the holes and edge
		// fragments churn left behind.
		e.agg = agg.NewPoset(e.schema)
	}
}

// ProfileCount returns the number of registered profiles (concrete
// subscriptions, not canonical nodes, under aggregation).
func (e *Engine) ProfileCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.agg != nil {
		return e.agg.SubCount()
	}
	return len(e.dense)
}

// Profiles returns a copy of the registered profiles. Under aggregation the
// originals are not retained — that is the memory win — so each entry is
// synthesized from its canonical node: the id and priority are the
// subscriber's, the predicate column is the node's representative (an
// equivalent constraint, possibly spelled differently than the original).
func (e *Engine) Profiles() []*predicate.Profile {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.agg != nil {
		return e.agg.Profiles()
	}
	out := make([]*predicate.Profile, len(e.dense))
	copy(out, e.dense)
	return out
}

// eventDists returns P_e, defaulting to uniform per attribute.
func (e *Engine) eventDists() []dist.Dist {
	if e.cfg.EventDists != nil {
		return e.cfg.EventDists
	}
	ds := make([]dist.Dist, e.schema.N())
	for i := range ds {
		ds[i] = dist.New(dist.UniformShape{}, e.schema.At(i).Domain)
	}
	return ds
}

// corpusLocked returns the profile set the automaton indexes and the
// selectivity measures rank over: the dense corpus, or the poset's
// canonical roots under aggregation. Callers hold e.mu.
func (e *Engine) corpusLocked() []*predicate.Profile {
	if e.agg == nil {
		return e.dense
	}
	roots := e.agg.RootList()
	out := make([]*predicate.Profile, len(roots))
	for i, r := range roots {
		out[i] = r.Rep
	}
	return out
}

// valueOrder materializes the configured value measure over corpus.
func (e *Engine) valueOrder(corpus []*predicate.Profile) tree.ValueOrder {
	ed := e.eventDists()
	pd := e.cfg.ProfileDists
	switch e.cfg.ValueMeasure {
	case ValueNaturalDesc:
		return selectivity.NaturalDesc()
	case ValueEvent:
		return selectivity.V1(ed, true)
	case ValueEventAsc:
		return selectivity.V1(ed, false)
	case ValueProfile:
		if pd == nil {
			return selectivity.V2Empirical(e.schema, corpus, true)
		}
		return selectivity.V2(pd, true)
	case ValueProfileAsc:
		if pd == nil {
			return selectivity.V2Empirical(e.schema, corpus, false)
		}
		return selectivity.V2(pd, false)
	case ValueCombined, ValueCombinedAsc:
		desc := e.cfg.ValueMeasure == ValueCombined
		if pd == nil {
			emp := selectivity.V2Empirical(e.schema, corpus, desc)
			v1 := selectivity.V1(ed, desc)
			return tree.ValueOrder{
				Name:       "event*profile-emp",
				Descending: desc,
				Rank: func(attr int, region []tree.Interval) float64 {
					return v1.Rank(attr, region) * emp.Rank(attr, region)
				},
			}
		}
		return selectivity.V3(ed, pd, desc)
	default:
		return selectivity.Natural()
	}
}

// attrOrder computes the configured attribute order over corpus.
func (e *Engine) attrOrder(corpus []*predicate.Profile) ([]int, error) {
	switch e.cfg.AttrOrdering {
	case AttrA1, AttrA1Asc:
		st := selectivity.AttributeStats(e.schema, corpus, nil)
		return selectivity.OrderAttributes(st, selectivity.MeasureA1, e.cfg.AttrOrdering == AttrA1), nil
	case AttrA2, AttrA2Asc:
		st := selectivity.AttributeStats(e.schema, corpus, e.eventDists())
		return selectivity.OrderAttributes(st, selectivity.MeasureA2, e.cfg.AttrOrdering == AttrA2), nil
	case AttrA3:
		order, _, err := selectivity.OrderAttributesA3(
			e.schema, corpus, e.eventDists(), e.valueOrder(corpus), e.cfg.Search)
		return order, err
	default:
		order := make([]int, e.schema.N())
		for i := range order {
			order[i] = i
		}
		return order, nil
	}
}

// Rebuild reconstructs the automaton with the current configuration. It is
// the expensive half of restructuring; Reorder is the cheap half.
func (e *Engine) Rebuild() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rebuildLocked()
}

// rebuildLocked builds a fresh automaton from the current corpus and
// publishes it. Callers hold e.mu.
func (e *Engine) rebuildLocked() error {
	if e.agg != nil {
		return e.rebuildAggLocked()
	}
	if len(e.dense) == 0 {
		e.storeEmptyLocked()
		return ErrNoProfiles
	}
	order, err := e.attrOrder(e.dense)
	if err != nil {
		return err
	}
	// The automaton keeps its own copy of the corpus: RemoveProfile mutates
	// e.dense in place, and in-flight matches must keep translating dense
	// indices against the snapshot that produced them.
	corpus := make([]*predicate.Profile, len(e.dense))
	copy(corpus, e.dense)
	t, err := tree.Build(e.schema, corpus,
		tree.WithAttributeOrder(order), tree.WithSearch(e.cfg.Search))
	if err != nil {
		return err
	}
	vo := e.valueOrder(corpus)
	// The tree is not published yet, so the in-place ordering pass is safe.
	t.ApplyValueOrder(vo)
	e.vo = vo
	e.treeIdx = make(map[predicate.ID]int, len(corpus))
	for i, p := range corpus {
		e.treeIdx[p.ID] = i
	}
	e.edits = 0
	e.snap.Store(&snapshot{tree: t})
	return nil
}

// rebuildAggLocked is rebuildLocked under aggregation: the poset compacts
// (clearing churn holes and redundant edges), the automaton is rebuilt over
// the canonical roots only, and the slot↔node tables are derived fresh.
func (e *Engine) rebuildAggLocked() error {
	if e.agg.SubCount() == 0 {
		e.storeEmptyLocked()
		return ErrNoProfiles
	}
	e.agg.Compact()
	roots := e.agg.RootList()
	corpus := make([]*predicate.Profile, len(roots))
	t2n := make([]int32, len(roots))
	nodeTree := make(map[int32]int, len(roots))
	for i, r := range roots {
		corpus[i] = r.Rep
		t2n[i] = r.Idx
		nodeTree[r.Idx] = i
	}
	order, err := e.attrOrder(corpus)
	if err != nil {
		return err
	}
	t, err := tree.Build(e.schema, corpus,
		tree.WithAttributeOrder(order), tree.WithSearch(e.cfg.Search))
	if err != nil {
		return err
	}
	vo := e.valueOrder(corpus)
	// The tree is not published yet, so the in-place ordering pass is safe.
	t.ApplyValueOrder(vo)
	e.vo = vo
	e.t2n = t2n
	e.nodeTree = nodeTree
	e.edits = 0
	e.snap.Store(&snapshot{tree: t, expand: e.agg.Freeze(), t2n: t2n})
	return nil
}

// Reorder re-applies the value ordering on the existing structure (cheap
// restructuring after a distribution update). The reordered automaton is
// published as a successor snapshot; in-flight matches finish on the old
// order.
func (e *Engine) Reorder() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.snap.Load()
	if snap.empty || snap.tree == nil {
		return e.rebuildLocked()
	}
	vo := e.valueOrder(e.corpusLocked())
	e.vo = vo
	e.snap.Store(&snapshot{tree: snap.tree.Reordered(vo), expand: snap.expand, t2n: snap.t2n})
	return nil
}

// SetEventDists replaces P_e (the adaptive component's entry point) without
// restructuring; call Reorder or Rebuild to apply it.
func (e *Engine) SetEventDists(ds []dist.Dist) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.EventDists = ds
}

// Config returns a copy of the current configuration.
func (e *Engine) Config() Config {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg
}

// SetConfig replaces the measure/search configuration. The published
// automaton is invalidated; the next match rebuilds with the new settings.
func (e *Engine) SetConfig(cfg Config) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cfg.ValueMeasure == 0 {
		cfg.ValueMeasure = e.cfg.ValueMeasure
	}
	if cfg.AttrOrdering == 0 {
		cfg.AttrOrdering = e.cfg.AttrOrdering
	}
	if cfg.Search == 0 {
		cfg.Search = e.cfg.Search
	}
	// Aggregation is a construction-time layout decision (the poset either
	// holds the corpus or the dense slice does); a zero-value cfg must not
	// silently discard it.
	cfg.Aggregate = e.cfg.Aggregate
	e.cfg = cfg
	if snap := e.snap.Load(); !snap.empty {
		e.snap.Store(&snapshot{})
	}
}

// lazySnapshot resolves a stale snapshot: it (re)builds the automaton under
// the writer mutex, unless a concurrent writer already did, and returns the
// resulting built or empty snapshot (never a stale one). Matching needs the
// whole snapshot, not just the tree: under aggregation the expansion image
// and slot table published alongside it must come from the same build.
func (e *Engine) lazySnapshot() (*snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.snap.Load()
	if snap.empty || snap.tree != nil {
		return snap, nil
	}
	if err := e.rebuildLocked(); err != nil {
		return nil, err
	}
	return e.snap.Load(), nil
}

// Match filters one event, returning matched profile IDs and the operations
// spent. The traversal is lock-free: it runs against the current immutable
// snapshot, so concurrent profile churn cannot block or skew it. IDs are
// resolved against the same snapshot that produced the match.
//
//genas:hotpath
func (e *Engine) Match(vals []float64) ([]predicate.ID, int, error) {
	ids, ops, empty, err := e.matchIDs(vals, nil)
	if err != nil || empty {
		return nil, 0, err
	}
	e.account.Record(ops, len(ids))
	return ids, ops, nil
}

// matchIDs is Match without operation accounting, appending matched ids to
// dst: the sharded engine merges per-shard results into one buffer and
// accounts once per event at the top level. empty reports that the engine
// holds no profiles (which matches nothing and does not count as a filtered
// event).
//
//genas:hotpath
func (e *Engine) matchIDs(vals []float64, dst []predicate.ID) (ids []predicate.ID, ops int, empty bool, err error) {
	snap := e.snap.Load()
	if snap.empty {
		return dst, 0, true, nil
	}
	if snap.tree == nil {
		snap, err = e.lazySnapshot()
		if err != nil {
			return dst, 0, false, err
		}
		if snap.empty {
			return dst, 0, true, nil
		}
	}
	t := snap.tree
	matched, matchOps := t.Match(vals)
	ids = dst
	if ids == nil {
		ids = make([]predicate.ID, 0, len(matched))
	}
	if snap.expand != nil {
		// Aggregated: the tree matched canonical roots; expand them through
		// the poset image into concrete subscription ids, charging the
		// descent evaluations to the event like tree comparisons.
		var expOps int
		ids, expOps = snap.expand.Expand(vals, matched, snap.t2n, t, ids)
		return ids, matchOps + expOps, false, nil
	}
	profiles := t.Profiles()
	if t.HasDead() {
		for _, pi := range matched {
			if t.Dead(pi) {
				continue
			}
			ids = append(ids, profiles[pi].ID)
		}
	} else {
		for _, pi := range matched {
			ids = append(ids, profiles[pi].ID)
		}
	}
	return ids, matchOps, false, nil
}

// MatchDense is Match returning dense indices into the tree snapshot (hot
// path; avoids the ID materialization). The indices are only meaningful
// against the Profiles() of the snapshot that produced them — under churn,
// Tree() may already point at a successor — so callers needing identity
// should use Match. Under aggregation the indices denote canonical nodes,
// not subscriptions; use Match for concrete ids.
//
//genas:hotpath
func (e *Engine) MatchDense(vals []float64) ([]int, int, error) {
	snap := e.snap.Load()
	if snap.empty {
		return nil, 0, nil // an empty filter matches nothing
	}
	if snap.tree == nil {
		var err error
		snap, err = e.lazySnapshot()
		if err != nil {
			return nil, 0, err
		}
		if snap.empty {
			return nil, 0, nil
		}
	}
	t := snap.tree
	matched, ops := t.Match(vals)
	if t.HasDead() {
		live := make([]int, 0, len(matched))
		for _, pi := range matched {
			if !t.Dead(pi) {
				live = append(live, pi)
			}
		}
		matched = live
	}
	e.account.Record(ops, len(matched))
	return matched, ops, nil
}

// Tree exposes the current automaton (nil until first built). A stale
// snapshot (pending lazy rebuild) is resolved first, so the returned tree
// reflects the current corpus and configuration; it may be superseded by
// the time the caller inspects it.
func (e *Engine) Tree() *tree.Tree {
	snap := e.snap.Load()
	if snap.empty {
		return nil
	}
	if snap.tree != nil {
		return snap.tree
	}
	sn, err := e.lazySnapshot()
	if err != nil || sn == nil {
		return nil
	}
	return sn.tree
}

// Analyze runs the analytic cost model (Eq. 2) under the engine's event
// distributions. The model is defined over the live corpus, so a tombstoned
// or stale automaton is coalesced first.
func (e *Engine) Analyze() (selectivity.Analysis, error) {
	e.mu.Lock()
	snap := e.snap.Load()
	if snap.empty {
		e.mu.Unlock()
		return selectivity.Analysis{}, ErrNoProfiles
	}
	if snap.tree == nil || snap.tree.HasDead() || e.edits > 0 {
		if err := e.rebuildLocked(); err != nil {
			e.mu.Unlock()
			return selectivity.Analysis{}, err
		}
		snap = e.snap.Load()
	}
	t := snap.tree
	ed := e.eventDists()
	e.mu.Unlock()
	return selectivity.Analyze(t, ed), nil
}

// AggStats summarizes the aggregation layer's shape. Enabled is false on an
// unaggregated filter, where the other fields are zero.
type AggStats struct {
	// Enabled reports whether canonical aggregation is active.
	Enabled bool
	// Subscriptions is the concrete subscription count.
	Subscriptions int
	// Nodes is the canonical node count — the real index size driver.
	Nodes int
	// Roots is the number of nodes the automaton actually indexes.
	Roots int
	// MaxDepth is the longest covering chain, in nodes (max across shards
	// for a sharded filter).
	MaxDepth int
}

// Ratio returns profiles-per-canonical-node — the aggregation compression
// factor (0 when empty or disabled).
func (s AggStats) Ratio() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return float64(s.Subscriptions) / float64(s.Nodes)
}

// AggStats reports the aggregation layer's shape.
func (e *Engine) AggStats() AggStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.agg == nil {
		return AggStats{}
	}
	st := e.agg.Stats()
	return AggStats{
		Enabled:       true,
		Subscriptions: st.Subscriptions,
		Nodes:         st.Nodes,
		Roots:         st.Roots,
		MaxDepth:      st.MaxDepth,
	}
}

// Account returns the live operation accounting summary.
func (e *Engine) Account() stats.Summary { return e.account.Summary() }

// ResetAccount clears operation accounting.
func (e *Engine) ResetAccount() { e.account.Reset() }
