package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/tree"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	a, _ := schema.NewIntegerDomain(0, 99)
	b, _ := schema.NewIntegerDomain(0, 99)
	return schema.MustNew(
		schema.Attribute{Name: "x", Domain: a},
		schema.Attribute{Name: "y", Domain: b},
	)
}

func TestEngineLifecycle(t *testing.T) {
	s := testSchema(t)
	e := NewEngine(s, Config{})

	if m, ops, err := e.MatchDense([]float64{1, 2}); err != nil || m != nil || ops != 0 {
		t.Fatalf("empty engine must match nothing: %v %d %v", m, ops, err)
	}
	if err := e.Rebuild(); !errors.Is(err, ErrNoProfiles) {
		t.Fatalf("empty rebuild error = %v", err)
	}

	p1 := predicate.MustParse(s, "p1", "profile(x >= 50)")
	if err := e.AddProfile(p1); err != nil {
		t.Fatal(err)
	}
	if err := e.AddProfile(p1); !errors.Is(err, ErrDuplicateProfile) {
		t.Error("duplicate must be rejected")
	}
	ids, ops, err := e.Match([]float64{60, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "p1" || ops <= 0 {
		t.Errorf("match = %v ops=%d", ids, ops)
	}

	p2 := predicate.MustParse(s, "p2", "profile(y <= 10)")
	if err := e.AddProfile(p2); err != nil {
		t.Fatal(err)
	}
	ids, _, _ = e.Match([]float64{60, 5})
	if len(ids) != 2 {
		t.Errorf("after add: %v", ids)
	}

	if err := e.RemoveProfile("p1"); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveProfile("p1"); !errors.Is(err, ErrUnknownProfile) {
		t.Error("double remove must error")
	}
	ids, _, _ = e.Match([]float64{60, 5})
	if len(ids) != 1 || ids[0] != "p2" {
		t.Errorf("after remove: %v", ids)
	}
	if e.ProfileCount() != 1 {
		t.Errorf("count = %d", e.ProfileCount())
	}
}

func TestEngineAccount(t *testing.T) {
	s := testSchema(t)
	e := NewEngine(s, Config{})
	if err := e.AddProfile(predicate.MustParse(s, "p", "profile(x = 5)")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := e.MatchDense([]float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	acc := e.Account()
	if acc.Events != 10 || acc.Ops == 0 {
		t.Errorf("account = %+v", acc)
	}
	e.ResetAccount()
	if e.Account().Events != 0 {
		t.Error("reset failed")
	}
}

// TestEngineMeasuresChangeOrder: switching from natural to V1 with a peaked
// event distribution lowers the analytic cost.
func TestEngineMeasuresChangeOrder(t *testing.T) {
	s := testSchema(t)
	eds := []dist.Dist{
		dist.New(dist.PeakHigh(0.95), s.At(0).Domain),
		dist.New(dist.UniformShape{}, s.At(1).Domain),
	}
	e := NewEngine(s, Config{EventDists: eds})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		expr := fmt.Sprintf("profile(x = %d)", rng.Intn(100))
		if err := e.AddProfile(predicate.MustParse(s, predicate.ID(fmt.Sprintf("p%d", i)), expr)); err != nil {
			t.Fatal(err)
		}
	}
	aNat, err := e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.Config()
	cfg.ValueMeasure = ValueEvent
	e.SetConfig(cfg)
	aV1, err := e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if aV1.TotalOps >= aNat.TotalOps {
		t.Errorf("V1 %.3f must beat natural %.3f on peaked events", aV1.TotalOps, aNat.TotalOps)
	}
}

// TestEngineAttrOrderings: A1/A2/A3 orderings produce valid trees matching
// the same events.
func TestEngineAttrOrderings(t *testing.T) {
	s := testSchema(t)
	for _, ord := range []AttrOrdering{AttrNatural, AttrA1, AttrA1Asc, AttrA2, AttrA2Asc, AttrA3} {
		e := NewEngine(s, Config{AttrOrdering: ord})
		if err := e.AddProfile(predicate.MustParse(s, "p1", "profile(x in [10,20]; y >= 90)")); err != nil {
			t.Fatal(err)
		}
		if err := e.AddProfile(predicate.MustParse(s, "p2", "profile(y <= 5)")); err != nil {
			t.Fatal(err)
		}
		ids, _, err := e.Match([]float64{15, 95})
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		if len(ids) != 1 || ids[0] != "p1" {
			t.Errorf("%v: match = %v", ord, ids)
		}
		ids, _, _ = e.Match([]float64{50, 3})
		if len(ids) != 1 || ids[0] != "p2" {
			t.Errorf("%v: match = %v", ord, ids)
		}
	}
}

// TestEngineReorderKeepsSemantics: Reorder after SetEventDists changes costs
// but never match results.
func TestEngineReorderKeepsSemantics(t *testing.T) {
	s := testSchema(t)
	e := NewEngine(s, Config{ValueMeasure: ValueEvent})
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 30; i++ {
		expr := fmt.Sprintf("profile(x = %d; y = %d)", rng.Intn(100), rng.Intn(100))
		if err := e.AddProfile(predicate.MustParse(s, predicate.ID(fmt.Sprintf("q%d", i)), expr)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Rebuild(); err != nil {
		t.Fatal(err)
	}
	type result struct {
		vals []float64
		ids  []predicate.ID
	}
	var before []result
	for i := 0; i < 200; i++ {
		vals := []float64{float64(rng.Intn(100)), float64(rng.Intn(100))}
		ids, _, _ := e.Match(vals)
		before = append(before, result{vals, ids})
	}
	e.SetEventDists([]dist.Dist{
		dist.New(dist.PeakLow(0.9), s.At(0).Domain),
		dist.New(dist.PeakHigh(0.9), s.At(1).Domain),
	})
	if err := e.Reorder(); err != nil {
		t.Fatal(err)
	}
	for _, r := range before {
		ids, _, _ := e.Match(r.vals)
		if len(ids) != len(r.ids) {
			t.Fatalf("reorder changed result at %v: %v vs %v", r.vals, ids, r.ids)
		}
		for i := range ids {
			if ids[i] != r.ids[i] {
				t.Fatalf("reorder changed result at %v: %v vs %v", r.vals, ids, r.ids)
			}
		}
	}
}

// TestEngineConcurrent: concurrent matches with interleaved profile changes
// neither race nor corrupt results (run with -race).
func TestEngineConcurrent(t *testing.T) {
	s := testSchema(t)
	e := NewEngine(s, Config{})
	for i := 0; i < 20; i++ {
		expr := fmt.Sprintf("profile(x = %d)", i*5)
		if err := e.AddProfile(predicate.MustParse(s, predicate.ID(fmt.Sprintf("p%d", i)), expr)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := e.MatchDense([]float64{float64(rng.Intn(100)), float64(rng.Intn(100))})
				if err != nil && !errors.Is(err, ErrNoProfiles) {
					t.Errorf("match: %v", err)
					return
				}
			}
		}(int64(g))
	}
	for i := 0; i < 30; i++ {
		id := predicate.ID(fmt.Sprintf("extra%d", i))
		expr := fmt.Sprintf("profile(y = %d)", i)
		if err := e.AddProfile(predicate.MustParse(s, id, expr)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := e.RemoveProfile(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestConfigDefaults(t *testing.T) {
	s := testSchema(t)
	e := NewEngine(s, Config{})
	cfg := e.Config()
	if cfg.ValueMeasure != ValueNatural || cfg.AttrOrdering != AttrNatural || cfg.Search != tree.SearchLinear {
		t.Errorf("defaults = %+v", cfg)
	}
	// SetConfig with zero fields keeps previous values.
	e.SetConfig(Config{Search: tree.SearchBinary})
	cfg = e.Config()
	if cfg.ValueMeasure != ValueNatural || cfg.Search != tree.SearchBinary {
		t.Errorf("after SetConfig = %+v", cfg)
	}
}

func TestMeasureStrings(t *testing.T) {
	for m := ValueNatural; m <= ValueCombinedAsc; m++ {
		if m.String() == "" {
			t.Error("empty measure name")
		}
	}
	for a := AttrNatural; a <= AttrA3; a++ {
		if a.String() == "" {
			t.Error("empty ordering name")
		}
	}
}

// TestMatchBatch: batch results agree positionally with sequential matching
// and concurrent workers do not race (run with -race).
func TestMatchBatch(t *testing.T) {
	s := testSchema(t)
	e := NewEngine(s, Config{})
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		expr := fmt.Sprintf("profile(x = %d; y = %d)", rng.Intn(100), rng.Intn(100))
		if err := e.AddProfile(predicate.MustParse(s, predicate.ID(fmt.Sprintf("b%d", i)), expr)); err != nil {
			t.Fatal(err)
		}
	}
	events := make([][]float64, 1000)
	for i := range events {
		events[i] = []float64{float64(rng.Intn(100)), float64(rng.Intn(100))}
	}
	batch, err := e.MatchBatch(events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(events) {
		t.Fatalf("results = %d", len(batch))
	}
	for i, ev := range events {
		ids, ops, err := e.Match(ev)
		if err != nil {
			t.Fatal(err)
		}
		if ops != batch[i].Ops || len(ids) != len(batch[i].IDs) {
			t.Fatalf("event %d: batch %+v vs sequential %v/%d", i, batch[i], ids, ops)
		}
		for j := range ids {
			if ids[j] != batch[i].IDs[j] {
				t.Fatalf("event %d: match sets differ", i)
			}
		}
	}
	// Empty inputs and empty engines behave.
	if out, err := e.MatchBatch(nil, 4); err != nil || out != nil {
		t.Errorf("empty batch: %v %v", out, err)
	}
	empty := NewEngine(s, Config{})
	out, err := empty.MatchBatch(events[:3], 2)
	if err != nil || len(out) != 3 || out[0].IDs != nil {
		t.Errorf("empty engine batch: %v %v", out, err)
	}
}
