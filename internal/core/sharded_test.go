package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
)

// uniformDists returns a uniform P_e per schema attribute.
func uniformDists(s *schema.Schema) []dist.Dist {
	ds := make([]dist.Dist, s.N())
	for i := range ds {
		ds[i] = dist.New(dist.UniformShape{}, s.At(i).Domain)
	}
	return ds
}

// shardedPair builds an identically-populated single-tree engine (the
// sequential oracle) and an n-way sharded engine over the same corpus.
func shardedPair(t *testing.T, n, profiles int, seed int64) (*Engine, *Sharded, *schema.Schema) {
	t.Helper()
	s := testSchema(t)
	oracle := NewEngine(s, Config{})
	sharded := NewSharded(s, Config{}, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < profiles; i++ {
		var expr string
		switch i % 3 {
		case 0:
			expr = fmt.Sprintf("profile(x = %d; y = %d)", rng.Intn(100), rng.Intn(100))
		case 1:
			expr = fmt.Sprintf("profile(x >= %d)", rng.Intn(100))
		default:
			lo := rng.Intn(80)
			expr = fmt.Sprintf("profile(y in [%d,%d])", lo, lo+rng.Intn(20))
		}
		p := predicate.MustParse(s, predicate.ID(fmt.Sprintf("p%d", i)), expr)
		if err := oracle.AddProfile(p); err != nil {
			t.Fatal(err)
		}
		if err := sharded.AddProfile(p); err != nil {
			t.Fatal(err)
		}
	}
	return oracle, sharded, s
}

func sortedIDs(ids []predicate.ID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	sort.Strings(out)
	return out
}

// TestShardOf: the partition is stable, in-range, and spreads ids.
func TestShardOf(t *testing.T) {
	if ShardOf("anything", 1) != 0 || ShardOf("anything", 0) != 0 {
		t.Error("degenerate partitions must map to shard 0")
	}
	const n = 8
	counts := make([]int, n)
	for i := 0; i < 4096; i++ {
		id := predicate.ID(fmt.Sprintf("sub-%d", i))
		s1 := ShardOf(id, n)
		if s1 < 0 || s1 >= n {
			t.Fatalf("shard %d out of range", s1)
		}
		if s2 := ShardOf(id, n); s2 != s1 {
			t.Fatalf("unstable hash: %d vs %d", s1, s2)
		}
		counts[s1]++
	}
	for i, c := range counts {
		if c < 4096/n/2 || c > 4096*2/n {
			t.Errorf("shard %d holds %d of 4096 ids: partition badly skewed", i, c)
		}
	}
}

// TestShardedMatchesOracle: the sharded match set equals the single-tree
// match set for every event, across shard counts.
func TestShardedMatchesOracle(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 16} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			oracle, sharded, _ := shardedPair(t, n, 120, 42)
			if got := sharded.ShardCount(); got != n {
				t.Fatalf("ShardCount = %d", got)
			}
			if oracle.ProfileCount() != sharded.ProfileCount() {
				t.Fatalf("profile counts differ: %d vs %d", oracle.ProfileCount(), sharded.ProfileCount())
			}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 500; i++ {
				ev := []float64{float64(rng.Intn(100)), float64(rng.Intn(100))}
				want, _, err := oracle.Match(ev)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := sharded.Match(ev)
				if err != nil {
					t.Fatal(err)
				}
				w, g := sortedIDs(want), sortedIDs(got)
				if len(w) != len(g) {
					t.Fatalf("event %v: oracle %v vs sharded %v", ev, w, g)
				}
				for j := range w {
					if w[j] != g[j] {
						t.Fatalf("event %v: oracle %v vs sharded %v", ev, w, g)
					}
				}
			}
		})
	}
}

// TestShardedMatchBatchMatchesOracle: the batch path merges the same match
// sets and accounts the same totals as per-event matching.
func TestShardedMatchBatchMatchesOracle(t *testing.T) {
	oracle, sharded, _ := shardedPair(t, 4, 90, 11)
	rng := rand.New(rand.NewSource(3))
	events := make([][]float64, 300)
	for i := range events {
		events[i] = []float64{float64(rng.Intn(100)), float64(rng.Intn(100))}
	}
	batch, err := sharded.MatchBatch(events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(events) {
		t.Fatalf("batch results = %d", len(batch))
	}
	for i, ev := range events {
		want, _, err := oracle.Match(ev)
		if err != nil {
			t.Fatal(err)
		}
		w, g := sortedIDs(want), sortedIDs(batch[i].IDs)
		if fmt.Sprint(w) != fmt.Sprint(g) {
			t.Fatalf("event %d: oracle %v vs batch %v", i, w, g)
		}
	}
	// One accounted event per batch element, ops summed across shards.
	acc := sharded.Account()
	if acc.Events != uint64(len(events)) {
		t.Errorf("accounted %d events for a %d-event batch", acc.Events, len(events))
	}
	if acc.Ops == 0 || acc.MeanOps <= 0 {
		t.Errorf("accounting lost ops: %+v", acc)
	}
	// Empty input and all-empty shards behave like the single engine.
	if out, err := sharded.MatchBatch(nil, 2); err != nil || out != nil {
		t.Errorf("empty batch: %v %v", out, err)
	}
	empty := NewSharded(testSchema(t), Config{}, 3)
	out, err := empty.MatchBatch(events[:2], 2)
	if err != nil || len(out) != 2 || out[0].IDs != nil {
		t.Errorf("empty sharded batch: %v %v", out, err)
	}
	if ids, ops, err := empty.Match(events[0]); err != nil || ids != nil || ops != 0 {
		t.Errorf("empty sharded match: %v %d %v", ids, ops, err)
	}
	if empty.Account().Events != 0 {
		t.Error("empty engine must not account events")
	}
}

// TestShardedStatsTotals: one published event is one accounted event whose
// Events/Ops/Matches totals survive the striped-account merge, and Reset
// clears every stripe.
func TestShardedStatsTotals(t *testing.T) {
	oracle, sharded, _ := shardedPair(t, 4, 80, 5)
	rng := rand.New(rand.NewSource(9))
	const events = 400
	var wantMatches uint64
	for i := 0; i < events; i++ {
		ev := []float64{float64(rng.Intn(100)), float64(rng.Intn(100))}
		ids, _, err := oracle.Match(ev)
		if err != nil {
			t.Fatal(err)
		}
		wantMatches += uint64(len(ids))
		if _, _, err := sharded.Match(ev); err != nil {
			t.Fatal(err)
		}
	}
	acc := sharded.Account()
	if acc.Events != events {
		t.Errorf("Events = %d, want %d", acc.Events, events)
	}
	if acc.Matches != wantMatches {
		t.Errorf("Matches = %d, want %d", acc.Matches, wantMatches)
	}
	if math.Abs(acc.MeanOps-float64(acc.Ops)/events) > 1e-9 {
		t.Errorf("MeanOps %v inconsistent with Ops/Events %v", acc.MeanOps, float64(acc.Ops)/events)
	}
	if acc.MeanMatches <= 0 || acc.OpsPerNotify <= 0 {
		t.Errorf("derived rates missing: %+v", acc)
	}
	sharded.ResetAccount()
	if got := sharded.Account(); got.Events != 0 || got.Ops != 0 {
		t.Errorf("ResetAccount left %+v", got)
	}
}

// TestShardedProfileChurn: removing profiles dirties only the home shard and
// the merged view stays consistent with the oracle.
func TestShardedProfileChurn(t *testing.T) {
	oracle, sharded, _ := shardedPair(t, 4, 60, 21)
	// Remove a third of the profiles from both engines.
	for i := 0; i < 60; i += 3 {
		id := predicate.ID(fmt.Sprintf("p%d", i))
		if err := oracle.RemoveProfile(id); err != nil {
			t.Fatal(err)
		}
		if err := sharded.RemoveProfile(id); err != nil {
			t.Fatal(err)
		}
	}
	if sharded.ProfileCount() != oracle.ProfileCount() {
		t.Fatalf("profile counts differ after churn")
	}
	if got := len(sharded.Profiles()); got != sharded.ProfileCount() {
		t.Fatalf("Profiles() returned %d of %d", got, sharded.ProfileCount())
	}
	if err := sharded.RemoveProfile("p0"); err == nil {
		t.Error("double remove must fail")
	}
	if err := sharded.AddProfile(sharded.Profiles()[0]); err == nil {
		t.Error("duplicate add must fail")
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		ev := []float64{float64(rng.Intn(100)), float64(rng.Intn(100))}
		want, _, _ := oracle.Match(ev)
		got, _, _ := sharded.Match(ev)
		if fmt.Sprint(sortedIDs(want)) != fmt.Sprint(sortedIDs(got)) {
			t.Fatalf("event %v: %v vs %v", ev, want, got)
		}
	}
}

// TestShardedRestructure: SetConfig/SetEventDists/Reorder/Rebuild fan out
// per shard and the match set is invariant under restructuring.
func TestShardedRestructure(t *testing.T) {
	oracle, sharded, s := shardedPair(t, 3, 70, 31)
	eds := uniformDists(s)
	cfg := sharded.Config()
	cfg.ValueMeasure = ValueEvent
	cfg.AttrOrdering = AttrA2
	sharded.SetConfig(cfg)
	sharded.SetEventDists(eds)
	if err := sharded.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if got := sharded.Config(); got.ValueMeasure != ValueEvent || got.AttrOrdering != AttrA2 {
		t.Fatalf("config did not fan out: %+v", got)
	}
	if err := sharded.Reorder(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		ev := []float64{float64(rng.Intn(100)), float64(rng.Intn(100))}
		want, _, _ := oracle.Match(ev)
		got, _, _ := sharded.Match(ev)
		if fmt.Sprint(sortedIDs(want)) != fmt.Sprint(sortedIDs(got)) {
			t.Fatalf("restructured match differs on %v", ev)
		}
	}
	// Rebuild/Reorder on an engine with empty shards must not fail.
	small := NewSharded(s, Config{}, 8)
	if err := small.AddProfile(predicate.MustParse(s, "only", "profile(x = 1)")); err != nil {
		t.Fatal(err)
	}
	if err := small.Rebuild(); err != nil {
		t.Fatalf("rebuild with empty shards: %v", err)
	}
	if err := small.Reorder(); err != nil {
		t.Fatalf("reorder with empty shards: %v", err)
	}
}

// TestShardedAnalyze: the merged cost model sums expected operations across
// shards and combines match probabilities.
func TestShardedAnalyze(t *testing.T) {
	_, sharded, s := shardedPair(t, 3, 45, 17)
	a, err := sharded.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	var wantOps, wantMatches float64
	for i := 0; i < sharded.ShardCount(); i++ {
		e := sharded.Shard(i)
		if e.ProfileCount() == 0 {
			continue
		}
		sa, err := e.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		wantOps += sa.TotalOps
		wantMatches += sa.ExpMatches
	}
	if math.Abs(a.TotalOps-wantOps) > 1e-9 {
		t.Errorf("TotalOps = %v, want %v", a.TotalOps, wantOps)
	}
	if math.Abs(a.ExpMatches-wantMatches) > 1e-9 {
		t.Errorf("ExpMatches = %v, want %v", a.ExpMatches, wantMatches)
	}
	if a.MatchProb <= 0 || a.MatchProb > 1 {
		t.Errorf("MatchProb = %v", a.MatchProb)
	}
	if len(a.PerProfile) != sharded.ProfileCount() {
		t.Errorf("PerProfile = %d entries for %d profiles", len(a.PerProfile), sharded.ProfileCount())
	}
	if len(a.PerLevelOps) != s.N() {
		t.Errorf("PerLevelOps = %d entries for %d attributes", len(a.PerLevelOps), s.N())
	}
	if _, err := NewSharded(s, Config{}, 2).Analyze(); err == nil {
		t.Error("analyze of empty sharded engine must fail")
	}
}
