package core

import (
	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/selectivity"
	"genas/internal/stats"
)

// Filter is the matching surface the broker (and every component above it)
// programs against: a profile corpus, a match path, restructuring entry
// points and operation accounting. Two implementations exist — the
// single-tree Engine and the N-way Sharded engine — so the choice of
// concurrency layout is a construction-time decision, not an API change.
type Filter interface {
	// Schema returns the attribute schema the filter matches against.
	Schema() *schema.Schema
	// AddProfile registers a profile (rebuilt lazily on the next match).
	AddProfile(p *predicate.Profile) error
	// RemoveProfile unregisters a profile by id.
	RemoveProfile(id predicate.ID) error
	// ProfileCount returns the number of registered profiles.
	ProfileCount() int
	// Profiles returns a copy of the registered profiles.
	Profiles() []*predicate.Profile
	// Match filters one event, returning matched ids and operations spent.
	Match(vals []float64) ([]predicate.ID, int, error)
	// MatchBatch filters many events against one corpus snapshot; results
	// align positionally with the input. workers ≤ 0 selects GOMAXPROCS.
	MatchBatch(events [][]float64, workers int) ([]BatchResult, error)
	// Rebuild reconstructs the automaton(s) with the current configuration.
	Rebuild() error
	// Reorder re-applies the value ordering without rebuilding structure.
	Reorder() error
	// Config returns a copy of the current configuration.
	Config() Config
	// SetConfig replaces the measure/search configuration (applied on the
	// next Rebuild or Reorder).
	SetConfig(cfg Config)
	// SetEventDists replaces P_e (the adaptive component's entry point).
	SetEventDists(ds []dist.Dist)
	// AggStats reports the canonical-aggregation layer's shape (Enabled is
	// false, with zero counters, on an unaggregated filter).
	AggStats() AggStats
	// Account returns the live operation accounting summary.
	Account() stats.Summary
	// ResetAccount clears operation accounting.
	ResetAccount()
	// Analyze runs the analytic cost model (Eq. 2) under the filter's event
	// distributions.
	Analyze() (selectivity.Analysis, error)
}

// Both engines implement Filter.
var (
	_ Filter = (*Engine)(nil)
	_ Filter = (*Sharded)(nil)
)
