package core

import (
	"fmt"
	"strings"
	"testing"

	"genas/internal/predicate"
	"genas/internal/schema"
)

// The churn-sequence oracle harness: one engine (single-tree or sharded)
// mutated only through incremental AddProfile/RemoveProfile, checked against
// three independent oracles after every few operations:
//
//  1. direct evaluation — every live profile's Matches over a probe grid is
//     ground truth for what the filter must return;
//  2. a from-scratch engine — built fresh from the current corpus and
//     explicitly rebuilt, proving the incrementally grown automaton and the
//     canonical one compute identical match sets;
//  3. a from-scratch aggregated engine — the covering poset, the root-only
//     automaton and delivery-time expansion must produce the same ids too.
//
// The byte stream drives the op mix (subscribe, unsubscribe, restructure),
// the profile shapes and the interleaved probes, so the fuzzer explores
// interleavings (insert-over-tombstone, remove-of-just-inserted, coalesce
// mid-sequence, reorder of a fragmented successor tree) that the handwritten
// tests cannot enumerate.

// churnFilter is the surface the harness exercises: satisfied by both
// *Engine and *Sharded.
type churnFilter interface {
	AddProfile(*predicate.Profile) error
	RemoveProfile(predicate.ID) error
	Match([]float64) ([]predicate.ID, int, error)
	Rebuild() error
	Reorder() error
}

// churnProbes is the event grid every oracle check sweeps: domain edges,
// interval endpoints the generator can produce, and interior points.
func churnProbes() [][]float64 {
	axis := []float64{0, 3, 24, 25, 49, 50, 74, 75, 98, 99}
	probes := make([][]float64, 0, len(axis)*len(axis))
	for _, x := range axis {
		for _, y := range axis {
			probes = append(probes, []float64{x, y})
		}
	}
	return probes
}

// churnExpr derives one profile expression from three generator bytes: per
// attribute a constraint kind (don't-care, point, one-sided, interval) and
// its endpoints. At least one attribute is always constrained so the parser
// accepts it.
func churnExpr(kx, ky, v byte) string {
	lo := int(v) % 100
	hi := lo + int(kx/16)%25
	if hi > 99 {
		hi = 99
	}
	mk := func(attr string, kind byte) string {
		switch kind % 4 {
		case 0:
			return ""
		case 1:
			return fmt.Sprintf("%s = %d", attr, lo)
		case 2:
			if kind%8 < 4 {
				return fmt.Sprintf("%s >= %d", attr, lo)
			}
			return fmt.Sprintf("%s <= %d", attr, hi)
		default:
			return fmt.Sprintf("%s in [%d,%d]", attr, lo, hi)
		}
	}
	cx, cy := mk("x", kx), mk("y", ky)
	switch {
	case cx == "" && cy == "":
		return fmt.Sprintf("profile(x >= %d)", lo)
	case cx == "":
		return fmt.Sprintf("profile(%s)", cy)
	case cy == "":
		return fmt.Sprintf("profile(%s)", cx)
	default:
		return fmt.Sprintf("profile(%s; %s)", cx, cy)
	}
}

// runChurnSequence feeds the byte stream as a churn script into filter and
// verifies both oracles every checkEvery operations (and once at the end).
func runChurnSequence(t *testing.T, s *schema.Schema, filter churnFilter, data []byte, checkEvery int) {
	t.Helper()
	probes := churnProbes()
	live := make(map[predicate.ID]*predicate.Profile)
	order := []predicate.ID{} // insertion order, for deterministic removal picks
	next := 0
	serial := 0

	verify := func(step int) {
		t.Helper()
		// Oracle 2: a fresh engine over the same corpus, canonically built.
		oracle := NewEngine(s, Config{})
		// Oracle 3: a fresh aggregated engine over the same corpus — the
		// canonical poset + root-only automaton + delivery-time expansion
		// must compute the exact same match sets as every other party.
		aggregated := NewEngine(s, Config{Aggregate: true})
		for _, id := range order {
			if err := oracle.AddProfile(live[id]); err != nil {
				t.Fatalf("step %d: oracle add %s: %v", step, id, err)
			}
			if err := aggregated.AddProfile(live[id]); err != nil {
				t.Fatalf("step %d: aggregated add %s: %v", step, id, err)
			}
		}
		if len(order) > 0 {
			if err := oracle.Rebuild(); err != nil {
				t.Fatalf("step %d: oracle rebuild: %v", step, err)
			}
		}
		for _, probe := range probes {
			got, _, err := filter.Match(probe)
			if err != nil {
				t.Fatalf("step %d: match %v: %v", step, probe, err)
			}
			// Oracle 1: direct evaluation of every live profile.
			var want []predicate.ID
			for _, id := range order {
				if live[id].Matches(probe) {
					want = append(want, id)
				}
			}
			fromScratch, _, err := oracle.Match(probe)
			if err != nil {
				t.Fatalf("step %d: oracle match %v: %v", step, probe, err)
			}
			fromAgg, _, err := aggregated.Match(probe)
			if err != nil {
				t.Fatalf("step %d: aggregated match %v: %v", step, probe, err)
			}
			g := strings.Join(sortedIDs(got), ",")
			w := strings.Join(sortedIDs(want), ",")
			o := strings.Join(sortedIDs(fromScratch), ",")
			a := strings.Join(sortedIDs(fromAgg), ",")
			if g != w {
				t.Fatalf("step %d: probe %v: incremental engine matched {%s}, direct evaluation says {%s}", step, probe, g, w)
			}
			if o != w {
				t.Fatalf("step %d: probe %v: from-scratch engine matched {%s}, direct evaluation says {%s}", step, probe, o, w)
			}
			if a != w {
				t.Fatalf("step %d: probe %v: aggregated engine matched {%s}, direct evaluation says {%s}", step, probe, a, w)
			}
		}
	}

	take := func() (byte, bool) {
		if next >= len(data) {
			return 0, false
		}
		b := data[next]
		next++
		return b, true
	}

	step := 0
	for {
		op, ok := take()
		if !ok {
			break
		}
		step++
		switch {
		case op%8 == 7 && len(order) > 0:
			// Occasionally restructure explicitly: Reorder on a possibly
			// fragmented successor tree, Rebuild as the heavy variant.
			var err error
			if op%16 == 7 {
				err = filter.Reorder()
			} else {
				err = filter.Rebuild()
			}
			if err != nil {
				t.Fatalf("step %d: restructure: %v", step, err)
			}
		case op%3 == 2 && len(order) > 0:
			pick, _ := take()
			i := int(pick) % len(order)
			id := order[i]
			if err := filter.RemoveProfile(id); err != nil {
				t.Fatalf("step %d: remove %s: %v", step, id, err)
			}
			delete(live, id)
			order = append(order[:i], order[i+1:]...)
		default:
			kx, ok1 := take()
			ky, ok2 := take()
			v, ok3 := take()
			if !ok1 || !ok2 || !ok3 {
				break
			}
			// Cap the live corpus so the from-scratch oracle stays cheap.
			if len(order) >= 48 {
				id := order[0]
				if err := filter.RemoveProfile(id); err != nil {
					t.Fatalf("step %d: evict %s: %v", step, id, err)
				}
				delete(live, id)
				order = order[1:]
			}
			serial++
			id := predicate.ID(fmt.Sprintf("f%d", serial))
			p, err := predicate.Parse(s, id, churnExpr(kx, ky, v))
			if err != nil {
				t.Fatalf("step %d: generated expression invalid: %v", step, err)
			}
			if err := filter.AddProfile(p); err != nil {
				t.Fatalf("step %d: add %s: %v", step, id, err)
			}
			live[id] = p
			order = append(order, id)
		}
		if step%checkEvery == 0 {
			verify(step)
		}
	}
	verify(step)
}

// FuzzChurnSequence fuzzes interleaved subscribe/unsubscribe/restructure
// sequences through the incremental engine and checks every few steps that
// its match sets equal both direct profile evaluation and a from-scratch
// rebuild of the same corpus.
func FuzzChurnSequence(f *testing.F) {
	f.Add([]byte{0, 3, 1, 40, 0, 7, 2, 80, 2, 0, 7})
	f.Add([]byte{1, 1, 1, 10, 1, 2, 2, 20, 1, 3, 3, 30, 2, 1, 15})
	f.Add([]byte{4, 15, 3, 55, 4, 11, 2, 95, 7, 2, 0, 4, 255, 255, 255})
	seq := make([]byte, 0, 96)
	for i := 0; i < 24; i++ {
		seq = append(seq, byte(i*5), byte(i*11), byte(i*3), byte(i*17))
	}
	f.Add(seq)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		a, _ := schema.NewIntegerDomain(0, 99)
		b, _ := schema.NewIntegerDomain(0, 99)
		s := schema.MustNew(
			schema.Attribute{Name: "x", Domain: a},
			schema.Attribute{Name: "y", Domain: b},
		)
		runChurnSequence(t, s, NewEngine(s, Config{}), data, 8)
		// Same script through the aggregated engine: the canonical poset and
		// delivery-time expansion must agree with every oracle as well.
		runChurnSequence(t, s, NewEngine(s, Config{Aggregate: true}), data, 8)
	})
}

// TestChurnSequenceOracle runs long deterministic churn scripts through both
// the single-tree and the sharded engine — long enough to cross the
// coalescing threshold mid-sequence, so incremental growth, tombstone
// compaction and the coalesced rebuild all get oracle-checked in one run.
func TestChurnSequenceOracle(t *testing.T) {
	s := testSchema(t)
	script := func(seed byte, n int) []byte {
		data := make([]byte, n)
		x := uint32(seed) + 1
		for i := range data {
			// xorshift: a deterministic, seed-sensitive byte stream.
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			data[i] = byte(x >> 8)
		}
		return data
	}
	for _, tc := range []struct {
		name   string
		filter func() churnFilter
	}{
		{"engine", func() churnFilter { return NewEngine(s, Config{}) }},
		{"sharded", func() churnFilter { return NewSharded(s, Config{}, 3) }},
		// The aggregated engine runs the same scripts incrementally, so the
		// poset's own churn paths — demotion on a wider add, unsubscribe of a
		// poset-internal coverer, promotion of orphaned kids — are all
		// oracle-checked against direct evaluation and the flat engines.
		{"engine-agg", func() churnFilter { return NewEngine(s, Config{Aggregate: true}) }},
		{"sharded-agg", func() churnFilter { return NewSharded(s, Config{Aggregate: true}, 3) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := byte(1); seed <= 3; seed++ {
				// ~600 bytes ≈ 200+ operations: enough edits to trigger the
				// engine's coalescing rebuild along the way.
				runChurnSequence(t, s, tc.filter(), script(seed, 600), 25)
			}
		})
	}
}
