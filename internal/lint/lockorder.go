package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide mutex-acquisition graph and reports any
// cycle: if one code path locks A then B while another locks B then A, the
// two paths deadlock under contention — the exact shape of the PR 6
// routing/broker finding, where Network.Close held the network lock while
// broker teardown re-entered a node lock the data path acquires in the
// opposite order.
//
// Locks are identified at type granularity — "pkg.Type.field" for a mutex
// field, "pkg.var" for a package-level mutex — so two instances of the
// same field unify: ordering must hold per type, not per object. Held sets
// are tracked in source order per function (locksafe's machinery: deferred
// unlocks pin the lock for the rest of the body, function literals and go
// statements run elsewhere and are skipped, single-assignment local
// closures are inlined). Each function's transitive acquisition set is
// propagated through a package-local fixpoint and published as a fact, so
// a call made under a held lock contributes edges to every lock the callee
// (transitively, cross-package) acquires. Self-edges are skipped: locking
// two instances of one type in sequence needs an instance order, which is
// beyond a type-granular analysis.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the cross-package mutex-acquisition graph must stay acyclic",
	Run:  runLockOrder,
}

// lockAcqFact keys a function's transitive lock-acquisition set in
// Pass.Shared: "lockacq:<fullname>" -> []string of lock identities.
func lockAcqFact(full string) string { return "lockacq:" + full }

// Graph state shared across packages, stored under reserved keys (their
// ":" suffixes cannot collide with fact keys, which embed full names).
const (
	lockGraphKey    = "graph:"
	lockReportedKey = "reported:"
)

// lockEvent is one ordered occurrence inside a function body: a direct
// acquisition of a lock, or a call whose callee's acquisitions happen
// under the current held set.
type lockEvent struct {
	pos    token.Pos
	held   []string    // locks held when the event happens, sorted
	lock   string      // non-empty for a direct acquisition
	callee *types.Func // non-nil for a static call
}

func runLockOrder(pass *Pass) {
	decls := declaredFuncs(pass)

	// Deterministic function order: the graph's first-writer-wins edge
	// positions and cycle-report sites must not depend on map iteration.
	type fnDecl struct {
		fn *types.Func
		fd *ast.FuncDecl
	}
	ordered := make([]fnDecl, 0, len(decls))
	for fn, fd := range decls {
		ordered = append(ordered, fnDecl{fn, fd})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].fd.Pos() < ordered[j].fd.Pos() })

	// Phase 1: per-function event streams and direct acquisition sets.
	events := make(map[*types.Func][]lockEvent, len(decls))
	direct := make(map[*types.Func]map[string]bool, len(decls))
	for _, d := range ordered {
		evs := scanLockEvents(pass, d.fd.Body)
		events[d.fn] = evs
		set := make(map[string]bool)
		for _, ev := range evs {
			if ev.lock != "" {
				set[ev.lock] = true
			}
		}
		direct[d.fn] = set
	}

	// Phase 2: package-local fixpoint over transitive acquisition sets,
	// seeding callees outside the package from their published facts.
	trans := make(map[*types.Func]map[string]bool, len(decls))
	for fn, set := range direct {
		t := make(map[string]bool, len(set))
		for l := range set {
			t[l] = true
		}
		trans[fn] = t
	}
	calleeAcqs := func(fn *types.Func) []string {
		if t, local := trans[fn]; local {
			out := make([]string, 0, len(t))
			for l := range t {
				out = append(out, l)
			}
			sort.Strings(out)
			return out
		}
		if fact, ok := pass.Shared[lockAcqFact(funcFullName(fn))]; ok {
			return fact.([]string)
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for fn, evs := range events {
			for _, ev := range evs {
				if ev.callee == nil {
					continue
				}
				for _, l := range calleeAcqs(ev.callee) {
					if !trans[fn][l] {
						trans[fn][l] = true
						changed = true
					}
				}
			}
		}
	}
	for _, d := range ordered {
		set := trans[d.fn]
		out := make([]string, 0, len(set))
		for l := range set {
			out = append(out, l)
		}
		sort.Strings(out)
		pass.Shared[lockAcqFact(funcFullName(d.fn))] = out
	}

	// Phase 3: replay the event streams against the shared graph, adding
	// held→acquired edges and reporting the edge that closes a cycle.
	graph, _ := pass.Shared[lockGraphKey].(map[string]map[string]string)
	if graph == nil {
		graph = make(map[string]map[string]string)
		pass.Shared[lockGraphKey] = graph
	}
	reported, _ := pass.Shared[lockReportedKey].(map[string]bool)
	if reported == nil {
		reported = make(map[string]bool)
		pass.Shared[lockReportedKey] = reported
	}
	addEdge := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		if graph[from] == nil {
			graph[from] = make(map[string]string)
		}
		if _, seen := graph[from][to]; seen {
			return // the cycle check ran when this edge first appeared
		}
		graph[from][to] = pass.Fset.Position(pos).String()
		if path := lockPath(graph, to, from); path != nil && !reported[from+"→"+to] {
			reported[from+"→"+to] = true
			full := append(path, to)
			pass.Reportf(pos, "lock order cycle: %s acquired while %s is held, but the reverse order exists: %s",
				to, from, strings.Join(full, " -> "))
		}
	}
	for _, d := range ordered {
		for _, ev := range events[d.fn] {
			if ev.lock != "" {
				for _, h := range ev.held {
					addEdge(h, ev.lock, ev.pos)
				}
				continue
			}
			if len(ev.held) == 0 {
				continue
			}
			for _, acq := range calleeAcqs(ev.callee) {
				for _, h := range ev.held {
					addEdge(h, acq, ev.pos)
				}
			}
		}
	}
}

// lockPath returns the node sequence of a path from→…→to through the
// graph (inclusive of both endpoints), or nil when to is unreachable.
// Deterministic: neighbors are visited in sorted order.
func lockPath(graph map[string]map[string]string, from, to string) []string {
	seen := map[string]bool{from: true}
	var dfs func(cur string, path []string) []string
	dfs = func(cur string, path []string) []string {
		if cur == to {
			return path
		}
		next := make([]string, 0, len(graph[cur]))
		for n := range graph[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if seen[n] {
				continue
			}
			seen[n] = true
			if p := dfs(n, append(path, n)); p != nil {
				return p
			}
		}
		return nil
	}
	return dfs(from, []string{from})
}

// scanLockEvents walks a function body in source order, tracking held
// locks by type-granular identity, and returns the acquisition and call
// events with their held-set snapshots.
func scanLockEvents(pass *Pass, body *ast.BlockStmt) []lockEvent {
	info := pass.Info
	held := make(map[string]bool)
	var events []lockEvent

	snapshot := func() []string {
		out := make([]string, 0, len(held))
		for l := range held {
			out = append(out, l)
		}
		sort.Strings(out)
		return out
	}

	localClosures := collectLocalClosures(info, body)
	deferredUnlocks := make(map[*ast.CallExpr]bool)
	inlining := make(map[*ast.FuncLit]bool)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			if id, op, ok := lockOrderCall(pass, n.Call); ok && (op == "Unlock" || op == "RUnlock") && id != "" {
				deferredUnlocks[n.Call] = true
			}
			return true
		case *ast.CallExpr:
			if id, op, ok := lockOrderCall(pass, n); ok {
				if id == "" {
					return false // local or unidentifiable lock: invisible
				}
				switch op {
				case "Lock", "RLock":
					events = append(events, lockEvent{pos: n.Pos(), held: snapshot(), lock: id})
					held[id] = true
				case "Unlock", "RUnlock":
					if !deferredUnlocks[n] {
						delete(held, id)
					}
				}
				return false
			}
			if fn := staticCallee(info, n); fn != nil {
				events = append(events, lockEvent{pos: n.Pos(), held: snapshot(), callee: fn})
				return true
			}
			if lit := closureFor(info, localClosures, n); lit != nil && !inlining[lit] {
				inlining[lit] = true
				ast.Inspect(lit.Body, walk)
				inlining[lit] = false
				return false
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
	return events
}

// lockOrderCall recognizes a Lock/Unlock/RLock/RUnlock call on a mutex and
// resolves the lock's type-granular identity: "pkg.Type.field" for a
// struct field (whatever the instance expression), "pkg.var" for a
// package-level mutex, "" for locals and shapes the analysis cannot name.
func lockOrderCall(pass *Pass, call *ast.CallExpr) (id, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, found := pass.Info.Types[sel.X]
	if !found || !isMutex(tv.Type) {
		return "", "", false
	}
	return lockIdentity(pass, sel.X), op, true
}

// lockIdentity names the mutex expression at type granularity.
func lockIdentity(pass *Pass, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		// A field selection: identity is owner-type.field.
		if selection, ok := pass.Info.Selections[e]; ok {
			if named := namedOf(selection.Recv()); named != nil {
				obj := named.Obj()
				if obj.Pkg() != nil {
					return obj.Pkg().Name() + "." + obj.Name() + "." + e.Sel.Name
				}
			}
			return ""
		}
		// Package-qualified: a package-level mutex var in another package.
		if v, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name()
		}
		return ""
	case *ast.Ident:
		if v, ok := pass.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		return "" // local mutex: cannot participate in a cross-function cycle by name
	case *ast.StarExpr:
		return lockIdentity(pass, e.X)
	}
	return ""
}

// namedOf unwraps pointers to the named type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
