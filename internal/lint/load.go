package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one parsed, type-checked unit of analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Imports lists the package's direct imports (module-internal and
	// external alike); the runner uses it to order packages so that fact
	// producers run before their consumers.
	Imports []string
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Name       string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir, returning every listed
// package. -export populates each dependency's compiler export data file,
// which is what lets the type checker resolve imports without loading
// their source.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Imports,Name,DepOnly,Standard,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` recorded, one shared instance per load so repeated imports
// reuse the already-read package.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load lists patterns in dir (module root or below), parses the matched
// packages from source and type-checks them against export data. Only the
// packages named by the patterns are returned; dependencies are consumed
// as export data.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		cfg := types.Config{Importer: imp}
		tpkg, err := cfg.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %v", lp.ImportPath, err)
		}
		out = append(out, &Package{
			Path:    lp.ImportPath,
			Dir:     lp.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			Imports: lp.Imports,
		})
	}
	sortByDependency(out)
	return out, nil
}

// sortByDependency orders packages so that every package follows the
// packages it imports (among those loaded): fact-producing analyzer passes
// then run before the passes that consume their facts. The module graph is
// acyclic, so a simple DFS suffices; ties keep a stable path order.
func sortByDependency(pkgs []*Package) {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	seen := make(map[string]bool, len(pkgs))
	out := make([]*Package, 0, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p.Path] {
			return
		}
		seen[p.Path] = true
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	copy(pkgs, out)
}
