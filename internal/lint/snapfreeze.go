package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapFreeze enforces the epoch/RCU snapshot discipline PR 7 built the hot
// path on: a type annotated //genas:frozen (the tree snapshot Node/Edge,
// the match-set buckets, a published loadgen Plan) is immutable once a
// value escapes its construction — publishers load snapshots lock-free, so
// any later write is a data race. Writes are only legal inside functions
// annotated //genas:builder, the designated construction/transform sites
// that operate on not-yet-published values.
//
// Flagged shapes, in any non-builder function: a field write, a
// slice-element or map store, a write through a pointer deref, an IncDec,
// and an append or copy whose destination belongs to a frozen value
// (append can write the shared backing array in place). Detection is by
// type, so writes through aliases (`e := &n.edges[i]; e.Child = c`) are
// caught too. Frozen-type facts cross packages: a type frozen in
// internal/tree is protected inside internal/core.
var SnapFreeze = &Analyzer{
	Name: "snapfreeze",
	Doc:  "types marked //genas:frozen are written only inside //genas:builder functions",
	Run:  runSnapFreeze,
}

// frozenFact keys a frozen type in Pass.Shared: "frozen:<pkgpath>.<Type>".
func frozenFact(pkgPath, name string) string { return "frozen:" + pkgPath + "." + name }

func runSnapFreeze(pass *Pass) {
	collectFrozenTypes(pass)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hasDirective(fd.Doc, BuilderMarker) {
				continue
			}
			checkFrozenWrites(pass, fd.Body)
		}
	}
}

// collectFrozenTypes publishes a fact for every type declaration in the
// package annotated //genas:frozen — on the type spec itself or on its
// enclosing declaration group.
func collectFrozenTypes(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			declFrozen := hasDirective(gd.Doc, FrozenMarker)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if declFrozen || hasDirective(ts.Doc, FrozenMarker) {
					pass.Shared[frozenFact(pass.Pkg.Path(), ts.Name.Name)] = true
				}
			}
		}
	}
}

// checkFrozenWrites walks one non-builder function body and reports every
// mutation that lands in a frozen value.
func checkFrozenWrites(pass *Pass, body *ast.BlockStmt) {
	// x = append(x, ...) would fire twice — once for the store, once for
	// the append destination; the assignment handler marks direct-RHS
	// append/copy calls it already accounted for.
	handled := make(map[ast.Node]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				fired := false
				if n.Tok != token.DEFINE {
					if name, ok := frozenWriteTarget(pass, lhs); ok {
						pass.Reportf(lhs.Pos(), "write to frozen type %s outside a //genas:builder function", name)
						fired = true
					}
				}
				// Mark the matching RHS append/copy as handled when the
				// store itself fired on the same frozen value (the grow-in-
				// place idiom); a DEFINE keeps the append check live since
				// append can still mutate a frozen backing array.
				if fired && len(n.Rhs) == len(n.Lhs) {
					if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
						handled[call] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if name, ok := frozenWriteTarget(pass, n.X); ok {
				pass.Reportf(n.X.Pos(), "write to frozen type %s outside a //genas:builder function", name)
			}
		case *ast.CallExpr:
			if handled[n] {
				return true
			}
			dst, what := mutatingBuiltinDst(pass, n)
			if dst == nil {
				return true
			}
			if name, ok := frozenMutationBase(pass, dst); ok {
				pass.Reportf(n.Pos(), "%s writes into frozen type %s outside a //genas:builder function", what, name)
			}
		}
		return true
	})
}

// mutatingBuiltinDst returns the destination operand of a builtin append
// or copy call, the two builtins that write through a slice argument.
func mutatingBuiltinDst(pass *Pass, call *ast.CallExpr) (ast.Expr, string) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return nil, ""
	}
	if obj, ok := pass.Info.Uses[id].(*types.Builtin); !ok || (obj.Name() != "append" && obj.Name() != "copy") {
		return nil, ""
	}
	return call.Args[0], id.Name
}

// frozenWriteTarget reports whether writing through expr mutates a frozen
// value: the expression must reach through a container — a field selection,
// an index, or a pointer deref — whose base is of (or aliases into) a
// frozen type. A bare identifier is a rebinding, not a mutation.
func frozenWriteTarget(pass *Pass, expr ast.Expr) (string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if name, ok := frozenTypeOf(pass, e.X); ok {
			return name, true
		}
		return frozenWriteTarget(pass, e.X)
	case *ast.IndexExpr:
		if name, ok := frozenTypeOf(pass, e.X); ok {
			return name, true
		}
		return frozenWriteTarget(pass, e.X)
	case *ast.StarExpr:
		if name, ok := frozenTypeOf(pass, e.X); ok {
			return name, true
		}
		return frozenWriteTarget(pass, e.X)
	}
	return "", false
}

// frozenMutationBase is frozenWriteTarget for builtin destinations: the
// slice operand itself counts when its elements (or the value owning its
// backing array) are frozen — append(e.Profiles, p) may write Edge's
// array in place even though e.Profiles is a plain []int.
func frozenMutationBase(pass *Pass, expr ast.Expr) (string, bool) {
	if name, ok := frozenTypeOf(pass, expr); ok {
		return name, true
	}
	return frozenWriteTarget(pass, expr)
}

// frozenTypeOf resolves expr's type, unwrapping pointers and slice/array
// element layers, and reports the frozen named type it lands on, if any.
// A slice of pointers stops the unwrap: storing into such a slice writes
// pointer slots, not the frozen pointees (the []*Node traversal-stack
// shape), whereas a slice of frozen values shares their backing array.
func frozenTypeOf(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[ast.Unparen(expr)]
	if !ok {
		return "", false
	}
	t := tv.Type
	for {
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			if _, ptrElem := u.Elem().Underlying().(*types.Pointer); ptrElem {
				return "", false
			}
			t = u.Elem()
			continue
		case *types.Array:
			if _, ptrElem := u.Elem().Underlying().(*types.Pointer); ptrElem {
				return "", false
			}
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	if _, frozen := pass.Shared[frozenFact(obj.Pkg().Path(), obj.Name())]; !frozen {
		return "", false
	}
	return obj.Pkg().Name() + "." + obj.Name(), true
}
