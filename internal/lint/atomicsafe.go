package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicSafe enforces all-or-nothing atomicity per field: a struct field
// or package-level variable ever accessed through sync/atomic — or
// declared as one of the atomic.* wrapper types — must never be read or
// written plainly. Mixing the two silently downgrades every atomic access
// at that site to a data race; the engine's epoch pointer (Engine.snap)
// and the dist histogram tallies are the values this protects.
//
// Three access modes are tracked. "field": &x.f passed to an atomic
// function — every other appearance of x.f is flagged. "elem":
// &x.f[i] passed to an atomic function — plain indexing of x.f is
// flagged, while len/cap/range/re-slicing stay legal (the slice header is
// not the atomic datum, its elements are). "declared": the field's type
// lives in sync/atomic — only method calls (x.f.Load()) and address-takes
// (&x.f) are legal; copying or reassigning the wrapper is flagged. Facts
// cross packages in dependency order: a downstream package touching an
// upstream atomic field plainly is caught where it happens.
var AtomicSafe = &Analyzer{
	Name: "atomicsafe",
	Doc:  "a field accessed via sync/atomic (or of atomic.* type) must never be accessed plainly",
	Run:  runAtomicSafe,
}

// atomicFact keys one atomic datum in Pass.Shared:
// "atomic:<pkgpath>.<Type>.<field>" (or "atomic:<pkgpath>.<var>") -> mode.
func atomicFact(owner string) string { return "atomic:" + owner }

const (
	atomicModeField    = "field"
	atomicModeElem     = "elem"
	atomicModeDeclared = "declared"
)

func runAtomicSafe(pass *Pass) {
	// Sub-pass 1a: fields declared with sync/atomic wrapper types.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					tv, ok := pass.Info.Types[field.Type]
					if !ok || !isAtomicWrapper(tv.Type) {
						continue
					}
					for _, name := range field.Names {
						owner := pass.Pkg.Path() + "." + ts.Name.Name + "." + name.Name
						pass.Shared[atomicFact(owner)] = atomicModeDeclared
					}
				}
			}
		}
	}

	// Sub-pass 1b: data reached through &… arguments of sync/atomic calls,
	// plus the sanctioned subtrees those arguments form.
	sanctioned := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			sanctioned[arg] = true
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			switch target := ast.Unparen(un.X).(type) {
			case *ast.IndexExpr:
				if owner := atomicOwner(pass, target.X); owner != "" {
					recordAtomicMode(pass, owner, atomicModeElem)
				}
			case *ast.SelectorExpr, *ast.Ident:
				if owner := atomicOwner(pass, target); owner != "" {
					recordAtomicMode(pass, owner, atomicModeField)
				}
			}
			return true
		})
	}

	// Sub-pass 2: flag plain accesses. Parent tracking distinguishes a
	// method call on a declared wrapper (legal) from a copy (not).
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			var parent ast.Node
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			ok := checkAtomicUse(pass, n, parent, sanctioned)
			if ok {
				stack = append(stack, n)
			}
			return ok
		})
	}
}

// checkAtomicUse inspects one node; returning false prunes the subtree.
func checkAtomicUse(pass *Pass, n, parent ast.Node, sanctioned map[ast.Node]bool) bool {
	if sanctioned[n] {
		return false // inside an atomic call's pointer argument
	}
	switch n := n.(type) {
	case *ast.IndexExpr:
		owner := atomicOwner(pass, n.X)
		if owner == "" {
			return true
		}
		if mode, _ := pass.Shared[atomicFact(owner)].(string); mode == atomicModeElem {
			pass.Reportf(n.Pos(), "plain element access of %s, whose elements are accessed with sync/atomic elsewhere", owner)
			return false
		}
	case *ast.SelectorExpr, *ast.Ident:
		expr := n.(ast.Expr)
		owner := atomicOwner(pass, expr)
		if owner == "" {
			return true
		}
		mode, _ := pass.Shared[atomicFact(owner)].(string)
		switch mode {
		case atomicModeField:
			pass.Reportf(n.Pos(), "plain access of %s, which is accessed with sync/atomic elsewhere", owner)
			return false
		case atomicModeDeclared:
			if !wrapperUseOK(parent, expr) {
				pass.Reportf(n.Pos(), "%s has an atomic wrapper type; use its methods, not a plain copy or store", owner)
				return false
			}
		}
	}
	return true
}

// wrapperUseOK reports a legal appearance of a declared atomic wrapper:
// as the receiver of a method selection, or having its address taken.
func wrapperUseOK(parent ast.Node, expr ast.Expr) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return p.X == expr
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// atomicOwner names the datum an expression denotes, matching the fact
// key grammar: "<pkgpath>.<Type>.<field>" for a struct field selection,
// "<pkgpath>.<name>" for a package-level variable, "" otherwise.
func atomicOwner(pass *Pass, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		sel, ok := pass.Info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return ""
		}
		named := namedOf(sel.Recv())
		if named == nil || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.Ident:
		v, ok := pass.Info.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return ""
		}
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

// recordAtomicMode publishes a mode fact; "field" (whole-datum atomicity)
// wins over "elem" when both are observed.
func recordAtomicMode(pass *Pass, owner, mode string) {
	key := atomicFact(owner)
	if prev, ok := pass.Shared[key].(string); ok {
		if prev == atomicModeDeclared || prev == atomicModeField {
			return
		}
	}
	pass.Shared[key] = mode
}

// isAtomicCall recognizes a call to a sync/atomic package function
// (Add*/Load*/Store*/Swap*/CompareAndSwap*).
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	fn := staticCallee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	name := fn.Name()
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// isAtomicWrapper reports a named type from sync/atomic (Int64, Uint32,
// Bool, Value, Pointer[T], …).
func isAtomicWrapper(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
