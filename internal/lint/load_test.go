package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module under a temp dir: files maps
// a module-relative path to its contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadModule drives the full loader against a two-package module and
// checks everything the runner depends on: only the pattern-matched
// packages come back (dependencies stay export data), they are typed, and
// they arrive in dependency order with imports recorded.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": "module fixload\n\ngo 1.24\n",
		"inner/inner.go": `package inner

// Answer is consumed downstream.
func Answer() int { return 42 }
`,
		"outer/outer.go": `package outer

import (
	"fmt"

	"fixload/inner"
)

// Show exercises a cross-package and a std call.
func Show() string { return fmt.Sprint(inner.Answer()) }
`,
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages, want 2 (deps must stay export-only): %v", len(pkgs), pkgs)
	}
	if pkgs[0].Path != "fixload/inner" || pkgs[1].Path != "fixload/outer" {
		t.Fatalf("packages out of dependency order: %s, %s", pkgs[0].Path, pkgs[1].Path)
	}
	outer := pkgs[1]
	if outer.Types == nil || outer.Info == nil || len(outer.Files) != 1 {
		t.Fatalf("outer package not fully loaded: %+v", outer)
	}
	found := false
	for _, imp := range outer.Imports {
		if imp == "fixload/inner" {
			found = true
		}
	}
	if !found {
		t.Errorf("outer.Imports = %v, missing fixload/inner", outer.Imports)
	}
	if outer.Types.Scope().Lookup("Show") == nil {
		t.Error("type-checked outer package has no Show in scope")
	}
}

// TestLoadTypeError ensures a broken package surfaces as an error instead
// of a half-loaded result.
func TestLoadTypeError(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": "module fixbroken\n\ngo 1.24\n",
		"b.go":   "package b\n\nfunc Bad() int { return undefinedIdent }\n",
	})
	if _, err := Load(dir, "./..."); err == nil {
		t.Fatal("Load of a package with a type error succeeded, want error")
	}
}

// TestLoadNoMatch covers the pattern-matches-nothing error path.
func TestLoadNoMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": "module fixempty\n\ngo 1.24\n",
		"e.go":   "package e\n",
	})
	if _, err := Load(dir, "./definitely/absent/..."); err == nil {
		t.Fatal("Load with an unmatched pattern succeeded, want error")
	}
}

// TestSortByDependency checks the ordering invariant directly on a
// synthetic graph: every package follows its loaded imports, unlisted
// imports are ignored, and unrelated packages keep stable path order.
func TestSortByDependency(t *testing.T) {
	mk := func(path string, imports ...string) *Package {
		return &Package{Path: path, Imports: imports}
	}
	pkgs := []*Package{
		mk("m/z"),
		mk("m/c", "m/b", "fmt"),
		mk("m/a"),
		mk("m/b", "m/a", "golang.org/x/not/loaded"),
	}
	sortByDependency(pkgs)

	pos := make(map[string]int, len(pkgs))
	var order []string
	for i, p := range pkgs {
		pos[p.Path] = i
		order = append(order, p.Path)
	}
	got := strings.Join(order, " ")
	if pos["m/a"] > pos["m/b"] || pos["m/b"] > pos["m/c"] {
		t.Errorf("dependency order violated: %s", got)
	}
	if pos["m/a"] != 0 {
		t.Errorf("stable tie-break should put m/a first (path order among roots): %s", got)
	}
	if len(pkgs) != 4 {
		t.Fatalf("sort changed package count: %s", got)
	}
}
