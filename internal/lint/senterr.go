package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// SentErr enforces the sentinel-error contract PR 3 established after
// broker.ErrBadBufferSize leaked unmatchable: every error returned from
// the public genas surface, or from an internal/broker or internal/schema
// constructor, must be — or %w-wrap — one of the internal/sentinel
// sentinels, so callers can errors.Is-match it through the facade
// re-exports.
//
// The analyzer runs in dependency order and publishes a fact per
// package-level error variable: whether its initializer bottoms out in a
// sentinel. Downstream return sites consume the facts, so a naked
// errors.New in internal/event is caught where the root package wraps and
// returns it. Pass-through wraps of an error received from a call are
// assumed compliant (the producing package is checked at its own return
// sites).
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "errors crossing the public surface must wrap an internal/sentinel sentinel",
	Run:  runSentErr,
}

// sentinelPkgSuffix identifies the sentinel-root package by import path.
const sentinelPkgSuffix = "internal/sentinel"

func runSentErr(pass *Pass) {
	collectErrVarFacts(pass)

	path := pass.Pkg.Path()
	switch {
	case path == "genas":
		// Every function in the root package feeds the public surface.
		for _, fd := range declaredFuncs(pass) {
			checkErrorReturns(pass, fd)
		}
	case strings.HasSuffix(path, "internal/broker"), strings.HasSuffix(path, "internal/schema"):
		// Constructors only: New* functions hand errors straight to the
		// facade before any sentinel mapping can intervene.
		for fn, fd := range declaredFuncs(pass) {
			if strings.HasPrefix(fn.Name(), "New") && fn.Exported() {
				checkErrorReturns(pass, fd)
			}
		}
	}
}

// errVarFact keys a package-level error variable's compliance in
// Pass.Shared: "errvar:<pkgpath>.<name>" -> bool.
func errVarFact(pkgPath, name string) string { return "errvar:" + pkgPath + "." + name }

// collectErrVarFacts records, for every package-level `var Err... =`
// declaration of type error, whether the initializer wraps a sentinel. In
// the sentinel package itself every error variable is a root.
func collectErrVarFacts(pass *Pass) {
	isRoot := strings.HasSuffix(pass.Pkg.Path(), sentinelPkgSuffix)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					obj, ok := pass.Info.Defs[name].(*types.Var)
					if !ok || !isErrorType(obj.Type()) || obj.Parent() != pass.Pkg.Scope() {
						continue
					}
					wraps := isRoot || wrapsSentinel(pass, vs.Values[i])
					pass.Shared[errVarFact(pass.Pkg.Path(), name.Name)] = wraps
				}
			}
		}
	}
}

// wrapsSentinel reports whether an error expression is known to bottom out
// in a sentinel: a reference to a fact-true variable, or a fmt.Errorf whose
// format has a %w verb fed by a fact-true variable. Expressions about which
// nothing is known (calls, locals) report false here — return-site checking
// treats those as pass-through instead of consulting this directly.
func wrapsSentinel(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if known, wraps := errVarStatus(pass, e); known {
			return wraps
		}
		return false
	case *ast.CallExpr:
		fn := staticCallee(pass.Info, e)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
			return false
		}
		if len(e.Args) == 0 || !formatHasWrapVerb(e.Args[0]) {
			return false
		}
		for _, arg := range e.Args[1:] {
			if wrapsSentinel(pass, arg) {
				return true
			}
		}
		return false
	}
	return false
}

// errVarStatus resolves an expression to a package-level error variable's
// fact: known reports whether a fact exists, wraps its value.
func errVarStatus(pass *Pass, e ast.Expr) (known, wraps bool) {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[e.Sel]
	default:
		return false, false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false, false
	}
	fact, ok := pass.Shared[errVarFact(v.Pkg().Path(), v.Name())]
	if !ok {
		return false, false
	}
	return true, fact.(bool)
}

func formatHasWrapVerb(arg ast.Expr) bool {
	lit, ok := ast.Unparen(arg).(*ast.BasicLit)
	if !ok {
		return false
	}
	s, err := strconv.Unquote(lit.Value)
	return err == nil && strings.Contains(s, "%w")
}

// checkErrorReturns inspects every return statement of fd, flagging
// error-position results that provably do not wrap a sentinel.
func checkErrorReturns(pass *Pass, fd *ast.FuncDecl) {
	sig, ok := pass.Info.Defs[fd.Name].Type().(*types.Signature)
	if !ok {
		return
	}
	errIdx := make(map[int]bool)
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errIdx[i] = true
		}
	}
	if len(errIdx) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != sig.Results().Len() {
			return true // bare return of named results: not tracked
		}
		for i, res := range ret.Results {
			if errIdx[i] {
				checkErrorExpr(pass, res)
			}
		}
		return true
	})
}

// checkErrorExpr flags e when it is provably non-compliant: an inline
// errors.New, a fmt.Errorf with no %w (or whose %w wraps only known-naked
// variables), or a reference to a known-naked package-level error variable.
// Unknown shapes (call results, locals, nil) pass.
func checkErrorExpr(pass *Pass, e ast.Expr) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if known, wraps := errVarStatus(pass, e); known && !wraps {
			pass.Reportf(e.Pos(), "returns %s, which does not wrap an internal/sentinel sentinel", exprString(e))
		}
	case *ast.CallExpr:
		fn := staticCallee(pass.Info, e)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		full := funcFullName(fn)
		switch full {
		case "errors.New":
			pass.Reportf(e.Pos(), "returns a fresh errors.New error; wrap an internal/sentinel sentinel instead")
		case "fmt.Errorf":
			if len(e.Args) == 0 {
				return
			}
			if !formatHasWrapVerb(e.Args[0]) {
				pass.Reportf(e.Pos(), "returns fmt.Errorf without %%w; wrap an internal/sentinel sentinel")
				return
			}
			// %w present: flag only when every wrapped error is known naked.
			anyUnknown, anyWraps, anyNaked := false, false, false
			for _, arg := range e.Args[1:] {
				if !isErrorType(typeOf(pass, arg)) {
					continue
				}
				known, wraps := errVarStatus(pass, arg)
				switch {
				case !known:
					anyUnknown = true
				case wraps:
					anyWraps = true
				default:
					anyNaked = true
				}
			}
			if anyNaked && !anyWraps && !anyUnknown {
				pass.Reportf(e.Pos(), "wraps an error that does not bottom out in an internal/sentinel sentinel")
			}
		}
	}
}

func typeOf(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
