package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The fixture harness is a miniature analysistest: each analyzer has a
// directory under testdata/src/<name> whose packages are type-checked and
// analyzed, and every expected finding is marked in the source with a
//
//	// want "substring"
//
// comment on the offending line. Unmatched wants and unwanted diagnostics
// both fail the test. Standard-library imports resolve through compiler
// export data (`go list -export`); fixture-internal imports (the senterr
// sentinel package) resolve against the fixture packages themselves.

// fixturePkg declares one fixture package: the import path the analyzers
// see and the directory its sources live in.
type fixturePkg struct {
	path string
	dir  string
}

// stdExports lazily loads export data for the dependency closure the
// fixtures import.
var stdExports = sync.OnceValues(func() (map[string]string, error) {
	listed, err := goList(".", []string{"errors", "fmt", "sync", "context", "net", "time", "bufio", "strings"})
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
})

// fixtureImporter resolves fixture-local packages before falling back to
// export data.
type fixtureImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.local[path]; ok {
		return p, nil
	}
	return fi.fallback.Import(path)
}

// loadFixture parses and type-checks the given packages, in order (earlier
// packages are importable by later ones).
func loadFixture(t *testing.T, pkgs []fixturePkg) []*Package {
	t.Helper()
	exports, err := stdExports()
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		local:    make(map[string]*types.Package),
		fallback: exportImporter(fset, exports),
	}
	var out []*Package
	for _, fp := range pkgs {
		entries, err := os.ReadDir(fp.dir)
		if err != nil {
			t.Fatal(err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(fp.dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		}
		info := newInfo()
		cfg := types.Config{Importer: imp}
		tpkg, err := cfg.Check(fp.path, fset, files, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", fp.path, err)
		}
		imp.local[fp.path] = tpkg
		out = append(out, &Package{
			Path:  fp.path,
			Dir:   fp.dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return out
}

var wantRe = regexp.MustCompile(`// want (".*")\s*$`)

// collectWants scans fixture sources for // want "substr" markers, keyed by
// file:line.
func collectWants(t *testing.T, pkgs []*Package) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				substr, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want marker: %v", name, i+1, err)
				}
				// A marker on a line of its own refers to the line above
				// (needed when the offending line is itself a comment,
				// like a malformed allow directive).
				wantLine := i + 1
				if strings.HasPrefix(strings.TrimSpace(line), "// want ") {
					wantLine = i
				}
				key := fmt.Sprintf("%s:%d", name, wantLine)
				wants[key] = append(wants[key], substr)
			}
		}
	}
	return wants
}

// runFixture analyzes the packages and matches diagnostics against want
// markers.
func runFixture(t *testing.T, a *Analyzer, pkgs []fixturePkg) {
	t.Helper()
	runFixtureOpts(t, a, pkgs, Options{})
}

// runFixtureOpts is runFixture with explicit run options (the stale-allow
// fixture needs StaleAllow on).
func runFixtureOpts(t *testing.T, a *Analyzer, pkgs []fixturePkg, opts Options) {
	t.Helper()
	loaded := loadFixture(t, pkgs)
	wants := collectWants(t, loaded)
	diags := RunOpts(loaded, []*Analyzer{a}, opts)

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		ws := wants[key]
		matched := -1
		for i, w := range ws {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[key] = append(ws[:matched], ws[matched+1:]...)
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			t.Errorf("%s: expected diagnostic containing %q, got none", k, w)
		}
	}
}

// fixtureDir resolves testdata/src/<name>.
func fixtureDir(name string) string { return filepath.Join("testdata", "src", name) }

func TestLockSafeFixture(t *testing.T) {
	runFixture(t, LockSafe, []fixturePkg{{path: "fix/locksafe", dir: fixtureDir("locksafe")}})
}

func TestHotPathFixture(t *testing.T) {
	runFixture(t, HotPath, []fixturePkg{{path: "fix/hotpath", dir: fixtureDir("hotpath")}})
}

func TestSentErrFixture(t *testing.T) {
	runFixture(t, SentErr, []fixturePkg{
		{path: "genas/internal/sentinel", dir: fixtureDir(filepath.Join("senterr", "sentinel"))},
		{path: "genas/internal/event", dir: fixtureDir(filepath.Join("senterr", "event"))},
		{path: "genas", dir: fixtureDir(filepath.Join("senterr", "root"))},
		{path: "genas/internal/schema", dir: fixtureDir(filepath.Join("senterr", "schema"))},
	})
}

func TestCtxLeakFixture(t *testing.T) {
	runFixture(t, CtxLeak, []fixturePkg{{path: "fix/ctxleak", dir: fixtureDir("ctxleak")}})
}

// TestAllowDirectiveNeedsReason covers the pseudo-analyzer diagnostic for a
// malformed suppression.
func TestAllowDirectiveNeedsReason(t *testing.T) {
	runFixture(t, HotPath, []fixturePkg{{path: "fix/badallow", dir: fixtureDir("badallow")}})
}

func TestSnapFreezeFixture(t *testing.T) {
	runFixture(t, SnapFreeze, []fixturePkg{
		{path: "fix/snapfreeze/types", dir: fixtureDir(filepath.Join("snapfreeze", "types"))},
		{path: "fix/snapfreeze/user", dir: fixtureDir(filepath.Join("snapfreeze", "user"))},
	})
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, LockOrder, []fixturePkg{
		{path: "fix/lockorder/base", dir: fixtureDir(filepath.Join("lockorder", "base"))},
		{path: "fix/lockorder/user", dir: fixtureDir(filepath.Join("lockorder", "user"))},
	})
}

func TestGoLifeFixture(t *testing.T) {
	runFixture(t, GoLife, []fixturePkg{{path: "fix/golife", dir: fixtureDir("golife")}})
}

func TestAtomicSafeFixture(t *testing.T) {
	runFixture(t, AtomicSafe, []fixturePkg{{path: "fix/atomicsafe", dir: fixtureDir("atomicsafe")}})
}

// TestStaleAllowFixture drives the stale-allow mode: a live suppression
// stays silent, a dead one and a misspelled analyzer name both fire.
func TestStaleAllowFixture(t *testing.T) {
	runFixtureOpts(t, HotPath, []fixturePkg{{path: "fix/staleallow", dir: fixtureDir("staleallow")}},
		Options{StaleAllow: true})
}

// TestKeepSuppressed pins the -json contract: with KeepSuppressed the
// allowed hotpath finding comes back marked Suppressed instead of dropped.
func TestKeepSuppressed(t *testing.T) {
	loaded := loadFixture(t, []fixturePkg{{path: "fix/staleallow", dir: fixtureDir("staleallow")}})
	diags := RunOpts(loaded, []*Analyzer{HotPath}, Options{KeepSuppressed: true})
	var suppressed []Diagnostic
	for _, d := range diags {
		if d.Suppressed {
			suppressed = append(suppressed, d)
		}
	}
	if len(suppressed) != 1 {
		t.Fatalf("want exactly 1 suppressed diagnostic, got %d (all: %v)", len(suppressed), diags)
	}
	if got := suppressed[0].Analyzer; got != "hotpath" {
		t.Errorf("suppressed diagnostic analyzer = %q, want hotpath", got)
	}
	plain := Run(loaded, []*Analyzer{HotPath})
	for _, d := range plain {
		if d.Suppressed {
			t.Errorf("default Run leaked a suppressed diagnostic: %s", d)
		}
		if d.Analyzer == "hotpath" {
			t.Errorf("default Run should drop the allowed finding, got: %s", d)
		}
	}
}
