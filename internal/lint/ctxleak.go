package lint

import (
	"go/ast"
	"go/types"
)

// CtxLeak keeps context plumbing honest in library packages: when a
// function already receives a context.Context it must not mint a fresh
// root with context.Background() or context.TODO() (severing cancellation
// from the caller), and it must not drop the received context entirely
// while performing known-blocking work (the shape where a PublishCtx
// variant quietly degrades to Publish). Package main and test files are
// exempt — commands and tests are where roots legitimately start.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "library code must thread a received context.Context, not replace or drop it",
	Run:  runCtxLeak,
}

func runCtxLeak(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for fn, fd := range declaredFuncs(pass) {
		pos := pass.Fset.Position(fd.Pos())
		if isTestFile(pos.Filename) {
			continue
		}
		ctxParams := contextParams(pass, fd)
		if len(ctxParams) == 0 {
			continue
		}
		checkFreshRoots(pass, fd)
		checkDroppedCtx(pass, fn, fd, ctxParams)
	}
}

// contextParams returns the declared context.Context parameters of fd.
func contextParams(pass *Pass, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := pass.Info.Defs[name].(*types.Var)
			if ok && isContextType(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

// checkFreshRoots flags context.Background()/context.TODO() calls in a
// function that already has a context parameter in scope. Function
// literals are included: a closure spawned from a ctx-carrying function
// still has the ctx in scope.
func checkFreshRoots(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(call.Pos(), "context.%s() with a ctx parameter in scope severs cancellation; thread the parameter", fn.Name())
		}
		return true
	})
}

// checkDroppedCtx flags a function whose context parameter is named but
// never referenced while the body performs a known-blocking operation
// (locksafe's seed set): the caller's deadline silently stops applying. A
// parameter named _ is an explicit statement that dropping is intended.
func checkDroppedCtx(pass *Pass, fn *types.Func, fd *ast.FuncDecl, ctxParams []*types.Var) {
	used := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.Info.Uses[id].(*types.Var); ok {
			used[v] = true
		}
		return true
	})
	var dropped *types.Var
	for _, p := range ctxParams {
		if p.Name() != "_" && p.Name() != "" && !used[p] {
			dropped = p
			break
		}
	}
	if dropped == nil {
		return
	}
	reported := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(pass.Info, call)
		if callee == nil {
			return true
		}
		if why, blocking := locksafeSeeds[funcFullName(callee)]; blocking {
			pass.Reportf(call.Pos(), "%s drops its %s parameter before blocking work (%s)", fn.Name(), dropped.Name(), why)
			reported = true
			return false
		}
		return true
	})
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
