package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe flags blocking work performed while a sync.Mutex or
// sync.RWMutex acquired in the same function is still held: channel sends
// and receives (unless inside a select with a default case), selects with
// no default case, network and buffered I/O, calls through function values
// (the shape user callbacks arrive in), and calls to functions that
// transitively do any of those. The blocking call set is seeded with the
// operations that caused the PR 2 Reorder race and the PR 3 Block-send
// fence: broker publish/registration entry points, the Block-policy send,
// and the wire/federation teardown waits.
//
// The analysis is intra-procedural per function with package-local
// transitive summaries: a lock acquired in a callee (the Engine.acquire
// pattern) is not visible to its caller, and lock state is tracked in
// source order, not over the control-flow graph — both are accepted
// limitations, tuned so that the real tree's idioms need no suppressions
// beyond genuinely intentional blocking.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "no blocking work (channel ops, I/O, callbacks) under a mutex held in the same function",
	Run:  runLockSafe,
}

// locksafeSeeds maps fully-qualified functions to why they block. These
// are the known-blocking operations of the standard library plus this
// module's broker/wire/federation surface.
var locksafeSeeds = map[string]string{
	"(net.Conn).Write":           "network write",
	"(net.Conn).Read":            "network read",
	"(io.Writer).Write":          "I/O write",
	"(io.Reader).Read":           "I/O read",
	"(*bufio.Writer).Write":      "buffered write",
	"(*bufio.Writer).Flush":      "buffered flush",
	"(*bufio.Scanner).Scan":      "buffered read",
	"(*bufio.Reader).Read":       "buffered read",
	"(*bufio.Reader).ReadString": "buffered read",
	"(*bufio.Reader).ReadBytes":  "buffered read",
	"net.Dial":                   "network dial",
	"net.DialTimeout":            "network dial",
	"(*net.Dialer).Dial":         "network dial",
	"(*net.Dialer).DialContext":  "network dial",
	"time.Sleep":                 "sleep",
	"(*sync.WaitGroup).Wait":     "WaitGroup wait",
	"(*sync.Cond).Wait":          "condition wait",

	"(*genas/internal/broker.Broker).Publish":            "may stall on a Block-policy subscriber",
	"(*genas/internal/broker.Broker).PublishCtx":         "may stall on a Block-policy subscriber",
	"(*genas/internal/broker.Broker).PublishValues":      "may stall on a Block-policy subscriber",
	"(*genas/internal/broker.Broker).PublishValuesCtx":   "may stall on a Block-policy subscriber",
	"(*genas/internal/broker.Broker).PublishBatch":       "may stall on a Block-policy subscriber",
	"(*genas/internal/broker.Broker).PublishBatchCtx":    "may stall on a Block-policy subscriber",
	"(*genas/internal/broker.Broker).Subscribe":          "takes broker registration locks",
	"(*genas/internal/broker.Broker).SubscribeWith":      "takes broker registration locks",
	"(*genas/internal/broker.Broker).SubscribeBuffered":  "takes broker registration locks",
	"(*genas/internal/broker.Broker).SubscribeGroup":     "takes broker registration locks",
	"(*genas/internal/broker.Broker).Unsubscribe":        "takes broker registration locks",
	"(*genas/internal/broker.Broker).Close":              "waits out in-flight deliveries",
	"(*genas/internal/broker.Subscription).blockingSend": "blocks until buffer space frees",
	"(*genas/internal/wire.Server).Close":                "waits for handler goroutines",
	"(genas/internal/wire.Overlay).HandlePeer":           "runs a peer link to completion",
	"(*genas/internal/federation.Fed).Close":             "waits for link goroutines",
	"(*genas/internal/federation.Fed).Dial":              "network dial + handshake",
}

// lockOp is one potentially-blocking operation found in a function body.
type lockOp struct {
	pos  token.Pos
	what string
}

// runLockSafe analyzes one package: build per-function blocking summaries,
// propagate them through the package-local call graph, then re-walk every
// function tracking held locks and report blocking operations under them.
func runLockSafe(pass *Pass) {
	decls := declaredFuncs(pass)

	// Phase 1: direct blocking ops + package-local call sites per function.
	type funcFacts struct {
		direct []lockOp
		calls  map[*types.Func][]token.Pos
	}
	facts := make(map[*types.Func]*funcFacts, len(decls))
	for fn, fd := range decls {
		ff := &funcFacts{calls: make(map[*types.Func][]token.Pos)}
		scanBlockingOps(pass, fd.Body, func(op lockOp, _ map[string]token.Pos) {
			ff.direct = append(ff.direct, op)
		}, func(callee *types.Func, pos token.Pos, _ map[string]token.Pos) {
			ff.calls[callee] = append(ff.calls[callee], pos)
		})
		facts[fn] = ff
	}

	// Phase 2: fixpoint — a function blocks if it has a direct blocking op
	// or calls a same-package function that blocks.
	reason := make(map[*types.Func]string, len(decls))
	for fn, ff := range facts {
		if len(ff.direct) > 0 {
			reason[fn] = ff.direct[0].what
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, ff := range facts {
			if _, done := reason[fn]; done {
				continue
			}
			for callee := range ff.calls {
				if why, ok := reason[callee]; ok {
					reason[fn] = "calls " + callee.Name() + ", which may block (" + why + ")"
					changed = true
					break
				}
			}
		}
	}

	// Phase 3: report blocking ops and blocking calls under held locks.
	for _, fd := range decls {
		scanBlockingOps(pass, fd.Body, func(op lockOp, held map[string]token.Pos) {
			if lock, ok := anyHeld(held); ok {
				pass.Reportf(op.pos, "%s while %s is held", op.what, lock)
			}
		}, func(callee *types.Func, pos token.Pos, held map[string]token.Pos) {
			why, blocks := reason[callee]
			if !blocks {
				return
			}
			if lock, ok := anyHeld(held); ok {
				pass.Reportf(pos, "call to %s (%s) while %s is held", callee.Name(), why, lock)
			}
		})
	}
}

func anyHeld(held map[string]token.Pos) (string, bool) {
	for lock := range held {
		return lock, true
	}
	return "", false
}

// scanBlockingOps walks a function body in source order, tracking the set
// of mutexes locked (and not yet unlocked) in this function, and invokes
// onOp for every potentially-blocking operation and onCall for every
// static call to a package-local function, both with the lock set held at
// that point. Function literals and go statements are not descended into:
// their bodies run on other goroutines or at another time.
func scanBlockingOps(pass *Pass, body *ast.BlockStmt,
	onOp func(lockOp, map[string]token.Pos),
	onCall func(*types.Func, token.Pos, map[string]token.Pos)) {

	info := pass.Info
	held := make(map[string]token.Pos)

	// Comm statements of select clauses are handled at the select level:
	// a select with a default case never blocks, one without is reported
	// as a single operation.
	exemptComm := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm != nil {
				exemptComm[cc.Comm] = true
			}
		}
		return true
	})

	// Local closures: `f := func() {...}` followed by `f()` is a static
	// call in disguise — scan the literal's body at the call instead of
	// flagging a dynamic call (the broker's rollback idiom).
	localClosures := collectLocalClosures(info, body)

	deferredUnlocks := make(map[*ast.CallExpr]bool)

	// Guard against recursive closures: a literal already being inlined is
	// not entered again.
	inlining := make(map[*ast.FuncLit]bool)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			// A deferred unlock releases at return: the lock stays held
			// for the rest of the body, so keep it in the set and skip
			// the unlock bookkeeping. Other deferred calls are treated
			// at their syntactic position (conservative).
			if _, op, ok := mutexCall(info, n.Call); ok && (op == "Unlock" || op == "RUnlock") {
				deferredUnlocks[n.Call] = true
			}
			return true
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				onOp(lockOp{pos: n.Pos(), what: "select with no default case (blocks)"}, held)
			}
			return true
		case *ast.SendStmt:
			if !exemptComm[n] {
				onOp(lockOp{pos: n.Arrow, what: "channel send"}, held)
			}
			// Operand expressions may still contain calls.
			walkExprs(n.Chan, walk)
			walkExprs(n.Value, walk)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !receiveExempt(exemptComm, n) {
				onOp(lockOp{pos: n.OpPos, what: "channel receive"}, held)
			}
			return true
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					onOp(lockOp{pos: n.For, what: "range over channel (blocking receive)"}, held)
				}
			}
			return true
		case *ast.CallExpr:
			if lock, op, ok := mutexCall(info, n); ok {
				switch op {
				case "Lock", "RLock":
					held[lock] = n.Pos()
				case "Unlock", "RUnlock":
					if !deferredUnlocks[n] {
						delete(held, lock)
					}
				}
				return false
			}
			if fn := staticCallee(info, n); fn != nil {
				if why, seeded := locksafeSeeds[funcFullName(fn)]; seeded {
					onOp(lockOp{pos: n.Pos(), what: "call to " + fn.Name() + " (" + why + ")"}, held)
				} else if fn.Pkg() == pass.Pkg {
					onCall(fn, n.Pos(), held)
				}
				return true
			}
			if lit := closureFor(info, localClosures, n); lit != nil && !inlining[lit] {
				// Inline the closure body under the current lock state.
				inlining[lit] = true
				ast.Inspect(lit.Body, walk)
				inlining[lit] = false
				return false
			}
			if isDynamicCall(info, n) {
				onOp(lockOp{pos: n.Pos(), what: "call through function value (possible user callback)"}, held)
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

func walkExprs(e ast.Expr, walk func(ast.Node) bool) {
	if e != nil {
		ast.Inspect(e, walk)
	}
}

// receiveExempt reports whether a receive expression is the comm operation
// of a select clause (possibly wrapped in an assignment or expression
// statement recorded as exempt — the clause forms `case <-ch:`,
// `case v := <-ch:` and `case v, ok := <-ch:` all resolve to this unary).
func receiveExempt(exempt map[ast.Node]bool, recv *ast.UnaryExpr) bool {
	if exempt[recv] {
		return true
	}
	for n := range exempt {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(n.X) == recv {
				return true
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if ast.Unparen(rhs) == recv {
					return true
				}
			}
		}
	}
	return false
}

// mutexCall recognizes x.Lock()/x.Unlock()/x.RLock()/x.RUnlock() on a
// sync.Mutex or sync.RWMutex, returning the lock's identity and the
// operation name.
func mutexCall(info *types.Info, call *ast.CallExpr) (lock, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, found := info.Types[sel.X]
	if !found || !isMutex(tv.Type) {
		return "", "", false
	}
	return exprString(sel.X), op, true
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// collectLocalClosures maps local variables assigned exactly one function
// literal (and never reassigned) to that literal.
func collectLocalClosures(info *types.Info, body *ast.BlockStmt) map[*types.Var]*ast.FuncLit {
	assigned := make(map[*types.Var]int)
	lits := make(map[*types.Var]*ast.FuncLit)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj, ok := info.Defs[id].(*types.Var)
		if !ok {
			if obj, ok = info.Uses[id].(*types.Var); !ok {
				return
			}
		}
		assigned[obj]++
		if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			lits[obj] = lit
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				record(as.Lhs[i], as.Rhs[i])
			}
		}
		return true
	})
	for obj, n := range assigned {
		if n != 1 {
			delete(lits, obj)
		}
	}
	return lits
}

// closureFor resolves a call through a local single-assignment closure
// variable to its function literal.
func closureFor(info *types.Info, closures map[*types.Var]*ast.FuncLit, call *ast.CallExpr) *ast.FuncLit {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	return closures[obj]
}
