package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// utilSrc packs one specimen of every call shape the helpers classify.
const utilSrc = `package u

import (
	"fmt"
	"sync"
)

type T struct {
	mu sync.Mutex
	rw *sync.RWMutex
	cb func()
}

var fn = func() {}

func named() {}

func (t *T) method() {}

func drive(t *T, f func(), xs []int) {
	named()
	t.method()
	fmt.Sprintf("%d", 0)
	f()
	t.cb()
	fn()
	_ = len(xs)
	_ = int64(len(xs))
	func() {}()
}
`

// typecheckSrc parses and type-checks one source string against the
// fixture harness's std export data.
func typecheckSrc(t *testing.T, src string) (*ast.File, *types.Info, *types.Package) {
	t.Helper()
	exports, err := stdExports()
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "u.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := newInfo()
	cfg := types.Config{Importer: exportImporter(fset, exports)}
	pkg, err := cfg.Check("u", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return f, info, pkg
}

// callsByShape indexes every call in drive by the rendering of its callee
// expression (which doubles as an exprString exercise).
func callsByShape(t *testing.T, f *ast.File) map[string]*ast.CallExpr {
	t.Helper()
	out := make(map[string]*ast.CallExpr)
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			out[exprString(call.Fun)] = call
		}
		return true
	})
	return out
}

func TestStaticCallee(t *testing.T) {
	f, info, _ := typecheckSrc(t, utilSrc)
	calls := callsByShape(t, f)
	cases := []struct {
		shape string
		full  string // "" means nil: not a static call
	}{
		{"named", "u.named"},
		{"t.method", "(*u.T).method"},
		{"fmt.Sprintf", "fmt.Sprintf"},
		{"f", ""},
		{"t.cb", ""},
		{"fn", ""},
		{"len", ""},
		{"int64", ""},
		{"?", ""}, // the immediately-invoked literal renders as "?"
	}
	for _, c := range cases {
		call, ok := calls[c.shape]
		if !ok {
			t.Fatalf("no call with shape %q in specimen", c.shape)
		}
		fn := staticCallee(info, call)
		switch {
		case c.full == "" && fn != nil:
			t.Errorf("staticCallee(%s) = %s, want nil", c.shape, funcFullName(fn))
		case c.full != "" && fn == nil:
			t.Errorf("staticCallee(%s) = nil, want %s", c.shape, c.full)
		case c.full != "" && funcFullName(fn) != c.full:
			t.Errorf("staticCallee(%s) = %s, want %s", c.shape, funcFullName(fn), c.full)
		}
	}
}

func TestIsDynamicCall(t *testing.T) {
	f, info, _ := typecheckSrc(t, utilSrc)
	calls := callsByShape(t, f)
	cases := map[string]bool{
		"named":       false, // declared function
		"t.method":    false, // method invocation
		"fmt.Sprintf": false, // package-qualified function
		"f":           true,  // parameter
		"t.cb":        true,  // func-typed field
		"fn":          true,  // package-level func variable
		"len":         false, // builtin
		"int64":       false, // conversion
		"?":           false, // immediately-invoked literal
	}
	for shape, want := range cases {
		call, ok := calls[shape]
		if !ok {
			t.Fatalf("no call with shape %q in specimen", shape)
		}
		if got := isDynamicCall(info, call); got != want {
			t.Errorf("isDynamicCall(%s) = %v, want %v", shape, got, want)
		}
	}
}

func TestIsMutex(t *testing.T) {
	_, _, pkg := typecheckSrc(t, utilSrc)
	st := pkg.Scope().Lookup("T").Type().Underlying().(*types.Struct)
	want := map[string]bool{"mu": true, "rw": true, "cb": false}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if got := isMutex(fld.Type()); got != want[fld.Name()] {
			t.Errorf("isMutex(%s %s) = %v, want %v", fld.Name(), fld.Type(), got, want[fld.Name()])
		}
	}
	if isMutex(types.Typ[types.Int]) {
		t.Error("isMutex(int) = true")
	}
}

func TestExprString(t *testing.T) {
	cases := map[string]string{
		"a.b.c":        "a.b.c",
		"(x)":          "x",
		"xs[i]":        "xs[i]",
		"g()":          "g()",
		"*p":           "*p",
		"&v":           "&v",
		"T{}":          "?", // composite literal collapses to "?"
		"m[k[i]].f":    "m[k[i]].f",
		"(*p).f":       "*p.f", // parens drop: rendering is for humans, not parsing
		"a + b":        "?",
		"f(g(x))[0].y": "f()[?].y", // literal index collapses to "?"
	}
	for src, want := range cases {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		if got := exprString(e); got != want {
			t.Errorf("exprString(%s) = %q, want %q", src, got, want)
		}
	}
}

func TestHasDirective(t *testing.T) {
	mk := func(lines ...string) *ast.CommentGroup {
		cg := &ast.CommentGroup{}
		for _, l := range lines {
			cg.List = append(cg.List, &ast.Comment{Text: l})
		}
		return cg
	}
	cases := []struct {
		doc    *ast.CommentGroup
		marker string
		want   bool
	}{
		{nil, HotpathMarker, false},
		{mk("// Doc line.", "//genas:hotpath"), HotpathMarker, true},
		{mk("//genas:hotpath reason text"), HotpathMarker, true},
		{mk("//genas:hotpathextra"), HotpathMarker, false}, // no partial-prefix match
		{mk("// genas:hotpath"), HotpathMarker, false},     // a space breaks a directive
		{mk("//genas:frozen"), BuilderMarker, false},
		{mk("//genas:builder"), BuilderMarker, true},
	}
	for i, c := range cases {
		if got := hasDirective(c.doc, c.marker); got != c.want {
			t.Errorf("case %d: hasDirective(%v, %q) = %v, want %v", i, c.doc, c.marker, got, c.want)
		}
	}
}

func TestIsTestFile(t *testing.T) {
	if !isTestFile("foo_test.go") {
		t.Error(`isTestFile("foo_test.go") = false`)
	}
	if isTestFile("foo.go") || isTestFile("test.go") {
		t.Error("isTestFile misclassified a non-test file")
	}
}

func TestDeclaredFuncs(t *testing.T) {
	f, info, pkg := typecheckSrc(t, utilSrc)
	pass := &Pass{Files: []*ast.File{f}, Info: info, Pkg: pkg}
	decls := declaredFuncs(pass)
	got := make(map[string]bool, len(decls))
	for fn := range decls {
		got[fn.Name()] = true
	}
	for _, name := range []string{"named", "method", "drive"} {
		if !got[name] {
			t.Errorf("declaredFuncs missing %q (got %v)", name, got)
		}
	}
	if len(decls) != 3 {
		t.Errorf("declaredFuncs returned %d functions, want 3 (%v)", len(decls), got)
	}
}
