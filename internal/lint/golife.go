package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLife requires every go statement in library packages to have a
// provable termination path, catching the leaked per-link writer shape
// wire/federation teardown bugs take: a goroutine that loops forever with
// no channel to receive a close fence on and no WaitGroup join will
// outlive its owner, holding its connection and buffers until process
// exit.
//
// A spawned body (function literal or static callee, followed
// transitively through package-local calls and cross-package facts) is
// accepted when any of these witnesses is present: a channel receive,
// select, or range-over-channel anywhere in the body (the ctx.Done /
// close-fence shape — the fence makes the loop cancellable); a
// (*sync.WaitGroup).Done call (the goroutine is joined, so a hang is a
// visible deadlock rather than a silent leak); or simply the absence of an
// unbounded loop — a body whose loops all have conditions or exits
// terminates on its own. A goroutine started through a function value
// cannot be analyzed and is reported as unprovable. Package main is
// exempt: commands own their process lifetime.
var GoLife = &Analyzer{
	Name: "golife",
	Doc:  "every go statement in library code needs a termination path (close fence, join, or bounded body)",
	Run:  runGoLife,
}

// goLeakFact keys a function's leak verdict in Pass.Shared:
// "goleak:<fullname>" -> reason string (present only for leaking funcs).
func goLeakFact(full string) string { return "goleak:" + full }

// goSummary is the termination evidence found in one function body.
type goSummary struct {
	waits     bool // channel receive / select / range over channel
	joins     bool // (*sync.WaitGroup).Done
	unbounded bool // a `for {}` with no reachable exit in this body
	callees   []*types.Func
}

func runGoLife(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	decls := declaredFuncs(pass)

	// Phase 1: per-function summaries.
	sums := make(map[*types.Func]*goSummary, len(decls))
	for fn, fd := range decls {
		sums[fn] = summarizeBody(pass, fd.Body)
	}

	// Phase 2: leak fixpoint. A function leaks when it has an unbounded
	// loop with neither wait nor join witness, or (lacking its own
	// witnesses) calls a function that leaks.
	leak := make(map[*types.Func]string, len(decls))
	for fn, s := range sums {
		if s.unbounded && !s.waits && !s.joins {
			leak[fn] = "contains an unbounded loop with no exit, channel wait, or join"
		}
	}
	calleeLeak := func(fn *types.Func) (string, bool) {
		if _, local := sums[fn]; local {
			why, ok := leak[fn]
			return why, ok
		}
		if fact, ok := pass.Shared[goLeakFact(funcFullName(fn))]; ok {
			return fact.(string), true
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for fn, s := range sums {
			if _, done := leak[fn]; done || s.waits || s.joins {
				continue
			}
			for _, callee := range s.callees {
				if callee == fn {
					continue
				}
				if _, leaks := calleeLeak(callee); leaks {
					leak[fn] = "calls " + callee.Name() + ", which may run forever"
					changed = true
					break
				}
			}
		}
	}
	for fn, why := range leak {
		pass.Shared[goLeakFact(funcFullName(fn))] = why
	}

	// Phase 3: judge every go statement.
	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, gs, calleeLeak)
			return true
		})
	}
}

func checkGoStmt(pass *Pass, gs *ast.GoStmt, calleeLeak func(*types.Func) (string, bool)) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		s := summarizeBody(pass, lit.Body)
		if s.waits || s.joins {
			return
		}
		if s.unbounded {
			pass.Reportf(gs.Pos(), "goroutine has no provable termination path: unbounded loop with no channel wait or WaitGroup join")
			return
		}
		for _, callee := range s.callees {
			if why, leaks := calleeLeak(callee); leaks {
				pass.Reportf(gs.Pos(), "goroutine has no provable termination path: %s %s", callee.Name(), why)
				return
			}
		}
		return
	}
	if fn := staticCallee(pass.Info, gs.Call); fn != nil {
		if why, leaks := calleeLeak(fn); leaks {
			pass.Reportf(gs.Pos(), "goroutine has no provable termination path: %s %s", fn.Name(), why)
		}
		return
	}
	pass.Reportf(gs.Pos(), "goroutine started through a function value: termination cannot be proven; spawn a named function or literal")
}

// summarizeBody collects termination evidence from one body, not
// descending into nested function literals or go statements (they run
// elsewhere).
func summarizeBody(pass *Pass, body *ast.BlockStmt) *goSummary {
	info := pass.Info
	s := &goSummary{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// The spawned call's operands still run here, but the spawned
			// body does not; skip entirely (it is judged at its own site).
			return false
		case *ast.SelectStmt:
			s.waits = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.waits = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.waits = true
				}
			}
		case *ast.ForStmt:
			if n.Cond == nil && !loopHasExit(pass, n) {
				s.unbounded = true
			}
		case *ast.CallExpr:
			if fn := staticCallee(info, n); fn != nil {
				if funcFullName(fn) == "(*sync.WaitGroup).Done" {
					s.joins = true
				}
				s.callees = append(s.callees, fn)
			}
		}
		return true
	})
	return s
}

// loopHasExit reports whether a `for {}` loop's body contains a reachable
// way out: a return, a panic or process exit, a goto, or a break binding
// to this loop (plain break not nested inside an inner loop, switch, or
// select; or a labeled break). Nested function literals and go statements
// are not part of the loop's control flow.
func loopHasExit(pass *Pass, loop *ast.ForStmt) bool {
	found := false
	var walk func(n ast.Node, depth int) // depth of intervening break targets
	walkNode := func(n ast.Node, depth int) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			switch {
			case n.Tok == token.GOTO:
				found = true
			case n.Tok == token.BREAK && (n.Label != nil || depth == 0):
				found = true
			}
		case *ast.CallExpr:
			if fn := staticCallee(pass.Info, n); fn != nil {
				full := funcFullName(fn)
				if full == "os.Exit" || strings.HasPrefix(full, "log.Fatal") || full == "runtime.Goexit" {
					found = true
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, isB := pass.Info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
					found = true
				}
			}
		}
		return !found
	}
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || found {
				return false
			}
			if m == n {
				return true
			}
			switch m.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				// A nested break target: plain breaks inside bind to it,
				// not to our loop. Recurse with increased depth.
				walk(m, depth+1)
				return false
			}
			return walkNode(m, depth)
		})
	}
	walk(loop.Body, 0)
	return found
}
