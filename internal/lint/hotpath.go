package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath enforces the zero-allocation publish path: a function annotated
// with a //genas:hotpath doc-comment line may not contain map, slice, or
// struct-pointer composite literals, string concatenation, fmt calls,
// closure allocations (function literals and bound method values — the
// Engine.acquire shape PR 3 hoisted into fields), or implicit interface
// conversions boxing a non-pointer value. Cold branches inside a hot
// function (error paths) carry //genas:allow hotpath suppressions with the
// reason; the allocation ceiling itself is enforced end-to-end by
// TestPublishPathAllocations.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//genas:hotpath functions must not allocate: no literals, fmt, closures, or interface boxing",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	for _, fd := range hotpathFuncs(pass) {
		checkHotBody(pass, fd.Body)
	}
}

// hotpathFuncs yields the function declarations annotated //genas:hotpath.
func hotpathFuncs(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(fd.Doc, HotpathMarker) {
				out = append(out, fd)
			}
		}
	}
	return out
}

func checkHotBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info

	// Selector expressions that are the operator of a call are method
	// invocations, not bound method values.
	invoked := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			invoked[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates on the hot path")
			return false
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates on the hot path")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates on the hot path")
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && isString(tv.Type) && tv.Value == nil {
					pass.Reportf(n.OpPos, "string concatenation allocates on the hot path")
				}
			}
			return true
		case *ast.SelectorExpr:
			if invoked[n] {
				return true
			}
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				pass.Reportf(n.Pos(), "bound method value %s.%s allocates on the hot path; hoist it to a field", exprString(n.X), n.Sel.Name)
			}
			return true
		case *ast.CallExpr:
			if fn := staticCallee(info, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					pass.Reportf(n.Pos(), "fmt.%s allocates on the hot path", fn.Name())
					return true
				}
				checkBoxedArgs(pass, n, fn)
			}
			return true
		}
		return true
	})
}

// checkBoxedArgs flags arguments implicitly converted to an interface type
// from a concrete non-pointer type: the conversion boxes the value onto the
// heap. Pointer, interface, and nil arguments convert without allocating.
func checkBoxedArgs(pass *Pass, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(paramType) {
			continue
		}
		tv, found := pass.Info.Types[arg]
		if !found || tv.IsNil() {
			continue
		}
		at := tv.Type.Underlying()
		if types.IsInterface(tv.Type) {
			continue
		}
		if _, isPtr := at.(*types.Pointer); isPtr {
			continue
		}
		if _, isChan := at.(*types.Chan); isChan {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into %s on the hot path", tv.Type.String(), paramType.String())
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
