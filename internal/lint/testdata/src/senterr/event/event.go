// Package event mimics an internal leaf package: one error variable wraps
// a sentinel, one is naked. The facts flow downstream to the root-package
// checks.
package event

import (
	"errors"
	"fmt"

	"genas/internal/sentinel"
)

var (
	ErrNaked   = errors.New("event: naked")
	ErrWrapped = fmt.Errorf("event: %w", sentinel.ErrThing)
	ErrAliased = sentinel.ErrOther
)
