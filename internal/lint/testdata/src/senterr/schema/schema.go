// Package schema mimics genas/internal/schema: only exported New*
// constructors are part of the senterr contract; helpers may return
// whatever they like.
package schema

import "errors"

var ErrNaked = errors.New("schema: naked")

type Schema struct{}

func New(n int) (*Schema, error) {
	if n == 0 {
		return nil, ErrNaked // want "does not wrap"
	}
	return &Schema{}, nil
}

// helper is not a constructor: quiet.
func helper() error {
	return ErrNaked
}

// notNamedNew is exported but not a constructor: quiet.
func Validate() error {
	return errors.New("schema: invalid")
}
