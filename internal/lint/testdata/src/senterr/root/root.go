// Package root is type-checked as the public package genas: every return
// site is part of the supported surface, so provably sentinel-free errors
// are findings.
package genas

import (
	"errors"
	"fmt"

	"genas/internal/event"
	"genas/internal/sentinel"
)

func FreshNew() error {
	return errors.New("genas: fresh") // want "fresh errors.New"
}

func NoWrapVerb(n int) error {
	return fmt.Errorf("genas: bad value %d", n) // want "without %w"
}

// WrapsNaked wraps a cross-package variable the facts prove naked: this is
// the event.ErrArity leak shape the analyzer exists to catch.
func WrapsNaked() error {
	return fmt.Errorf("genas: %w", event.ErrNaked) // want "does not bottom out"
}

func ReturnsNaked() error {
	return event.ErrNaked // want "does not wrap"
}

func WrapsSentinel() error {
	return fmt.Errorf("genas: %w", sentinel.ErrThing)
}

func ReturnsWrapped() error {
	return event.ErrWrapped
}

func ReturnsAliased() error {
	return event.ErrAliased
}

// PassThrough re-wraps an error received from a call: the producer is
// checked at its own return sites, so this is quiet.
func PassThrough() error {
	if err := WrapsSentinel(); err != nil {
		return fmt.Errorf("genas: pass: %w", err)
	}
	return nil
}

func NilIsFine() (int, error) {
	return 1, nil
}

// Allowed carries a documented suppression: quiet.
func Allowed() error {
	//genas:allow senterr fixture: programmer-misuse error, not a matchable condition
	return errors.New("genas: misuse")
}
