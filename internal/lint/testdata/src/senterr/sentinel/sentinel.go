// Package sentinel is the senterr fixture's sentinel-root package; it is
// type-checked under the import path genas/internal/sentinel, so every
// error variable here is a compliance root.
package sentinel

import "errors"

var (
	ErrThing = errors.New("genas: thing")
	ErrOther = errors.New("genas: other")
)
