// Package ctxleak is the ctxleak analyzer fixture.
package ctxleak

import (
	"context"
	"time"
)

// freshRoot mints a new root despite receiving a context.
func freshRoot(ctx context.Context) context.Context {
	_ = ctx
	return context.Background() // want "context.Background() with a ctx parameter in scope"
}

// freshTODO is the same defect via TODO.
func freshTODO(ctx context.Context) context.Context {
	_ = ctx
	return context.TODO() // want "context.TODO() with a ctx parameter in scope"
}

// rootInClosure: the parameter is still in scope inside the closure.
func rootInClosure(ctx context.Context) func() context.Context {
	_ = ctx
	return func() context.Context {
		return context.Background() // want "context.Background() with a ctx parameter in scope"
	}
}

// droppedBeforeSleep receives a context, never consults it, and blocks.
func droppedBeforeSleep(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "drops its ctx parameter before blocking work"
}

// threaded consults the context around the blocking work: quiet.
func threaded(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	time.Sleep(time.Millisecond)
}

// explicitDrop declares the drop with the blank identifier: quiet.
func explicitDrop(_ context.Context) {
	time.Sleep(time.Millisecond)
}

// noCtx has no parameter in scope, so roots are legitimate: quiet.
func noCtx() context.Context {
	return context.Background()
}

// allowedRoot carries a documented suppression: quiet.
func allowedRoot(ctx context.Context) context.Context {
	_ = ctx
	//genas:allow ctxleak fixture: detached background task must outlive the request
	return context.Background()
}
