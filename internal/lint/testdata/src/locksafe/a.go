// Package locksafe is the locksafe analyzer fixture: each function either
// reproduces a blocking-under-lock shape the analyzer must flag, or the
// corrected idiom it must stay quiet on.
package locksafe

import (
	"net"
	"sync"
	"time"
)

type broker struct {
	mu   sync.RWMutex
	ch   chan int
	conn net.Conn
	wg   sync.WaitGroup
}

// blockUnderLock is the PR 3 Block-send regression shape: a blocking
// channel send while the delivery shard's read lock is held.
func (b *broker) blockUnderLock(n int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.ch <- n // want "channel send while b.mu is held"
}

// nonBlockingUnderLock is the corrected form: the send cannot block inside
// a select with a default case.
func (b *broker) nonBlockingUnderLock(n int) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	select {
	case b.ch <- n:
		return true
	default:
		return false
	}
}

// sendAfterUnlock releases before sending: quiet.
func (b *broker) sendAfterUnlock(n int) {
	b.mu.Lock()
	v := n + 1
	b.mu.Unlock()
	b.ch <- v
}

func (b *broker) receiveUnderLock() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want "channel receive while b.mu is held"
}

func (b *broker) selectUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want "select with no default case"
	case v := <-b.ch:
		_ = v
	case <-time.After(time.Millisecond):
	}
}

func (b *broker) writeUnderLock(p []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, err := b.conn.Write(p) // want "network write"
	return err
}

func (b *broker) sleepUnderLock() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "sleep"
	b.mu.Unlock()
}

func (b *broker) waitUnderLock() {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.wg.Wait() // want "WaitGroup wait"
}

// callBlockingHelper blocks transitively: helper performs the send.
func (b *broker) callBlockingHelper(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.helper(n) // want "call to helper"
}

func (b *broker) helper(n int) {
	b.ch <- n
}

// rangeUnderLock drains the channel while holding the lock.
func (b *broker) rangeUnderLock() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for v := range b.ch { // want "range over channel"
		total += v
	}
	return total
}

// callbackUnderLock invokes a user-provided function value under the lock.
func (b *broker) callbackUnderLock(fn func(int)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fn(1) // want "call through function value"
}

// goroutineUnderLock is quiet: the spawned goroutine does not run under
// the caller's lock.
func (b *broker) goroutineUnderLock(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- n
	}()
}

// localClosureUnderLock: a single-assignment local closure is inlined at
// its call site, so the send inside it is still caught.
func (b *broker) localClosureUnderLock(n int) {
	send := func() {
		b.ch <- n // want "channel send while b.mu is held"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	send()
}

// allowedSend carries a documented suppression: quiet.
func (b *broker) allowedSend(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//genas:allow locksafe fixture: intentional blocking send under the lock
	b.ch <- n
}

// reacquire exercises sequential lock tracking across unlock/lock pairs.
func (b *broker) reacquire(n int) {
	b.mu.RLock()
	b.mu.RUnlock()
	b.ch <- n // quiet: nothing held here
	b.mu.Lock()
	b.mu.Unlock()
}
