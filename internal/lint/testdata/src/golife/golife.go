// Package golife exercises every goroutine-lifecycle verdict: unbounded
// bodies fire, close-fence receives, WaitGroup joins, and bounded bodies
// stay quiet, and function-value spawns are unprovable by construction.
package golife

import (
	"context"
	"sync"
)

// forever loops with no exit path: the canonical leak.
func forever() {
	for {
	}
}

// spin leaks transitively through a package-local call.
func spin() { forever() }

// Spawn starts one goroutine of every judged shape.
func Spawn(ctx context.Context, wg *sync.WaitGroup, ch chan int, f func()) {
	go forever() // want "no provable termination"

	go spin() // want "no provable termination"

	go func() { // want "no provable termination"
		for {
			work()
		}
	}()

	go func() { // want "no provable termination"
		forever()
	}()

	go f() // want "started through a function value"

	// Quiet: the select receives the close fence; the loop is cancellable.
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()

	// Quiet: joined — a hang is a visible deadlock, not a silent leak.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			work()
		}
	}()

	// Quiet: bounded loop, the body terminates on its own.
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()

	// Quiet: range over a channel ends at close.
	go func() {
		for v := range ch {
			_ = v
		}
	}()

	// Quiet: the static callee waits on its channel.
	go drain(ch)

	// Quiet: an unbounded loop with a return under a condition has an
	// exit path.
	go supervise(ch)
}

func work() {}

// drain receives until close.
func drain(ch chan int) {
	for range ch {
	}
}

// supervise loops forever syntactically but can leave.
func supervise(ch chan int) {
	for {
		if cap(ch) == 0 {
			return
		}
		work()
	}
}
