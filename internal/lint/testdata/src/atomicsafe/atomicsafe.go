// Package atomicsafe exercises the all-or-nothing atomicity rule: once a
// datum is touched through sync/atomic (or declared as a wrapper type),
// every plain access of it is a race.
package atomicsafe

import "sync/atomic"

// Hist mixes the three tracked modes: a whole-field atomic total, a slice
// with atomic elements, and a declared wrapper.
type Hist struct {
	total  int64
	counts []int64
	snap   atomic.Int64
}

// ops is a package-level atomic counter.
var ops int64

// NewHist builds the struct through composite-literal keys: no selector
// access, nothing to flag.
func NewHist(n int) *Hist {
	return &Hist{counts: make([]int64, n)}
}

// Add is the sanctioned pattern: every access goes through sync/atomic.
func (h *Hist) Add(bin int) {
	atomic.AddInt64(&h.total, 1)
	atomic.AddInt64(&h.counts[bin], 1)
	atomic.AddInt64(&ops, 1)
}

// Racy mixes plain accesses into the same data.
func (h *Hist) Racy(bin int) int64 {
	h.total++          // want "plain access of"
	v := h.counts[bin] // want "plain element access of"
	ops = 3            // want "plain access of"
	s := h.snap.Load()
	_ = s
	w := h.snap // want "atomic wrapper type"
	_ = w
	return v
}

// Size touches only the slice header of an elem-mode datum: legal.
func (h *Hist) Size() int { return len(h.counts) }

// Snapshot reads every element through sync/atomic; ranging over the
// slice (header-only) is legal.
func (h *Hist) Snapshot() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = atomic.LoadInt64(&h.counts[i])
	}
	return out
}

// Wrapper methods and address-takes are the two legal wrapper shapes.
func (h *Hist) Load() int64        { return h.snap.Load() }
func (h *Hist) Ref() *atomic.Int64 { return &h.snap }
func (h *Hist) Total() int64       { return atomic.LoadInt64(&h.total) }
func (h *Hist) Ops() int64         { return atomic.LoadInt64(&ops) }
