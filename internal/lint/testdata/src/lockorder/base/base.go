// Package base pins the canonical lock order the lockorder fixture
// inverts downstream: T1.Mu strictly before T2.Mu.
package base

import "sync"

// T1 is the lock that must come first.
type T1 struct{ Mu sync.Mutex }

// T2 comes second in the canonical order.
type T2 struct{ Mu sync.Mutex }

// FirstThenSecond establishes the T1→T2 edge.
func FirstThenSecond(a *T1, b *T2) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Mu.Lock()
	defer b.Mu.Unlock()
}
