// Package user reproduces the PR 6 routing/broker deadlock shape: one
// package pins an order, a downstream package holds the second lock while
// re-entering a path that takes the first — the AB/BA inversion lockorder
// exists to catch, across the package boundary via acquisition facts.
package user

import (
	"sync"

	"fix/lockorder/base"
)

// Reversed holds T2.Mu, then calls into the canonical path, which
// acquires T1.Mu (and T2.Mu again): the cross-package inversion.
func Reversed(a *base.T1, b *base.T2) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	base.FirstThenSecond(a, b) // want "lock order cycle"
}

// SameOrder repeats the canonical order directly: consistent, quiet.
func SameOrder(a *base.T1, b *base.T2) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Mu.Lock()
	defer b.Mu.Unlock()
}

// A and B are package-local lock owners for the same-package cycle.
type A struct{ Mu sync.Mutex }

// B is the other side of the local inversion.
type B struct{ Mu sync.Mutex }

// AB records the A→B direction.
func AB(a *A, b *B) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Mu.Lock()
	b.Mu.Unlock()
}

// BA inverts it: the cycle closes on the later-scanned edge.
func BA(a *A, b *B) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	a.Mu.Lock() // want "lock order cycle"
	a.Mu.Unlock()
}

// Sequential releases before acquiring the next lock: no nesting, no
// edge, no finding.
func Sequential(a *A, b *B) {
	b.Mu.Lock()
	b.Mu.Unlock()
	a.Mu.Lock()
	a.Mu.Unlock()
}

// TwoShards locks two instances of one type: a self-edge, skipped by the
// type-granular analysis (instance order is out of scope).
func TwoShards(s1, s2 *A) {
	s1.Mu.Lock()
	defer s1.Mu.Unlock()
	s2.Mu.Lock()
	s2.Mu.Unlock()
}
