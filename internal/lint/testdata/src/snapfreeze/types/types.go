// Package types declares the frozen snapshot shapes the snapfreeze
// fixture protects, mirroring internal/tree's Node/Edge.
package types

// Node is one immutable snapshot node.
//
//genas:frozen
type Node struct {
	Attr     int
	Profiles []int
	Edges    []Edge
	Index    map[string]int
}

// Edge is one immutable transition.
//
//genas:frozen
type Edge struct {
	Kind     int
	Profiles []int
	Child    *Node
}

// NewNode is a designated construction site: writes are legal here.
//
//genas:builder
func NewNode(attr int) *Node {
	n := &Node{Attr: attr, Index: make(map[string]int)}
	n.Profiles = append(n.Profiles, attr)
	n.Edges = append(n.Edges, Edge{Kind: 1})
	n.Index["root"] = attr
	return n
}

// Mutate is a same-package violation: no builder annotation.
func Mutate(n *Node) {
	n.Attr = 1 // want "write to frozen type types.Node"
}

// Read-only traversal is always legal.
func Sum(n *Node) int {
	total := len(n.Profiles)
	for _, e := range n.Edges {
		total += e.Kind
	}
	if v, ok := n.Index["root"]; ok {
		total += v
	}
	return total
}
