// Package user consumes frozen types declared upstream: the cross-package
// fact must protect them here too.
package user

import "fix/snapfreeze/types"

// Clobber writes an upstream frozen field directly.
func Clobber(n *types.Node) {
	n.Attr = 2 // want "write to frozen type types.Node"
}

// DeepWrite mutates a frozen value reached through an index.
func DeepWrite(n *types.Node) {
	n.Edges[0].Child = nil // want "write to frozen type types.Edge"
}

// Overwrite replaces the pointee wholesale.
func Overwrite(n *types.Node) {
	*n = types.Node{} // want "write to frozen type types.Node"
}

// Alias writes through a typed alias into the frozen value.
func Alias(n *types.Node) {
	e := &n.Edges[0]
	e.Profiles = append(e.Profiles, 1) // want "write to frozen type types.Edge"
}

// AppendThrough may grow in place, scribbling on the shared backing array.
func AppendThrough(n *types.Node) []int {
	return append(n.Profiles, 9) // want "append writes into frozen type types.Node"
}

// CopyInto overwrites frozen elements via the copy builtin.
func CopyInto(n *types.Node, src []int) {
	copy(n.Profiles, src) // want "copy writes into frozen type types.Node"
}

// MapWrite stores into a frozen value's map.
func MapWrite(n *types.Node) {
	n.Index["k"] = 1 // want "write to frozen type types.Node"
}

// Bump increments a frozen field.
func Bump(n *types.Node) {
	n.Attr++ // want "write to frozen type types.Node"
}

// Rebind only rebinds the local variable: not a mutation.
func Rebind(n *types.Node) *types.Node {
	n = types.NewNode(1)
	return n
}

// ReadAcross is the legal consumption shape: reads, lengths, fresh copies
// of the data into caller-owned slices.
func ReadAcross(n *types.Node) []int {
	out := make([]int, 0, len(n.Profiles))
	out = append(out, n.Profiles...)
	return out
}

// Traverse keeps a local worklist of pointers to frozen nodes: writing
// the pointer slots of a []*Node never mutates the pointees — the DFS
// shape every tree walk uses, and the false positive the pointer-element
// stop in frozenTypeOf exists to prevent.
func Traverse(root *types.Node) int {
	stack := []*types.Node{root}
	total := 0
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		total += n.Attr
		for i := range n.Edges {
			if c := n.Edges[i].Child; c != nil {
				stack = append(stack, c)
			}
		}
	}
	return total
}

// Successor is a downstream builder: constructing the next epoch's
// snapshot is exactly what builder sites are for.
//
//genas:builder
func Successor(n *types.Node) *types.Node {
	next := types.NewNode(n.Attr)
	next.Profiles = append(next.Profiles, 1)
	return next
}
