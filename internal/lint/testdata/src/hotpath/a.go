// Package hotpath is the hotpath analyzer fixture: annotated functions
// reproduce each allocation shape the analyzer must flag; the unannotated
// twin at the bottom proves the checks only apply under the marker.
package hotpath

import (
	"fmt"
	"sync"
)

type engine struct {
	mu      sync.RWMutex
	runlock func()
}

type sink interface{ accept(v any) }

//genas:hotpath
func sprintfOnHotPath(v int) string {
	return fmt.Sprintf("v=%d", v) // want "fmt.Sprintf allocates"
}

//genas:hotpath
func mapLiteralOnHotPath(k string) map[string]int {
	return map[string]int{k: 1} // want "map literal allocates"
}

//genas:hotpath
func sliceLiteralOnHotPath(v float64) []float64 {
	return []float64{v} // want "slice literal allocates"
}

//genas:hotpath
func concatOnHotPath(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//genas:hotpath
func closureOnHotPath(n int) func() int {
	return func() int { return n } // want "closure allocates"
}

// boundMethodOnHotPath is the PR 3 Engine.acquire regression shape:
// returning a fresh method value allocates a closure per call.
//
//genas:hotpath
func (e *engine) boundMethodOnHotPath() func() {
	e.mu.RLock()
	return e.mu.RUnlock // want "bound method value e.mu.RUnlock allocates"
}

// hoistedMethodValue is the corrected form: the bound method value is
// created once at construction and reused.
//
//genas:hotpath
func (e *engine) hoistedMethodValue() func() {
	e.mu.RLock()
	return e.runlock
}

//genas:hotpath
func boxingOnHotPath(s sink, v float64) {
	s.accept(v) // want "boxes float64"
}

//genas:hotpath
func pointerArgIsFine(s sink, v *engine) {
	s.accept(v)
}

// allowedColdBranch suppresses the error-path allocation with a reason.
//
//genas:hotpath
func allowedColdBranch(ok bool) error {
	if !ok {
		//genas:allow hotpath fixture: cold error branch
		return fmt.Errorf("not ok")
	}
	return nil
}

// constConcatIsFine: constant folding happens at compile time.
//
//genas:hotpath
func constConcatIsFine() string {
	return "a" + "b"
}

// unannotated may allocate freely: quiet.
func unannotated(k string) (string, map[string]int) {
	return fmt.Sprintf("k=%s", k), map[string]int{k: 1}
}
