// Package staleallow exercises stale-allow detection: a live suppression
// counts its use and survives; one that excuses nothing is itself a
// finding, as is one naming an analyzer that does not exist.
package staleallow

import "fmt"

// hot has one real hotpath finding, suppressed by a live allow.
//
//genas:hotpath
func hot(x int) string {
	//genas:allow hotpath the format path is cold by construction
	return fmt.Sprintf("%d", x)
}

// cold carries an allow that suppresses nothing.
func cold(x int) int {
	//genas:allow hotpath nothing fires here anymore // want "stale allow: hotpath reports nothing"
	return x + 1
}

// typo names an analyzer that does not exist.
func typo(x int) int {
	//genas:allow hotpaths typo in the analyzer name // want "unknown analyzer"
	return x
}
