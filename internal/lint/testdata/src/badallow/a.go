// Package badallow exercises the pseudo-analyzer diagnostic for a
// suppression directive with no reason.
package badallow

func fine() int {
	//genas:allow hotpath
	// want "needs an analyzer name and a reason"
	return 1
}
