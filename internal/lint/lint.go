// Package lint is genasvet's analysis suite: project-specific static
// checks that mechanically enforce the invariants the engine's throughput
// depends on — no blocking work under shard/broker locks (locksafe), a
// zero-allocation publish hot path (hotpath), sentinel-wrapped errors on
// the public surface (senterr), no context misuse in library code
// (ctxleak) — and, since the epoch/RCU rebuild, the concurrency
// architecture itself: published snapshots stay immutable (snapfreeze),
// mutexes acquire in one global order (lockorder), spawned goroutines
// provably terminate or are joined (golife), and fields touched through
// sync/atomic are never accessed plainly (atomicsafe).
//
// The framework is a deliberately small, dependency-free analogue of
// golang.org/x/tools/go/analysis (which this module does not vendor):
// packages are parsed with go/parser, type-checked with go/types against
// compiler export data obtained from `go list -export`, and each Analyzer
// walks the typed syntax reporting Diagnostics. Findings are suppressed
// line-by-line with
//
//	//genas:allow <analyzer> <reason>
//
// placed on, or on the line above, the offending line. The reason is
// mandatory: an allow directive without one is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package, reporting findings through the pass.
	Run func(*Pass)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Shared persists across the packages of one run (per analyzer),
	// visited in dependency order: analyzers use it to publish facts about
	// a package (e.g. which error values wrap a sentinel) that checks in
	// downstream packages consume.
	Shared map[string]any

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a finding covered by an allow directive. Run drops
	// suppressed findings unless Options.KeepSuppressed retains them (the
	// -json mode does, so tooling can see what the allows are holding back).
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// AllowPrefix introduces a suppression comment; DirectivePrefix covers every
// genasvet source directive (hotpath annotations included). FrozenMarker
// annotates a type whose values are immutable once published; BuilderMarker
// annotates the construction functions allowed to write them (snapfreeze).
const (
	DirectivePrefix = "//genas:"
	AllowPrefix     = "//genas:allow"
	HotpathMarker   = "//genas:hotpath"
	FrozenMarker    = "//genas:frozen"
	BuilderMarker   = "//genas:builder"
)

// allowKey identifies one suppression: an analyzer name on a source line.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowDirective is one parsed //genas:allow comment. used counts the
// diagnostics it suppressed during a run, so directives excusing nothing
// can be reported as stale.
type allowDirective struct {
	pos      token.Position
	analyzer string
	used     int
}

// collectAllows scans a file's comments for allow directives. A directive
// suppresses matching diagnostics on its own line and on the following
// line (so it can sit above the statement it excuses). Malformed
// directives are returned as diagnostics of the pseudo-analyzer
// "genasvet". The returned slice preserves source order for deterministic
// stale-allow reporting; both map entries of a directive share one
// *allowDirective, so a use through either line is counted once.
func collectAllows(fset *token.FileSet, files []*ast.File) (map[allowKey]*allowDirective, []*allowDirective, []Diagnostic) {
	allows := make(map[allowKey]*allowDirective)
	var directives []*allowDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowPrefix)
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "genasvet",
						Message:  "allow directive needs an analyzer name and a reason: //genas:allow <analyzer> <reason>",
					})
					continue
				}
				d := &allowDirective{pos: pos, analyzer: fields[0]}
				directives = append(directives, d)
				for _, line := range []int{pos.Line, pos.Line + 1} {
					allows[allowKey{file: pos.Filename, line: line, analyzer: fields[0]}] = d
				}
			}
		}
	}
	return allows, directives, bad
}

// Analyzers returns the full genasvet suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockSafe, HotPath, SentErr, CtxLeak, SnapFreeze, LockOrder, GoLife, AtomicSafe}
}

// ByName resolves a comma-separated analyzer selection against the suite.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Options tunes a run beyond the analyzer selection.
type Options struct {
	// StaleAllow additionally reports, per package, every allow directive
	// that suppressed nothing for an analyzer that actually ran — a
	// suppression that outlived the finding it excused — and every
	// directive naming an analyzer that does not exist.
	StaleAllow bool
	// KeepSuppressed retains suppressed diagnostics in the result, marked
	// Suppressed, instead of dropping them.
	KeepSuppressed bool
}

// Run executes the analyzers over every package, in dependency order, and
// returns the surviving (unsuppressed) diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunOpts(pkgs, analyzers, Options{})
}

// RunOpts is Run with explicit Options.
func RunOpts(pkgs []*Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	var diags []Diagnostic
	shared := make(map[*Analyzer]map[string]any, len(analyzers))
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		shared[a] = make(map[string]any)
		running[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		allows, directives, bad := collectAllows(pkg.Fset, pkg.Files)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Shared:   shared[a],
			}
			pass.report = func(d Diagnostic) {
				if dir := allows[allowKey{file: d.Pos.Filename, line: d.Pos.Line, analyzer: d.Analyzer}]; dir != nil {
					dir.used++
					if !opts.KeepSuppressed {
						return
					}
					d.Suppressed = true
				}
				diags = append(diags, d)
			}
			a.Run(pass)
		}
		if opts.StaleAllow {
			for _, dir := range directives {
				switch {
				case !known[dir.analyzer]:
					diags = append(diags, Diagnostic{
						Pos:      dir.pos,
						Analyzer: "genasvet",
						Message:  fmt.Sprintf("allow directive names unknown analyzer %q", dir.analyzer),
					})
				case running[dir.analyzer] && dir.used == 0:
					diags = append(diags, Diagnostic{
						Pos:      dir.pos,
						Analyzer: "genasvet",
						Message:  fmt.Sprintf("stale allow: %s reports nothing on this line or the next; delete the directive", dir.analyzer),
					})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}
