package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// staticCallee resolves a call to the *types.Func it invokes, or nil when
// the callee is a function-typed value (a dynamic call), a conversion, or
// a builtin.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok && sel.Kind() == types.MethodVal {
				return fn
			}
			return nil // field of function type: dynamic
		}
		// Package-qualified call (fmt.Errorf).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isDynamicCall reports a call through a function-typed value: a local, a
// parameter, a struct field, or a package-level func variable — the shape
// user-provided callbacks arrive in.
func isDynamicCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return false // conversion or builtin
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		_, isFunc := info.Uses[fun].(*types.Func)
		if isFunc {
			return false
		}
		_, isVar := info.Uses[fun].(*types.Var)
		return isVar
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Kind() == types.FieldVal // func-typed field
		}
		// Package-qualified: a *types.Var here is a func-typed package var.
		_, isVar := info.Uses[fun.Sel].(*types.Var)
		return isVar
	case *ast.FuncLit:
		return false // immediately-invoked literal: body is scanned directly
	}
	return false
}

// funcFullName names fn like types.Func.FullName: "time.Sleep",
// "(*sync.WaitGroup).Wait", "(net.Conn).Write".
func funcFullName(fn *types.Func) string { return fn.FullName() }

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly via
// pointer).
func isMutex(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// exprString renders a (small) expression for lock identity and
// diagnostics: "e.mu", "shard.mu". Unrenderable shapes collapse to "?".
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	}
	return "?"
}

// hasDirective reports whether a function's doc comment carries the given
// //genas: marker on a line of its own.
func hasDirective(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// isTestFile reports a _test.go file (analyzed loads exclude them, but
// fixtures may not).
func isTestFile(name string) bool { return strings.HasSuffix(name, "_test.go") }

// declaredFuncs yields every function declaration with a body in the
// package, paired with its *types.Func object.
func declaredFuncs(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}
