package loadgen

import (
	"context"
	"net"
	"time"

	"genas/internal/broker"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/wire"
)

// wireTimeout bounds every client round trip; load runs are local, so a
// stall this long is a failure, not congestion.
const wireTimeout = 30 * time.Second

// wireDriver measures the full TCP path: an in-process daemon-equivalent
// (broker + wire.Server on a loopback listener) spoken to through the wire
// client, so frame encoding, the socket and response demultiplexing are all
// inside the measured publish latency.
type wireDriver struct {
	brk    *broker.Broker
	srv    *wire.Server
	client *wire.Client
	sch    *schema.Schema
	names  []string // event payload key per attribute index

	serveDone chan struct{}
}

// wireProto resolves the scenario's protocol pin for the wire-level drivers.
func (sc Scenario) wireProto() wire.Proto {
	switch sc.Proto {
	case "v1":
		return wire.ProtoV1
	case "v2":
		return wire.ProtoV2
	}
	return wire.ProtoAuto
}

func newWireDriver(sc Scenario, sch *schema.Schema) (*wireDriver, error) {
	brk, err := broker.New(sch, broker.Options{})
	if err != nil {
		return nil, err
	}
	srv := wire.NewServer(brk, nil)
	if sc.wireProto() == wire.ProtoV1 {
		srv.SetMaxProto(wire.ProtoV1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		brk.Close()
		return nil, err
	}
	d := &wireDriver{brk: brk, srv: srv, sch: sch, serveDone: make(chan struct{})}
	d.names = make([]string, sch.N())
	for i := 0; i < sch.N(); i++ {
		d.names[i] = sch.At(i).Name
	}
	go func() {
		defer close(d.serveDone)
		_ = srv.Serve(context.Background(), ln)
	}()
	client, err := wire.DialWith(ln.Addr().String(), wire.DialConfig{
		Timeout: wireTimeout,
		Proto:   sc.wireProto(),
	})
	if err != nil {
		srv.Close()
		<-d.serveDone
		brk.Close()
		return nil, err
	}
	d.client = client
	// The server forwards every notification down this connection; a reader
	// must drain them or the client's demultiplexer starts dropping.
	go func() {
		for range client.Notifications() {
		}
	}()
	return d, nil
}

func (d *wireDriver) Name() string { return "wire" }

func (d *wireDriver) Subscribe(p *predicate.Profile) error {
	return d.client.Subscribe(string(p.ID), p.Render(d.sch), p.Priority, wireTimeout)
}

func (d *wireDriver) Unsubscribe(id predicate.ID) error {
	return d.client.Unsubscribe(string(id), wireTimeout)
}

// payload builds the name→value map a publish frame carries. The per-event
// map is part of the protocol cost being measured.
func (d *wireDriver) payload(vals []float64) map[string]float64 {
	m := make(map[string]float64, len(vals))
	for i, v := range vals {
		m[d.names[i]] = v
	}
	return m
}

func (d *wireDriver) Publish(vals []float64) (int, error) {
	// PublishVals is the per-protocol hot path: one small binary frame on a
	// v2 connection, the name→value map (part of v1's measured cost) on v1.
	return d.client.PublishVals(vals, wireTimeout)
}

func (d *wireDriver) PublishBatch(batch [][]float64) (int, error) {
	if d.client.Proto() >= wire.ProtoV2 {
		counts, err := d.client.PublishValsBatch(batch, wireTimeout)
		if err != nil {
			return 0, err
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total, nil
	}
	evs := make([]map[string]float64, len(batch))
	for i, vals := range batch {
		evs[i] = d.payload(vals)
	}
	counts, err := d.client.PublishBatch(evs, wireTimeout)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Drain waits until the broker's delivered tally stops moving: publish
// round trips are synchronous, but notification forwarding is not.
func (d *wireDriver) Drain() (Counters, error) {
	waitStable(func() uint64 { return d.brk.Stats().Delivered })
	return Counters{Delivered: d.brk.Stats().Delivered}, nil
}

func (d *wireDriver) Close() error {
	err := d.client.Close()
	d.srv.Close()
	<-d.serveDone
	d.brk.Close()
	return err
}
