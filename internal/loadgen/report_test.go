package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mkReport builds a report with one scenario per (name, eps) pair.
func mkReport(rows map[string]float64) *Report {
	var results []Result
	for name, eps := range rows {
		results = append(results, Result{
			Name:     name,
			Measured: Measured{ThroughputEPS: eps, MatchesPerSec: eps / 2},
		})
	}
	return NewReport("test", results)
}

// TestCompareGate covers the gate's decision table: pass within tolerance,
// fail beyond it, never fail on improvement, and treat a vanished scenario
// as a regression.
func TestCompareGate(t *testing.T) {
	base := mkReport(map[string]float64{"a": 1000, "b": 2000, "c": 500})

	if regs := Compare(base, mkReport(map[string]float64{"a": 900, "b": 1600, "c": 600}), 0.25); len(regs) != 0 {
		t.Errorf("within-tolerance report flagged: %v", regs)
	}
	regs := Compare(base, mkReport(map[string]float64{"a": 700, "b": 2000, "c": 500}), 0.25)
	if len(regs) != 1 || regs[0].Scenario != "a" {
		t.Fatalf("want one regression on a, got %v", regs)
	}
	if !strings.Contains(regs[0].String(), "a:") {
		t.Errorf("regression rendering lost the scenario: %q", regs[0])
	}
	regs = Compare(base, mkReport(map[string]float64{"a": 1000, "b": 2000}), 0.25)
	if len(regs) != 1 || !regs[0].Missing || regs[0].Scenario != "c" {
		t.Fatalf("missing scenario not flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Errorf("missing rendering wrong: %q", regs[0])
	}
	// A scenario only in the new report gates nothing; a zero baseline row
	// gates nothing.
	base2 := mkReport(map[string]float64{"a": 0})
	if regs := Compare(base2, mkReport(map[string]float64{"a": 1, "z": 9}), 0.25); len(regs) != 0 {
		t.Errorf("zero baseline or new scenario flagged: %v", regs)
	}
}

// TestReportRoundTrip checks WriteFile/ReadReport and the version gate.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	r := mkReport(map[string]float64{"a": 1000})
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != 1 || back.Scenarios[0].Measured.ThroughputEPS != 1000 {
		t.Fatalf("round trip lost data: %+v", back)
	}

	if _, err := ReadReport(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("ReadReport of a missing file succeeded")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Error("ReadReport of garbage succeeded")
	}
	r.Version = ReportVersion + 1
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Error("ReadReport accepted a future report version")
	}
}
