package loadgen

import (
	"fmt"
	"sort"
)

// stdSchema is the scenario family's shared schema: the paper's running
// environmental-monitoring example, one attribute per domain kind so every
// sampling and matching path is exercised.
const stdSchema = "temperature=numeric[-30,50]; humidity=numeric[0,100]; floor=int[0,12]; severity=cat{low,mid,high}"

// scenarios is the named workload catalog. Every entry is pure data —
// adding a workload is adding a literal. Sizes here are the full-suite
// sizes; Scale produces the smoke/short variants.
var scenarios = map[string]Scenario{
	// uniform-dense: the control. Flat event stream against a dense
	// population of moderately wide profiles — no skew for the measures to
	// exploit, so this pins the baseline cost of the match path itself.
	"uniform-dense": {
		Name:     "uniform-dense",
		Driver:   "engine",
		Schema:   stdSchema,
		Seed:     1,
		Events:   20000,
		Profiles: 2000,
	},

	// zipf-hot: 85% of the temperature stream collapses onto 16 Zipf-ranked
	// hot keys while the profile centers follow a high peak — the
	// hot-key/cache-line regime every content-based router sees in
	// production (ticker symbols, popular topics).
	"zipf-hot": {
		Name:          "zipf-hot",
		Driver:        "engine",
		Schema:        stdSchema,
		Seed:          2,
		Events:        20000,
		Profiles:      2000,
		EventShapes:   map[string]string{"temperature": "d14", "humidity": "d4"},
		ProfileShapes: map[string]string{"temperature": "95% high"},
		HotKeys:       &HotKeySpec{Attr: "temperature", P: 0.85, K: 16, S: 1.3},
	},

	// correlated-storm: a two-component mixture — calm weather vs storms
	// where high humidity and high severity co-occur — published in bursts
	// through the batch path. Correlation is the standard counterexample to
	// the analytic model's independence assumption; bursts exercise the
	// batched ingestion the sharded engine amortizes.
	"correlated-storm": {
		Name:   "correlated-storm",
		Driver: "sharded",
		Schema: stdSchema,
		Seed:   3,
		Events: 20000, Profiles: 1500,
		Batch: 64,
		Correlated: &CorrelatedSpec{
			Weights: []float64{0.8, 0.2},
			Components: [][]string{
				{"gauss", "d5", "equal", "d4"},    // calm: mild temps, dry, low severity
				{"d14", "95% high", "d11", "d14"}, // storm: hot, saturated, upper floors, severe
			},
		},
		ProfileShapes: map[string]string{"humidity": "90% high", "severity": "d14"},
	},

	// churn-heavy: the full service under constant subscription turnover —
	// every 200 events, 20 profiles leave and 20 fresh ones arrive, so the
	// corpus drifts continuously while delivery keeps running. This is the
	// registration-path contention case sharded delivery state exists for.
	"churn-heavy": {
		Name:   "churn-heavy",
		Driver: "service",
		Schema: stdSchema,
		Seed:   4,
		Events: 10000, Profiles: 1000,
		EventShapes: map[string]string{"temperature": "d17", "humidity": "d9"},
		Churn:       &ChurnSpec{Every: 200, Ops: 20},
		Shards:      4,
	},

	// adaptive-drift: the event distribution the adaptive component exists
	// for — a mixture whose dominant mode sits far from the initial uniform
	// assumption, with enough stream for drift detection to trigger
	// restructures mid-run.
	"adaptive-drift": {
		Name:   "adaptive-drift",
		Driver: "service",
		Schema: stdSchema,
		Seed:   5,
		Events: 10000, Profiles: 1000,
		EventShapes: map[string]string{"temperature": "d39", "humidity": "d40", "floor": "d22"},
		Adaptive:    true,
	},

	// wire-roundtrip: the same dense workload as uniform-dense but spoken
	// over loopback TCP through the wire client — framing, socket and
	// demultiplexer included in every latency sample. Pinned to the v1
	// JSON-line protocol; wire-roundtrip-v2 is the identical workload over
	// binary v2 frames, so the pair is a direct codec comparison.
	"wire-roundtrip": {
		Name:   "wire-roundtrip",
		Driver: "wire",
		Schema: stdSchema,
		Seed:   6,
		Events: 4000, Profiles: 500,
		Batch: 32,
		Proto: "v1",
	},

	// wire-roundtrip-v2: wire-roundtrip's workload, byte for byte, over the
	// negotiated binary protocol with pipelined batches. Match totals must
	// equal wire-roundtrip's (same seed, same plan); only the wire cost may
	// differ.
	"wire-roundtrip-v2": {
		Name:   "wire-roundtrip-v2",
		Driver: "wire",
		Schema: stdSchema,
		Seed:   6,
		Events: 4000, Profiles: 500,
		Batch: 32,
		Proto: "v2",
	},

	// aggregated-mega: canonical aggregation's home turf — 10⁵ subscriptions
	// drawn from 10³ Zipf-ranked structural templates (a quarter of them
	// narrowed refinements), filtered with aggregation on. The automaton
	// indexes only the poset's uncovered roots, so the canonical index stays
	// thousands of times smaller than the subscription count, match cost
	// tracks the distinct-structure population, and bytes/subscription is
	// gated absolutely (BytesPerSubCaps).
	"aggregated-mega": {
		Name:        "aggregated-mega",
		Driver:      "engine",
		Schema:      stdSchema,
		Seed:        8,
		Events:      20000,
		Profiles:    100000,
		Clusters:    &ClusterSpec{Distinct: 1000, S: 1.1, RefineP: 0.25, Variants: 3},
		EventShapes: map[string]string{"temperature": "d14", "humidity": "d4"},
		Aggregate:   true,
	},

	// federated-3hop: a four-daemon chain over real TCP links; events enter
	// at the head, all subscribers sit three hops away at the tail, and the
	// skewed stream lets the per-link filters reject most events before
	// they cross a wire.
	"federated-3hop": {
		Name:   "federated-3hop",
		Driver: "federation",
		Schema: stdSchema,
		Seed:   7,
		Events: 3000, Profiles: 300,
		EventShapes:   map[string]string{"temperature": "d3", "humidity": "d21"},
		ProfileShapes: map[string]string{"temperature": "d14"},
		Hops:          3,
		Proto:         "v1",
	},

	// federated-3hop-v2: the same chain with every link negotiated up to
	// binary v2 frames — forwarded events cross each hop as slot vectors
	// instead of JSON lines. Delivery totals must match federated-3hop's.
	"federated-3hop-v2": {
		Name:   "federated-3hop-v2",
		Driver: "federation",
		Schema: stdSchema,
		Seed:   7,
		Events: 3000, Profiles: 300,
		EventShapes:   map[string]string{"temperature": "d3", "humidity": "d21"},
		ProfileShapes: map[string]string{"temperature": "d14"},
		Hops:          3,
		Proto:         "v2",
	},
}

// suites maps suite name → member scenarios. smoke is the CI gate's suite:
// every driver class represented, sized to finish in seconds on one core.
var suites = map[string][]string{
	"smoke": {"uniform-dense", "zipf-hot", "correlated-storm", "churn-heavy", "aggregated-mega",
		"wire-roundtrip", "wire-roundtrip-v2", "federated-3hop", "federated-3hop-v2"},
	"full": {"uniform-dense", "zipf-hot", "correlated-storm", "churn-heavy",
		"adaptive-drift", "wire-roundtrip", "wire-roundtrip-v2", "aggregated-mega",
		"federated-3hop", "federated-3hop-v2"},
}

// smokeScale shrinks full-size scenarios to CI smoke size.
const smokeScale = 0.12

// ScenarioNames lists the catalog, sorted.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SuiteNames lists the suites, sorted.
func SuiteNames() []string {
	names := make([]string, 0, len(suites))
	for n := range suites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ScenarioByName returns a copy of the named catalog scenario.
func ScenarioByName(name string) (Scenario, error) {
	sc, ok := scenarios[name]
	if !ok {
		return Scenario{}, fmt.Errorf("%w: %q (have %v)", ErrUnknownScenario, name, ScenarioNames())
	}
	return sc, nil
}

// Suite resolves a suite to its scenarios. The smoke suite is pre-scaled;
// short additionally scales whichever suite was picked (for fast local
// iteration and the determinism tests).
func Suite(name string, short bool) ([]Scenario, error) {
	members, ok := suites[name]
	if !ok {
		return nil, fmt.Errorf("%w: suite %q (have %v)", ErrUnknownScenario, name, SuiteNames())
	}
	scs := make([]Scenario, len(members))
	for i, m := range members {
		sc := scenarios[m]
		if name == "smoke" {
			sc = Scale(sc, smokeScale)
		}
		if short {
			sc = Scale(sc, 0.25)
		}
		scs[i] = sc
	}
	return scs, nil
}

// Scale shrinks a scenario's sizes by factor f, holding the stream's shape
// fixed: distribution specs, skew, batch size and churn cadence survive;
// only volumes change. Floors keep tiny scales meaningful.
func Scale(sc Scenario, f float64) Scenario {
	sc.Events = scaleInt(sc.Events, f, 200)
	sc.Profiles = scaleInt(sc.Profiles, f, 50)
	if sc.Churn != nil {
		ch := *sc.Churn
		ch.Every = scaleInt(ch.Every, f, 20)
		ch.Ops = scaleInt(ch.Ops, f, 2)
		sc.Churn = &ch
	}
	return sc
}

// scaleInt scales n by f with a floor.
func scaleInt(n int, f float64, min int) int {
	v := int(float64(n) * f)
	if v < min {
		v = min
	}
	return v
}
