package loadgen

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"genas/internal/broker"
	"genas/internal/event"
	"genas/internal/federation"
	"genas/internal/predicate"
	"genas/internal/routing"
	"genas/internal/schema"
	"genas/internal/wire"
)

// fedNode is one daemon of the in-process federation chain: a broker, its
// wire server and its overlay state, exactly what genasd assembles.
type fedNode struct {
	brk       *broker.Broker
	srv       *wire.Server
	fed       *federation.Fed
	addr      string
	serveDone chan struct{}
}

// fedDriver runs a linear federation n0 — n1 — … — nH over real loopback
// TCP links. Events publish at the head (n0) and subscriptions live at the
// tail, so every delivery crosses all H links — the worst-case forwarding
// path; filtered counters on the inner nodes expose link-level early
// rejection. Publish latency measures only the head's local work (remote
// delivery is asynchronous, as in production); Drain waits the pipeline
// empty and reports end-to-end delivered/forwarded/filtered totals.
type fedDriver struct {
	nodes []*fedNode
	sch   *schema.Schema
	proto wire.Proto // per-link protocol pin (ProtoAuto negotiates v2)

	mu       sync.Mutex
	subs     map[predicate.ID]*broker.Subscription
	drainers sync.WaitGroup
	// consumed tallies notifications read off tail subscription channels
	// (the drainers keep Block-policy subscriptions from wedging the tail);
	// the authoritative delivered count is the tail broker's, which is
	// updated synchronously inside Publish.
	consumed atomic.Uint64
	// pubs counts head publishes, pacing the backpressure probe.
	pubs int
}

func newFedDriver(sc Scenario, sch *schema.Schema) (*fedDriver, error) {
	hops := sc.Hops
	if hops <= 0 {
		hops = 3
	}
	if hops+1 > maxFedNodes {
		return nil, fmt.Errorf("%w: %d hops (max %d)", ErrBadScenario, hops, maxFedNodes-1)
	}
	d := &fedDriver{sch: sch, proto: sc.wireProto(), subs: make(map[predicate.ID]*broker.Subscription)}
	for i := 0; i <= hops; i++ {
		node, err := d.bootNode(fmt.Sprintf("n%d", i))
		if err != nil {
			d.teardown()
			return nil, err
		}
		d.nodes = append(d.nodes, node)
		if i > 0 {
			// Dial synchronously: the chain must be converged before the
			// stream starts, or early routes race the link handshake.
			if err := node.fed.Dial(d.nodes[i-1].addr); err != nil {
				d.teardown()
				return nil, err
			}
		}
	}
	return d, nil
}

// bootNode assembles one daemon on a loopback listener.
func (d *fedDriver) bootNode(name string) (*fedNode, error) {
	brk, err := broker.New(d.sch, broker.Options{})
	if err != nil {
		return nil, err
	}
	fed, err := federation.New(brk, federation.Options{Node: name, Covering: true, Proto: d.proto})
	if err != nil {
		brk.Close()
		return nil, err
	}
	srv := wire.NewServer(brk, nil)
	if d.proto == wire.ProtoV1 {
		srv.SetMaxProto(wire.ProtoV1)
	}
	srv.SetOverlay(fed)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fed.Close()
		brk.Close()
		return nil, err
	}
	node := &fedNode{brk: brk, srv: srv, fed: fed, addr: ln.Addr().String(), serveDone: make(chan struct{})}
	go func() {
		defer close(node.serveDone)
		_ = srv.Serve(context.Background(), ln)
	}()
	return node, nil
}

func (d *fedDriver) Name() string { return "federation" }

func (d *fedDriver) head() *fedNode { return d.nodes[0] }
func (d *fedDriver) tail() *fedNode { return d.nodes[len(d.nodes)-1] }

// Subscribe registers the profile at the tail daemon and announces it to
// the overlay; the route propagates hop by hop toward the head. A dedicated
// drainer consumes the subscription losslessly (Block policy), so the
// delivered tally equals the true end-to-end match count.
func (d *fedDriver) Subscribe(p *predicate.Profile) error {
	t := d.tail()
	sub, err := t.brk.SubscribeWith(p, broker.SubOptions{Buffer: 256, Policy: broker.Block})
	if err != nil {
		return err
	}
	t.fed.ProfileAdded(p)
	d.mu.Lock()
	d.subs[p.ID] = sub
	d.mu.Unlock()
	d.drainers.Add(1)
	go func() {
		defer d.drainers.Done()
		for range sub.C() {
			d.consumed.Add(1)
		}
	}()
	return nil
}

func (d *fedDriver) Unsubscribe(id predicate.ID) error {
	d.mu.Lock()
	delete(d.subs, id)
	d.mu.Unlock()
	t := d.tail()
	if err := t.brk.Unsubscribe(id); err != nil {
		return err
	}
	t.fed.ProfileRemoved(id)
	return nil
}

// Sync blocks until route propagation has converged: the head's link
// engine must hold exactly the covering-pruned subset of the live
// subscription set. Routes travel hop by hop through asynchronous link
// queues, so without this barrier a stream could start before the head
// knows what to forward and early events would silently miss the tail.
func (d *fedDriver) Sync() error {
	d.mu.Lock()
	routes := make(map[predicate.ID]*predicate.Profile, len(d.subs))
	for id, sub := range d.subs {
		routes[id] = sub.Profile()
	}
	d.mu.Unlock()
	expected := 0
	for _, p := range routes {
		if !routing.CoveredByOther(d.sch, p, routes) {
			expected++
		}
	}
	head, peer := d.head().fed, "n1"
	deadline := time.Now().Add(30 * time.Second)
	for head.RouteCount(peer) != expected {
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: federation routes did not converge: head has %d of %d",
				head.RouteCount(peer), expected)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

func (d *fedDriver) Publish(vals []float64) (int, error) {
	ev, err := event.New(d.sch, vals...)
	if err != nil {
		return 0, err
	}
	h := d.head()
	n, err := h.brk.Publish(ev)
	if err != nil {
		return 0, err
	}
	h.fed.EventPublished(ev)
	d.backpressure(1)
	return n, nil
}

// backpressure is the load generator's closed loop: the head publishes
// locally and never feels peer TCP, so an unthrottled stream could outrun
// the first link's bounded frame queue (overflow cuts the link — correct
// for a wedged peer, fatal for a benchmark). Every probe interval it waits
// until the next hop has consumed to within half a queue of what the head
// enqueued, which in turn bounds every downstream queue.
func (d *fedDriver) backpressure(events int) {
	d.pubs += events
	if d.pubs < 128 {
		return
	}
	d.pubs = 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, _, forwarded, _ := d.head().fed.Stats()
		if forwarded-d.nodes[1].brk.Stats().Published < 512 || time.Now().After(deadline) {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func (d *fedDriver) PublishBatch(batch [][]float64) (int, error) {
	evs := make([]event.Event, len(batch))
	for i, vals := range batch {
		ev, err := event.New(d.sch, vals...)
		if err != nil {
			return 0, err
		}
		evs[i] = ev
	}
	h := d.head()
	counts, err := h.brk.PublishBatch(evs)
	if err != nil {
		return 0, err
	}
	for _, ev := range evs {
		h.fed.EventPublished(ev)
	}
	d.backpressure(len(evs))
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Drain waits for exact pipeline quiescence, hop by hop: once the head's
// publish loop returns, its forwarded counter is final, so hop i+1 has
// consumed everything when its Published count equals hop i's forwarded
// count. Frames travel each link in order and a hop re-forwards inside the
// same frame handler that publishes locally, so walking the chain head to
// tail — and then re-verifying the whole chain holds still — proves no
// frame is in flight anywhere. Tail deliveries are counted by the tail
// broker (updated synchronously inside Publish), not by the asynchronous
// channel drainers, so the returned total is exact.
func (d *fedDriver) Drain() (Counters, error) {
	deadline := time.Now().Add(30 * time.Second)
	prev := d.snapshot()
	for {
		if time.Now().After(deadline) {
			return Counters{}, fmt.Errorf("loadgen: federation pipeline did not quiesce: %v", prev)
		}
		time.Sleep(5 * time.Millisecond)
		cur := d.snapshot()
		if cur.quiescent(len(d.nodes)) && cur == prev {
			break
		}
		prev = cur
	}
	c := Counters{Delivered: d.tail().brk.Stats().Delivered}
	for _, n := range d.nodes {
		_, _, forwarded, filtered := n.fed.Stats()
		c.Forwarded += forwarded
		c.Filtered += filtered
	}
	return c, nil
}

// fedSnapshot is one observation of the whole chain's flow counters
// (comparable, so two identical consecutive snapshots certify stillness).
type fedSnapshot struct {
	published [maxFedNodes]uint64 // broker-level publishes per node
	forwarded [maxFedNodes]uint64 // frames enqueued toward the next hop
	delivered uint64              // tail broker deliveries
}

// maxFedNodes bounds the chain length so snapshots stay comparable arrays.
const maxFedNodes = 16

func (d *fedDriver) snapshot() fedSnapshot {
	var s fedSnapshot
	for i, n := range d.nodes {
		s.published[i] = n.brk.Stats().Published
		_, _, fwd, _ := n.fed.Stats()
		s.forwarded[i] = fwd
	}
	s.delivered = d.tail().brk.Stats().Delivered
	return s
}

// quiescent reports whether every hop has consumed exactly what its
// upstream enqueued. Combined with snapshot equality across a pause this
// proves the pipeline is empty: a frame handler caught between its local
// publish and its re-forward would move the forwarded counter on the next
// observation.
func (s fedSnapshot) quiescent(nodes int) bool {
	for hop := 1; hop < nodes; hop++ {
		if s.published[hop] != s.forwarded[hop-1] {
			return false
		}
	}
	return true
}

func (d *fedDriver) Close() error {
	d.teardown()
	return nil
}

// teardown closes the chain tail-first; closing each broker ends its
// subscription channels, which releases the drainers.
func (d *fedDriver) teardown() {
	for i := len(d.nodes) - 1; i >= 0; i-- {
		n := d.nodes[i]
		n.fed.Close()
		n.srv.Close()
		<-n.serveDone
		n.brk.Close()
	}
	d.nodes = nil
	d.drainers.Wait()
}
