package loadgen

import (
	"encoding/json"
	"strings"
	"testing"
)

// fingerprint serializes everything a plan determines — the event stream,
// the rendered profile population and the churn schedule — so two plans are
// equal iff their fingerprints are byte-identical.
func fingerprint(t *testing.T, p *Plan) string {
	t.Helper()
	var b strings.Builder
	ev, err := json.Marshal(p.Events)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(ev)
	for _, pr := range p.Initial {
		b.WriteString(string(pr.ID))
		b.WriteString(pr.Render(p.Schema))
		b.WriteByte('\n')
	}
	for _, st := range p.Churn {
		b.WriteString("@")
		b.WriteString(strings.Repeat("i", st.At%7)) // cheap position marker
		for _, id := range st.Remove {
			b.WriteString("-" + string(id))
		}
		for _, pr := range st.Add {
			b.WriteString("+" + string(pr.ID) + pr.Render(p.Schema))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestBuildDeterminism is the harness's core property: the same scenario
// value always materializes the byte-identical plan, for every catalog
// entry, so baselines recorded on different days measure the same work.
func TestBuildDeterminism(t *testing.T) {
	for _, name := range ScenarioNames() {
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sc = Scale(sc, 0.02) // floors: 200 events, 50 profiles
		a, err := Build(sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Build(sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fingerprint(t, a) != fingerprint(t, b) {
			t.Errorf("%s: same seed produced different plans", name)
		}
		sc.Seed++
		c, err := Build(sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fingerprint(t, a) == fingerprint(t, c) {
			t.Errorf("%s: different seeds produced identical plans", name)
		}
	}
}

// TestPlanShape checks the materialized plan against its spec: sizes,
// domain validity of every sampled value, and the churn schedule's
// bookkeeping.
func TestPlanShape(t *testing.T) {
	sc, err := ScenarioByName("churn-heavy")
	if err != nil {
		t.Fatal(err)
	}
	sc = Scale(sc, 0.05)
	p, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != sc.Events || len(p.Initial) != sc.Profiles {
		t.Fatalf("plan sizes %d/%d, want %d/%d", len(p.Events), len(p.Initial), sc.Events, sc.Profiles)
	}
	for i, ev := range p.Events {
		if len(ev) != p.Schema.N() {
			t.Fatalf("event %d has %d values, want %d", i, len(ev), p.Schema.N())
		}
		for j, v := range ev {
			if err := p.Schema.Validate(j, v); err != nil {
				t.Fatalf("event %d attribute %d: %v", i, j, err)
			}
		}
	}
	if len(p.Churn) == 0 {
		t.Fatal("churn scenario built no churn steps")
	}
	seen := map[string]bool{}
	for _, pr := range p.Initial {
		seen[string(pr.ID)] = true
	}
	last := -1
	for _, st := range p.Churn {
		if st.At <= last {
			t.Fatalf("churn steps out of order: %d after %d", st.At, last)
		}
		last = st.At
		if len(st.Remove) != len(st.Add) {
			t.Fatalf("churn step at %d removes %d but adds %d", st.At, len(st.Remove), len(st.Add))
		}
		for _, id := range st.Remove {
			if !seen[string(id)] {
				t.Fatalf("churn removes %s which was never alive", id)
			}
			delete(seen, string(id))
		}
		for _, pr := range st.Add {
			if seen[string(pr.ID)] {
				t.Fatalf("churn adds duplicate id %s", pr.ID)
			}
			seen[string(pr.ID)] = true
		}
	}
	if p.ChurnOps() == 0 {
		t.Fatal("ChurnOps reported zero")
	}
}

// TestHotKeySkew verifies the zipf-hot stream actually concentrates: the
// most frequent temperature value must carry a large multiple of the
// uniform share.
func TestHotKeySkew(t *testing.T) {
	sc, err := ScenarioByName("zipf-hot")
	if err != nil {
		t.Fatal(err)
	}
	sc.Events, sc.Profiles = 5000, 50
	p, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	i, err := p.Schema.Index("temperature")
	if err != nil {
		t.Fatal(err)
	}
	freq := map[float64]int{}
	for _, ev := range p.Events {
		freq[ev[i]]++
	}
	top := 0
	for _, n := range freq {
		if n > top {
			top = n
		}
	}
	// With P=0.85 and Zipf rank weights, the hottest key alone should carry
	// well over a quarter of the stream; a uniform continuous stream would
	// give any single value ~1 hit.
	if top < len(p.Events)/4 {
		t.Fatalf("hot key carries %d of %d events; stream is not skewed", top, len(p.Events))
	}
}

// TestCorrelatedStream verifies the correlated-storm mixture induces the
// designed dependence: conditioned on storm-grade humidity, severe events
// are far more common than in the dry slice.
func TestCorrelatedStream(t *testing.T) {
	sc, err := ScenarioByName("correlated-storm")
	if err != nil {
		t.Fatal(err)
	}
	sc.Events, sc.Profiles = 8000, 50
	p, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	hum, _ := p.Schema.Index("humidity")
	sev, _ := p.Schema.Index("severity")
	var wetSevere, wet, drySevere, dry float64
	for _, ev := range p.Events {
		severe := ev[sev] == 2 // "high"
		if ev[hum] > 90 {
			wet++
			if severe {
				wetSevere++
			}
		} else {
			dry++
			if severe {
				drySevere++
			}
		}
	}
	if wet == 0 || dry == 0 {
		t.Fatalf("degenerate humidity split wet=%v dry=%v", wet, dry)
	}
	if wetSevere/wet <= 2*drySevere/dry {
		t.Fatalf("no correlation: P(severe|wet)=%.3f P(severe|dry)=%.3f",
			wetSevere/wet, drySevere/dry)
	}
}

// TestScale pins the floors and the shape-preservation contract.
func TestScale(t *testing.T) {
	sc, err := ScenarioByName("churn-heavy")
	if err != nil {
		t.Fatal(err)
	}
	tiny := Scale(sc, 0.0001)
	if tiny.Events != 200 || tiny.Profiles != 50 {
		t.Fatalf("floors not applied: %d events, %d profiles", tiny.Events, tiny.Profiles)
	}
	if tiny.Churn == nil || tiny.Churn.Every != 20 || tiny.Churn.Ops != 2 {
		t.Fatalf("churn floors not applied: %+v", tiny.Churn)
	}
	if sc.Churn.Every != 200 {
		t.Fatal("Scale mutated the catalog scenario")
	}
}

// TestBadScenarios covers the compile-time rejections.
func TestBadScenarios(t *testing.T) {
	base := Scenario{Name: "x", Schema: stdSchema, Seed: 1, Events: 10, Profiles: 2}
	cases := map[string]func(Scenario) Scenario{
		"no name":       func(sc Scenario) Scenario { sc.Name = ""; return sc },
		"no events":     func(sc Scenario) Scenario { sc.Events = 0; return sc },
		"neg batch":     func(sc Scenario) Scenario { sc.Batch = -1; return sc },
		"bad schema":    func(sc Scenario) Scenario { sc.Schema = "nope"; return sc },
		"bad shape":     func(sc Scenario) Scenario { sc.EventShapes = map[string]string{"temperature": "d99"}; return sc },
		"bad attr":      func(sc Scenario) Scenario { sc.EventShapes = map[string]string{"zap": "d1"}; return sc },
		"bad profshape": func(sc Scenario) Scenario { sc.ProfileShapes = map[string]string{"zap": "d1"}; return sc },
		"bad hot attr":  func(sc Scenario) Scenario { sc.HotKeys = &HotKeySpec{Attr: "zap", P: 0.5}; return sc },
		"bad hot p":     func(sc Scenario) Scenario { sc.HotKeys = &HotKeySpec{Attr: "floor", P: 2}; return sc },
		"bad churn":     func(sc Scenario) Scenario { sc.Churn = &ChurnSpec{Every: 0, Ops: 1}; return sc },
		"short corr row": func(sc Scenario) Scenario {
			sc.Correlated = &CorrelatedSpec{Weights: []float64{1}, Components: [][]string{{"equal"}}}
			return sc
		},
		"bad corr shape": func(sc Scenario) Scenario {
			sc.Correlated = &CorrelatedSpec{Weights: []float64{1},
				Components: [][]string{{"d99", "equal", "equal", "equal"}}}
			return sc
		},
		"bad corr weights": func(sc Scenario) Scenario {
			sc.Correlated = &CorrelatedSpec{Weights: []float64{-1},
				Components: [][]string{{"equal", "equal", "equal", "equal"}}}
			return sc
		},
	}
	for name, mut := range cases {
		if _, err := Build(mut(base)); err == nil {
			t.Errorf("%s: Build accepted an invalid scenario", name)
		}
	}
	if _, err := Build(base); err != nil {
		t.Fatalf("base scenario should be valid: %v", err)
	}
}

// TestUnknownNames covers the catalog lookups' error paths.
func TestUnknownNames(t *testing.T) {
	if _, err := ScenarioByName("no-such"); err == nil {
		t.Error("ScenarioByName accepted an unknown name")
	}
	if _, err := Suite("no-such", false); err == nil {
		t.Error("Suite accepted an unknown name")
	}
	if _, err := OpenDriver(Scenario{Driver: "no-such"}, nil); err == nil {
		t.Error("OpenDriver accepted an unknown driver")
	}
}
