package loadgen

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"genas/internal/core"
)

// Workload is the deterministic outcome of a run: identical across
// machines for the same scenario (the sync drivers' matched totals are a
// pure function of the plan), so baselines can sanity-check that two
// reports actually measured the same work.
type Workload struct {
	// MatchedTotal sums the timed publish calls' local match counts.
	MatchedTotal int `json:"matched_total"`
	// WarmupMatched is the untimed warmup publish's match count (the first
	// event, published once before the clock starts so the lazy automaton
	// build does not drown the steady-state measurement).
	WarmupMatched int `json:"warmup_matched"`
	// ChurnOps counts subscription churn operations interleaved with the
	// stream.
	ChurnOps int `json:"churn_ops"`
	// Counters are the driver's post-drain delivery counters (asynchronous
	// drivers only).
	Counters Counters `json:"counters"`
	// CanonicalNodes/CanonicalRoots/PosetDepth describe the driver's
	// canonical-aggregation layer after the run (aggregated drivers only).
	// Like the match totals they are a pure function of the plan.
	CanonicalNodes int `json:"canonical_nodes,omitempty"`
	CanonicalRoots int `json:"canonical_roots,omitempty"`
	PosetDepth     int `json:"poset_depth,omitempty"`
}

// Measured is the run's timing-dependent side: everything here varies with
// the hardware and is what the regression gate compares.
type Measured struct {
	// ElapsedMS is the publish phase's wall-clock time (subscription setup
	// and drain excluded).
	ElapsedMS float64 `json:"elapsed_ms"`
	// ThroughputEPS is events per second over the publish phase.
	ThroughputEPS float64 `json:"throughput_eps"`
	// P50Micros/P99Micros are publish-call latency percentiles. In batch
	// mode one call covers a whole burst, so the unit is the burst.
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// MatchesPerSec is MatchedTotal over the publish phase.
	MatchesPerSec float64 `json:"matches_per_sec"`
	// AllocsPerEvent is the heap allocation count per published event over
	// the whole process (drivers with background goroutines included).
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// BytesPerSub is the live-heap growth across subscription registration
	// and the warmup build, divided by the initial population size: the
	// steady-state memory cost of holding one subscription indexed.
	BytesPerSub float64 `json:"bytes_per_sub"`
}

// Result is one scenario's report entry.
type Result struct {
	Name     string   `json:"name"`
	Driver   string   `json:"driver"`
	Seed     int64    `json:"seed"`
	Events   int      `json:"events"`
	Profiles int      `json:"profiles"`
	Batch    int      `json:"batch,omitempty"`
	Workload Workload `json:"workload"`
	Measured Measured `json:"measured"`
}

// syncer is the optional driver barrier: asynchronous topologies (the
// federation chain) must converge before the measured stream starts.
type syncer interface {
	Sync() error
}

// Run materializes the scenario, drives it and measures. The publish phase
// is the timed window; registration, convergence and drain sit outside it.
func Run(sc Scenario) (*Result, error) {
	plan, err := Build(sc)
	if err != nil {
		return nil, err
	}
	drv, err := OpenDriver(sc, plan.Schema)
	if err != nil {
		return nil, err
	}
	defer drv.Close()
	res, err := runPlan(plan, drv)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scenario %s: %w", sc.Name, err)
	}
	return res, nil
}

// aggStater is the optional driver surface reporting the canonical
// aggregation layer's shape (the in-process drivers expose it).
type aggStater interface {
	AggStats() core.AggStats
}

// runPlan executes a built plan against an open driver.
func runPlan(plan *Plan, drv Driver) (*Result, error) {
	sc := plan.Scenario

	// Live-heap floor before any subscription exists: the delta across
	// registration plus the warmup build is the index's resident cost.
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)

	for _, p := range plan.Initial {
		if err := drv.Subscribe(p); err != nil {
			return nil, fmt.Errorf("subscribe %s: %w", p.ID, err)
		}
	}
	if s, ok := drv.(syncer); ok {
		if err := s.Sync(); err != nil {
			return nil, err
		}
	}

	// One untimed warmup publish triggers the lazy automaton build; the
	// timed loop below then measures steady-state filtering. The warmup's
	// match count is reported separately so the workload totals stay a
	// deterministic function of the plan.
	warmup, err := drv.Publish(plan.Events[0])
	if err != nil {
		return nil, fmt.Errorf("warmup publish: %w", err)
	}

	runtime.GC()
	runtime.ReadMemStats(&ms1)
	bytesPerSub := 0.0
	if ms1.HeapAlloc > ms0.HeapAlloc && len(plan.Initial) > 0 {
		bytesPerSub = float64(ms1.HeapAlloc-ms0.HeapAlloc) / float64(len(plan.Initial))
	}

	batch := sc.Batch
	if batch < 1 {
		batch = 1
	}
	ops := (len(plan.Events) + batch - 1) / batch
	lats := make([]time.Duration, 0, ops)
	matched := 0
	churnOps := 0
	next := 0 // next churn step index

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for lo := 0; lo < len(plan.Events); lo += batch {
		hi := lo + batch
		if hi > len(plan.Events) {
			hi = len(plan.Events)
		}
		// Apply every churn step scheduled inside this burst before it
		// publishes: the plan's At indexes are exact in steady mode and
		// burst-aligned otherwise.
		for next < len(plan.Churn) && plan.Churn[next].At < hi {
			st := plan.Churn[next]
			next++
			for _, id := range st.Remove {
				if err := drv.Unsubscribe(id); err != nil {
					return nil, fmt.Errorf("churn unsubscribe %s: %w", id, err)
				}
			}
			for _, p := range st.Add {
				if err := drv.Subscribe(p); err != nil {
					return nil, fmt.Errorf("churn subscribe %s: %w", p.ID, err)
				}
			}
			churnOps += len(st.Remove) + len(st.Add)
		}
		start := time.Now()
		var (
			n   int
			err error
		)
		if batch == 1 {
			n, err = drv.Publish(plan.Events[lo])
		} else {
			n, err = drv.PublishBatch(plan.Events[lo:hi])
		}
		lats = append(lats, time.Since(start))
		if err != nil {
			return nil, fmt.Errorf("publish at %d: %w", lo, err)
		}
		matched += n
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	counters, err := drv.Drain()
	if err != nil {
		return nil, fmt.Errorf("drain: %w", err)
	}

	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	res := &Result{
		Name:     sc.Name,
		Driver:   drv.Name(),
		Seed:     sc.Seed,
		Events:   len(plan.Events),
		Profiles: len(plan.Initial),
		Batch:    sc.Batch,
		Workload: Workload{MatchedTotal: matched, WarmupMatched: warmup, ChurnOps: churnOps, Counters: counters},
		Measured: Measured{
			ElapsedMS:      float64(elapsed.Microseconds()) / 1e3,
			ThroughputEPS:  float64(len(plan.Events)) / secs,
			P50Micros:      percentileMicros(lats, 0.50),
			P99Micros:      percentileMicros(lats, 0.99),
			MatchesPerSec:  float64(matched) / secs,
			AllocsPerEvent: float64(m1.Mallocs-m0.Mallocs) / float64(len(plan.Events)),
			BytesPerSub:    bytesPerSub,
		},
	}
	if a, ok := drv.(aggStater); ok {
		if st := a.AggStats(); st.Enabled {
			res.Workload.CanonicalNodes = st.Nodes
			res.Workload.CanonicalRoots = st.Roots
			res.Workload.PosetDepth = st.MaxDepth
		}
	}
	return res, nil
}

// RunBest runs the scenario reps times and keeps the fastest repetition —
// the usual best-of-N noise reduction for a regression gate. The workload
// side is deterministic, so every repetition must agree on it; a
// disagreement is a harness bug and surfaces as an error.
func RunBest(sc Scenario, reps int) (*Result, error) {
	if reps < 1 {
		reps = 1
	}
	var best *Result
	for i := 0; i < reps; i++ {
		res, err := Run(sc)
		if err != nil {
			return nil, err
		}
		if best == nil {
			best = res
			continue
		}
		// Compare the plan-determined fields only: async delivery counters
		// may legitimately differ between repetitions (drop policies).
		if res.Workload.MatchedTotal != best.Workload.MatchedTotal ||
			res.Workload.WarmupMatched != best.Workload.WarmupMatched ||
			res.Workload.ChurnOps != best.Workload.ChurnOps {
			return nil, fmt.Errorf("loadgen: scenario %s: repetition %d changed the workload (%+v vs %+v)",
				sc.Name, i+1, res.Workload, best.Workload)
		}
		if res.Measured.ThroughputEPS > best.Measured.ThroughputEPS {
			best = res
		}
	}
	return best, nil
}

// percentileMicros returns the q-quantile of the latency sample in
// microseconds (nearest-rank on the sorted sample).
func percentileMicros(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(float64(len(sorted)-1)*q + 0.5)
	return float64(sorted[i].Nanoseconds()) / 1e3
}
