package loadgen

import (
	"testing"
)

// tinyScenario is the drivers' shared oracle workload: small enough for
// -race, varied enough (skew + ranges over every domain kind) that a match
// path bug would change the totals.
func tinyScenario(driver string) Scenario {
	return Scenario{
		Name:        "tiny-" + driver,
		Driver:      driver,
		Schema:      stdSchema,
		Seed:        42,
		Events:      400,
		Profiles:    80,
		EventShapes: map[string]string{"temperature": "d14", "humidity": "gauss"},
		HotKeys:     &HotKeySpec{Attr: "temperature", P: 0.5, K: 8, S: 1.2},
	}
}

// runDriver builds the plan and runs it through the scenario's driver.
func runDriver(t *testing.T, sc Scenario) *Result {
	t.Helper()
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDriversAgree runs one identical plan through every synchronous
// driver: the raw engine, the sharded engine, the full service and the TCP
// wire path must produce the same matched totals — the oracle that the
// harness measures the same workload no matter which layer is under load.
func TestDriversAgree(t *testing.T) {
	oracle := runDriver(t, tinyScenario("engine"))
	if oracle.Workload.MatchedTotal == 0 {
		t.Fatal("oracle matched nothing; the scenario is degenerate")
	}
	for _, driver := range []string{"sharded", "service", "wire"} {
		sc := tinyScenario(driver)
		sc.Name = oracle.Name // plans depend only on the workload fields
		res := runDriver(t, sc)
		if res.Workload.MatchedTotal != oracle.Workload.MatchedTotal ||
			res.Workload.WarmupMatched != oracle.Workload.WarmupMatched {
			t.Errorf("%s matched %d+%d, engine matched %d+%d", driver,
				res.Workload.MatchedTotal, res.Workload.WarmupMatched,
				oracle.Workload.MatchedTotal, oracle.Workload.WarmupMatched)
		}
	}
}

// TestDriversAgreeBatched is the same oracle over the burst path.
func TestDriversAgreeBatched(t *testing.T) {
	sc := tinyScenario("engine")
	sc.Batch = 32
	oracle := runDriver(t, sc)
	for _, driver := range []string{"sharded", "service", "wire"} {
		scd := sc
		scd.Driver = driver
		res := runDriver(t, scd)
		if res.Workload.MatchedTotal != oracle.Workload.MatchedTotal {
			t.Errorf("%s batch-matched %d, engine matched %d", driver,
				res.Workload.MatchedTotal, oracle.Workload.MatchedTotal)
		}
	}
}

// TestFederationEndToEnd is the distributed oracle: events enter a
// four-daemon chain at the head, every subscription sits three TCP hops
// away, and the tail must deliver exactly the notifications a single
// engine would match — total delivered equals the engine's matched count
// (timed stream plus warmup), with a nonzero forwarded tally proving the
// events really crossed the links.
func TestFederationEndToEnd(t *testing.T) {
	engine := runDriver(t, tinyScenario("engine"))
	expected := uint64(engine.Workload.MatchedTotal + engine.Workload.WarmupMatched)

	sc := tinyScenario("federation")
	sc.Hops = 3
	res := runDriver(t, sc)
	if res.Workload.MatchedTotal != 0 {
		t.Errorf("head-local matches %d, want 0 (all subscribers sit at the tail)",
			res.Workload.MatchedTotal)
	}
	if res.Workload.Counters.Delivered != expected {
		t.Errorf("tail delivered %d notifications, engine oracle says %d",
			res.Workload.Counters.Delivered, expected)
	}
	if res.Workload.Counters.Forwarded == 0 {
		t.Error("no events crossed a link; the chain was not exercised")
	}
}

// TestChurnRun exercises the churn path end to end on the service driver
// and checks the run reports the plan's churn volume.
func TestChurnRun(t *testing.T) {
	sc := tinyScenario("service")
	sc.Churn = &ChurnSpec{Every: 100, Ops: 10}
	res := runDriver(t, sc)
	plan, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload.ChurnOps != plan.ChurnOps() {
		t.Errorf("run reported %d churn ops, plan has %d", res.Workload.ChurnOps, plan.ChurnOps())
	}
	if res.Workload.ChurnOps == 0 {
		t.Error("churn scenario performed no churn")
	}
}

// TestChurnOverWireAndFederation drives the churn path through the
// remaining asynchronous drivers: subscription turnover must work over the
// wire protocol and withdraw routes across a federation link.
func TestChurnOverWireAndFederation(t *testing.T) {
	for _, driver := range []string{"wire", "federation"} {
		sc := tinyScenario(driver)
		sc.Events = 300
		sc.Hops = 1
		sc.Churn = &ChurnSpec{Every: 100, Ops: 5}
		res := runDriver(t, sc)
		if res.Workload.ChurnOps == 0 {
			t.Errorf("%s: churn scenario performed no churn", driver)
		}
	}
}

// TestFederationBatched covers the burst path through the chain: batched
// head publishes forward per event and the tail still delivers.
func TestFederationBatched(t *testing.T) {
	sc := tinyScenario("federation")
	sc.Batch = 32
	sc.Hops = 2
	res := runDriver(t, sc)
	if res.Workload.Counters.Delivered == 0 {
		t.Error("batched federation delivered nothing")
	}
	if res.Workload.Counters.Forwarded == 0 {
		t.Error("batched federation forwarded nothing")
	}
}

// TestAdaptiveServiceRun covers the adaptive service configuration.
func TestAdaptiveServiceRun(t *testing.T) {
	sc := tinyScenario("service")
	sc.Adaptive = true
	res := runDriver(t, sc)
	if res.Workload.MatchedTotal == 0 {
		t.Fatal("adaptive run matched nothing")
	}
}

// TestEngineChurnUnsubscribeError pins the churn error path: removing an
// unknown id must surface, not vanish.
func TestEngineChurnUnsubscribeError(t *testing.T) {
	sc := tinyScenario("engine")
	plan, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	drv, err := OpenDriver(sc, plan.Schema)
	if err != nil {
		t.Fatal(err)
	}
	defer drv.Close()
	if err := drv.Unsubscribe("never-subscribed"); err == nil {
		t.Error("Unsubscribe of an unknown id succeeded")
	}
}
