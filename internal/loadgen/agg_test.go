package loadgen

import (
	"testing"
)

// TestAggregatedFlatTwin pins aggregation's semantics and memory win
// against a flat twin: the same clustered plan with aggregation off must
// match exactly the same events while costing several times more resident
// bytes per subscription. The twin runs at a reduced population because
// the un-aggregated batch build is superlinear in distinct structures —
// a few hundred profiles is already seconds of build; the full scenario's
// population is out of its reach entirely (which is the point of the
// aggregated path).
func TestAggregatedFlatTwin(t *testing.T) {
	sc, err := ScenarioByName("aggregated-mega")
	if err != nil {
		t.Fatal(err)
	}
	sc.Profiles = 600
	sc.Events = 400

	flat := sc
	flat.Aggregate = false

	aggRes := runDriver(t, sc)
	flatRes := runDriver(t, flat)

	// Semantics first: aggregation is an index transform, not a filter
	// change. Both runs consume the identical plan, so the matched totals
	// must agree event for event.
	if aggRes.Workload.MatchedTotal != flatRes.Workload.MatchedTotal ||
		aggRes.Workload.WarmupMatched != flatRes.Workload.WarmupMatched {
		t.Fatalf("aggregated matched %d+%d, flat matched %d+%d",
			aggRes.Workload.MatchedTotal, aggRes.Workload.WarmupMatched,
			flatRes.Workload.MatchedTotal, flatRes.Workload.WarmupMatched)
	}
	if aggRes.Workload.MatchedTotal == 0 {
		t.Fatal("scenario matched nothing; the workload is degenerate")
	}
	if flatRes.Workload.CanonicalNodes != 0 {
		t.Fatalf("flat run reported %d canonical nodes, want 0", flatRes.Workload.CanonicalNodes)
	}

	// Memory: the poset shares one automaton entry per structure, so the
	// per-subscription resident cost must sit well under the flat index's
	// (measured ~17x at this scale; 3x is the gate with noise headroom).
	aggBytes, flatBytes := aggRes.Measured.BytesPerSub, flatRes.Measured.BytesPerSub
	t.Logf("bytes/subscription: aggregated %.0f, flat %.0f", aggBytes, flatBytes)
	if aggBytes <= 0 || flatBytes <= 0 {
		t.Fatal("bytes/subscription measurement degenerate; harness bug")
	}
	if flatBytes/aggBytes < 3 {
		t.Errorf("aggregated uses %.0f bytes/sub vs flat %.0f — want >= 3x reduction", aggBytes, flatBytes)
	}
	t.Logf("throughput: aggregated %.0f events/s, flat %.0f events/s",
		aggRes.Measured.ThroughputEPS, flatRes.Measured.ThroughputEPS)
}

// TestAggregatedMegaCompression runs the scenario at the CI smoke scale —
// exactly what the perf gate records — and pins the canonical index's
// compression and the absolute memory ceiling the gate enforces.
func TestAggregatedMegaCompression(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	sc, err := ScenarioByName("aggregated-mega")
	if err != nil {
		t.Fatal(err)
	}
	sc = Scale(sc, smokeScale)

	res := runDriver(t, sc)
	if res.Workload.MatchedTotal == 0 {
		t.Fatal("scenario matched nothing; the workload is degenerate")
	}

	// The cluster spec bounds the structure pool at Distinct x (1+Variants)
	// templates, so the poset must be several times smaller than the
	// population: >= 5x here (measured ~7x; full scale reaches ~25x).
	nodes := res.Workload.CanonicalNodes
	if nodes == 0 {
		t.Fatal("aggregated run reported no canonical nodes")
	}
	compression := float64(res.Profiles) / float64(nodes)
	t.Logf("canonical index: %d nodes (%d roots, depth %d) for %d subscriptions — %.1fx compression",
		nodes, res.Workload.CanonicalRoots, res.Workload.PosetDepth, res.Profiles, compression)
	if compression < 5 {
		t.Errorf("canonical compression %.1fx, want >= 5x", compression)
	}

	// The absolute ceiling the CI gate applies to the recorded report must
	// hold when the scenario runs here, or the gate is already broken.
	bytes := res.Measured.BytesPerSub
	ceiling := BytesPerSubCaps[sc.Name]
	t.Logf("bytes/subscription: %.0f (gate ceiling %.0f)", bytes, ceiling)
	if bytes <= 0 {
		t.Fatal("bytes/subscription measurement degenerate; harness bug")
	}
	if bytes > ceiling {
		t.Errorf("%.0f bytes/sub exceeds the gate's %.0f ceiling", bytes, ceiling)
	}
}
