package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// ReportVersion gates report compatibility: Compare refuses to diff
// reports of different versions, so a format change can never masquerade
// as a perf change.
const ReportVersion = 1

// Report is the stable JSON artifact genasbench records (BENCH_loadgen.json)
// and the CI perf gate compares. Field order is fixed by this struct; the
// scenario list is sorted by name.
type Report struct {
	Tool    string `json:"tool"`
	Version int    `json:"version"`
	Suite   string `json:"suite"`
	// Host describes where the report was recorded: regression comparisons
	// across different hosts are noise-prone (the committed baseline comes
	// from a 1-core container; see the CI job's caveat).
	Host      HostInfo `json:"host"`
	Scenarios []Result `json:"scenarios"`
}

// HostInfo captures the recording machine.
type HostInfo struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// NewReport assembles a report over the given results.
func NewReport(suite string, results []Result) *Report {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	return &Report{
		Tool:    "genasbench",
		Version: ReportVersion,
		Suite:   suite,
		Host: HostInfo{
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			GoVersion: runtime.Version(),
		},
		Scenarios: sorted,
	}
}

// Normalize zeroes every machine- and timing-dependent field, leaving only
// the deterministic workload skeleton: the golden test pins the report
// *shape* without pinning one machine's speed.
func (r *Report) Normalize() {
	r.Host = HostInfo{}
	for i := range r.Scenarios {
		r.Scenarios[i].Measured = Measured{}
	}
}

// Encode renders the canonical indented JSON form, newline-terminated.
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile records the report at path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadReport loads a report from path.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("loadgen: %s: report version %d, want %d", path, r.Version, ReportVersion)
	}
	return &r, nil
}

// Regression is one failed comparison row.
type Regression struct {
	Scenario string `json:"scenario"`
	// OldEPS and NewEPS are the compared throughputs.
	OldEPS float64 `json:"old_eps"`
	NewEPS float64 `json:"new_eps"`
	// Ratio is NewEPS/OldEPS (0 when the scenario vanished).
	Ratio float64 `json:"ratio"`
	// Missing marks a scenario present in the baseline but absent from the
	// new report — silent coverage loss counts as a regression.
	Missing bool `json:"missing,omitempty"`
	// AllocsPerEvent and AllocCap are set when the row failed an absolute
	// allocation ceiling rather than a relative throughput drop.
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`
	AllocCap       float64 `json:"alloc_cap,omitempty"`
	// BytesPerSub and BytesCap are set when the row failed an absolute
	// memory-per-subscription ceiling.
	BytesPerSub float64 `json:"bytes_per_sub,omitempty"`
	BytesCap    float64 `json:"bytes_cap,omitempty"`
}

// String renders one regression for gate logs.
func (g Regression) String() string {
	if g.Missing {
		return fmt.Sprintf("%s: missing from new report (was %.0f events/s)", g.Scenario, g.OldEPS)
	}
	if g.AllocCap > 0 {
		return fmt.Sprintf("%s: %.1f allocs/event exceeds the %.0f allocs/event ceiling",
			g.Scenario, g.AllocsPerEvent, g.AllocCap)
	}
	if g.BytesCap > 0 {
		return fmt.Sprintf("%s: %.0f bytes/subscription exceeds the %.0f bytes/subscription ceiling",
			g.Scenario, g.BytesPerSub, g.BytesCap)
	}
	return fmt.Sprintf("%s: %.0f -> %.0f events/s (%.1f%% of baseline)",
		g.Scenario, g.OldEPS, g.NewEPS, g.Ratio*100)
}

// AllocCaps lists absolute ceilings on allocations per published event, by
// scenario name. Unlike the throughput comparison these are not relative to
// the baseline: allocation counts are machine-independent, so a ceiling
// breach is a real change in the code's allocation behavior, not noise. The
// churn-heavy ceiling pins the incremental-index property that subscription
// churn no longer rebuilds (and reallocates) the automaton per operation.
var AllocCaps = map[string]float64{
	"churn-heavy": 100,
}

// BytesPerSubCaps lists absolute ceilings on resident heap bytes per
// registered subscription, by scenario name. The aggregated-mega ceiling
// pins canonical aggregation's memory win: at smoke scale the clustered
// population measures ~4.5 KiB/subscription (the un-aggregated automaton
// costs ~50x that, when it can be built at all), so the 8 KiB ceiling
// leaves noise headroom while still catching a collapse back to
// per-profile indexing.
var BytesPerSubCaps = map[string]float64{
	"aggregated-mega": 8192,
}

// Compare gates cur against base: every baseline scenario must still exist
// and keep at least (1 − tolerance) of its throughput, and every scenario
// with an AllocCaps (BytesPerSubCaps) entry must stay under its
// allocs-per-event (bytes-per-subscription) ceiling.
// Improvements and scenarios new to the suite never fail the gate. A
// tolerance of 0.25 tolerates a 25% drop.
func Compare(base, cur *Report, tolerance float64) []Regression {
	byName := make(map[string]Result, len(cur.Scenarios))
	for _, r := range cur.Scenarios {
		byName[r.Name] = r
	}
	var regs []Regression
	for _, o := range base.Scenarios {
		n, ok := byName[o.Name]
		if !ok {
			regs = append(regs, Regression{Scenario: o.Name, OldEPS: o.Measured.ThroughputEPS, Missing: true})
			continue
		}
		if o.Measured.ThroughputEPS <= 0 {
			continue // an empty baseline row gates nothing
		}
		ratio := n.Measured.ThroughputEPS / o.Measured.ThroughputEPS
		if ratio < 1-tolerance {
			regs = append(regs, Regression{
				Scenario: o.Name,
				OldEPS:   o.Measured.ThroughputEPS,
				NewEPS:   n.Measured.ThroughputEPS,
				Ratio:    ratio,
			})
		}
	}
	for _, r := range cur.Scenarios {
		ceiling, ok := AllocCaps[r.Name]
		if !ok || r.Measured.AllocsPerEvent <= ceiling {
			continue
		}
		regs = append(regs, Regression{
			Scenario:       r.Name,
			AllocsPerEvent: r.Measured.AllocsPerEvent,
			AllocCap:       ceiling,
		})
	}
	for _, r := range cur.Scenarios {
		ceiling, ok := BytesPerSubCaps[r.Name]
		if !ok || r.Measured.BytesPerSub <= ceiling {
			continue
		}
		regs = append(regs, Regression{
			Scenario:    r.Name,
			BytesPerSub: r.Measured.BytesPerSub,
			BytesCap:    ceiling,
		})
	}
	return regs
}
