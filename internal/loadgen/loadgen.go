// Package loadgen synthesizes benchmark workloads from the distribution
// catalog and drives any filtering surface of the system through them.
//
// The paper's whole argument is distribution-sensitivity: filter cost
// depends on the *shape* of the event stream, not only its volume. This
// package makes that shape a first-class, declarative input. A Scenario is
// a data value — schema, per-attribute event shapes from internal/dist's
// catalog (d1…d42 and the named family), optional correlated mixtures
// (NewCorrelated), hot-key skew, subscription churn schedules and
// burst/steady arrival patterns — and Build turns it into a fully
// deterministic Plan: the exact event stream, the initial profile
// population and the timed churn steps. The same seed always yields a
// byte-identical plan, so runs are reproducible and comparable.
//
// A Plan runs against a Driver: adapters exist for the raw core.Filter
// engines (single-tree and sharded), the full genas.Service, a TCP wire
// endpoint (in-process genasd-equivalent server) and a multi-hop wire-level
// federation. Run measures throughput, p50/p99 publish latency, matches/sec
// and allocations per event, and emits a stable JSON Report that
// cmd/genasbench records and compares across commits (the CI perf gate).
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"genas/internal/dist"
	"genas/internal/predicate"
	"genas/internal/schema"
)

// Errors reported by scenario compilation.
var (
	// ErrBadScenario reports an invalid scenario specification.
	ErrBadScenario = errors.New("loadgen: invalid scenario")
	// ErrUnknownScenario reports an unknown scenario or suite name.
	ErrUnknownScenario = errors.New("loadgen: unknown scenario")
)

// Scenario declares one workload: sizes, stream shape and target driver.
// Scenarios are plain data (JSON-serializable), so new workloads are one
// struct literal away.
type Scenario struct {
	// Name identifies the scenario in reports and baselines.
	Name string `json:"name"`
	// Driver selects the surface under load: "engine" (single-tree
	// core.Engine), "sharded" (core.Sharded), "service" (full
	// genas.Service), "wire" (in-process TCP daemon spoken to through the
	// wire client) or "federation" (a chain of wire-level federated
	// daemons; see Hops).
	Driver string `json:"driver"`
	// Schema is the attribute schema spec, e.g.
	// "temperature=numeric[-30,50]; humidity=numeric[0,100]".
	Schema string `json:"schema"`
	// Seed feeds every random choice; same seed, same plan, byte for byte.
	Seed int64 `json:"seed"`
	// Events is the stream length, Profiles the initial population size.
	Events   int `json:"events"`
	Profiles int `json:"profiles"`
	// Batch > 1 publishes in bursts of that size through the batch path;
	// 0 or 1 is a steady per-event stream.
	Batch int `json:"batch,omitempty"`
	// EventShapes maps attribute name → catalog shape name for the event
	// stream ("equal", "gauss", "d17", …). Missing attributes are uniform.
	// Ignored when Correlated is set.
	EventShapes map[string]string `json:"event_shapes,omitempty"`
	// ProfileShapes maps attribute name → catalog shape for the *centers*
	// of generated profile ranges. Missing attributes are uniform.
	ProfileShapes map[string]string `json:"profile_shapes,omitempty"`
	// ProfileWidth is each range predicate's width as a fraction of the
	// attribute domain (default 0.1). Widths jitter ±50% around it.
	ProfileWidth float64 `json:"profile_width,omitempty"`
	// ConstrainP is the probability a profile constrains an attribute
	// (default 0.7); at least one attribute is always constrained.
	ConstrainP float64 `json:"constrain_p,omitempty"`
	// Clusters, when set, draws profiles from a small Zipf-weighted pool of
	// structural templates instead of generating each one independently —
	// the many-subscribers-few-shapes population canonical aggregation
	// exists for.
	Clusters *ClusterSpec `json:"clusters,omitempty"`
	// Aggregate enables canonical subscription aggregation on the engine,
	// sharded and service drivers.
	Aggregate bool `json:"aggregate,omitempty"`
	// Correlated, when set, samples whole event vectors from a weighted
	// mixture of per-attribute product components — the standard
	// counterexample to the independence assumption.
	Correlated *CorrelatedSpec `json:"correlated,omitempty"`
	// HotKeys, when set, redirects a fraction of one attribute's values
	// onto a small Zipf-weighted hot set.
	HotKeys *HotKeySpec `json:"hot_keys,omitempty"`
	// Churn, when set, interleaves subscribe/unsubscribe pairs with the
	// stream.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Shards configures the sharded/service drivers (0 = GOMAXPROCS).
	Shards int `json:"shards,omitempty"`
	// Adaptive enables adaptive restructuring on the service driver.
	Adaptive bool `json:"adaptive,omitempty"`
	// Hops is the federation chain's link count (default 3: four daemons).
	Hops int `json:"hops,omitempty"`
	// Proto pins the wire protocol of the wire and federation drivers: "v1"
	// (JSON lines), "v2" (binary frames) or "" (negotiate, which lands on v2
	// in-process). Other drivers ignore it.
	Proto string `json:"proto,omitempty"`
}

// CorrelatedSpec declares a mixture of product distributions: component k
// is drawn with probability Weights[k], then every attribute samples from
// Components[k]'s shape (one catalog name per schema attribute).
type CorrelatedSpec struct {
	Weights    []float64  `json:"weights"`
	Components [][]string `json:"components"`
}

// HotKeySpec concentrates part of one attribute's stream on K hot values
// spread over the domain, ranked by a Zipf law with exponent S (> 1).
type HotKeySpec struct {
	// Attr is the skewed attribute's name.
	Attr string `json:"attr"`
	// P is the probability an event's value is replaced by a hot key.
	P float64 `json:"p"`
	// K is the hot-set size, S the Zipf exponent (default 16 and 1.2).
	K int     `json:"k,omitempty"`
	S float64 `json:"s,omitempty"`
}

// ClusterSpec declares a Zipf-clustered profile population: Distinct
// structural templates are generated up front, each with Variants strictly
// narrower refinements. Every subscription then copies a template picked by
// a Zipf law with exponent S (> 1, default 1.1) — or, with probability
// RefineP, one of that template's refinements. Ids stay unique per
// subscription; only the predicate structure repeats, which is exactly what
// canonical aggregation interns.
type ClusterSpec struct {
	// Distinct is the template pool size.
	Distinct int `json:"distinct"`
	// S is the Zipf exponent ranking template popularity (default 1.1).
	S float64 `json:"s,omitempty"`
	// RefineP is the probability a subscription takes a refinement of its
	// template instead of the template itself (default 0).
	RefineP float64 `json:"refine_p,omitempty"`
	// Variants is the number of refinements generated per template
	// (default 0; required > 0 when RefineP > 0).
	Variants int `json:"variants,omitempty"`
}

// ChurnSpec schedules subscription churn: every Every events, Ops profiles
// unsubscribe (oldest first) and Ops freshly generated ones take their
// place, so the corpus size stays constant while its content drifts.
type ChurnSpec struct {
	Every int `json:"every"`
	Ops   int `json:"ops"`
}

// Plan is the fully materialized, deterministic realization of a Scenario:
// everything a driver consumes, with no randomness left. Frozen: a built
// plan is shared by drivers, oracles, and baseline comparisons — mutating
// one would silently desynchronize recorded benchmarks.
//
//genas:frozen
type Plan struct {
	// Scenario is the spec the plan was built from.
	Scenario Scenario
	// Schema is the parsed attribute schema.
	Schema *schema.Schema
	// Events is the event stream, positional in schema order.
	Events [][]float64
	// Initial is the profile population registered before the stream runs.
	Initial []*predicate.Profile
	// Churn lists the subscription churn steps, ordered by At.
	Churn []ChurnStep
}

// ChurnStep swaps part of the population immediately before event index At.
// Frozen alongside the Plan that carries it.
//
//genas:frozen
type ChurnStep struct {
	At     int
	Remove []predicate.ID
	Add    []*predicate.Profile
}

// ChurnOps counts the plan's total churn operations (an unsubscribe and a
// subscribe each count one).
func (p *Plan) ChurnOps() int {
	n := 0
	for _, st := range p.Churn {
		n += len(st.Remove) + len(st.Add)
	}
	return n
}

// compiled holds the resolved sampling machinery of one scenario.
type compiled struct {
	sch      *schema.Schema
	eventD   []dist.Dist // per-attribute marginals (independent mode)
	joint    dist.Dist   // correlated joint (zero when independent)
	profileD []dist.Dist // per-attribute range-center distributions
	hotAttr  int         // -1 without hot keys
	hotProb  float64
	hotVals  []float64
}

// compile validates the scenario and resolves every catalog reference.
func (sc *Scenario) compile() (*compiled, error) {
	if sc.Name == "" {
		return nil, fmt.Errorf("%w: missing name", ErrBadScenario)
	}
	if sc.Events <= 0 || sc.Profiles <= 0 {
		return nil, fmt.Errorf("%w %s: events and profiles must be positive", ErrBadScenario, sc.Name)
	}
	if sc.Batch < 0 {
		return nil, fmt.Errorf("%w %s: negative batch", ErrBadScenario, sc.Name)
	}
	if sc.Proto != "" && sc.Proto != "v1" && sc.Proto != "v2" {
		return nil, fmt.Errorf("%w %s: proto %q (want v1, v2 or empty)", ErrBadScenario, sc.Name, sc.Proto)
	}
	sch, err := schema.ParseSpec(sc.Schema)
	if err != nil {
		return nil, fmt.Errorf("%w %s: %v", ErrBadScenario, sc.Name, err)
	}
	c := &compiled{sch: sch, hotAttr: -1}
	if c.eventD, err = resolveShapes(sch, sc.EventShapes); err != nil {
		return nil, fmt.Errorf("%w %s: event shapes: %v", ErrBadScenario, sc.Name, err)
	}
	if c.profileD, err = resolveShapes(sch, sc.ProfileShapes); err != nil {
		return nil, fmt.Errorf("%w %s: profile shapes: %v", ErrBadScenario, sc.Name, err)
	}
	if sc.Correlated != nil {
		rows := make([][]dist.Dist, len(sc.Correlated.Components))
		for k, row := range sc.Correlated.Components {
			if len(row) != sch.N() {
				return nil, fmt.Errorf("%w %s: correlated component %d has %d shapes for %d attributes",
					ErrBadScenario, sc.Name, k, len(row), sch.N())
			}
			rows[k] = make([]dist.Dist, sch.N())
			for j, name := range row {
				sh, err := dist.ByName(name)
				if err != nil {
					return nil, fmt.Errorf("%w %s: %v", ErrBadScenario, sc.Name, err)
				}
				rows[k][j] = dist.New(sh, sch.At(j).Domain)
			}
		}
		joint, err := dist.NewCorrelated(sc.Correlated.Weights, rows)
		if err != nil {
			return nil, fmt.Errorf("%w %s: %v", ErrBadScenario, sc.Name, err)
		}
		c.joint = joint
	}
	if hk := sc.HotKeys; hk != nil {
		i, err := sch.Index(hk.Attr)
		if err != nil {
			return nil, fmt.Errorf("%w %s: hot keys: %v", ErrBadScenario, sc.Name, err)
		}
		if hk.P < 0 || hk.P > 1 {
			return nil, fmt.Errorf("%w %s: hot-key probability %g", ErrBadScenario, sc.Name, hk.P)
		}
		k := hk.K
		if k <= 0 {
			k = 16
		}
		c.hotAttr = i
		c.hotProb = hk.P
		c.hotVals = hotValues(sch.At(i).Domain, k)
	}
	if ch := sc.Churn; ch != nil {
		if ch.Every <= 0 || ch.Ops <= 0 {
			return nil, fmt.Errorf("%w %s: churn interval and ops must be positive", ErrBadScenario, sc.Name)
		}
	}
	if cl := sc.Clusters; cl != nil {
		if cl.Distinct <= 0 {
			return nil, fmt.Errorf("%w %s: clusters need a positive distinct count", ErrBadScenario, sc.Name)
		}
		if cl.RefineP < 0 || cl.RefineP > 1 {
			return nil, fmt.Errorf("%w %s: cluster refine probability %g", ErrBadScenario, sc.Name, cl.RefineP)
		}
		if cl.RefineP > 0 && cl.Variants <= 0 {
			return nil, fmt.Errorf("%w %s: refine probability without variants", ErrBadScenario, sc.Name)
		}
	}
	return c, nil
}

// resolveShapes binds each named shape to its attribute domain; attributes
// without an entry are uniform.
func resolveShapes(sch *schema.Schema, byAttr map[string]string) ([]dist.Dist, error) {
	ds := make([]dist.Dist, sch.N())
	for i := 0; i < sch.N(); i++ {
		ds[i] = dist.New(dist.UniformShape{}, sch.At(i).Domain)
	}
	// Resolve in sorted attribute order so error precedence is stable.
	names := make([]string, 0, len(byAttr))
	for name := range byAttr {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		i, err := sch.Index(name)
		if err != nil {
			return nil, err
		}
		sh, err := dist.ByName(byAttr[name])
		if err != nil {
			return nil, err
		}
		ds[i] = dist.New(sh, sch.At(i).Domain)
	}
	return ds, nil
}

// hotValues spreads k hot keys evenly over the domain (snapped to codes on
// integer and categorical domains), rank 0 first.
func hotValues(dom schema.Domain, k int) []float64 {
	vals := make([]float64, k)
	for r := 0; r < k; r++ {
		x := dom.Lo() + (float64(r)+0.5)/float64(k)*dom.Size()
		switch dom.Kind() {
		case schema.KindInteger, schema.KindCategorical:
			x = float64(int(x))
		}
		if x > dom.Hi() {
			x = dom.Hi()
		}
		vals[r] = x
	}
	return vals
}

// Build materializes the scenario into a deterministic plan. Two calls with
// the same scenario value produce byte-identical plans: a single seeded
// generator drives event sampling, hot-key substitution, profile synthesis
// and churn in a fixed order.
//
//genas:builder
func Build(sc Scenario) (*Plan, error) {
	c, err := sc.compile()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	var zipf *rand.Zipf
	if sc.HotKeys != nil {
		s := sc.HotKeys.S
		if s <= 1 {
			s = 1.2
		}
		zipf = rand.NewZipf(rng, s, 1, uint64(len(c.hotVals)-1))
	}

	p := &Plan{Scenario: sc, Schema: c.sch}
	p.Events = make([][]float64, sc.Events)
	for i := range p.Events {
		p.Events[i] = c.sampleEvent(rng, zipf)
	}

	gen := &profileGen{c: c, sc: sc}
	if sc.Clusters != nil {
		gen.seedClusters(rng)
	}
	p.Initial = make([]*predicate.Profile, sc.Profiles)
	for i := range p.Initial {
		p.Initial[i] = gen.next(rng)
	}

	if ch := sc.Churn; ch != nil {
		// The removal queue starts as the initial population, oldest first;
		// replacements join its tail so long runs churn through them too.
		alive := make([]predicate.ID, len(p.Initial))
		for i, pr := range p.Initial {
			alive[i] = pr.ID
		}
		for at := ch.Every; at < sc.Events; at += ch.Every {
			n := ch.Ops
			if n > len(alive) {
				n = len(alive)
			}
			st := ChurnStep{At: at, Remove: append([]predicate.ID(nil), alive[:n]...)}
			alive = alive[n:]
			for i := 0; i < n; i++ {
				fresh := gen.next(rng)
				st.Add = append(st.Add, fresh)
				alive = append(alive, fresh.ID)
			}
			p.Churn = append(p.Churn, st)
		}
	}
	return p, nil
}

// sampleEvent draws one positional event vector and applies hot-key skew.
func (c *compiled) sampleEvent(rng *rand.Rand, zipf *rand.Zipf) []float64 {
	var vals []float64
	if c.joint.Shape() != nil {
		vals = c.joint.SampleEvent(rng)
	} else {
		vals = make([]float64, c.sch.N())
		for i := range vals {
			vals[i] = c.eventD[i].Sample(rng)
		}
	}
	if c.hotAttr >= 0 && rng.Float64() < c.hotProb {
		vals[c.hotAttr] = c.hotVals[zipf.Uint64()]
	}
	return vals
}

// profileGen synthesizes the profile population: per attribute, a range
// predicate centered on a draw from the profile-shape distribution with a
// jittered width, constrained with probability ConstrainP. With Clusters
// set, generation instead copies structure from a pre-built template pool.
type profileGen struct {
	c   *compiled
	sc  Scenario
	seq int
	// templates and variants hold the cluster pool: variants[k] are strict
	// refinements of templates[k]. Empty without Clusters.
	templates []*predicate.Profile
	variants  [][]*predicate.Profile
	zipf      *rand.Zipf
}

// seedClusters builds the template pool and its refinements. Deterministic:
// driven entirely by the plan's single generator.
func (g *profileGen) seedClusters(rng *rand.Rand) {
	cl := g.sc.Clusters
	s := cl.S
	if s <= 1 {
		s = 1.1
	}
	g.templates = make([]*predicate.Profile, cl.Distinct)
	g.variants = make([][]*predicate.Profile, cl.Distinct)
	for k := range g.templates {
		g.templates[k] = g.fresh(rng)
		g.variants[k] = make([]*predicate.Profile, 0, cl.Variants)
		for v := 0; v < cl.Variants; v++ {
			if r := refineProfile(g.c.sch, g.templates[k], rng); r != nil {
				g.variants[k] = append(g.variants[k], r)
			}
		}
	}
	g.zipf = rand.NewZipf(rng, s, 1, uint64(cl.Distinct-1))
}

// refineProfile builds a strictly narrower copy of p: every constrained
// range shrinks inside its original bounds, so the template covers the
// refinement by construction. Returns nil when shrinking degenerates (point
// predicates on integer domains can have nothing inside them).
func refineProfile(sch *schema.Schema, p *predicate.Profile, rng *rand.Rand) *predicate.Profile {
	var preds []predicate.Predicate
	for i := 0; i < sch.N(); i++ {
		if !p.Constrains(i) {
			continue
		}
		dom := sch.At(i).Domain
		ivs := p.Pred(i).Intervals(dom)
		iv := ivs[rng.Intn(len(ivs))]
		w := iv.Hi - iv.Lo
		lo := iv.Lo + rng.Float64()*w/2
		hi := hiOf(lo, iv.Hi, rng)
		pr, err := predicate.NewRange(i, lo, hi)
		if err != nil {
			return nil
		}
		preds = append(preds, pr)
	}
	r, err := predicate.New(sch, predicate.ID("t"), preds...)
	if err != nil {
		return nil
	}
	return r
}

// hiOf draws a refinement's upper bound in (lo, hi].
func hiOf(lo, hi float64, rng *rand.Rand) float64 {
	return hi - rng.Float64()*(hi-lo)/2
}

// next generates one fresh profile with a population-unique id: a pool copy
// under Clusters, an independent draw otherwise.
func (g *profileGen) next(rng *rand.Rand) *predicate.Profile {
	if g.templates == nil {
		return g.fresh(rng)
	}
	k := int(g.zipf.Uint64())
	src := g.templates[k]
	if vs := g.variants[k]; len(vs) > 0 && rng.Float64() < g.sc.Clusters.RefineP {
		src = vs[rng.Intn(len(vs))]
	}
	id := predicate.ID(fmt.Sprintf("p%06d", g.seq))
	g.seq++
	// Same structure, fresh identity: this is the population shape the
	// canonical layer interns. Preds may alias the pool copy — profiles are
	// immutable after construction.
	return &predicate.Profile{ID: id, Preds: src.Preds, Priority: src.Priority}
}

// fresh generates one independent profile with a population-unique id.
func (g *profileGen) fresh(rng *rand.Rand) *predicate.Profile {
	sch := g.c.sch
	widthFrac := g.sc.ProfileWidth
	if widthFrac <= 0 {
		widthFrac = 0.1
	}
	constrainP := g.sc.ConstrainP
	if constrainP <= 0 {
		constrainP = 0.7
	}
	for {
		var preds []predicate.Predicate
		for i := 0; i < sch.N(); i++ {
			if rng.Float64() >= constrainP {
				continue
			}
			dom := sch.At(i).Domain
			center := g.c.profileD[i].Sample(rng)
			w := widthFrac * (0.5 + rng.Float64()) * dom.Size()
			lo, hi := clampRange(center-w/2, center+w/2, dom)
			pr, err := predicate.NewRange(i, lo, hi)
			if err != nil {
				continue
			}
			preds = append(preds, pr)
		}
		if len(preds) == 0 {
			// Constrain one attribute rather than skewing ConstrainP: an
			// all-don't-care profile is not a valid subscription.
			i := rng.Intn(sch.N())
			dom := sch.At(i).Domain
			center := g.c.profileD[i].Sample(rng)
			w := widthFrac * dom.Size()
			lo, hi := clampRange(center-w/2, center+w/2, dom)
			pr, err := predicate.NewRange(i, lo, hi)
			if err != nil {
				continue
			}
			preds = append(preds, pr)
		}
		id := predicate.ID(fmt.Sprintf("p%06d", g.seq))
		g.seq++
		p, err := predicate.New(sch, id, preds...)
		if err != nil {
			continue
		}
		return p
	}
}

// clampRange clips [lo, hi] to the domain.
func clampRange(lo, hi float64, dom schema.Domain) (float64, float64) {
	if lo < dom.Lo() {
		lo = dom.Lo()
	}
	if hi > dom.Hi() {
		hi = dom.Hi()
	}
	return lo, hi
}
