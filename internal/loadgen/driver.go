package loadgen

import (
	"fmt"
	"sync/atomic"
	"time"

	"genas"
	"genas/internal/core"
	"genas/internal/event"
	"genas/internal/predicate"
	"genas/internal/schema"
)

// Driver is the surface a plan runs against. Every layer of the system that
// filters events gets an adapter, so one scenario spec measures the raw
// automaton, the full service, the TCP protocol and a federation with the
// same stream.
type Driver interface {
	// Name labels the driver in reports.
	Name() string
	// Subscribe registers a profile, Unsubscribe removes one (churn path).
	Subscribe(p *predicate.Profile) error
	Unsubscribe(id predicate.ID) error
	// Publish filters one positional event, returning the local match
	// count. PublishBatch is the burst path for a slice of events.
	Publish(vals []float64) (int, error)
	PublishBatch(batch [][]float64) (int, error)
	// Drain blocks until asynchronous delivery settles and returns the
	// driver's delivery counters (zero for synchronous drivers).
	Drain() (Counters, error)
	// Close tears the driver down.
	Close() error
}

// Counters are the post-run delivery counters of asynchronous drivers.
type Counters struct {
	// Delivered counts notifications that reached a subscriber.
	Delivered uint64 `json:"delivered,omitempty"`
	// Forwarded and Filtered are federation link counters: events that
	// crossed a TCP link, and crossings avoided by link-level rejection.
	Forwarded uint64 `json:"forwarded,omitempty"`
	Filtered  uint64 `json:"filtered,omitempty"`
}

// OpenDriver constructs the scenario's driver over the plan's schema.
func OpenDriver(sc Scenario, sch *schema.Schema) (Driver, error) {
	cfg := core.Config{Aggregate: sc.Aggregate}
	switch sc.Driver {
	case "", "engine":
		return &filterDriver{name: "engine", f: core.NewEngine(sch, cfg)}, nil
	case "sharded":
		n := core.ResolveShards(sc.Shards)
		if n < 2 {
			n = 2 // a 1-way "sharded" engine would silently degenerate
		}
		return &filterDriver{name: "sharded", f: core.NewSharded(sch, cfg, n)}, nil
	case "service":
		return newServiceDriver(sc, sch)
	case "wire":
		return newWireDriver(sc, sch)
	case "federation":
		return newFedDriver(sc, sch)
	default:
		return nil, fmt.Errorf("%w: driver %q", ErrBadScenario, sc.Driver)
	}
}

// filterDriver runs a bare core.Filter: matching without delivery, the
// paper's comparisons-per-event surface.
type filterDriver struct {
	name string
	f    core.Filter
}

func (d *filterDriver) Name() string { return d.name }

func (d *filterDriver) Subscribe(p *predicate.Profile) error { return d.f.AddProfile(p) }

func (d *filterDriver) Unsubscribe(id predicate.ID) error { return d.f.RemoveProfile(id) }

func (d *filterDriver) Publish(vals []float64) (int, error) {
	ids, _, err := d.f.Match(vals)
	return len(ids), err
}

func (d *filterDriver) PublishBatch(batch [][]float64) (int, error) {
	rs, err := d.f.MatchBatch(batch, 0)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, r := range rs {
		total += len(r.IDs)
	}
	return total, nil
}

func (d *filterDriver) Drain() (Counters, error) { return Counters{}, nil }

func (d *filterDriver) Close() error { return nil }

// AggStats reports the engine's canonical-aggregation shape.
func (d *filterDriver) AggStats() core.AggStats { return d.f.AggStats() }

// serviceDriver runs the full genas.Service: matching plus delivery to
// handler-driven subscriptions (the cheapest delivery mode, so the measured
// cost is the service path, not a synthetic consumer).
type serviceDriver struct {
	svc       *genas.Service
	delivered atomic.Uint64
}

func newServiceDriver(sc Scenario, sch *schema.Schema) (*serviceDriver, error) {
	opts := []genas.Option{genas.WithShards(sc.Shards)}
	if sc.Adaptive {
		opts = append(opts, genas.WithAdaptive())
	}
	if sc.Aggregate {
		opts = append(opts, genas.WithAggregation())
	}
	svc, err := genas.NewService(sch, opts...)
	if err != nil {
		return nil, err
	}
	return &serviceDriver{svc: svc}, nil
}

func (d *serviceDriver) Name() string { return "service" }

func (d *serviceDriver) Subscribe(p *predicate.Profile) error {
	_, err := d.svc.SubscribeProfile(p, genas.SubHandler(func(genas.Notification) {
		d.delivered.Add(1)
	}))
	return err
}

func (d *serviceDriver) Unsubscribe(id predicate.ID) error {
	return d.svc.Unsubscribe(string(id))
}

func (d *serviceDriver) Publish(vals []float64) (int, error) {
	return d.svc.PublishValues(vals...)
}

func (d *serviceDriver) PublishBatch(batch [][]float64) (int, error) {
	evs := make([]genas.Event, len(batch))
	for i, vals := range batch {
		ev, err := event.New(d.svc.Schema(), vals...)
		if err != nil {
			return 0, err
		}
		evs[i] = ev
	}
	counts, err := d.svc.PublishBatch(evs)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Drain waits for the handler goroutines to work through their buffers: the
// delivered tally is sampled until it stops moving.
func (d *serviceDriver) Drain() (Counters, error) {
	waitStable(func() uint64 { return d.delivered.Load() })
	return Counters{Delivered: d.svc.Stats().Delivered}, nil
}

func (d *serviceDriver) Close() error {
	d.svc.Close()
	return nil
}

// AggStats reports the service engine's canonical-aggregation shape.
func (d *serviceDriver) AggStats() core.AggStats {
	st := d.svc.Stats()
	return core.AggStats{
		Enabled:       st.Aggregated,
		Subscriptions: st.Subscriptions,
		Nodes:         st.CanonicalNodes,
		Roots:         st.CanonicalRoots,
		MaxDepth:      st.PosetDepth,
	}
}

// waitStable polls a monotone counter until it holds still for a few
// consecutive samples (asynchronous pipelines have no completion signal;
// quiescence is the observable).
func waitStable(read func() uint64) {
	last := read()
	still := 0
	deadline := time.Now().Add(10 * time.Second)
	for still < 3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		cur := read()
		if cur == last {
			still++
		} else {
			still = 0
			last = cur
		}
	}
}
