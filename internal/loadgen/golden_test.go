package loadgen

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report")

// TestReportGolden pins the report's JSON shape and its deterministic
// content: a fixed small scenario is run, the timing-dependent fields are
// normalized away, and the remaining bytes must match the committed golden
// file. Field renames, reordering or workload drift all fail here.
// Regenerate with: go test ./internal/loadgen -run TestReportGolden -update
func TestReportGolden(t *testing.T) {
	sc := Scenario{
		Name:        "golden-tiny",
		Driver:      "engine",
		Schema:      stdSchema,
		Seed:        7,
		Events:      300,
		Profiles:    40,
		Batch:       16,
		EventShapes: map[string]string{"temperature": "d14"},
		HotKeys:     &HotKeySpec{Attr: "floor", P: 0.6, K: 4, S: 1.5},
		Churn:       &ChurnSpec{Every: 100, Ops: 5},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	report := NewReport("golden", []Result{*res})
	report.Normalize()
	got, err := report.Encode()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "report_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report deviates from golden file %s\n got: %s\nwant: %s", path, got, want)
	}
}

// TestNormalize checks normalization wipes every machine-dependent field.
func TestNormalize(t *testing.T) {
	r := NewReport("x", []Result{{
		Name:     "a",
		Measured: Measured{ThroughputEPS: 123, P99Micros: 4},
	}})
	if r.Host.NumCPU == 0 {
		t.Fatal("report did not record the host")
	}
	r.Normalize()
	if r.Host != (HostInfo{}) {
		t.Errorf("host survived normalization: %+v", r.Host)
	}
	if r.Scenarios[0].Measured != (Measured{}) {
		t.Errorf("measurements survived normalization: %+v", r.Scenarios[0].Measured)
	}
}
