// Package broker implements a local event notification service: subscription
// management, the publish/filter path, per-subscriber delivery and an
// Elvin-style quenching interface ("a quenching mechanism that discards
// unneeded information without consuming resources", paper §2).
//
// The broker composes the distribution-based filter engine of internal/core
// with the adaptive component of internal/adaptive: every published event
// feeds the event history, and the filter tree restructures itself when the
// observed distribution drifts.
package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"genas/internal/adaptive"
	"genas/internal/core"
	"genas/internal/event"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/stats"
)

// Errors returned by the broker.
var (
	ErrClosed        = errors.New("broker: closed")
	ErrUnknownSub    = errors.New("broker: unknown subscription")
	ErrDuplicateSub  = errors.New("broker: duplicate subscription id")
	ErrNilProfile    = errors.New("broker: nil profile")
	ErrBadBufferSize = errors.New("broker: buffer size must be positive")
)

// Notification is delivered to a subscriber whose profile matched an event.
type Notification struct {
	// Event is the matched event (sequence number assigned by the broker).
	Event event.Event
	// Profile identifies the subscription whose profile matched.
	Profile predicate.ID
	// Delivered is the broker-side delivery timestamp.
	Delivered time.Time
}

// sharedChan is a delivery channel possibly shared by several subscriptions
// (group delivery). The channel closes when the last member unsubscribes.
type sharedChan struct {
	ch     chan Notification
	refs   atomic.Int32
	closed atomic.Bool
}

// release drops one member reference and closes the channel when none
// remain.
func (sc *sharedChan) release() {
	if sc.refs.Add(-1) == 0 && sc.closed.CompareAndSwap(false, true) {
		close(sc.ch)
	}
}

// Subscription is one subscriber registration. Notifications arrive on C();
// when the subscriber lags behind the buffer the broker drops and counts
// instead of blocking the publish path.
type Subscription struct {
	id      predicate.ID
	profile *predicate.Profile
	shared  *sharedChan
	dropped atomic.Uint64
	closed  atomic.Bool
}

// ID returns the subscription id.
func (s *Subscription) ID() predicate.ID { return s.id }

// Profile returns the subscription's profile.
func (s *Subscription) Profile() *predicate.Profile { return s.profile }

// C returns the notification channel. It is closed on Unsubscribe and on
// broker shutdown (for group members: when the whole group is gone).
func (s *Subscription) C() <-chan Notification { return s.shared.ch }

// Dropped returns how many notifications were discarded because the
// subscriber was slow.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Options configure a Broker.
type Options struct {
	// Engine configuration (measures, search strategy, distributions).
	Engine core.Config
	// Adaptive enables the adaptive filter component.
	Adaptive bool
	// Policy tunes adaptation (ignored unless Adaptive).
	Policy adaptive.Policy
	// DefaultBuffer is the per-subscription channel buffer (default 64).
	DefaultBuffer int
}

// Broker is the local ENS instance. It is safe for concurrent use.
type Broker struct {
	schema *schema.Schema
	engine *core.Engine
	adapt  *adaptive.Adaptor

	mu     sync.RWMutex
	subs   map[predicate.ID]*Subscription
	closed bool

	seq       atomic.Uint64
	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64

	// counters realize the paper's statistic objects (§4.2): per-profile
	// delivery and drop tallies keyed "delivered:<id>" / "dropped:<id>".
	counters *stats.Counters

	defaultBuffer int
}

// New creates a broker over schema s.
func New(s *schema.Schema, opts Options) (*Broker, error) {
	if opts.DefaultBuffer == 0 {
		opts.DefaultBuffer = 64
	}
	if opts.DefaultBuffer < 0 {
		return nil, ErrBadBufferSize
	}
	b := &Broker{
		schema:        s,
		engine:        core.NewEngine(s, opts.Engine),
		subs:          make(map[predicate.ID]*Subscription),
		counters:      stats.NewCounters(),
		defaultBuffer: opts.DefaultBuffer,
	}
	if opts.Adaptive {
		a, err := adaptive.New(b.engine, opts.Policy)
		if err != nil {
			return nil, err
		}
		b.adapt = a
	}
	return b, nil
}

// Schema returns the broker's schema.
func (b *Broker) Schema() *schema.Schema { return b.schema }

// Engine exposes the underlying filter engine (experiments and diagnostics).
func (b *Broker) Engine() *core.Engine { return b.engine }

// Adaptor returns the adaptive component (nil when disabled).
func (b *Broker) Adaptor() *adaptive.Adaptor { return b.adapt }

// Subscribe registers a profile and returns its subscription. The profile ID
// must be unique within the broker.
func (b *Broker) Subscribe(p *predicate.Profile) (*Subscription, error) {
	return b.SubscribeBuffered(p, b.defaultBuffer)
}

// SubscribeBuffered is Subscribe with an explicit channel buffer size.
func (b *Broker) SubscribeBuffered(p *predicate.Profile, buffer int) (*Subscription, error) {
	if p == nil {
		return nil, ErrNilProfile
	}
	if buffer <= 0 {
		return nil, ErrBadBufferSize
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if _, dup := b.subs[p.ID]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateSub, p.ID)
	}
	if err := b.engine.AddProfile(p); err != nil {
		return nil, err
	}
	sc := &sharedChan{ch: make(chan Notification, buffer)}
	sc.refs.Store(1)
	sub := &Subscription{id: p.ID, profile: p, shared: sc}
	b.subs[p.ID] = sub
	return sub, nil
}

// Group is a set of subscriptions delivering over one ordered channel: all
// notifications triggered by one published event arrive contiguously and in
// publish order, which composite event detection depends on.
type Group struct {
	b      *Broker
	shared *sharedChan
	ids    []predicate.ID
	once   sync.Once
}

// C returns the group's merged notification channel.
func (g *Group) C() <-chan Notification { return g.shared.ch }

// IDs returns the member profile ids.
func (g *Group) IDs() []predicate.ID { return append([]predicate.ID(nil), g.ids...) }

// Close unsubscribes every member; the channel closes when the last member
// is gone.
func (g *Group) Close() {
	g.once.Do(func() {
		for _, id := range g.ids {
			_ = g.b.Unsubscribe(id)
		}
	})
}

// SubscribeGroup registers several profiles that share one notification
// channel. Registration is atomic: on any failure no profile remains
// subscribed.
func (b *Broker) SubscribeGroup(buffer int, profiles ...*predicate.Profile) (*Group, error) {
	if buffer <= 0 {
		return nil, ErrBadBufferSize
	}
	if len(profiles) == 0 {
		return nil, ErrNilProfile
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	for _, p := range profiles {
		if p == nil {
			return nil, ErrNilProfile
		}
		if _, dup := b.subs[p.ID]; dup {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateSub, p.ID)
		}
	}
	sc := &sharedChan{ch: make(chan Notification, buffer)}
	g := &Group{b: b, shared: sc}
	added := make([]predicate.ID, 0, len(profiles))
	for _, p := range profiles {
		if err := b.engine.AddProfile(p); err != nil {
			for _, id := range added {
				sub := b.subs[id]
				delete(b.subs, id)
				_ = b.engine.RemoveProfile(id)
				sub.closed.Store(true)
			}
			return nil, err
		}
		sc.refs.Add(1)
		b.subs[p.ID] = &Subscription{id: p.ID, profile: p, shared: sc}
		added = append(added, p.ID)
	}
	g.ids = added
	return g, nil
}

// Unsubscribe removes a subscription and closes its channel.
func (b *Broker) Unsubscribe(id predicate.ID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	sub, ok := b.subs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSub, id)
	}
	delete(b.subs, id)
	if err := b.engine.RemoveProfile(id); err != nil {
		return err
	}
	sub.closed.Store(true)
	sub.shared.release()
	return nil
}

// Publish filters the event and delivers notifications to every matched
// subscriber. It returns the number of matched profiles. Slow subscribers
// never block: over-full buffers drop (counted per subscription and
// broker-wide).
func (b *Broker) Publish(ev event.Event) (int, error) {
	if len(ev.Vals) != b.schema.N() {
		return 0, fmt.Errorf("%w: got %d values for %d attributes",
			event.ErrArity, len(ev.Vals), b.schema.N())
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return 0, ErrClosed
	}
	b.mu.RUnlock()

	ev.Seq = b.seq.Add(1)
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	b.published.Add(1)

	if b.adapt != nil {
		b.adapt.Observe(ev.Vals)
	}

	ids, _, err := b.engine.Match(ev.Vals)
	if err != nil {
		return 0, err
	}
	now := time.Now()
	b.mu.RLock()
	defer b.mu.RUnlock()
	delivered := 0
	for _, id := range ids {
		sub, ok := b.subs[id]
		if !ok || sub.closed.Load() {
			continue
		}
		n := Notification{Event: ev, Profile: id, Delivered: now}
		select {
		case sub.shared.ch <- n:
			delivered++
			b.delivered.Add(1)
			b.counters.Inc("delivered:" + string(id))
		default:
			sub.dropped.Add(1)
			b.dropped.Add(1)
			b.counters.Inc("dropped:" + string(id))
		}
	}
	return len(ids), nil
}

// Quenched reports whether events whose attribute attr falls inside iv are
// guaranteed to match no profile, so a provider may suppress them at the
// source (Elvin-style quenching). It is conservative: false means "someone
// might care".
func (b *Broker) Quenched(attr int, iv schema.Interval) bool {
	if attr < 0 || attr >= b.schema.N() {
		return false
	}
	dom := b.schema.At(attr).Domain
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, sub := range b.subs {
		p := sub.profile
		if !p.Constrains(attr) {
			return false // a don't-care profile accepts any value here
		}
		for _, piv := range p.Pred(attr).Intervals(dom) {
			if piv.Overlaps(iv) {
				return false
			}
		}
	}
	return true
}

// Stats is a broker-level counter snapshot.
type Stats struct {
	Subscriptions int
	Published     uint64
	Delivered     uint64
	Dropped       uint64
	// Filter carries the engine's operation accounting.
	FilterEvents uint64
	FilterOps    uint64
	MeanOps      float64
}

// Stats returns the current counters.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	n := len(b.subs)
	b.mu.RUnlock()
	acc := b.engine.Account()
	return Stats{
		Subscriptions: n,
		Published:     b.published.Load(),
		Delivered:     b.delivered.Load(),
		Dropped:       b.dropped.Load(),
		FilterEvents:  acc.Events,
		FilterOps:     acc.Ops,
		MeanOps:       acc.MeanOps,
	}
}

// Counters returns a snapshot of the per-profile delivery/drop counters
// (the paper's statistic objects, §4.2).
func (b *Broker) Counters() []stats.Entry { return b.counters.Snapshot() }

// Close shuts the broker down: all subscription channels are closed and
// further operations fail with ErrClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, sub := range b.subs {
		sub.closed.Store(true)
		sub.shared.release()
		delete(b.subs, id)
	}
}
