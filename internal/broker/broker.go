// Package broker implements a local event notification service: subscription
// management, the publish/filter path, per-subscriber delivery and an
// Elvin-style quenching interface ("a quenching mechanism that discards
// unneeded information without consuming resources", paper §2).
//
// The broker composes the distribution-based filter engine of internal/core
// with the adaptive component of internal/adaptive: every published event
// feeds the event history, and the filter tree restructures itself when the
// observed distribution drifts.
//
// Delivery state (subscription maps and per-profile counters) is partitioned
// with the same hash the sharded engine uses, so concurrent publishers
// contend per shard instead of on one broker-wide lock, and subscription
// churn on one shard never stalls delivery on the others.
package broker

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"genas/internal/adaptive"
	"genas/internal/core"
	"genas/internal/event"
	"genas/internal/predicate"
	"genas/internal/schema"
	"genas/internal/sentinel"
	"genas/internal/stats"
)

// Errors returned by the broker. Each wraps the canonical sentinel of the
// public surface, so errors.Is against either the broker value or the
// re-exported genas sentinel succeeds.
var (
	ErrClosed        = fmt.Errorf("broker: %w", sentinel.ErrClosed)
	ErrUnknownSub    = fmt.Errorf("broker: %w", sentinel.ErrUnknownID)
	ErrDuplicateSub  = fmt.Errorf("broker: %w", sentinel.ErrDuplicateID)
	ErrNilProfile    = errors.New("broker: nil profile")
	ErrBadBufferSize = fmt.Errorf("broker: %w", sentinel.ErrBadBuffer)
)

// Notification is delivered to a subscriber whose profile matched an event.
type Notification struct {
	// Event is the matched event (sequence number assigned by the broker).
	Event event.Event
	// Profile identifies the subscription whose profile matched.
	Profile predicate.ID
	// Delivered is the broker-side delivery timestamp.
	Delivered time.Time
}

// sharedChan is a delivery channel possibly shared by several subscriptions
// (group delivery). The channel closes when the last member unsubscribes.
type sharedChan struct {
	ch     chan Notification
	refs   atomic.Int32
	closed atomic.Bool
}

// release drops one member reference and closes the channel when none
// remain.
func (sc *sharedChan) release() {
	if sc.refs.Add(-1) == 0 && sc.closed.CompareAndSwap(false, true) {
		close(sc.ch)
	}
}

// DropPolicy selects what happens to a notification when the subscriber's
// buffer is full.
type DropPolicy int

// Drop policies.
const (
	// DropNewest discards the incoming notification (the default: slow
	// subscribers never block the publish path and keep their oldest state).
	DropNewest DropPolicy = iota
	// DropOldest evicts the oldest buffered notification to make room, so a
	// lagging subscriber sees the freshest events.
	DropOldest
	// Block stalls the publisher until the subscriber drains the buffer (or
	// the subscription ends, or the publisher's context is canceled). Opt-in
	// backpressure: a subscriber that never reads stalls every publisher.
	Block
)

// SubOptions configure one subscription.
type SubOptions struct {
	// Buffer is the notification channel buffer (0 selects the broker
	// default, negative is invalid).
	Buffer int
	// Policy is the full-buffer drop policy.
	Policy DropPolicy
}

// Subscription is one subscriber registration. Notifications arrive on C();
// when the subscriber lags behind the buffer the drop policy decides between
// dropping the newest, evicting the oldest, or blocking the publisher.
// Delivery tallies live on the subscription itself (two uncontended atomics),
// realizing the paper's per-profile statistic objects without putting a mutex
// or a map on the publish path; the broker folds them into its counter store
// when the subscription ends.
type Subscription struct {
	id      predicate.ID
	profile *predicate.Profile
	shared  *sharedChan
	policy  DropPolicy
	// done closes when the subscription ends (end()), before the channel
	// itself closes: a Block-policy delivery blocked on a full buffer
	// watches it, so ending the subscription always releases its blocked
	// publishers promptly.
	done chan struct{}
	// sendMu fences Block-policy sends (read side) against the channel
	// close (write side). Block sends happen outside the delivery shard's
	// lock — a publisher stalled on one slow Block subscriber must not hold
	// a lock that registration operations or other deliveries need.
	sendMu    sync.RWMutex
	delivered atomic.Uint64
	dropped   atomic.Uint64
	closed    atomic.Bool
	// foldedDelivered/foldedDropped mark how much of the tallies the shard's
	// retired store has absorbed; written only from the subscription's
	// single Unsubscribe/Close invocation (see deliveryShard.retire).
	foldedDelivered uint64
	foldedDropped   uint64
}

// ID returns the subscription id.
func (s *Subscription) ID() predicate.ID { return s.id }

// Profile returns the subscription's profile.
func (s *Subscription) Profile() *predicate.Profile { return s.profile }

// C returns the notification channel. It is closed on Unsubscribe and on
// broker shutdown (for group members: when the whole group is gone).
func (s *Subscription) C() <-chan Notification { return s.shared.ch }

// Dropped returns how many notifications were discarded because the
// subscriber was slow (including DropOldest evictions).
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Delivered returns how many notifications reached the subscriber's buffer.
func (s *Subscription) Delivered() uint64 { return s.delivered.Load() }

// Options configure a Broker.
type Options struct {
	// Engine configuration (measures, search strategy, distributions).
	Engine core.Config
	// Shards selects the engine partition width: 0 or 1 runs the classic
	// single-tree engine, n > 1 runs an n-way sharded engine with delivery
	// state partitioned the same way.
	Shards int
	// Adaptive enables the adaptive filter component.
	Adaptive bool
	// Policy tunes adaptation (ignored unless Adaptive).
	Policy adaptive.Policy
	// DefaultBuffer is the per-subscription channel buffer (default 64).
	DefaultBuffer int
}

// deliveryShard holds the subscriptions of one partition of the id space,
// plus shard-level delivery aggregates and the per-profile counters retired
// from subscriptions that have since ended.
type deliveryShard struct {
	mu   sync.RWMutex
	subs map[predicate.ID]*Subscription
	// delivered/dropped aggregate the shard's whole history (live and
	// retired subscriptions), so Stats stays O(shards) instead of walking
	// every subscription. Contention is per shard, which is the point.
	delivered atomic.Uint64
	dropped   atomic.Uint64
	// retired accumulates the per-profile tallies of unsubscribed profiles
	// (cold path only: the publish path never touches it).
	retired *stats.Counters
}

// retire folds a dead subscription's per-profile tallies into the shard's
// counter store (the shard aggregates already include them). Delta-aware: it
// runs twice per subscription — once under the shard write lock when the
// subscription leaves the map, and once after the Block-send fence
// (retireChan), because a Block-policy delivery already parked in its select
// may record its outcome after the first fold. Both calls come from the same
// Unsubscribe/Close invocation (serialized by regMu), so the folded marks
// need no locking of their own.
func (d *deliveryShard) retire(sub *Subscription) {
	if n := sub.delivered.Load(); n > sub.foldedDelivered {
		d.retired.Add("delivered:"+string(sub.id), n-sub.foldedDelivered)
		sub.foldedDelivered = n
	}
	if n := sub.dropped.Load(); n > sub.foldedDropped {
		d.retired.Add("dropped:"+string(sub.id), n-sub.foldedDropped)
		sub.foldedDropped = n
	}
}

// Broker is the local ENS instance. It is safe for concurrent use.
type Broker struct {
	schema *schema.Schema
	filter core.Filter
	adapt  *adaptive.Adaptor

	// regMu serializes registration state changes (subscribe, unsubscribe,
	// close); the publish path only takes per-shard read locks.
	regMu  sync.Mutex
	closed atomic.Bool

	shards []*deliveryShard

	seq       atomic.Uint64
	published atomic.Uint64

	defaultBuffer int
}

// New creates a broker over schema s.
func New(s *schema.Schema, opts Options) (*Broker, error) {
	if opts.DefaultBuffer == 0 {
		opts.DefaultBuffer = 64
	}
	if opts.DefaultBuffer < 0 {
		return nil, ErrBadBufferSize
	}
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	var filter core.Filter
	if n > 1 {
		filter = core.NewSharded(s, opts.Engine, n)
	} else {
		filter = core.NewEngine(s, opts.Engine)
	}
	b := &Broker{
		schema:        s,
		filter:        filter,
		shards:        make([]*deliveryShard, n),
		defaultBuffer: opts.DefaultBuffer,
	}
	for i := range b.shards {
		b.shards[i] = &deliveryShard{
			subs:    make(map[predicate.ID]*Subscription),
			retired: stats.NewCounters(),
		}
	}
	if opts.Adaptive {
		a, err := adaptive.New(filter, opts.Policy)
		if err != nil {
			return nil, err
		}
		b.adapt = a
	}
	return b, nil
}

// Schema returns the broker's schema.
func (b *Broker) Schema() *schema.Schema { return b.schema }

// Engine exposes the underlying filter (experiments and diagnostics): a
// *core.Engine for single-shard brokers, a *core.Sharded otherwise.
func (b *Broker) Engine() core.Filter { return b.filter }

// Shards returns the delivery partition width.
func (b *Broker) Shards() int { return len(b.shards) }

// Adaptor returns the adaptive component (nil when disabled).
func (b *Broker) Adaptor() *adaptive.Adaptor { return b.adapt }

// shardFor returns the delivery shard owning id (aligned with the engine's
// profile partition).
func (b *Broker) shardFor(id predicate.ID) *deliveryShard {
	return b.shards[core.ShardOf(id, len(b.shards))]
}

// Subscribe registers a profile and returns its subscription. The profile ID
// must be unique within the broker.
func (b *Broker) Subscribe(p *predicate.Profile) (*Subscription, error) {
	return b.SubscribeWith(p, SubOptions{})
}

// SubscribeBuffered is Subscribe with an explicit channel buffer size.
func (b *Broker) SubscribeBuffered(p *predicate.Profile, buffer int) (*Subscription, error) {
	if buffer <= 0 {
		return nil, ErrBadBufferSize
	}
	return b.SubscribeWith(p, SubOptions{Buffer: buffer})
}

// SubscribeWith is Subscribe with explicit buffer and drop-policy options.
func (b *Broker) SubscribeWith(p *predicate.Profile, o SubOptions) (*Subscription, error) {
	if p == nil {
		return nil, ErrNilProfile
	}
	if o.Buffer == 0 {
		o.Buffer = b.defaultBuffer
	}
	if o.Buffer < 0 {
		return nil, ErrBadBufferSize
	}
	b.regMu.Lock()
	defer b.regMu.Unlock()
	if b.closed.Load() {
		return nil, ErrClosed
	}
	shard := b.shardFor(p.ID)
	shard.mu.RLock()
	_, dup := shard.subs[p.ID]
	shard.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateSub, p.ID)
	}
	sc := &sharedChan{ch: make(chan Notification, o.Buffer)}
	sc.refs.Store(1)
	sub := &Subscription{id: p.ID, profile: p, shared: sc, policy: o.Policy, done: make(chan struct{})}
	// Insert into the delivery map before the profile becomes matchable: the
	// reverse order would let a concurrent Publish match the profile, miss
	// it in the map and silently lose the notification.
	shard.mu.Lock()
	shard.subs[p.ID] = sub
	shard.mu.Unlock()
	if err := b.filter.AddProfile(p); err != nil {
		shard.mu.Lock()
		delete(shard.subs, p.ID)
		shard.mu.Unlock()
		return nil, err
	}
	return sub, nil
}

// Group is a set of subscriptions delivering over one ordered channel: all
// notifications triggered by one published event arrive contiguously and in
// publish order, which composite event detection depends on.
type Group struct {
	b      *Broker
	shared *sharedChan
	ids    []predicate.ID
	once   sync.Once
}

// C returns the group's merged notification channel.
func (g *Group) C() <-chan Notification { return g.shared.ch }

// IDs returns the member profile ids.
func (g *Group) IDs() []predicate.ID { return append([]predicate.ID(nil), g.ids...) }

// Close unsubscribes every member; the channel closes when the last member
// is gone.
func (g *Group) Close() {
	g.once.Do(func() {
		for _, id := range g.ids {
			_ = g.b.Unsubscribe(id)
		}
	})
}

// SubscribeGroup registers several profiles that share one notification
// channel. Registration is atomic: on any failure no profile remains
// subscribed.
func (b *Broker) SubscribeGroup(buffer int, profiles ...*predicate.Profile) (*Group, error) {
	if buffer <= 0 {
		return nil, ErrBadBufferSize
	}
	if len(profiles) == 0 {
		return nil, ErrNilProfile
	}
	b.regMu.Lock()
	defer b.regMu.Unlock()
	if b.closed.Load() {
		return nil, ErrClosed
	}
	seen := make(map[predicate.ID]bool, len(profiles))
	for _, p := range profiles {
		if p == nil {
			return nil, ErrNilProfile
		}
		shard := b.shardFor(p.ID)
		shard.mu.RLock()
		_, dup := shard.subs[p.ID]
		shard.mu.RUnlock()
		if dup || seen[p.ID] {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateSub, p.ID)
		}
		seen[p.ID] = true
	}
	sc := &sharedChan{ch: make(chan Notification, buffer)}
	g := &Group{b: b, shared: sc}
	added := make([]predicate.ID, 0, len(profiles))
	rollback := func() {
		for _, id := range added {
			shard := b.shardFor(id)
			shard.mu.Lock()
			sub := shard.subs[id]
			delete(shard.subs, id)
			shard.mu.Unlock()
			_ = b.filter.RemoveProfile(id)
			if sub != nil {
				sub.end()
			}
		}
	}
	for _, p := range profiles {
		sub := &Subscription{id: p.ID, profile: p, shared: sc, done: make(chan struct{})}
		shard := b.shardFor(p.ID)
		// Delivery map first, then the filter — see SubscribeBuffered.
		shard.mu.Lock()
		shard.subs[p.ID] = sub
		shard.mu.Unlock()
		if err := b.filter.AddProfile(p); err != nil {
			shard.mu.Lock()
			delete(shard.subs, p.ID)
			shard.mu.Unlock()
			rollback()
			return nil, err
		}
		sc.refs.Add(1)
		added = append(added, p.ID)
	}
	g.ids = added
	return g, nil
}

// end marks the subscription closed and releases any Block-policy delivery
// waiting on its full buffer. Idempotent.
func (s *Subscription) end() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.done)
	}
}

// retireChan closes the subscription's channel reference once no send can
// touch it anymore, then folds any tallies a late Block-policy send recorded
// after the first retire. Callers must have removed the subscription from
// its delivery shard first (under the shard write lock, which waits out the
// non-blocking sends) and ended it (which releases Block-policy sends); the
// sendMu write acquisition then only waits for those sends — which record
// their per-subscription tallies under the read side — to finish.
func (s *Subscription) retireChan(shard *deliveryShard) {
	s.sendMu.Lock()
	s.shared.release()
	s.sendMu.Unlock()
	shard.retire(s)
}

// Unsubscribe removes a subscription and closes its channel.
func (b *Broker) Unsubscribe(id predicate.ID) error {
	b.regMu.Lock()
	defer b.regMu.Unlock()
	shard := b.shardFor(id)
	shard.mu.RLock()
	sub, ok := shard.subs[id]
	shard.mu.RUnlock()
	if !ok {
		if b.closed.Load() {
			return ErrClosed
		}
		return fmt.Errorf("%w: %s", ErrUnknownSub, id)
	}
	// Release blocked publishers before anything else; regMu serializes all
	// registration changes, so the map cannot change between the lookup
	// above and the removal below.
	sub.end()
	shard.mu.Lock()
	delete(shard.subs, id)
	shard.retire(sub)
	shard.mu.Unlock()
	// Close outside the shard lock: after the write section above no new
	// delivery can find the subscription, in-flight non-blocking sends
	// completed before the write lock was granted, and in-flight Block
	// sends are fenced by sendMu inside retireChan.
	sub.retireChan(shard)
	return b.filter.RemoveProfile(id)
}

// Publish filters the event and delivers notifications to every matched
// subscriber. It returns the number of matched profiles. Subscribers with the
// default DropNewest policy never block the publish path: over-full buffers
// drop (counted per subscription and broker-wide); Block-policy subscribers
// apply backpressure.
func (b *Broker) Publish(ev event.Event) (int, error) {
	return b.publish(ev, nil)
}

// PublishCtx is Publish with a cancellation context: it refuses to start on a
// done context, and delivery blocked on a Block-policy subscriber aborts
// (counting a drop) when the context is canceled.
func (b *Broker) PublishCtx(ctx context.Context, ev event.Event) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return b.publish(ev, ctx.Done())
}

func (b *Broker) publish(ev event.Event, cancel <-chan struct{}) (int, error) {
	if len(ev.Vals) != b.schema.N() {
		return 0, fmt.Errorf("%w: got %d values for %d attributes",
			event.ErrArity, len(ev.Vals), b.schema.N())
	}
	if b.closed.Load() {
		return 0, ErrClosed
	}

	ev.Seq = b.seq.Add(1)
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	b.published.Add(1)

	if b.adapt != nil {
		b.adapt.Observe(ev.Vals)
	}

	ids, _, err := b.filter.Match(ev.Vals)
	if err != nil {
		return 0, err
	}
	b.deliver(ev, ids, time.Now(), cancel)
	return len(ids), nil
}

// PublishValues filters one positionally-encoded event without building an
// event value up front: vals is only read during matching, and an event (with
// its own copy of the values) is materialized only when at least one profile
// matched. The caller may reuse the slice immediately after the call, so a
// steady-state publisher allocates nothing for the non-matching events — the
// overwhelming majority under the paper's workloads.
//
//genas:hotpath
func (b *Broker) PublishValues(vals []float64) (int, error) {
	return b.publishValues(vals, nil)
}

// PublishValuesCtx is PublishValues with a cancellation context (see
// PublishCtx).
//
//genas:hotpath
func (b *Broker) PublishValuesCtx(ctx context.Context, vals []float64) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return b.publishValues(vals, ctx.Done())
}

// publishValues is the zero-allocation filter path: nothing on the miss
// branch allocates, and the event value (with its own copy of vals)
// materializes only after at least one profile matched.
//
//genas:hotpath
func (b *Broker) publishValues(vals []float64, cancel <-chan struct{}) (int, error) {
	if len(vals) != b.schema.N() {
		//genas:allow hotpath cold arity-error branch; well-formed events pass without allocating
		return 0, fmt.Errorf("%w: got %d values for %d attributes",
			event.ErrArity, len(vals), b.schema.N())
	}
	if b.closed.Load() {
		return 0, ErrClosed
	}

	seq := b.seq.Add(1)
	b.published.Add(1)

	if b.adapt != nil {
		b.adapt.Observe(vals)
	}

	ids, _, err := b.filter.Match(vals)
	if err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, nil
	}
	ev := event.Event{Vals: append([]float64(nil), vals...), Time: time.Now(), Seq: seq}
	b.deliver(ev, ids, ev.Time, cancel)
	return len(ids), nil
}

// PublishBatch filters a batch of events against one corpus snapshot and
// delivers the notifications in event order. It returns the per-event match
// counts, positionally aligned with the input; the input slice itself is not
// modified, so buffers may be reused across calls. The batch amortizes
// sequence assignment, adaptor bookkeeping and per-shard lock acquisition
// across the whole slice; events are matched concurrently by the engine's
// batch path.
func (b *Broker) PublishBatch(evs []event.Event) ([]int, error) {
	return b.publishBatch(evs, nil)
}

// PublishBatchCtx is PublishBatch with a cancellation context: it refuses to
// start on a done context, and deliveries blocked on Block-policy subscribers
// abort (counting drops) when the context is canceled. Events already matched
// stay matched — the batch is not transactional.
func (b *Broker) PublishBatchCtx(ctx context.Context, evs []event.Event) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.publishBatch(evs, ctx.Done())
}

func (b *Broker) publishBatch(evs []event.Event, cancel <-chan struct{}) ([]int, error) {
	if len(evs) == 0 {
		return nil, nil
	}
	for i := range evs {
		if len(evs[i].Vals) != b.schema.N() {
			return nil, fmt.Errorf("%w: event %d: got %d values for %d attributes",
				event.ErrArity, i, len(evs[i].Vals), b.schema.N())
		}
	}
	if b.closed.Load() {
		return nil, ErrClosed
	}

	// Stamp sequence numbers and times on a copy: like Publish, the batch
	// path must not mutate caller-visible events (a reused buffer would
	// otherwise keep its first call's timestamps forever).
	base := b.seq.Add(uint64(len(evs))) - uint64(len(evs))
	now := time.Now()
	batch := make([]event.Event, len(evs))
	vals := make([][]float64, len(evs))
	for i := range evs {
		batch[i] = evs[i]
		batch[i].Seq = base + uint64(i) + 1
		if batch[i].Time.IsZero() {
			batch[i].Time = now
		}
		vals[i] = batch[i].Vals
	}
	b.published.Add(uint64(len(evs)))

	if b.adapt != nil {
		b.adapt.ObserveBatch(vals)
	}

	results, err := b.filter.MatchBatch(vals, 0)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(evs))
	delivered := time.Now()
	for i, r := range results {
		counts[i] = len(r.IDs)
		b.deliver(batch[i], r.IDs, delivered, cancel)
	}
	return counts, nil
}

// blockedSend is one Block-policy delivery deferred to after the shard locks
// are released.
type blockedSend struct {
	shard *deliveryShard
	sub   *Subscription
	n     Notification
}

// blockedBuf is the pooled collection buffer for Block-policy deliveries:
// steady-state delivery to Block subscribers must not grow a fresh slice per
// event. Buffers are cleared before pooling so retained capacity does not
// pin events or subscriptions.
type blockedBuf struct {
	sends []blockedSend
}

var blockedPool = sync.Pool{New: func() any { return new(blockedBuf) }}

// deliver pushes one event's notifications to the matched subscribers,
// locking only the delivery shards the matched ids live on. Non-blocking
// sends (DropNewest, DropOldest) happen under the shard read lock: channel
// close waits for the shard write lock first, so such a send can never hit a
// closing channel. Block-policy sends are collected and performed after all
// shard locks are released — a publisher stalled on one slow Block
// subscriber must not wedge registration operations or deliveries to other
// subscribers — fenced against close by the subscription's sendMu. Matched
// ids arrive grouped by shard (the sharded engine merges in shard order), so
// the lock is held across each run of same-shard ids rather than per id.
// cancel (possibly nil) aborts Block-policy sends.
//
// The notification value is built once per event, before the loop, and only
// its Profile field is stamped per matched id — after the liveness check, so
// closed or vanished subscriptions cost nothing (they previously paid a full
// event copy each).
//
//genas:hotpath
func (b *Broker) deliver(ev event.Event, ids []predicate.ID, now time.Time, cancel <-chan struct{}) {
	var shard *deliveryShard
	var buf *blockedBuf // nil unless Block-policy subscribers matched
	n := Notification{Event: ev, Delivered: now}
	for _, id := range ids {
		if next := b.shardFor(id); next != shard {
			if shard != nil {
				shard.mu.RUnlock()
			}
			shard = next
			shard.mu.RLock()
		}
		sub, ok := shard.subs[id]
		if !ok || sub.closed.Load() {
			continue
		}
		n.Profile = id
		if sub.policy == Block {
			if buf == nil {
				buf = blockedPool.Get().(*blockedBuf)
			}
			buf.sends = append(buf.sends, blockedSend{shard: shard, sub: sub, n: n})
			continue
		}
		sent, evicted := sub.send(n)
		if sent {
			sub.delivered.Add(1)
			shard.delivered.Add(1)
		} else {
			sub.dropped.Add(1)
			shard.dropped.Add(1)
		}
		if evicted > 0 {
			sub.dropped.Add(uint64(evicted))
			shard.dropped.Add(uint64(evicted))
		}
	}
	if shard != nil {
		shard.mu.RUnlock()
	}
	if buf == nil {
		return
	}
	for i := range buf.sends {
		bs := &buf.sends[i]
		if bs.sub.blockingSend(bs.n, cancel) {
			bs.shard.delivered.Add(1)
		} else {
			bs.shard.dropped.Add(1)
		}
	}
	clear(buf.sends)
	buf.sends = buf.sends[:0]
	blockedPool.Put(buf)
}

// send places n on the subscription channel under its non-blocking drop
// policy, reporting whether the notification reached the buffer and how many
// older notifications were evicted to make room. Runs with the shard read
// lock held, so the channel cannot close mid-send.
func (s *Subscription) send(n Notification) (sent bool, evicted int) {
	if s.policy == DropOldest {
		for {
			select {
			case s.shared.ch <- n:
				return true, evicted
			default:
			}
			select {
			case <-s.shared.ch:
				evicted++
			default:
				// A consumer drained the buffer between the two selects;
				// retry the send.
			}
		}
	}
	select {
	case s.shared.ch <- n: // DropNewest
		return true, 0
	default:
		return false, 0
	}
}

// blockingSend performs one Block-policy delivery outside the shard locks:
// it waits until buffer space frees, the subscription ends (done closes
// before the channel does), or the publisher's cancel channel fires (nil
// means no cancellation). sendMu (read side) fences the channel against
// retireChan's close — if the closed re-check reads false, the close cannot
// start until this send returns — and the per-subscription tallies are
// recorded under the same fence, so retireChan's final fold observes them.
func (s *Subscription) blockingSend(n Notification, cancel <-chan struct{}) bool {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed.Load() {
		// The subscription may be fully retired already (its final fold can
		// precede this read), so only the shard-wide drop aggregate counts
		// this outcome — the caller's else-branch handles it.
		return false
	}
	//genas:allow locksafe sendMu is the close fence, not a shard lock: the blocking wait under its read side is this function's contract
	select {
	case s.shared.ch <- n:
		s.delivered.Add(1)
		return true
	case <-s.done:
		s.dropped.Add(1)
		return false
	case <-cancel:
		s.dropped.Add(1)
		return false
	}
}

// Quenched reports whether events whose attribute attr falls inside iv are
// guaranteed to match no profile, so a provider may suppress them at the
// source (Elvin-style quenching). It is conservative: false means "someone
// might care".
func (b *Broker) Quenched(attr int, iv schema.Interval) bool {
	if attr < 0 || attr >= b.schema.N() {
		return false
	}
	dom := b.schema.At(attr).Domain
	// Hold regMu so the multi-shard scan sees one consistent registration
	// snapshot: without it, a profile migrating between scanned and
	// unscanned shards (unsubscribe+resubscribe) could hide continuous
	// coverage and yield a false "quenched". Quench queries are cold-path.
	b.regMu.Lock()
	defer b.regMu.Unlock()
	for _, shard := range b.shards {
		shard.mu.RLock()
		for _, sub := range shard.subs {
			p := sub.profile
			if !p.Constrains(attr) {
				shard.mu.RUnlock()
				return false // a don't-care profile accepts any value here
			}
			for _, piv := range p.Pred(attr).Intervals(dom) {
				if piv.Overlaps(iv) {
					shard.mu.RUnlock()
					return false
				}
			}
		}
		shard.mu.RUnlock()
	}
	return true
}

// Stats is a broker-level counter snapshot.
type Stats struct {
	Subscriptions int
	Published     uint64
	Delivered     uint64
	Dropped       uint64
	// Filter carries the engine's operation accounting.
	FilterEvents uint64
	FilterOps    uint64
	MeanOps      float64
	// Aggregation describes the engine's canonical subscription layer
	// (Enabled false, zero counters, on an unaggregated engine).
	Aggregation core.AggStats
}

// Stats returns the current counters.
func (b *Broker) Stats() Stats {
	var n int
	var delivered, dropped uint64
	for _, shard := range b.shards {
		shard.mu.RLock()
		n += len(shard.subs)
		shard.mu.RUnlock()
		delivered += shard.delivered.Load()
		dropped += shard.dropped.Load()
	}
	acc := b.filter.Account()
	return Stats{
		Subscriptions: n,
		Published:     b.published.Load(),
		Delivered:     delivered,
		Dropped:       dropped,
		FilterEvents:  acc.Events,
		FilterOps:     acc.Ops,
		MeanOps:       acc.MeanOps,
		Aggregation:   b.filter.AggStats(),
	}
}

// Counters returns a merged snapshot of the per-profile delivery/drop
// counters (the paper's statistic objects, §4.2): live subscription tallies
// plus the counts retired from ended subscriptions. A key appears once it
// has counted at least one notification.
func (b *Broker) Counters() []stats.Entry {
	merged := stats.NewCounters()
	for _, shard := range b.shards {
		// Retired and live tallies are read under one read lock so that a
		// concurrent Unsubscribe (which moves counts from live to retired
		// under the write lock) can never make a profile vanish from the
		// snapshot.
		shard.mu.RLock()
		for _, e := range shard.retired.Snapshot() {
			merged.Add(e.Key, e.Count)
		}
		for id, sub := range shard.subs {
			if n := sub.delivered.Load(); n > 0 {
				merged.Add("delivered:"+string(id), n)
			}
			if n := sub.dropped.Load(); n > 0 {
				merged.Add("dropped:"+string(id), n)
			}
		}
		shard.mu.RUnlock()
	}
	return merged.Snapshot()
}

// Close shuts the broker down: all subscription channels are closed and
// further operations fail with ErrClosed.
func (b *Broker) Close() {
	b.regMu.Lock()
	defer b.regMu.Unlock()
	if !b.closed.CompareAndSwap(false, true) {
		return
	}
	for _, shard := range b.shards {
		// End every subscription first so blocked Block-policy publishers
		// release; regMu (held) blocks new registrations meanwhile.
		shard.mu.RLock()
		ending := make([]*Subscription, 0, len(shard.subs))
		for _, sub := range shard.subs {
			ending = append(ending, sub)
		}
		shard.mu.RUnlock()
		for _, sub := range ending {
			sub.end()
		}
		shard.mu.Lock()
		for id, sub := range shard.subs {
			shard.retire(sub)
			delete(shard.subs, id)
		}
		shard.mu.Unlock()
		for _, sub := range ending {
			sub.retireChan(shard)
		}
	}
}
