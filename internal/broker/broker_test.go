package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"genas/internal/adaptive"
	"genas/internal/dist"
	"genas/internal/event"
	"genas/internal/predicate"
	"genas/internal/schema"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	temp, _ := schema.NewNumericDomain(-30, 50)
	hum, _ := schema.NewNumericDomain(0, 100)
	return schema.MustNew(
		schema.Attribute{Name: "temperature", Domain: temp},
		schema.Attribute{Name: "humidity", Domain: hum},
	)
}

func newBroker(t *testing.T, opts Options) *Broker {
	t.Helper()
	b, err := New(testSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func TestPubSub(t *testing.T) {
	b := newBroker(t, Options{})
	s := b.Schema()
	sub, err := b.Subscribe(predicate.MustParse(s, "hot", "profile(temperature >= 35)"))
	if err != nil {
		t.Fatal(err)
	}
	matched, err := b.Publish(event.MustNew(s, 40, 50))
	if err != nil {
		t.Fatal(err)
	}
	if matched != 1 {
		t.Fatalf("matched = %d", matched)
	}
	select {
	case n := <-sub.C():
		if n.Profile != "hot" || n.Event.Vals[0] != 40 || n.Event.Seq != 1 {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(time.Second):
		t.Fatal("no notification")
	}
	// Non-matching event: nothing delivered.
	if matched, _ := b.Publish(event.MustNew(s, 20, 50)); matched != 0 {
		t.Errorf("cold event matched %d", matched)
	}
	select {
	case n := <-sub.C():
		t.Fatalf("unexpected notification %+v", n)
	default:
	}
}

func TestSubscribeErrors(t *testing.T) {
	b := newBroker(t, Options{})
	s := b.Schema()
	p := predicate.MustParse(s, "p", "profile(temperature >= 0)")
	if _, err := b.Subscribe(nil); !errors.Is(err, ErrNilProfile) {
		t.Error("nil profile must error")
	}
	if _, err := b.SubscribeBuffered(p, 0); !errors.Is(err, ErrBadBufferSize) {
		t.Error("zero buffer must error")
	}
	if _, err := b.Subscribe(p); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(p); !errors.Is(err, ErrDuplicateSub) {
		t.Error("duplicate id must error")
	}
	if err := b.Unsubscribe("nope"); !errors.Is(err, ErrUnknownSub) {
		t.Error("unknown unsubscribe must error")
	}
}

func TestUnsubscribeClosesChannel(t *testing.T) {
	b := newBroker(t, Options{})
	s := b.Schema()
	sub, err := b.Subscribe(predicate.MustParse(s, "p", "profile(temperature >= 0)"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe("p"); err != nil {
		t.Fatal(err)
	}
	if _, open := <-sub.C(); open {
		t.Error("channel must be closed after unsubscribe")
	}
	// Events published after unsubscribe match nothing.
	if matched, _ := b.Publish(event.MustNew(s, 10, 10)); matched != 0 {
		t.Errorf("matched = %d after unsubscribe", matched)
	}
}

func TestSlowSubscriberDrops(t *testing.T) {
	b := newBroker(t, Options{})
	s := b.Schema()
	sub, err := b.SubscribeBuffered(predicate.MustParse(s, "p", "profile(temperature >= 0)"), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := b.Publish(event.MustNew(s, 10, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if sub.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", sub.Dropped())
	}
	st := b.Stats()
	if st.Delivered != 2 || st.Dropped != 3 || st.Published != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPublishValidation(t *testing.T) {
	b := newBroker(t, Options{})
	if _, err := b.Publish(event.Event{Vals: []float64{1}}); !errors.Is(err, event.ErrArity) {
		t.Error("wrong arity must error")
	}
}

func TestQuenched(t *testing.T) {
	b := newBroker(t, Options{})
	s := b.Schema()
	if _, err := b.Subscribe(predicate.MustParse(s, "p", "profile(temperature >= 35)")); err != nil {
		t.Fatal(err)
	}
	if q := b.Quenched(0, schema.Closed(-30, 0)); !q {
		t.Error("cold region must be quenched")
	}
	if q := b.Quenched(0, schema.Closed(30, 40)); q {
		t.Error("overlapping region must not be quenched")
	}
	// humidity is don't-care for p: never quenched.
	if q := b.Quenched(1, schema.Closed(0, 1)); q {
		t.Error("don't-care attribute must not be quenched")
	}
	if q := b.Quenched(7, schema.Closed(0, 1)); q {
		t.Error("bad attribute index must not be quenched")
	}
	// After unsubscribing everything, every region quenches.
	if err := b.Unsubscribe("p"); err != nil {
		t.Fatal(err)
	}
	if q := b.Quenched(0, schema.Closed(30, 40)); !q {
		t.Error("empty broker must quench everything")
	}
}

func TestCloseRejectsOperations(t *testing.T) {
	b := newBroker(t, Options{})
	s := b.Schema()
	sub, _ := b.Subscribe(predicate.MustParse(s, "p", "profile(temperature >= 0)"))
	b.Close()
	b.Close() // idempotent
	if _, open := <-sub.C(); open {
		t.Error("close must close subscription channels")
	}
	if _, err := b.Publish(event.MustNew(s, 10, 10)); !errors.Is(err, ErrClosed) {
		t.Error("publish after close must error")
	}
	if _, err := b.Subscribe(predicate.MustParse(s, "q", "profile(temperature >= 0)")); !errors.Is(err, ErrClosed) {
		t.Error("subscribe after close must error")
	}
}

// TestConcurrentPubSub exercises the publish path against concurrent
// subscribe/unsubscribe (run under -race).
func TestConcurrentPubSub(t *testing.T) {
	b := newBroker(t, Options{})
	s := b.Schema()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Publishers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ev := event.MustNew(s, -30+rng.Float64()*80, rng.Float64()*100)
				if _, err := b.Publish(ev); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(int64(g))
	}
	// Churning subscribers (drain their channels so delivery keeps flowing).
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := fmt.Sprintf("s%d-%d", g, i)
				p := predicate.MustParse(s, predicate.ID(id), "profile(temperature >= 10)")
				sub, err := b.Subscribe(p)
				if err != nil {
					t.Errorf("subscribe: %v", err)
					return
				}
				deadline := time.After(2 * time.Millisecond)
			drain:
				for {
					select {
					case <-sub.C():
					case <-deadline:
						break drain
					}
				}
				if err := b.Unsubscribe(predicate.ID(id)); err != nil {
					t.Errorf("unsubscribe: %v", err)
					return
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	st := b.Stats()
	if st.Published == 0 {
		t.Error("nothing published")
	}
}

// TestAdaptiveBrokerRestructures: the integrated broker restructures under a
// drifting stream and keeps delivering correctly.
func TestAdaptiveBrokerRestructures(t *testing.T) {
	b := newBroker(t, Options{
		Adaptive: true,
		Policy:   adaptive.Policy{Window: 200, Threshold: 0.1, Bins: 16},
	})
	s := b.Schema()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		expr := fmt.Sprintf("profile(temperature >= %d)", 30+rng.Intn(20))
		if _, err := b.Subscribe(predicate.MustParse(s, predicate.ID(fmt.Sprintf("p%d", i)), expr)); err != nil {
			t.Fatal(err)
		}
	}
	hot := dist.New(dist.PeakHigh(0.95), s.At(0).Domain)
	for i := 0; i < 1500; i++ {
		ev := event.MustNew(s, clampTemp(hot.Sample(rng)), rng.Float64()*100)
		if _, err := b.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	if b.Adaptor().Restructures() == 0 {
		t.Error("drifted stream must trigger restructure")
	}
	// Deliveries remain correct after restructuring.
	matched, err := b.Publish(event.MustNew(s, 49, 50))
	if err != nil {
		t.Fatal(err)
	}
	if matched == 0 {
		t.Error("hot event must match after restructure")
	}
}

func clampTemp(v float64) float64 {
	if v < -30 {
		return -30
	}
	if v > 50 {
		return 50
	}
	return v
}

func TestPerProfileCounters(t *testing.T) {
	b := newBroker(t, Options{})
	s := b.Schema()
	if _, err := b.SubscribeBuffered(predicate.MustParse(s, "c1", "profile(temperature >= 0)"), 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Publish(event.MustNew(s, 10, 10)); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]uint64{}
	for _, e := range b.Counters() {
		counts[e.Key] = e.Count
	}
	if counts["delivered:c1"] != 1 || counts["dropped:c1"] != 2 {
		t.Errorf("counters = %v", counts)
	}
}

func TestSubscribeGroup(t *testing.T) {
	b := newBroker(t, Options{})
	s := b.Schema()
	g, err := b.SubscribeGroup(16,
		predicate.MustParse(s, "g1", "profile(temperature >= 30)"),
		predicate.MustParse(s, "g2", "profile(humidity >= 90)"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.IDs()) != 2 {
		t.Fatalf("ids = %v", g.IDs())
	}
	// One event matching both members yields two ordered notifications on
	// the same channel.
	if _, err := b.Publish(event.MustNew(s, 40, 95)); err != nil {
		t.Fatal(err)
	}
	got := map[predicate.ID]bool{}
	for i := 0; i < 2; i++ {
		select {
		case n := <-g.C():
			got[n.Profile] = true
		case <-time.After(time.Second):
			t.Fatal("missing group notification")
		}
	}
	if !got["g1"] || !got["g2"] {
		t.Errorf("notifications = %v", got)
	}
	// Close unsubscribes all members and closes the channel.
	g.Close()
	g.Close() // idempotent
	if _, open := <-g.C(); open {
		t.Error("group channel must close")
	}
	if b.Stats().Subscriptions != 0 {
		t.Errorf("members leaked: %d", b.Stats().Subscriptions)
	}
}

func TestSubscribeGroupErrors(t *testing.T) {
	b := newBroker(t, Options{})
	s := b.Schema()
	if _, err := b.SubscribeGroup(0, predicate.MustParse(s, "x", "profile(temperature >= 0)")); !errors.Is(err, ErrBadBufferSize) {
		t.Error("zero buffer must fail")
	}
	if _, err := b.SubscribeGroup(8); !errors.Is(err, ErrNilProfile) {
		t.Error("empty group must fail")
	}
	if _, err := b.SubscribeGroup(8, nil); !errors.Is(err, ErrNilProfile) {
		t.Error("nil member must fail")
	}
	// Duplicate against an existing subscription rolls back atomically.
	if _, err := b.Subscribe(predicate.MustParse(s, "taken", "profile(temperature >= 0)")); err != nil {
		t.Fatal(err)
	}
	_, err := b.SubscribeGroup(8,
		predicate.MustParse(s, "fresh", "profile(temperature >= 0)"),
		predicate.MustParse(s, "taken", "profile(humidity >= 0)"),
	)
	if !errors.Is(err, ErrDuplicateSub) {
		t.Fatalf("err = %v", err)
	}
	if b.Stats().Subscriptions != 1 {
		t.Errorf("rollback leaked members: %d subs", b.Stats().Subscriptions)
	}
}

// TestGroupOrderingPreserved: notifications of sequentially published
// events arrive on the group channel in publish order — the property the
// composite sequence operator needs.
func TestGroupOrderingPreserved(t *testing.T) {
	b := newBroker(t, Options{})
	s := b.Schema()
	g, err := b.SubscribeGroup(256,
		predicate.MustParse(s, "low", "profile(temperature <= 0)"),
		predicate.MustParse(s, "high", "profile(temperature >= 30)"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < 50; i++ {
		temp := -10.0
		if i%2 == 1 {
			temp = 40
		}
		if _, err := b.Publish(event.MustNew(s, temp, 50)); err != nil {
			t.Fatal(err)
		}
	}
	var lastSeq uint64
	for i := 0; i < 50; i++ {
		select {
		case n := <-g.C():
			if n.Event.Seq <= lastSeq {
				t.Fatalf("out of order: seq %d after %d", n.Event.Seq, lastSeq)
			}
			lastSeq = n.Event.Seq
		case <-time.After(time.Second):
			t.Fatalf("missing notification %d", i)
		}
	}
}
